(* The full experiment harness: one section per experiment E1..E25 of
   DESIGN.md / EXPERIMENTS.md, regenerating every figure and quantitative
   claim of the paper, plus a Bechamel microbenchmark suite for the
   performance-shape experiments (E6/E12). Run with:

     dune exec bench/main.exe            (everything)
     dune exec bench/main.exe -- E3 E8   (selected experiments)
*)

let section id title =
  Printf.printf "\n=== %s: %s ===\n%!" id title

let headline fmt = Printf.ksprintf (fun s -> Printf.printf "  ** %s\n%!" s) fmt

let args = Array.to_list Sys.argv |> List.tl

let smoke = List.mem "--smoke" args
(* --smoke shrinks the workloads so CI can run an experiment in seconds. *)

let selected =
  let ids = List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args in
  fun id -> ids = [] || List.mem id ids

(* Every file artifact lands under _bench_out/ (gitignored), never the
   repo root. *)
let out_path name =
  let dir = "_bench_out" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Filename.concat dir name

let random_data seed n =
  let rng = Bitkit.Rng.create seed in
  String.init n (fun _ -> Char.chr (Bitkit.Rng.int rng 256))

(* ------------------------------------------------------------------ *)
(* E1 — Figure 2: the data-link sublayer stack, with the error-
   detection mechanism swapped CRC-32 -> CRC-64 (and others) without
   touching framing, line coding or ARQ. *)

let e1 () =
  section "E1" "data-link sublayering (Fig 2): detector swaps over a noisy link";
  let payloads = List.init 200 (Printf.sprintf "frame-%04d") in
  Printf.printf "  %-12s %-12s %10s %10s %10s %10s\n" "detector" "corruption"
    "delivered" "exact" "frames_tx" "retx";
  List.iter
    (fun detector ->
      List.iter
        (fun corruption ->
          let engine = Sim.Engine.create ~seed:101 () in
          let spec = { Datalink.Stack.default_spec with detector } in
          let channel = { Sim.Channel.ideal with corruption } in
          let link = Datalink.Stack.link engine channel spec in
          let got = Datalink.Stack.transfer engine link payloads in
          let st = Datalink.Stack.arq_stats link.Datalink.Stack.a in
          Printf.printf "  %-12s %-12.2f %10d %10b %10d %10d\n" detector.Datalink.Detector.name
            corruption (List.length got) (got = payloads) st.Datalink.Arq.data_sent
            st.Datalink.Arq.retransmissions)
        [ 0.0; 0.05; 0.2 ])
    [ Datalink.Detector.crc Bitkit.Crc.crc32;
      Datalink.Detector.crc Bitkit.Crc.crc64_xz;
      Datalink.Detector.internet ];
  headline "every detector swap preserves exact delivery; only overhead changes (T3)";
  (* MAC alternative sublayer (broadcast links) *)
  Printf.printf "\n  MAC sublayer (802.11-style alternative):\n";
  Printf.printf "  %-22s %6s %10s %12s %10s\n" "policy" "plen" "offered" "utilisation"
    "fairness";
  List.iter
    (fun policy ->
      List.iter
        (fun plen ->
          List.iter
            (fun arrival ->
              let r =
                Datalink.Mac.simulate ~seed:7 ~plen ~stations:10 ~slots:40_000 ~arrival
                  policy
              in
              Printf.printf "  %-22s %6d %10.2f %12.3f %10.3f\n"
                (Datalink.Mac.policy_name policy) plen r.Datalink.Mac.offered_load
                r.Datalink.Mac.utilisation r.Datalink.Mac.fairness)
            [ 0.05; 0.2 ])
        [ 1; 4 ])
    [ Datalink.Mac.Aloha 0.1; Datalink.Mac.Csma 0.1 ];
  headline "carrier sensing only pays once transmissions outlive a slot (plen > 1)" 

(* ------------------------------------------------------------------ *)
(* E2 — Figures 3/4: network sublayering; DV <-> LS swap leaves
   forwarding untouched; convergence and failure recovery. *)

let e2 () =
  section "E2" "network sublayering (Figs 3-4): DV <-> LS swap, convergence";
  Printf.printf "  %-16s %-10s %12s %14s %12s %14s\n" "topology" "protocol"
    "converge(s)" "reconverge(s)" "ctl-bytes" "paths=shortest";
  let protocols =
    [ ("DV", fun () -> Network.Distance_vector.factory ());
      ("LS", fun () -> Network.Link_state.factory ());
      ("PV", fun () -> Network.Path_vector.factory ()) ]
  in
  List.iter
    (fun (tname, n, edges) ->
      List.iter
        (fun (pname, factory) ->
          let engine = Sim.Engine.create ~seed:33 () in
          let net = Network.Topology.build engine ~routing:(factory ()) ~n edges in
          let t0 = Network.Topology.converge net in
          let bytes0 = Network.Topology.routing_traffic_bytes net in
          let a, b = List.nth edges 0 in
          Network.Topology.fail_link net a b;
          let t1 = Network.Topology.converge net in
          let shortest =
            let d = Network.Topology.reference_distances ~n (Network.Topology.alive_edges net) in
            let ok = ref true in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                if i <> j && d.(i).(j) <> max_int then
                  match Network.Topology.fib_path net ~src:i ~dst:j with
                  | Some p when List.length p - 1 = d.(i).(j) -> ()
                  | _ -> ok := false
              done
            done;
            !ok
          in
          Printf.printf "  %-16s %-10s %12s %14s %12d %14b\n" tname pname
            (match t0 with Some t -> Printf.sprintf "%.1f" t | None -> "-")
            (match t1 with
            | Some t -> Printf.sprintf "%.1f" (t -. Option.value ~default:0. t0)
            | None -> "-")
            bytes0 shortest;
          Network.Topology.stop net)
        protocols)
    [ ("ring(10)", 10, Network.Topology.ring 10);
      ("grid(4x4)", 16, Network.Topology.grid 4 4);
      ("random(20)", 20, Network.Topology.random ~n:20 ~extra:10 ~seed:5) ];
  headline "three route-computation mechanisms swapped beneath an unchanged forwarding sublayer"

(* ------------------------------------------------------------------ *)
(* Transport helpers shared by E3/E4/E10/E12/E13. *)

type run_result = {
  ok : bool;
  vtime : float;
  goodput : float;  (* bytes per virtual second *)
}

let run_transfer ?(config = Transport.Config.default) ?(fa = Transport.Host.sublayered)
    ?(fb = Transport.Host.sublayered) ~seed ~bytes channel =
  let open Transport in
  let engine = Sim.Engine.create ~seed () in
  let a, b = Host.pair engine ~config ~factory_a:fa ~factory_b:fb channel in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c -> server := Some c);
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data seed bytes in
  Host.write c data;
  Host.close c;
  let rec drive () =
    if Sim.Engine.now engine < 600. && not (Host.finished c) then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
      drive ()
    end
  in
  drive ();
  let vtime = Float.max 0.001 (Sim.Engine.now engine) in
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
  let ok = match !server with Some srv -> Host.received srv = data | None -> false in
  { ok; vtime; goodput = Float.of_int bytes /. vtime }

(* ------------------------------------------------------------------ *)
(* E3 — Figures 5/6: the sublayered TCP under a loss/reorder sweep. *)

let e3 () =
  section "E3" "sublayered TCP (Figs 5-6): loss sweep, 200 KB streams";
  Printf.printf "  %-10s %10s %12s %14s\n" "loss" "exact" "time(s)" "goodput(KB/s)";
  List.iter
    (fun loss ->
      let r = run_transfer ~seed:55 ~bytes:200_000 (Sim.Channel.lossy loss) in
      Printf.printf "  %-10.2f %10b %12.2f %14.0f\n" loss r.ok r.vtime (r.goodput /. 1024.))
    [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ];
  let r = run_transfer ~seed:56 ~bytes:200_000 Sim.Channel.harsh in
  Printf.printf "  %-10s %10b %12.2f %14.0f\n" "harsh" r.ok r.vtime (r.goodput /. 1024.);
  headline "exactly-once in-order byte streams survive loss, reorder and duplication"

(* ------------------------------------------------------------------ *)
(* E4 — §3.1 interop: the shim makes the sublayered endpoint speak
   RFC 793 and interoperate with the monolithic stack. *)

let e4 () =
  section "E4" "header isomorphism + interop (shim, §3.1)";
  Printf.printf "  %-28s %10s %12s\n" "pairing" "exact" "time(s)";
  let open Transport in
  List.iter
    (fun (name, fa, fb) ->
      let r = run_transfer ~fa ~fb ~seed:66 ~bytes:100_000 (Sim.Channel.lossy 0.03) in
      Printf.printf "  %-28s %10b %12.2f\n" name r.ok r.vtime)
    [ ("sublayered <-> sublayered", Host.sublayered, Host.sublayered);
      ("monolithic <-> monolithic", Tcp_monolithic.factory, Tcp_monolithic.factory);
      ("shim       ->  monolithic", Shim.factory, Tcp_monolithic.factory);
      ("monolithic ->  shim", Tcp_monolithic.factory, Shim.factory);
      ("shim       <-> shim", Shim.factory, Shim.factory) ];
  headline "all five pairings deliver identical byte streams at comparable speed"

(* ------------------------------------------------------------------ *)
(* E5 — §4.1: the library of valid stuffing schemes. *)

let e5 () =
  section "E5" "stuffing-rule search (§4.1: paper found 66 alternate rules)";
  let show_outcome o =
    Printf.printf "  space %-28s: %6d candidates, %5d valid\n" o.Stuffing.Search.space.Stuffing.Search.sname
      o.Stuffing.Search.candidates o.Stuffing.Search.valid;
    List.iter
      (fun (k, n) -> Printf.printf "      trigger length %d: %4d valid\n" k n)
      o.Stuffing.Search.by_trigger_len
  in
  show_outcome (Stuffing.Search.run ~best_limit:3 Stuffing.Search.structured_space);
  (* rules valid for the two flags the paper discusses *)
  let fixed_flag flag_str =
    let flag = Stuffing.Rule.bits_of_string flag_str in
    let count = ref 0 and total = ref 0 in
    for k = 1 to 7 do
      for tv = 0 to (1 lsl k) - 1 do
        List.iter
          (fun stuff ->
            incr total;
            let trigger = List.init k (fun i -> (tv lsr (k - 1 - i)) land 1 = 1) in
            let s = { Stuffing.Rule.flag; rule = { Stuffing.Rule.trigger; stuff } } in
            if Stuffing.Automaton.valid s then incr count)
          [ false; true ]
      done
    done;
    Printf.printf "  flag %s: %d/%d (trigger,stuff) rules valid\n" flag_str !count !total
  in
  fixed_flag "01111110";
  fixed_flag "00000010";
  let o = Stuffing.Search.run ~best_limit:3 (Stuffing.Search.free_space ~trigger_lens:[ 7 ]) in
  show_outcome o;
  headline
    "HDLC and the paper's improved scheme are both (re)discovered; counts per space in EXPERIMENTS.md"

(* ------------------------------------------------------------------ *)
(* E6 — §4.1: overhead of stuffing rules under the random model. *)

let e6 () =
  section "E6" "stuffing overhead (§4.1: 1/32 for HDLC vs 1/128 improved)";
  Printf.printf "  %-45s %10s %12s %12s\n" "scheme" "naive" "stationary" "empirical";
  let row name scheme =
    let r = scheme.Stuffing.Rule.rule in
    Printf.printf "  %-45s 1/%-8.0f 1/%-10.1f 1/%-10.1f\n" name
      (1. /. Stuffing.Overhead.naive r)
      (1. /. Stuffing.Overhead.stationary r)
      (1. /. Stuffing.Overhead.empirical ~seed:5 r)
  in
  row "HDLC (flag 01111110, stuff 0 after 11111)" Stuffing.Rule.hdlc;
  row "paper (flag 00000010, stuff 1 after 0000001)" Stuffing.Rule.paper_best;
  let best = (Stuffing.Search.run ~best_limit:3 Stuffing.Search.structured_space).Stuffing.Search.best in
  List.iter
    (fun (s, _) -> row (Format.asprintf "search best: %a" Stuffing.Rule.pp_scheme s) s)
    best;
  headline "paper's naive numbers reproduced exactly (1/32, 1/128); exact HDLC rate is 1/62";
  headline "improvement factor: naive 4.0x, exact %.2fx"
    (Stuffing.Overhead.stationary Stuffing.Rule.hdlc.rule
    /. Stuffing.Overhead.stationary Stuffing.Rule.paper_best.rule)

(* ------------------------------------------------------------------ *)
(* E7 — §4.1: the executable lemma suite (paper: 57 Coq lemmas). *)

let e7 () =
  section "E7" "executable lemma suite (§4.1: paper proved 57 lemmas)";
  let by_sub = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let k = l.Stuffing.Lemmas.sublayer in
      Hashtbl.replace by_sub k (1 + Option.value ~default:0 (Hashtbl.find_opt by_sub k)))
    Stuffing.Lemmas.all;
  Hashtbl.iter (fun k n -> Printf.printf "  %-14s %3d lemmas\n" k n) by_sub;
  let failures = Stuffing.Lemmas.failures Stuffing.Lemmas.all in
  Printf.printf "  total %d lemmas, %d failures (exhaustive to %d bits + exact automaton)\n"
    (List.length Stuffing.Lemmas.all) (List.length failures)
    Stuffing.Lemmas.exhaustive_bound;
  headline "all lemmas machine-checked; stratified per sublayer as the paper's proof was"

(* ------------------------------------------------------------------ *)
(* E8 — §4.2: verification effort, monolithic vs compositional. *)

let e8 () =
  section "E8" "model checking (§4.2): monolithic vs per-sublayer obligations";
  let row m =
    let r = Mcheck.Checker.run m in
    Printf.printf "  %-34s %9d states %9d transitions  %s\n" r.Mcheck.Checker.model
      r.Mcheck.Checker.states r.Mcheck.Checker.transitions
      (match r.Mcheck.Checker.violation with
      | None -> if r.Mcheck.Checker.deadlocks = 0 then "holds" else
          Printf.sprintf "holds, %d deadlocks" r.Mcheck.Checker.deadlocks
      | Some (m, _) -> "VIOLATED: " ^ m);
    r.Mcheck.Checker.states
  in
  let cm = row (Mcheck.Model_cm.model Mcheck.Model_cm.default) in
  let rd = row (Mcheck.Model_rd.model { Mcheck.Model_rd.default with n = 2 }) in
  let osr = row (Mcheck.Model_osr.model ~n:2) in
  let close = row (Mcheck.Model_cm.close_model ~capacity:2) in
  let mono = row (Mcheck.Model_mono.model Mcheck.Model_mono.default) in
  headline "compositional total %d states vs monolithic %d (%.1fx larger)" (cm + rd + osr + close)
    mono
    (Float.of_int mono /. Float.of_int (cm + rd + osr + close));
  let no_retx =
    Mcheck.Checker.run (Mcheck.Model_rd.model { Mcheck.Model_rd.default with retransmit = false })
  in
  Printf.printf "  (rd without retransmission: %d deadlocks found — the checker earns its keep)\n"
    no_retx.Mcheck.Checker.deadlocks

(* ------------------------------------------------------------------ *)
(* E9 — §4.2/§2.3: entangled state, quantified. *)

let e9 () =
  section "E9" "entanglement metric (§2.3/§4.2: shared PCB state)";
  Format.printf "%a" Mcheck.Entangle.pp_summary ();
  let mono = Mcheck.Entangle.entangled_pairs Mcheck.Entangle.monolithic in
  let sub =
    List.fold_left (fun a i -> a + Mcheck.Entangle.entangled_pairs i) 0
      Mcheck.Entangle.sublayered
  in
  headline "monolithic: %d entangled function pairs; sublayered: %d, none crossing a sublayer"
    mono sub

(* ------------------------------------------------------------------ *)
(* E10 — §3.1 "Replace": swap congestion control and CM mechanisms. *)

let e10 () =
  section "E10" "replaceability (challenge 5): CC and ISN swaps";
  Printf.printf "  %-14s %10s %12s %12s\n" "congestion" "exact" "time@2%loss" "time@8%loss";
  List.iter
    (fun cc ->
      let cfg = { Transport.Config.default with cc } in
      let a = run_transfer ~config:cfg ~seed:77 ~bytes:150_000 (Sim.Channel.lossy 0.02) in
      let b = run_transfer ~config:cfg ~seed:78 ~bytes:150_000 (Sim.Channel.lossy 0.08) in
      Printf.printf "  %-14s %10b %12.2f %12.2f\n" cc.Transport.Cc.algo_name (a.ok && b.ok)
        a.vtime b.vtime)
    Transport.Cc.all;
  Printf.printf "  %-14s %10s\n" "isn scheme" "exact";
  List.iter
    (fun (name, isn) ->
      let r =
        run_transfer
          ~config:{ Transport.Config.default with isn }
          ~seed:79 ~bytes:20_000 Sim.Channel.ideal
      in
      Printf.printf "  %-14s %10b\n" name r.ok)
    [ ("clock", Transport.Config.Clock); ("hashed", Transport.Config.Hashed 9);
      ("counter", Transport.Config.Counter 0) ];
  (* Whole-CM replacement: Watson's timer-based scheme (no handshake). *)
  let w = Transport.Tcp_watson.factory () in
  let r = run_transfer ~fa:w ~fb:w ~seed:80 ~bytes:100_000 (Sim.Channel.lossy 0.03) in
  Printf.printf "  %-14s %10b %12.2f   (timer-based CM: no SYN/FIN at all)\n"
    "watson-cm" r.ok r.vtime;
  let engine = Sim.Engine.create () in
  let advance () = Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.01) engine in
  Printf.printf "  ISN schemes: same-tuple extrapolation / off-path attack success:\n";
  List.iter
    (fun (g, make) ->
      Printf.printf "    %-10s %.2f / %.2f\n" g.Transport.Isn.gname
        (Transport.Isn.predictability g ~samples:200 ~advance)
        (Transport.Isn.attack_success ~make ~trials:50))
    [ (Transport.Isn.counter (), fun ~trial:_ -> Transport.Isn.counter ());
      (Transport.Isn.clock engine, fun ~trial:_ -> Transport.Isn.clock engine);
      ( Transport.Isn.hashed engine ~secret:1,
        fun ~trial -> Transport.Isn.hashed engine ~secret:(trial * 7919) ) ];
  headline "every mechanism swap is a value/module substitution; no other sublayer changed"

(* ------------------------------------------------------------------ *)
(* E11 — §3.1 hardware offload partitions. *)

let e11 () =
  section "E11" "hardware offload (§3.1): sublayer partitions vs fast/slow path";
  let w = Offload.workload_of_transfer ~segments:10_000 ~loss:0.02 in
  List.iter
    (fun p -> Format.printf "  %a" Offload.pp_report (Offload.simulate p w))
    Offload.partitions;
  List.iter
    (fun frac ->
      Format.printf "  %a" Offload.pp_report (Offload.fast_slow_path ~slow_fraction:frac w))
    [ 0.02; 0.1; 0.3 ];
  let best, best_speedup = Offload.best_partition w in
  Printf.printf "  exhaustive optimum over all 16 partitions: %s (%.2fx)\n"
    best.Offload.pname best_speedup;
  let dp = Offload.simulate Offload.datapath_hw w in
  let fs = Offload.fast_slow_path ~slow_fraction:0.1 w in
  headline
    "sublayer cut %.2fx is churn-insensitive; fast/slow drops from 8.7x at 2%% slow to %.2fx at 10%% and crosses below at ~20%%"
    dp.Offload.speedup_vs_software fs.Offload.speedup_vs_software

(* ------------------------------------------------------------------ *)
(* E12 — §3.1 performance objection: sublayered vs monolithic cost. *)

(* One clock for every wall-time figure. [Sys.time] is process CPU time:
   it overstates multi-domain runs (summing across cores) and stalls
   while the process sleeps, so benches that mixed it with
   [Unix.gettimeofday] (E23) were not comparable. Every bench below
   reads this wall clock. *)
let now_wall = Unix.gettimeofday

let wall f =
  let t0 = now_wall () in
  let r = f () in
  (r, now_wall () -. t0)

let e12 () =
  section "E12" "performance (§3.1): sublayered vs monolithic processing cost";
  Printf.printf "  %-24s %12s %14s %16s\n" "stack" "exact" "wall(s)/500KB" "virtual time(s)";
  let open Transport in
  List.iter
    (fun (name, fa, fb) ->
      let r, w = wall (fun () -> run_transfer ~fa ~fb ~seed:88 ~bytes:500_000 Sim.Channel.ideal) in
      Printf.printf "  %-24s %12b %14.3f %16.2f\n" name r.ok w r.vtime)
    [ ("sublayered", Host.sublayered, Host.sublayered);
      ("monolithic", Tcp_monolithic.factory, Tcp_monolithic.factory);
      ("sublayered+shim", Shim.factory, Shim.factory);
      ( "sublayered+record",
        Tcp_secure.factory ~key:Tcp_secure.demo_key,
        Tcp_secure.factory ~key:Tcp_secure.demo_key ) ];
  headline "sublayer crossings cost constants, not asymptotics (see also the microbenches)"

(* ------------------------------------------------------------------ *)
(* E13 — Figure 1: peer-wise modularity; mixed stacks interoperate. *)

let e13 () =
  section "E13" "peer sublayer independence (Fig 1): mixed-mechanism endpoints";
  let ccs = [ Transport.Cc.reno; Transport.Cc.cubic; Transport.Cc.vegas ] in
  Printf.printf "  client cc \\ server cc:";
  List.iter (fun c -> Printf.printf " %8s" c.Transport.Cc.algo_name) ccs;
  print_newline ();
  List.iter
    (fun ca ->
      Printf.printf "  %-22s" ca.Transport.Cc.algo_name;
      List.iter
        (fun cb ->
          let engine = Sim.Engine.create ~seed:91 () in
          let open Transport in
          let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
          let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
          let ch dir =
            Sim.Channel.create engine (Sim.Channel.lossy 0.02) ~size:Bitkit.Slice.length
              ~deliver:(fun s -> !dir s) ()
          in
          let ab = ch to_b and ba = ch to_a in
          let a = Host.create engine ~config:{ Config.default with cc = ca } ~name:"A"
              ~link:(Sublayer.Link.make ~transmit:(fun s -> Sim.Channel.send ab s) ()) () in
          let b = Host.create engine ~config:{ Config.default with cc = cb } ~name:"B"
              ~link:(Sublayer.Link.make ~transmit:(fun s -> Sim.Channel.send ba s) ()) () in
          to_a := Host.from_wire a;
          to_b := Host.from_wire b;
          Host.listen b ~port:80;
          let server = ref None in
          Host.on_accept b (fun c -> server := Some c);
          let c = Host.connect a ~remote_port:80 () in
          let data = random_data 92 50_000 in
          Host.write c data;
          Host.close c;
          Sim.Engine.run ~until:120. engine;
          let ok = match !server with Some s -> Host.received s = data | None -> false in
          Printf.printf " %8b" ok)
        ccs;
      print_newline ())
    ccs;
  headline "every client/server mechanism combination interoperates (peers, not copies)"

(* ------------------------------------------------------------------ *)
(* E14 — §2.1: replaceable error recovery; efficiency curves. *)

let e14 () =
  section "E14" "ARQ mechanisms (§2.1): efficiency vs loss";
  let payloads = List.init 150 (Printf.sprintf "pdu-%05d") in
  Printf.printf "  %-18s %8s %10s %10s %10s\n" "arq" "loss" "exact" "frames_tx" "time(s)";
  List.iter
    (fun (name, arq) ->
      List.iter
        (fun loss ->
          let engine = Sim.Engine.create ~seed:44 () in
          let spec =
            { Datalink.Stack.default_spec with arq;
              arq_config = { Datalink.Arq.window = 8; rto = 0.15; max_retries = 30 } }
          in
          let link = Datalink.Stack.link engine (Sim.Channel.lossy loss) spec in
          let got = Datalink.Stack.transfer engine link payloads in
          let st = Datalink.Stack.arq_stats link.Datalink.Stack.a in
          Printf.printf "  %-18s %8.2f %10b %10d %10.2f\n" name loss (got = payloads)
            st.Datalink.Arq.data_sent (Sim.Engine.now engine))
        [ 0.0; 0.05; 0.15 ])
    [ ("stop-and-wait", (module Datalink.Arq_stop_and_wait : Datalink.Arq.S));
      ("go-back-n", (module Datalink.Arq_go_back_n));
      ("selective-repeat", (module Datalink.Arq_selective_repeat)) ];
  headline "identical delivered data behind one signature; efficiency ordering SR <= GBN <= SW"

(* ------------------------------------------------------------------ *)
(* E15 — extensions: end-to-end ECN (the Fig 6 OSR bits) and the
   unordered-message sublayer replacing OSR (SST/Minion as a sublayering
   use case, paper §6). *)

let e15 () =
  section "E15" "extensions: ECN end-to-end; Msg sublayer replacing OSR";
  (* ECN: marking channel, zero loss *)
  let ecn marking =
    let engine = Sim.Engine.create ~seed:5 () in
    let b_ref = ref None in
    let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let ab =
      Sim.Channel.create engine { Sim.Channel.ideal with marking } ~size:Bitkit.Slice.length
        ~mark:Transport.Segment.mark_ce
        ~deliver:(fun s -> !to_b s)
        ()
    in
    let ba =
      Sim.Channel.create engine Sim.Channel.ideal ~size:Bitkit.Slice.length
        ~deliver:(fun s -> !to_a s)
        ()
    in
    let received = Buffer.create 16 in
    let a =
      Transport.Tcp_sublayered.create engine ~name:"A" Transport.Config.default
        ~local_port:1 ~remote_port:2
        ~transmit:(fun s -> Sim.Channel.send ab s)
        ~events:(fun _ -> ())
    in
    let b =
      Transport.Tcp_sublayered.create engine ~name:"B" Transport.Config.default
        ~local_port:2 ~remote_port:1
        ~transmit:(fun s -> Sim.Channel.send ba s)
        ~events:(function
          | `Data s -> (
              Bitkit.Slice.add_to_buffer received s;
              match !b_ref with
              | Some b -> Transport.Tcp_sublayered.read b (Bitkit.Slice.length s)
              | None -> ())
          | _ -> ())
    in
    b_ref := Some b;
    to_a := Transport.Tcp_sublayered.from_wire a;
    to_b := Transport.Tcp_sublayered.from_wire b;
    Transport.Tcp_sublayered.listen b;
    Transport.Tcp_sublayered.connect a;
    let data = random_data 5 150_000 in
    Transport.Tcp_sublayered.write a data;
    Sim.Engine.run ~until:30. engine;
    (Buffer.contents received = data, Transport.Tcp_sublayered.cwnd a)
  in
  Printf.printf "  ECN (AQM marks instead of dropping; zero loss):\n";
  Printf.printf "  %-10s %10s %12s\n" "marking" "exact" "final cwnd";
  List.iter
    (fun m ->
      let ok, cwnd = ecn m in
      Printf.printf "  %-10.2f %10b %12.0f\n" m ok cwnd)
    [ 0.0; 0.02; 0.1; 0.3 ];
  (* Msg sublayer vs byte stream: HOL blocking under loss *)
  let hol_channel loss = { (Sim.Channel.lossy loss) with delay = 0.02 } in
  (* The HOL workload is interactive (Minion's use case): one 200-byte
     message every 50 ms over a 40 ms RTT link. Latency is measured per
     message, send to delivery. In stream mode a lost segment also stalls
     every message sent during its recovery; in message mode it delays
     only itself. *)
  let n_msgs = 200 in
  let period = 0.05 in
  let mk i = Printf.sprintf "%04d%s" i (String.make 196 'm') in
  let send_time i = Float.of_int i *. period in
  let id_of m = int_of_string (String.sub m 0 4) in
  let latencies arrivals =
    List.map (fun (t, m) -> t -. send_time (id_of m)) arrivals
  in
  let stream_mode loss =
    let engine = Sim.Engine.create ~seed:99 () in
    let a, b = Transport.Host.pair engine (hol_channel loss) in
    Transport.Host.listen b ~port:80;
    let arrivals = ref [] in
    let acc = Buffer.create 1024 in
    Transport.Host.on_accept b (fun conn ->
        Transport.Host.on_data conn (fun chunk ->
            Buffer.add_string acc chunk;
            while Buffer.length acc >= 200 do
              let m = Buffer.sub acc 0 200 in
              let rest = Buffer.sub acc 200 (Buffer.length acc - 200) in
              Buffer.clear acc;
              Buffer.add_string acc rest;
              arrivals := (Sim.Engine.now engine, m) :: !arrivals
            done));
    let c = Transport.Host.connect a ~remote_port:80 () in
    for i = 0 to n_msgs - 1 do
      ignore
        (Sim.Engine.at engine ~time:(send_time i) (fun () ->
             Transport.Host.write c (mk i)))
    done;
    Sim.Engine.run ~until:(send_time n_msgs +. 30.) engine;
    latencies (List.rev !arrivals)
  in
  let msg_mode loss =
    let engine = Sim.Engine.create ~seed:99 () in
    let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let ch dir =
      Sim.Channel.create engine (hol_channel loss) ~size:Bitkit.Slice.length
        ~deliver:(fun s -> !dir s)
        ()
    in
    let ab = ch to_b and ba = ch to_a in
    let arrivals = ref [] in
    let a =
      Transport.Tcp_messages.create engine ~name:"A" Transport.Config.default
        ~local_port:1 ~remote_port:2
        ~transmit:(fun s -> Sim.Channel.send ab s)
        ~events:(fun _ -> ())
    in
    let b =
      Transport.Tcp_messages.create engine ~name:"B" Transport.Config.default
        ~local_port:2 ~remote_port:1
        ~transmit:(fun s -> Sim.Channel.send ba s)
        ~events:(function
          | `Msg m -> arrivals := (Sim.Engine.now engine, m) :: !arrivals
          | _ -> ())
    in
    to_a := Transport.Tcp_messages.from_wire a;
    to_b := Transport.Tcp_messages.from_wire b;
    Transport.Tcp_messages.listen b;
    Transport.Tcp_messages.connect a;
    for i = 0 to n_msgs - 1 do
      ignore
        (Sim.Engine.at engine ~time:(send_time i) (fun () ->
             Transport.Tcp_messages.send a (mk i)))
    done;
    Sim.Engine.run ~until:(send_time n_msgs +. 30.) engine;
    latencies (List.rev !arrivals)
  in
  let stats times =
    let n = List.length times in
    let sorted = List.sort Float.compare times in
    let nth p = List.nth sorted (min (n - 1) (int_of_float (Float.of_int n *. p))) in
    (n, nth 0.5, nth 0.95)
  in
  Printf.printf
    "\n  HOL blocking: 200B message every 50 ms over a 40 ms RTT link, latency (s):\n";
  Printf.printf "  %-10s %-14s %10s %10s %10s\n" "loss" "mode" "delivered" "p50" "p95";
  List.iter
    (fun loss ->
      let sn, sp50, sp95 = stats (stream_mode loss) in
      let mn, mp50, mp95 = stats (msg_mode loss) in
      Printf.printf "  %-10.2f %-14s %10d %10.3f %10.3f\n" loss "byte-stream" sn sp50 sp95;
      Printf.printf "  %-10.2f %-14s %10d %10.3f %10.3f\n" loss "messages" mn mp50 mp95)
    [ 0.0; 0.05; 0.15 ];
  headline
    "a lost segment delays only its own message in Msg mode; the byte stream stalls everything queued behind it"

(* ------------------------------------------------------------------ *)
(* E16 — ablation: Nagle x delayed acks (the design-choice knobs OSR and
   RD hide behind their interfaces). *)

let e16 () =
  section "E16" "ablation: Nagle x delayed acks on a tinygram workload";
  let run ~nagle ~delayed_ack =
    let config = { Transport.Config.default with nagle; delayed_ack } in
    let engine = Sim.Engine.create ~seed:61 () in
    let channel = { Sim.Channel.ideal with delay = 0.005 } in
    let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let ch dir =
      Sim.Channel.create engine channel ~size:Bitkit.Slice.length
        ~deliver:(fun s -> !dir s)
        ()
    in
    let ab = ch to_b and ba = ch to_a in
    let received = Buffer.create 4096 in
    let a =
      Transport.Tcp_sublayered.create engine ~name:"A" config ~local_port:1
        ~remote_port:2
        ~transmit:(fun s -> Sim.Channel.send ab s)
        ~events:(fun _ -> ())
    in
    let b =
      Transport.Tcp_sublayered.create engine ~name:"B" config ~local_port:2
        ~remote_port:1
        ~transmit:(fun s -> Sim.Channel.send ba s)
        ~events:(function
          | `Data s -> Bitkit.Slice.add_to_buffer received s
          | _ -> ())
    in
    to_a := Transport.Tcp_sublayered.from_wire a;
    to_b := Transport.Tcp_sublayered.from_wire b;
    Transport.Tcp_sublayered.listen b;
    Transport.Tcp_sublayered.connect a;
    (* 100 x 50 B application writes, 2 ms apart, after establishment *)
    let writes = List.init 100 (fun i -> Printf.sprintf "%05d%s" i (String.make 45 't')) in
    List.iteri
      (fun i w ->
        ignore
          (Sim.Engine.at engine
             ~time:(1.0 +. (Float.of_int i *. 0.002))
             (fun () -> Transport.Tcp_sublayered.write a w)))
      writes;
    let expected = String.concat "" writes in
    let done_at = ref infinity in
    let rec watch () =
      if Buffer.length received >= String.length expected && !done_at = infinity then
        done_at := Sim.Engine.now engine
      else ignore (Sim.Engine.schedule engine ~after:0.001 watch)
    in
    watch ();
    Sim.Engine.run ~until:30. engine;
    let exact = Buffer.contents received = expected in
    ( exact,
      (Transport.Tcp_sublayered.osr_stats a).Transport.Osr.segments_out,
      (Transport.Tcp_sublayered.rd_stats b).Transport.Rd.acks_only,
      !done_at -. 1.0 )
  in
  Printf.printf "  %-8s %-12s %8s %10s %10s %14s\n" "nagle" "delayed-ack" "exact"
    "segments" "pure-acks" "last byte (s)";
  List.iter
    (fun (nagle, delayed_ack) ->
      let exact, segs, acks, t = run ~nagle ~delayed_ack in
      Printf.printf "  %-8b %-12b %8b %10d %10d %14.3f\n" nagle delayed_ack exact segs
        acks t)
    [ (false, false); (false, true); (true, false); (true, true) ];
  headline
    "Nagle cuts segments ~10x; delayed acks halve pure acks; together they add the classic ack-delay latency"

(* ------------------------------------------------------------------ *)
(* E18 — robustness under injected faults: Gilbert–Elliott burst loss
   vs i.i.d. loss at equal average rate, and the retransmission give-up
   (ETIMEDOUT) path on a blackholed link. *)

let e18 () =
  section "E18" "fault injection: burst vs i.i.d. loss; blackhole give-up";
  Printf.printf "  %-24s %10s %12s %14s\n" "channel" "exact" "time(s)" "goodput(KB/s)";
  (* Goodput shape only: give-up disabled so deep bursts crawl at rto_max
     instead of tripping the E18 abort path measured separately below. *)
  let patient =
    { Transport.Config.default with give_up_after = infinity; max_retries = max_int }
  in
  List.iter
    (fun loss ->
      let iid =
        run_transfer ~config:patient ~seed:81 ~bytes:200_000
          { (Sim.Channel.lossy loss) with delay = 0.02 }
      in
      let burst =
        run_transfer ~config:patient ~seed:81 ~bytes:200_000
          { (Sim.Channel.burst_lossy ~loss ~burst_len:6.) with delay = 0.02 }
      in
      Printf.printf "  %-24s %10b %12.2f %14.0f\n"
        (Printf.sprintf "iid   loss=%.2f" loss)
        iid.ok iid.vtime (iid.goodput /. 1024.);
      Printf.printf "  %-24s %10b %12.2f %14.0f\n"
        (Printf.sprintf "burst loss=%.2f len=6" loss)
        burst.ok burst.vtime (burst.goodput /. 1024.))
    [ 0.02; 0.05; 0.1 ];
  (* The give-up path: partition the link mid-transfer. Never healed, the
     sender must indicate `Aborted within give_up_after and the engine
     must quiesce; healed in time, the same scenario delivers exactly. *)
  let abort_demo heal =
    let open Transport in
    let engine = Sim.Engine.create ~seed:82 () in
    let config = { Config.default with give_up_after = 8.0; max_retries = 12 } in
    let a, b, ab, ba = Host.pair_channels engine ~config Sim.Channel.ideal in
    Host.listen b ~port:80;
    let server = ref None in
    Host.on_accept b (fun c -> server := Some c);
    let c = Host.connect a ~remote_port:80 () in
    let first = random_data 9 100_000 and second = random_data 10 100_000 in
    Host.write c first;
    let data = first ^ second in
    Sim.Faultplan.apply engine
      (Sim.Faultplan.Partition { at = 0.02 }
      :: (if heal then [ Sim.Faultplan.Heal { at = 3.0 } ] else []))
      [ Sim.Faultplan.target ~name:"a->b" ab; Sim.Faultplan.target ~name:"b->a" ba ];
    (* The second write lands in the blackhole: its give-up clock starts
       at 0.1, so the abort must come by 0.1 + give_up_after. *)
    ignore (Sim.Engine.at engine ~time:0.1 (fun () -> Host.write c second));
    let aborted_at = ref None in
    Host.on_event c (function
      | `Aborted -> aborted_at := Some (Sim.Engine.now engine)
      | _ -> ());
    Sim.Engine.run ~until:60. engine;
    let exact = match !server with Some s -> Host.received s = data | None -> false in
    (!aborted_at, exact, Sim.Engine.pending engine)
  in
  (match abort_demo false with
  | Some t, _, pending ->
      Printf.printf
        "\n  blackhole at 0.02s, never healed (give_up_after=8s):\n\
        \    aborted at t=%.2fs, %d events still pending\n" t pending
  | None, _, _ -> Printf.printf "\n  blackhole: sender failed to abort\n");
  (match abort_demo true with
  | None, exact, _ ->
      Printf.printf "  same blackhole healed at 3s: no abort, exact delivery=%b\n" exact
  | Some t, _, _ -> Printf.printf "  healed blackhole still aborted at t=%.2fs\n" t);
  headline
    "equal average loss, very different goodput: concentrated bursts are cheap for SACK at low rates but ~10x worse at 10%%; a blackholed sender aborts on deadline and the engine quiesces"

(* ------------------------------------------------------------------ *)
(* E19 — per-sublayer observability: every machine in the three
   transport stacks owns named counters; running the E18 fault
   schedules and diffing against an ideal-channel baseline shows
   exactly which sublayer absorbed the faults. A JSON report of every
   snapshot is written for offline comparison (and the CI artifact). *)

let e19 () =
  section "E19" "per-sublayer stats: counter deltas under E18 fault schedules";
  let open Transport in
  let run ~factory ~seed ~bytes channel =
    let stats_a = Sublayer.Stats.create ~label:"A" () in
    let stats_b = Sublayer.Stats.create ~label:"B" () in
    let engine = Sim.Engine.create ~seed () in
    let a, b =
      Host.pair engine ~factory_a:factory ~factory_b:factory ~stats_a ~stats_b channel
    in
    Host.listen b ~port:80;
    let server = ref None in
    Host.on_accept b (fun c -> server := Some c);
    let c = Host.connect a ~remote_port:80 () in
    let data = random_data seed bytes in
    Host.write c data;
    Host.close c;
    let rec drive () =
      if Sim.Engine.now engine < 600. && not (Host.finished c) then begin
        Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
        drive ()
      end
    in
    drive ();
    Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
    let ok = match !server with Some srv -> Host.received srv = data | None -> false in
    (ok, Sublayer.Stats.snapshot stats_a, Sublayer.Stats.snapshot stats_b)
  in
  let schedules =
    [ ("iid loss=0.05", { (Sim.Channel.lossy 0.05) with delay = 0.02 });
      ( "burst loss=0.05 len=6",
        { (Sim.Channel.burst_lossy ~loss:0.05 ~burst_len:6.) with delay = 0.02 } ) ]
  in
  let stacks =
    [ ("sublayered", Host.sublayered);
      ("watson", Tcp_watson.factory ());
      ("secure", Tcp_secure.factory ~key:Tcp_secure.demo_key) ]
  in
  let json = Buffer.create 4096 in
  Buffer.add_string json "{";
  let first_json = ref true in
  let add_json key snap =
    if not !first_json then Buffer.add_char json ',';
    first_json := false;
    Buffer.add_string json
      (Printf.sprintf "%S:%s" key (Sublayer.Stats.snapshot_to_json snap))
  in
  List.iter
    (fun (sname, factory) ->
      Printf.printf "\n  -- stack: %s --\n" sname;
      let ok0, base, _ =
        run ~factory ~seed:91 ~bytes:120_000 { Sim.Channel.ideal with delay = 0.02 }
      in
      add_json (sname ^ "/baseline") base;
      Printf.printf "  baseline (ideal channel, 120KB, exact=%b), sender counters:\n" ok0;
      List.iter (fun (k, v) -> Printf.printf "    %-28s %10d\n" k v) base;
      List.iter
        (fun (cname, ch) ->
          let ok, snap, _ = run ~factory ~seed:91 ~bytes:120_000 ch in
          let d = Sublayer.Stats.delta ~before:base ~after:snap in
          add_json (Printf.sprintf "%s/%s" sname cname) d;
          Printf.printf "  delta vs baseline under %s (exact=%b):\n" cname ok;
          List.iter (fun (k, v) -> Printf.printf "    %-28s %+10d\n" k v) d)
        schedules)
    stacks;
  Buffer.add_char json '}';
  let path = out_path "e19_stats.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  JSON report written to %s\n" path;
  headline
    "faults localise in the counters: loss shows up as rd.retransmits/cc.losses, never in dm or rec — the per-sublayer view a monolith cannot give"

(* ------------------------------------------------------------------ *)
(* E20 — causal span tracing: where does a byte's latency go? The
   sublayered stack runs the E18 fault schedules with a shared tracer;
   every finished span is a sojourn in one sublayer, so grouping span
   durations by sublayer.name is a latency-attribution table, and the
   whole run exports as Chrome trace_event JSON for Perfetto. *)

let e20 () =
  section "E20" "span tracing: per-sublayer latency attribution under E18 faults";
  let open Transport in
  let bytes = if smoke then 20_000 else 120_000 in
  let was_enabled = Sim.Tracer.enabled () in
  Sim.Tracer.set_enabled true;
  let schedules =
    [ ("iid loss=0.05", { (Sim.Channel.lossy 0.05) with delay = 0.02 });
      ( "burst loss=0.05 len=6",
        { (Sim.Channel.burst_lossy ~loss:0.05 ~burst_len:6.) with delay = 0.02 } ) ]
  in
  let last_trace = ref None in
  List.iter
    (fun (cname, channel) ->
      let tracer = Sim.Tracer.create ~capacity:65536 () in
      let engine = Sim.Engine.create ~seed:91 () in
      let a, b = Host.pair engine ~tracer channel in
      Host.listen b ~port:80;
      let server = ref None in
      Host.on_accept b (fun c -> server := Some c);
      let c = Host.connect a ~remote_port:80 () in
      let data = random_data 91 bytes in
      Host.write c data;
      Host.close c;
      let rec drive () =
        if Sim.Engine.now engine < 600. && not (Host.finished c) then begin
          Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
          drive ()
        end
      in
      drive ();
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
      let ok = match !server with Some srv -> Host.received srv = data | None -> false in
      (* Each finished interval span is one sojourn; instants (duration 0)
         are markers, not waiting time, and stay out of the table. *)
      let spans =
        List.filter
          (fun s ->
            Float.is_finite s.Sim.Tracer.sp_end && Sim.Tracer.duration s > 0.)
          (Sim.Tracer.spans tracer)
      in
      let groups = Hashtbl.create 16 in
      List.iter
        (fun s ->
          let k = s.Sim.Tracer.sp_sublayer ^ "." ^ s.Sim.Tracer.sp_name in
          let l = Option.value ~default:[] (Hashtbl.find_opt groups k) in
          Hashtbl.replace groups k (Sim.Tracer.duration s :: l))
        spans;
      let total =
        Hashtbl.fold (fun _ ds acc -> acc +. List.fold_left ( +. ) 0. ds) groups 0.
      in
      let pct sorted p =
        let n = Array.length sorted in
        sorted.(min (n - 1) (int_of_float (Float.of_int n *. p)))
      in
      Printf.printf "\n  %s (exact=%b, %d interval spans, %d evicted from ring):\n"
        cname ok (List.length spans) (Sim.Tracer.dropped tracer);
      Printf.printf "  %-24s %8s %12s %12s %8s\n" "sublayer.span" "count"
        "p50(ms)" "p99(ms)" "share";
      let rows = Hashtbl.fold (fun k ds acc -> (k, ds) :: acc) groups [] in
      List.iter
        (fun (k, ds) ->
          let a = Array.of_list (List.sort Float.compare ds) in
          let sum = Array.fold_left ( +. ) 0. a in
          Printf.printf "  %-24s %8d %12.2f %12.2f %7.1f%%\n" k (Array.length a)
            (pct a 0.5 *. 1e3) (pct a 0.99 *. 1e3)
            (100. *. sum /. total))
        (List.sort compare rows);
      last_trace := Some (Sim.Tracer.to_chrome_json tracer))
    schedules;
  (match !last_trace with
  | Some json ->
      let path = out_path "e20_trace.json" in
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.printf
        "\n  Chrome trace written to %s (open in ui.perfetto.dev or chrome://tracing)\n"
        path
  | None -> ());
  Sim.Tracer.set_enabled was_enabled;
  headline
    "burst loss moves latency share from osr.buffer into rd.flight and osr.reasm — the trace names the sublayer that held the byte"

(* ------------------------------------------------------------------ *)
(* E21 — many-flow scale: the timing-wheel scheduler vs the reference
   binary heap under thousands of concurrent sublayered TCP flows on the
   N-host fabric. Reports wall time, events/sec, the live-timer
   high-water mark and allocation for each (backend, flow-count) cell;
   every cell must reach exact delivery and quiescence. *)

let e21 () =
  section "E21" "many-flow scale: wheel vs heap scheduler at 10/100/1k/5k flows";
  let flow_counts = if smoke then [ 10; 100 ] else [ 10; 100; 1000; 5000 ] in
  let bytes = if smoke then 2_000 else 8_000 in
  let cell ~backend ~flows =
    let engine = Sim.Engine.create ~seed:67 ~backend () in
    let channel =
      { (Sim.Channel.lossy 0.01) with Sim.Channel.delay = 0.02 }
    in
    let fabric =
      Transport.Fabric.create engine ~hosts:8 ~channel ~flows ~bytes ()
    in
    let alloc0 = Gc.allocated_bytes () in
    let wall0 = now_wall () in
    let r =
      Sim.Workload.run ~spacing:0.005 ~until:900. ~name:"e21" ~engine ~flows
        (Transport.Fabric.ops fabric)
    in
    let wall = now_wall () -. wall0 in
    let alloc = Gc.allocated_bytes () -. alloc0 in
    let fired = r.Sim.Workload.soak.Sim.Soak.events_fired in
    let eps = if wall > 0. then float_of_int fired /. wall else 0. in
    if not (Sim.Workload.ok r) then
      Printf.printf "  !! %s/%d NOT CLEAN: %s\n"
        (match backend with `Wheel -> "wheel" | `Heap -> "heap")
        flows
        (Format.asprintf "%a" Sim.Workload.pp_report r);
    (r, wall, alloc, fired, eps)
  in
  let json = Buffer.create 1024 in
  Buffer.add_string json "{\"cells\":[";
  let first = ref true in
  Printf.printf "  %-7s %7s %10s %10s %12s %10s %10s %6s\n" "backend" "flows"
    "events" "wall(s)" "events/sec" "live_hwm" "alloc(MB)" "exact";
  let speed = Hashtbl.create 8 in
  List.iter
    (fun flows ->
      List.iter
        (fun backend ->
          let bname = match backend with `Wheel -> "wheel" | `Heap -> "heap" in
          let r, wall, alloc, fired, eps = cell ~backend ~flows in
          Hashtbl.replace speed (bname, flows) eps;
          Printf.printf "  %-7s %7d %10d %10.3f %12.0f %10d %10.1f %5d/%d\n"
            bname flows fired wall eps r.Sim.Workload.live_hwm
            (alloc /. 1048576.) r.Sim.Workload.exact r.Sim.Workload.flows;
          if not !first then Buffer.add_char json ',';
          first := false;
          Buffer.add_string json
            (Printf.sprintf
               "{\"backend\":%S,\"flows\":%d,\"events\":%d,\"wall_s\":%.6f,\"events_per_sec\":%.0f,\"live_hwm\":%d,\"allocated_bytes\":%.0f,\"exact\":%d,\"ok\":%b}"
               bname flows fired wall eps r.Sim.Workload.live_hwm alloc
               r.Sim.Workload.exact (Sim.Workload.ok r)))
        [ `Heap; `Wheel ])
    flow_counts;
  Buffer.add_string json "]}";
  let path = out_path "e21_scale.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  JSON report written to %s\n" path;
  let biggest = List.fold_left max 0 flow_counts in
  let w = try Hashtbl.find speed ("wheel", biggest) with Not_found -> 0. in
  let h = try Hashtbl.find speed ("heap", biggest) with Not_found -> 1. in
  headline
    "wheel vs heap at %d flows: %.0f vs %.0f events/sec (%.2fx) — O(1) schedule/cancel is what survives contact with thousands of RTO timers"
    biggest w h (if h > 0. then w /. h else 0.)

(* E22 — zero-copy data path: the wirebuf/slice path (one buffer per
   packet, headers pushed, views narrowed on rx) vs the legacy
   copy-per-sublayer mode ([Wirebuf.set_eager true], bit-identical wire
   bytes) on both scheduler backends. Reports bytes copied per delivered
   segment (from [Slice]'s process-wide copy accounting over DM's
   [segments_in] counter) and events/sec; same-seed cells must fire the
   same event count in both modes. *)

let e22 () =
  section "E22" "zero-copy slice path vs copy-per-sublayer at 100/1k/5k flows";
  let flow_counts = if smoke then [ 20; 100 ] else [ 100; 1000; 5000 ] in
  let bytes = if smoke then 2_000 else 8_000 in
  let cell ~backend ~eager ~flows =
    Bitkit.Wirebuf.set_eager eager;
    Fun.protect
      ~finally:(fun () -> Bitkit.Wirebuf.set_eager false)
      (fun () ->
        let engine = Sim.Engine.create ~seed:68 ~backend () in
        let channel =
          { (Sim.Channel.lossy 0.01) with Sim.Channel.delay = 0.02 }
        in
        let stats = Sublayer.Stats.create ~label:"e22" () in
        let fabric =
          Transport.Fabric.create engine ~hosts:8 ~stats ~channel ~flows ~bytes
            ()
        in
        Bitkit.Slice.reset_copied ();
        let wall0 = now_wall () in
        let r =
          Sim.Workload.run ~spacing:0.005 ~until:900. ~name:"e22" ~engine
            ~flows
            (Transport.Fabric.ops fabric)
        in
        let wall = now_wall () -. wall0 in
        let copied = Bitkit.Slice.copied_bytes () in
        let segments =
          List.fold_left
            (fun acc (name, v) ->
              if Filename.check_suffix name "dm.segments_in" then acc + v
              else acc)
            0
            (Sublayer.Stats.snapshot stats)
        in
        let fired = r.Sim.Workload.soak.Sim.Soak.events_fired in
        let eps = if wall > 0. then float_of_int fired /. wall else 0. in
        if not (Sim.Workload.ok r) then
          Printf.printf "  !! %s/%s/%d NOT CLEAN: %s\n"
            (match backend with `Wheel -> "wheel" | `Heap -> "heap")
            (if eager then "copy" else "slice")
            flows
            (Format.asprintf "%a" Sim.Workload.pp_report r);
        (r, wall, copied, segments, fired, eps))
  in
  let json = Buffer.create 1024 in
  Buffer.add_string json "{\"cells\":[";
  let first = ref true in
  Printf.printf "  %-7s %-6s %7s %10s %12s %12s %12s %10s\n" "backend" "mode"
    "flows" "events" "events/sec" "copied(B)" "segments" "B/segment";
  let table = Hashtbl.create 16 in
  List.iter
    (fun flows ->
      List.iter
        (fun backend ->
          let bname = match backend with `Wheel -> "wheel" | `Heap -> "heap" in
          List.iter
            (fun eager ->
              let mode = if eager then "copy" else "slice" in
              let r, wall, copied, segments, fired, eps =
                cell ~backend ~eager ~flows
              in
              let per_seg =
                if segments > 0 then
                  float_of_int copied /. float_of_int segments
                else 0.
              in
              Hashtbl.replace table (bname, mode, flows) (per_seg, eps, fired);
              Printf.printf "  %-7s %-6s %7d %10d %12.0f %12d %12d %10.1f\n"
                bname mode flows fired eps copied segments per_seg;
              if not !first then Buffer.add_char json ',';
              first := false;
              Buffer.add_string json
                (Printf.sprintf
                   "{\"backend\":%S,\"mode\":%S,\"flows\":%d,\"events\":%d,\"wall_s\":%.6f,\"events_per_sec\":%.0f,\"copied_bytes\":%d,\"segments\":%d,\"bytes_per_segment\":%.1f,\"exact\":%d,\"ok\":%b}"
                   bname mode flows fired wall eps copied segments per_seg
                   r.Sim.Workload.exact (Sim.Workload.ok r)))
            [ true; false ];
          (* Same seed, same backend: the two modes must be step-for-step
             identical simulations. *)
          let fired_of mode =
            let _, _, f = Hashtbl.find table (bname, mode, flows) in
            f
          in
          if fired_of "copy" <> fired_of "slice" then
            Printf.printf "  !! %s/%d: copy and slice runs diverged (%d vs %d events)\n"
              bname flows (fired_of "copy") (fired_of "slice"))
        [ `Heap; `Wheel ])
    flow_counts;
  Buffer.add_string json "]}";
  let path = out_path "e22_zerocopy.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  JSON report written to %s\n" path;
  let biggest = List.fold_left max 0 flow_counts in
  let copy_ps, copy_eps, _ = Hashtbl.find table ("wheel", "copy", biggest) in
  let slice_ps, slice_eps, _ = Hashtbl.find table ("wheel", "slice", biggest) in
  headline
    "copy vs slice at %d flows (wheel): %.0f vs %.0f bytes copied per delivered segment (%.1fx less), %.0f vs %.0f events/sec — one buffer per packet, headers pushed, views narrowed"
    biggest copy_ps slice_ps
    (if slice_ps > 0. then copy_ps /. slice_ps else 0.)
    copy_eps slice_eps

(* E23 — sharded parallel engine: the many-flow fabric partitioned
   across per-domain Sim.Engine shards exchanging cross-shard segments
   through conservative-lookahead conduits. Every cell must reach exact
   delivery, and every multi-domain cell must fire exactly the event
   count of the 1-domain cell on the same seed — the parallelism is
   free of observable effect by construction, so the only number that
   may move is events/sec. Speedup needs real cores: the harness prints
   the host's recommended domain count next to the cells so a
   single-core container's flat curve reads as what it is. *)

let e23 () =
  section "E23" "sharded parallel engine: events/sec vs domain count";
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let flow_counts = if smoke then [ 1_000 ] else [ 10_000; 100_000 ] in
  let bytes = if smoke then 2_000 else 512 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  host reports %d usable core%s\n" cores
    (if cores = 1 then "" else "s");
  let cell ~domains ~flows =
    let channel = { (Sim.Channel.lossy 0.01) with Sim.Channel.delay = 0.02 } in
    let shard =
      Sim.Shard.create ~seed:67 ~lookahead:channel.Sim.Channel.delay
        ~shards:domains ()
    in
    let fabric =
      Transport.Fabric.create_sharded shard ~hosts:16 ~channel ~flows ~bytes ()
    in
    let wall0 = now_wall () in
    let r =
      Sim.Workload.run_sharded ~spacing:0.0005 ~until:900. ~name:"e23" ~shard
        ~launch_site:(Transport.Fabric.launch_site fabric)
        ~flows
        (Transport.Fabric.ops fabric)
    in
    let wall = now_wall () -. wall0 in
    let fired = r.Sim.Workload.soak.Sim.Soak.events_fired in
    let eps = if wall > 0. then float_of_int fired /. wall else 0. in
    if not (Sim.Workload.ok r) then
      Printf.printf "  !! %d domains/%d flows NOT CLEAN: %s\n" domains flows
        (Format.asprintf "%a" Sim.Workload.pp_report r);
    (r, wall, fired, eps)
  in
  let json = Buffer.create 1024 in
  Buffer.add_string json "{\"cells\":[";
  let first = ref true in
  Printf.printf "  %-7s %8s %10s %10s %12s %10s %8s %9s\n" "domains" "flows"
    "events" "wall(s)" "events/sec" "live_hwm" "exact" "identical";
  let table = Hashtbl.create 8 in
  List.iter
    (fun flows ->
      List.iter
        (fun domains ->
          let r, wall, fired, eps = cell ~domains ~flows in
          Hashtbl.replace table (domains, flows) (fired, eps);
          let serial_fired, _ = Hashtbl.find table (1, flows) in
          let identical = fired = serial_fired in
          if not identical then
            Printf.printf
              "  !! %d domains/%d flows diverged from serial (%d vs %d events)\n"
              domains flows fired serial_fired;
          Printf.printf "  %-7d %8d %10d %10.3f %12.0f %10d %7d/%d %9s\n"
            domains flows fired wall eps r.Sim.Workload.live_hwm
            r.Sim.Workload.exact r.Sim.Workload.flows
            (if identical then "yes" else "NO");
          if not !first then Buffer.add_char json ',';
          first := false;
          Buffer.add_string json
            (Printf.sprintf
               "{\"domains\":%d,\"flows\":%d,\"events\":%d,\"wall_s\":%.6f,\"events_per_sec\":%.0f,\"live_hwm\":%d,\"exact\":%d,\"identical_to_serial\":%b,\"ok\":%b}"
               domains flows fired wall eps r.Sim.Workload.live_hwm
               r.Sim.Workload.exact identical (Sim.Workload.ok r)))
        domain_counts)
    flow_counts;
  Buffer.add_string json
    (Printf.sprintf "],\"cores\":%d}" cores);
  let path = out_path "e23_shard.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  JSON report written to %s\n" path;
  let biggest = List.fold_left max 0 flow_counts in
  let _, serial_eps = Hashtbl.find table (1, biggest) in
  let best_domains, best_eps =
    List.fold_left
      (fun (bd, be) d ->
        let _, eps = Hashtbl.find table (d, biggest) in
        if eps > be then (d, eps) else (bd, be))
      (1, serial_eps) domain_counts
  in
  headline
    "sharding at %d flows: %.0f events/sec serial, best %.0f at %d domains (%.2fx on %d core%s) — bit-identical delivery at every domain count"
    biggest serial_eps best_eps best_domains
    (if serial_eps > 0. then best_eps /. serial_eps else 0.)
    cores
    (if cores = 1 then "" else "s")

(* E25 — runtime conformance monitors: the many-flow fabric with every
   T2 interface probe live vs with no registry attached (the probes stay
   in the composition either way, carrying no-op closures). Same seed,
   same backend: the two modes must fire the same event count — monitors
   observe, they never perturb the schedule. Reports crossings checked,
   violations (must be zero) and the events/sec overhead. *)

let e25 () =
  section "E25" "conformance monitors on vs off at 100/1k/5k flows (wheel)";
  let flow_counts = if smoke then [ 20; 100 ] else [ 100; 1000; 5000 ] in
  let bytes = if smoke then 2_000 else 8_000 in
  let cell ~monitored ~flows =
    let engine = Sim.Engine.create ~seed:67 ~backend:`Wheel () in
    let channel =
      { (Sim.Channel.lossy 0.01) with Sim.Channel.delay = 0.02 }
    in
    let monitors =
      if monitored then Some (Monitor.Runtime.create ~label:"e25" ()) else None
    in
    let fabric =
      Transport.Fabric.create engine ?monitors ~hosts:8 ~channel ~flows ~bytes
        ()
    in
    let wall0 = now_wall () in
    let r =
      Sim.Workload.run ~spacing:0.005 ~until:900. ~name:"e25" ~engine ~flows
        ?invariant:(Option.map Monitor.Runtime.invariant monitors)
        ?verdicts:
          (Option.map (fun m () -> Monitor.Runtime.verdicts m) monitors)
        (Transport.Fabric.ops fabric)
    in
    let wall = now_wall () -. wall0 in
    let fired = r.Sim.Workload.soak.Sim.Soak.events_fired in
    let eps = if wall > 0. then float_of_int fired /. wall else 0. in
    let checked = match monitors with Some m -> Monitor.Runtime.checked m | None -> 0 in
    let viols =
      match monitors with Some m -> Monitor.Runtime.violation_count m | None -> 0
    in
    (match monitors with
    | Some m ->
        List.iter (fun v -> Printf.printf "  !! %s\n" v) (Monitor.Runtime.violations m)
    | None -> ());
    if not (Sim.Workload.ok r) then
      Printf.printf "  !! %s/%d NOT CLEAN: %s\n"
        (if monitored then "on" else "off")
        flows
        (Format.asprintf "%a" Sim.Workload.pp_report r);
    (r, wall, fired, eps, checked, viols)
  in
  let json = Buffer.create 1024 in
  Buffer.add_string json "{\"cells\":[";
  let first = ref true in
  Printf.printf "  %-5s %7s %10s %12s %12s %10s %6s\n" "mode" "flows" "events"
    "events/sec" "checked" "viols" "exact";
  let table = Hashtbl.create 8 in
  List.iter
    (fun flows ->
      List.iter
        (fun monitored ->
          let mode = if monitored then "on" else "off" in
          let r, wall, fired, eps, checked, viols = cell ~monitored ~flows in
          Hashtbl.replace table (mode, flows) (eps, fired);
          Printf.printf "  %-5s %7d %10d %12.0f %12d %10d %5d/%d\n" mode flows
            fired eps checked viols r.Sim.Workload.exact r.Sim.Workload.flows;
          if not !first then Buffer.add_char json ',';
          first := false;
          Buffer.add_string json
            (Printf.sprintf
               "{\"mode\":%S,\"flows\":%d,\"events\":%d,\"wall_s\":%.6f,\"events_per_sec\":%.0f,\"checked\":%d,\"violations\":%d,\"exact\":%d,\"ok\":%b}"
               mode flows fired wall eps checked viols r.Sim.Workload.exact
               (Sim.Workload.ok r)))
        [ false; true ];
      let fired_of mode = snd (Hashtbl.find table (mode, flows)) in
      if fired_of "off" <> fired_of "on" then
        Printf.printf
          "  !! %d flows: monitored and unmonitored runs diverged (%d vs %d events)\n"
          flows (fired_of "off") (fired_of "on"))
    flow_counts;
  Buffer.add_string json "]}";
  let path = out_path "e25_monitor.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  JSON report written to %s\n" path;
  let biggest = List.fold_left max 0 flow_counts in
  let off_eps, _ = Hashtbl.find table ("off", biggest) in
  let on_eps, _ = Hashtbl.find table ("on", biggest) in
  headline
    "monitors at %d flows: %.0f vs %.0f events/sec (%.1f%% overhead) — every T2 crossing conformance-checked, zero violations, same event schedule"
    biggest off_eps on_eps
    (if off_eps > 0. then (off_eps -. on_eps) /. off_eps *. 100. else 0.)

(* ------------------------------------------------------------------ *)
(* E26 — continuous telemetry: bounded-ring counter series sampled at
   the soak's slice boundaries, with per-sublayer allocation attribution
   (Sublayer.Alloc through the probe taps), under the E18 fault
   schedules. Reports minor words per delivered segment per sublayer,
   checks telemetry-on and -off runs fire identical schedules, and that
   a 2-shard run's merged deterministic series is bit-identical to the
   single-engine run. *)

let e26 () =
  section "E26" "continuous telemetry: counter series + per-sublayer allocation";
  let flow_counts = if smoke then [ 20; 100 ] else [ 100; 1000; 5000 ] in
  let bytes = if smoke then 2_000 else 8_000 in
  let channels =
    [ ("iid loss=0.05", { (Sim.Channel.lossy 0.05) with Sim.Channel.delay = 0.02 });
      ( "burst loss=0.05 len=6",
        { (Sim.Channel.burst_lossy ~loss:0.05 ~burst_len:6.) with
          Sim.Channel.delay = 0.02 } ) ]
  in
  let sublayers = [ "osr"; "rd"; "cm"; "dm"; "app"; "wire" ] in
  let words_of stats sub =
    Sublayer.Stats.value
      (Sublayer.Stats.counter (Sublayer.Stats.scope stats sub) "gc.minor_words")
  in
  let segments_of stats =
    Sublayer.Stats.value
      (Sublayer.Stats.counter (Sublayer.Stats.scope stats "dm") "segments_in")
  in
  let cell ~telemetry_on ~flows ~channel =
    let engine = Sim.Engine.create ~seed:68 ~backend:`Wheel () in
    let stats = Sublayer.Stats.create ~label:"e26" () in
    let telemetry =
      if telemetry_on then Some (Sim.Telemetry.create ~label:"e26" ()) else None
    in
    if telemetry_on then Sublayer.Alloc.set_enabled true;
    Fun.protect ~finally:(fun () -> Sublayer.Alloc.set_enabled false)
    @@ fun () ->
    let fabric =
      Transport.Fabric.create engine ~hosts:8 ~stats ?telemetry ~channel ~flows
        ~bytes ()
    in
    let wall0 = now_wall () in
    let r =
      Sim.Workload.run ~spacing:0.005 ~until:900. ~name:"e26" ~engine ~flows
        ?telemetry:(Option.map (fun t -> [ t ]) telemetry)
        (Transport.Fabric.ops fabric)
    in
    let wall = now_wall () -. wall0 in
    if not (Sim.Workload.ok r) then
      Printf.printf "  !! %s/%d NOT CLEAN: %s\n"
        (if telemetry_on then "on" else "off")
        flows
        (Format.asprintf "%a" Sim.Workload.pp_report r);
    (r, wall, stats, telemetry)
  in
  let json = Buffer.create 4096 in
  Buffer.add_string json "{\"cells\":[";
  let first = ref true in
  Printf.printf "  %-24s %7s %10s %9s |" "channel" "flows" "segments" "samples";
  List.iter (fun sub -> Printf.printf " %9s" (sub ^ " w/seg")) sublayers;
  Printf.printf "\n";
  let last_series = ref None in
  List.iter
    (fun (chan_name, channel) ->
      List.iter
        (fun flows ->
          let r_off, _, _, _ = cell ~telemetry_on:false ~flows ~channel in
          let r, wall, stats, telemetry = cell ~telemetry_on:true ~flows ~channel in
          let tele = Option.get telemetry in
          let off_fired = r_off.Sim.Workload.soak.Sim.Soak.events_fired in
          let on_fired = r.Sim.Workload.soak.Sim.Soak.events_fired in
          if off_fired <> on_fired then
            Printf.printf
              "  !! %s/%d: telemetry perturbed the schedule (%d vs %d events)\n"
              chan_name flows off_fired on_fired;
          let segs = segments_of stats in
          let per_seg sub =
            if segs = 0 then 0.
            else float_of_int (words_of stats sub) /. float_of_int segs
          in
          Printf.printf "  %-24s %7d %10d %9d |" chan_name flows segs
            (Sim.Telemetry.recorded tele);
          List.iter (fun sub -> Printf.printf " %9.1f" (per_seg sub)) sublayers;
          Printf.printf "\n";
          last_series := Some (chan_name, flows, tele);
          if not !first then Buffer.add_char json ',';
          first := false;
          Buffer.add_string json
            (Printf.sprintf
               "{\"channel\":%S,\"flows\":%d,\"events\":%d,\"wall_s\":%.6f,\"segments\":%d,\"samples\":%d,\"ring_dropped\":%d,\"schedule_identical\":%b,\"minor_words\":{%s},\"exact\":%d,\"ok\":%b}"
               chan_name flows on_fired wall segs
               (Sim.Telemetry.recorded tele)
               (Sim.Telemetry.dropped tele)
               (off_fired = on_fired)
               (String.concat ","
                  (List.map
                     (fun sub ->
                       Printf.sprintf "\"%s\":%d" sub (words_of stats sub))
                     sublayers))
               r.Sim.Workload.exact (Sim.Workload.ok r)))
        flow_counts)
    channels;
  (* Shard identity: the merged per-shard deterministic series must equal
     the single-engine series bit for bit (smallest workload — the
     property, not the scale, is under test here). *)
  let small = List.fold_left min max_int flow_counts in
  let sharded_series shards =
    let shard = Sim.Shard.create ~seed:68 ~lookahead:0.001 ~shards () in
    let stats =
      Array.init shards (fun i ->
          Sublayer.Stats.create ~label:(Printf.sprintf "shard%d" i) ())
    in
    let telemetry =
      Array.init shards (fun i ->
          Sim.Telemetry.create ~label:(Printf.sprintf "shard%d" i) ())
    in
    let fabric =
      Transport.Fabric.create_sharded shard ~hosts:8 ~stats ~telemetry
        ~channel:(snd (List.hd channels)) ~flows:small ~bytes ()
    in
    let r =
      Sim.Workload.run_sharded ~spacing:0.005 ~until:900. ~name:"e26-shard"
        ~shard
        ~launch_site:(Transport.Fabric.launch_site fabric)
        ~telemetry:(Array.to_list telemetry) ~flows:small
        (Transport.Fabric.ops fabric)
    in
    if not (Sim.Workload.ok r) then
      Printf.printf "  !! %d-shard run NOT CLEAN\n" shards;
    Sim.Telemetry.merged_deterministic (Array.to_list telemetry)
  in
  let serial = sharded_series 1 in
  let sharded = sharded_series 2 in
  let shard_identical = serial = sharded in
  if not shard_identical then
    Printf.printf "  !! 2-shard deterministic series diverged from single-engine\n";
  Printf.printf "\n  shard identity at %d flows: %s (%d samples)\n" small
    (if shard_identical then "bit-identical" else "DIVERGED")
    (List.length serial);
  (* One counter time series, printed and embedded in the artifact. *)
  (match !last_series with
  | Some (chan_name, flows, tele) ->
      let key = "fabric.osr.bytes_delivered" in
      let series =
        List.filter_map
          (fun (ts, kvs) ->
            Option.map (fun v -> (ts, v)) (List.assoc_opt key kvs))
          (Sim.Telemetry.deterministic_series tele)
      in
      Printf.printf "\n  %s over virtual time (%s, %d flows, per-slice deltas):\n"
        key chan_name flows;
      let n = List.length series in
      List.iteri
        (fun i (ts, v) ->
          if i < 6 || i >= n - 2 then Printf.printf "    t=%7.2f  +%d\n" ts v
          else if i = 6 then Printf.printf "    ... (%d more slices)\n" (n - 8))
        series;
      Buffer.add_string json
        (Printf.sprintf "],\"shard_identical\":%b,\"series\":%s}" shard_identical
           (Sim.Telemetry.to_json tele))
  | None -> Buffer.add_string json "],\"shard_identical\":false}");
  let path = out_path "e26_telemetry.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  JSON report written to %s\n" path;
  (match !last_series with
  | Some (_, flows, _) ->
      headline
        "per-sublayer allocation attributed through the probe taps at %d flows — counter series sampled at every soak slice, telemetry-on/off schedules identical, 2-shard series bit-identical to single-engine"
        flows
  | None -> ())

(* ------------------------------------------------------------------ *)
(* E27 — steady-state pooled data path: Bitkit.Pool arena loans vs
   per-segment heap emits, with the chain-digest detector trailer. *)

let e27 () =
  section "E27" "pooled data path: arena loans vs heap emits at 100/1k/5k flows";
  let flow_counts = if smoke then [ 20; 100 ] else [ 100; 1000; 5000 ] in
  let bytes = if smoke then 2_000 else 8_000 in
  let channel = { (Sim.Channel.lossy 0.05) with Sim.Channel.delay = 0.02 } in
  let sublayers = [ "osr"; "rd"; "cm"; "dm"; "app"; "wire" ] in
  let counter stats sub name =
    Sublayer.Stats.value
      (Sublayer.Stats.counter (Sublayer.Stats.scope stats sub) name)
  in
  let cell ~pooled ~flows =
    let engine = Sim.Engine.create ~seed:68 ~backend:`Wheel () in
    let stats = Sublayer.Stats.create ~label:"e27" () in
    (* Telemetry is present only so the endpoints install their
       allocation cells; nothing samples it — both modes pay the same
       (inert) probe cost, keeping the comparison fair. *)
    let telemetry = Sim.Telemetry.create ~label:"e27" () in
    Sublayer.Alloc.set_enabled true;
    Fun.protect ~finally:(fun () -> Sublayer.Alloc.set_enabled false)
    @@ fun () ->
    let pool =
      if pooled then Some (Bitkit.Pool.create ~slots:4096 ~slot_bytes:2048 ())
      else None
    in
    Bitkit.Slice.reset_copied ();
    let fabric =
      Transport.Fabric.create engine ~hosts:8 ~stats ~telemetry ?pool ~channel
        ~flows ~bytes ()
    in
    let wall0 = now_wall () in
    let r =
      Sim.Workload.run ~spacing:0.005 ~until:900. ~name:"e27" ~engine ~flows
        ~drops:(fun () -> Transport.Fabric.pool_stats fabric)
        (Transport.Fabric.ops fabric)
    in
    let wall = now_wall () -. wall0 in
    if not (Sim.Workload.ok r) then
      Printf.printf "  !! %s/%d NOT CLEAN: %s\n"
        (if pooled then "pool" else "heap")
        flows
        (Format.asprintf "%a" Sim.Workload.pp_report r);
    (r, wall, stats, Bitkit.Slice.copied_bytes (),
     Transport.Fabric.pool_stats fabric)
  in
  let json = Buffer.create 4096 in
  Buffer.add_string json "{\"fabric\":[";
  let first = ref true in
  Printf.printf "  %-5s %7s %10s %8s %12s %8s %8s |" "mode" "flows" "segments"
    "wall(s)" "copied_B" "hwm" "overrun";
  List.iter (fun sub -> Printf.printf " %9s" (sub ^ " w/seg")) sublayers;
  Printf.printf "\n";
  List.iter
    (fun flows ->
      let r_off, wall_off, stats_off, copied_off, _ =
        cell ~pooled:false ~flows
      in
      let r_on, wall_on, stats_on, copied_on, pstats =
        cell ~pooled:true ~flows
      in
      (* Loans must not perturb the run: same events, same virtual
         time, same per-slice samples, same delivery outcome. *)
      let identical =
        r_off.Sim.Workload.soak.Sim.Soak.events_fired
          = r_on.Sim.Workload.soak.Sim.Soak.events_fired
        && r_off.Sim.Workload.soak.Sim.Soak.vtime
             = r_on.Sim.Workload.soak.Sim.Soak.vtime
        && r_off.Sim.Workload.soak.Sim.Soak.samples
             = r_on.Sim.Workload.soak.Sim.Soak.samples
        && r_off.Sim.Workload.exact = r_on.Sim.Workload.exact
      in
      if not identical then
        Printf.printf "  !! %d flows: pool perturbed the schedule\n" flows;
      let row tag r wall stats copied pstats =
        let segs = counter stats "dm" "segments_in" in
        let per_seg sub =
          if segs = 0 then 0.
          else float_of_int (counter stats sub "gc.minor_words")
               /. float_of_int segs
        in
        Printf.printf "  %-5s %7d %10d %8.2f %12d %8d %8d |" tag flows segs wall
          copied
          (match List.assoc_opt "hwm" pstats with Some v -> v | None -> 0)
          (match List.assoc_opt "overruns" pstats with Some v -> v | None -> 0);
        List.iter (fun sub -> Printf.printf " %9.1f" (per_seg sub)) sublayers;
        Printf.printf "\n";
        if not !first then Buffer.add_char json ',';
        first := false;
        Buffer.add_string json
          (Printf.sprintf
             "{\"mode\":%S,\"flows\":%d,\"events\":%d,\"wall_s\":%.6f,\"segments\":%d,\"copied_bytes\":%d,\"copied_app_bytes\":%d,\"schedule_identical\":%b,\"minor_words\":{%s},\"pool\":{%s},\"exact\":%d,\"ok\":%b}"
             tag flows r.Sim.Workload.soak.Sim.Soak.events_fired wall segs
             copied
             (counter stats "osr" "copied_app_bytes")
             identical
             (String.concat ","
                (List.map
                   (fun sub ->
                     Printf.sprintf "\"%s\":%d" sub
                       (counter stats sub "gc.minor_words"))
                   sublayers))
             (String.concat ","
                (List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) pstats))
             r.Sim.Workload.exact (Sim.Workload.ok r))
      in
      row "heap" r_off wall_off stats_off copied_off [];
      row "pool" r_on wall_on stats_on copied_on pstats)
    flow_counts;
  (* The Rec seal boundary: one secure pair, pooled vs heap. Pool-on,
     the record is built (and encrypted, and tagged) in the slot the
     wire sees — [copied_seal_bytes] counts the payload move alone. *)
  let seal_cell ~pooled =
    let engine = Sim.Engine.create ~seed:69 () in
    let stats_a = Sublayer.Stats.create ~label:"A" () in
    let stats_b = Sublayer.Stats.create ~label:"B" () in
    let telemetry = Sim.Telemetry.create ~label:"e27s" () in
    Sublayer.Alloc.set_enabled true;
    Fun.protect ~finally:(fun () -> Sublayer.Alloc.set_enabled false)
    @@ fun () ->
    let factory =
      Transport.Tcp_secure.factory ~key:Transport.Tcp_secure.demo_key
    in
    let pool =
      if pooled then Some (Bitkit.Pool.create ~slots:256 ~slot_bytes:2048 ())
      else None
    in
    let a, b =
      Transport.Host.pair engine ~factory_a:factory ~factory_b:factory ~stats_a
        ~stats_b ~telemetry ?pool Sim.Channel.ideal
    in
    Transport.Host.listen b ~port:80;
    Bitkit.Slice.reset_copied ();
    let c = Transport.Host.connect a ~remote_port:80 () in
    Transport.Host.write c (String.make 40_000 's');
    Transport.Host.close c;
    Sim.Engine.run ~until:60. engine;
    let both name =
      counter stats_a "rec" name + counter stats_b "rec" name
    in
    ( Transport.Host.finished c,
      Sim.Engine.events_fired engine,
      both "copied_seal_bytes",
      both "gc.minor_words",
      both "records_sent",
      Bitkit.Slice.copied_bytes () )
  in
  let ok_off, ev_off, seal_off, rw_off, rec_off, total_off =
    seal_cell ~pooled:false
  in
  let ok_on, ev_on, seal_on, rw_on, rec_on, total_on = seal_cell ~pooled:true in
  let perr recs v =
    if recs = 0 then 0. else float_of_int v /. float_of_int recs
  in
  Printf.printf
    "\n  rec seal (40 kB secure pair): heap %d B sealed, %.0f w/record; pool %d \
     B, %.0f w/record; %d B total both; schedules %s\n"
    seal_off (perr rec_off rw_off) seal_on (perr rec_on rw_on) total_on
    (if ev_off = ev_on then "identical" else "DIVERGED");
  if not (ok_off && ok_on && total_off = total_on) then
    Printf.printf "  !! seal pair NOT CLEAN\n";
  Buffer.add_string json
    (Printf.sprintf
       "],\"seal\":{\"heap\":{\"copied_seal_bytes\":%d,\"minor_words\":%d,\"records\":%d,\"copied_bytes\":%d},\"pool\":{\"copied_seal_bytes\":%d,\"minor_words\":%d,\"records\":%d,\"copied_bytes\":%d},\"schedule_identical\":%b,\"ok\":%b}"
       seal_off rw_off rec_off total_off seal_on rw_on rec_on total_on
       (ev_off = ev_on) (ok_off && ok_on));
  (* The detector trailer: the chain digest folds over the wirebuf in a
     loaned slot, so the only bytes this sublayer copies are the trailer
     itself (2 for Fletcher-16) — heap mode flattens the whole frame. *)
  let dl_cell ~pooled ~payload_bytes =
    let engine = Sim.Engine.create ~seed:70 () in
    let stats_a = Sublayer.Stats.create ~label:"A" () in
    let telemetry = Sim.Telemetry.create ~label:"e27dl" () in
    Sublayer.Alloc.set_enabled true;
    Fun.protect ~finally:(fun () -> Sublayer.Alloc.set_enabled false)
    @@ fun () ->
    let pool =
      if pooled then Some (Bitkit.Pool.create ~slots:64 ~slot_bytes:4096 ())
      else None
    in
    (* Fletcher-16 keeps the fold state in an immediate int, so the
       pooled protect allocates nothing proportional to the frame — the
       CRC detectors stream identically but box their Int64 state. *)
    let spec =
      { Datalink.Stack.default_spec with
        Datalink.Stack.detector = Datalink.Detector.fletcher16 }
    in
    let link =
      Datalink.Stack.link engine ~stats_a ~telemetry ?pool Sim.Channel.ideal
        spec
    in
    let payloads =
      List.init 200 (fun i ->
          Printf.sprintf "%04d%s" i (String.make (payload_bytes - 4) 'd'))
    in
    let got = Datalink.Stack.transfer engine link payloads in
    let frames = counter stats_a "detector" "frames_protected" in
    ( List.length got = List.length payloads,
      frames,
      counter stats_a "detector" "copied_trailer_bytes",
      counter stats_a "detector" "gc.minor_words" )
  in
  let per fr v = if fr = 0 then 0. else float_of_int v /. float_of_int fr in
  (* Sweep the frame size: the heap path's per-frame words grow with the
     frame (it flattens it), the pooled path's stay a constant bit of
     machinery — the per-byte allocation is gone. *)
  Printf.printf "\n  detector (200 frames): %8s %12s %12s %12s %12s\n" "bytes"
    "heap B/frm" "heap w/frm" "pool B/frm" "pool w/frm";
  Buffer.add_string json ",\"datalink\":[";
  let dl_first = ref true in
  let dl_rows =
    List.map
      (fun payload_bytes ->
        let ok_off, fr_off, tr_off, dw_off =
          dl_cell ~pooled:false ~payload_bytes
        in
        let ok_on, fr_on, tr_on, dw_on = dl_cell ~pooled:true ~payload_bytes in
        Printf.printf "  %21d %12.0f %12.1f %12.0f %12.1f\n" payload_bytes
          (per fr_off tr_off) (per fr_off dw_off) (per fr_on tr_on)
          (per fr_on dw_on);
        if not (ok_off && ok_on) then
          Printf.printf "  !! datalink link NOT CLEAN at %d B\n" payload_bytes;
        if not !dl_first then Buffer.add_char json ',';
        dl_first := false;
        Buffer.add_string json
          (Printf.sprintf
             "{\"payload_bytes\":%d,\"heap\":{\"frames\":%d,\"copied_trailer_bytes\":%d,\"minor_words\":%d},\"pool\":{\"frames\":%d,\"copied_trailer_bytes\":%d,\"minor_words\":%d},\"ok\":%b}"
             payload_bytes fr_off tr_off dw_off fr_on tr_on dw_on
             (ok_off && ok_on));
        (payload_bytes, per fr_off tr_off, per fr_on tr_on))
      [ 128; 512; 1024 ]
  in
  Buffer.add_string json "]}";
  let _, tr_off_big, tr_on_big =
    List.nth dl_rows (List.length dl_rows - 1)
  in
  let path = out_path "e27_pool.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  JSON report written to %s\n" path;
  headline
    "arena loans keep the emit path in place — pooled schedules bit-identical \
     to heap, detector trailer copies drop from %.0f to %.0f B/frame"
    tr_off_big tr_on_big

(* ------------------------------------------------------------------ *)
(* E28 — recursive sublayering: a complete inner sublayered-TCP
   connection rides a Transport.Tunnel over an outer (Rec-secured)
   transport connection, vs the flat stack at matched loss. Reports
   goodput, the two congestion controllers' cwnd traces (outer and
   inner CC both probe the same impaired path), and per-level p99
   latency attribution from the shared tracer. *)

let e28 () =
  section "E28" "recursive sublayering: tunneled inner stack vs flat at matched loss";
  let open Transport in
  let bytes = if smoke then 30_000 else 200_000 in
  let losses = if smoke then [ 0.02 ] else [ 0.0; 0.02; 0.05 ] in
  let was_enabled = Sim.Tracer.enabled () in
  Sim.Tracer.set_enabled true;
  Fun.protect ~finally:(fun () -> Sim.Tracer.set_enabled was_enabled)
  @@ fun () ->
  let json = Buffer.create 4096 in
  Buffer.add_string json "{\"experiment\":\"E28\",\"runs\":[";
  let first_run = ref true in
  let tunnel_run ~channel ~seed =
    let engine = Sim.Engine.create ~seed () in
    let stats = Sublayer.Stats.create ~label:"e28" () in
    let tracer = Sim.Tracer.create ~capacity:262144 () in
    let factory = Tcp_secure.factory ~key:Tcp_secure.demo_key in
    let oa, ob, _, _ =
      Host.pair_channels engine ~factory_a:factory ~factory_b:factory
        ~stats_a:stats ~stats_b:stats ~tracer channel
    in
    Host.listen ob ~port:443;
    let osrv = ref None in
    Host.on_accept ob (fun c -> osrv := Some c);
    let ocli = Host.connect oa ~remote_port:443 () in
    let rec wait_accept () =
      if !osrv = None && Sim.Engine.now engine < 60. then begin
        Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
        wait_accept ()
      end
    in
    wait_accept ();
    let srv_conn =
      match !osrv with Some c -> c | None -> failwith "E28: outer accept"
    in
    let tun_a = Tunnel.create ~id:"tun-a" ocli in
    let tun_b = Tunnel.create ~id:"tun-b" srv_conn in
    let ins = Sublayer.Instrument.v ~stats ~tracer ~level:1 () in
    let ia = Host.create engine ~ins ~name:"iA" ~link:(Tunnel.link tun_a) () in
    let ib = Host.create engine ~ins ~name:"iB" ~link:(Tunnel.link tun_b) () in
    Host.listen ib ~port:80;
    let srv = ref None in
    Host.on_accept ib (fun c -> srv := Some c);
    let c = Host.connect ia ~remote_port:80 () in
    let data = random_data seed bytes in
    Host.write c data;
    Host.close c;
    (* The double-CC trace: both controllers' cwnd gauges live in the
       one registry, the level tag telling them apart. *)
    let outer_cwnd = Sublayer.Stats.gauge (Sublayer.Stats.scope stats "cc") "cwnd_bytes" in
    let inner_cwnd =
      Sublayer.Stats.gauge (Sublayer.Stats.scope stats "l1:cc") "cwnd_bytes"
    in
    let series = ref [] in
    let rec sampler () =
      series :=
        (Sim.Engine.now engine, Sublayer.Stats.gauge_value outer_cwnd,
         Sublayer.Stats.gauge_value inner_cwnd)
        :: !series;
      if not (Host.finished c) then
        ignore (Sim.Engine.schedule engine ~after:0.25 sampler)
    in
    sampler ();
    let rec drive () =
      if Sim.Engine.now engine < 600. && not (Host.finished c) then begin
        Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
        drive ()
      end
    in
    drive ();
    let vtime = Float.max 0.001 (Sim.Engine.now engine) in
    Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
    let ok = match !srv with Some s -> Host.received s = data | None -> false in
    (* Per-level flight p99 out of the same tracer: sublayer names carry
       the level prefix, so grouping is one string compare. *)
    let flights level =
      let want = if level = 0 then "rd" else "l1:rd" in
      List.filter_map
        (fun s ->
          if s.Sim.Tracer.sp_sublayer = want && s.Sim.Tracer.sp_name = "flight"
             && Float.is_finite s.Sim.Tracer.sp_end
          then Some (Sim.Tracer.duration s)
          else None)
        (Sim.Tracer.spans tracer)
    in
    let pct ds p =
      match List.sort Float.compare ds with
      | [] -> 0.
      | l ->
          let a = Array.of_list l in
          a.(min (Array.length a - 1)
              (int_of_float (Float.of_int (Array.length a) *. p)))
    in
    ( ok, vtime, Float.of_int bytes /. vtime, List.rev !series,
      (pct (flights 0) 0.99, pct (flights 1) 0.99),
      (Tunnel.frames_out tun_a, Tunnel.frames_in tun_b) )
  in
  Printf.printf "  %-22s %8s %10s %14s %12s %12s\n" "path" "exact" "time(s)"
    "goodput(KB/s)" "p99 l0(ms)" "p99 l1(ms)";
  List.iter
    (fun loss ->
      let channel = { (Sim.Channel.lossy loss) with delay = 0.02 } in
      let flat = run_transfer ~seed:95 ~bytes channel in
      let ok, vtime, goodput, series, (p99_0, p99_1), (fout, fin) =
        tunnel_run ~channel ~seed:95
      in
      Printf.printf "  %-22s %8b %10.2f %14.0f %12s %12s\n"
        (Printf.sprintf "flat   loss=%.2f" loss)
        flat.ok flat.vtime (flat.goodput /. 1024.) "-" "-";
      Printf.printf "  %-22s %8b %10.2f %14.0f %12.2f %12.2f\n"
        (Printf.sprintf "tunnel loss=%.2f" loss)
        ok vtime (goodput /. 1024.) (p99_0 *. 1e3) (p99_1 *. 1e3);
      if not !first_run then Buffer.add_char json ',';
      first_run := false;
      Buffer.add_string json
        (Printf.sprintf
           "{\"loss\":%.3f,\"flat\":{\"ok\":%b,\"vtime\":%.3f,\"goodput\":%.0f},\
            \"tunnel\":{\"ok\":%b,\"vtime\":%.3f,\"goodput\":%.0f,\
            \"frames_out\":%d,\"frames_in\":%d,\
            \"p99_flight_l0\":%.6f,\"p99_flight_l1\":%.6f,\"cwnd\":["
           loss flat.ok flat.vtime flat.goodput ok vtime goodput fout fin
           p99_0 p99_1);
      List.iteri
        (fun i (t, o, inr) ->
          if i > 0 then Buffer.add_char json ',';
          Buffer.add_string json
            (Printf.sprintf "[%.2f,%d,%d]" t o inr))
        series;
      Buffer.add_string json "]}}")
    losses;
  Buffer.add_string json "]}";
  let path = out_path "e28_tunnel.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n  JSON report written to %s\n" path;
  headline
    "a whole sublayered-TCP stack runs over another transport connection \
     through the Core.Link seam; two congestion controllers stack, and the \
     level tags keep every span and counter attributable"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: per-segment codec and stuffing costs. *)

let microbenches () =
  section "MICRO" "bechamel microbenchmarks (support for E6/E12)";
  let open Bechamel in
  let payload = random_data 3 1000 in
  let sub_segment =
    let osr = Transport.Segment.encode_osr Transport.Segment.default_osr ~payload in
    let rd =
      Transport.Segment.encode_rd
        { Transport.Segment.seq = 1001; ack = 2002; len = 1000; has_data = true;
          has_ack = true; sacks = [] }
        ~payload:osr
    in
    let cm =
      Transport.Segment.encode_cm
        { Transport.Segment.flags = Transport.Segment.no_cm_flags; isn_local = 7;
          isn_remote = 9 }
        ~payload:rd
    in
    Transport.Segment.encode_dm { Transport.Segment.src_port = 1; dst_port = 2 } ~payload:cm
  in
  let std_segment =
    Transport.Wire.encode
      { Transport.Wire.src_port = 1; dst_port = 2; seq = 1001; ack = 2002;
        flags = { Transport.Wire.no_flags with ack = true }; window = 65535 }
      ~payload
  in
  let decode_sub () =
    match Transport.Segment.decode_dm sub_segment with
    | Some (_, cm) -> (
        match Transport.Segment.decode_cm cm with
        | Some (_, rd) -> (
            match Transport.Segment.decode_rd rd with
            | Some (_, osr) -> Transport.Segment.decode_osr osr
            | None -> None)
        | None -> None)
    | None -> None
  in
  let bits = Bitkit.Bitseq.random (Bitkit.Rng.create 1) 8192 in
  let bools = Bitkit.Bitseq.to_bool_list bits in
  let crc32 = Bitkit.Crc.make Bitkit.Crc.crc32 in
  let crc64 = Bitkit.Crc.make Bitkit.Crc.crc64_xz in
  let tests =
    [ Test.make ~name:"sublayered onion decode (1KB)" (Staged.stage decode_sub);
      Test.make ~name:"standard header decode (1KB)"
        (Staged.stage (fun () -> Transport.Wire.decode std_segment));
      Test.make ~name:"fast stuff (8Kbit)"
        (Staged.stage (fun () -> Stuffing.Fast.stuff Stuffing.Rule.hdlc.rule bits));
      Test.make ~name:"extraction-style stuff (8Kbit)"
        (Staged.stage (fun () -> Stuffing.Codec.stuff Stuffing.Rule.hdlc.rule bools));
      Test.make ~name:"crc32 (1KB)" (Staged.stage (fun () -> Bitkit.Crc.digest crc32 payload));
      Test.make ~name:"crc64 (1KB)" (Staged.stage (fun () -> Bitkit.Crc.digest crc64 payload));
      Test.make ~name:"chacha20 encrypt (1KB)"
        (Staged.stage (fun () ->
             Bitkit.Chacha20.encrypt ~key:(String.make 32 'k') ~nonce:(String.make 12 'n')
               payload));
      Test.make ~name:"siphash tag (1KB)"
        (Staged.stage (fun () -> Bitkit.Siphash.tag ~key:(String.make 16 'k') payload))
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] -> Printf.printf "  %-42s %12.0f ns/op\n" name ns
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  let experiments =
    [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
      ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
      ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E18", e18);
      ("E19", e19); ("E20", e20); ("E21", e21); ("E22", e22); ("E23", e23);
      ("E25", e25); ("E26", e26); ("E27", e27); ("E28", e28);
      ("MICRO", microbenches) ]
  in
  List.iter (fun (id, f) -> if selected id then f ()) experiments;
  Printf.printf "\nAll selected experiments complete.\n"
