(* Telemetry: bounded-ring sampling semantics, determinism across shard
   counts, the disabled-path cost contract, and the per-boundary copy
   breakdown counters. *)

module Telemetry = Sim.Telemetry

let check = Alcotest.check

(* --- ring / delta / interval basics ------------------------------------ *)

let test_counter_deltas () =
  let t = Telemetry.create ~label:"basics" () in
  let v = ref 0 in
  Telemetry.add_counters t ~name:"src" (fun () -> [ ("n", !v) ]);
  v := 10;
  (* First tick only anchors the counter baseline. *)
  Telemetry.tick t ~now:0.0;
  (match Telemetry.samples t with
  | [ s ] -> check Alcotest.(list (pair string int)) "baseline empty" [] s.Telemetry.det
  | _ -> Alcotest.fail "expected one sample");
  v := 25;
  Telemetry.tick t ~now:1.0;
  (match Telemetry.last_sample t with
  | Some s ->
      check Alcotest.(list (pair string int)) "delta since baseline"
        [ ("src.n", 15) ] s.Telemetry.det
  | None -> Alcotest.fail "no sample");
  (* Unchanged counters produce no reading at all. *)
  Telemetry.tick t ~now:2.0;
  (match Telemetry.last_sample t with
  | Some s -> check Alcotest.(list (pair string int)) "no delta" [] s.Telemetry.det
  | None -> Alcotest.fail "no sample")

let test_gauges_and_routing () =
  let t = Telemetry.create () in
  Telemetry.add_gauges t ~name:"g" (fun () -> [ ("live", 7) ]);
  (* [gc] keys and [det:false] sources both land in the nondet half. *)
  Telemetry.add_counters t ~name:"sub" (fun () -> [ ("gc.minor_words", 100) ]);
  Telemetry.add_counters t ~det:false ~name:"tracer" (fun () -> [ ("dropped", 3) ]);
  Telemetry.tick t ~now:0.0;
  Telemetry.tick t ~now:1.0;
  match Telemetry.last_sample t with
  | Some s ->
      check Alcotest.(list (pair string int)) "gauge is deterministic"
        [ ("g.live", 7) ] s.Telemetry.det;
      check Alcotest.(list (pair string int)) "gc + det:false are not"
        [] s.Telemetry.nondet
      |> ignore;
      (* both sources were unchanged between ticks, so nondet is empty;
         bump them via a fresh instance instead *)
      ()
  | None -> Alcotest.fail "no sample"

let test_nondet_routing_values () =
  let t = Telemetry.create () in
  let words = ref 0 and drops = ref 0 in
  Telemetry.add_counters t ~name:"osr" (fun () -> [ ("gc.minor_words", !words) ]);
  Telemetry.add_counters t ~det:false ~name:"tracer" (fun () -> [ ("dropped", !drops) ]);
  Telemetry.tick t ~now:0.0;
  words := 64;
  drops := 2;
  Telemetry.tick t ~now:1.0;
  match Telemetry.last_sample t with
  | Some s ->
      check Alcotest.(list (pair string int)) "det half empty" [] s.Telemetry.det;
      check
        Alcotest.(list (pair string int))
        "nondet carries gc and det:false keys"
        [ ("osr.gc.minor_words", 64); ("tracer.dropped", 2) ]
        s.Telemetry.nondet
  | None -> Alcotest.fail "no sample"

let test_interval_and_ring () =
  let t = Telemetry.create ~capacity:4 ~interval:1.0 () in
  Telemetry.add_gauges t ~name:"g" (fun () -> [ ("x", 1) ]);
  (* Interval suppresses sub-interval ticks. *)
  Telemetry.tick t ~now:0.0;
  Telemetry.tick t ~now:0.5;
  Telemetry.tick t ~now:0.9;
  check Alcotest.int "interval suppressed" 1 (Telemetry.length t);
  Telemetry.tick t ~now:1.0;
  check Alcotest.int "interval elapsed" 2 (Telemetry.length t);
  (* Overflow evicts oldest, keeps count. *)
  List.iter (fun now -> Telemetry.tick t ~now) [ 2.0; 3.0; 4.0; 5.0 ];
  check Alcotest.int "ring is bounded" 4 (Telemetry.length t);
  check Alcotest.int "recorded keeps counting" 6 (Telemetry.recorded t);
  check Alcotest.int "evictions counted" 2 (Telemetry.dropped t);
  (match Telemetry.samples t with
  | s :: _ -> check (Alcotest.float 1e-9) "oldest retained is t=2" 2.0 s.Telemetry.ts
  | [] -> Alcotest.fail "empty ring");
  Telemetry.clear t;
  check Alcotest.int "clear empties" 0 (Telemetry.length t);
  check Alcotest.int "clear resets drops" 0 (Telemetry.dropped t)

let test_merged () =
  let make vs =
    let t = Telemetry.create () in
    let v = ref 0 in
    Telemetry.add_counters t ~name:"s" (fun () -> [ ("n", !v) ]);
    Telemetry.tick t ~now:0.0;
    List.iteri
      (fun i x ->
        v := !v + x;
        Telemetry.tick t ~now:(float_of_int (i + 1)))
      vs;
    t
  in
  let a = make [ 3; 5 ] and b = make [ 10; 0 ] in
  let merged = Telemetry.merged_deterministic [ a; b ] in
  check
    Alcotest.(list (pair (float 1e-9) (list (pair string int))))
    "pointwise sum, keys unioned"
    [ (0.0, []); (1.0, [ ("s.n", 13) ]); (2.0, [ ("s.n", 5) ]) ]
    merged;
  let c = make [ 1 ] in
  (match Telemetry.merged_deterministic [ a; c ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sample count mismatch must raise");
  let d = Telemetry.create () in
  Telemetry.tick d ~now:0.0;
  Telemetry.tick d ~now:1.5;
  Telemetry.tick d ~now:2.0;
  match Telemetry.merged_deterministic [ a; d ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "timestamp mismatch must raise"

let test_exports () =
  let t = Telemetry.create ~label:"exp" () in
  let v = ref 0 in
  Telemetry.add_counters t ~name:"s" (fun () -> [ ("n", !v) ]);
  Telemetry.tick t ~now:0.0;
  v := 4;
  Telemetry.tick t ~now:1.0;
  let json = Telemetry.to_json t in
  check Alcotest.bool "json carries the reading" true
    (String.length json > 0
    &&
    let needle = "\"s.n\":4" in
    let n = String.length json and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub json i m = needle || scan (i + 1)) in
    scan 0);
  let csv = Telemetry.to_csv t in
  check Alcotest.bool "csv long format" true
    (String.length csv > 0 && String.sub csv 0 13 = "ts,key,value\n");
  let events = Telemetry.chrome_counter_events t in
  check Alcotest.bool "chrome events non-empty" true (List.length events >= 2);
  (* Splice into the tracer exporter: the result must still be one JSON
     object and contain the counter record. *)
  let tr = Sim.Tracer.create () in
  let merged = Sim.Tracer.to_chrome_json ~extra:events tr in
  check Alcotest.bool "counter track spliced" true
    (let needle = "\"ph\":\"C\"" in
     let n = String.length merged and m = String.length needle in
     let rec scan i = i + m <= n && (String.sub merged i m = needle || scan (i + 1)) in
     scan 0)

(* --- fabric determinism across shard counts ---------------------------- *)

(* Same construction as test_scale's identity check, with telemetry
   attached: per-shard instances tick at the soak's slice boundaries, and
   the pointwise-summed deterministic series must be bit-identical at
   every shard count ([shards = 1] runs the single engine directly). *)
let sharded_series ?link_faults ~shards ~seed () =
  let flows = 48 in
  let shard = Sim.Shard.create ~seed ~lookahead:0.001 ~shards () in
  let stats =
    Array.init shards (fun i ->
        Sublayer.Stats.create ~label:(Printf.sprintf "shard%d" i) ())
  in
  let telemetry =
    Array.init shards (fun i ->
        Telemetry.create ~label:(Printf.sprintf "shard%d" i) ())
  in
  let fabric =
    Transport.Fabric.create_sharded shard ~hosts:8 ~stats ~telemetry
      ?link_faults ~channel:(Sim.Channel.lossy 0.02) ~flows ~bytes:384 ()
  in
  let r =
    Sim.Workload.run_sharded ~spacing:0.01 ~name:"telemetry-identity" ~shard
      ~launch_site:(Transport.Fabric.launch_site fabric)
      ~telemetry:(Array.to_list telemetry) ~flows
      (Transport.Fabric.ops fabric)
  in
  if not (Sim.Workload.ok r) then
    Alcotest.failf "workload not ok: %a" Sim.Workload.pp_report r;
  (r, Telemetry.merged_deterministic (Array.to_list telemetry))

let check_series_identity ?link_faults ~seed () =
  let base_r, base = sharded_series ?link_faults ~shards:1 ~seed () in
  check Alcotest.bool "baseline produced samples" true (List.length base > 0);
  (* The series must actually carry readings, not just timestamps. *)
  check Alcotest.bool "baseline carries counters" true
    (List.exists (fun (_, kvs) -> kvs <> []) base);
  List.iter
    (fun shards ->
      let r, series = sharded_series ?link_faults ~shards ~seed () in
      check Alcotest.int "event counts equal"
        base_r.Sim.Workload.soak.Sim.Soak.events_fired
        r.Sim.Workload.soak.Sim.Soak.events_fired;
      if series <> base then begin
        if List.length base <> List.length series then
          Printf.printf "sample counts differ: base %d | sharded %d\n"
            (List.length base) (List.length series)
        else
          List.iteri
            (fun i ((tb, vb), (ts, vs)) ->
              if (tb, vb) <> (ts, vs) then
                Printf.printf "sample %d: base t=%g %s | sharded t=%g %s\n" i tb
                  (String.concat ","
                     (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) vb))
                  ts
                  (String.concat ","
                     (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) vs)))
            (List.combine base series);
        Alcotest.failf "%d-shard deterministic series diverged" shards
      end)
    [ 2; 4 ]

let test_series_identity () = check_series_identity ~seed:31 ()

let test_series_identity_faults () =
  let partition =
    [ Sim.Faultplan.Partition { at = 0.3 }; Sim.Faultplan.Heal { at = 1.7 } ]
  in
  let link_faults (src, dst) =
    if (src = 3 && dst = 4) || (src = 4 && dst = 3) then Some partition
    else None
  in
  check_series_identity ~link_faults ~seed:32 ()

(* --- telemetry-on vs telemetry-off ------------------------------------- *)

(* Sampling only reads, so attaching telemetry (and allocation
   attribution) must not perturb the event schedule. *)
let fabric_fingerprint ~with_telemetry ~seed =
  let engine = Sim.Engine.create ~seed () in
  let stats = Sublayer.Stats.create ~label:"fp" () in
  let telemetry = if with_telemetry then Some (Telemetry.create ()) else None in
  if with_telemetry then Sublayer.Alloc.set_enabled true;
  Fun.protect ~finally:(fun () -> Sublayer.Alloc.set_enabled false) @@ fun () ->
  let fabric =
    Transport.Fabric.create engine ~hosts:4 ~stats ?telemetry
      ~channel:(Sim.Channel.lossy 0.02) ~flows:40 ~bytes:512 ()
  in
  let r =
    Sim.Workload.run ~spacing:0.01 ~name:"on-off" ~engine
      ?telemetry:(Option.map (fun t -> [ t ]) telemetry)
      ~flows:40 (Transport.Fabric.ops fabric)
  in
  if not (Sim.Workload.ok r) then
    Alcotest.failf "workload not ok: %a" Sim.Workload.pp_report r;
  ( r.Sim.Workload.soak.Sim.Soak.events_fired,
    r.Sim.Workload.soak.Sim.Soak.vtime,
    telemetry )

let test_on_off_identity () =
  let on_fired, on_vtime, tele = fabric_fingerprint ~with_telemetry:true ~seed:41 in
  let off_fired, off_vtime, _ = fabric_fingerprint ~with_telemetry:false ~seed:41 in
  check Alcotest.int "events fired identical" off_fired on_fired;
  check Alcotest.bool "virtual end time identical" true (on_vtime = off_vtime);
  (* The enabled run must have attributed allocation somewhere. *)
  match tele with
  | Some t ->
      let attributed =
        List.exists
          (fun s ->
            List.exists
              (fun (k, v) -> v > 0 && Filename.check_suffix k "gc.minor_words")
              s.Telemetry.nondet)
          (Telemetry.samples t)
      in
      check Alcotest.bool "per-sublayer minor words attributed" true attributed
  | None -> Alcotest.fail "telemetry instance missing"

(* --- disabled path ------------------------------------------------------ *)

let test_disabled_costs_nothing () =
  check Alcotest.bool "alloc disabled by default" false (Sublayer.Alloc.enabled ());
  let reg = Sublayer.Stats.create () in
  let c = Some (Sublayer.Alloc.cell (Sublayer.Stats.scope reg "osr")) in
  (* Warm up so any one-time initialisation is done. *)
  Sublayer.Alloc.cross c;
  Sublayer.Alloc.enter c;
  Sublayer.Alloc.exit_ ();
  let before = int_of_float (Gc.minor_words ()) in
  for _ = 1 to 10_000 do
    Sublayer.Alloc.enter c;
    Sublayer.Alloc.cross c;
    Sublayer.Alloc.exit_ ()
  done;
  let after = int_of_float (Gc.minor_words ()) in
  (* The two [Gc.minor_words] reads box a float each; the 30k disabled
     hooks in between must add nothing. *)
  check Alcotest.bool
    (Printf.sprintf "disabled hooks allocation-free (%d words)" (after - before))
    true
    (after - before <= 16);
  check Alcotest.int "nothing attributed" 0
    (match c with Some c -> Sublayer.Alloc.cell_value c | None -> 0)

let test_no_telemetry_no_samples () =
  (* A run without telemetry leaves nothing sampled anywhere: the
     instance never ticked stays empty. *)
  let t = Telemetry.create () in
  Telemetry.add_gc t;
  check Alcotest.int "zero samples" 0 (Telemetry.length t);
  check Alcotest.int "zero recorded" 0 (Telemetry.recorded t);
  check (Alcotest.option Alcotest.reject) "no last sample"
    None
    (Option.map (fun _ -> ()) (Telemetry.last_sample t))

(* --- per-boundary copy breakdown ---------------------------------------- *)

let test_copy_breakdown_transport () =
  let engine = Sim.Engine.create ~seed:51 () in
  let stats_a = Sublayer.Stats.create ~label:"A" () in
  let stats_b = Sublayer.Stats.create ~label:"B" () in
  let factory = Transport.Tcp_secure.factory ~key:Transport.Tcp_secure.demo_key in
  let a, b =
    Transport.Host.pair engine ~factory_a:factory ~factory_b:factory ~stats_a
      ~stats_b Sim.Channel.ideal
  in
  Transport.Host.listen b ~port:80;
  Bitkit.Slice.reset_copied ();
  let c = Transport.Host.connect a ~remote_port:80 () in
  Transport.Host.write c (String.make 20_000 'x');
  Transport.Host.close c;
  Sim.Engine.run ~until:30. engine;
  check Alcotest.bool "finished" true (Transport.Host.finished c);
  let counter reg sub name =
    Sublayer.Stats.value
      (Sublayer.Stats.counter (Sublayer.Stats.scope reg sub) name)
  in
  let total = Bitkit.Slice.copied_bytes () in
  let app =
    counter stats_a "osr" "copied_app_bytes"
    + counter stats_b "osr" "copied_app_bytes"
  in
  let seal =
    counter stats_a "rec" "copied_seal_bytes"
    + counter stats_b "rec" "copied_seal_bytes"
  in
  (* In-order segments are delivered as borrowed views of the wire
     bytes, so on an ideal channel the app boundary copies nothing:
     [copied_app_bytes] counts only out-of-order staging. *)
  check Alcotest.int "in-order app delivery copies nothing" 0 app;
  check Alcotest.bool "rec-seal copies attributed" true (seal > 0);
  check Alcotest.bool
    (Printf.sprintf "breakdown bounded by total (%d + %d <= %d)" app seal total)
    true
    (app + seal <= total);
  Bitkit.Slice.reset_copied ()

let test_copy_breakdown_datalink () =
  let engine = Sim.Engine.create ~seed:52 () in
  let stats_a = Sublayer.Stats.create ~label:"A" () in
  let link =
    Datalink.Stack.link engine ~stats_a Sim.Channel.ideal
      Datalink.Stack.default_spec
  in
  Bitkit.Slice.reset_copied ();
  let got = Datalink.Stack.transfer engine link [ "hello"; "telemetry" ] in
  check Alcotest.(list string) "delivered" [ "hello"; "telemetry" ] got;
  let trailer =
    Sublayer.Stats.value
      (Sublayer.Stats.counter
         (Sublayer.Stats.scope stats_a "detector")
         "copied_trailer_bytes")
  in
  let total = Bitkit.Slice.copied_bytes () in
  check Alcotest.bool "detector trailer copies attributed" true (trailer > 0);
  check Alcotest.bool "bounded by total" true (trailer <= total);
  Bitkit.Slice.reset_copied ()

(* --- soak surfaces ring drops ------------------------------------------- *)

let test_soak_drops () =
  let engine = Sim.Engine.create ~seed:53 () in
  ignore (Sim.Engine.at engine ~time:5.0 (fun () -> ()));
  let tele = Telemetry.create ~label:"soak" () in
  Telemetry.add_gauges tele ~name:"g" (fun () -> [ ("one", 1) ]);
  let boundaries = ref [] in
  let r =
    Sim.Soak.run ~step:0.5 ~until:3.0 ~name:"drops" ~engine
      ~telemetry:[ tele ]
      ~on_slice:(fun now -> boundaries := now :: !boundaries)
      ~drops:(fun () -> [ ("custom", 7) ])
      ~finished:(fun () -> false)
      ()
  in
  check Alcotest.bool "telemetry ticked at slice boundaries" true
    (Telemetry.length tele > 0);
  check Alcotest.int "on_slice fired per slice" (Telemetry.recorded tele)
    (List.length !boundaries);
  check Alcotest.(option int) "telemetry ring drops surfaced" (Some 0)
    (List.assoc_opt "telemetry:soak" r.Sim.Soak.drops);
  check Alcotest.(option int) "custom drops appended" (Some 7)
    (List.assoc_opt "custom" r.Sim.Soak.drops)

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "counter deltas" `Quick test_counter_deltas;
          Alcotest.test_case "gauges" `Quick test_gauges_and_routing;
          Alcotest.test_case "nondet routing" `Quick test_nondet_routing_values;
          Alcotest.test_case "interval and ring" `Quick test_interval_and_ring;
          Alcotest.test_case "merged" `Quick test_merged;
          Alcotest.test_case "exports" `Quick test_exports;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "shard identity" `Quick test_series_identity;
          Alcotest.test_case "shard identity under faults" `Quick
            test_series_identity_faults;
          Alcotest.test_case "on/off identity" `Quick test_on_off_identity;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "probe path free" `Quick test_disabled_costs_nothing;
          Alcotest.test_case "no samples" `Quick test_no_telemetry_no_samples;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "transport copies" `Quick test_copy_breakdown_transport;
          Alcotest.test_case "datalink copies" `Quick test_copy_breakdown_datalink;
          Alcotest.test_case "soak drops" `Quick test_soak_drops;
        ] );
    ]
