(* Tests for the discrete-event engine and the impaired channels. *)

let check = Alcotest.check

(* --- Engine --- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~after:0.3 (fun () -> log := 3 :: !log));
  ignore (Sim.Engine.schedule e ~after:0.1 (fun () -> log := 1 :: !log));
  ignore (Sim.Engine.schedule e ~after:0.2 (fun () -> log := 2 :: !log));
  Sim.Engine.run e;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 0.3 (Sim.Engine.now e)

let test_engine_fifo_ties () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~after:1.0 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run e;
  check Alcotest.(list int) "insertion order on ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~after:0.1 (fun () -> fired := true) in
  Sim.Engine.cancel h;
  check Alcotest.bool "cancelled flag" true (Sim.Engine.cancelled h);
  Sim.Engine.run e;
  check Alcotest.bool "did not fire" false !fired

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~after:0.1 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.Engine.schedule e ~after:0.1 (fun () -> log := "inner" :: !log))));
  Sim.Engine.run e;
  check Alcotest.(list string) "nested" [ "outer"; "inner" ] (List.rev !log);
  check (Alcotest.float 1e-9) "time" 0.2 (Sim.Engine.now e)

let test_engine_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~after:1.0 (fun () -> incr fired));
  ignore (Sim.Engine.schedule e ~after:2.0 (fun () -> incr fired));
  Sim.Engine.run ~until:1.5 e;
  check Alcotest.int "only first" 1 !fired;
  check (Alcotest.float 1e-9) "clock clamped" 1.5 (Sim.Engine.now e);
  Sim.Engine.run e;
  check Alcotest.int "resumed" 2 !fired

let test_engine_max_events () =
  let e = Sim.Engine.create () in
  let rec tick () = ignore (Sim.Engine.schedule e ~after:0.1 (fun () -> tick ())) in
  tick ();
  Sim.Engine.run ~max_events:100 e;
  check Alcotest.int "bounded" 100 (Sim.Engine.events_fired e)

let test_engine_negative_delay_rejected () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Sim.Engine.schedule e ~after:(-1.0) ignore))

let test_engine_pending () =
  let e = Sim.Engine.create () in
  let h = Sim.Engine.schedule e ~after:1.0 ignore in
  ignore (Sim.Engine.schedule e ~after:2.0 ignore);
  check Alcotest.int "two pending" 2 (Sim.Engine.pending e);
  Sim.Engine.cancel h;
  check Alcotest.int "one pending" 1 (Sim.Engine.pending e)

let test_engine_heap_stress () =
  (* Thousands of events in random order still fire monotonically. *)
  let e = Sim.Engine.create ~seed:99 () in
  let rng = Bitkit.Rng.create 1 in
  let last = ref 0. in
  let monotone = ref true in
  for _ = 1 to 5000 do
    let at = Bitkit.Rng.float rng *. 100. in
    ignore
      (Sim.Engine.schedule e ~after:at (fun () ->
           if Sim.Engine.now e < !last then monotone := false;
           last := Sim.Engine.now e))
  done;
  Sim.Engine.run e;
  check Alcotest.bool "monotone" true !monotone;
  check Alcotest.int "all fired" 5000 (Sim.Engine.events_fired e)

let test_engine_live_accounting () =
  (* 10k schedule/cancel cycles: the O(1) live counter must agree with
     the O(n) queue scan throughout, cancels included. *)
  let e = Sim.Engine.create ~seed:3 () in
  let rng = Bitkit.Rng.create 17 in
  let handles = ref [] in
  for i = 1 to 10_000 do
    let h = Sim.Engine.schedule e ~after:(Bitkit.Rng.float rng *. 10.) ignore in
    if Bitkit.Rng.int rng 2 = 0 then Sim.Engine.cancel h else handles := h :: !handles;
    if i mod 1000 = 0 then
      check Alcotest.int
        (Printf.sprintf "live = pending after %d cycles" i)
        (Sim.Engine.pending e) (Sim.Engine.live e)
  done;
  (* Cancel half of the survivors, including double-cancels. *)
  List.iteri
    (fun i h ->
      if i mod 2 = 0 then begin
        Sim.Engine.cancel h;
        Sim.Engine.cancel h
      end)
    !handles;
  check Alcotest.int "live = pending after mass cancel" (Sim.Engine.pending e)
    (Sim.Engine.live e);
  Sim.Engine.run e;
  check Alcotest.int "empty: live" 0 (Sim.Engine.live e);
  check Alcotest.int "empty: pending" 0 (Sim.Engine.pending e)

let test_engine_cancel_after_fire () =
  (* Cancelling a handle that already fired must not corrupt the live
     count (no double decrement). *)
  let e = Sim.Engine.create () in
  let h = Sim.Engine.schedule e ~after:0.1 ignore in
  ignore (Sim.Engine.schedule e ~after:1.0 ignore);
  Sim.Engine.run ~until:0.5 e;
  Sim.Engine.cancel h;
  check Alcotest.int "live unaffected" 1 (Sim.Engine.live e);
  check Alcotest.int "pending agrees" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  check Alcotest.int "drained" 0 (Sim.Engine.live e)

let test_engine_compaction () =
  (* Cancelling most of a large queue triggers compaction: dead entries
     are dropped from the heap rather than retained until their time. *)
  let e = Sim.Engine.create () in
  let handles =
    List.init 10_000 (fun i ->
        Sim.Engine.schedule e ~after:(Float.of_int i +. 1.) ignore)
  in
  List.iteri (fun i h -> if i mod 10 <> 0 then Sim.Engine.cancel h) handles;
  (* A fresh schedule after the mass cancel gives the engine a chance to
     compact. *)
  ignore (Sim.Engine.schedule e ~after:0.5 ignore);
  check Alcotest.bool "compacted at least once" true (Sim.Engine.compactions e > 0);
  check Alcotest.int "live survivors" 1001 (Sim.Engine.live e);
  Sim.Engine.run e;
  check Alcotest.int "survivors fired" 1001 (Sim.Engine.events_fired e)

(* --- Channel --- *)

let collect_channel cfg n =
  let e = Sim.Engine.create ~seed:5 () in
  let got = ref [] in
  let ch =
    Sim.Channel.create e cfg ~size:String.length
      ~corrupt:Sim.Channel.corrupt_string
      ~deliver:(fun m -> got := m :: !got)
      ()
  in
  for i = 1 to n do
    Sim.Channel.send ch (Printf.sprintf "msg%04d" i)
  done;
  Sim.Engine.run e;
  (List.rev !got, Sim.Channel.stats ch)

let test_channel_ideal_delivers_in_order () =
  let got, stats = collect_channel Sim.Channel.ideal 100 in
  check Alcotest.int "all delivered" 100 (List.length got);
  check Alcotest.int "none dropped" 0 stats.Sim.Channel.dropped;
  check Alcotest.bool "in order" true
    (got = List.init 100 (fun i -> Printf.sprintf "msg%04d" (i + 1)))

let test_channel_loss_rate () =
  let got, stats = collect_channel (Sim.Channel.lossy 0.3) 2000 in
  let rate = 1. -. (Float.of_int (List.length got) /. 2000.) in
  if rate < 0.25 || rate > 0.35 then Alcotest.failf "loss rate %.3f" rate;
  check Alcotest.int "sent counted" 2000 stats.Sim.Channel.sent

let test_channel_duplication () =
  let got, stats = collect_channel { Sim.Channel.ideal with duplication = 0.5 } 1000 in
  check Alcotest.bool "more than sent" true (List.length got > 1000);
  check Alcotest.bool "dup stat" true (stats.Sim.Channel.duplicated > 300)

let test_channel_corruption_changes_payload () =
  let got, stats = collect_channel { Sim.Channel.ideal with corruption = 1.0 } 50 in
  check Alcotest.int "all delivered" 50 (List.length got);
  check Alcotest.int "all corrupted" 50 stats.Sim.Channel.corrupted;
  let originals = List.init 50 (fun i -> Printf.sprintf "msg%04d" (i + 1)) in
  (* A single flipped bit always changes the payload (though it may turn
     one valid message into another, so compare pairwise in order). *)
  check Alcotest.bool "every payload damaged" true
    (List.for_all2 (fun m o -> m <> o) got originals)

let test_channel_reorder () =
  let got, _ =
    collect_channel { Sim.Channel.ideal with reorder = 0.5; reorder_extra = 0.05 } 200
  in
  check Alcotest.int "all delivered" 200 (List.length got);
  check Alcotest.bool "out of order observed" true
    (got <> List.sort compare got)

let test_channel_bandwidth_serialisation () =
  (* 1000 bytes/s: ten 100-byte messages take about a second overall. *)
  let e = Sim.Engine.create () in
  let done_at = ref 0. in
  let ch =
    Sim.Channel.create e
      { Sim.Channel.ideal with bandwidth = Some 1000.; delay = 0. }
      ~size:String.length
      ~deliver:(fun _ -> done_at := Sim.Engine.now e)
      ()
  in
  for _ = 1 to 10 do
    Sim.Channel.send ch (String.make 100 'x')
  done;
  Sim.Engine.run e;
  if !done_at < 0.9 || !done_at > 1.1 then Alcotest.failf "serialised in %.3fs" !done_at

let test_channel_set_config_kills_link () =
  let e = Sim.Engine.create () in
  let got = ref 0 in
  let ch = Sim.Channel.create e Sim.Channel.ideal ~deliver:(fun () -> incr got) () in
  Sim.Channel.send ch ();
  Sim.Engine.run e;
  Sim.Channel.set_config ch { (Sim.Channel.config ch) with loss = 1.0 };
  Sim.Channel.send ch ();
  Sim.Engine.run e;
  check Alcotest.int "only first" 1 !got

let test_channel_set_config_midflight () =
  (* Pinned semantics: impairment decisions are made at [send] time, so a
     reconfiguration affects only subsequent sends — messages already in
     flight keep the delay and fate they were given. *)
  let e = Sim.Engine.create () in
  let arrivals = ref [] in
  let ch =
    Sim.Channel.create e
      { Sim.Channel.ideal with delay = 0.5 }
      ~size:String.length
      ~deliver:(fun m -> arrivals := (m, Sim.Engine.now e) :: !arrivals)
      ()
  in
  Sim.Channel.send ch "old-config";
  (* While "old-config" is still in flight, make the link slow and dead
     for new traffic. *)
  Sim.Channel.set_config ch { (Sim.Channel.config ch) with delay = 2.0; loss = 1.0 };
  Sim.Channel.send ch "dropped";
  Sim.Channel.set_config ch { (Sim.Channel.config ch) with loss = 0.0 };
  Sim.Channel.send ch "new-config";
  Sim.Engine.run e;
  let arrivals = List.rev !arrivals in
  check Alcotest.(list string) "old keeps old fate, new sees new config"
    [ "old-config"; "new-config" ]
    (List.map fst arrivals);
  check (Alcotest.float 1e-6) "old delay honoured" 0.5 (List.assoc "old-config" arrivals);
  check (Alcotest.float 1e-6) "new delay honoured" 2.0 (List.assoc "new-config" arrivals)

let drop_run_lengths cfg n =
  (* Which of [n] sequenced messages never arrived, grouped into
     consecutive runs (the channel preserves order at fixed delay). *)
  let got, _ = collect_channel cfg n in
  let arrived = Array.make n false in
  List.iter
    (fun m -> Scanf.sscanf m "msg%d" (fun i -> arrived.(i - 1) <- true))
    got;
  let runs = ref [] and cur = ref 0 in
  Array.iter
    (fun ok ->
      if ok then begin
        if !cur > 0 then runs := !cur :: !runs;
        cur := 0
      end
      else incr cur)
    arrived;
  if !cur > 0 then runs := !cur :: !runs;
  !runs

let test_channel_burst_loss () =
  let n = 4000 in
  let target = 0.25 in
  let burst = drop_run_lengths (Sim.Channel.burst_lossy ~loss:target ~burst_len:6.) n in
  let iid = drop_run_lengths (Sim.Channel.lossy target) n in
  let total = List.fold_left ( + ) 0 in
  let mean_run r = Float.of_int (total r) /. Float.of_int (List.length r) in
  (* Equal average rate… *)
  let rate r = Float.of_int (total r) /. Float.of_int n in
  if Float.abs (rate burst -. target) > 0.06 then
    Alcotest.failf "burst loss rate %.3f, want ~%.2f" (rate burst) target;
  if Float.abs (rate iid -. target) > 0.06 then
    Alcotest.failf "iid loss rate %.3f, want ~%.2f" (rate iid) target;
  (* …but very different clustering: mean drop-run length near burst_len
     for Gilbert–Elliott, near 1/(1-p) ≈ 1.33 for i.i.d. *)
  if mean_run burst < 2. *. mean_run iid then
    Alcotest.failf "burst runs %.2f not longer than iid runs %.2f" (mean_run burst)
      (mean_run iid)

(* --- Trace --- *)

let test_trace () =
  let t = Sim.Trace.create () in
  Sim.Trace.record t ~time:1.0 ~actor:"a" "send x";
  Sim.Trace.record t ~time:2.0 ~actor:"b" "recv x";
  Sim.Trace.record t ~time:3.0 ~actor:"a" "send y";
  check Alcotest.int "count prefix" 2 (Sim.Trace.count t "send");
  check Alcotest.int "count actor" 1 (Sim.Trace.count t ~actor:"b" "recv");
  check Alcotest.int "entries" 3 (List.length (Sim.Trace.entries t));
  let first = List.hd (Sim.Trace.entries t) in
  check Alcotest.string "chronological" "send x" first.Sim.Trace.event;
  Sim.Trace.clear t;
  check Alcotest.int "cleared" 0 (List.length (Sim.Trace.entries t))

let test_trace_bounded () =
  (* The ring retains at most [capacity] entries but counts stay
     all-time. *)
  let t = Sim.Trace.create ~capacity:100 () in
  for i = 1 to 250 do
    Sim.Trace.record t ~time:(Float.of_int i) ~actor:"a" "send x"
  done;
  check Alcotest.int "retained bounded" 100 (List.length (Sim.Trace.entries t));
  check Alcotest.int "dropped counted" 150 (Sim.Trace.dropped t);
  check Alcotest.int "count survives eviction" 250 (Sim.Trace.count t "send");
  let oldest = List.hd (Sim.Trace.entries t) in
  check (Alcotest.float 1e-9) "oldest evicted first" 151. oldest.Sim.Trace.time;
  Sim.Trace.clear t;
  check Alcotest.int "cleared" 0 (Sim.Trace.count t "send");
  check Alcotest.int "dropped reset" 0 (Sim.Trace.dropped t)

let test_events_indexed_count () =
  let t = Sim.Events.create ~capacity:64 () in
  for i = 1 to 1000 do
    Sim.Events.emit t ~at:(Float.of_int i) ~actor:(if i mod 2 = 0 then "a" else "b")
      ~detail:(string_of_int i) "retransmit"
  done;
  Sim.Events.emit t ~at:1001. ~actor:"a" "give-up";
  check Alcotest.int "all-time prefix count" 1000
    (Sim.Events.count t ~prefix:"retrans" ());
  check Alcotest.int "per-actor count" 500 (Sim.Events.count t ~actor:"a" ~prefix:"retransmit" ());
  check Alcotest.int "other kind" 1 (Sim.Events.count t ~prefix:"give" ());
  check Alcotest.int "window bounded" 64 (Sim.Events.length t);
  check Alcotest.int "recorded all-time" 1001 (Sim.Events.recorded t)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO on ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancellation" `Quick test_engine_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run ~until" `Quick test_engine_until;
          Alcotest.test_case "run ~max_events" `Quick test_engine_max_events;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_rejected;
          Alcotest.test_case "pending count" `Quick test_engine_pending;
          Alcotest.test_case "heap stress" `Quick test_engine_heap_stress;
          Alcotest.test_case "live accounting 10k cycles" `Quick
            test_engine_live_accounting;
          Alcotest.test_case "cancel after fire" `Quick test_engine_cancel_after_fire;
          Alcotest.test_case "heap compaction" `Quick test_engine_compaction;
        ] );
      ( "channel",
        [
          Alcotest.test_case "ideal in-order" `Quick test_channel_ideal_delivers_in_order;
          Alcotest.test_case "loss rate" `Quick test_channel_loss_rate;
          Alcotest.test_case "duplication" `Quick test_channel_duplication;
          Alcotest.test_case "corruption" `Quick test_channel_corruption_changes_payload;
          Alcotest.test_case "reordering" `Quick test_channel_reorder;
          Alcotest.test_case "bandwidth" `Quick test_channel_bandwidth_serialisation;
          Alcotest.test_case "mid-run reconfig" `Quick test_channel_set_config_kills_link;
          Alcotest.test_case "mid-flight reconfig semantics" `Quick
            test_channel_set_config_midflight;
          Alcotest.test_case "gilbert-elliott burst loss" `Quick test_channel_burst_loss;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record/count" `Quick test_trace;
          Alcotest.test_case "bounded ring" `Quick test_trace_bounded;
          Alcotest.test_case "events indexed count" `Quick test_events_indexed_count;
        ] );
    ]
