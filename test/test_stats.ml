(* Unit tests for the Sublayer.Stats instruments, plus one integration
   check that a lossy ARQ run's retransmit counter agrees with the
   structured trace. *)

let check = Alcotest.check
module Stats = Sublayer.Stats

let test_counters () =
  let reg = Stats.create ~label:"t" () in
  let sc = Stats.scope reg "arq" in
  let c = Stats.counter sc "data_sent" in
  check Alcotest.int "starts at zero" 0 (Stats.value c);
  Stats.incr c;
  Stats.incr c;
  Stats.add c 40;
  check Alcotest.int "incr + add" 42 (Stats.value c);
  (* Find-or-create: the same name must alias the same cell. *)
  let c' = Stats.counter sc "data_sent" in
  Stats.incr c';
  check Alcotest.int "aliased by name" 43 (Stats.value c);
  let other = Stats.counter (Stats.scope reg "arq") "data_sent" in
  Stats.incr other;
  check Alcotest.int "scope aliased by name too" 44 (Stats.value c);
  check Alcotest.int "distinct names distinct cells" 0
    (Stats.value (Stats.counter sc "acks_sent"))

let test_gauges () =
  let sc = Stats.scope (Stats.create ()) "cc" in
  let g = Stats.gauge sc "cwnd_bytes" in
  check Alcotest.int "starts at zero" 0 (Stats.gauge_value g);
  Stats.set g 1460;
  Stats.set g 2920;
  check Alcotest.int "last set wins" 2920 (Stats.gauge_value g)

let test_histograms () =
  let sc = Stats.scope (Stats.create ()) "rd" in
  let h = Stats.histogram sc "rtt_us" in
  List.iter (Stats.observe h) [ 0; 1; 2; 3; 5; 8; 1000 ];
  check Alcotest.int "count" 7 (Stats.hist_count h);
  check Alcotest.int "sum" 1019 (Stats.hist_sum h);
  (* log2 lower bounds: 0,1 -> 1; 2,3 -> 2; 5 -> 4; 8 -> 8; 1000 -> 512. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "bucket layout"
    [ (1, 2); (2, 2); (4, 1); (8, 1); (512, 1) ]
    (Stats.hist_buckets h)

let test_enabled_switch () =
  let sc = Stats.scope (Stats.create ()) "arq" in
  let c = Stats.counter sc "data_sent" in
  let g = Stats.gauge sc "w" in
  let h = Stats.histogram sc "d" in
  Stats.set_enabled false;
  Fun.protect ~finally:(fun () -> Stats.set_enabled true) (fun () ->
      Stats.incr c;
      Stats.add c 10;
      Stats.set g 5;
      Stats.observe h 3;
      check Alcotest.bool "reports disabled" false (Stats.enabled ());
      check Alcotest.int "counter frozen" 0 (Stats.value c);
      check Alcotest.int "gauge frozen" 0 (Stats.gauge_value g);
      check Alcotest.int "histogram frozen" 0 (Stats.hist_count h));
  Stats.incr c;
  check Alcotest.int "counts again once re-enabled" 1 (Stats.value c)

let test_unregistered_scope () =
  (* Machines fall back to an unregistered scope when the caller passes
     no registry: instruments still count, nothing is enumerable. *)
  let sc = Stats.unregistered "arq" in
  let c = Stats.counter sc "data_sent" in
  Stats.incr c;
  check Alcotest.int "still counts" 1 (Stats.value c);
  check Alcotest.string "keeps its name" "arq" (Stats.scope_name sc)

let snapshot_t = Alcotest.(list (pair string int))

let test_snapshot_and_delta () =
  let reg = Stats.create ~label:"host" () in
  let arq = Stats.scope reg "arq" in
  let cm = Stats.scope reg "cm" in
  Stats.add (Stats.counter arq "data_sent") 5;
  Stats.incr (Stats.counter cm "established");
  Stats.set (Stats.gauge cm "phase") 3;
  let before = Stats.snapshot reg in
  check snapshot_t "name-sorted flat pairs"
    [ ("arq.data_sent", 5); ("cm.established", 1); ("cm.phase", 3) ]
    before;
  Stats.add (Stats.counter arq "data_sent") 2;
  Stats.incr (Stats.counter arq "retransmissions");
  let after = Stats.snapshot reg in
  check snapshot_t "delta drops zeros, counts new names from 0"
    [ ("arq.data_sent", 2); ("arq.retransmissions", 1) ]
    (Stats.delta ~before ~after);
  let h = Stats.histogram arq "burst" in
  Stats.observe h 4;
  Stats.observe h 6;
  let snap = Stats.snapshot reg in
  check Alcotest.int "histogram count entry" 2 (List.assoc "arq.burst.count" snap);
  check Alcotest.int "histogram sum entry" 10 (List.assoc "arq.burst.sum" snap)

let test_json () =
  let reg = Stats.create ~label:"a" () in
  Stats.incr (Stats.counter (Stats.scope reg "arq") "data_sent");
  check Alcotest.string "snapshot json" {|{"arq.data_sent":1}|}
    (Stats.snapshot_to_json (Stats.snapshot reg));
  check Alcotest.string "registry json" {|{"label":"a","stats":{"arq.data_sent":1}}|}
    (Stats.to_json reg)

(* --- Integration: counters vs. the structured trace --- *)

let test_arq_retransmits_match_trace () =
  (* Drive a go-back-n link over a lossy channel with both a trace and a
     stats registry attached; the [arq.retransmissions] counter must
     agree with the all-time count of "retransmit" trace events, per
     endpoint. *)
  let engine = Sim.Engine.create ~seed:7 () in
  let trace = Sim.Trace.create ~capacity:64 () in
  let stats_a = Stats.create ~label:"A" () in
  let stats_b = Stats.create ~label:"B" () in
  let link =
    Datalink.Stack.link engine ~trace ~stats_a ~stats_b
      (Sim.Channel.lossy 0.2) Datalink.Stack.default_spec
  in
  let payloads = List.init 40 (Printf.sprintf "payload %d") in
  let received = Datalink.Stack.transfer engine link payloads in
  check Alcotest.int "transfer completed" 40 (List.length received);
  let retx reg = List.assoc_opt "arq.retransmissions" (Stats.snapshot reg) in
  let counted r = Option.value ~default:0 (retx r) in
  check Alcotest.bool "lossy run actually retransmitted" true
    (counted stats_a > 0);
  (* The stack combinator prefixes machine notes with the sublayer name,
     so the ARQ's note indexes as "arq-gbn: retransmit". *)
  check Alcotest.int "A counter matches trace"
    (Sim.Trace.count trace ~actor:"A" "arq-gbn: retransmit")
    (counted stats_a);
  check Alcotest.int "B counter matches trace"
    (Sim.Trace.count trace ~actor:"B" "arq-gbn: retransmit")
    (counted stats_b);
  (* The capacity-64 ring has long since evicted the early entries; the
     all-time indexed count must not care. *)
  check Alcotest.bool "trace window is bounded" true
    (List.length (Sim.Trace.entries trace) <= 64)

let () =
  Alcotest.run "stats"
    [
      ( "instruments",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "enabled switch" `Quick test_enabled_switch;
          Alcotest.test_case "unregistered scope" `Quick test_unregistered_scope;
        ] );
      ( "reports",
        [
          Alcotest.test_case "snapshot + delta" `Quick test_snapshot_and_delta;
          Alcotest.test_case "json" `Quick test_json;
        ] );
      ( "integration",
        [
          Alcotest.test_case "arq retransmits match trace" `Quick
            test_arq_retransmits_match_trace;
        ] );
    ]
