(* Recursive sublayering (E28): a complete inner sublayered-TCP stack
   runs over a Transport.Tunnel that presents an outer (Rec-secured)
   transport connection as a Sublayer.Link — the Ouroboros direction.
   Tests cover exact delivery of concurrent inner flows under E18
   burst loss, bit-reproducibility, outer-death propagation into inner
   give-up, per-level monitor blame, per-level Σ-sojourn identity, and
   the idempotence of Stats.telemetry_source. *)

open Transport

let check = Alcotest.check

let random_data seed n =
  let rng = Bitkit.Rng.create seed in
  String.init n (fun _ -> Char.chr (Bitkit.Rng.int rng 256))

(* --- the Ouroboros harness --------------------------------------- *)

type scenario = {
  engine : Sim.Engine.t;
  inner_a : Host.t;
  inner_b : Host.t;
  tun_a : Tunnel.t;
  tun_b : Tunnel.t;
  outer_cli : Host.conn;
  ab : Bitkit.Slice.t Sim.Channel.t;
  ba : Bitkit.Slice.t Sim.Channel.t;
  stats : Sublayer.Stats.registry;
  tracer : Sim.Tracer.t;
  monitors : Monitor.Runtime.t;
}

(* Outer Rec-secured pair over [channel]; one outer connection wrapped
   in tunnels at both ends; inner hosts at recursion level 1 sharing
   the outer's registry, tracer and monitor runtime (the level tags
   keep them apart). *)
let build ?config ?(secure = true) ~channel ~seed () =
  let engine = Sim.Engine.create ~seed () in
  let stats = Sublayer.Stats.create ~label:"ouroboros" () in
  let tracer = Sim.Tracer.create ~capacity:65536 () in
  let monitors = Monitor.Runtime.create ~label:"ouroboros" () in
  let factory =
    if secure then Tcp_secure.factory ~key:Tcp_secure.demo_key
    else Host.sublayered
  in
  let oa, ob, ab, ba =
    Host.pair_channels engine ?config ~factory_a:factory ~factory_b:factory
      ~stats_a:stats ~stats_b:stats ~tracer ~monitors channel
  in
  Host.listen ob ~port:443;
  let outer_srv = ref None in
  Host.on_accept ob (fun c -> outer_srv := Some c);
  let outer_cli = Host.connect oa ~remote_port:443 () in
  let rec wait_accept () =
    if !outer_srv = None && Sim.Engine.now engine < 30. then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
      wait_accept ()
    end
  in
  wait_accept ();
  let srv_conn =
    match !outer_srv with
    | Some c -> c
    | None -> Alcotest.fail "outer connection not accepted"
  in
  let tun_a = Tunnel.create ~id:"tun-a" outer_cli in
  let tun_b = Tunnel.create ~id:"tun-b" srv_conn in
  let ins = Sublayer.Instrument.v ~stats ~tracer ~monitors ~level:1 () in
  let inner_a =
    Host.create engine ?config ~ins ~name:"iA" ~link:(Tunnel.link tun_a) ()
  in
  let inner_b =
    Host.create engine ?config ~ins ~name:"iB" ~link:(Tunnel.link tun_b) ()
  in
  { engine; inner_a; inner_b; tun_a; tun_b; outer_cli; ab; ba; stats;
    tracer; monitors }

let drive_until s ~deadline finished =
  let rec go () =
    if Sim.Engine.now s.engine < deadline && not (finished ()) then begin
      Sim.Engine.run ~until:(Sim.Engine.now s.engine +. 1.0) s.engine;
      go ()
    end
  in
  go ();
  Sim.Engine.run ~until:(Sim.Engine.now s.engine +. 5.0) s.engine

(* E18 burst loss on the outer path. *)
let bursty =
  { (Sim.Channel.burst_lossy ~loss:0.02 ~burst_len:6.) with
    Sim.Channel.delay = 0.005 }

(* Run [flows] concurrent inner connections a->b to completion and
   return (per-flow exact-delivery bools, scenario). *)
let run_flows ?config ?secure ~channel ~seed ~flows ~bytes () =
  let s = build ?config ?secure ~channel ~seed () in
  Host.listen s.inner_b ~port:80;
  let servers = ref [] in
  Host.on_accept s.inner_b (fun c -> servers := c :: !servers);
  let data = List.init flows (fun i -> random_data (seed + 100 + i) bytes) in
  let conns =
    List.map
      (fun d ->
        let c = Host.connect s.inner_a ~remote_port:80 () in
        Host.write c d;
        Host.close c;
        c)
      data
  in
  drive_until s ~deadline:300. (fun () -> List.for_all Host.finished conns);
  (* Inner server conns pair with clients through the ephemeral port. *)
  let delivered =
    List.map2
      (fun c d ->
        match
          List.find_opt
            (fun srv -> Host.remote_port srv = Host.local_port c)
            !servers
        with
        | Some srv -> Host.received srv = d
        | None -> false)
      conns data
  in
  (delivered, s)

(* --- exact delivery at matched burst loss (acceptance criterion) --- *)

let test_ouroboros_exact_delivery () =
  let delivered, s =
    run_flows ~channel:bursty ~seed:70 ~flows:2 ~bytes:30_000 ()
  in
  List.iteri
    (fun i ok -> check Alcotest.bool (Printf.sprintf "flow %d exact" i) true ok)
    delivered;
  check Alcotest.bool "tunnel carried frames" true
    (Tunnel.frames_in s.tun_b > 0 && Tunnel.frames_out s.tun_a > 0);
  (* T1–T3 conformance at both recursion levels: every crossing checked,
     none violated, and the verdict keys keep the levels apart. *)
  List.iter
    (fun v -> Alcotest.failf "conformance violation: %s" v)
    (Monitor.Runtime.violations s.monitors);
  check Alcotest.bool "monitors checked crossings" true
    (Monitor.Runtime.checked s.monitors > 0);
  let tracks =
    List.map (fun sp -> sp.Sim.Tracer.sp_track) (Sim.Tracer.spans s.tracer)
  in
  let has_prefix p k =
    String.length k >= String.length p && String.sub k 0 (String.length p) = p
  in
  check Alcotest.bool "inner tracks level-tagged" true
    (List.exists (has_prefix "l1:iA") tracks);
  check Alcotest.bool "outer tracks bare" true
    (List.exists (has_prefix "A:") tracks);
  (* The shared registry holds both levels' scopes side by side. *)
  let scope_names =
    List.map Sublayer.Stats.scope_name (Sublayer.Stats.scopes s.stats)
  in
  check Alcotest.bool "l1:rd scope present" true
    (List.mem "l1:rd" scope_names);
  check Alcotest.bool "bare rd scope present" true
    (List.mem "rd" scope_names)

(* --- seeded runs are bit-reproducible ----------------------------- *)

let digest ~seed () =
  let delivered, s =
    run_flows ~channel:bursty ~seed ~flows:2 ~bytes:15_000 ()
  in
  let link_stats l =
    let st = Sublayer.Link.stats l in
    Printf.sprintf "%d/%d/%d" st.Sublayer.Link.tx st.Sublayer.Link.rx
      st.Sublayer.Link.dropped
  in
  Printf.sprintf "%s|%d|%d|%s|%s|%.9f|%d"
    (String.concat "," (List.map string_of_bool delivered))
    (Tunnel.frames_out s.tun_a) (Tunnel.frames_in s.tun_b)
    (link_stats (Tunnel.link s.tun_a))
    (link_stats (Tunnel.link s.tun_b))
    (Sim.Engine.now s.engine)
    (Monitor.Runtime.checked s.monitors)

let test_ouroboros_reproducible () =
  check Alcotest.string "same seed, same run" (digest ~seed:71 ())
    (digest ~seed:71 ())

(* --- outer death is inner link-death (satellite 1) ----------------- *)

let test_outer_death_propagates () =
  let config = { Config.default with give_up_after = 5.0; max_retries = 8 } in
  let s = build ~config ~channel:Sim.Channel.ideal ~seed:72 () in
  Host.listen s.inner_b ~port:80;
  let inner_srv = ref None in
  Host.on_accept s.inner_b (fun c -> inner_srv := Some c);
  let c = Host.connect s.inner_a ~remote_port:80 () in
  Host.write c (random_data 73 20_000);
  (* Feed the pipeline briefly, then partition the outer channels for
     good: the outer RD exhausts its retries, aborts, the tunnel kills
     the link, and the inner stack must give up rather than retransmit
     into the dead tunnel. *)
  let t0 = Sim.Engine.now s.engine in
  Sim.Faultplan.apply s.engine
    [ Sim.Faultplan.Partition { at = t0 +. 0.3 } ]
    [ Sim.Faultplan.target ~name:"outer-ab" s.ab;
      Sim.Faultplan.target ~name:"outer-ba" s.ba ];
  ignore
    (Sim.Engine.at s.engine ~time:(t0 +. 0.5) (fun () ->
         Host.write c (random_data 74 20_000)));
  drive_until s ~deadline:60. (fun () -> Host.aborted c);
  check Alcotest.bool "outer connection aborted" true
    (Host.aborted s.outer_cli);
  check Alcotest.bool "tunnel link dead" false
    (Sublayer.Link.alive (Tunnel.link s.tun_a));
  check Alcotest.bool "inner connection aborted" true (Host.aborted c);
  (* Once everything has given up the engine must quiesce: no inner
     retransmission timers may keep firing into the dead tunnel. *)
  let frames_before = Tunnel.frames_out s.tun_a in
  Sim.Engine.run ~until:(Sim.Engine.now s.engine +. 60.) s.engine;
  check Alcotest.int "no traffic after give-up" frames_before
    (Tunnel.frames_out s.tun_a)

(* --- per-level Σ-sojourn identity (tracing at both levels) --------- *)

let test_sojourn_identity_per_level () =
  let s = build ~secure:false ~channel:Sim.Channel.ideal ~seed:75 () in
  Host.listen s.inner_b ~port:80;
  let c = Host.connect s.inner_a ~remote_port:80 () in
  (* One sub-MSS write per 100 ms: each becomes one inner segment whose
     buffer/flight/reasm spans tile its end-to-end interval. *)
  for i = 0 to 9 do
    ignore
      (Sim.Engine.at s.engine
         ~time:(1.0 +. (0.1 *. Float.of_int i))
         (fun () -> Host.write c (String.make 400 (Char.chr (Char.code 'a' + i)))))
  done;
  ignore (Sim.Engine.at s.engine ~time:2.5 (fun () -> Host.close c));
  Sim.Engine.run ~until:60. s.engine;
  let spans = Sim.Tracer.spans s.tracer in
  let has_prefix p k =
    String.length k >= String.length p && String.sub k 0 (String.length p) = p
  in
  let interesting sp =
    match (sp.Sim.Tracer.sp_sublayer, sp.Sim.Tracer.sp_name) with
    | ("osr" | "l1:osr"), ("buffer" | "reasm") | ("rd" | "l1:rd"), "flight" ->
        true
    | _ -> false
  in
  (* Group by trace, then check the identity for every complete
     single-segment trace — separately per recursion level, which the
     track prefix identifies. *)
  let by_trace = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      if interesting sp && sp.Sim.Tracer.sp_trace <> 0 then
        Hashtbl.replace by_trace sp.Sim.Tracer.sp_trace
          (sp :: Option.value ~default:[] (Hashtbl.find_opt by_trace sp.Sim.Tracer.sp_trace)))
    spans;
  let checked_l0 = ref 0 and checked_l1 = ref 0 in
  Hashtbl.iter
    (fun trace ss ->
      let has name = List.exists (fun sp -> sp.Sim.Tracer.sp_name = name) ss in
      if List.length ss = 3 && has "buffer" && has "flight" && has "reasm"
      then begin
        let inner = List.exists (fun sp -> has_prefix "l1:" sp.Sim.Tracer.sp_track) ss in
        if inner then incr checked_l1 else incr checked_l0;
        let sum =
          List.fold_left (fun acc sp -> acc +. Sim.Tracer.duration sp) 0. ss
        in
        let t0 =
          List.fold_left (fun acc sp -> Float.min acc sp.Sim.Tracer.sp_start)
            infinity ss
        in
        let t1 =
          List.fold_left (fun acc sp -> Float.max acc sp.Sim.Tracer.sp_end)
            neg_infinity ss
        in
        if Float.abs (sum -. (t1 -. t0)) > 1e-6 then
          Alcotest.failf
            "trace %d (level %d): sojourns sum to %.9f, end-to-end %.9f" trace
            (if inner then 1 else 0) sum (t1 -. t0)
      end)
    by_trace;
  check Alcotest.bool "inner traces checked" true (!checked_l1 > 0);
  check Alcotest.bool "outer traces checked" true (!checked_l0 > 0)

(* --- per-level monitor blame under mutation (satellite 3) ---------- *)

module Machine = Sublayer.Machine

(* A benign RD stand-in: comes up on Connect, absorbs transmissions. *)
module Sink_rd = struct
  let name = "sink-rd"

  type t = unit
  type up_req = Iface.rd_req
  type up_ind = Iface.rd_ind
  type down_req = unit
  type down_ind = unit
  type timer = Machine.Nothing.t

  let handle_up_req () : up_req -> t * (up_ind, down_req, timer) Machine.action list = function
    | `Connect | `Listen -> ((), [ Machine.Up `Established ])
    | _ -> ((), [])

  let handle_down_ind () () = ((), [])
  let handle_timer () (t : timer) = Machine.Nothing.absurd t
end

(* Mutated RD: acknowledges one byte beyond anything transmitted. *)
module Greedy_rd = struct
  include Sink_rd

  let name = "greedy-rd"

  let handle_up_req () : up_req -> t * (up_ind, down_req, timer) Machine.action list = function
    | `Connect | `Listen -> ((), [ Machine.Up `Established ])
    | `Transmit (off, len, _) ->
        ((), [ Machine.Up (`Acked (off + len + 1, Bitkit.Slice.of_string "", None)) ])
    | _ -> ((), [])
end

module R_sink = Sublayer.Runtime.Make (Machine.Stack (Conform.P_osr_rd) (Sink_rd))
module R_greedy = Sublayer.Runtime.Make (Machine.Stack (Conform.P_osr_rd) (Greedy_rd))

let buf n = Bitkit.Wirebuf.of_string (String.make n 'x')

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* Two stacks probed into one runtime, one per recursion level: the
   level tag on the probe key is what makes the blame unambiguous. *)
let mutation_levels ~mutate_inner =
  let engine = Sim.Engine.create ~seed:5 () in
  let monitors = Monitor.Runtime.create ~label:"levels" () in
  let ins0 = Sublayer.Instrument.v ~monitors () in
  let ins1 = Sublayer.Instrument.v ~monitors ~level:1 () in
  let outer_key = Sublayer.Instrument.tagged_name ins0 "oA:443>49152" in
  let inner_key = Sublayer.Instrument.tagged_name ins1 "iA:80>49152" in
  let legal key =
    let t =
      R_sink.create engine ~name:key ~transmit:ignore ~deliver:ignore
        (Conform.osr_rd (Some monitors) ~conn:key, ())
    in
    R_sink.from_above t `Connect;
    R_sink.from_above t (`Transmit (0, 100, buf 100))
  in
  let buggy key =
    let t =
      R_greedy.create engine ~name:key ~transmit:ignore ~deliver:ignore
        (Conform.osr_rd (Some monitors) ~conn:key, ())
    in
    R_greedy.from_above t `Connect;
    R_greedy.from_above t (`Transmit (0, 100, buf 100))
  in
  if mutate_inner then begin
    legal outer_key;
    buggy inner_key
  end
  else begin
    legal inner_key;
    buggy outer_key
  end;
  match Monitor.Runtime.violations monitors with
  | [ msg ] -> msg
  | msgs ->
      Alcotest.failf "wanted exactly one violation, got %d" (List.length msgs)

let test_blame_inner_never_outer () =
  let msg = mutation_levels ~mutate_inner:true in
  check Alcotest.bool "rd blamed" true (contains msg "rd violated");
  check Alcotest.bool "inner key named" true (contains msg "[l1:iA:80>49152]");
  check Alcotest.bool "outer key untouched" false (contains msg "oA:443")

let test_blame_outer_never_inner () =
  let msg = mutation_levels ~mutate_inner:false in
  check Alcotest.bool "rd blamed" true (contains msg "rd violated");
  check Alcotest.bool "outer key named" true (contains msg "[oA:443>49152]");
  check Alcotest.bool "inner level untouched" false (contains msg "l1:")

(* --- telemetry_source idempotence (satellite 2) -------------------- *)

let test_telemetry_source_idempotent () =
  let stats = Sublayer.Stats.create ~label:"reg" () in
  let scope = Sublayer.Stats.scope stats "rd" in
  let acks = Sublayer.Stats.counter scope "acks" in
  let tele = Sim.Telemetry.create () in
  Sublayer.Stats.telemetry_source tele ~name:"host" stats;
  (* Registry owners and hosts may both try; the second is a no-op. *)
  Sublayer.Stats.telemetry_source tele ~name:"host" stats;
  Sim.Telemetry.sample_now tele ~now:0.0;
  Sublayer.Stats.incr acks;
  Sim.Telemetry.sample_now tele ~now:1.0;
  (match Sim.Telemetry.last_sample tele with
  | Some s ->
      let hits = List.filter (fun (k, _) -> k = "host.rd.acks") s.Sim.Telemetry.det in
      check
        Alcotest.(list (pair string int))
        "source registered once" [ ("host.rd.acks", 1) ] hits
  | None -> Alcotest.fail "no sample");
  (* A different telemetry instance is a fresh pair and does register. *)
  let tele2 = Sim.Telemetry.create () in
  Sublayer.Stats.telemetry_source tele2 ~name:"host" stats;
  Sim.Telemetry.sample_now tele2 ~now:0.0;
  Sublayer.Stats.incr acks;
  Sim.Telemetry.sample_now tele2 ~now:1.0;
  match Sim.Telemetry.last_sample tele2 with
  | Some s ->
      check
        Alcotest.(list (pair string int))
        "second instance registers" [ ("host.rd.acks", 1) ]
        (List.filter (fun (k, _) -> k = "host.rd.acks") s.Sim.Telemetry.det)
  | None -> Alcotest.fail "no sample on second instance"

let () =
  Alcotest.run "tunnel"
    [ ( "ouroboros",
        [ Alcotest.test_case "exact delivery under burst loss" `Quick
            test_ouroboros_exact_delivery;
          Alcotest.test_case "bit-reproducible" `Quick
            test_ouroboros_reproducible;
          Alcotest.test_case "sojourn identity per level" `Quick
            test_sojourn_identity_per_level ] );
      ( "link death",
        [ Alcotest.test_case "outer abort halts inner stacks" `Quick
            test_outer_death_propagates ] );
      ( "levels",
        [ Alcotest.test_case "inner violation blames inner" `Quick
            test_blame_inner_never_outer;
          Alcotest.test_case "outer violation blames outer" `Quick
            test_blame_outer_never_inner ] );
      ( "telemetry",
        [ Alcotest.test_case "double registration is a no-op" `Quick
            test_telemetry_source_idempotent ] ) ]
