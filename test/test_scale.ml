(* Many-flow scale harness: Sim.Workload driving Transport.Fabric. Small
   flow counts here (CI-sized); E21 pushes the same harness to 1k/5k. *)

let run_workload ?(flows = 40) ?(bytes = 512) ?(loss = 0.) ~backend ~seed () =
  let engine = Sim.Engine.create ~seed ~backend () in
  let channel =
    if loss = 0. then Sim.Channel.ideal else Sim.Channel.lossy loss
  in
  let fabric =
    Transport.Fabric.create engine ~hosts:4 ~channel ~flows ~bytes ()
  in
  Sim.Workload.run ~spacing:0.01 ~name:"scale" ~engine ~flows
    (Transport.Fabric.ops fabric)

let test_exact_delivery () =
  List.iter
    (fun backend ->
      let r = run_workload ~backend ~seed:11 () in
      if not (Sim.Workload.ok r) then
        Alcotest.failf "workload not ok: %a" Sim.Workload.pp_report r;
      Alcotest.(check int) "all flows exact" r.Sim.Workload.flows
        r.Sim.Workload.exact;
      Alcotest.(check bool) "live hwm positive" true
        (r.Sim.Workload.live_hwm > 0))
    [ `Wheel; `Heap ]

let test_exact_under_loss () =
  let r = run_workload ~loss:0.02 ~backend:`Wheel ~seed:12 () in
  if not (Sim.Workload.ok r) then
    Alcotest.failf "lossy workload not ok: %a" Sim.Workload.pp_report r

(* Same seed, same harness, twice: the whole many-flow run must be
   bit-reproducible, wheel included. *)
let test_reproducible () =
  let scenario seed =
    (run_workload ~loss:0.02 ~backend:`Wheel ~seed ()).Sim.Workload.soak
  in
  Alcotest.(check bool) "reproducible" true
    (Sim.Soak.reproducible scenario ~seed:13)

(* Both backends must tell the same story at the soak level too: equal
   virtual end time and events fired for the identical scenario. *)
let test_backend_agreement () =
  let report backend = run_workload ~loss:0.02 ~backend ~seed:14 () in
  let w = report `Wheel and h = report `Heap in
  Alcotest.(check int) "events fired equal"
    h.Sim.Workload.soak.Sim.Soak.events_fired
    w.Sim.Workload.soak.Sim.Soak.events_fired;
  Alcotest.(check bool) "end clocks equal" true
    (w.Sim.Workload.soak.Sim.Soak.vtime = h.Sim.Workload.soak.Sim.Soak.vtime)

(* Partial partition at 1k flows: the links out of host 0 go dark for two
   virtual seconds while the rest of the fabric keeps running. Every flow
   must still deliver exactly — the partitioned ones by retransmitting
   after the heal, the others without ever noticing. *)
let test_partial_partition () =
  let engine = Sim.Engine.create ~seed:15 () in
  let partition = [ Sim.Faultplan.Partition { at = 0.5 }; Sim.Faultplan.Heal { at = 2.5 } ] in
  let link_faults (src, dst) =
    if src = 0 || dst = 0 then Some partition else None
  in
  let fabric =
    Transport.Fabric.create engine ~hosts:8 ~link_faults
      ~channel:(Sim.Channel.lossy 0.01) ~flows:1000 ~bytes:256 ()
  in
  let r =
    Sim.Workload.run ~spacing:0.002 ~name:"partial-partition" ~engine
      ~flows:1000
      (Transport.Fabric.ops fabric)
  in
  if not (Sim.Workload.ok r) then
    Alcotest.failf "partitioned workload not ok: %a" Sim.Workload.pp_report r;
  Alcotest.(check int) "all 1k flows exact" r.Sim.Workload.flows
    r.Sim.Workload.exact;
  (* The partitioned flows cannot finish before the heal: a run that ends
     earlier means the faults were never applied. *)
  Alcotest.(check bool) "run outlives the partition" true
    (r.Sim.Workload.soak.Sim.Soak.vtime > 2.5)

let () =
  Alcotest.run "scale"
    [
      ( "workload",
        [
          Alcotest.test_case "exact delivery on both backends" `Quick
            test_exact_delivery;
          Alcotest.test_case "exact delivery under loss" `Quick
            test_exact_under_loss;
          Alcotest.test_case "bit-reproducible" `Quick test_reproducible;
          Alcotest.test_case "wheel and heap agree" `Quick
            test_backend_agreement;
          Alcotest.test_case "partial partition at 1k flows" `Quick
            test_partial_partition;
        ] );
    ]
