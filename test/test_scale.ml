(* Many-flow scale harness: Sim.Workload driving Transport.Fabric. Small
   flow counts here (CI-sized); E21 pushes the same harness to 1k/5k. *)

let run_workload ?(flows = 40) ?(bytes = 512) ?(loss = 0.) ~backend ~seed () =
  let engine = Sim.Engine.create ~seed ~backend () in
  let channel =
    if loss = 0. then Sim.Channel.ideal else Sim.Channel.lossy loss
  in
  let fabric =
    Transport.Fabric.create engine ~hosts:4 ~channel ~flows ~bytes ()
  in
  Sim.Workload.run ~spacing:0.01 ~name:"scale" ~engine ~flows
    (Transport.Fabric.ops fabric)

let test_exact_delivery () =
  List.iter
    (fun backend ->
      let r = run_workload ~backend ~seed:11 () in
      if not (Sim.Workload.ok r) then
        Alcotest.failf "workload not ok: %a" Sim.Workload.pp_report r;
      Alcotest.(check int) "all flows exact" r.Sim.Workload.flows
        r.Sim.Workload.exact;
      Alcotest.(check bool) "live hwm positive" true
        (r.Sim.Workload.live_hwm > 0))
    [ `Wheel; `Heap ]

let test_exact_under_loss () =
  let r = run_workload ~loss:0.02 ~backend:`Wheel ~seed:12 () in
  if not (Sim.Workload.ok r) then
    Alcotest.failf "lossy workload not ok: %a" Sim.Workload.pp_report r

(* Same seed, same harness, twice: the whole many-flow run must be
   bit-reproducible, wheel included. *)
let test_reproducible () =
  let scenario seed =
    (run_workload ~loss:0.02 ~backend:`Wheel ~seed ()).Sim.Workload.soak
  in
  Alcotest.(check bool) "reproducible" true
    (Sim.Soak.reproducible scenario ~seed:13)

(* Both backends must tell the same story at the soak level too: equal
   virtual end time and events fired for the identical scenario. *)
let test_backend_agreement () =
  let report backend = run_workload ~loss:0.02 ~backend ~seed:14 () in
  let w = report `Wheel and h = report `Heap in
  Alcotest.(check int) "events fired equal"
    h.Sim.Workload.soak.Sim.Soak.events_fired
    w.Sim.Workload.soak.Sim.Soak.events_fired;
  Alcotest.(check bool) "end clocks equal" true
    (w.Sim.Workload.soak.Sim.Soak.vtime = h.Sim.Workload.soak.Sim.Soak.vtime)

(* Partial partition at 1k flows: the links out of host 0 go dark for two
   virtual seconds while the rest of the fabric keeps running. Every flow
   must still deliver exactly — the partitioned ones by retransmitting
   after the heal, the others without ever noticing. *)
let test_partial_partition () =
  let engine = Sim.Engine.create ~seed:15 () in
  let partition = [ Sim.Faultplan.Partition { at = 0.5 }; Sim.Faultplan.Heal { at = 2.5 } ] in
  let link_faults (src, dst) =
    if src = 0 || dst = 0 then Some partition else None
  in
  let fabric =
    Transport.Fabric.create engine ~hosts:8 ~link_faults
      ~channel:(Sim.Channel.lossy 0.01) ~flows:1000 ~bytes:256 ()
  in
  let r =
    Sim.Workload.run ~spacing:0.002 ~name:"partial-partition" ~engine
      ~flows:1000
      (Transport.Fabric.ops fabric)
  in
  if not (Sim.Workload.ok r) then
    Alcotest.failf "partitioned workload not ok: %a" Sim.Workload.pp_report r;
  Alcotest.(check int) "all 1k flows exact" r.Sim.Workload.flows
    r.Sim.Workload.exact;
  (* The partitioned flows cannot finish before the heal: a run that ends
     earlier means the faults were never applied. *)
  Alcotest.(check bool) "run outlives the partition" true
    (r.Sim.Workload.soak.Sim.Soak.vtime > 2.5)

(* --- sharded execution ------------------------------------------------- *)

(* One scenario, parameterised only by the shard count: 8 hosts, 64
   flows, loss, per-shard monitor registries. [shards = 1] runs the
   single engine directly with no domains; the whole Workload report
   (per-flow exactness, events fired, end time, every per-slice sample,
   merged monitor verdicts) must be structurally identical at every
   shard count — the same discipline test_wheel applies to heap vs
   wheel, extended to parallel execution. *)
let sharded_report ?link_faults ?(loss = 0.02) ~shards ~seed () =
  let flows = 64 in
  let shard = Sim.Shard.create ~seed ~lookahead:0.001 ~shards () in
  let mons =
    Array.init shards (fun i ->
        Monitor.Runtime.create ~label:(Printf.sprintf "shard%d" i) ())
  in
  let fabric =
    Transport.Fabric.create_sharded shard ~hosts:8 ~monitors:mons ?link_faults
      ~channel:(Sim.Channel.lossy loss) ~flows ~bytes:384 ()
  in
  Sim.Workload.run_sharded ~spacing:0.01 ~name:"shard-identity" ~shard
    ~launch_site:(Transport.Fabric.launch_site fabric)
    ~verdicts:(fun () -> Monitor.Runtime.merged_verdicts (Array.to_list mons))
    ~flows
    (Transport.Fabric.ops fabric)

let check_identity ?link_faults ~seed () =
  let base = sharded_report ?link_faults ~shards:1 ~seed () in
  if not (Sim.Workload.ok base) then
    Alcotest.failf "single-shard baseline not ok: %a" Sim.Workload.pp_report
      base;
  List.iter
    (fun shards ->
      let r = sharded_report ?link_faults ~shards ~seed () in
      if r <> base then
        Alcotest.failf "%d-shard run diverged from single-engine: %a vs %a"
          shards Sim.Workload.pp_report r Sim.Workload.pp_report base)
    [ 2; 4 ]

let test_shard_identity () = check_identity ~seed:21 ()

(* Same identity with a fault plan partitioning the 3<->4 host pair —
   cross-shard links at both 2 shards (blocks 0-3 | 4-7) and 4 shards
   (pairs), so faults land on conduit-fed channels. *)
let test_shard_identity_faults () =
  let partition =
    [ Sim.Faultplan.Partition { at = 0.3 }; Sim.Faultplan.Heal { at = 1.7 } ]
  in
  let link_faults (src, dst) =
    if (src = 3 && dst = 4) || (src = 4 && dst = 3) then Some partition
    else None
  in
  check_identity ~link_faults ~seed:22 ()

(* The conduit's conservative contract, in isolation: messages at or
   after the receiver's clock drain in push order; a message before it —
   a violated lookahead promise — is an error, never a silent reorder. *)
let test_conduit_lookahead () =
  let c = Sim.Conduit.create ~lookahead:0.5 in
  let seen = ref [] in
  Sim.Conduit.push c ~time:1.0 (fun () -> ());
  Sim.Conduit.push c ~time:1.2 (fun () -> ());
  Sim.Conduit.push c ~time:1.1 (fun () -> ());
  Sim.Conduit.drain c ~now:1.0 (fun ~time _fn -> seen := time :: !seen);
  Alcotest.(check (list (float 0.))) "push order preserved" [ 1.0; 1.2; 1.1 ]
    (List.rev !seen);
  Alcotest.(check int) "drained counter" 3 (Sim.Conduit.drained c);
  Alcotest.(check int) "backlog empty" 0 (Sim.Conduit.backlog c);
  Sim.Conduit.push c ~time:0.9 (fun () -> ());
  (match Sim.Conduit.drain c ~now:1.0 (fun ~time:_ _ -> ()) with
  | () -> Alcotest.fail "past delivery was not rejected"
  | exception Invalid_argument _ -> ())

(* End to end: a cross-shard post that breaks the lookahead promise must
   abort the run with the conduit's past-delivery error — proving the
   running protocol cannot deliver an event into a shard's past. *)
let test_shard_past_delivery_rejected () =
  let shard = Sim.Shard.create ~shards:2 ~lookahead:0.1 () in
  ignore
    (Sim.Engine.at (Sim.Shard.engine shard 0) ~time:1.0 (fun () ->
         (* 1.05 < 1.0 + lookahead: an illegal timestamp. *)
         Sim.Shard.post shard ~src:0 ~dst:1 ~time:1.05 (fun () -> ())));
  (match Sim.Shard.run ~until:10. shard with
  | () -> Alcotest.fail "lookahead violation was not detected"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the past delivery" true
        (String.length msg > 0));
  (* And the legal boundary case — exactly now + lookahead — is fine. *)
  let shard = Sim.Shard.create ~shards:2 ~lookahead:0.1 () in
  let fired = ref false in
  ignore
    (Sim.Engine.at (Sim.Shard.engine shard 0) ~time:1.0 (fun () ->
         Sim.Shard.post shard ~src:0 ~dst:1 ~time:(1.0 +. 0.1) (fun () ->
             fired := true)));
  Sim.Shard.run ~until:10. shard;
  Alcotest.(check bool) "boundary message fired" true !fired;
  Alcotest.(check int) "events accounted" 2 (Sim.Shard.events_fired shard)

let () =
  Alcotest.run "scale"
    [
      ( "workload",
        [
          Alcotest.test_case "exact delivery on both backends" `Quick
            test_exact_delivery;
          Alcotest.test_case "exact delivery under loss" `Quick
            test_exact_under_loss;
          Alcotest.test_case "bit-reproducible" `Quick test_reproducible;
          Alcotest.test_case "wheel and heap agree" `Quick
            test_backend_agreement;
          Alcotest.test_case "partial partition at 1k flows" `Quick
            test_partial_partition;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "sharded == single-engine (1/2/4 shards)" `Quick
            test_shard_identity;
          Alcotest.test_case "sharded == single-engine under link faults"
            `Quick test_shard_identity_faults;
          Alcotest.test_case "conduit lookahead contract" `Quick
            test_conduit_lookahead;
          Alcotest.test_case "no delivery into a shard's past" `Quick
            test_shard_past_delivery_rejected;
        ] );
    ]
