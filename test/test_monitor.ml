(* Runtime conformance monitors (E25): legal runs on every stack are
   violation-free on both engine backends, mutated sublayers are caught
   and blamed by name, and the global kill switch makes observation
   free. *)

open Transport

let check = Alcotest.check

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let random_data seed n =
  let rng = Bitkit.Rng.create seed in
  String.init n (fun _ -> Char.chr (Bitkit.Rng.int rng 256))

(* --- Legal traces: transport ------------------------------------- *)

(* One bidirectional transfer over a lossy channel (retransmission and
   reordering paths included), with a shared monitor registry watching
   both hosts. A conforming stack must come out violation-free. *)
let legal_transfer backend factory ~seed =
  let engine = Sim.Engine.create ~seed ~backend () in
  let monitors = Monitor.Runtime.create ~label:"legal" () in
  let a, b =
    Host.pair engine ~factory_a:factory ~factory_b:factory ~monitors
      (Sim.Channel.lossy 0.05)
  in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c ->
      server := Some c;
      Host.write c (random_data (seed + 1) 4_000);
      Host.close c);
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data seed 20_000 in
  Host.write c data;
  Host.close c;
  Sim.Engine.run ~until:300. engine;
  (match !server with
  | None -> Alcotest.failf "%s: no accept" factory.Host.fname
  | Some srv ->
      if Host.received srv <> data then
        Alcotest.failf "%s: wrong bytes (%d/%d)" factory.Host.fname
          (Host.received_length srv) (String.length data));
  List.iter
    (fun v -> Alcotest.failf "%s: %s" factory.Host.fname v)
    (Monitor.Runtime.violations monitors);
  monitors

let factories =
  [ (Host.sublayered, true);
    (Tcp_monolithic.factory, false);
    (Shim.factory, true);
    (Tcp_watson.factory (), true);
    (Tcp_secure.factory ~key:Tcp_secure.demo_key, true) ]

let test_legal_transport backend () =
  List.iteri
    (fun i (factory, monitored) ->
      let monitors = legal_transfer backend factory ~seed:(40 + i) in
      let checked = Monitor.Runtime.checked monitors in
      if monitored then begin
        if checked = 0 then
          Alcotest.failf "%s: no interface crossings checked"
            factory.Host.fname;
        check Alcotest.bool
          (factory.Host.fname ^ " verdicts clean")
          true
          (List.for_all
             (fun (_, c, v) -> c > 0 && v = 0)
             (Monitor.Runtime.verdicts monitors))
      end
      else
        (* The monolithic baseline has no T2 interfaces to probe. *)
        check Alcotest.int (factory.Host.fname ^ " unmonitored") 0 checked)
    factories

(* The sublayered stack crosses all five monitored transport interfaces;
   make sure each one actually produced verdicts. *)
let test_transport_coverage () =
  let monitors = legal_transfer `Wheel Host.sublayered ~seed:51 in
  let subs = List.map (fun (s, _, _) -> s) (Monitor.Runtime.verdicts monitors) in
  List.iter
    (fun sub ->
      if not (List.mem sub subs) then
        Alcotest.failf "no verdicts for sublayer %s" sub)
    [ "app"; "osr"; "rd"; "cm"; "dm" ]

(* --- Legal traces: data link ------------------------------------- *)

let arq_trio =
  [ (module Datalink.Arq_stop_and_wait : Datalink.Arq.S);
    (module Datalink.Arq_go_back_n);
    (module Datalink.Arq_selective_repeat) ]

let test_legal_datalink backend () =
  List.iter
    (fun arq ->
      let module A = (val arq : Datalink.Arq.S) in
      let engine = Sim.Engine.create ~seed:9 ~backend () in
      let monitors = Monitor.Runtime.create ~label:"dl" () in
      let spec = { Datalink.Stack.default_spec with arq } in
      let link =
        Datalink.Stack.link engine ~monitors (Sim.Channel.lossy 0.08) spec
      in
      let payloads = List.init 30 (fun i -> Printf.sprintf "frame-%d" i) in
      let got = Datalink.Stack.transfer engine link payloads in
      check Alcotest.(list string) (A.name ^ " delivered") payloads got;
      List.iter
        (fun v -> Alcotest.failf "%s: %s" A.name v)
        (Monitor.Runtime.violations monitors);
      if Monitor.Runtime.checked monitors = 0 then
        Alcotest.failf "%s: nothing checked" A.name)
    arq_trio

(* --- Mutations: buggy sublayers must be caught and blamed --------- *)

module Machine = Sublayer.Machine

(* A benign RD stand-in: comes up on Connect, absorbs transmissions. *)
module Sink_rd = struct
  let name = "sink-rd"

  type t = unit
  type up_req = Iface.rd_req
  type up_ind = Iface.rd_ind
  type down_req = unit
  type down_ind = unit
  type timer = Machine.Nothing.t

  let handle_up_req () : up_req -> t * (up_ind, down_req, timer) Machine.action list = function
    | `Connect | `Listen -> ((), [ Machine.Up `Established ])
    | _ -> ((), [])

  let handle_down_ind () () = ((), [])
  let handle_timer () (t : timer) = Machine.Nothing.absurd t
end

(* Mutated RD: acknowledges one byte beyond anything transmitted. *)
module Greedy_rd = struct
  include Sink_rd

  let name = "greedy-rd"

  let handle_up_req () : up_req -> t * (up_ind, down_req, timer) Machine.action list = function
    | `Connect | `Listen -> ((), [ Machine.Up `Established ])
    | `Transmit (off, len, _) ->
        ((), [ Machine.Up (`Acked (off + len + 1, Bitkit.Slice.of_string "", None)) ])
    | _ -> ((), [])
end

(* Mutated CM: delivers a payload PDU while the handshake is still
   opening (exactly the early-delivery bug Specs.rd_cm exists for). *)
module Chatty_cm = struct
  let name = "chatty-cm"

  type t = unit
  type up_req = Iface.cm_req
  type up_ind = Iface.cm_ind
  type down_req = unit
  type down_ind = unit
  type timer = Machine.Nothing.t

  let handle_up_req () : up_req -> t * (up_ind, down_req, timer) Machine.action list = function
    | `Connect -> ((), [ Machine.Up (`Pdu (Bitkit.Slice.of_string "early")) ])
    | _ -> ((), [])

  let handle_down_ind () () = ((), [])
  let handle_timer () (t : timer) = Machine.Nothing.absurd t
end

module R_sink = Sublayer.Runtime.Make (Machine.Stack (Conform.P_osr_rd) (Sink_rd))
module R_greedy = Sublayer.Runtime.Make (Machine.Stack (Conform.P_osr_rd) (Greedy_rd))
module R_chatty = Sublayer.Runtime.Make (Machine.Stack (Conform.P_rd_cm) (Chatty_cm))

let expect_violation monitors ~guilty ~key =
  (match Monitor.Runtime.violations monitors with
  | [ msg ] ->
      if not (contains msg (guilty ^ " violated")) then
        Alcotest.failf "blame mismatch, wanted %s in %S" guilty msg;
      if not (contains msg ("[" ^ key ^ "]")) then
        Alcotest.failf "key missing in %S" msg
  | msgs -> Alcotest.failf "wanted exactly one violation, got %d" (List.length msgs));
  check Alcotest.int "count" 1 (Monitor.Runtime.violation_count monitors)

let buf n = Bitkit.Wirebuf.of_string (String.make n 'x')

(* The upper sublayer misbehaves: a transmit that skips part of the
   stream. Down-direction violation, blamed on "osr". *)
let test_mutation_osr_gap () =
  let engine = Sim.Engine.create ~seed:1 () in
  let monitors = Monitor.Runtime.create ~label:"mut" () in
  let t =
    R_sink.create engine ~name:"mut" ~transmit:ignore ~deliver:ignore
      (Conform.osr_rd (Some monitors) ~conn:"mut-osr", ())
  in
  R_sink.from_above t `Connect;
  R_sink.from_above t (`Transmit (0, 100, buf 100));
  check Alcotest.int "legal prefix clean" 0 (Monitor.Runtime.violation_count monitors);
  R_sink.from_above t (`Transmit (150, 10, buf 10));
  expect_violation monitors ~guilty:"osr" ~key:"mut-osr";
  (* a dead instance stays silent — one bug, one report *)
  R_sink.from_above t (`Transmit (400, 10, buf 10));
  check Alcotest.int "silenced" 1 (Monitor.Runtime.violation_count monitors)

(* The lower sublayer misbehaves: an ack overtaking transmission.
   Up-direction violation, blamed on "rd". *)
let test_mutation_rd_overack () =
  let engine = Sim.Engine.create ~seed:2 () in
  let monitors = Monitor.Runtime.create ~label:"mut" () in
  let t =
    R_greedy.create engine ~name:"mut" ~transmit:ignore ~deliver:ignore
      (Conform.osr_rd (Some monitors) ~conn:"mut-rd", ())
  in
  R_greedy.from_above t `Connect;
  R_greedy.from_above t (`Transmit (0, 100, buf 100));
  expect_violation monitors ~guilty:"rd" ~key:"mut-rd"

(* CM delivers data in the opening phase: blamed on "cm". *)
let test_mutation_cm_early_pdu () =
  let engine = Sim.Engine.create ~seed:3 () in
  let monitors = Monitor.Runtime.create ~label:"mut" () in
  let t =
    R_chatty.create engine ~name:"mut" ~transmit:ignore ~deliver:ignore
      (Conform.rd_cm (Some monitors) ~conn:"mut-cm", ())
  in
  R_chatty.from_above t `Connect;
  expect_violation monitors ~guilty:"cm" ~key:"mut-cm"

(* A go-back-N sender transmitting outside its own window, fed through
   the data-link probe's decoder: blamed on "arq-gbn". *)
let test_mutation_arq_window () =
  let monitors = Monitor.Runtime.create ~label:"mut" () in
  let p =
    Datalink.Conform.arq_det (Some monitors) ~key:"mut-dl" ~variant:"arq-gbn"
      ~window:4
  in
  p.Datalink.Conform.P_arq_det.obs_req (Datalink.Arq.data_wirebuf ~seq:0 "ok");
  p.Datalink.Conform.P_arq_det.obs_req (Datalink.Arq.data_wirebuf ~seq:3 "ok");
  check Alcotest.int "in-window clean" 0 (Monitor.Runtime.violation_count monitors);
  p.Datalink.Conform.P_arq_det.obs_req (Datalink.Arq.data_wirebuf ~seq:100 "bad");
  expect_violation monitors ~guilty:"arq-gbn" ~key:"mut-dl"

(* --- Global kill switch ------------------------------------------ *)

(* Disabled monitors check nothing: a full transfer with a registry
   attached records zero events, and the observe hot path does not
   allocate. *)
let test_disabled_is_free () =
  Fun.protect ~finally:(fun () -> Monitor.Runtime.set_enabled true) @@ fun () ->
  Monitor.Runtime.set_enabled false;
  check Alcotest.bool "reads back" false (Monitor.Runtime.enabled ());
  let monitors = legal_transfer `Wheel Host.sublayered ~seed:61 in
  check Alcotest.int "no events" 0 (Monitor.Runtime.checked monitors);
  check Alcotest.bool "no verdict counts" true
    (List.for_all (fun (_, c, v) -> c = 0 && v = 0)
       (Monitor.Runtime.verdicts monitors));
  (* allocation-free observe: drive one probe closure in a tight loop *)
  let reg = Monitor.Runtime.create ~label:"off" () in
  let p = Conform.osr_rd (Some reg) ~conn:"off" in
  let before = Gc.allocated_bytes () in
  for _ = 1 to 50_000 do
    p.Conform.P_osr_rd.obs_req `Connect
  done;
  let allocated = Gc.allocated_bytes () -. before in
  if allocated > 512. then
    Alcotest.failf "disabled observe allocated %.0f bytes" allocated;
  check Alcotest.int "still zero" 0 (Monitor.Runtime.checked reg)

let () =
  Alcotest.run "monitor"
    [ ( "legal",
        [ Alcotest.test_case "transport on wheel" `Quick (test_legal_transport `Wheel);
          Alcotest.test_case "transport on heap" `Quick (test_legal_transport `Heap);
          Alcotest.test_case "all transport interfaces covered" `Quick
            test_transport_coverage;
          Alcotest.test_case "datalink trio on wheel" `Quick (test_legal_datalink `Wheel);
          Alcotest.test_case "datalink trio on heap" `Quick (test_legal_datalink `Heap) ] );
      ( "mutations",
        [ Alcotest.test_case "osr transmit gap" `Quick test_mutation_osr_gap;
          Alcotest.test_case "rd over-ack" `Quick test_mutation_rd_overack;
          Alcotest.test_case "cm early pdu" `Quick test_mutation_cm_early_pdu;
          Alcotest.test_case "arq outside window" `Quick test_mutation_arq_window ] );
      ( "kill switch",
        [ Alcotest.test_case "disabled is free" `Quick test_disabled_is_free ] ) ]
