(* Tests for the model checker, the protocol models (E8), and the
   entanglement metric (E9). *)

open Mcheck

let check = Alcotest.check

(* --- Checker on toy systems --- *)

module Counter = struct
  type state = int

  let name = "counter"
  let initial = [ 0 ]
  let next s = if s >= 5 then [] else [ ("inc", s + 1) ]
  let invariant s = if s > 5 then Some "overflow" else None
  let accepting s = s = 5
end

module Buggy = struct
  type state = int

  let name = "buggy"
  let initial = [ 0 ]
  let next s = [ ("inc", s + 1) ]
  let invariant s = if s = 3 then Some "hit three" else None
  let accepting _ = false
end

module Deadlocky = struct
  type state = int

  let name = "deadlocky"
  let initial = [ 0 ]
  let next s = if s = 2 then [] else [ ("step", s + 1) ]
  let invariant _ = None
  let accepting _ = false
end

let test_checker_exhausts () =
  let r = Checker.run (module Counter) in
  check Alcotest.int "states" 6 r.Checker.states;
  check Alcotest.int "depth" 5 r.Checker.max_depth;
  check Alcotest.bool "no violation" true (r.Checker.violation = None);
  check Alcotest.int "no deadlock (accepting end)" 0 r.Checker.deadlocks

let test_checker_finds_violation_with_shortest_trace () =
  let r = Checker.run (module Buggy) in
  match r.Checker.violation with
  | Some (msg, trace) ->
      check Alcotest.string "message" "hit three" msg;
      check Alcotest.(list string) "shortest trace" [ "inc"; "inc"; "inc" ] trace
  | None -> Alcotest.fail "missed violation"

let test_checker_counts_deadlocks () =
  let r = Checker.run (module Deadlocky) in
  check Alcotest.int "one deadlock" 1 r.Checker.deadlocks

let test_checker_truncation () =
  let module Infinite = struct
    type state = int

    let name = "infinite"
    let initial = [ 0 ]
    let next s = [ ("inc", s + 1) ]
    let invariant _ = None
    let accepting _ = false
  end in
  let r = Checker.run ~max_states:100 (module Infinite) in
  check Alcotest.bool "truncated" true r.Checker.truncated

(* --- Protocol models (E8) --- *)

let test_rd_model_holds () =
  let r = Checker.run (Model_rd.model Model_rd.default) in
  check Alcotest.bool "invariants hold" true (r.Checker.violation = None);
  check Alcotest.int "no deadlocks" 0 r.Checker.deadlocks;
  check Alcotest.bool "non-trivial space" true (r.Checker.states > 100)

let test_rd_model_no_retransmit_deadlocks () =
  let r = Checker.run (Model_rd.model { Model_rd.default with retransmit = false }) in
  check Alcotest.bool "deadlocks without retransmission" true (r.Checker.deadlocks > 0)

let test_rd_model_bigger_windows () =
  List.iter
    (fun (n, w) ->
      let r = Checker.run (Model_rd.model { Model_rd.default with n; window = w }) in
      if r.Checker.violation <> None then Alcotest.failf "violation at n=%d w=%d" n w;
      if r.Checker.deadlocks <> 0 then Alcotest.failf "deadlock at n=%d w=%d" n w)
    [ (4, 2); (3, 3); (4, 3) ]

let test_osr_model_holds () =
  let r = Checker.run (Model_osr.model ~n:8) in
  check Alcotest.bool "holds" true (r.Checker.violation = None);
  check Alcotest.int "states = subsets" 256 r.Checker.states

let test_cm_model_rejects_stale_isn () =
  let r = Checker.run (Model_cm.model Model_cm.default) in
  check Alcotest.bool "safety holds with stale SYN in flight" true
    (r.Checker.violation = None);
  check Alcotest.int "no deadlock" 0 r.Checker.deadlocks

let test_cm_model_without_stale () =
  let r = Checker.run (Model_cm.model { Model_cm.default with stale_syn = false }) in
  check Alcotest.bool "holds" true (r.Checker.violation = None)

let test_cm_teardown_no_deadlock () =
  let r = Checker.run (Model_cm.close_model ~capacity:2) in
  check Alcotest.bool "holds" true (r.Checker.violation = None);
  check Alcotest.int "no deadlock (needs CLOSING retx + FW2 timeout)" 0
    r.Checker.deadlocks

let test_msg_model_hol_freedom () =
  let r = Checker.run (Model_msg.model ~messages:3 ~frags:2) in
  check Alcotest.bool "holds" true (r.Checker.violation = None);
  check Alcotest.int "states = subsets of fragments" 64 r.Checker.states;
  check Alcotest.int "no deadlocks" 0 r.Checker.deadlocks

let test_mono_model_holds () =
  let r = Checker.run (Model_mono.model Model_mono.default) in
  check Alcotest.bool "holds" true (r.Checker.violation = None)

(* Assume–guarantee conformance (E25): every reachable transition of the
   bounded sublayer models stays inside the very interface specs the
   runtime monitors execute. *)
let test_interface_conformance () =
  List.iter
    (fun (what, m) ->
      let r = Checker.run (Protocol.conformance m) in
      (match r.Checker.violation with
      | Some (msg, trace) ->
          Alcotest.failf "%s: %s (trace: %s)" what msg (String.concat " " trace)
      | None -> ());
      check Alcotest.bool (what ^ " exhaustive") false r.Checker.truncated;
      check Alcotest.bool (what ^ " explored") true (r.Checker.states > 1))
    [ ("rd sender |= osr-rd", Model_rd.observed_sender Model_rd.default);
      ("rd receiver |= osr-rd", Model_rd.observed_receiver Model_rd.default);
      ("cm initiator |= rd-cm", Model_cm.observed_initiator Model_cm.default);
      ("cm responder |= rd-cm", Model_cm.observed_responder Model_cm.default) ]

(* The product construction actually rejects: a model mutated to emit an
   out-of-spec crossing yields a shortest trace to nonconformance. *)
let test_conformance_catches_mutation () =
  let module Bad = struct
    type state = int

    let name = "mutant"
    let initial = [ 0 ]
    let next s = if s >= 2 then [] else [ ("step" ^ string_of_int s, s + 1) ]
    let invariant _ = None
    let accepting s = s = 2
    let spec = Monitor.Specs.rd_cm
    let boot = [ (Monitor.Spec.Down, "connect", 0, 0) ]

    let observe _ label _ =
      (* delivers a payload PDU while the handshake is still opening *)
      if label = "step1" then [ (Monitor.Spec.Up, "pdu", 5, 0) ] else []
  end in
  let r = Checker.run (Protocol.conformance (module Bad)) in
  match r.Checker.violation with
  | Some (msg, trace) ->
      check Alcotest.bool "names conformance" true
        (String.length msg > 0
        && String.sub msg 0 (min 9 (String.length msg)) = "interface");
      check Alcotest.(list string) "shortest trace" [ "step0"; "step1" ] trace
  | None -> Alcotest.fail "mutant slipped through"

let test_compositional_vs_monolithic_sizes () =
  (* E8's quantitative claim: the sum of the per-sublayer state spaces is
     far smaller than the joint monolithic space for the same
     functionality bounds. *)
  let states m = (Checker.run m).Checker.states in
  let rd = states (Model_rd.model { Model_rd.default with n = 2 }) in
  let cm = states (Model_cm.model Model_cm.default) in
  let osr = states (Model_osr.model ~n:2) in
  let close = states (Model_cm.close_model ~capacity:2) in
  let mono = states (Model_mono.model Model_mono.default) in
  let compositional = rd + cm + osr + close in
  if mono <= 2 * compositional then
    Alcotest.failf "monolithic %d not much larger than compositional %d" mono
      compositional

(* --- Entanglement (E9) --- *)

let test_entanglement_counts () =
  let mono_pairs = Entangle.entangled_pairs Entangle.monolithic in
  let sub_pairs =
    List.fold_left (fun a i -> a + Entangle.entangled_pairs i) 0 Entangle.sublayered
  in
  check Alcotest.bool
    (Printf.sprintf "monolithic (%d) > sublayered total (%d)" mono_pairs sub_pairs)
    true
    (mono_pairs > sub_pairs);
  check Alcotest.int "cross-sublayer shared fields" 0
    (Entangle.cross_sublayer_shared_fields ())

let test_entanglement_inventory_consistent () =
  (* Every field an access mentions must be declared in its module. *)
  List.iter
    (fun inv ->
      List.iter
        (fun a ->
          List.iter
            (fun f ->
              if not (List.mem f inv.Entangle.fields) then
                Alcotest.failf "%s.%s mentions undeclared field %s" inv.Entangle.mname
                  a.Entangle.func f)
            a.Entangle.fields)
        inv.Entangle.accesses)
    (Entangle.monolithic :: Entangle.sublayered)

let test_monolithic_input_touches_everything () =
  (* The lwIP-style tcp_input really does touch the whole PCB. *)
  let input =
    List.find (fun a -> a.Entangle.func = "from_wire") Entangle.monolithic.Entangle.accesses
  in
  check Alcotest.int "touches all fields"
    (List.length Entangle.monolithic.Entangle.fields)
    (List.length input.Entangle.fields)

let test_interface_widths_small () =
  List.iter
    (fun (name, n) ->
      if n > 12 then Alcotest.failf "interface %s too wide: %d" name n)
    Entangle.interface_widths

let () =
  Alcotest.run "mcheck"
    [
      ( "checker",
        [
          Alcotest.test_case "exhausts" `Quick test_checker_exhausts;
          Alcotest.test_case "shortest counterexample" `Quick test_checker_finds_violation_with_shortest_trace;
          Alcotest.test_case "deadlock detection" `Quick test_checker_counts_deadlocks;
          Alcotest.test_case "truncation" `Quick test_checker_truncation;
        ] );
      ( "models",
        [
          Alcotest.test_case "rd holds (E8)" `Quick test_rd_model_holds;
          Alcotest.test_case "rd needs retransmission" `Quick test_rd_model_no_retransmit_deadlocks;
          Alcotest.test_case "rd larger bounds" `Slow test_rd_model_bigger_windows;
          Alcotest.test_case "osr reassembly" `Quick test_osr_model_holds;
          Alcotest.test_case "cm stale-syn safety" `Quick test_cm_model_rejects_stale_isn;
          Alcotest.test_case "cm without stale" `Quick test_cm_model_without_stale;
          Alcotest.test_case "cm teardown live" `Quick test_cm_teardown_no_deadlock;
          Alcotest.test_case "msg reassembly HOL-free (E15)" `Quick test_msg_model_hol_freedom;
          Alcotest.test_case "models conform to interface specs (E25)" `Quick test_interface_conformance;
          Alcotest.test_case "conformance catches mutation" `Quick test_conformance_catches_mutation;
          Alcotest.test_case "monolithic holds" `Slow test_mono_model_holds;
          Alcotest.test_case "compositional advantage (E8)" `Slow test_compositional_vs_monolithic_sizes;
        ] );
      ( "entangle",
        [
          Alcotest.test_case "monolithic > sublayered (E9)" `Quick test_entanglement_counts;
          Alcotest.test_case "inventory consistent" `Quick test_entanglement_inventory_consistent;
          Alcotest.test_case "tcp_input touches everything" `Quick test_monolithic_input_touches_everything;
          Alcotest.test_case "interfaces narrow (T2)" `Quick test_interface_widths_small;
        ] );
    ]
