(* The buffer arena under the pooled emit path: loan/release round
   trips, counter correctness (HWM, overruns), refcounting and deferred
   release, the misuse detectors (double release raises, debug mode
   poisons freed slots), and the heap fallback — an exhausted pool must
   degrade to ordinary allocation with identical bytes, never fail. *)

open Bitkit

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let payload_gen = QCheck2.Gen.(string_size ~gen:char (0 -- 64))

(* --- loan / release round trips --- *)

let test_roundtrip () =
  let p = Pool.create ~slots:4 ~slot_bytes:64 () in
  let s = Pool.loan p ~len:10 in
  check Alcotest.bool "loan grants a real slot" true (s <> Pool.no_slot);
  check Alcotest.int "one in use" 1 (Pool.in_use p);
  Bytes.blit_string "0123456789" 0 (Pool.buffer p) (Pool.off p s) 10;
  check Alcotest.string "slice reads the written bytes" "0123456789"
    (Slice.to_string (Pool.slice p s ~len:10));
  Pool.release p s;
  check Alcotest.int "none in use" 0 (Pool.in_use p);
  check Alcotest.int "one loan counted" 1 (Pool.loans p);
  check Alcotest.int "one release counted" 1 (Pool.releases p);
  check Alcotest.int "no overruns" 0 (Pool.overruns p)

let test_hwm () =
  let p = Pool.create ~slots:8 ~slot_bytes:16 () in
  let batch n = List.init n (fun _ -> Pool.loan p ~len:8) in
  let a = batch 3 in
  List.iter (Pool.release p) a;
  check Alcotest.int "hwm after 3 concurrent" 3 (Pool.hwm p);
  let b = batch 5 in
  List.iter (Pool.release p) b;
  check Alcotest.int "hwm rises to 5" 5 (Pool.hwm p);
  let c = batch 2 in
  List.iter (Pool.release p) c;
  check Alcotest.int "hwm is a high-water mark, not current" 5 (Pool.hwm p);
  check Alcotest.int "in_use drained" 0 (Pool.in_use p)

let test_exhaustion_then_reuse () =
  let p = Pool.create ~slots:2 ~slot_bytes:16 () in
  let a = Pool.loan p ~len:8 and b = Pool.loan p ~len:8 in
  check Alcotest.bool "both granted" true
    (a <> Pool.no_slot && b <> Pool.no_slot);
  check Alcotest.int "exhausted pool refuses" Pool.no_slot (Pool.loan p ~len:8);
  check Alcotest.int "refusal counted as overrun" 1 (Pool.overruns p);
  Pool.release p a;
  let c = Pool.loan p ~len:8 in
  check Alcotest.int "released slot is reused" a c;
  Pool.release p b;
  Pool.release p c;
  (* An oversized request is an overrun even with the pool empty. *)
  check Alcotest.int "oversized request refused" Pool.no_slot
    (Pool.loan p ~len:17);
  check Alcotest.int "oversized counted too" 2 (Pool.overruns p)

(* --- refcounting and deferred release --- *)

let test_retain () =
  let p = Pool.create ~slots:2 ~slot_bytes:16 () in
  let s = Pool.loan p ~len:8 in
  Pool.retain p s;
  Pool.release p s;
  check Alcotest.int "retained slot survives one release" 1 (Pool.in_use p);
  Pool.release p s;
  check Alcotest.int "final release frees it" 0 (Pool.in_use p)

let test_defer () =
  let p = Pool.create ~slots:2 ~slot_bytes:16 () in
  let s = Pool.loan p ~len:8 in
  Pool.defer_release p s;
  check Alcotest.int "deferred release has not run" 1 (Pool.in_use p);
  check Alcotest.string "slot still readable while deferred" ""
    (Slice.to_string (Pool.slice p s ~len:0));
  Pool.drain_deferred p;
  check Alcotest.int "drain applies it" 0 (Pool.in_use p);
  (* Draining an empty queue is a no-op (the engine hook fires after
     every event, loans or not). *)
  Pool.drain_deferred p

(* --- misuse detectors --- *)

let test_double_release_raises () =
  let p = Pool.create ~slots:2 ~slot_bytes:16 () in
  let s = Pool.loan p ~len:8 in
  Pool.release p s;
  check Alcotest.bool "double release raises" true
    (match Pool.release p s with
    | () -> false
    | exception Invalid_argument _ -> true);
  check Alcotest.bool "releasing a never-loaned slot raises" true
    (match Pool.release p (s + 1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  check Alcotest.bool "retaining a free slot raises" true
    (match Pool.retain p s with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_debug_poison () =
  let p = Pool.create ~debug:true ~slots:1 ~slot_bytes:8 () in
  let s = Pool.loan p ~len:8 in
  Bytes.blit_string "AAAAAAAA" 0 (Pool.buffer p) (Pool.off p s) 8;
  Pool.release p s;
  (* A use-after-release read sees the poison pattern, not stale data —
     silent aliasing becomes loud corruption in tests. *)
  check Alcotest.string "released slot is poisoned"
    (String.make 8 '\xDE')
    (Bytes.sub_string (Pool.buffer p) (Pool.off p s) 8);
  let p' = Pool.create ~slots:1 ~slot_bytes:8 () in
  let s' = Pool.loan p' ~len:8 in
  Bytes.blit_string "BBBBBBBB" 0 (Pool.buffer p') (Pool.off p' s') 8;
  Pool.release p' s';
  check Alcotest.string "non-debug pool leaves bytes alone" "BBBBBBBB"
    (Bytes.sub_string (Pool.buffer p') (Pool.off p' s') 8)

(* --- slot recovery from slices --- *)

let test_slot_of_slice () =
  let p = Pool.create ~slots:4 ~slot_bytes:16 () in
  let s = Pool.loan p ~len:12 in
  let sl = Pool.slice p s ~len:12 in
  check (Alcotest.option Alcotest.int) "slice maps back to its slot" (Some s)
    (Pool.slot_of_slice p sl);
  check (Alcotest.option Alcotest.int) "a narrowed view still maps"
    (Some s)
    (Pool.slot_of_slice p (Slice.sub sl ~pos:2 ~len:4));
  check (Alcotest.option Alcotest.int) "a heap slice does not" None
    (Pool.slot_of_slice p (Slice.of_string "not from the arena"));
  let q = Pool.create ~slots:4 ~slot_bytes:16 () in
  check (Alcotest.option Alcotest.int) "another pool's slice does not" None
    (Pool.slot_of_slice q sl);
  Pool.release p s

(* --- properties --- *)

let prop_tests =
  [ (* Writing through a loan and reading through its slice is the
       identity, at every slot the pool can grant. *)
    qtest "loaned slot stores and returns exact bytes"
      QCheck2.Gen.(pair payload_gen (0 -- 3))
      (fun (data, extra) ->
        let p = Pool.create ~slots:4 ~slot_bytes:64 () in
        (* Occupy a few slots first so the tested loan lands at varying
           offsets in the arena. *)
        let held = List.init extra (fun _ -> Pool.loan p ~len:1) in
        let s = Pool.loan p ~len:(String.length data) in
        Bytes.blit_string data 0 (Pool.buffer p) (Pool.off p s)
          (String.length data);
        let back = Slice.to_string (Pool.slice p s ~len:(String.length data)) in
        Pool.release p s;
        List.iter (Pool.release p) held;
        back = data);
    (* The emit fallback: an exhausted pool must produce the exact same
       bytes as a granted slot, just from the heap. *)
    qtest "overrun fallback emits identical bytes" payload_gen (fun data ->
        let wb =
          Wirebuf.push (Wirebuf.of_string data) ~owner:"t" (fun w ->
              Bitio.Writer.bytes w "\x01\x02\x03")
        in
        let roomy = Pool.create ~slots:2 ~slot_bytes:128 () in
        let slot, pooled = Wirebuf.emit_pooled wb roomy in
        let starved = Pool.create ~slots:1 ~slot_bytes:128 () in
        let hold = Pool.loan starved ~len:1 in
        let slot', heap = Wirebuf.emit_pooled wb starved in
        let ok =
          slot <> Pool.no_slot
          && slot' = Pool.no_slot
          && Slice.to_string pooled = Wirebuf.to_string wb
          && Slice.to_string heap = Wirebuf.to_string wb
          && Pool.overruns starved = 1
        in
        if slot <> Pool.no_slot then Pool.release roomy slot;
        Pool.release starved hold;
        ok);
    (* Loan/release in random interleavings: in_use tracks exactly, and
       every grant is a distinct live slot. *)
    qtest "random interleaving keeps counters exact"
      QCheck2.Gen.(list_size (1 -- 40) bool)
      (fun ops ->
        let p = Pool.create ~slots:4 ~slot_bytes:8 () in
        let live = ref [] in
        let ok = ref true in
        List.iter
          (fun is_loan ->
            if is_loan then begin
              let s = Pool.loan p ~len:4 in
              if s <> Pool.no_slot then begin
                if List.mem s !live then ok := false;
                live := s :: !live
              end
              else if List.length !live < 4 then ok := false
            end
            else
              match !live with
              | [] -> ()
              | s :: rest ->
                  Pool.release p s;
                  live := rest)
          ops;
        let n = List.length !live in
        if Pool.in_use p <> n then ok := false;
        List.iter (Pool.release p) !live;
        !ok && Pool.in_use p = 0 && Pool.loans p = Pool.releases p)
  ]

let () =
  Alcotest.run "pool"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "loan/release round trip" `Quick test_roundtrip;
          Alcotest.test_case "high-water mark" `Quick test_hwm;
          Alcotest.test_case "exhaustion, overrun, reuse" `Quick
            test_exhaustion_then_reuse;
          Alcotest.test_case "retain adds a reference" `Quick test_retain;
          Alcotest.test_case "deferred release waits for drain" `Quick
            test_defer;
        ] );
      ( "misuse",
        [
          Alcotest.test_case "double release raises" `Quick
            test_double_release_raises;
          Alcotest.test_case "debug mode poisons freed slots" `Quick
            test_debug_poison;
        ] );
      ( "slices",
        [ Alcotest.test_case "slot_of_slice recovery" `Quick test_slot_of_slice ]
      );
      ("properties", prop_tests);
    ]
