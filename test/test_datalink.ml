(* Tests for the data-link sublayers: detectors, framers, line codes,
   the three ARQ machines, MAC, and the composed stack with every
   mechanism swapped (experiments E1 and E14). *)

open Datalink

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let payload_gen = QCheck2.Gen.(string_size ~gen:char (0 -- 300))

(* --- Detectors --- *)

let detectors =
  [ Detector.parity; Detector.internet; Detector.fletcher16;
    Detector.crc Bitkit.Crc.crc16_ccitt; Detector.crc Bitkit.Crc.crc32;
    Detector.crc Bitkit.Crc.crc64_xz ]

let test_detector_roundtrip () =
  List.iter
    (fun d ->
      let msg = "hello sublayers" in
      match d.Detector.verify (d.Detector.protect msg) with
      | Some got -> check Alcotest.string (d.Detector.name ^ " roundtrip") msg got
      | None -> Alcotest.failf "%s rejected its own frame" d.Detector.name)
    detectors

let test_detector_rejects_flip () =
  List.iter
    (fun d ->
      let msg = "hello sublayers" in
      let frame = Bytes.of_string (d.Detector.protect msg) in
      Bytes.set frame 3 (Char.chr (Char.code (Bytes.get frame 3) lxor 0x04));
      match d.Detector.verify (Bytes.to_string frame) with
      | Some _ -> Alcotest.failf "%s accepted a corrupted frame" d.Detector.name
      | None -> ())
    detectors

let test_detector_short_frames () =
  List.iter
    (fun d ->
      match d.Detector.verify "" with
      | Some _ when d.Detector.overhead_bytes > 0 -> Alcotest.failf "%s accepted empty" d.Detector.name
      | _ -> ())
    detectors

let test_detector_residual_rates () =
  let rng = Bitkit.Rng.create 77 in
  (* Parity misses all even-weight errors; CRC-32 essentially none. *)
  let parity2 =
    Detector.residual_error_rate Detector.parity rng ~trials:400 ~payload_len:64 ~flips:2
  in
  let crc2 =
    Detector.residual_error_rate (Detector.crc Bitkit.Crc.crc32) rng ~trials:400
      ~payload_len:64 ~flips:2
  in
  check Alcotest.bool "parity blind to double flips" true (parity2 > 0.5);
  check (Alcotest.float 1e-9) "crc32 catches double flips" 0. crc2

let prop_detector_verify_protect =
  qtest "verify . protect = Some" payload_gen (fun s ->
      List.for_all (fun d -> d.Detector.verify (d.Detector.protect s) = Some s) detectors)

(* --- Framers --- *)

let framers =
  [ Framer.hdlc Stuffing.Rule.hdlc; Framer.hdlc Stuffing.Rule.paper_best; Framer.cobs;
    Framer.dle_stx; Framer.length_prefix ]

let prop_framer_roundtrip =
  qtest "deframe . frame = Some" payload_gen (fun s ->
      List.for_all (fun f -> f.Framer.deframe (f.Framer.frame s) = Some s) framers)

let test_framer_special_payloads () =
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          match f.Framer.deframe (f.Framer.frame s) with
          | Some got when got = s -> ()
          | _ -> Alcotest.failf "%s failed on %S" f.Framer.name s)
        [ ""; "\x00"; "\x00\x00\x00"; "\x10\x02\x10\x03"; "\x7e\x7e";
          String.make 300 '\xff'; String.make 254 'a'; String.make 255 'b';
          String.init 256 Char.chr ])
    framers

let test_cobs_overhead_bound () =
  (* COBS adds at most one byte per 254 plus the terminator and leading code. *)
  let s = String.make 1000 'x' in
  let framed_bytes = Bitkit.Bitseq.length (Framer.cobs.Framer.frame s) / 8 in
  check Alcotest.bool "bounded overhead" true (framed_bytes <= 1000 + (1000 / 254) + 2)

let test_hdlc_rejects_nonbyte () =
  let f = Framer.hdlc Stuffing.Rule.hdlc in
  (* A framed stream with a truncated body does not decode. *)
  let framed = f.Framer.frame "abc" in
  let broken = Bitkit.Bitseq.sub framed 0 (Bitkit.Bitseq.length framed - 9) in
  check Alcotest.bool "truncated rejected" true (f.Framer.deframe broken = None)

(* --- Line codes --- *)

let bits_gen = QCheck2.Gen.(map Bitkit.Bitseq.of_bool_list (list_size (0 -- 128) bool))

let prop_linecode_roundtrip =
  qtest "decode . encode = Some" bits_gen (fun b ->
      List.for_all
        (fun c ->
          match c.Linecode.decode (c.Linecode.encode b) with
          | Some got -> Bitkit.Bitseq.equal got b
          | None -> false)
        [ Linecode.nrz; Linecode.nrzi; Linecode.manchester ])

let prop_4b5b_roundtrip =
  qtest "4b5b roundtrip on nibble-aligned input"
    QCheck2.Gen.(map Bitkit.Bitseq.of_string (string_size ~gen:char (0 -- 40)))
    (fun b ->
      match Linecode.four_b_five_b.Linecode.decode (Linecode.four_b_five_b.Linecode.encode b) with
      | Some got -> Bitkit.Bitseq.equal got b
      | None -> false)

let test_manchester_properties () =
  let e = Linecode.manchester.Linecode.encode (Bitkit.Bitseq.of_bits "0101") in
  check Alcotest.string "encoding" "10011001" (Bitkit.Bitseq.to_bits e);
  (* illegal symbol pair 11 rejected *)
  check Alcotest.bool "illegal rejected" true
    (Linecode.manchester.Linecode.decode (Bitkit.Bitseq.of_bits "11") = None);
  check Alcotest.bool "odd length rejected" true
    (Linecode.manchester.Linecode.decode (Bitkit.Bitseq.of_bits "100") = None)

let test_nrzi_transitions () =
  (* NRZI encodes 1 as a transition: 111 -> 1,0,1 starting from level 0 *)
  let e = Linecode.nrzi.Linecode.encode (Bitkit.Bitseq.of_bits "111") in
  check Alcotest.string "transitions" "101" (Bitkit.Bitseq.to_bits e)

let test_4b5b_no_long_zero_runs () =
  (* 4B/5B guarantees at most three consecutive zeros inside any encoded
     stream (that is its purpose: clock recovery). *)
  let b = Bitkit.Bitseq.of_string (String.make 32 '\x00') in
  let e = Linecode.four_b_five_b.Linecode.encode b in
  check Alcotest.(option int) "no 0000 run" None
    (Bitkit.Bitseq.find_sub ~pattern:(Bitkit.Bitseq.of_bits "00000") e)

(* --- ARQ machines over the composed stack --- *)

let arqs : (string * (module Arq.S)) list =
  [ ("stop-and-wait", (module Arq_stop_and_wait));
    ("go-back-n", (module Arq_go_back_n));
    ("selective-repeat", (module Arq_selective_repeat)) ]

let transfer_with spec channel payloads seed =
  let engine = Sim.Engine.create ~seed () in
  let link = Stack.link engine channel spec in
  let got = Stack.transfer engine link payloads in
  (got, link)

let payloads = List.init 40 (Printf.sprintf "payload-%04d")

let test_arq_reliable_delivery () =
  List.iter
    (fun (name, arq) ->
      let spec = { Stack.default_spec with arq } in
      let channel = { Sim.Channel.harsh with corruption = 0.03 } in
      let got, _ = transfer_with spec channel payloads 42 in
      if got <> payloads then
        Alcotest.failf "%s: delivered %d/%d (or out of order)" name (List.length got)
          (List.length payloads))
    arqs

let test_arq_ideal_no_retransmissions () =
  List.iter
    (fun (name, arq) ->
      let spec = { Stack.default_spec with arq } in
      let got, link = transfer_with spec Sim.Channel.ideal payloads 1 in
      check Alcotest.bool (name ^ " delivered") true (got = payloads);
      check Alcotest.int (name ^ " no retx")
        0 (Stack.arq_stats link.Stack.a).Arq.retransmissions)
    arqs

let test_arq_efficiency_ordering () =
  (* Under loss, selective repeat retransmits no more than go-back-N. *)
  let channel = Sim.Channel.lossy 0.1 in
  let stats_for arq =
    let spec = { Stack.default_spec with arq; arq_config = { Arq.window = 8; rto = 0.1; max_retries = 30 } } in
    let got, link = transfer_with spec channel payloads 7 in
    check Alcotest.bool "delivered" true (got = payloads);
    (Stack.arq_stats link.Stack.a).Arq.data_sent
  in
  let gbn = stats_for (module Arq_go_back_n : Arq.S) in
  let sr = stats_for (module Arq_selective_repeat : Arq.S) in
  check Alcotest.bool (Printf.sprintf "sr (%d) <= gbn (%d)" sr gbn) true (sr <= gbn)

let test_arq_duplicate_suppression () =
  List.iter
    (fun (name, arq) ->
      let spec = { Stack.default_spec with arq } in
      let channel = { Sim.Channel.ideal with duplication = 0.4 } in
      let got, _ = transfer_with spec channel payloads 3 in
      if got <> payloads then Alcotest.failf "%s under duplication" name)
    arqs

let test_arq_bidirectional () =
  let engine = Sim.Engine.create ~seed:5 () in
  let link = Stack.link engine (Sim.Channel.lossy 0.05) Stack.default_spec in
  List.iter (fun p -> Stack.send link.Stack.a p) payloads;
  List.iter (fun p -> Stack.send link.Stack.b (p ^ "-rev")) payloads;
  Sim.Engine.run ~until:60. engine;
  check Alcotest.bool "a->b" true
    (List.of_seq (Queue.to_seq link.Stack.received_at_b) = payloads);
  check Alcotest.bool "b->a" true
    (List.of_seq (Queue.to_seq link.Stack.received_at_a)
    = List.map (fun p -> p ^ "-rev") payloads)

let test_pdu_codec () =
  let roundtrip p = Arq.decode_pdu (Arq.encode_pdu p) = Some p in
  check Alcotest.bool "data" true (roundtrip (Arq.Data (12345, "hello")));
  check Alcotest.bool "empty data" true (roundtrip (Arq.Data (0, "")));
  check Alcotest.bool "ack" true (roundtrip (Arq.Ack 65535));
  check Alcotest.bool "garbage" true (Arq.decode_pdu "\xFF" = None);
  check Alcotest.bool "bad kind" true (Arq.decode_pdu "\x07\x00\x01" = None)

(* --- Replaceability: every (detector, framer, linecode) combination
   works without touching the other sublayers (E1). --- *)

let test_mechanism_matrix () =
  let short = List.init 8 (Printf.sprintf "m%d") in
  List.iter
    (fun detector ->
      List.iter
        (fun framer ->
          let byte_oriented =
            framer.Framer.name <> "hdlc[01111110]" && framer.Framer.name <> "hdlc[00000010]"
          in
          List.iter
            (fun linecode ->
              (* 4b5b requires byte-aligned frames *)
              if linecode.Linecode.name <> "4b5b" || byte_oriented then begin
                let spec = { Stack.default_spec with detector; framer; linecode } in
                let got, _ = transfer_with spec (Sim.Channel.lossy 0.05) short 9 in
                if got <> short then
                  Alcotest.failf "combo %s/%s/%s failed" detector.Detector.name
                    framer.Framer.name linecode.Linecode.name
              end)
            Linecode.all)
        framers)
    [ Detector.crc Bitkit.Crc.crc32; Detector.crc Bitkit.Crc.crc64_xz; Detector.internet ]

let test_corruption_needs_detection () =
  (* With the null detector and a corrupting channel, damaged payloads
     reach the application; with CRC-32 they never do. *)
  let channel = { Sim.Channel.ideal with corruption = 0.3 } in
  let with_detector detector =
    let spec = { Stack.default_spec with detector } in
    let got, _ = transfer_with spec channel payloads 13 in
    got
  in
  let protected = with_detector (Detector.crc Bitkit.Crc.crc32) in
  check Alcotest.bool "crc32 delivers exactly" true (protected = payloads);
  let unprotected = with_detector Detector.none in
  check Alcotest.bool "no detection lets damage through" true (unprotected <> payloads)

(* --- Deframer (continuous bit stream) --- *)

let hdlc_framer = Framer.hdlc Stuffing.Rule.hdlc

let feed_in_chunks d stream chunk =
  let n = Bitkit.Bitseq.length stream in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let len = min chunk (n - !i) in
    out := !out @ Deframer.push d (Bitkit.Bitseq.sub stream !i len);
    i := !i + len
  done;
  !out

let test_deframer_basic_stream () =
  let d = Deframer.create () in
  let payloads = [ "alpha"; "beta"; "gamma" ] in
  let stream = Bitkit.Bitseq.concat (List.map hdlc_framer.Framer.frame payloads) in
  check Alcotest.(list string) "all frames" payloads (feed_in_chunks d stream 5)

let test_deframer_noise_and_idle () =
  let d = Deframer.create () in
  let stream =
    Bitkit.Bitseq.concat
      [ Bitkit.Bitseq.of_bits "110010101";      (* line noise before sync *)
        hdlc_framer.Framer.frame "first";
        Bitkit.Bitseq.of_bits "1111111111111"; (* idle ones between frames *)
        hdlc_framer.Framer.frame "second" ]
  in
  check Alcotest.(list string) "frames through noise" [ "first"; "second" ]
    (feed_in_chunks d stream 3);
  check Alcotest.bool "noise counted" true (Deframer.noise_discarded d >= 1)

let test_deframer_shared_flag () =
  (* back-to-back frames sharing one flag, as HDLC allows on the wire *)
  let d = Deframer.create () in
  let flag = Bitkit.Bitseq.of_bool_list Stuffing.Rule.hdlc.Stuffing.Rule.flag in
  let body p =
    Stuffing.Fast.stuff Stuffing.Rule.hdlc.Stuffing.Rule.rule
      (Bitkit.Bitseq.of_string p)
  in
  let stream =
    Bitkit.Bitseq.concat [ flag; body "one"; flag; body "two"; flag ]
  in
  check Alcotest.(list string) "shared flags" [ "one"; "two" ] (feed_in_chunks d stream 4)

let test_deframer_chunking_invariance () =
  let payloads = List.init 10 (Printf.sprintf "payload-%d") in
  let stream = Bitkit.Bitseq.concat (List.map hdlc_framer.Framer.frame payloads) in
  List.iter
    (fun chunk ->
      let d = Deframer.create () in
      if feed_in_chunks d stream chunk <> payloads then
        Alcotest.failf "chunk size %d changed the result" chunk)
    [ 1; 3; 8; 64; 100_000 ]

let test_deframer_partial_then_complete () =
  let d = Deframer.create () in
  let framed = hdlc_framer.Framer.frame "split" in
  let n = Bitkit.Bitseq.length framed in
  let first = Bitkit.Bitseq.sub framed 0 (n - 4) in
  let rest = Bitkit.Bitseq.sub framed (n - 4) 4 in
  check Alcotest.(list string) "incomplete" [] (Deframer.push d first);
  check Alcotest.bool "buffering" true (Deframer.buffered_bits d > 0);
  check Alcotest.(list string) "completed" [ "split" ] (Deframer.push d rest)

let prop_deframer_roundtrip =
  qtest ~count:100 "deframer recovers framed payload streams"
    QCheck2.Gen.(list_size (1 -- 8) (string_size ~gen:char (1 -- 40)))
    (fun payloads ->
      let d = Deframer.create () in
      let stream = Bitkit.Bitseq.concat (List.map hdlc_framer.Framer.frame payloads) in
      feed_in_chunks d stream 11 = payloads)

(* --- MAC --- *)

let test_aloha_peak_throughput () =
  (* Saturated slotted ALOHA with p = 1/N approximates G=1: S = 1/e. *)
  let n = 20 in
  let r =
    Mac.simulate ~seed:2 ~stations:n ~slots:60_000 ~arrival:1.0
      (Mac.Aloha (1. /. Float.of_int n))
  in
  let expected = 1. /. Float.exp 1. in
  if Float.abs (r.Mac.throughput -. expected) > 0.03 then
    Alcotest.failf "aloha throughput %.3f vs 1/e=%.3f" r.Mac.throughput expected

let test_csma_beats_aloha () =
  (* With multi-slot packets, sensing the carrier avoids most collisions. *)
  let n = 10 in
  let run policy =
    (Mac.simulate ~seed:3 ~plen:5 ~stations:n ~slots:50_000 ~arrival:0.05 policy)
      .Mac.utilisation
  in
  let aloha = run (Mac.Aloha 0.1) in
  let csma = run (Mac.Csma 0.1) in
  check Alcotest.bool (Printf.sprintf "csma %.3f > aloha %.3f" csma aloha) true
    (csma > aloha)

let test_mac_fairness () =
  let r = Mac.simulate ~seed:4 ~stations:8 ~slots:40_000 ~arrival:0.05 (Mac.Aloha 0.12) in
  check Alcotest.bool (Printf.sprintf "fair (%.3f)" r.Mac.fairness) true (r.Mac.fairness > 0.95)

let test_mac_low_load_delivers () =
  let r = Mac.simulate ~seed:5 ~stations:4 ~slots:20_000 ~arrival:0.02 (Mac.Csma 0.3) in
  (* At 8% total offered load nearly everything should get through. *)
  check Alcotest.bool "keeps up" true (r.Mac.throughput > 0.07);
  check Alcotest.bool "queues stay short" true (r.Mac.mean_backlog < 1.0)

let () =
  Alcotest.run "datalink"
    [
      ( "detector",
        [
          Alcotest.test_case "roundtrip" `Quick test_detector_roundtrip;
          Alcotest.test_case "rejects flips" `Quick test_detector_rejects_flip;
          Alcotest.test_case "short frames" `Quick test_detector_short_frames;
          Alcotest.test_case "residual rates" `Slow test_detector_residual_rates;
          prop_detector_verify_protect;
        ] );
      ( "framer",
        [
          prop_framer_roundtrip;
          Alcotest.test_case "special payloads" `Quick test_framer_special_payloads;
          Alcotest.test_case "cobs overhead" `Quick test_cobs_overhead_bound;
          Alcotest.test_case "hdlc truncation" `Quick test_hdlc_rejects_nonbyte;
        ] );
      ( "linecode",
        [
          prop_linecode_roundtrip;
          prop_4b5b_roundtrip;
          Alcotest.test_case "manchester" `Quick test_manchester_properties;
          Alcotest.test_case "nrzi" `Quick test_nrzi_transitions;
          Alcotest.test_case "4b5b zero runs" `Quick test_4b5b_no_long_zero_runs;
        ] );
      ( "arq",
        [
          Alcotest.test_case "pdu codec" `Quick test_pdu_codec;
          Alcotest.test_case "reliable under harsh channel" `Slow test_arq_reliable_delivery;
          Alcotest.test_case "ideal: no retransmissions" `Quick test_arq_ideal_no_retransmissions;
          Alcotest.test_case "sr <= gbn retransmissions" `Slow test_arq_efficiency_ordering;
          Alcotest.test_case "duplicate suppression" `Quick test_arq_duplicate_suppression;
          Alcotest.test_case "bidirectional" `Quick test_arq_bidirectional;
        ] );
      ( "stack",
        [
          Alcotest.test_case "mechanism matrix (E1)" `Slow test_mechanism_matrix;
          Alcotest.test_case "corruption needs detection" `Quick test_corruption_needs_detection;
        ] );
      ( "deframer",
        [
          Alcotest.test_case "basic stream" `Quick test_deframer_basic_stream;
          Alcotest.test_case "noise and idle" `Quick test_deframer_noise_and_idle;
          Alcotest.test_case "shared flags" `Quick test_deframer_shared_flag;
          Alcotest.test_case "chunking invariance" `Quick test_deframer_chunking_invariance;
          Alcotest.test_case "partial frames buffer" `Quick test_deframer_partial_then_complete;
          prop_deframer_roundtrip;
        ] );
      ( "mac",
        [
          Alcotest.test_case "aloha 1/e peak" `Slow test_aloha_peak_throughput;
          Alcotest.test_case "csma >= aloha" `Slow test_csma_beats_aloha;
          Alcotest.test_case "fairness" `Slow test_mac_fairness;
          Alcotest.test_case "low load" `Quick test_mac_low_load_delivers;
        ] );
    ]
