(* Tests for the network sublayers: addresses, the LPM trie, hello,
   distance-vector and link-state route computation (swappable, E2),
   forwarding, and failure/heal reconvergence. *)

open Network

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Addr --- *)

let test_addr_parse () =
  check Alcotest.int "10.0.0.1" 0x0A000001 (Addr.of_string "10.0.0.1");
  check Alcotest.string "roundtrip" "192.168.1.254" (Addr.to_string (Addr.of_string "192.168.1.254"));
  Alcotest.check_raises "octet range" (Invalid_argument "Addr.of_string: octet out of range")
    (fun () -> ignore (Addr.of_string "1.2.3.256"));
  Alcotest.check_raises "shape" (Invalid_argument "Addr.of_string: expected a.b.c.d")
    (fun () -> ignore (Addr.of_string "1.2.3"))

let test_addr_prefix () =
  let p = Addr.prefix_of_string "10.1.2.3/16" in
  check Alcotest.string "normalised" "10.1.0.0/16" (Format.asprintf "%a" Addr.pp_prefix p);
  check Alcotest.bool "matches inside" true (Addr.matches p (Addr.of_string "10.1.200.7"));
  check Alcotest.bool "rejects outside" false (Addr.matches p (Addr.of_string "10.2.0.1"));
  check Alcotest.bool "len 0 matches all" true
    (Addr.matches (Addr.prefix 0 0) (Addr.of_string "255.255.255.255"))

let prop_addr_roundtrip =
  qtest "string roundtrip" QCheck2.Gen.(0 -- 0xFFFFFF) (fun a ->
      Addr.of_string (Addr.to_string a) = a)

(* --- Fib (LPM trie) --- *)

let test_fib_lpm () =
  let fib = Fib.create () in
  Fib.insert fib (Addr.prefix_of_string "10.0.0.0/8") 1;
  Fib.insert fib (Addr.prefix_of_string "10.1.0.0/16") 2;
  Fib.insert fib (Addr.prefix_of_string "10.1.2.0/24") 3;
  check Alcotest.(option int) "/8 wins" (Some 1) (Fib.lookup fib (Addr.of_string "10.9.9.9"));
  check Alcotest.(option int) "/16 wins" (Some 2) (Fib.lookup fib (Addr.of_string "10.1.9.9"));
  check Alcotest.(option int) "/24 wins" (Some 3) (Fib.lookup fib (Addr.of_string "10.1.2.9"));
  check Alcotest.(option int) "miss" None (Fib.lookup fib (Addr.of_string "11.0.0.1"));
  check Alcotest.int "size" 3 (Fib.size fib)

let test_fib_default_route () =
  let fib = Fib.create () in
  Fib.insert fib (Addr.prefix 0 0) 9;
  check Alcotest.(option int) "default" (Some 9) (Fib.lookup fib (Addr.of_string "1.2.3.4"))

let test_fib_replace_remove () =
  let fib = Fib.create () in
  let p = Addr.prefix_of_string "10.0.0.0/8" in
  Fib.insert fib p 1;
  Fib.insert fib p 2;
  check Alcotest.(option int) "replaced" (Some 2) (Fib.lookup fib (Addr.of_string "10.0.0.1"));
  check Alcotest.int "size stays 1" 1 (Fib.size fib);
  Fib.remove fib p;
  check Alcotest.(option int) "removed" None (Fib.lookup fib (Addr.of_string "10.0.0.1"));
  Fib.remove fib p;
  check Alcotest.int "idempotent remove" 0 (Fib.size fib)

let test_fib_host_routes () =
  let fib = Fib.create () in
  for i = 0 to 63 do
    Fib.insert fib (Addr.host (Addr.node i)) i
  done;
  let ok = ref true in
  for i = 0 to 63 do
    if Fib.lookup fib (Addr.node i) <> Some i then ok := false
  done;
  check Alcotest.bool "all hosts resolve" true !ok;
  check Alcotest.int "entries" 64 (List.length (Fib.entries fib))

let prop_fib_lpm_reference =
  (* Compare trie lookups against a naive longest-prefix scan. *)
  let prefix_gen =
    QCheck2.Gen.(map2 (fun a len -> Addr.prefix a len) (0 -- 0xFFFFFF) (0 -- 32))
  in
  qtest "trie = naive scan" QCheck2.Gen.(pair (list_size (0 -- 30) prefix_gen) (0 -- 0xFFFFFF))
    (fun (prefixes, addr) ->
      let fib = Fib.create () in
      List.iteri (fun i p -> Fib.insert fib p i) prefixes;
      let naive =
        (* Last insert wins for equal prefixes, as in the trie. *)
        List.fold_left
          (fun best (i, p) ->
            if Addr.matches p addr then
              match best with
              | Some (_, bl) when bl > p.Addr.len -> best
              | _ -> Some (i, p.Addr.len)
            else best)
          None
          (List.mapi (fun i p -> (i, p)) prefixes)
      in
      Fib.lookup fib addr = Option.map fst naive)

(* --- Packet --- *)

let test_packet_ttl () =
  let p = Packet.make ~src:(Addr.node 1) ~dst:(Addr.node 2) (Bitkit.Slice.of_string "x") in
  check Alcotest.int "default ttl" 64 p.Packet.ttl;
  check Alcotest.int "size" 13 (Packet.size p);
  (match Packet.decrement_ttl p with
  | Some p' -> check Alcotest.int "decremented" 63 p'.Packet.ttl
  | None -> Alcotest.fail "ttl died early");
  let dying = Packet.make ~ttl:1 ~src:(Addr.node 1) ~dst:(Addr.node 2) (Bitkit.Slice.of_string "x") in
  check Alcotest.bool "expires at 1" true (Packet.decrement_ttl dying = None)

let test_packet_nonce () =
  let p = Packet.make ~src:(Addr.node 1) ~dst:(Addr.node 2) (Bitkit.Slice.of_string "x") in
  let q = Packet.make ~src:(Addr.node 1) ~dst:(Addr.node 2) (Bitkit.Slice.of_string "x") in
  check Alcotest.bool "identical twins get distinct nonces" true
    (p.Packet.nonce <> q.Packet.nonce);
  (match Packet.decrement_ttl p with
  | Some p' -> check Alcotest.int "nonce survives forwarding" p.Packet.nonce p'.Packet.nonce
  | None -> Alcotest.fail "ttl died early");
  let forged = Packet.make ~nonce:41 ~src:(Addr.node 1) ~dst:(Addr.node 2) (Bitkit.Slice.of_string "x") in
  check Alcotest.int "explicit nonce kept" 41 forged.Packet.nonce

(* Two identical payloads in flight between the same pair used to share
   one src/dst/payload correlation key, so the first packet's "transit"
   span was overwritten and left open forever. Nonce-keyed correlation
   must close one span per packet. *)
let test_transit_spans_of_identical_payloads () =
  let engine = Sim.Engine.create ~seed:4 () in
  let tracer = Sim.Tracer.create () in
  let net =
    Topology.build engine ~ins:(Sublayer.Instrument.v ~tracer ()) ~routing:(Distance_vector.factory ()) ~n:3
      (Topology.line 3)
  in
  (match Topology.converge net with
  | Some _ -> ()
  | None -> Alcotest.fail "did not converge");
  Topology.send net ~src:0 ~dst:2 "dup";
  Topology.send net ~src:0 ~dst:2 "dup";
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 5.) engine;
  check Alcotest.int "both packets delivered" 2
    (List.length (Topology.received net 2));
  let transit =
    List.filter
      (fun s -> s.Sim.Tracer.sp_name = "transit")
      (Sim.Tracer.spans tracer)
  in
  check Alcotest.int "one closed transit span per packet" 2 (List.length transit);
  List.iter
    (fun s -> check Alcotest.string "delivered" "delivered" s.Sim.Tracer.sp_detail)
    transit;
  check Alcotest.int "no transit span left open" 0
    (List.length
       (List.filter
          (fun s -> s.Sim.Tracer.sp_name = "transit")
          (Sim.Tracer.live_spans tracer)));
  Topology.stop net

let prop_random_topology_connected =
  qtest ~count:50 "random topologies are connected"
    QCheck2.Gen.(pair (2 -- 20) (0 -- 200))
    (fun (n, seed) ->
      let edges = Topology.random ~n ~extra:(seed mod 5) ~seed in
      let d = Topology.reference_distances ~n edges in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if d.(i).(j) = max_int then ok := false
        done
      done;
      !ok)

(* --- Hello --- *)

let test_hello_up_down () =
  let engine = Sim.Engine.create () in
  let events = ref [] in
  let lost = ref false in
  let h =
    Hello.create engine Hello.default_config ~self:(Addr.node 0)
      ~send:(fun _ _ -> ())
      ~notify:(fun e -> events := e :: !events)
  in
  (* Simulate the peer's hellos arriving every second until "failure". *)
  let rec peer_hello t =
    ignore
      (Sim.Engine.at engine ~time:t (fun () ->
           if not !lost then begin
             let w = Bitkit.Bitio.Writer.create () in
             Bitkit.Bitio.Writer.uint8 w 0x48;
             Bitkit.Bitio.Writer.uint32 w (Addr.node 1);
             Hello.on_pdu h ~ifindex:0 (Bitkit.Bitio.Writer.contents w);
             peer_hello (t +. 1.0)
           end))
  in
  Hello.add_interface h 0;
  peer_hello 0.5;
  ignore (Sim.Engine.at engine ~time:5.2 (fun () -> lost := true));
  Sim.Engine.run ~until:15. engine;
  Hello.stop h;
  let ups = List.filter (function Hello.Up _ -> true | _ -> false) !events in
  let downs = List.filter (function Hello.Down _ -> true | _ -> false) !events in
  check Alcotest.int "one up" 1 (List.length ups);
  check Alcotest.int "one down after hold expiry" 1 (List.length downs);
  check Alcotest.(list (pair int bool)) "no neighbors left" []
    (List.map (fun (i, a) -> (i, Addr.equal a (Addr.node 1))) (Hello.neighbors h))

let test_hello_ignores_garbage () =
  let engine = Sim.Engine.create () in
  let events = ref 0 in
  let h =
    Hello.create engine Hello.default_config ~self:(Addr.node 0)
      ~send:(fun _ _ -> ())
      ~notify:(fun _ -> incr events)
  in
  Hello.on_pdu h ~ifindex:0 "junk";
  Hello.on_pdu h ~ifindex:0 "";
  check Alcotest.int "no events" 0 !events

(* --- Routing protocols over topologies (E2) --- *)

let protocols =
  [ ("dv", Distance_vector.factory ()); ("ls", Link_state.factory ());
    ("pv", Path_vector.factory ()) ]

let build_and_converge ?(seed = 3) routing n edges =
  let engine = Sim.Engine.create ~seed () in
  let net = Topology.build engine ~routing ~n edges in
  let t = Topology.converge net in
  (engine, net, t)

let test_convergence_canonical_topologies () =
  List.iter
    (fun (pname, routing) ->
      List.iter
        (fun (tname, n, edges) ->
          let _, net, t = build_and_converge routing n edges in
          (match t with
          | Some _ -> ()
          | None -> Alcotest.failf "%s did not converge on %s" pname tname);
          Topology.stop net)
        [ ("line6", 6, Topology.line 6); ("ring7", 7, Topology.ring 7);
          ("grid3x3", 9, Topology.grid 3 3);
          ("random12", 12, Topology.random ~n:12 ~extra:6 ~seed:9) ])
    protocols

let test_paths_are_shortest () =
  List.iter
    (fun (pname, routing) ->
      let n = 9 in
      let edges = Topology.grid 3 3 in
      let _, net, _ = build_and_converge routing n edges in
      let d = Topology.reference_distances ~n edges in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            match Topology.fib_path net ~src:i ~dst:j with
            | Some path ->
                if List.length path - 1 <> d.(i).(j) then
                  Alcotest.failf "%s: %d->%d path length %d, shortest %d" pname i j
                    (List.length path - 1) d.(i).(j)
            | None -> Alcotest.failf "%s: no path %d->%d" pname i j
          end
        done
      done;
      Topology.stop net)
    protocols

let test_forwarding_delivers () =
  List.iter
    (fun (pname, routing) ->
      let engine, net, _ = build_and_converge routing 7 (Topology.ring 7) in
      for i = 0 to 6 do
        Topology.send net ~src:i ~dst:((i + 3) mod 7) (Printf.sprintf "hi-%d" i)
      done;
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 2.) engine;
      for i = 0 to 6 do
        let inbox = Topology.received net ((i + 3) mod 7) in
        if not (List.exists (fun p -> Bitkit.Slice.equal_string p.Packet.payload (Printf.sprintf "hi-%d" i)) inbox)
        then Alcotest.failf "%s: packet %d lost" pname i
      done;
      Topology.stop net)
    protocols

let test_failure_reconvergence () =
  List.iter
    (fun (pname, routing) ->
      let _, net, _ = build_and_converge routing 8 (Topology.ring 8) in
      Topology.fail_link net 0 1;
      (match Topology.converge net with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: no reconvergence after failure" pname);
      (* Traffic now routes the long way round. *)
      (match Topology.fib_path net ~src:0 ~dst:1 with
      | Some path -> check Alcotest.int (pname ^ " long way") 8 (List.length path)
      | None -> Alcotest.failf "%s: 0->1 unroutable" pname);
      Topology.heal_link net 0 1;
      (match Topology.converge net with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: no reconvergence after heal" pname);
      (match Topology.fib_path net ~src:0 ~dst:1 with
      | Some path -> check Alcotest.int (pname ^ " direct again") 2 (List.length path)
      | None -> Alcotest.failf "%s: 0->1 unroutable after heal" pname);
      Topology.stop net)
    protocols

let test_partition_detected () =
  List.iter
    (fun (pname, routing) ->
      let _, net, _ = build_and_converge routing 6 (Topology.line 6) in
      Topology.fail_link net 2 3;
      (match Topology.converge net with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: partition not converged" pname);
      check Alcotest.(option (list int)) (pname ^ " unreachable") None
        (Topology.fib_path net ~src:0 ~dst:5);
      Topology.stop net)
    protocols

let test_ttl_prevents_loops () =
  (* During transients forwarding may loop; TTL must kill such packets.
     Build a ring, fail a link, and immediately send before convergence. *)
  let engine = Sim.Engine.create ~seed:21 () in
  let net = Topology.build engine ~routing:(Distance_vector.factory ()) ~n:6 (Topology.ring 6) in
  ignore (Topology.converge net);
  Topology.fail_link net 0 5;
  (* send before reconvergence *)
  Topology.send net ~src:1 ~dst:5 "maybe-loops";
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.2) engine;
  (* The engine terminating at all (no infinite event cascade) plus
     bounded forwarded counts shows TTL works. *)
  let total_forwarded =
    let s = ref 0 in
    for i = 0 to 5 do
      s := !s + (Router.stats (Topology.router net i)).Router.forwarded
    done;
    !s
  in
  check Alcotest.bool "bounded forwarding" true (total_forwarded < 200);
  Topology.stop net

let test_dv_and_ls_agree () =
  (* All protocols must install the same path lengths everywhere —
     swapping route computation does not change the forwarding outcome. *)
  let n = 10 in
  let edges = Topology.random ~n:10 ~extra:5 ~seed:31 in
  let paths routing =
    let _, net, t = build_and_converge routing n edges in
    check Alcotest.bool "converged" true (t <> None);
    let m = Array.make_matrix n n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        m.(i).(j) <-
          (match Topology.fib_path net ~src:i ~dst:j with
          | Some p -> List.length p
          | None -> -1)
      done
    done;
    Topology.stop net;
    m
  in
  let dv = paths (Distance_vector.factory ()) in
  let ls = paths (Link_state.factory ()) in
  let pv = paths (Path_vector.factory ()) in
  check Alcotest.bool "dv = ls" true (dv = ls);
  check Alcotest.bool "ls = pv" true (ls = pv)

let test_router_stats () =
  let engine, net, _ = build_and_converge (Link_state.factory ()) 4 (Topology.line 4) in
  Topology.send net ~src:0 ~dst:3 "x";
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 1.) engine;
  check Alcotest.int "delivered at 3" 1 (Router.stats (Topology.router net 3)).Router.delivered;
  check Alcotest.int "forwarded by 1" 1 (Router.stats (Topology.router net 1)).Router.forwarded;
  check Alcotest.int "originated by 0" 1 (Router.stats (Topology.router net 0)).Router.originated;
  Topology.stop net

let () =
  Alcotest.run "network"
    [
      ( "addr",
        [
          Alcotest.test_case "parse" `Quick test_addr_parse;
          Alcotest.test_case "prefix" `Quick test_addr_prefix;
          prop_addr_roundtrip;
        ] );
      ( "fib",
        [
          Alcotest.test_case "longest prefix match" `Quick test_fib_lpm;
          Alcotest.test_case "default route" `Quick test_fib_default_route;
          Alcotest.test_case "replace/remove" `Quick test_fib_replace_remove;
          Alcotest.test_case "host routes" `Quick test_fib_host_routes;
          prop_fib_lpm_reference;
        ] );
      ( "packet",
        [
          Alcotest.test_case "ttl" `Quick test_packet_ttl;
          Alcotest.test_case "nonce" `Quick test_packet_nonce;
          Alcotest.test_case "identical payloads, distinct transit spans"
            `Quick test_transit_spans_of_identical_payloads;
          prop_random_topology_connected;
        ] );
      ( "hello",
        [
          Alcotest.test_case "up/down lifecycle" `Quick test_hello_up_down;
          Alcotest.test_case "garbage ignored" `Quick test_hello_ignores_garbage;
        ] );
      ( "routing",
        [
          Alcotest.test_case "convergence (E2)" `Slow test_convergence_canonical_topologies;
          Alcotest.test_case "shortest paths" `Slow test_paths_are_shortest;
          Alcotest.test_case "forwarding delivers" `Quick test_forwarding_delivers;
          Alcotest.test_case "failure reconvergence" `Slow test_failure_reconvergence;
          Alcotest.test_case "partition detected" `Quick test_partition_detected;
          Alcotest.test_case "ttl bounds transients" `Quick test_ttl_prevents_loops;
          Alcotest.test_case "dv = ls = pv outcomes (E2)" `Slow test_dv_and_ls_agree;
          Alcotest.test_case "router stats" `Quick test_router_stats;
        ] );
    ]
