(* Chaos tests: scripted fault injection (Sim.Faultplan) driven through
   the soak harness (Sim.Soak) against all three stacks — the datalink
   ARQ trio, a routed network, and the sublayered TCPs. Safety means
   exact delivery (no loss, no duplication, no reordering of the stream);
   liveness means progress resumes after Heal and the engine quiesces
   (zero pending events) once the stacks are done. Every scenario is a
   pure function of its seed, so failures replay exactly. *)

open Transport

let check = Alcotest.check

let random_data seed n =
  let rng = Bitkit.Rng.create seed in
  String.init n (fun _ -> Char.chr (Bitkit.Rng.int rng 256))

(* A Gilbert–Elliott parameter set with the given stationary loss. *)
let ge ~loss ~burst_len =
  match (Sim.Channel.burst_lossy ~loss ~burst_len).Sim.Channel.burst with
  | Some g -> g
  | None -> assert false

(* --- Soak flight recorder --- *)

(* Each distinct violation must get its own flight dump, up to the cap —
   the recorder used to freeze only the first one, and the run used to
   stop there, hiding every later failure. *)
let test_soak_per_violation_flights () =
  let engine = Sim.Engine.create ~seed:1 () in
  let tracer = Sim.Tracer.create () in
  (* Distinctly-named tracked activity so each dump has spans to freeze. *)
  for i = 0 to 9 do
    ignore
      (Sim.Engine.at engine
         ~time:(float_of_int i +. 0.25)
         (fun () ->
           Sim.Tracer.instant tracer ~at:(Sim.Engine.now engine)
             ~track:(Printf.sprintf "conn%d" i) ~sublayer:"rd" "tick"))
  done;
  let violation_no = ref 0 in
  let invariant () =
    incr violation_no;
    if !violation_no <= 5 then
      Some (Printf.sprintf "conn%d misbehaved" (!violation_no - 1))
    else None
  in
  let r =
    Sim.Soak.run ~step:1.0 ~until:10. ~invariant ~tracer ~flight_cap:3
      ~name:"flights" ~engine
      ~finished:(fun () -> false)
      ()
  in
  check Alcotest.int "all distinct violations recorded" 5
    (List.length r.Sim.Soak.violations);
  check Alcotest.int "dumps capped" 3 (List.length r.Sim.Soak.flights);
  check Alcotest.int "cap surfaced in the report" 3 r.Sim.Soak.flight_cap;
  List.iteri
    (fun i (msg, spans) ->
      check Alcotest.string "dump keyed by its violation"
        (Printf.sprintf "conn%d misbehaved" i)
        msg;
      check Alcotest.bool "dump has spans" true (spans <> []))
    r.Sim.Soak.flights

(* --- Faultplan semantics --- *)

let test_faultplan_restores_baseline () =
  let engine = Sim.Engine.create ~seed:1 () in
  let ch =
    Sim.Channel.create engine (Sim.Channel.lossy 0.05) ~deliver:(fun () -> ()) ()
  in
  Sim.Faultplan.apply engine
    [ Sim.Faultplan.Flap { at = 1.0; duration = 1.0 };
      Sim.Faultplan.Brownout { at = 3.0; duration = 1.0; bandwidth = 500. } ]
    [ Sim.Faultplan.target ch ];
  Sim.Engine.run ~until:1.5 engine;
  check (Alcotest.float 1e-9) "flap is total loss" 1.0 (Sim.Channel.config ch).Sim.Channel.loss;
  Sim.Engine.run ~until:2.5 engine;
  check (Alcotest.float 1e-9) "baseline loss restored" 0.05
    (Sim.Channel.config ch).Sim.Channel.loss;
  Sim.Engine.run ~until:3.5 engine;
  check Alcotest.bool "brownout squeezes bandwidth" true
    ((Sim.Channel.config ch).Sim.Channel.bandwidth = Some 500.);
  Sim.Engine.run ~until:4.5 engine;
  check Alcotest.bool "bandwidth restored" true
    ((Sim.Channel.config ch).Sim.Channel.bandwidth = None)

let test_faultplan_random_shape () =
  let rng = Bitkit.Rng.create 3 in
  let horizon = 30. in
  let plan = Sim.Faultplan.random rng ~horizon () in
  check Alcotest.bool "events within horizon" true
    (List.for_all
       (fun e -> Sim.Faultplan.time_of e >= 0. && Sim.Faultplan.time_of e <= horizon)
       plan);
  (match List.rev plan with
  | Sim.Faultplan.Heal { at } :: _ ->
      check (Alcotest.float 1e-9) "final heal at horizon" horizon at
  | _ -> Alcotest.fail "plan must end with a heal");
  (* The plan is printable data (store it next to a failing seed). *)
  check Alcotest.bool "printable" true
    (String.length (Format.asprintf "%a" Sim.Faultplan.pp plan) > 0)

(* --- Datalink: the ARQ trio under link faults --- *)

let arqs : (string * (module Datalink.Arq.S)) list =
  [ ("stop-and-wait", (module Datalink.Arq_stop_and_wait));
    ("go-back-n", (module Datalink.Arq_go_back_n));
    ("selective-repeat", (module Datalink.Arq_selective_repeat)) ]

let datalink_soak arq seed =
  let engine = Sim.Engine.create ~seed () in
  let spec =
    { Datalink.Stack.default_spec with
      arq;
      arq_config = { Datalink.Arq.window = 8; rto = 0.15; max_retries = 60 } }
  in
  let monitors = Monitor.Runtime.create ~label:"datalink" () in
  let link = Datalink.Stack.link engine ~monitors (Sim.Channel.lossy 0.02) spec in
  let payloads = List.init 120 (Printf.sprintf "payload-%03d") in
  List.iter (Datalink.Stack.send link.Datalink.Stack.a) payloads;
  Sim.Faultplan.apply engine
    [ Sim.Faultplan.Flap { at = 0.4; duration = 0.8 };
      Sim.Faultplan.Burst_loss
        { at = 2.0; duration = 1.5; params = ge ~loss:0.15 ~burst_len:4. };
      Sim.Faultplan.Flap { at = 4.5; duration = 0.6 };
      Sim.Faultplan.Heal { at = 6.0 } ]
    [ Sim.Faultplan.target ~name:"a->b" link.Datalink.Stack.a_to_b;
      Sim.Faultplan.target ~name:"b->a" link.Datalink.Stack.b_to_a ];
  let received () = List.of_seq (Queue.to_seq link.Datalink.Stack.received_at_b) in
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' when x = y -> is_prefix xs' ys'
    | _ -> false
  in
  let invariant () =
    match Monitor.Runtime.next_violation monitors with
    | Some _ as v -> v
    | None ->
        if is_prefix (received ()) payloads then None
        else Some "delivery is not an exact in-order prefix of the sent payloads"
  in
  let finished () =
    Datalink.Stack.is_idle link.Datalink.Stack.a
    && Queue.length link.Datalink.Stack.received_at_b = List.length payloads
  in
  let report =
    Sim.Soak.run ~name:"datalink" ~engine ~until:60. ~invariant ~finished
      ~verdicts:(fun () -> Monitor.Runtime.verdicts monitors)
      ()
  in
  (report, received (), payloads)

let test_datalink_trio_under_faults () =
  List.iter
    (fun (aname, arq) ->
      let report, got, sent = datalink_soak arq 41 in
      if not (Sim.Soak.ok report) then
        Alcotest.failf "%s: %s" aname (Format.asprintf "%a" Sim.Soak.pp_report report);
      check Alcotest.bool (aname ^ ": monitors checked traffic") true
        (List.exists (fun (_, c, _) -> c > 0) report.Sim.Soak.verdicts);
      check Alcotest.bool (aname ^ ": exact delivery") true (got = sent))
    arqs

let test_datalink_give_up_on_dead_link () =
  List.iter
    (fun (aname, arq) ->
      let engine = Sim.Engine.create ~seed:7 () in
      let spec =
        { Datalink.Stack.default_spec with
          arq;
          arq_config = { Datalink.Arq.window = 4; rto = 0.1; max_retries = 5 } }
      in
      let link = Datalink.Stack.link engine Sim.Channel.ideal spec in
      Sim.Faultplan.apply engine
        [ Sim.Faultplan.Partition { at = 0.005 } ]
        [ Sim.Faultplan.target link.Datalink.Stack.a_to_b;
          Sim.Faultplan.target link.Datalink.Stack.b_to_a ];
      List.iter (Datalink.Stack.send link.Datalink.Stack.a)
        (List.init 20 (Printf.sprintf "p%02d"));
      Sim.Engine.run ~until:20. engine;
      check Alcotest.bool (aname ^ ": gave up") true
        (Datalink.Stack.gave_up link.Datalink.Stack.a);
      check Alcotest.bool (aname ^ ": backlog dropped") true
        (Datalink.Stack.is_idle link.Datalink.Stack.a);
      check Alcotest.int (aname ^ ": engine quiesced") 0 (Sim.Engine.pending engine))
    arqs

let test_datalink_soak_reproducible () =
  let gbn = List.assoc "go-back-n" arqs in
  check Alcotest.bool "same seed, same report" true
    (Sim.Soak.reproducible (fun seed -> let r, _, _ = datalink_soak gbn seed in r) ~seed:99)

(* --- Network: routing reconverges around a flapping link --- *)

let test_network_reconverges_across_flap () =
  List.iter
    (fun (pname, routing) ->
      let engine = Sim.Engine.create ~seed:11 () in
      let monitors = Monitor.Runtime.create ~label:pname () in
      let net =
        Network.Topology.build engine ~ins:(Sublayer.Instrument.v ~monitors ()) ~routing ~n:8
          (Network.Topology.ring 8)
      in
      (match Network.Topology.converge net with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: initial convergence failed" pname);
      let t0 = Sim.Engine.now engine in
      Network.Topology.flap_link net 0 1 ~at:(t0 +. 0.5) ~duration:30.;
      Sim.Engine.run ~until:(t0 +. 1.0) engine;
      check Alcotest.bool (pname ^ ": link down") false
        (List.mem (0, 1) (Network.Topology.alive_edges net));
      (match Network.Topology.converge net with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: no reconvergence around the dead link" pname);
      (* The ring is cut: traffic must route the long way round. *)
      (match Network.Topology.fib_path net ~src:0 ~dst:1 with
      | Some path -> check Alcotest.int (pname ^ ": detour length") 8 (List.length path)
      | None -> Alcotest.failf "%s: 0->1 unreachable during flap" pname);
      (* After the scheduled heal the direct route comes back. *)
      Sim.Engine.run ~until:(t0 +. 31.) engine;
      (match Network.Topology.converge net with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: no reconvergence after heal" pname);
      (match Network.Topology.fib_path net ~src:0 ~dst:1 with
      | Some path -> check Alcotest.int (pname ^ ": direct route back") 2 (List.length path)
      | None -> Alcotest.failf "%s: 0->1 unreachable after heal" pname);
      (* Route traffic so the forwarding side of the router<->FIB
         monitor sees lookups, then require a clean verdict. *)
      Network.Topology.send net ~src:0 ~dst:4 "conformance probe";
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 2.) engine;
      check Alcotest.bool (pname ^ ": fib monitors checked writes") true
        (Monitor.Runtime.checked monitors > 0);
      check Alcotest.int (pname ^ ": no fib violations") 0
        (Monitor.Runtime.violation_count monitors);
      Network.Topology.stop net)
    [ ("dv", Network.Distance_vector.factory ());
      ("ls", Network.Link_state.factory ()) ]

(* --- Transport: blackhole abort (E18's ETIMEDOUT criterion) --- *)

let blackhole_scenario ~heal seed =
  let engine = Sim.Engine.create ~seed () in
  let config = { Config.default with give_up_after = 5.0; max_retries = 8 } in
  let monitors = Monitor.Runtime.create ~label:"blackhole" () in
  let a, b, ab, ba =
    Host.pair_channels engine ~config ~monitors Sim.Channel.ideal
  in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c -> server := Some c);
  let c = Host.connect a ~remote_port:80 () in
  let first = random_data seed 5_000 and second = random_data (seed + 1) 5_000 in
  Host.write c first;
  let plan =
    Sim.Faultplan.Partition { at = 0.3 }
    :: (if heal then [ Sim.Faultplan.Heal { at = 2.0 } ] else [])
  in
  Sim.Faultplan.apply engine plan
    [ Sim.Faultplan.target ~name:"a->b" ab; Sim.Faultplan.target ~name:"b->a" ba ];
  (* The second write lands in the blackhole at t=0.5: the give-up clock
     starts there, so the abort must come by 0.5 + give_up_after. *)
  ignore
    (Sim.Engine.at engine ~time:0.5 (fun () ->
         Host.write c second;
         if heal then Host.close c));
  let abort_time = ref infinity in
  Host.on_event c (function
    | `Aborted -> abort_time := Sim.Engine.now engine
    | _ -> ());
  let finished () = if heal then Host.finished c else Host.aborted c in
  let report =
    Sim.Soak.run ~name:"blackhole" ~engine ~until:60.
      ~invariant:(Monitor.Runtime.invariant monitors)
      ~verdicts:(fun () -> Monitor.Runtime.verdicts monitors)
      ~finished ()
  in
  let got = match !server with Some s -> Host.received s | None -> "" in
  (report, !abort_time, got, Host.aborted c, first ^ second)

let test_blackhole_aborts_within_deadline () =
  let report, abort_time, got, aborted, data = blackhole_scenario ~heal:false 21 in
  check Alcotest.bool "aborted" true aborted;
  if abort_time > 0.5 +. 5.0 +. 1e-6 then
    Alcotest.failf "abort at t=%.2f, deadline was t=5.50" abort_time;
  check Alcotest.bool "pre-partition bytes arrived intact" true
    (got = String.sub data 0 (String.length got) && String.length got >= 5_000);
  check Alcotest.int "engine quiesced after abort" 0 report.Sim.Soak.pending

let test_blackhole_heal_delivers_exactly () =
  let report, _, got, aborted, data = blackhole_scenario ~heal:true 22 in
  check Alcotest.bool "no abort when the link heals in time" false aborted;
  check Alcotest.bool "exact delivery after heal" true (got = data);
  if not (Sim.Soak.ok report) then
    Alcotest.failf "%s" (Format.asprintf "%a" Sim.Soak.pp_report report)

let test_blackhole_reproducible () =
  check Alcotest.bool "same seed, same report" true
    (Sim.Soak.reproducible
       (fun seed -> let r, _, _, _, _ = blackhole_scenario ~heal:true seed in r)
       ~seed:5)

(* --- Transport: full-stack soaks under random fault schedules --- *)

let stack_soak ~fname ~factory seed =
  let engine = Sim.Engine.create ~seed () in
  let monitors = Monitor.Runtime.create ~label:fname () in
  let a, b, ab, ba =
    Host.pair_channels engine ~factory_a:factory ~factory_b:factory ~guard:true
      ~monitors (Sim.Channel.lossy 0.01)
  in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c ->
      server := Some c;
      (* Close back when the peer finishes, so both sides tear down. *)
      Host.on_event c (function `Peer_closed -> Host.close c | _ -> ()));
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data seed 30_000 in
  Host.write c data;
  Host.close c;
  let rng = Bitkit.Rng.create ((seed * 7) + 1) in
  let plan = Sim.Faultplan.random rng ~horizon:25. ~events:5 () in
  Sim.Faultplan.apply engine plan
    [ Sim.Faultplan.target ~name:"a->b" ab; Sim.Faultplan.target ~name:"b->a" ba ];
  let invariant () =
    match Monitor.Runtime.next_violation monitors with
    | Some _ as v -> v
    | None -> (
        match !server with
        | None -> None
        | Some s ->
            let got = Host.received s in
            if String.length got <= String.length data
               && got = String.sub data 0 (String.length got)
            then None
            else Some (fname ^ ": delivered bytes diverge from the sent stream"))
  in
  let finished () =
    match !server with
    | Some s -> Host.received_length s = String.length data && Host.finished c
    | None -> false
  in
  let report =
    Sim.Soak.run ~name:fname ~engine ~until:120. ~invariant ~finished
      ~verdicts:(fun () -> Monitor.Runtime.verdicts monitors)
      ()
  in
  (report, (match !server with Some s -> Host.received s | None -> ""), data)

let stacks () =
  [ ("sublayered", Host.sublayered);
    ("watson", Tcp_watson.factory ());
    ("secure", Tcp_secure.factory ~key:Tcp_secure.demo_key) ]

let test_stack_soaks () =
  List.iter
    (fun (fname, factory) ->
      let report, got, data = stack_soak ~fname ~factory 61 in
      if not (Sim.Soak.ok report) then
        Alcotest.failf "%s: %s" fname (Format.asprintf "%a" Sim.Soak.pp_report report);
      check Alcotest.bool (fname ^ ": monitors checked traffic") true
        (List.exists (fun (_, c, _) -> c > 0) report.Sim.Soak.verdicts);
      check Alcotest.bool (fname ^ ": exact delivery under chaos") true (got = data))
    (stacks ())

let test_stack_soak_reproducible () =
  check Alcotest.bool "same seed, same report" true
    (Sim.Soak.reproducible
       (fun seed -> let r, _, _ = stack_soak ~fname:"sublayered" ~factory:Host.sublayered seed in r)
       ~seed:1234)

(* --- Cm_timer under partition: evaporate, reconnect, reject stale --- *)

let test_cm_timer_partition () =
  let engine = Sim.Engine.create ~seed:77 () in
  let w = Tcp_watson.factory ~idle_timeout:1.5 () in
  let a, b, ab, ba =
    Host.pair_channels engine ~factory_a:w ~factory_b:w Sim.Channel.ideal
  in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c -> server := Some c);
  let c1 = Host.connect a ~local_port:5000 ~remote_port:80 () in
  Host.write c1 "before the storm";
  (* Partition at 0.5; heal only at 4.0 — both idle timers (1.5 s) fire
     during the outage, so the connection state evaporates on both ends
     (Watson's delta-t design: silence is closure). *)
  Sim.Faultplan.apply engine
    [ Sim.Faultplan.Partition { at = 0.5 }; Sim.Faultplan.Heal { at = 4.0 } ]
    [ Sim.Faultplan.target ~name:"a->b" ab; Sim.Faultplan.target ~name:"b->a" ba ];
  Sim.Engine.run ~until:4.0 engine;
  let srv1 = match !server with Some s -> s | None -> Alcotest.fail "no accept" in
  check Alcotest.string "delivered before the partition" "before the storm"
    (Host.received srv1);
  check Alcotest.bool "server state evaporated" true (Host.closed srv1);
  check Alcotest.bool "client state evaporated" true (Host.closed c1);
  (* Post-heal: a fresh incarnation (new port, fresh ISN) is accepted. *)
  server := None;
  let c2 = Host.connect a ~remote_port:80 () in
  Host.write c2 "fresh incarnation";
  Sim.Engine.run ~until:5.0 engine;
  (match !server with
  | Some srv2 ->
      check Alcotest.string "fresh incarnation accepted" "fresh incarnation"
        (Host.received srv2)
  | None -> Alcotest.fail "no accept after heal");
  (* A delayed duplicate from the dead incarnation, with ISNs the server
     no longer recognises, must be dropped (delta-t trust). *)
  let stale =
    Segment.encode_dm { Segment.src_port = 5000; dst_port = 80 }
      ~payload:
        (Segment.encode_cm
           { Segment.flags = Segment.no_cm_flags; isn_local = 999; isn_remote = 111 }
           ~payload:
             (Segment.encode_rd
                { Segment.seq = 1000; ack = 0; len = 5; has_data = true;
                  has_ack = false; sacks = [] }
                ~payload:(Segment.encode_osr Segment.default_osr ~payload:"ghost")))
  in
  let before = Host.received_length srv1 in
  Host.from_wire b (Bitkit.Slice.of_string stale);
  check Alcotest.int "stale incarnation rejected" before (Host.received_length srv1)

let () =
  Alcotest.run "chaos"
    [
      ( "soak",
        [
          Alcotest.test_case "per-violation flight dumps" `Quick
            test_soak_per_violation_flights;
        ] );
      ( "faultplan",
        [
          Alcotest.test_case "apply restores baseline" `Quick
            test_faultplan_restores_baseline;
          Alcotest.test_case "random plan shape" `Quick test_faultplan_random_shape;
        ] );
      ( "datalink",
        [
          Alcotest.test_case "ARQ trio exact under faults" `Slow
            test_datalink_trio_under_faults;
          Alcotest.test_case "give up on a dead link" `Quick
            test_datalink_give_up_on_dead_link;
          Alcotest.test_case "soak reproducible" `Slow test_datalink_soak_reproducible;
        ] );
      ( "network",
        [
          Alcotest.test_case "reconverge across a flap" `Slow
            test_network_reconverges_across_flap;
        ] );
      ( "transport",
        [
          Alcotest.test_case "blackhole aborts within deadline" `Quick
            test_blackhole_aborts_within_deadline;
          Alcotest.test_case "heal before deadline delivers" `Quick
            test_blackhole_heal_delivers_exactly;
          Alcotest.test_case "blackhole reproducible" `Quick test_blackhole_reproducible;
          Alcotest.test_case "stack soaks under random schedules" `Slow test_stack_soaks;
          Alcotest.test_case "soak reproducible" `Slow test_stack_soak_reproducible;
          Alcotest.test_case "cm-timer partition lifecycle" `Quick
            test_cm_timer_partition;
        ] );
    ]
