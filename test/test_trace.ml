(* Tests for the span-tracing subsystem: retransmission lineage (a
   re-sent segment is a child of the original send, in the same trace),
   the Chrome trace_event exporter, the sum-of-sojourns identity, and
   the zero-cost disabled path. *)

let check = Alcotest.check
module Tracer = Sim.Tracer

let all_spans tracer = Tracer.spans tracer @ Tracer.live_spans tracer

(* --- shared harnesses --- *)

let transport_run ?(loss = 0.0) ?(delay = 0.02) ?(bytes = 30_000) ~seed tracer =
  let open Transport in
  let engine = Sim.Engine.create ~seed () in
  let a, b = Host.pair engine ~tracer { (Sim.Channel.lossy loss) with delay } in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c -> server := Some c);
  let c = Host.connect a ~remote_port:80 () in
  let data = String.init bytes (fun i -> Char.chr (i land 0xFF)) in
  Host.write c data;
  Host.close c;
  let rec drive () =
    if Sim.Engine.now engine < 600. && not (Host.finished c) then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
      drive ()
    end
  in
  drive ();
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
  match !server with Some srv -> Host.received srv = data | None -> false

(* Every "retx" marker must be the child of a "flight" span in that same
   trace — the causal lineage the tracer promises. This includes a
   retransmission of a segment whose first copy was already delivered
   (ack lost): its original flight span has finished, and [trace_of]'s
   ring fallback is what keeps the lineage intact. *)
let assert_retx_lineage ~sublayer tracer =
  let all = all_spans tracer in
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace by_id s.Tracer.sp_id s) all;
  let retx =
    List.filter
      (fun s -> s.Tracer.sp_sublayer = sublayer && s.Tracer.sp_name = "retx")
      all
  in
  check Alcotest.bool "lossy run retransmitted" true (retx <> []);
  List.iter
    (fun r ->
      check Alcotest.bool "every retx carries its original trace" true
        (r.Tracer.sp_trace <> 0);
      check Alcotest.bool "every retx has a parent span" true
        (r.Tracer.sp_parent <> 0);
      match Hashtbl.find_opt by_id r.Tracer.sp_parent with
      | None -> Alcotest.fail "retx parent evicted from the ring"
      | Some p ->
          check Alcotest.string "parent is the original flight span" "flight"
            p.Tracer.sp_name;
          check Alcotest.int "retx shares the original's trace id"
            p.Tracer.sp_trace r.Tracer.sp_trace)
    retx

let test_rd_retx_lineage () =
  let tracer = Tracer.create ~capacity:65536 () in
  let ok = transport_run ~loss:0.2 ~seed:7 ~bytes:30_000 tracer in
  check Alcotest.bool "transfer exact" true ok;
  assert_retx_lineage ~sublayer:"rd" tracer

let test_gbn_retx_lineage () =
  let engine = Sim.Engine.create ~seed:7 () in
  let tracer = Tracer.create ~capacity:65536 () in
  let link =
    Datalink.Stack.link engine ~tracer (Sim.Channel.lossy 0.2)
      Datalink.Stack.default_spec
  in
  let payloads = List.init 40 (Printf.sprintf "payload %d") in
  let received = Datalink.Stack.transfer engine link payloads in
  check Alcotest.int "transfer completed" 40 (List.length received);
  assert_retx_lineage ~sublayer:"arq" tracer

(* Receiver-side correlation: a payload delivered at B carries the trace
   of the flight span opened at A — the deliver instant is a child of the
   sending flight, not an orphan. *)
let test_arq_deliver_correlation () =
  List.iter
    (fun arq ->
      let module A = (val arq : Datalink.Arq.S) in
      let engine = Sim.Engine.create ~seed:11 () in
      let tracer = Tracer.create ~capacity:65536 () in
      let link =
        Datalink.Stack.link engine ~tracer (Sim.Channel.lossy 0.15)
          { Datalink.Stack.default_spec with arq }
      in
      let payloads = List.init 25 (Printf.sprintf "payload %d") in
      let received = Datalink.Stack.transfer engine link payloads in
      check Alcotest.int (A.name ^ " completed") 25 (List.length received);
      let spans = Tracer.spans tracer in
      let flights_at_a =
        List.filter_map
          (fun s ->
            if s.Tracer.sp_track = "A" && s.Tracer.sp_name = "flight" then
              Some s.Tracer.sp_trace
            else None)
          spans
      in
      let delivers_at_b =
        List.filter
          (fun s -> s.Tracer.sp_track = "B" && s.Tracer.sp_name = "deliver")
          spans
      in
      check Alcotest.int (A.name ^ " all deliveries traced") 25
        (List.length delivers_at_b);
      List.iter
        (fun s ->
          if s.Tracer.sp_trace = 0 || s.Tracer.sp_parent = 0 then
            Alcotest.failf "%s: orphan deliver span %d" A.name s.Tracer.sp_id;
          if not (List.mem s.Tracer.sp_trace flights_at_a) then
            Alcotest.failf "%s: deliver trace %d matches no sending flight"
              A.name s.Tracer.sp_trace)
        delivers_at_b)
    [ (module Datalink.Arq_stop_and_wait : Datalink.Arq.S);
      (module Datalink.Arq_go_back_n);
      (module Datalink.Arq_selective_repeat) ]

(* --- Chrome exporter --- *)

(* A deliberately tiny JSON reader — just enough to round-trip the
   exporter's output and fail loudly on malformed text. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad_json "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    skip_ws ();
    if peek () <> c then
      raise (Bad_json (Printf.sprintf "expected '%c' at %d" c !pos));
    advance ()
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else raise (Bad_json "bad literal")
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          let e = peek () in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then raise (Bad_json "truncated \\u escape");
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* the exporter only escapes single bytes *)
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else raise (Bad_json "unexpected wide \\u escape")
          | _ -> raise (Bad_json "bad escape"));
          go ()
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    if !pos = start then raise (Bad_json "expected a value");
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad_json "bad object")
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> raise (Bad_json "bad array")
          in
          elems []
    | '"' -> Str (string_lit ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let test_chrome_export () =
  let tracer = Tracer.create ~capacity:65536 () in
  let ok = transport_run ~loss:0.1 ~seed:11 ~bytes:20_000 tracer in
  check Alcotest.bool "transfer exact" true ok;
  let events =
    match parse_json (Tracer.to_chrome_json tracer) with
    | Obj [ ("traceEvents", Arr evs) ] -> evs
    | _ -> Alcotest.fail "top level is not {\"traceEvents\": [...]}"
    | exception Bad_json msg -> Alcotest.failf "exporter JSON invalid: %s" msg
  in
  check Alcotest.bool "exporter emitted events" true (events <> []);
  let field name = function Obj kvs -> List.assoc_opt name kvs | _ -> None in
  let last_ts = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match field "ph" ev with
      | Some (Str "M") -> ()
      | Some (Str "X") ->
          let num k =
            match field k ev with
            | Some (Num f) -> f
            | _ -> Alcotest.failf "X event missing numeric %S" k
          in
          let pid = num "pid" and tid = num "tid" and ts = num "ts" in
          check Alcotest.bool "ts is an integer microsecond count" true
            (Float.is_integer ts && Float.is_integer (num "dur"));
          let prev =
            Option.value ~default:neg_infinity
              (Hashtbl.find_opt last_ts (pid, tid))
          in
          if ts < prev then
            Alcotest.failf "ts went backwards on track (%.0f,%.0f): %.0f < %.0f"
              pid tid ts prev;
          Hashtbl.replace last_ts (pid, tid) ts
      | _ -> Alcotest.fail "event with unexpected phase")
    events

(* Clock-alignment markers: with [?clock_sync] every track (process)
   carries a ["clock_sync"] metadata record naming one shared sync
   domain, and the merged multi-tracer export namespaces each shard's
   tracks while putting all of them in that domain — so Perfetto aligns
   shard timelines instead of treating them as independent clocks. *)
let test_clock_sync_markers () =
  let mk label =
    let tr = Tracer.create () in
    Tracer.instant tr ~at:0.5 ~track:(label ^ "-host") ~sublayer:"s" "ev";
    tr
  in
  let t0 = mk "a" and t1 = mk "b" in
  let parse js =
    match parse_json js with
    | Obj [ ("traceEvents", Arr evs) ] -> evs
    | _ -> Alcotest.fail "top level is not {\"traceEvents\": [...]}"
    | exception Bad_json msg -> Alcotest.failf "exporter JSON invalid: %s" msg
  in
  let field name = function Obj kvs -> List.assoc_opt name kvs | _ -> None in
  let sync_records evs =
    List.filter_map
      (fun ev ->
        match (field "name" ev, field "ph" ev, field "args" ev) with
        | Some (Str "clock_sync"), Some (Str "c"), Some (Obj args) -> (
            match List.assoc_opt "sync_id" args with
            | Some (Str id) -> Some (field "pid" ev, id)
            | _ -> None)
        | _ -> None)
      evs
  in
  (* Unmerged export never emits markers... *)
  check Alcotest.int "no marker without clock_sync" 0
    (List.length (sync_records (parse (Tracer.to_chrome_json t0))));
  (* ...opting in emits one per track, in the named domain. *)
  (match sync_records (parse (Tracer.to_chrome_json ~clock_sync:"vclock" t0)) with
  | [ (_, id) ] -> check Alcotest.string "sync domain" "vclock" id
  | l -> Alcotest.failf "expected 1 clock_sync record, got %d" (List.length l));
  let evs = parse (Tracer.merged_chrome_json [ ("shard0", t0); ("shard1", t1) ]) in
  let syncs = sync_records evs in
  check Alcotest.int "one marker per merged track" 2 (List.length syncs);
  List.iter
    (fun (_, id) -> check Alcotest.string "shared sync domain" "sim-vclock" id)
    syncs;
  let tracks =
    List.filter_map
      (fun ev ->
        match (field "ph" ev, field "name" ev, field "args" ev) with
        | Some (Str "M"), Some (Str "process_name"), Some (Obj [ ("name", Str n) ])
          ->
            Some n
        | _ -> None)
      evs
  in
  check
    Alcotest.(slist string compare)
    "tracks namespaced by shard"
    [ "shard0/a-host"; "shard1/b-host" ]
    tracks

(* --- the sum-of-sojourns identity --- *)

let test_sojourn_identity () =
  let open Transport in
  let tracer = Tracer.create ~capacity:65536 () in
  let engine = Sim.Engine.create ~seed:3 () in
  let a, b = Host.pair engine ~tracer { Sim.Channel.ideal with delay = 0.03 } in
  Host.listen b ~port:80;
  let c = Host.connect a ~remote_port:80 () in
  (* One sub-MSS write per 100 ms: each write becomes exactly one
     segment, so its trace consists of one buffer, one flight and one
     reasm span that abut in virtual time. *)
  for i = 0 to 9 do
    ignore
      (Sim.Engine.at engine
         ~time:(1.0 +. (0.1 *. Float.of_int i))
         (fun () -> Host.write c (String.make 500 (Char.chr (Char.code 'a' + i)))))
  done;
  ignore (Sim.Engine.at engine ~time:2.5 (fun () -> Host.close c));
  Sim.Engine.run ~until:30. engine;
  let interesting s =
    match (s.Tracer.sp_sublayer, s.Tracer.sp_name) with
    | "osr", "buffer" | "rd", "flight" | "osr", "reasm" -> true
    | _ -> false
  in
  let by_trace = Hashtbl.create 32 in
  List.iter
    (fun s ->
      if interesting s && s.Tracer.sp_trace <> 0 then
        Hashtbl.replace by_trace s.Tracer.sp_trace
          (s :: Option.value ~default:[] (Hashtbl.find_opt by_trace s.Tracer.sp_trace)))
    (Tracer.spans tracer);
  let checked = ref 0 in
  Hashtbl.iter
    (fun trace ss ->
      let has name = List.exists (fun s -> s.Tracer.sp_name = name) ss in
      if List.length ss = 3 && has "buffer" && has "flight" && has "reasm" then begin
        incr checked;
        let sum = List.fold_left (fun acc s -> acc +. Tracer.duration s) 0. ss in
        let t0 =
          List.fold_left (fun acc s -> Float.min acc s.Tracer.sp_start) infinity ss
        in
        let t1 =
          List.fold_left (fun acc s -> Float.max acc s.Tracer.sp_end) neg_infinity
            ss
        in
        (* Intra-event processing is zero virtual time, so the sublayer
           sojourns tile the end-to-end interval exactly; the slack only
           absorbs float noise. *)
        if Float.abs (sum -. (t1 -. t0)) > 1e-6 then
          Alcotest.failf
            "trace %d: sojourns sum to %.9f but end-to-end latency is %.9f"
            trace sum (t1 -. t0);
        (* The text biography of the same trace names every sojourn. *)
        let bio = Tracer.biography tracer ~trace in
        let contains needle =
          let nl = String.length needle and hl = String.length bio in
          let rec at i =
            i + nl <= hl && (String.sub bio i nl = needle || at (i + 1))
          in
          at 0
        in
        List.iter
          (fun name ->
            check Alcotest.bool (name ^ " appears in the biography") true
              (contains name))
          [ "buffer"; "flight"; "reasm" ]
      end)
    by_trace;
  check Alcotest.bool "at least 8 traced messages checked" true (!checked >= 8)

(* --- trace_of ring fallback --- *)

(* [trace_of] must answer for finished spans too (newest-first ring
   scan): the trace of a span that closed is recoverable until the ring
   evicts it, and only then does the lookup give up. *)
let test_trace_of_finished_span () =
  let tracer = Tracer.create ~capacity:4 () in
  let tr = Tracer.fresh_trace tracer in
  let id = Tracer.start tracer ~at:0. ~track:"A" ~sublayer:"rd" ~trace:tr "flight" in
  check Alcotest.(option int) "live span found" (Some tr)
    (Tracer.trace_of tracer id);
  ignore (Tracer.finish tracer ~at:1. id);
  check Alcotest.(option int) "finished span still found" (Some tr)
    (Tracer.trace_of tracer id);
  (* Fill the ring until the span is evicted; then — and only then — the
     lineage is genuinely gone. *)
  for i = 0 to 3 do
    Tracer.instant tracer ~at:(2. +. float_of_int i) ~track:"A" ~sublayer:"x"
      "filler"
  done;
  check Alcotest.(option int) "evicted span unknown" None
    (Tracer.trace_of tracer id)

(* --- disabled path --- *)

let test_disabled_records_nothing () =
  let tracer = Tracer.create () in
  Tracer.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Tracer.set_enabled true)
    (fun () ->
      let ok = transport_run ~loss:0.05 ~seed:5 ~bytes:10_000 tracer in
      check Alcotest.bool "transfer exact" true ok;
      check Alcotest.int "nothing recorded" 0 (Tracer.recorded tracer);
      check Alcotest.int "nothing live" 0 (List.length (Tracer.live_spans tracer)))

let () =
  Alcotest.run "trace"
    [
      ( "lineage",
        [
          Alcotest.test_case "rd retransmit links to original" `Quick
            test_rd_retx_lineage;
          Alcotest.test_case "arq deliveries correlate to sending flight"
            `Quick test_arq_deliver_correlation;
          Alcotest.test_case "gbn re-send links to original" `Quick
            test_gbn_retx_lineage;
          Alcotest.test_case "trace_of survives span finish" `Quick
            test_trace_of_finished_span;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome json round-trips" `Quick
            test_chrome_export;
          Alcotest.test_case "clock_sync markers align merged tracks" `Quick
            test_clock_sync_markers;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "sojourns sum to end-to-end latency" `Quick
            test_sojourn_identity;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "disabled tracer records nothing" `Quick
            test_disabled_records_nothing;
        ] );
    ]
