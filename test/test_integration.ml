(* Cross-library integration: the sublayered TCP over the routed network
   (with mid-transfer failures), and the full three-layer composition —
   transport over the reliable data-link stack over a corrupting bit
   channel. *)

let check = Alcotest.check

let random_data seed n =
  let rng = Bitkit.Rng.create seed in
  String.init n (fun _ -> Char.chr (Bitkit.Rng.int rng 256))

(* --- TCP over the routed network --- *)

let tcp_over_network ~routing ~fail_mid_transfer ~seed =
  let engine = Sim.Engine.create ~seed () in
  let n = 8 in
  let net = Network.Topology.build engine ~routing ~n (Network.Topology.ring 8) in
  (match Network.Topology.converge net with
  | Some _ -> ()
  | None -> Alcotest.fail "network did not converge");
  let client_node = 0 and server_node = 4 in
  let transmit_from node dst wire =
    Network.Router.originate (Network.Topology.router net node)
      ~dst:(Network.Addr.node dst) wire
  in
  let ch =
    Transport.Host.create engine ~name:"client"
      ~link:(Sublayer.Link.make
               ~transmit:(fun w -> transmit_from client_node server_node w) ())
      ()
  in
  let sh =
    Transport.Host.create engine ~name:"server"
      ~link:(Sublayer.Link.make
               ~transmit:(fun w -> transmit_from server_node client_node w) ())
      ()
  in
  let pump () =
    List.iter
      (fun p -> Transport.Host.from_wire ch p.Network.Packet.payload)
      (Network.Topology.received net client_node);
    List.iter
      (fun p -> Transport.Host.from_wire sh p.Network.Packet.payload)
      (Network.Topology.received net server_node);
    Network.Topology.clear_received net
  in
  let rec pump_loop () =
    pump ();
    ignore (Sim.Engine.schedule engine ~after:0.001 pump_loop)
  in
  pump_loop ();
  Transport.Host.listen sh ~port:80;
  let server_conn = ref None in
  Transport.Host.on_accept sh (fun c -> server_conn := Some c);
  let conn = Transport.Host.connect ch ~remote_port:80 () in
  let data = random_data seed 100_000 in
  Transport.Host.write conn data;
  Transport.Host.close conn;
  if fail_mid_transfer then begin
    Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.05) engine;
    match Network.Topology.fib_path net ~src:client_node ~dst:server_node with
    | Some (a :: b :: _) -> Network.Topology.fail_link net a b
    | _ -> Alcotest.fail "no initial path"
  end;
  let rec drive () =
    if Sim.Engine.now engine < 120. && not (Transport.Host.finished conn) then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.5) engine;
      drive ()
    end
  in
  drive ();
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 5.) engine;
  Network.Topology.stop net;
  match !server_conn with
  | Some srv -> Transport.Host.received srv = data
  | None -> false

let test_tcp_over_network_dv () =
  check Alcotest.bool "delivered" true
    (tcp_over_network ~routing:(Network.Distance_vector.factory ())
       ~fail_mid_transfer:false ~seed:41)

let test_tcp_over_network_ls () =
  check Alcotest.bool "delivered" true
    (tcp_over_network ~routing:(Network.Link_state.factory ()) ~fail_mid_transfer:false
       ~seed:42)

let test_tcp_survives_rerouting_dv () =
  check Alcotest.bool "delivered across failure" true
    (tcp_over_network ~routing:(Network.Distance_vector.factory ())
       ~fail_mid_transfer:true ~seed:43)

let test_tcp_survives_rerouting_ls () =
  check Alcotest.bool "delivered across failure" true
    (tcp_over_network ~routing:(Network.Link_state.factory ()) ~fail_mid_transfer:true
       ~seed:44)

(* --- Transport over the data-link stack over a corrupting bit channel --- *)

let test_transport_over_datalink () =
  (* Corruption is repaired below the transport: the data-link CRC drops
     damaged frames, its ARQ retransmits them, and TCP above never sees a
     bad byte — strict layering end to end. *)
  let engine = Sim.Engine.create ~seed:45 () in
  let channel = { Sim.Channel.ideal with corruption = 0.08 } in
  let link = Datalink.Stack.link engine channel Datalink.Stack.default_spec in
  let client = ref None and server = ref None in
  let ch =
    Transport.Host.create engine ~name:"client"
      ~link:(Sublayer.Link.make
               ~transmit:(fun w ->
                 Datalink.Stack.send link.Datalink.Stack.a (Bitkit.Slice.to_string w))
               ())
      ()
  in
  let sh =
    Transport.Host.create engine ~name:"server"
      ~link:(Sublayer.Link.make
               ~transmit:(fun w ->
                 Datalink.Stack.send link.Datalink.Stack.b (Bitkit.Slice.to_string w))
               ())
      ()
  in
  client := Some ch;
  server := Some sh;
  (* The data-link queues deliver transport segments in order. *)
  let rec pump_loop () =
    Queue.iter
      (fun w -> Transport.Host.from_wire ch (Bitkit.Slice.of_string w))
      link.Datalink.Stack.received_at_a;
    Queue.clear link.Datalink.Stack.received_at_a;
    Queue.iter
      (fun w -> Transport.Host.from_wire sh (Bitkit.Slice.of_string w))
      link.Datalink.Stack.received_at_b;
    Queue.clear link.Datalink.Stack.received_at_b;
    ignore (Sim.Engine.schedule engine ~after:0.001 pump_loop)
  in
  pump_loop ();
  Transport.Host.listen sh ~port:80;
  let server_conn = ref None in
  Transport.Host.on_accept sh (fun c -> server_conn := Some c);
  let conn = Transport.Host.connect ch ~remote_port:80 () in
  let data = random_data 46 60_000 in
  Transport.Host.write conn data;
  Transport.Host.close conn;
  let rec drive () =
    if Sim.Engine.now engine < 120. && not (Transport.Host.finished conn) then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.5) engine;
      drive ()
    end
  in
  drive ();
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 5.) engine;
  (match server_conn.contents with
  | Some srv ->
      check Alcotest.bool "exact bytes through corruption" true
        (Transport.Host.received srv = data)
  | None -> Alcotest.fail "no connection");
  (* The link layer actually did repair work. *)
  check Alcotest.bool "link-layer retransmissions happened" true
    ((Datalink.Stack.arq_stats link.Datalink.Stack.a).Datalink.Arq.retransmissions > 0)

(* --- Chaos: randomized multi-connection schedules --- *)

let qtest ?(count = 15) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

type chaos_conn = { start : float; chunks : int list }

let chaos_gen =
  QCheck2.Gen.(
    let conn =
      map2
        (fun start chunks -> { start = Float.of_int start /. 100.; chunks })
        (0 -- 100)
        (list_size (1 -- 6) (1 -- 3000))
    in
    triple (list_size (1 -- 5) conn) (0 -- 12) (0 -- 42))

let prop_chaos_every_stream_exact =
  qtest "random schedules deliver every stream exactly" chaos_gen
    (fun (conns, loss_pct, seed) ->
      let engine = Sim.Engine.create ~seed () in
      let channel =
        { (Sim.Channel.lossy (Float.of_int loss_pct /. 100.)) with
          duplication = 0.01; reorder = 0.02; reorder_extra = 0.004 }
      in
      let a, b = Transport.Host.pair engine channel in
      Transport.Host.listen b ~port:80;
      let server_conns = ref [] in
      Transport.Host.on_accept b (fun c -> server_conns := c :: !server_conns);
      let rng = Bitkit.Rng.create (seed + 1) in
      let client_conns =
        List.map
          (fun spec ->
            let c = Transport.Host.connect a ~remote_port:80 () in
            let expected = Buffer.create 1024 in
            let t = ref spec.start in
            List.iter
              (fun size ->
                let chunk =
                  String.init size (fun _ -> Char.chr (Bitkit.Rng.int rng 256))
                in
                Buffer.add_string expected chunk;
                ignore
                  (Sim.Engine.at engine ~time:!t (fun () ->
                       Transport.Host.write c chunk));
                t := !t +. Float.of_int (Bitkit.Rng.int rng 20) /. 1000.)
              spec.chunks;
            ignore (Sim.Engine.at engine ~time:!t (fun () -> Transport.Host.close c));
            (c, expected))
          conns
      in
      let rec drive n =
        if
          n < 600
          && not
               (List.for_all (fun (c, _) -> Transport.Host.finished c) client_conns)
        then begin
          Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.5) engine;
          drive (n + 1)
        end
      in
      drive 0;
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 10.) engine;
      (* every client connection's bytes arrived exactly at its peer *)
      List.length !server_conns = List.length client_conns
      && List.for_all
           (fun (c, expected) ->
             let key = (Transport.Host.remote_port c, Transport.Host.local_port c) in
             match
               List.find_opt
                 (fun srv ->
                   (Transport.Host.local_port srv, Transport.Host.remote_port srv) = key)
                 !server_conns
             with
             | Some srv -> Transport.Host.received srv = Buffer.contents expected
             | None -> false)
           client_conns)

let () =
  Alcotest.run "integration"
    [
      ( "tcp-over-network",
        [
          Alcotest.test_case "dv routing" `Slow test_tcp_over_network_dv;
          Alcotest.test_case "ls routing" `Slow test_tcp_over_network_ls;
          Alcotest.test_case "reroute mid-transfer (dv)" `Slow test_tcp_survives_rerouting_dv;
          Alcotest.test_case "reroute mid-transfer (ls)" `Slow test_tcp_survives_rerouting_ls;
        ] );
      ( "three-layers",
        [ Alcotest.test_case "transport over datalink" `Slow test_transport_over_datalink ]
      );
      ("chaos", [ prop_chaos_every_stream_exact ]);
    ]
