(* Property tests for the zero-copy data path: every sublayer's slice
   decoder must agree with its legacy string codec on random inputs
   (including truncated and garbage ones, without raising), the wirebuf
   push path must emit bit-identical bytes to the string encoders, slice
   decoding must be position-independent (a view into the middle of a
   larger buffer decodes the same), and whole seeded runs must be
   bit-identical between the copying (eager) and zero-copy (lazy) wirebuf
   modes on both scheduler backends. *)

open Transport

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let payload_gen = QCheck2.Gen.(string_size ~gen:char (0 -- 64))
let garbage_gen = QCheck2.Gen.(string_size ~gen:char (0 -- 24))

(* --- Generators for each sublayer's header --- *)

let u16 = QCheck2.Gen.(0 -- 0xFFFF)
let u32 = QCheck2.Gen.(0 -- 0xFFFFFFFF)

let dm_gen =
  QCheck2.Gen.(
    map (fun (s, d) -> { Segment.src_port = s; dst_port = d }) (pair u16 u16))

let cm_gen =
  QCheck2.Gen.(
    map
      (fun ((syn, ack, fin, rst), (il, ir)) ->
        { Segment.flags = { syn; ack; fin; rst }; isn_local = il; isn_remote = ir })
      (pair (quad bool bool bool bool) (pair u32 u32)))

let rd_gen =
  QCheck2.Gen.(
    map
      (fun ((seq, ack, len), (has_data, has_ack), sacks) ->
        { Segment.seq; ack; len; has_data; has_ack;
          sacks =
            List.map
              (fun (a, b) -> { Segment.sack_start = a; sack_end = b })
              sacks })
      (triple (triple u32 u32 u16) (pair bool bool)
         (list_size (0 -- 3) (pair u32 u32))))

let osr_gen =
  QCheck2.Gen.(
    map
      (fun (window, ecn_echo, ecn_ce) -> { Segment.window; ecn_echo; ecn_ce })
      (triple u16 bool bool))

let wire_gen =
  QCheck2.Gen.(
    map
      (fun ((sp, dp, seq, ack), (urg, a, psh, rst), (syn, fin, window)) ->
        { Wire.src_port = sp; dst_port = dp; seq; ack;
          flags = { Wire.urg; ack = a; psh; rst; syn; fin }; window })
      (triple (quad u16 u16 u32 u32) (quad bool bool bool bool)
         (triple bool bool u16)))

let msg_gen =
  QCheck2.Gen.(
    map
      (fun ((window, msg_id), (frag_off, msg_len)) ->
        { Msg.window; msg_id; frag_off; msg_len })
      (pair (pair u16 u16) (pair u16 u16)))

(* Decode a slice that sits in the middle of a larger buffer, so any
   confusion of absolute and view-relative offsets shows up. *)
let offset_slice s =
  let padded = "\xAA\xBB\xCC" ^ s ^ "\xDD" in
  Bitkit.Slice.sub (Bitkit.Slice.of_string padded) ~pos:3 ~len:(String.length s)

(* One sublayer codec: string decode, slice decode (at offset 0 and
   mid-buffer), and the wirebuf push path must all tell the same story. *)
let codec_props name hgen ~encode ~decode ~decode_slice ~write ~owner =
  [ qtest (name ^ ": slice decode = string decode")
      (QCheck2.Gen.pair hgen payload_gen)
      (fun (h, p) ->
        let s = encode h ~payload:p in
        match (decode s, decode_slice (Bitkit.Slice.of_string s)) with
        | Some (h1, p1), Some (h2, p2) ->
            h1 = h && h2 = h && p1 = p && Bitkit.Slice.equal_string p2 p
        | _ -> false);
    qtest (name ^ ": mid-buffer slice decodes the same")
      (QCheck2.Gen.pair hgen payload_gen)
      (fun (h, p) ->
        let s = encode h ~payload:p in
        match decode_slice (offset_slice s) with
        | Some (h', p') -> h' = h && Bitkit.Slice.equal_string p' p
        | None -> false);
    qtest (name ^ ": wirebuf push emits identical bytes")
      (QCheck2.Gen.pair hgen payload_gen)
      (fun (h, p) ->
        let wb =
          Bitkit.Wirebuf.push (Bitkit.Wirebuf.of_string p) ~owner (write h)
        in
        Bitkit.Wirebuf.to_string wb = encode h ~payload:p);
    qtest (name ^ ": garbage never raises, decoders agree") garbage_gen
      (fun s ->
        match (decode s, decode_slice (Bitkit.Slice.of_string s)) with
        | None, None -> true
        | Some (h1, p1), Some (h2, p2) ->
            h1 = h2 && Bitkit.Slice.equal_string p2 p1
        | _ -> false);
    qtest (name ^ ": truncation -> None without raising")
      (QCheck2.Gen.pair hgen payload_gen)
      (fun (h, p) ->
        let s = encode h ~payload:p in
        (* every strict prefix short of the fixed header must be rejected
           the same way by both decoders *)
        let ok = ref true in
        for cut = 0 to String.length s - 1 do
          let short = String.sub s 0 cut in
          match (decode short, decode_slice (Bitkit.Slice.of_string short)) with
          | None, None -> ()
          | Some (h1, p1), Some (h2, p2) ->
              if not (h1 = h2 && Bitkit.Slice.equal_string p2 p1) then ok := false
          | _ -> ok := false
        done;
        !ok)
  ]

let dm_props =
  codec_props "dm" dm_gen ~encode:Segment.encode_dm ~decode:Segment.decode_dm
    ~decode_slice:Segment.decode_dm_slice ~write:Segment.write_dm ~owner:"dm"

let cm_props =
  codec_props "cm" cm_gen ~encode:Segment.encode_cm ~decode:Segment.decode_cm
    ~decode_slice:Segment.decode_cm_slice ~write:Segment.write_cm ~owner:"cm"

let rd_props =
  codec_props "rd" rd_gen ~encode:Segment.encode_rd ~decode:Segment.decode_rd
    ~decode_slice:Segment.decode_rd_slice ~write:Segment.write_rd ~owner:"rd"

let osr_props =
  codec_props "osr" osr_gen ~encode:Segment.encode_osr
    ~decode:Segment.decode_osr ~decode_slice:Segment.decode_osr_slice
    ~write:Segment.write_osr ~owner:"osr"

let msg_props =
  codec_props "msg" msg_gen ~encode:Msg.encode_header
    ~decode:(fun s ->
      match Msg.decode_header_slice (Bitkit.Slice.of_string s) with
      | Some (h, p) -> Some (h, Bitkit.Slice.to_string p)
      | None -> None)
    ~decode_slice:Msg.decode_header_slice ~write:Msg.write_header ~owner:"msg"

(* --- The RFC 793 wire codec (checksummed, so garbage mostly fails) --- *)

let wire_props =
  [ qtest "wire: slice decode = string decode"
      (QCheck2.Gen.pair wire_gen payload_gen)
      (fun (h, p) ->
        let s = Wire.encode h ~payload:p in
        match (Wire.decode s, Wire.decode_slice (Bitkit.Slice.of_string s)) with
        | Some (h1, p1), Some (h2, p2) ->
            h1 = h && h2 = h && p1 = p && Bitkit.Slice.equal_string p2 p
        | _ -> false);
    qtest "wire: mid-buffer slice decodes the same"
      (QCheck2.Gen.pair wire_gen payload_gen)
      (fun (h, p) ->
        let s = Wire.encode h ~payload:p in
        match Wire.decode_slice (offset_slice s) with
        | Some (h', p') -> h' = h && Bitkit.Slice.equal_string p' p
        | None -> false);
    qtest "wire: garbage never raises, decoders agree" garbage_gen
      (fun s ->
        match (Wire.decode s, Wire.decode_slice (Bitkit.Slice.of_string s)) with
        | None, None -> true
        | Some (h1, p1), Some (h2, p2) ->
            h1 = h2 && Bitkit.Slice.equal_string p2 p1
        | _ -> false)
  ]

(* --- ARQ PDUs --- *)

let arq_pdu_gen =
  QCheck2.Gen.(
    bind bool (fun is_data ->
        if is_data then
          map (fun (seq, p) -> Datalink.Arq.Data (seq, p)) (pair u16 payload_gen)
        else map (fun seq -> Datalink.Arq.Ack seq) u16))

let arq_agrees pdu rx =
  match (pdu, rx) with
  | Some (Datalink.Arq.Data (s1, p1)), Some (Datalink.Arq.Rx_data (s2, p2)) ->
      s1 = s2 && Bitkit.Slice.equal_string p2 p1
  | Some (Datalink.Arq.Ack s1), Some (Datalink.Arq.Rx_ack s2) -> s1 = s2
  | None, None -> true
  | _ -> false

let arq_props =
  [ qtest "arq: slice decode = string decode" arq_pdu_gen (fun pdu ->
        let s = Datalink.Arq.encode_pdu pdu in
        arq_agrees (Some pdu)
          (Datalink.Arq.decode_pdu_slice (Bitkit.Slice.of_string s))
        && arq_agrees (Datalink.Arq.decode_pdu s)
             (Datalink.Arq.decode_pdu_slice (Bitkit.Slice.of_string s)));
    qtest "arq: wirebuf forms emit identical bytes" arq_pdu_gen (fun pdu ->
        let wb =
          match pdu with
          | Datalink.Arq.Data (seq, p) -> Datalink.Arq.data_wirebuf ~seq p
          | Datalink.Arq.Ack seq -> Datalink.Arq.ack_wirebuf seq
        in
        Bitkit.Wirebuf.to_string wb = Datalink.Arq.encode_pdu pdu);
    qtest "arq: garbage never raises, decoders agree" garbage_gen (fun s ->
        arq_agrees (Datalink.Arq.decode_pdu s)
          (Datalink.Arq.decode_pdu_slice (Bitkit.Slice.of_string s)))
  ]

(* --- Error detectors: verify_slice = verify, in place --- *)

let detectors =
  [ Datalink.Detector.none; Datalink.Detector.parity;
    Datalink.Detector.internet; Datalink.Detector.fletcher16;
    Datalink.Detector.crc Bitkit.Crc.crc16_ccitt;
    Datalink.Detector.crc Bitkit.Crc.crc32 ]

let detector_props =
  List.concat_map
    (fun d ->
      let name = d.Datalink.Detector.name in
      [ qtest (name ^ ": verify_slice accepts protect output") payload_gen
          (fun p ->
            let f = d.Datalink.Detector.protect p in
            match
              ( d.Datalink.Detector.verify f,
                d.Datalink.Detector.verify_slice (offset_slice f) )
            with
            | Some b1, Some b2 -> b1 = p && Bitkit.Slice.equal_string b2 p
            | _ -> false);
        qtest (name ^ ": verify_slice = verify on damaged frames")
          QCheck2.Gen.(pair payload_gen (pair u16 (0 -- 255)))
          (fun (p, (pos, byte)) ->
            let f = Bytes.of_string (d.Datalink.Detector.protect p) in
            if Bytes.length f = 0 then true
            else begin
              Bytes.set f (pos mod Bytes.length f) (Char.chr byte);
              let f = Bytes.to_string f in
              match
                ( d.Datalink.Detector.verify f,
                  d.Datalink.Detector.verify_slice (Bitkit.Slice.of_string f) )
              with
              | None, None -> true
              | Some b1, Some b2 -> Bitkit.Slice.equal_string b2 b1
              | _ -> false
            end)
      ])
    detectors

(* --- Chain digests: the transmit-side twin of verify_slice --- *)

(* A wirebuf with a random header chain over a random payload — the
   shape the detector sees from the ARQ above. *)
let header_gen = QCheck2.Gen.(string_size ~gen:char (1 -- 12))

let wirebuf_gen =
  QCheck2.Gen.(
    map
      (fun (p, headers) ->
        List.fold_left
          (fun wb h ->
            Bitkit.Wirebuf.push wb ~owner:"hdr" (fun w ->
                Bitkit.Bitio.Writer.bytes w h))
          (Bitkit.Wirebuf.of_string p) headers)
      (pair payload_gen (list_size (0 -- 4) header_gen)))

let protect_trailer d flat =
  let n = d.Datalink.Detector.overhead_bytes in
  let f = d.Datalink.Detector.protect flat in
  String.sub f (String.length f - n) n

let chain_digest_props =
  List.concat_map
    (fun d ->
      let name = d.Datalink.Detector.name in
      let n = d.Datalink.Detector.overhead_bytes in
      [ qtest (name ^ ": chain digest = flattened digest") wirebuf_gen
          (fun wb ->
            let trailer = protect_trailer d (Bitkit.Wirebuf.to_string wb) in
            (* Guard bytes on both sides: the digest writer must touch
               exactly its [n] bytes. *)
            let b = Bytes.make (n + 2) '\x55' in
            d.Datalink.Detector.chain_digest_into wb b 1;
            Bytes.get b 0 = '\x55'
            && Bytes.get b (n + 1) = '\x55'
            && Bytes.sub_string b 1 n = trailer);
        qtest (name ^ ": chain digest over a mid-buffer payload view")
          (QCheck2.Gen.pair payload_gen header_gen)
          (fun (p, h) ->
            let wb =
              Bitkit.Wirebuf.push
                (Bitkit.Wirebuf.of_slice (offset_slice p))
                ~owner:"hdr"
                (fun w -> Bitkit.Bitio.Writer.bytes w h)
            in
            let trailer = protect_trailer d (Bitkit.Wirebuf.to_string wb) in
            let b = Bytes.make (max n 1) '\x00' in
            d.Datalink.Detector.chain_digest_into wb b 0;
            Bytes.sub_string b 0 n = trailer);
        qtest (name ^ ": pooled protect emits identical frames") wirebuf_gen
          (fun wb ->
            let out t =
              match Datalink.Layers.Error_detection.handle_up_req t wb with
              | _, [ Sublayer.Machine.Down s ] ->
                  Some (Bitkit.Slice.to_string s)
              | _ -> None
            in
            let pool = Bitkit.Pool.create ~slots:2 ~slot_bytes:256 () in
            let heap = out (Datalink.Layers.Error_detection.make d) in
            let pooled = out (Datalink.Layers.Error_detection.make ~pool d) in
            Bitkit.Pool.drain_deferred pool;
            (* An exhausted pool must fall back to the same bytes. *)
            let hold = List.init 2 (fun _ -> Bitkit.Pool.loan pool ~len:1) in
            let starved =
              out (Datalink.Layers.Error_detection.make ~pool d)
            in
            List.iter (Bitkit.Pool.release pool) hold;
            Bitkit.Pool.drain_deferred pool;
            (* [none] on an empty wirebuf legitimately emits an empty
               frame, so emptiness is not a failure — only a missing
               [Down] action is. *)
            (match (heap, pooled, starved) with
            | Some h, Some p, Some s -> h = p && h = s
            | _ -> false)
            && Bitkit.Pool.in_use pool = 0) ])
    detectors

(* --- Pooled emits are invisible on the wire --- *)

(* The Rec sublayer's in-place seal (port/seq/ciphertext/tag laid out in
   the slot) must produce byte-identical records to the legacy
   string-concatenation path, seq after seq. *)
let test_rec_pooled_seal_identical () =
  let key = String.init 32 (fun i -> Char.chr (i * 7 land 0xFF)) in
  let mk ?pool () = Rec.initial ?pool ~key ~local_port:4242 ~remote_port:99 () in
  let pool = Bitkit.Pool.create ~slots:4 ~slot_bytes:512 () in
  let heap = ref (mk ()) in
  let pooled = ref (mk ~pool ()) in
  for i = 0 to 9 do
    let payload = Printf.sprintf "rec-%d-%s" i (String.make (i * 13) 'r') in
    let wb = Bitkit.Wirebuf.of_string payload in
    let out r =
      match Rec.handle_up_req !r wb with
      | t, [ Sublayer.Machine.Down w ] ->
          r := t;
          Bitkit.Wirebuf.to_string w
      | _ -> Alcotest.fail "rec did not emit a record"
    in
    let a = out heap in
    let b = out pooled in
    Bitkit.Pool.drain_deferred pool;
    Alcotest.(check string) (Printf.sprintf "record %d identical" i) a b
  done;
  Alcotest.(check int) "no slot leaked" 0 (Bitkit.Pool.in_use pool)

(* A pooled fabric run must be schedule-identical to the unpooled run —
   loans change where bytes live, never what happens — while actually
   exercising the arena, and must hand every slot back by the end. *)
let pool_fingerprint ?pool () =
  let engine = Sim.Engine.create ~seed:33 () in
  let fabric =
    Transport.Fabric.create engine ~hosts:4 ~channel:(Sim.Channel.lossy 0.03)
      ?pool ~flows:60 ~bytes:1024 ()
  in
  let r =
    Sim.Workload.run ~spacing:0.01 ~name:"pooled" ~engine ~flows:60
      (Transport.Fabric.ops fabric)
  in
  if not (Sim.Workload.ok r) then
    Alcotest.failf "pooled workload not ok: %a" Sim.Workload.pp_report r;
  ( r.Sim.Workload.soak.Sim.Soak.events_fired,
    r.Sim.Workload.soak.Sim.Soak.vtime,
    r.Sim.Workload.exact )

let test_pooled_unpooled_identical () =
  let base = pool_fingerprint () in
  let pool = Bitkit.Pool.create ~slots:512 ~slot_bytes:2048 () in
  let pooled = pool_fingerprint ~pool () in
  let fired (f, _, _) = f and vtime (_, v, _) = v and exact (_, _, e) = e in
  Alcotest.(check int) "events fired identical" (fired base) (fired pooled);
  Alcotest.(check bool) "virtual end time identical" true
    (vtime base = vtime pooled);
  Alcotest.(check int) "exact flows identical" (exact base) (exact pooled);
  Alcotest.(check bool) "the arena was exercised" true (Bitkit.Pool.loans pool > 0);
  Alcotest.(check int) "every slot handed back" 0 (Bitkit.Pool.in_use pool)

(* --- The T3 audit on the real transmit path --- *)

(* Arm [Segment.audit_tx]: DM now checks every outgoing wirebuf's header
   stack against the Figure 6 layout. A full seeded transfer must pass. *)
let test_audit_armed () =
  Segment.audit_tx := true;
  Fun.protect
    ~finally:(fun () -> Segment.audit_tx := false)
    (fun () ->
      let engine = Sim.Engine.create ~seed:21 () in
      let fabric =
        Transport.Fabric.create engine ~hosts:2
          ~channel:(Sim.Channel.lossy 0.02) ~flows:8 ~bytes:4096 ()
      in
      let r =
        Sim.Workload.run ~name:"audit" ~engine ~flows:8
          (Transport.Fabric.ops fabric)
      in
      if not (Sim.Workload.ok r) then
        Alcotest.failf "audited workload not ok: %a" Sim.Workload.pp_report r)

(* And the audit itself must reject malformed stacks. *)
let test_audit_rejects () =
  let bad stack =
    match Sublayer.Layout.check_appendix Segment.layout stack with
    | Ok () -> false
    | Error _ -> true
  in
  Alcotest.(check bool) "wrong order rejected" true
    (bad [ ("cm", 72); ("dm", 32); ("rd", 88); ("osr", 24) ]);
  Alcotest.(check bool) "unknown owner rejected" true
    (bad [ ("msg", 64); ("rd", 88); ("cm", 72); ("dm", 32) ]);
  Alcotest.(check bool) "short header rejected" true
    (bad [ ("dm", 16); ("cm", 72); ("rd", 88); ("osr", 24) ]);
  Alcotest.(check bool) "good stack accepted" false
    (bad [ ("dm", 32); ("cm", 72); ("rd", 88); ("osr", 24) ])

(* --- Whole-run equivalence: eager (copying) vs lazy (zero-copy) --- *)

let soak_fingerprint ~eager ~backend =
  Bitkit.Wirebuf.set_eager eager;
  Fun.protect
    ~finally:(fun () -> Bitkit.Wirebuf.set_eager false)
    (fun () ->
      let engine = Sim.Engine.create ~seed:31 ~backend () in
      let fabric =
        Transport.Fabric.create engine ~hosts:4
          ~channel:(Sim.Channel.lossy 0.03) ~flows:60 ~bytes:1024 ()
      in
      let r =
        Sim.Workload.run ~spacing:0.01 ~name:"fingerprint" ~engine ~flows:60
          (Transport.Fabric.ops fabric)
      in
      if not (Sim.Workload.ok r) then
        Alcotest.failf "fingerprint workload not ok: %a" Sim.Workload.pp_report
          r;
      ( r.Sim.Workload.soak.Sim.Soak.events_fired,
        r.Sim.Workload.soak.Sim.Soak.vtime,
        r.Sim.Workload.exact ))

let test_eager_lazy_identical () =
  List.iter
    (fun backend ->
      let lazy_fp = soak_fingerprint ~eager:false ~backend in
      let eager_fp = soak_fingerprint ~eager:true ~backend in
      let fired (f, _, _) = f and vtime (_, v, _) = v and exact (_, _, e) = e in
      Alcotest.(check int) "events fired identical" (fired eager_fp)
        (fired lazy_fp);
      Alcotest.(check bool) "virtual end time identical" true
        (vtime eager_fp = vtime lazy_fp);
      Alcotest.(check int) "exact flows identical" (exact eager_fp)
        (exact lazy_fp))
    [ `Wheel; `Heap ]

(* The copying mode really copies: the same run must move strictly more
   bytes through [Slice]'s copy accounting in eager mode. *)
let test_lazy_copies_less () =
  let copied ~eager =
    Bitkit.Slice.reset_copied ();
    ignore (soak_fingerprint ~eager ~backend:`Wheel);
    Bitkit.Slice.copied_bytes ()
  in
  let eager_bytes = copied ~eager:true in
  let lazy_bytes = copied ~eager:false in
  if not (lazy_bytes < eager_bytes) then
    Alcotest.failf "zero-copy path copied %d bytes, copying path %d" lazy_bytes
      eager_bytes

(* The copy counter is shared process state bumped from every shard
   domain; hammer it from two domains at once and demand the exact sum —
   a plain [ref] loses updates here (incr is a read-modify-write), the
   [Atomic.t] must not. *)
let test_copy_counter_atomic () =
  Bitkit.Slice.reset_copied ();
  let iters = 1_000_000 in
  let hammer () =
    for _ = 1 to iters do
      Bitkit.Slice.note_copy 1
    done
  in
  let d = Domain.spawn hammer in
  hammer ();
  Domain.join d;
  Alcotest.(check int) "no lost updates" (2 * iters)
    (Bitkit.Slice.copied_bytes ());
  Bitkit.Slice.reset_copied ()

let () =
  Alcotest.run "zerocopy"
    [
      ("dm", dm_props);
      ("cm", cm_props);
      ("rd", rd_props);
      ("osr", osr_props);
      ("msg", msg_props);
      ("wire", wire_props);
      ("arq", arq_props);
      ("detector", detector_props);
      ("chain-digest", chain_digest_props);
      ( "pool",
        [
          Alcotest.test_case "rec pooled seal = legacy seal" `Quick
            test_rec_pooled_seal_identical;
          Alcotest.test_case "pooled fabric run schedule-identical" `Quick
            test_pooled_unpooled_identical;
        ] );
      ( "audit",
        [
          Alcotest.test_case "armed on the wire path" `Quick test_audit_armed;
          Alcotest.test_case "rejects malformed stacks" `Quick
            test_audit_rejects;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "eager = lazy on both backends" `Quick
            test_eager_lazy_identical;
          Alcotest.test_case "lazy copies fewer bytes" `Quick
            test_lazy_copies_less;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "copy counter survives two domains" `Quick
            test_copy_counter_atomic;
        ] );
    ]
