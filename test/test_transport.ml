(* Tests for the sublayered TCP: header codecs and the T3 layout audit,
   ISN generators, congestion-control algorithms, the CM machine driven
   as a pure state machine, RD/OSR behaviour, end-to-end transfers,
   replaceability (E10), peering with mixed mechanisms (E13), the
   monolithic baseline and shim interop (E4). *)

open Transport

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let payload_gen = QCheck2.Gen.(string_size ~gen:char (0 -- 200))

(* --- Segment codecs --- *)

let test_dm_codec () =
  let dm = { Segment.src_port = 1234; dst_port = 80 } in
  let s = Segment.encode_dm dm ~payload:"rest" in
  check Alcotest.int "header size" Segment.dm_header_bytes (String.length s - 4);
  (match Segment.decode_dm s with
  | Some (got, payload) ->
      check Alcotest.bool "fields" true (got = dm);
      check Alcotest.string "payload" "rest" payload
  | None -> Alcotest.fail "decode failed");
  check Alcotest.(option (pair int int)) "peek" (Some (1234, 80)) (Segment.peek_ports (Bitkit.Slice.of_string s));
  check Alcotest.bool "short rejected" true (Segment.decode_dm "\x01" = None)

let test_cm_codec () =
  let cm =
    { Segment.flags = { syn = true; ack = false; fin = false; rst = false };
      isn_local = 0xDEADBEEF; isn_remote = 0 }
  in
  match Segment.decode_cm (Segment.encode_cm cm ~payload:"p") with
  | Some (got, payload) ->
      check Alcotest.bool "fields" true (got = cm);
      check Alcotest.string "payload" "p" payload
  | None -> Alcotest.fail "decode failed"

let test_rd_codec_with_sacks () =
  let rd =
    { Segment.seq = 0xFFFFFFFF; ack = 7; len = 512; has_data = true; has_ack = true;
      sacks = [ { Segment.sack_start = 100; sack_end = 200 };
                { Segment.sack_start = 300; sack_end = 400 } ] }
  in
  match Segment.decode_rd (Segment.encode_rd rd ~payload:"xyz") with
  | Some (got, payload) ->
      check Alcotest.bool "fields" true (got = rd);
      check Alcotest.string "payload" "xyz" payload
  | None -> Alcotest.fail "decode failed"

let test_osr_codec () =
  let osr = { Segment.window = 12345; ecn_echo = true; ecn_ce = false } in
  match Segment.decode_osr (Segment.encode_osr osr ~payload:"data") with
  | Some (got, payload) ->
      check Alcotest.bool "fields" true (got = osr);
      check Alcotest.string "payload" "data" payload
  | None -> Alcotest.fail "decode failed"

let prop_onion_roundtrip =
  qtest "full onion roundtrip" payload_gen (fun p ->
      let osr = Segment.encode_osr Segment.default_osr ~payload:p in
      let rd =
        Segment.encode_rd
          { Segment.seq = 1; ack = 2; len = String.length p; has_data = true;
            has_ack = true; sacks = [] }
          ~payload:osr
      in
      let cm =
        Segment.encode_cm
          { Segment.flags = Segment.no_cm_flags; isn_local = 3; isn_remote = 4 }
          ~payload:rd
      in
      let wire = Segment.encode_dm { Segment.src_port = 5; dst_port = 6 } ~payload:cm in
      match Segment.decode_dm wire with
      | None -> false
      | Some (_, cm') -> (
          match Segment.decode_cm cm' with
          | None -> false
          | Some (_, rd') -> (
              match Segment.decode_rd rd' with
              | None -> false
              | Some (_, osr') -> (
                  match Segment.decode_osr osr' with
                  | None -> false
                  | Some (_, p') -> p' = p))))

(* T3: the Figure 6 layout is fully owned, disjointly, by the four
   sublayers. *)
let test_layout_t3 () =
  let l = Segment.layout in
  check Alcotest.(list string) "owners in stack order" [ "dm"; "cm"; "rd"; "osr" ]
    (Sublayer.Layout.owners l);
  check Alcotest.int "fully covered" (Sublayer.Layout.total_bits l)
    (Sublayer.Layout.covered_bits l);
  check Alcotest.int "header bytes" (8 * Segment.header_bytes) (Sublayer.Layout.total_bits l);
  (* every bit has exactly one owner *)
  for bit = 0 to Sublayer.Layout.total_bits l - 1 do
    if Sublayer.Layout.owner_of_bit l bit = None then
      Alcotest.failf "bit %d unowned" bit
  done;
  (* field volumes per sublayer *)
  check Alcotest.int "dm bits" 32 (Sublayer.Layout.bits_of l "dm");
  check Alcotest.int "cm bits" 72 (Sublayer.Layout.bits_of l "cm");
  check Alcotest.int "rd bits" 88 (Sublayer.Layout.bits_of l "rd");
  check Alcotest.int "osr bits" 24 (Sublayer.Layout.bits_of l "osr")

(* --- Wire (RFC 793) --- *)

let test_wire_codec () =
  let h =
    { Wire.src_port = 80; dst_port = 1234; seq = 0x12345678; ack = 0x9ABCDEF0;
      flags = { Wire.no_flags with syn = true; ack = true }; window = 5000 }
  in
  match Wire.decode (Wire.encode h ~payload:"hello") with
  | Some (got, payload) ->
      check Alcotest.bool "fields" true (got = h);
      check Alcotest.string "payload" "hello" payload
  | None -> Alcotest.fail "decode failed"

let test_wire_checksum_rejects () =
  let h = { Wire.src_port = 1; dst_port = 2; seq = 3; ack = 4; flags = Wire.no_flags; window = 5 } in
  let s = Wire.encode h ~payload:"data!" in
  let bad = Bytes.of_string s in
  Bytes.set bad 22 (Char.chr (Char.code (Bytes.get bad 22) lxor 1));
  check Alcotest.bool "corrupt rejected" true (Wire.decode (Bytes.to_string bad) = None);
  check Alcotest.bool "short rejected" true (Wire.decode "tiny" = None)

let prop_wire_roundtrip =
  qtest "wire roundtrip" payload_gen (fun p ->
      let h =
        { Wire.src_port = 42; dst_port = 4242; seq = 99; ack = 100;
          flags = { Wire.no_flags with ack = true; psh = true }; window = 1 }
      in
      match Wire.decode (Wire.encode h ~payload:p) with
      | Some (got, p') -> got = h && p' = p
      | None -> false)

let test_wire_options_skipped () =
  (* A header claiming data_offset 6 carries 4 option bytes our codec
     must skip (we never emit options but must accept them). *)
  let h =
    { Wire.src_port = 9; dst_port = 10; seq = 1; ack = 2;
      flags = { Wire.no_flags with ack = true }; window = 3 }
  in
  let with_options =
    (* re-encode manually with offset 6 and four option bytes *)
    let base = Wire.encode h ~payload:"" in
    let b = Bytes.of_string (String.sub base 0 12 ^ "\x60" ^ String.sub base 13 7
                             ^ "\x01\x01\x01\x00" ^ "PAY") in
    (* fix checksum: recompute by zeroing field *)
    Bytes.set b 16 '\000';
    Bytes.set b 17 '\000';
    let c = Bitkit.Checksum.internet (Bytes.to_string b) in
    Bytes.set b 16 (Char.chr (c lsr 8));
    Bytes.set b 17 (Char.chr (c land 0xFF));
    Bytes.to_string b
  in
  match Wire.decode with_options with
  | Some (got, payload) ->
      check Alcotest.bool "header fields" true (got = h);
      check Alcotest.string "payload after options" "PAY" payload
  | None -> Alcotest.fail "options rejected"

let test_host_take_received () =
  let engine = Sim.Engine.create ~seed:90 () in
  let a, b = Host.pair engine Sim.Channel.ideal in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c -> server := Some c);
  let c = Host.connect a ~remote_port:80 () in
  Host.write c "hello";
  Sim.Engine.run ~until:5. engine;
  let srv = Option.get !server in
  check Alcotest.string "take" "hello" (Host.take_received srv);
  check Alcotest.string "cleared" "" (Host.take_received srv);
  Host.write c " again";
  Sim.Engine.run ~until:10. engine;
  check Alcotest.string "streams on" " again" (Host.take_received srv)

(* --- ISN generators --- *)

let test_isn_generators () =
  let engine = Sim.Engine.create () in
  let clock = Isn.clock engine in
  let hashed = Isn.hashed engine ~secret:7 in
  let counter = Isn.counter () in
  List.iter
    (fun (g : Isn.t) ->
      let v = g.Isn.next ~local_port:1000 ~remote_port:80 in
      check Alcotest.bool (g.Isn.gname ^ " 32-bit") true (v >= 0 && v <= 0xFFFFFFFF))
    [ clock; hashed; counter ]

let test_isn_predictability () =
  let engine = Sim.Engine.create () in
  let advance () = Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.01) engine in
  let counter = Isn.counter () in
  check (Alcotest.float 0.01) "counter fully predictable" 1.0
    (Isn.predictability counter ~samples:50 ~advance);
  check (Alcotest.float 0.05) "clock fully predictable" 1.0
    (Isn.predictability (Isn.clock engine) ~samples:50 ~advance)

let test_isn_attack_success () =
  let engine = Sim.Engine.create () in
  let success make = Isn.attack_success ~make ~trials:40 in
  check (Alcotest.float 0.01) "clock attackable" 1.0
    (success (fun ~trial:_ -> Isn.clock engine));
  check (Alcotest.float 0.01) "counter attackable" 1.0
    (success (fun ~trial:_ -> Isn.counter ()));
  check Alcotest.bool "hashed resists" true
    (success (fun ~trial -> Isn.hashed engine ~secret:(trial * 104729)) < 0.1)

let test_isn_hashed_separates_tuples () =
  let engine = Sim.Engine.create () in
  let hashed = Isn.hashed engine ~secret:99 in
  let a = hashed.Isn.next ~local_port:1000 ~remote_port:80 in
  let b = hashed.Isn.next ~local_port:1001 ~remote_port:80 in
  check Alcotest.bool "different tuples differ" true (a <> b)

(* --- Congestion control algorithms --- *)

let test_cc_reno_dynamics () =
  let cc = Cc.reno.Cc.create ~mss:1000 ~now:(fun () -> 0.) in
  let w0 = cc.Cc.window () in
  (* slow start doubles per window's worth of acks *)
  cc.Cc.on_ack ~bytes:1000 ~rtt:None;
  check Alcotest.bool "slow start grows by bytes" true (cc.Cc.window () = w0 +. 1000.);
  cc.Cc.on_loss Cc.Dup_ack;
  let after_fast = cc.Cc.window () in
  check Alcotest.bool "halved" true (after_fast < w0);
  cc.Cc.on_loss Cc.Timeout;
  check (Alcotest.float 0.1) "collapsed to 1 mss" 1000. (cc.Cc.window ())

let test_cc_all_algorithms_sane () =
  List.iter
    (fun algo ->
      let t = ref 0. in
      let cc = algo.Cc.create ~mss:1000 ~now:(fun () -> !t) in
      for i = 1 to 200 do
        t := Float.of_int i *. 0.01;
        cc.Cc.on_ack ~bytes:1000 ~rtt:(Some 0.01);
        if i mod 50 = 0 then cc.Cc.on_loss Cc.Dup_ack
      done;
      let w = cc.Cc.window () in
      if not (Float.is_finite w) || w < 1000. then
        Alcotest.failf "%s window insane: %f" algo.Cc.algo_name w)
    Cc.all

let test_cc_fixed_constant () =
  let cc = (Cc.fixed 8).Cc.create ~mss:1000 ~now:(fun () -> 0.) in
  cc.Cc.on_ack ~bytes:5000 ~rtt:None;
  cc.Cc.on_loss Cc.Timeout;
  check (Alcotest.float 0.1) "constant" 8000. (cc.Cc.window ())

(* --- Ranges --- *)

let test_ranges () =
  let r = Ranges.empty in
  let r, fresh = Ranges.add r 0 100 in
  check Alcotest.bool "fresh" true fresh;
  check Alcotest.int "cumulative" 100 (Ranges.cumulative r);
  let r, fresh = Ranges.add r 200 300 in
  check Alcotest.bool "gap fresh" true fresh;
  check Alcotest.int "cumulative stuck" 100 (Ranges.cumulative r);
  check Alcotest.(list (pair int int)) "beyond" [ (200, 300) ] (Ranges.beyond r 100);
  let r, fresh = Ranges.add r 100 200 in
  check Alcotest.bool "fill fresh" true fresh;
  check Alcotest.int "merged" 300 (Ranges.cumulative r);
  check Alcotest.(list (pair int int)) "one interval" [ (0, 300) ] (Ranges.intervals r);
  let _, fresh = Ranges.add r 50 60 in
  check Alcotest.bool "duplicate not fresh" false fresh

let prop_ranges_model =
  (* Compare against a naive byte-set model. *)
  let ops_gen = QCheck2.Gen.(list_size (0 -- 30) (pair (0 -- 60) (1 -- 15))) in
  qtest "interval set = byte set" ops_gen (fun ops ->
      let r = ref Ranges.empty in
      let model = Hashtbl.create 64 in
      List.for_all
        (fun (lo, len) ->
          let hi = lo + len in
          let r', fresh = Ranges.add !r lo hi in
          r := r';
          let model_fresh = ref false in
          for i = lo to hi - 1 do
            if not (Hashtbl.mem model i) then begin
              model_fresh := true;
              Hashtbl.replace model i ()
            end
          done;
          let rec cum i = if Hashtbl.mem model i then cum (i + 1) else i in
          fresh = !model_fresh
          && Ranges.cumulative !r = cum 0
          && Ranges.total_bytes !r = Hashtbl.length model)
        ops)

(* --- CM driven as a pure machine --- *)

let mk_cm () =
  Cm.initial Config.default ~isn:(Isn.counter ()) ~local_port:1 ~remote_port:2

(* CM emits wirebufs downward; feeding them back in means crossing the
   wire, i.e. flattening to a slice view. *)
let wire_of wb = Bitkit.Wirebuf.to_slice wb

let rec feed cm = function
  | [] -> (cm, [])
  | input :: rest ->
      let cm, acts = Cm.handle_down_ind cm (wire_of input) in
      let cm, more = feed cm rest in
      (cm, acts @ more)

let downs acts =
  List.filter_map (function Sublayer.Machine.Down s -> Some s | _ -> None) acts

let test_cm_handshake_pure () =
  (* Drive two CM machines against each other with a perfect channel. *)
  let a = mk_cm () and b = mk_cm () in
  let b, _ = Cm.handle_up_req b `Listen in
  let a, acts = Cm.handle_up_req a `Connect in
  check Alcotest.string "a syn-sent" "SYN_SENT" (Cm.phase_name a);
  let syn = List.hd (downs acts) in
  let b, acts_b = Cm.handle_down_ind b (wire_of syn) in
  check Alcotest.string "b syn-rcvd" "SYN_RCVD" (Cm.phase_name b);
  let a, acts_a = feed a (downs acts_b) in
  check Alcotest.string "a established" "ESTABLISHED" (Cm.phase_name a);
  let b, _ = feed b (downs acts_a) in
  check Alcotest.string "b established" "ESTABLISHED" (Cm.phase_name b);
  match (Cm.isns a, Cm.isns b) with
  | Some (al, ar), Some (bl, br) ->
      check Alcotest.bool "isn agreement" true (al = br && ar = bl)
  | _ -> Alcotest.fail "isns missing"

let test_cm_rejects_old_incarnation () =
  (* Establish a and b, then replay a segment stamped with stale ISNs. *)
  let a = mk_cm () and b = mk_cm () in
  let b, _ = Cm.handle_up_req b `Listen in
  let a, acts = Cm.handle_up_req a `Connect in
  let b, acts_b = Cm.handle_down_ind b (wire_of (List.hd (downs acts))) in
  let a, acts_a = feed a (downs acts_b) in
  let b, _ = feed b (downs acts_a) in
  let stale =
    Segment.encode_cm
      { Segment.flags = Segment.no_cm_flags; isn_local = 424242; isn_remote = 515151 }
      ~payload:"ghost"
  in
  let _, acts = Cm.handle_down_ind b (Bitkit.Slice.of_string stale) in
  check Alcotest.bool "no Up for stale identity" true
    (List.for_all (function Sublayer.Machine.Up (`Pdu _) -> false | _ -> true) acts);
  ignore a

let test_cm_syn_retransmission_and_give_up () =
  let a = mk_cm () in
  let a, _ = Cm.handle_up_req a `Connect in
  let rec retx a n =
    if n > Config.default.Config.syn_retries then a
    else begin
      let a, acts = Cm.handle_timer a Cm.Handshake in
      if n < Config.default.Config.syn_retries then
        check Alcotest.bool "retransmits syn" true (downs acts <> []);
      retx a (n + 1)
    end
  in
  let a = retx a 0 in
  check Alcotest.string "gave up" "CLOSED" (Cm.phase_name a)

let test_cm_simultaneous_open () =
  let a = mk_cm () and b = mk_cm () in
  let a, acts_a = Cm.handle_up_req a `Connect in
  let b, acts_b = Cm.handle_up_req b `Connect in
  (* cross the SYNs *)
  let a, acts_a2 = feed a (downs acts_b) in
  let b, acts_b2 = feed b (downs acts_a) in
  check Alcotest.string "a syn-rcvd" "SYN_RCVD" (Cm.phase_name a);
  check Alcotest.string "b syn-rcvd" "SYN_RCVD" (Cm.phase_name b);
  (* cross the SYN|ACKs *)
  let a, _ = feed a (downs acts_b2) in
  let b, _ = feed b (downs acts_a2) in
  check Alcotest.string "a est" "ESTABLISHED" (Cm.phase_name a);
  check Alcotest.string "b est" "ESTABLISHED" (Cm.phase_name b)

let rst_sent acts =
  List.exists
    (fun s ->
      match Segment.decode_cm_slice (wire_of s) with
      | Some (cm, _) -> cm.Segment.flags.Segment.rst
      | None -> false)
    (downs acts)

let test_cm_malformed_handshake_rst () =
  (* Regression: a peer driving the handshake with forged or incoherent
     segments must never raise — bogus segments are dropped, and when the
     handshake cannot complete CM aborts through the RST path. *)
  let b = mk_cm () in
  let b, _ = Cm.handle_up_req b `Listen in
  let forged flags ~isn_local ~isn_remote payload =
    Bitkit.Slice.of_string
      (Segment.encode_cm { Segment.flags; isn_local; isn_remote } ~payload)
  in
  (* A handshake ACK out of nowhere (no SYN first): dropped, no raise. *)
  let b, acts = Cm.handle_down_ind b
      (forged { Segment.no_cm_flags with ack = true } ~isn_local:7 ~isn_remote:9 "")
  in
  check Alcotest.string "listener unmoved by stray ack" "LISTEN" (Cm.phase_name b);
  check Alcotest.bool "stray ack not upped" true
    (List.for_all (function Sublayer.Machine.Up _ -> false | _ -> true) acts);
  (* Real SYN arrives; then the attacker tries to complete with an ACK
     carrying the wrong echoed ISN. *)
  let b, _ = Cm.handle_down_ind b
      (forged { Segment.no_cm_flags with syn = true } ~isn_local:100 ~isn_remote:0 "")
  in
  check Alcotest.string "syn-rcvd" "SYN_RCVD" (Cm.phase_name b);
  let b, _ = Cm.handle_down_ind b
      (forged { Segment.no_cm_flags with ack = true } ~isn_local:100 ~isn_remote:424242 "")
  in
  check Alcotest.string "wrong echoed isn rejected" "SYN_RCVD" (Cm.phase_name b);
  (* Nonsense flag combination with the right identity: dropped too. *)
  let b, _ = Cm.handle_down_ind b
      (forged { Segment.syn = true; ack = false; fin = true; rst = false }
         ~isn_local:100 ~isn_remote:424242 "")
  in
  check Alcotest.string "syn|fin rejected" "SYN_RCVD" (Cm.phase_name b);
  (* Undecodable bytes: dropped. *)
  let b, _ = Cm.handle_down_ind b (Bitkit.Slice.of_string "\x00") in
  check Alcotest.string "garbage rejected" "SYN_RCVD" (Cm.phase_name b);
  (* The handshake can never complete; exhausting the retries must abort
     with an RST on the wire and a reset indication upward — the seed
     crashed here instead. *)
  let rec exhaust b n =
    if n > Config.default.Config.syn_retries then (b, [])
    else
      let b, acts = Cm.handle_timer b Cm.Handshake in
      if Cm.phase_name b = "CLOSED" then (b, acts) else exhaust b (n + 1)
  in
  let b, acts = exhaust b 0 in
  check Alcotest.string "aborted to closed" "CLOSED" (Cm.phase_name b);
  check Alcotest.bool "rst on the wire" true (rst_sent acts);
  check Alcotest.bool "reset indicated upward" true
    (List.exists (function Sublayer.Machine.Up `Reset -> true | _ -> false) acts)

(* --- End-to-end transfers over Host --- *)

let random_data seed n =
  let rng = Bitkit.Rng.create seed in
  String.init n (fun _ -> Char.chr (Bitkit.Rng.int rng 256))

let drive engine conns deadline =
  let rec go () =
    if
      Sim.Engine.now engine < deadline
      && not (List.for_all (fun c -> Host.finished c) conns)
    then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.5) engine;
      go ()
    end
  in
  go ();
  let completion = Sim.Engine.now engine in
  (* Let acknowledgements and teardown timers drain. *)
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
  completion

type outcome = {
  ok : bool;
  server_got : int;
  client_got : string;
  server_peer_closed : bool;
  virtual_time : float;
}

let transfer ?(config = Config.default) ?(fa = Host.sublayered) ?(fb = Host.sublayered)
    ?(guard = false) ?(echo = 0) ~seed channel bytes =
  let engine = Sim.Engine.create ~seed () in
  let a, b = Host.pair engine ~config ~factory_a:fa ~factory_b:fb ~guard channel in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c ->
      server := Some c;
      if echo > 0 then begin
        Host.write c (random_data (seed + 1) echo);
        Host.close c
      end);
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data seed bytes in
  Host.write c data;
  Host.close c;
  let completion = drive engine [ c ] 300. in
  match !server with
  | None -> Alcotest.fail "no accept"
  | Some srv ->
      { ok = Host.received srv = data;
        server_got = Host.received_length srv;
        client_got = Host.received c;
        server_peer_closed = Host.peer_closed srv;
        virtual_time = completion }

let test_e2e_ideal () =
  let o = transfer ~seed:1 Sim.Channel.ideal 100_000 in
  check Alcotest.bool "exact bytes" true o.ok;
  check Alcotest.bool "fin seen" true o.server_peer_closed

let test_e2e_loss_sweep () =
  List.iter
    (fun loss ->
      let o = transfer ~seed:2 (Sim.Channel.lossy loss) 30_000 in
      if not o.ok then Alcotest.failf "loss %.2f: wrong bytes (%d)" loss o.server_got)
    [ 0.01; 0.05; 0.1; 0.2 ]

let test_e2e_harsh_reorder_dup () =
  let o = transfer ~seed:3 Sim.Channel.harsh 50_000 in
  check Alcotest.bool "exact under harsh" true o.ok

let test_e2e_corruption_with_guard () =
  let o = transfer ~seed:4 ~guard:true { Sim.Channel.ideal with corruption = 0.1 } 30_000 in
  check Alcotest.bool "guarded" true o.ok

let test_e2e_empty_stream () =
  let o = transfer ~seed:5 Sim.Channel.ideal 0 in
  check Alcotest.bool "empty ok" true o.ok;
  check Alcotest.bool "fin still delivered" true o.server_peer_closed

let test_e2e_single_byte () =
  let o = transfer ~seed:6 (Sim.Channel.lossy 0.1) 1 in
  check Alcotest.bool "one byte" true o.ok

let test_e2e_bidirectional_echo () =
  let o = transfer ~seed:7 (Sim.Channel.lossy 0.05) ~echo:20_000 30_000 in
  check Alcotest.bool "forward" true o.ok;
  check Alcotest.bool "echo" true (o.client_got = random_data 8 20_000)

(* E10: replace congestion control and connection management without
   touching anything else. *)
let test_replace_cc () =
  List.iter
    (fun cc ->
      let o = transfer ~config:{ Config.default with cc } ~seed:9 (Sim.Channel.lossy 0.03) 40_000 in
      if not o.ok then Alcotest.failf "cc %s failed" cc.Cc.algo_name)
    Cc.all

let test_replace_isn () =
  List.iter
    (fun isn ->
      let o = transfer ~config:{ Config.default with isn } ~seed:10 Sim.Channel.ideal 5_000 in
      if not o.ok then Alcotest.fail "isn swap failed")
    [ Config.Clock; Config.Hashed 123; Config.Counter 1 ]

(* E13: peer sublayers interoperate even when each side picks different
   internal mechanisms (CC and ISN are sender-local choices). *)
let test_peering_mixed_mechanisms () =
  let engine = Sim.Engine.create ~seed:11 () in
  let cfg_a = { Config.default with cc = Cc.cubic; isn = Config.Clock } in
  let cfg_b = { Config.default with cc = Cc.vegas; isn = Config.Hashed 5 } in
  let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let ch dir = Sim.Channel.create engine (Sim.Channel.lossy 0.02) ~size:Bitkit.Slice.length
      ~deliver:(fun s -> !dir s) () in
  let ab = ch to_b and ba = ch to_a in
  let a = Host.create engine ~config:cfg_a ~name:"A"
      ~link:(Sublayer.Link.make ~transmit:(fun s -> Sim.Channel.send ab s) ()) () in
  let b = Host.create engine ~config:cfg_b ~name:"B"
      ~link:(Sublayer.Link.make ~transmit:(fun s -> Sim.Channel.send ba s) ()) () in
  to_a := Host.from_wire a;
  to_b := Host.from_wire b;
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c -> server := Some c);
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data 12 30_000 in
  Host.write c data;
  Host.close c;
  ignore (drive engine [ c ] 120.);
  match !server with
  | Some srv -> check Alcotest.bool "mixed peers interoperate" true (Host.received srv = data)
  | None -> Alcotest.fail "no accept"

let test_regression_rto_survives_ack_cancel () =
  (* Regression: RD once emitted Cancel_timer *after* the `Acked
     indication whose synchronous OSR Transmit had re-armed the RTO,
     silently disarming it and wedging 200 KB transfers at 10% loss
     (seed 55 reproduced it). The transfer must complete and the engine
     must never go idle with data outstanding. *)
  let o = transfer ~seed:55 (Sim.Channel.lossy 0.1) 200_000 in
  check Alcotest.bool "200KB@10%loss completes" true o.ok

(* --- ECN (the Fig 6 OSR bits, end to end) --- *)

let test_mark_ce_rewrites_only_osr () =
  let payload = "data" in
  let osr = Segment.encode_osr Segment.default_osr ~payload in
  let rd =
    Segment.encode_rd
      { Segment.seq = 9; ack = 8; len = 4; has_data = true; has_ack = true; sacks = [] }
      ~payload:osr
  in
  let cm =
    Segment.encode_cm
      { Segment.flags = Segment.no_cm_flags; isn_local = 1; isn_remote = 2 }
      ~payload:rd
  in
  let wire = Segment.encode_dm { Segment.src_port = 1; dst_port = 2 } ~payload:cm in
  let marked = Bitkit.Slice.to_string (Segment.mark_ce (Bitkit.Slice.of_string wire)) in
  check Alcotest.bool "changed" true (marked <> wire);
  (match Segment.decode_dm marked with
  | Some (dm, rest) -> (
      check Alcotest.bool "dm intact" true (dm = { Segment.src_port = 1; dst_port = 2 });
      match Segment.decode_cm rest with
      | Some (_, rd_pdu) -> (
          match Segment.decode_rd rd_pdu with
          | Some (rd, osr_pdu) -> (
              check Alcotest.int "rd intact" 9 rd.Segment.seq;
              match Segment.decode_osr osr_pdu with
              | Some (hdr, p) ->
                  check Alcotest.bool "ce set" true hdr.Segment.ecn_ce;
                  check Alcotest.string "payload intact" payload p
              | None -> Alcotest.fail "osr undecodable")
          | None -> Alcotest.fail "rd undecodable")
      | None -> Alcotest.fail "cm undecodable")
  | None -> Alcotest.fail "dm undecodable");
  (* control segments pass through unchanged *)
  let syn =
    Segment.encode_dm { Segment.src_port = 1; dst_port = 2 }
      ~payload:
        (Segment.encode_cm
           { Segment.flags = { Segment.no_cm_flags with syn = true }; isn_local = 5;
             isn_remote = 0 }
           ~payload:"")
  in
  check Alcotest.string "syn unchanged" syn
    (Bitkit.Slice.to_string (Segment.mark_ce (Bitkit.Slice.of_string syn)))

let ecn_transfer marking =
  let engine = Sim.Engine.create ~seed:5 () in
  let b_ref = ref None in
  let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let ab =
    Sim.Channel.create engine { Sim.Channel.ideal with marking } ~size:Bitkit.Slice.length
      ~mark:Segment.mark_ce
      ~deliver:(fun s -> !to_b s)
      ()
  in
  let ba =
    Sim.Channel.create engine Sim.Channel.ideal ~size:Bitkit.Slice.length
      ~deliver:(fun s -> !to_a s)
      ()
  in
  let received = Buffer.create 16 in
  let a =
    Tcp_sublayered.create engine ~name:"A" Config.default ~local_port:1 ~remote_port:2
      ~transmit:(fun s -> Sim.Channel.send ab s)
      ~events:(fun _ -> ())
  in
  let b =
    Tcp_sublayered.create engine ~name:"B" Config.default ~local_port:2 ~remote_port:1
      ~transmit:(fun s -> Sim.Channel.send ba s)
      ~events:(function
        | `Data s -> (
            Bitkit.Slice.add_to_buffer received s;
            (* consume immediately, as Host's auto-read would *)
            match !b_ref with
            | Some b -> Tcp_sublayered.read b (Bitkit.Slice.length s)
            | None -> ())
        | _ -> ())
  in
  b_ref := Some b;
  to_a := Tcp_sublayered.from_wire a;
  to_b := Tcp_sublayered.from_wire b;
  Tcp_sublayered.listen b;
  Tcp_sublayered.connect a;
  let data = random_data 5 100_000 in
  Tcp_sublayered.write a data;
  Sim.Engine.run ~until:30. engine;
  (Buffer.contents received = data, Tcp_sublayered.cwnd a)

let test_ecn_marks_slow_sender_without_loss () =
  let clean_ok, clean_cwnd = ecn_transfer 0.0 in
  let marked_ok, marked_cwnd = ecn_transfer 0.2 in
  check Alcotest.bool "clean exact" true clean_ok;
  check Alcotest.bool "marked exact (no loss!)" true marked_ok;
  check Alcotest.bool
    (Printf.sprintf "cwnd reduced by marks (%.0f vs %.0f)" marked_cwnd clean_cwnd)
    true
    (marked_cwnd < clean_cwnd /. 2.)

(* --- Message mode (Msg replacing OSR, E15) --- *)

let msg_pair ~seed ~loss =
  let engine = Sim.Engine.create ~seed () in
  let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let ch dir =
    Sim.Channel.create engine (Sim.Channel.lossy loss) ~size:Bitkit.Slice.length
      ~deliver:(fun s -> !dir s)
      ()
  in
  let ab = ch to_b and ba = ch to_a in
  let deliveries = ref [] in
  let a =
    Tcp_messages.create engine ~name:"A" Config.default ~local_port:1 ~remote_port:2
      ~transmit:(fun s -> Sim.Channel.send ab s)
      ~events:(fun _ -> ())
  in
  let b =
    Tcp_messages.create engine ~name:"B" Config.default ~local_port:2 ~remote_port:1
      ~transmit:(fun s -> Sim.Channel.send ba s)
      ~events:(function `Msg m -> deliveries := m :: !deliveries | _ -> ())
  in
  to_a := Tcp_messages.from_wire a;
  to_b := Tcp_messages.from_wire b;
  Tcp_messages.listen b;
  Tcp_messages.connect a;
  (engine, a, deliveries)

let test_msg_exactly_once_any_order () =
  let engine, a, deliveries = msg_pair ~seed:71 ~loss:0.08 in
  let msgs = List.init 50 (fun i -> Printf.sprintf "%03d-%s" i (String.make 100 'x')) in
  List.iter (Tcp_messages.send a) msgs;
  Sim.Engine.run ~until:60. engine;
  let got = List.rev !deliveries in
  check Alcotest.int "all delivered" 50 (List.length got);
  check Alcotest.bool "exactly the sent set" true
    (List.sort compare got = List.sort compare msgs)

let test_msg_avoids_hol_blocking () =
  let engine, a, deliveries = msg_pair ~seed:72 ~loss:0.15 in
  let msgs = List.init 40 (fun i -> Printf.sprintf "%03d" i) in
  List.iter (Tcp_messages.send a) msgs;
  Sim.Engine.run ~until:60. engine;
  let got = List.rev !deliveries in
  check Alcotest.int "all delivered" 40 (List.length got);
  (* under 15% loss some later message overtakes an earlier one *)
  check Alcotest.bool "out-of-order delivery observed" true
    (got <> List.sort compare got)

let test_msg_large_messages_fragment () =
  let engine, a, deliveries = msg_pair ~seed:73 ~loss:0.05 in
  let big = List.init 5 (fun i -> String.make 5_000 (Char.chr (97 + i))) in
  List.iter (Tcp_messages.send a) big;
  Sim.Engine.run ~until:60. engine;
  check Alcotest.bool "fragmented and reassembled" true
    (List.sort compare (List.rev !deliveries) = List.sort compare big)

let test_msg_empty_message () =
  let engine, a, deliveries = msg_pair ~seed:74 ~loss:0.0 in
  Tcp_messages.send a "";
  Tcp_messages.send a "tail";
  Sim.Engine.run ~until:10. engine;
  check Alcotest.bool "empty message survives" true
    (List.sort compare (List.rev !deliveries) = [ ""; "tail" ])

let test_msg_stack_is_a_module_swap () =
  (* The message stack reuses RD/CM/DM unchanged; its segments still obey
     the Figure 6 lower headers, which DM can demultiplex. *)
  let engine, a, _ = msg_pair ~seed:75 ~loss:0.0 in
  Tcp_messages.send a "x";
  Sim.Engine.run ~until:5. engine;
  check Alcotest.bool "finished" true (Tcp_messages.finished a);
  check Alcotest.int "sent" 1 (Tcp_messages.messages_sent a)

(* --- Flow control: slow readers, zero windows, persist probes --- *)

let slow_reader_run factory ~seed =
  let engine = Sim.Engine.create ~seed () in
  let a, b = Host.pair engine ~factory_a:factory ~factory_b:factory Sim.Channel.ideal in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c ->
      Host.set_autoread c false;
      server := Some c);
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data seed 200_000 in
  Host.write c data;
  Host.close c;
  (* The reader consumes nothing: the sender must stall near the 64 KB
     receive buffer. *)
  Sim.Engine.run ~until:10. engine;
  let srv = match !server with Some s -> s | None -> Alcotest.fail "no accept" in
  let stalled_at = Host.received_length srv in
  check Alcotest.bool
    (Printf.sprintf "sender stalled by flow control (%d bytes)" stalled_at)
    true
    (stalled_at <= Config.default.Config.rcv_buf + (2 * Config.default.Config.mss));
  check Alcotest.bool "not finished while stalled" false (Host.finished c);
  (* Now drain with explicit credits and let persist/window updates
     restart the transfer. *)
  Host.set_autoread srv true;
  Host.consume srv stalled_at;
  let rec drive n =
    if n < 400 && not (Host.finished c) then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.5) engine;
      drive (n + 1)
    end
  in
  drive 0;
  check Alcotest.bool "exact after resume" true (Host.received srv = data)

let test_flow_control_sublayered () = slow_reader_run Host.sublayered ~seed:81

let test_flow_control_monolithic () = slow_reader_run Tcp_monolithic.factory ~seed:82

let test_zero_window_survives_long_stall () =
  (* A multi-second stall exercises the persist machinery: the sender
     must neither blast through the closed window nor deadlock. *)
  let engine = Sim.Engine.create ~seed:83 () in
  let a, b = Host.pair engine Sim.Channel.ideal in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c ->
      Host.set_autoread c false;
      server := Some c);
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data 83 150_000 in
  Host.write c data;
  Host.close c;
  Sim.Engine.run ~until:20. engine;
  let srv = match !server with Some s -> s | None -> Alcotest.fail "no accept" in
  let during_stall = Host.received_length srv in
  check Alcotest.bool "window respected during 20s stall" true
    (during_stall <= Config.default.Config.rcv_buf + (2 * Config.default.Config.mss));
  (* resume at t=20 *)
  Host.set_autoread srv true;
  Host.consume srv during_stall;
  let rec drive n =
    if n < 200 && not (Host.finished c) then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.5) engine;
      drive (n + 1)
    end
  in
  drive 0;
  check Alcotest.bool "completes after long stall" true (Host.received srv = data)

let test_window_shrinks_with_backlog () =
  let engine = Sim.Engine.create ~seed:84 () in
  let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let ch dir =
    Sim.Channel.create engine Sim.Channel.ideal ~size:Bitkit.Slice.length
      ~deliver:(fun s -> !dir s) ()
  in
  let ab = ch to_b and ba = ch to_a in
  let a =
    Tcp_sublayered.create engine ~name:"A" Config.default ~local_port:1 ~remote_port:2
      ~transmit:(fun s -> Sim.Channel.send ab s)
      ~events:(fun _ -> ())
  in
  let b =
    Tcp_sublayered.create engine ~name:"B" Config.default ~local_port:2 ~remote_port:1
      ~transmit:(fun s -> Sim.Channel.send ba s)
      ~events:(fun _ -> ())
  in
  to_a := Tcp_sublayered.from_wire a;
  to_b := Tcp_sublayered.from_wire b;
  Tcp_sublayered.listen b;
  Tcp_sublayered.connect a;
  Tcp_sublayered.write a (random_data 84 10_000);
  Sim.Engine.run ~until:5. engine;
  (* nobody consumed: ~10 KB of backlog must be reflected in A's view of
     B's window. Acks are generated by RD before OSR counts the bytes
     (strict sublayering), so the advertisement can lag by one segment. *)
  let w = Tcp_sublayered.peer_window_of a in
  let buf = Config.default.Config.rcv_buf in
  if w < buf - 10_000 || w > buf - 10_000 + Config.default.Config.mss then
    Alcotest.failf "window %d outside [%d, %d]" w (buf - 10_000)
      (buf - 10_000 + Config.default.Config.mss);
  (* consuming plus one more round trip restores it *)
  Tcp_sublayered.read b 10_000;
  Tcp_sublayered.write a "x";
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 5.) engine;
  check Alcotest.bool "window restored after read" true
    (Tcp_sublayered.peer_window_of a >= buf - Config.default.Config.mss)

(* --- Watson timer-based CM (whole-sublayer replacement, E10) --- *)

let watson_transfer ?(loss = 0.0) ?(echo = 0) ~seed bytes =
  let engine = Sim.Engine.create ~seed () in
  let w = Tcp_watson.factory () in
  let a, b = Host.pair engine ~factory_a:w ~factory_b:w (Sim.Channel.lossy loss) in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c ->
      server := Some c;
      if echo > 0 then Host.write c (random_data (seed + 1) echo));
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data seed bytes in
  Host.write c data;
  Sim.Engine.run ~until:120. engine;
  (c, !server, data)

let test_watson_delivers () =
  List.iter
    (fun loss ->
      let _, server, data = watson_transfer ~loss ~seed:30 40_000 in
      match server with
      | Some srv ->
          if Host.received srv <> data then Alcotest.failf "loss %.2f mismatch" loss
      | None -> Alcotest.fail "no accept")
    [ 0.0; 0.03 ]

let test_watson_bidirectional () =
  let c, server, data = watson_transfer ~loss:0.02 ~echo:15_000 ~seed:31 25_000 in
  match server with
  | Some srv ->
      check Alcotest.bool "forward" true (Host.received srv = data);
      check Alcotest.bool "echo" true (Host.received c = random_data 32 15_000)
  | None -> Alcotest.fail "no accept"

let test_watson_idle_closure () =
  (* With no handshake there is also no FIN: state evaporates by timer. *)
  let c, server, _ = watson_transfer ~seed:33 1_000 in
  check Alcotest.bool "client closed by idle timer" true (Host.closed c);
  match server with
  | Some srv -> check Alcotest.bool "server saw peer vanish" true (Host.peer_closed srv)
  | None -> Alcotest.fail "no accept"

let test_watson_skips_handshake_rtt () =
  (* The timer-based scheme sends data immediately (0-RTT); the three-way
     handshake costs the classic extra round trip before the first byte. *)
  let first_byte factory =
    let engine = Sim.Engine.create ~seed:34 () in
    let channel = { Sim.Channel.ideal with delay = 0.05 } in
    let a, b = Host.pair engine ~factory_a:factory ~factory_b:factory channel in
    Host.listen b ~port:80;
    let arrival = ref infinity in
    Host.on_accept b (fun c ->
        Host.on_data c (fun _ ->
            if !arrival = infinity then arrival := Sim.Engine.now engine));
    let c = Host.connect a ~remote_port:80 () in
    Host.write c "first";
    Sim.Engine.run ~until:30. engine;
    !arrival
  in
  let watson = first_byte (Tcp_watson.factory ()) in
  let classic = first_byte Host.sublayered in
  check Alcotest.bool
    (Printf.sprintf "watson %.3f at one-way delay, classic %.3f later" watson classic)
    true
    (watson < 0.06 && classic > watson +. 0.09)

let test_watson_rejects_stale_identity () =
  let engine = Sim.Engine.create ~seed:35 () in
  let received = ref 0 in
  let b =
    Tcp_watson.create engine ~name:"B" Config.default ~local_port:80 ~remote_port:1
      ~transmit:(fun _ -> ())
      ~events:(function `Data _ -> incr received | _ -> ())
  in
  Tcp_watson.listen b;
  (* First contact with identity (111, 0). *)
  let seg ~isn_local ~isn_remote seq payload =
    Bitkit.Slice.of_string
    @@ Segment.encode_dm { Segment.src_port = 1; dst_port = 80 }
      ~payload:
        (Segment.encode_cm
           { Segment.flags = Segment.no_cm_flags; isn_local; isn_remote }
           ~payload:
             (Segment.encode_rd
                { Segment.seq; ack = 0; len = String.length payload; has_data = true;
                  has_ack = false; sacks = [] }
                ~payload:(Segment.encode_osr Segment.default_osr ~payload)))
  in
  Tcp_watson.from_wire b (seg ~isn_local:111 ~isn_remote:0 112 "live");
  let live = !received in
  (* A delayed duplicate from an older incarnation must be ignored. *)
  Tcp_watson.from_wire b (seg ~isn_local:999 ~isn_remote:0 1000 "ghost");
  check Alcotest.int "live data delivered" 1 live;
  check Alcotest.int "stale incarnation dropped" live !received

(* --- Nagle and delayed acks (classic TCP features, E16) --- *)

let test_nagle_coalesces_tinygrams () =
  let writes = List.init 40 (fun i -> Printf.sprintf "w%02d" i) in
  let run nagle =
    let config = { Config.default with nagle } in
    let engine = Sim.Engine.create ~seed:62 () in
    let channel = { Sim.Channel.ideal with delay = 0.01 } in
    let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let ch dir =
      Sim.Channel.create engine channel ~size:Bitkit.Slice.length
        ~deliver:(fun s -> !dir s) ()
    in
    let ab = ch to_b and ba = ch to_a in
    let received = Buffer.create 256 in
    let a =
      Tcp_sublayered.create engine ~name:"A" config ~local_port:1 ~remote_port:2
        ~transmit:(fun s -> Sim.Channel.send ab s)
        ~events:(fun _ -> ())
    in
    let b =
      Tcp_sublayered.create engine ~name:"B" config ~local_port:2 ~remote_port:1
        ~transmit:(fun s -> Sim.Channel.send ba s)
        ~events:(function
          | `Data s -> Bitkit.Slice.add_to_buffer received s
          | _ -> ())
    in
    to_a := Tcp_sublayered.from_wire a;
    to_b := Tcp_sublayered.from_wire b;
    Tcp_sublayered.listen b;
    Tcp_sublayered.connect a;
    (* after establishment, burst tiny writes while the first segment is
       still in flight *)
    ignore
      (Sim.Engine.at engine ~time:1.0 (fun () ->
           List.iter (Tcp_sublayered.write a) writes));
    Sim.Engine.run ~until:30. engine;
    let ok = Buffer.contents received = String.concat "" writes in
    (ok, (Tcp_sublayered.osr_stats a).Osr.segments_out)
  in
  let ok_off, segs_off = run false in
  let ok_on, segs_on = run true in
  check Alcotest.bool "exact without nagle" true ok_off;
  check Alcotest.bool "exact with nagle" true ok_on;
  check Alcotest.bool
    (Printf.sprintf "nagle coalesces (%d vs %d segments)" segs_on segs_off)
    true
    (segs_on * 4 <= segs_off)

let test_delayed_ack_halves_pure_acks () =
  let run delayed_ack =
    let config = { Config.default with delayed_ack } in
    let engine = Sim.Engine.create ~seed:63 () in
    let b_ref = ref None in
    let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let ch dir =
      Sim.Channel.create engine { Sim.Channel.ideal with delay = 0.005 }
        ~size:Bitkit.Slice.length ~deliver:(fun s -> !dir s) ()
    in
    let ab = ch to_b and ba = ch to_a in
    let received = Buffer.create 256 in
    let a =
      Tcp_sublayered.create engine ~name:"A" config ~local_port:1 ~remote_port:2
        ~transmit:(fun s -> Sim.Channel.send ab s)
        ~events:(fun _ -> ())
    in
    let b =
      Tcp_sublayered.create engine ~name:"B" config ~local_port:2 ~remote_port:1
        ~transmit:(fun s -> Sim.Channel.send ba s)
        ~events:(function
          | `Data s -> (
              Bitkit.Slice.add_to_buffer received s;
              match !b_ref with
              | Some b -> Tcp_sublayered.read b (Bitkit.Slice.length s)
              | None -> ())
          | _ -> ())
    in
    b_ref := Some b;
    to_a := Tcp_sublayered.from_wire a;
    to_b := Tcp_sublayered.from_wire b;
    Tcp_sublayered.listen b;
    Tcp_sublayered.connect a;
    let data = random_data 63 80_000 in
    Tcp_sublayered.write a data;
    Sim.Engine.run ~until:30. engine;
    let ok = Buffer.contents received = data in
    (ok, (Tcp_sublayered.rd_stats b).Rd.acks_only)
  in
  let ok_off, acks_off = run false in
  let ok_on, acks_on = run true in
  check Alcotest.bool "exact eager" true ok_off;
  check Alcotest.bool "exact delayed" true ok_on;
  check Alcotest.bool
    (Printf.sprintf "fewer pure acks (%d vs %d)" acks_on acks_off)
    true
    (Float.of_int acks_on <= 0.7 *. Float.of_int acks_off)

let test_delayed_ack_never_delays_dupacks () =
  (* Gaps must be acked immediately or fast retransmit dies; a lossy
     transfer with delayed acks must still complete promptly. *)
  let config = { Config.default with delayed_ack = true } in
  let o = transfer ~config ~seed:64 (Sim.Channel.lossy 0.05) 60_000 in
  check Alcotest.bool "exact" true o.ok;
  check Alcotest.bool (Printf.sprintf "prompt (%.2fs)" o.virtual_time) true
    (o.virtual_time < 10.)

let test_nagle_delack_pathology () =
  (* The classic interaction: with Nagle on, a sub-MSS write queued behind
     an unacked one waits for the peer's *delayed* ack. *)
  let finish ~nagle ~delayed_ack =
    let config = { Config.default with nagle; delayed_ack } in
    let engine = Sim.Engine.create ~seed:65 () in
    let channel = { Sim.Channel.ideal with delay = 0.001 } in
    let a, b = Host.pair engine ~config channel in
    Host.listen b ~port:80;
    let done_at = ref infinity in
    let want = String.length "part-1part-2" in
    Host.on_accept b (fun c ->
        Host.on_data c (fun _ ->
            if Host.received_length c >= want && !done_at = infinity then
              done_at := Sim.Engine.now engine));
    let c = Host.connect a ~remote_port:80 () in
    ignore
      (Sim.Engine.at engine ~time:1.0 (fun () ->
           Host.write c "part-1";
           Host.write c "part-2"));
    Sim.Engine.run ~until:5. engine;
    !done_at -. 1.0
  in
  let plain = finish ~nagle:true ~delayed_ack:false in
  let pathological = finish ~nagle:true ~delayed_ack:true in
  check Alcotest.bool
    (Printf.sprintf "delayed ack inflates nagled latency (%.3f vs %.3f)" pathological
       plain)
    true
    (pathological > plain +. 0.8 *. Config.default.Config.ack_delay)

(* --- The record (security) sublayer and the secure stack --- *)

let test_rec_seal_open () =
  let a = Rec.initial ~key:Tcp_secure.demo_key ~local_port:1 ~remote_port:2 () in
  let b = Rec.initial ~key:Tcp_secure.demo_key ~local_port:2 ~remote_port:1 () in
  let a, record = Rec.seal a "hello record layer" in
  check Alcotest.(option string) "roundtrip" (Some "hello record layer")
    (Rec.open_ b record);
  (* sequence numbers advance, ciphertexts differ for equal plaintexts *)
  let _, record2 = Rec.seal a "hello record layer" in
  check Alcotest.bool "nonce advances" true (record <> record2)

let test_rec_tamper_rejected () =
  let a = Rec.initial ~key:Tcp_secure.demo_key ~local_port:1 ~remote_port:2 () in
  let b = Rec.initial ~key:Tcp_secure.demo_key ~local_port:2 ~remote_port:1 () in
  let _, record = Rec.seal a "payload" in
  for i = 0 to String.length record - 1 do
    let forged = Bytes.of_string record in
    Bytes.set forged i (Char.chr (Char.code record.[i] lxor 0x20));
    match Rec.open_ b (Bytes.to_string forged) with
    | Some _ -> Alcotest.failf "tamper at byte %d accepted" i
    | None -> ()
  done;
  check Alcotest.bool "failures counted" true (Rec.auth_failures b >= String.length record)

let test_rec_wrong_key_and_direction () =
  let a = Rec.initial ~key:Tcp_secure.demo_key ~local_port:1 ~remote_port:2 () in
  let wrong =
    Rec.initial ~key:(String.make 32 'x') ~local_port:2 ~remote_port:1 ()
  in
  let a', record = Rec.seal a "secret" in
  check Alcotest.(option string) "wrong key" None (Rec.open_ wrong record);
  (* a's own record must not open at a (direction binding) *)
  check Alcotest.(option string) "reflected record" None (Rec.open_ a' record);
  check Alcotest.(option string) "truncated" None (Rec.open_ a' "short")

let secure_pair ?(channel = Sim.Channel.ideal) ?key_b ~seed () =
  let engine = Sim.Engine.create ~seed () in
  let fa = Tcp_secure.factory ~key:Tcp_secure.demo_key in
  let fb =
    Tcp_secure.factory ~key:(Option.value ~default:Tcp_secure.demo_key key_b)
  in
  let a, b = Host.pair engine ~factory_a:fa ~factory_b:fb channel in
  (engine, a, b)

let test_secure_e2e_corruption_no_guard () =
  (* authentication subsumes the CRC guard: a corrupting+lossy channel
     still yields the exact stream *)
  let engine, a, b =
    secure_pair ~channel:{ (Sim.Channel.lossy 0.03) with corruption = 0.05 } ~seed:51 ()
  in
  Host.listen b ~port:80;
  let server = ref None in
  Host.on_accept b (fun c -> server := Some c);
  let c = Host.connect a ~remote_port:80 () in
  let data = random_data 51 80_000 in
  Host.write c data;
  Host.close c;
  ignore (drive engine [ c ] 120.);
  match !server with
  | Some srv -> check Alcotest.bool "exact through corruption" true (Host.received srv = data)
  | None -> Alcotest.fail "no accept"

let test_secure_wrong_key_no_connection () =
  let engine, a, b = secure_pair ~key_b:(String.make 32 'z') ~seed:52 () in
  Host.listen b ~port:80;
  let accepted = ref false in
  Host.on_accept b (fun _ -> accepted := true);
  let c = Host.connect a ~remote_port:80 () in
  Sim.Engine.run ~until:60. engine;
  check Alcotest.bool "no establishment across keys" false !accepted;
  check Alcotest.bool "client reset or closed" true (Host.was_reset c || Host.closed c)

let test_secure_no_plaintext_on_wire () =
  let engine = Sim.Engine.create ~seed:53 () in
  let seen = Buffer.create 4096 in
  let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let ch dir =
    Sim.Channel.create engine Sim.Channel.ideal ~size:Bitkit.Slice.length
      ~deliver:(fun s ->
        Buffer.add_string seen (Bitkit.Slice.to_string s);
        !dir s)
      ()
  in
  let ab = ch to_b and ba = ch to_a in
  let a =
    Tcp_secure.create engine ~key:Tcp_secure.demo_key ~name:"A" Config.default
      ~local_port:1 ~remote_port:2
      ~transmit:(fun s -> Sim.Channel.send ab s)
      ~events:(fun _ -> ())
  in
  let received = Buffer.create 64 in
  let b =
    Tcp_secure.create engine ~key:Tcp_secure.demo_key ~name:"B" Config.default
      ~local_port:2 ~remote_port:1
      ~transmit:(fun s -> Sim.Channel.send ba s)
      ~events:(function
        | `Data s -> Bitkit.Slice.add_to_buffer received s
        | _ -> ())
  in
  to_a := Tcp_secure.from_wire a;
  to_b := Tcp_secure.from_wire b;
  Tcp_secure.listen b;
  Tcp_secure.connect a;
  let secret = "TOP-SECRET-SUBLAYER-PAYLOAD" in
  Tcp_secure.write a secret;
  Sim.Engine.run ~until:10. engine;
  check Alcotest.string "delivered" secret (Buffer.contents received);
  let wire = Buffer.contents seen in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "wire carries traffic" true (String.length wire > 100);
  check Alcotest.bool "plaintext never on the wire" false (contains wire secret)

(* --- Monolithic baseline --- *)

let test_mono_e2e () =
  let o =
    transfer ~fa:Tcp_monolithic.factory ~fb:Tcp_monolithic.factory ~seed:13
      (Sim.Channel.lossy 0.05) 50_000
  in
  check Alcotest.bool "monolithic exact" true o.ok

let test_mono_harsh () =
  let o =
    transfer ~fa:Tcp_monolithic.factory ~fb:Tcp_monolithic.factory ~seed:14
      Sim.Channel.harsh 30_000
  in
  check Alcotest.bool "monolithic harsh" true o.ok

let test_mono_checksum_drops_corruption () =
  let o =
    transfer ~fa:Tcp_monolithic.factory ~fb:Tcp_monolithic.factory ~seed:15
      { Sim.Channel.ideal with corruption = 0.1 } 20_000
  in
  check Alcotest.bool "standard checksum protects" true o.ok

(* --- Shim interop (E4) --- *)

let test_shim_translation_isomorphism () =
  (* sub -> std -> decode: field mapping on a data segment *)
  let shim = Shim.create () in
  (* teach the shim the handshake *)
  let syn =
    Segment.encode_dm { Segment.src_port = 1; dst_port = 2 }
      ~payload:(Segment.encode_cm
                  { Segment.flags = { Segment.no_cm_flags with syn = true };
                    isn_local = 1000; isn_remote = 0 }
                  ~payload:"")
  in
  (match Shim.sub_to_std shim syn with
  | [ wire ] -> (
      match Wire.decode wire with
      | Some (h, _) ->
          check Alcotest.bool "syn flag" true h.Wire.flags.Wire.syn;
          check Alcotest.int "seq = isn" 1000 h.Wire.seq
      | None -> Alcotest.fail "undecodable std syn")
  | _ -> Alcotest.fail "expected one segment");
  (* a standard SYN|ACK back *)
  let synack =
    Wire.encode
      { Wire.src_port = 2; dst_port = 1; seq = 2000; ack = 1001;
        flags = { Wire.no_flags with syn = true; ack = true }; window = 4096 }
      ~payload:""
  in
  match Shim.std_to_sub shim synack with
  | [ seg ] -> (
      match Segment.decode_dm seg with
      | Some (_, rest) -> (
          match Segment.decode_cm rest with
          | Some (cm, _) ->
              check Alcotest.bool "syn+ack" true
                (cm.Segment.flags.Segment.syn && cm.Segment.flags.Segment.ack);
              check Alcotest.int "peer isn" 2000 cm.Segment.isn_local;
              check Alcotest.int "echoed isn" 1000 cm.Segment.isn_remote
          | None -> Alcotest.fail "bad cm")
      | None -> Alcotest.fail "bad dm")
  | _ -> Alcotest.fail "expected one sublayered segment"

let test_interop_both_directions () =
  List.iter
    (fun (fa, fb, name) ->
      let o = transfer ~fa ~fb ~seed:16 (Sim.Channel.lossy 0.05) 40_000 in
      if not o.ok then Alcotest.failf "%s failed" name)
    [ (Shim.factory, Tcp_monolithic.factory, "shim->mono");
      (Tcp_monolithic.factory, Shim.factory, "mono->shim");
      (Shim.factory, Shim.factory, "shim->shim") ]

let test_interop_bidirectional () =
  let o =
    transfer ~fa:Shim.factory ~fb:Tcp_monolithic.factory ~seed:17 ~echo:15_000
      (Sim.Channel.lossy 0.02) 25_000
  in
  check Alcotest.bool "forward" true o.ok;
  check Alcotest.bool "echo back" true (o.client_got = random_data 18 15_000)

(* --- Host: multiple concurrent connections --- *)

let test_host_multiplexing () =
  let engine = Sim.Engine.create ~seed:19 () in
  let a, b = Host.pair engine Sim.Channel.ideal in
  Host.listen b ~port:80;
  Host.listen b ~port:81;
  let inboxes = Hashtbl.create 8 in
  Host.on_accept b (fun c -> Hashtbl.replace inboxes (Host.local_port c, Host.remote_port c) c);
  let conns =
    List.init 6 (fun i ->
        let port = if i mod 2 = 0 then 80 else 81 in
        let c = Host.connect a ~remote_port:port () in
        Host.write c (Printf.sprintf "conn-%d-data" i);
        Host.close c;
        (i, c))
  in
  ignore (drive engine (List.map snd conns) 60.);
  List.iter
    (fun (i, c) ->
      let key = (Host.remote_port c, Host.local_port c) in
      match Hashtbl.find_opt inboxes key with
      | Some srv ->
          check Alcotest.string (Printf.sprintf "conn %d demuxed" i)
            (Printf.sprintf "conn-%d-data" i) (Host.received srv)
      | None -> Alcotest.failf "connection %d never accepted" i)
    conns;
  check Alcotest.int "six server conns" 6 (Hashtbl.length inboxes)

let test_host_no_listener_ignored () =
  let engine = Sim.Engine.create ~seed:20 () in
  let a, _b = Host.pair engine Sim.Channel.ideal in
  let c = Host.connect a ~remote_port:9999 () in
  Sim.Engine.run ~until:60. engine;
  (* CM gives up after syn_retries and reports a reset *)
  check Alcotest.bool "reset reported" true (Host.was_reset c || Host.closed c)

(* --- sublayered vs monolithic behavioural comparison (E12 support) --- *)

let test_sub_and_mono_same_outcomes () =
  List.iter
    (fun loss ->
      let s = transfer ~seed:21 (Sim.Channel.lossy loss) 30_000 in
      let m =
        transfer ~fa:Tcp_monolithic.factory ~fb:Tcp_monolithic.factory ~seed:21
          (Sim.Channel.lossy loss) 30_000
      in
      check Alcotest.bool "both deliver" true (s.ok && m.ok);
      (* completion times comparable (the drive loop quantises to 0.5 s
         slices, so compare with an absolute tolerance) *)
      if Float.abs (s.virtual_time -. m.virtual_time) > 2.0 then
        Alcotest.failf "loss %.2f: times diverge %.2f vs %.2f" loss s.virtual_time
          m.virtual_time)
    [ 0.0; 0.05 ]

let () =
  Alcotest.run "transport"
    [
      ( "segment",
        [
          Alcotest.test_case "dm codec" `Quick test_dm_codec;
          Alcotest.test_case "cm codec" `Quick test_cm_codec;
          Alcotest.test_case "rd codec + sacks" `Quick test_rd_codec_with_sacks;
          Alcotest.test_case "osr codec" `Quick test_osr_codec;
          prop_onion_roundtrip;
          Alcotest.test_case "T3 layout audit" `Quick test_layout_t3;
        ] );
      ( "wire",
        [
          Alcotest.test_case "codec" `Quick test_wire_codec;
          Alcotest.test_case "checksum rejects" `Quick test_wire_checksum_rejects;
          Alcotest.test_case "options skipped" `Quick test_wire_options_skipped;
          prop_wire_roundtrip;
        ] );
      ( "isn",
        [
          Alcotest.test_case "generators" `Quick test_isn_generators;
          Alcotest.test_case "counter predictability" `Quick test_isn_predictability;
          Alcotest.test_case "off-path attack success" `Quick test_isn_attack_success;
          Alcotest.test_case "hashed separates tuples" `Quick test_isn_hashed_separates_tuples;
        ] );
      ( "cc",
        [
          Alcotest.test_case "reno dynamics" `Quick test_cc_reno_dynamics;
          Alcotest.test_case "all algorithms sane" `Quick test_cc_all_algorithms_sane;
          Alcotest.test_case "fixed constant" `Quick test_cc_fixed_constant;
        ] );
      ("ranges", [ Alcotest.test_case "intervals" `Quick test_ranges; prop_ranges_model ]);
      ( "cm",
        [
          Alcotest.test_case "handshake (pure)" `Quick test_cm_handshake_pure;
          Alcotest.test_case "old incarnation rejected" `Quick test_cm_rejects_old_incarnation;
          Alcotest.test_case "syn retx + give up" `Quick test_cm_syn_retransmission_and_give_up;
          Alcotest.test_case "simultaneous open" `Quick test_cm_simultaneous_open;
          Alcotest.test_case "malformed handshake rsts" `Quick
            test_cm_malformed_handshake_rst;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "ideal 100KB" `Quick test_e2e_ideal;
          Alcotest.test_case "loss sweep (E3)" `Slow test_e2e_loss_sweep;
          Alcotest.test_case "harsh channel" `Quick test_e2e_harsh_reorder_dup;
          Alcotest.test_case "corruption + guard" `Quick test_e2e_corruption_with_guard;
          Alcotest.test_case "empty stream" `Quick test_e2e_empty_stream;
          Alcotest.test_case "single byte" `Quick test_e2e_single_byte;
          Alcotest.test_case "bidirectional echo" `Quick test_e2e_bidirectional_echo;
          Alcotest.test_case "regression: rto vs ack ordering" `Slow
            test_regression_rto_survives_ack_cancel;
        ] );
      ( "replace",
        [
          Alcotest.test_case "congestion control swap (E10)" `Slow test_replace_cc;
          Alcotest.test_case "isn swap (E10)" `Quick test_replace_isn;
          Alcotest.test_case "mixed peers (E13)" `Quick test_peering_mixed_mechanisms;
        ] );
      ( "ecn",
        [
          Alcotest.test_case "mark_ce surgical" `Quick test_mark_ce_rewrites_only_osr;
          Alcotest.test_case "marks slow sender, no loss" `Quick
            test_ecn_marks_slow_sender_without_loss;
        ] );
      ( "messages",
        [
          Alcotest.test_case "exactly once, any order" `Quick test_msg_exactly_once_any_order;
          Alcotest.test_case "avoids HOL blocking (E15)" `Quick test_msg_avoids_hol_blocking;
          Alcotest.test_case "fragmentation" `Quick test_msg_large_messages_fragment;
          Alcotest.test_case "empty message" `Quick test_msg_empty_message;
          Alcotest.test_case "module swap reuses stack" `Quick test_msg_stack_is_a_module_swap;
        ] );
      ( "features",
        [
          Alcotest.test_case "nagle coalesces" `Quick test_nagle_coalesces_tinygrams;
          Alcotest.test_case "delayed acks reduce acks" `Quick test_delayed_ack_halves_pure_acks;
          Alcotest.test_case "delayed acks keep dupacks prompt" `Quick
            test_delayed_ack_never_delays_dupacks;
          Alcotest.test_case "nagle x delayed-ack pathology" `Quick test_nagle_delack_pathology;
        ] );
      ( "secure",
        [
          Alcotest.test_case "seal/open" `Quick test_rec_seal_open;
          Alcotest.test_case "tamper rejected" `Quick test_rec_tamper_rejected;
          Alcotest.test_case "wrong key / direction" `Quick test_rec_wrong_key_and_direction;
          Alcotest.test_case "e2e corruption, no guard" `Quick test_secure_e2e_corruption_no_guard;
          Alcotest.test_case "key mismatch refuses" `Quick test_secure_wrong_key_no_connection;
          Alcotest.test_case "no plaintext on wire" `Quick test_secure_no_plaintext_on_wire;
        ] );
      ( "flow-control",
        [
          Alcotest.test_case "slow reader stalls sender (sublayered)" `Quick
            test_flow_control_sublayered;
          Alcotest.test_case "slow reader stalls sender (monolithic)" `Quick
            test_flow_control_monolithic;
          Alcotest.test_case "zero-window stall + persist" `Quick
            test_zero_window_survives_long_stall;
          Alcotest.test_case "advertised window tracks backlog" `Quick
            test_window_shrinks_with_backlog;
        ] );
      ( "watson",
        [
          Alcotest.test_case "delivers" `Quick test_watson_delivers;
          Alcotest.test_case "bidirectional" `Quick test_watson_bidirectional;
          Alcotest.test_case "idle-timer closure" `Quick test_watson_idle_closure;
          Alcotest.test_case "0-RTT vs handshake" `Quick test_watson_skips_handshake_rtt;
          Alcotest.test_case "stale incarnation dropped" `Quick test_watson_rejects_stale_identity;
        ] );
      ( "monolithic",
        [
          Alcotest.test_case "e2e loss" `Quick test_mono_e2e;
          Alcotest.test_case "harsh" `Quick test_mono_harsh;
          Alcotest.test_case "checksum vs corruption" `Quick test_mono_checksum_drops_corruption;
        ] );
      ( "shim",
        [
          Alcotest.test_case "header translation" `Quick test_shim_translation_isomorphism;
          Alcotest.test_case "interop both directions (E4)" `Slow test_interop_both_directions;
          Alcotest.test_case "interop bidirectional" `Quick test_interop_bidirectional;
        ] );
      ( "host",
        [
          Alcotest.test_case "multiplexing" `Quick test_host_multiplexing;
          Alcotest.test_case "no listener" `Quick test_host_no_listener_ignored;
          Alcotest.test_case "take_received" `Quick test_host_take_received;
        ] );
      ( "comparison",
        [ Alcotest.test_case "sub vs mono outcomes" `Slow test_sub_and_mono_same_outcomes ] );
    ]
