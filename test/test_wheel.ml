(* Scheduler-backend equivalence: the timing wheel must fire the exact
   same (label, time) stream as the reference binary heap under
   randomized schedule/cancel interleavings — including same-tick ties,
   zero and sub-tick delays, far-future overflow timers, nested
   scheduling from inside callbacks, and bounded runs — with the
   [live = pending] accounting invariant holding on both throughout. *)

open Sim

(* One randomized episode against the given backend: returns the fired
   (label, time) stream plus final clock/fired counters. All randomness
   comes from a seeded side stream, never from engine state, so the heap
   and wheel episodes for one seed see identical operation sequences. *)
let scenario backend seed =
  let engine = Engine.create ~seed:42 ~backend () in
  let rng = Bitkit.Rng.create seed in
  let log = ref [] in
  let handles = ref [] in
  let next_label = ref 0 in
  let delay rng =
    match Bitkit.Rng.int rng 6 with
    | 0 -> 0.
    | 1 -> 1e-9
    (* Exact multiples of the wheel's 1 ms tick: same-tick ties. *)
    | 2 -> float_of_int (Bitkit.Rng.int rng 50) *. 1e-3
    | 3 -> Bitkit.Rng.float rng *. 2.
    (* Beyond the ~1 s L0 window. *)
    | 4 -> 2. +. (Bitkit.Rng.float rng *. 600.)
    (* Beyond the ~17 min L1 horizon: overflow-heap territory. *)
    | _ -> 2000. +. (Bitkit.Rng.float rng *. 5000.)
  in
  for _round = 1 to 40 do
    let burst = 1 + Bitkit.Rng.int rng 12 in
    for _ = 1 to burst do
      let label = !next_label in
      incr next_label;
      let h =
        Engine.schedule engine ~after:(delay rng) (fun () ->
            log := (label, Engine.now engine) :: !log;
            if label mod 7 = 0 then
              ignore
                (Engine.schedule engine
                   ~after:(float_of_int (label mod 5) *. 1e-3)
                   (fun () -> log := (-label - 1, Engine.now engine) :: !log)))
      in
      handles := h :: !handles
    done;
    (* Cancel a random subset; fired handles stay in the list on purpose,
       so cancel-after-fire no-ops are exercised too. *)
    handles :=
      List.filter
        (fun h ->
          if Bitkit.Rng.coin rng 0.3 then begin
            Engine.cancel h;
            false
          end
          else true)
        !handles;
    (match Bitkit.Rng.int rng 4 with
    | 0 -> Engine.run ~until:(Engine.now engine +. Bitkit.Rng.float rng) engine
    | 1 ->
        Engine.run
          ~until:(Engine.now engine +. (Bitkit.Rng.float rng *. 50.))
          engine
    | 2 -> Engine.run ~max_events:(1 + Bitkit.Rng.int rng 20) engine
    | _ -> ());
    Alcotest.(check int)
      "live = pending" (Engine.live engine) (Engine.pending engine)
  done;
  Engine.run engine;
  Alcotest.(check int) "drained live" 0 (Engine.live engine);
  Alcotest.(check int) "drained pending" 0 (Engine.pending engine);
  (List.rev !log, Engine.now engine, Engine.events_fired engine)

let test_equivalence () =
  for seed = 1 to 8 do
    let wheel = scenario `Wheel seed in
    let heap = scenario `Heap seed in
    let w_log, w_clock, w_fired = wheel in
    let h_log, h_clock, h_fired = heap in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: fired counts" seed)
      h_fired w_fired;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: final clocks equal" seed)
      true
      (w_clock = h_clock);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: identical (label, time) streams" seed)
      true (w_log = h_log)
  done

(* Same tick, different insertion order: the wheel's front heap must
   restore exact FIFO-on-ties, across an L1 cascade and an overflow
   migration as well as direct L0 drains. *)
let test_same_tick_ties () =
  List.iter
    (fun base ->
      let engine = Engine.create () in
      let order = ref [] in
      for i = 0 to 9 do
        ignore
          (Engine.at engine ~time:base (fun () -> order := i :: !order))
      done;
      Engine.run engine;
      Alcotest.(check (list int))
        (Printf.sprintf "FIFO at t=%g" base)
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        (List.rev !order);
      Alcotest.(check bool)
        (Printf.sprintf "clock at t=%g" base)
        true
        (Engine.now engine = base))
    [ 0.5; 700.; 3600. ]

(* Far-future timers park in the overflow heap; cancelling most of them
   must still compact, and the survivors fire in order. *)
let test_overflow_cancel_compact () =
  let engine = Engine.create () in
  let fired = ref [] in
  let handles =
    List.init 1000 (fun i ->
        ( i,
          Engine.at engine
            ~time:(3000. +. float_of_int i)
            (fun () -> fired := i :: !fired) ))
  in
  List.iter (fun (i, h) -> if i mod 10 <> 0 then Engine.cancel h) handles;
  Alcotest.(check int) "live after cancels" 100 (Engine.live engine);
  Alcotest.(check int) "pending agrees" 100 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "survivors fired" 100 (List.length !fired);
  Alcotest.(check (list int))
    "in order"
    (List.init 100 (fun i -> 10 * i))
    (List.rev !fired);
  Alcotest.(check bool) "compacted" true (Engine.compactions engine > 0)

(* The O(1) [pending] counter must agree with the O(total) [pending_scan]
   audit at every point of a randomized cancel storm — including double
   cancels, cancel-after-fire, and cancels that land in the overflow
   heap — on both backends. *)
let test_pending_counter_audit () =
  List.iter
    (fun backend ->
      let engine = Engine.create ~backend () in
      let rng = Bitkit.Rng.create 99 in
      let handles = ref [] in
      for _round = 1 to 30 do
        for _ = 1 to 1 + Bitkit.Rng.int rng 40 do
          let h =
            Engine.schedule engine
              ~after:(Bitkit.Rng.float rng *. 4000.)
              ignore
          in
          handles := h :: !handles
        done;
        (* Storm: cancel a random subset, then re-cancel some of the very
           same handles (no-ops) and some already-fired ones. *)
        List.iter
          (fun h -> if Bitkit.Rng.coin rng 0.5 then Engine.cancel h)
          !handles;
        List.iter
          (fun h -> if Bitkit.Rng.coin rng 0.2 then Engine.cancel h)
          !handles;
        if Bitkit.Rng.coin rng 0.5 then
          Engine.run ~until:(Engine.now engine +. Bitkit.Rng.float rng) engine;
        Alcotest.(check int)
          (Printf.sprintf "counter = scan (%s)"
             (match backend with `Wheel -> "wheel" | `Heap -> "heap"))
          (Engine.pending_scan engine)
          (Engine.pending engine)
      done;
      Engine.run engine;
      Alcotest.(check int) "drained: counter = scan"
        (Engine.pending_scan engine)
        (Engine.pending engine);
      Alcotest.(check int) "drained: counter = 0" 0 (Engine.pending engine))
    [ `Wheel; `Heap ]

(* A bounded run must not degrade the wheel: events scheduled after a
   long empty [run ~until] still fire in exact order. *)
let test_schedule_after_bounded_run () =
  let engine = Engine.create () in
  Engine.run ~until:100. engine;
  Alcotest.(check bool) "clock advanced" true (Engine.now engine = 100.);
  let order = ref [] in
  ignore (Engine.schedule engine ~after:0.002 (fun () -> order := 2 :: !order));
  ignore (Engine.schedule engine ~after:0.001 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule engine ~after:5000. (fun () -> order := 3 :: !order));
  Engine.run engine;
  Alcotest.(check (list int)) "order kept" [ 1; 2; 3 ] (List.rev !order)

let test_default_backend () =
  Alcotest.(check bool)
    "default is the wheel" true
    (Engine.backend (Engine.create ()) = `Wheel);
  Alcotest.(check bool)
    "heap on request" true
    (Engine.backend (Engine.create ~backend:`Heap ()) = `Heap)

let () =
  Alcotest.run "wheel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "wheel = heap on random interleavings" `Quick
            test_equivalence;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "same-tick FIFO across levels" `Quick
            test_same_tick_ties;
          Alcotest.test_case "overflow cancel + compaction" `Quick
            test_overflow_cancel_compact;
          Alcotest.test_case "pending counter survives cancel storms" `Quick
            test_pending_counter_audit;
          Alcotest.test_case "schedule after bounded run" `Quick
            test_schedule_after_bounded_run;
          Alcotest.test_case "backend selection" `Quick test_default_backend;
        ] );
    ]
