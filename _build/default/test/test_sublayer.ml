(* Tests for the sublayer framework: action routing through Stack,
   runtime timer semantics, T3 layout auditing, sequence spaces. *)

open Sublayer

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A toy sublayer that prefixes its tag going down and strips it coming
   up — a minimal header discipline. *)
module Tag (C : sig
  val tag : string
end) =
struct
  let name = "tag-" ^ C.tag

  type t = int (* messages seen, to check state threading *)
  type up_req = string
  type up_ind = string
  type down_req = string
  type down_ind = string
  type timer = unit

  let handle_up_req n msg = (n + 1, [ Machine.Down (C.tag ^ msg) ])

  let handle_down_ind n msg =
    let tl = String.length C.tag in
    if String.length msg >= tl && String.sub msg 0 tl = C.tag then
      (n + 1, [ Machine.Up (String.sub msg tl (String.length msg - tl)) ])
    else (n, [ Machine.Note "wrong tag" ])

  let handle_timer n () = (n, [ Machine.Note "tick" ])
end

module A = Tag (struct let tag = "A" end)
module B = Tag (struct let tag = "B" end)
module AB = Machine.Stack (A) (B)

let test_stack_down_path () =
  let (_ : AB.t), acts = AB.handle_up_req (0, 0) "payload" in
  match acts with
  | [ Machine.Down s ] -> check Alcotest.string "onion order" "BApayload" s
  | _ -> Alcotest.fail "expected a single Down"

let test_stack_up_path () =
  let (_ : AB.t), acts = AB.handle_down_ind (0, 0) "BAx" in
  match acts with
  | [ Machine.Up s ] -> check Alcotest.string "stripped" "x" s
  | _ -> Alcotest.fail "expected a single Up"

let test_stack_state_threading () =
  let st, _ = AB.handle_up_req (0, 0) "m" in
  let st, _ = AB.handle_down_ind st "BAx" in
  check Alcotest.(pair int int) "both counted" (2, 2) st

let test_stack_wrong_tag_dropped () =
  let (_ : AB.t), acts = AB.handle_down_ind (0, 0) "XYx" in
  match acts with
  | [ Machine.Note _ ] -> ()
  | _ -> Alcotest.fail "expected only a note"

let test_stack_timer_routing () =
  let (_ : AB.t), acts = AB.handle_timer (0, 0) (Either.Left ()) in
  (match acts with
  | [ Machine.Note n ] -> check Alcotest.bool "upper name prefixed" true
      (String.length n > 0 && String.sub n 0 5 = "tag-A")
  | _ -> Alcotest.fail "expected note");
  let (_ : AB.t), acts = AB.handle_timer (0, 0) (Either.Right ()) in
  match acts with
  | [ Machine.Note n ] -> check Alcotest.bool "lower name prefixed" true
      (String.sub n 0 5 = "tag-B")
  | _ -> Alcotest.fail "expected note"

(* An echo sublayer exercising causal ordering: when it receives a
   message from below it immediately sends a reply down. *)
module Echo = struct
  let name = "echo"

  type t = unit
  type up_req = string
  type up_ind = string
  type down_req = string
  type down_ind = string
  type timer = Machine.Nothing.t

  let handle_up_req () m = ((), [ Machine.Down m ])
  let handle_down_ind () m = ((), [ Machine.Up m; Machine.Down ("reply:" ^ m) ])
  let handle_timer () t = Machine.Nothing.absurd t
end

module EchoB = Machine.Stack (Echo) (B)

let test_stack_causal_order () =
  (* B delivers up to Echo; Echo's reply must go back down through B. *)
  let (_ : EchoB.t), acts = EchoB.handle_down_ind ((), 0) "Bhello" in
  match acts with
  | [ Machine.Up u; Machine.Down d ] ->
      check Alcotest.string "up" "hello" u;
      check Alcotest.string "reply re-tagged" "Breply:hello" d
  | _ -> Alcotest.failf "unexpected action shape (%d actions)" (List.length acts)

(* --- Runtime --- *)

module Delay = struct
  let name = "delay"

  type t = unit
  type up_req = string
  type up_ind = string
  type down_req = string
  type down_ind = string
  type timer = Deliver of string

  let handle_up_req () m = ((), [ Machine.Set_timer (Deliver m, 0.5) ])
  let handle_down_ind () m = ((), [ Machine.Up m ])
  let handle_timer () (Deliver m) = ((), [ Machine.Down m ])
end

module DelayRt = Runtime.Make (Delay)

let test_runtime_timer_fires () =
  let engine = Sim.Engine.create () in
  let sent = ref [] in
  let rt =
    DelayRt.create engine ~name:"d" ~transmit:(fun s -> sent := s :: !sent)
      ~deliver:(fun _ -> ()) ()
  in
  DelayRt.from_above rt "x";
  check Alcotest.int "armed" 1 (DelayRt.active_timers rt);
  Sim.Engine.run engine;
  check Alcotest.(list string) "fired" [ "x" ] !sent;
  check Alcotest.int "disarmed" 0 (DelayRt.active_timers rt);
  check Alcotest.bool "time advanced" true (Sim.Engine.now engine >= 0.5)

let test_runtime_timer_rearm_replaces () =
  let engine = Sim.Engine.create () in
  let sent = ref [] in
  let rt =
    DelayRt.create engine ~name:"d" ~transmit:(fun s -> sent := s :: !sent)
      ~deliver:(fun _ -> ()) ()
  in
  (* Same timer value re-armed: only the last firing survives. *)
  DelayRt.from_above rt "x";
  DelayRt.from_above rt "x";
  Sim.Engine.run engine;
  check Alcotest.(list string) "one firing" [ "x" ] !sent

let test_runtime_trace_notes () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let module Rt = Runtime.Make (Echo) in
  let rt =
    Rt.create engine ~trace ~name:"e" ~transmit:ignore ~deliver:ignore ()
  in
  ignore rt;
  Sim.Trace.record trace ~time:0. ~actor:"e" "hello";
  check Alcotest.int "recorded" 1 (Sim.Trace.count trace "hello")

(* --- Layout --- *)

let field fname owner offset width = { Layout.fname; owner; offset; width }

let test_layout_disjoint_ok () =
  match Layout.make ~total_bits:16 [ field "a" "x" 0 8; field "b" "y" 8 8 ] with
  | Ok l ->
      check Alcotest.int "covered" 16 (Layout.covered_bits l);
      check Alcotest.(list string) "owners" [ "x"; "y" ] (Layout.owners l);
      check Alcotest.int "bits of x" 8 (Layout.bits_of l "x");
      check Alcotest.(option string) "owner of bit 3" (Some "x") (Layout.owner_of_bit l 3);
      check Alcotest.(option string) "owner of bit 12" (Some "y") (Layout.owner_of_bit l 12)
  | Error e -> Alcotest.fail e

let test_layout_overlap_rejected () =
  match Layout.make ~total_bits:16 [ field "a" "x" 0 9; field "b" "y" 8 8 ] with
  | Ok _ -> Alcotest.fail "overlap accepted"
  | Error _ -> ()

let test_layout_bounds_rejected () =
  match Layout.make ~total_bits:8 [ field "a" "x" 4 8 ] with
  | Ok _ -> Alcotest.fail "out of bounds accepted"
  | Error _ -> ()

let test_layout_empty_field_rejected () =
  match Layout.make ~total_bits:8 [ field "a" "x" 0 0 ] with
  | Ok _ -> Alcotest.fail "empty field accepted"
  | Error _ -> ()

(* --- Seqspace --- *)

let test_seqspace_wrap () =
  let s = Seqspace.create ~width:16 in
  check Alcotest.int "wrap" 0x2345 (Seqspace.wrap s 0x12345);
  check Alcotest.int "modulus" 65536 (Seqspace.modulus s)

let test_seqspace_reconstruct () =
  let s = Seqspace.create ~width:16 in
  check Alcotest.int "near below" 65534 (Seqspace.reconstruct s ~reference:65535 0xFFFE);
  check Alcotest.int "wrapped ahead" 65537 (Seqspace.reconstruct s ~reference:65535 1);
  check Alcotest.int "same" 100 (Seqspace.reconstruct s ~reference:100 100)

let prop_seqspace_roundtrip =
  qtest "reconstruct inverts wrap within half-window"
    QCheck2.Gen.(pair (0 -- 1_000_000) (-30000 -- 30000))
    (fun (reference, delta) ->
      let s = Seqspace.create ~width:16 in
      let v = reference + delta in
      v < 0 || Seqspace.reconstruct s ~reference (Seqspace.wrap s v) = v)

let prop_seqspace_compare =
  qtest "compare_near is consistent"
    QCheck2.Gen.(triple (0 -- 100000) (-100 -- 100) (-100 -- 100))
    (fun (reference, d1, d2) ->
      let s = Seqspace.create ~width:32 in
      let a = reference + d1 and b = reference + d2 in
      a < 0 || b < 0
      || Seqspace.compare_near s ~reference (Seqspace.wrap s a) (Seqspace.wrap s b)
         = Int.compare a b)

let () =
  Alcotest.run "sublayer"
    [
      ( "stack",
        [
          Alcotest.test_case "down path onion" `Quick test_stack_down_path;
          Alcotest.test_case "up path strips" `Quick test_stack_up_path;
          Alcotest.test_case "state threading" `Quick test_stack_state_threading;
          Alcotest.test_case "wrong tag dropped" `Quick test_stack_wrong_tag_dropped;
          Alcotest.test_case "timer routing" `Quick test_stack_timer_routing;
          Alcotest.test_case "causal ordering" `Quick test_stack_causal_order;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "timer fires" `Quick test_runtime_timer_fires;
          Alcotest.test_case "re-arm replaces" `Quick test_runtime_timer_rearm_replaces;
          Alcotest.test_case "trace notes" `Quick test_runtime_trace_notes;
        ] );
      ( "layout",
        [
          Alcotest.test_case "disjoint accepted" `Quick test_layout_disjoint_ok;
          Alcotest.test_case "overlap rejected" `Quick test_layout_overlap_rejected;
          Alcotest.test_case "bounds rejected" `Quick test_layout_bounds_rejected;
          Alcotest.test_case "empty rejected" `Quick test_layout_empty_field_rejected;
        ] );
      ( "seqspace",
        [
          Alcotest.test_case "wrap" `Quick test_seqspace_wrap;
          Alcotest.test_case "reconstruct" `Quick test_seqspace_reconstruct;
          prop_seqspace_roundtrip;
          prop_seqspace_compare;
        ] );
    ]
