(* Unit and property tests for the bit-level substrate. *)

open Bitkit

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let bits_gen =
  QCheck2.Gen.(map (fun l -> Bitseq.of_bool_list l) (list_size (0 -- 200) bool))

let string_gen = QCheck2.Gen.(string_size ~gen:char (0 -- 200))

(* --- Bitseq --- *)

let test_bitseq_literals () =
  let b = Bitseq.of_bits "0110101" in
  check Alcotest.int "length" 7 (Bitseq.length b);
  check Alcotest.string "roundtrip" "0110101" (Bitseq.to_bits b);
  check Alcotest.bool "get 0" false (Bitseq.get b 0);
  check Alcotest.bool "get 1" true (Bitseq.get b 1);
  check Alcotest.bool "get 6" true (Bitseq.get b 6);
  Alcotest.check_raises "oob" (Invalid_argument "Bitseq.get") (fun () ->
      ignore (Bitseq.get b 7))

let test_bitseq_bytes () =
  let b = Bitseq.of_string "\x80\x01" in
  check Alcotest.int "length" 16 (Bitseq.length b);
  check Alcotest.string "bits" "1000000000000001" (Bitseq.to_bits b);
  check Alcotest.string "bytes roundtrip" "\x80\x01" (Bitseq.to_string b)

let test_bitseq_ops () =
  let a = Bitseq.of_bits "101" and b = Bitseq.of_bits "01" in
  check Alcotest.string "append" "10101" (Bitseq.to_bits (Bitseq.append a b));
  check Alcotest.string "cons" "1101" (Bitseq.to_bits (Bitseq.cons true (Bitseq.of_bits "101")));
  check Alcotest.string "snoc" "1010" (Bitseq.to_bits (Bitseq.snoc a false));
  check Alcotest.string "sub" "01" (Bitseq.to_bits (Bitseq.sub a 1 2));
  check Alcotest.string "rev" "101" (Bitseq.to_bits (Bitseq.rev a));
  check Alcotest.int "popcount" 2 (Bitseq.popcount a);
  check Alcotest.string "repeat" "101101101" (Bitseq.to_bits (Bitseq.repeat a 3));
  check Alcotest.bool "prefix yes" true (Bitseq.is_prefix ~prefix:(Bitseq.of_bits "10") a);
  check Alcotest.bool "prefix no" false (Bitseq.is_prefix ~prefix:(Bitseq.of_bits "11") a)

let test_bitseq_find_sub () =
  let hay = Bitseq.of_bits "0011010011" in
  check Alcotest.(option int) "found" (Some 2)
    (Bitseq.find_sub ~pattern:(Bitseq.of_bits "1101") hay);
  check Alcotest.(option int) "missing" None
    (Bitseq.find_sub ~pattern:(Bitseq.of_bits "11111") hay);
  check Alcotest.(option int) "empty pattern" (Some 0)
    (Bitseq.find_sub ~pattern:Bitseq.empty hay);
  check Alcotest.(option int) "first of several" (Some 2)
    (Bitseq.find_sub ~pattern:(Bitseq.of_bits "11") hay);
  check Alcotest.(option int) "at end" (Some 5)
    (Bitseq.find_sub ~pattern:(Bitseq.of_bits "10011") hay)

let test_bitseq_flip () =
  let b = Bitseq.of_bits "0000" in
  check Alcotest.string "flip 2" "0010" (Bitseq.to_bits (Bitseq.flip b 2));
  check Alcotest.bool "flip twice is id" true
    (Bitseq.equal b (Bitseq.flip (Bitseq.flip b 1) 1))

let prop_bitseq_roundtrip =
  qtest "bool list roundtrip" QCheck2.Gen.(list_size (0 -- 100) bool) (fun l ->
      Bitseq.to_bool_list (Bitseq.of_bool_list l) = l)

let prop_bitseq_equal_structural =
  qtest "equality ignores construction path" bits_gen (fun b ->
      let rebuilt = Bitseq.concat (List.map (fun x -> Bitseq.of_bool_list [ x ]) (Bitseq.to_bool_list b)) in
      Bitseq.equal b rebuilt && Bitseq.compare b rebuilt = 0)

let prop_bitseq_append_length =
  qtest "append length" QCheck2.Gen.(pair bits_gen bits_gen) (fun (a, b) ->
      Bitseq.length (Bitseq.append a b) = Bitseq.length a + Bitseq.length b)

let prop_bitseq_of_bytes_bits =
  qtest "of_bytes_bits prefix view" QCheck2.Gen.(pair string_gen (0 -- 64)) (fun (s, n) ->
      let n = min n (8 * String.length s) in
      let whole = Bitseq.of_string s in
      Bitseq.equal (Bitseq.of_bytes_bits (Bytes.of_string s) n) (Bitseq.sub whole 0 n))

(* --- Bitio --- *)

let test_bitio_fields () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 0b101 3;
  Bitio.Writer.bits w 0b01 2;
  Bitio.Writer.bits w 0b110 3;
  Bitio.Writer.uint16 w 0xBEEF;
  let s = Bitio.Writer.contents w in
  check Alcotest.int "packed length" 3 (String.length s);
  let r = Bitio.Reader.of_string s in
  check Alcotest.int "f1" 0b101 (Bitio.Reader.bits r 3);
  check Alcotest.int "f2" 0b01 (Bitio.Reader.bits r 2);
  check Alcotest.int "f3" 0b110 (Bitio.Reader.bits r 3);
  check Alcotest.int "u16" 0xBEEF (Bitio.Reader.uint16 r)

let test_bitio_truncated () =
  let r = Bitio.Reader.of_string "\x01" in
  ignore (Bitio.Reader.uint8 r);
  Alcotest.check_raises "truncated" Bitio.Reader.Truncated (fun () ->
      ignore (Bitio.Reader.bit r))

let test_bitio_alignment () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bit w true;
  Alcotest.check_raises "unaligned bytes"
    (Invalid_argument "Bitio.Writer.bytes: not byte-aligned") (fun () ->
      Bitio.Writer.bytes w "x");
  Bitio.Writer.pad_to_byte w;
  Bitio.Writer.bytes w "x";
  check Alcotest.int "bits" 16 (Bitio.Writer.bit_length w)

let prop_bitio_u32_roundtrip =
  qtest "uint32 roundtrip" QCheck2.Gen.(0 -- 0xFFFFFF) (fun v ->
      let w = Bitio.Writer.create () in
      Bitio.Writer.uint32 w v;
      let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
      Bitio.Reader.uint32 r = v)

(* --- Crc --- *)

let test_crc_catalogue () =
  List.iter
    (fun p ->
      let t = Crc.make p in
      check Alcotest.bool (p.Crc.name ^ " self test") true (Crc.self_test t))
    Crc.all

let test_crc_detects_flip () =
  let t = Crc.make Crc.crc32 in
  let msg = "the quick brown fox jumps over the lazy dog" in
  let base = Crc.digest t msg in
  for byte = 0 to String.length msg - 1 do
    let corrupted = Bytes.of_string msg in
    Bytes.set corrupted byte (Char.chr (Char.code msg.[byte] lxor 0x10));
    if Crc.digest t (Bytes.to_string corrupted) = base then
      Alcotest.failf "flip at byte %d undetected" byte
  done

let test_crc_digest_sub () =
  let t = Crc.make Crc.crc16_ccitt in
  check Alcotest.bool "sub matches" true
    (Crc.digest_sub t "xx123456789yy" 2 9 = Crc.digest t "123456789")

let prop_crc_incremental_disjoint =
  qtest "different strings different crc (mostly)" QCheck2.Gen.(pair string_gen string_gen)
    (fun (a, b) ->
      let t = Crc.make Crc.crc64_xz in
      a = b || Crc.digest t a <> Crc.digest t b)

(* --- Checksum --- *)

let test_internet_checksum () =
  (* classic example from RFC 1071 derivations *)
  let s = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "value" 0x220d (Checksum.internet s);
  (* embedding the checksum verifies *)
  let c = Checksum.internet s in
  let framed = s ^ String.init 2 (fun i -> Char.chr ((c lsr (8 * (1 - i))) land 0xFF)) in
  check Alcotest.bool "self-verifies" true (Checksum.internet_valid framed)

let test_parity () =
  check Alcotest.bool "odd ones" true (Checksum.parity "\x01");
  check Alcotest.bool "even ones" false (Checksum.parity "\x03");
  check Alcotest.bool "empty" false (Checksum.parity "")

let test_fletcher_adler () =
  check Alcotest.int "fletcher16 abcde" 0xC8F0 (Checksum.fletcher16 "abcde");
  check Alcotest.bool "adler32 Wikipedia" true
    (Checksum.adler32 "Wikipedia" = 0x11E60398l)

let prop_internet_valid =
  qtest "internet checksum self-verification" string_gen (fun s ->
      let c = Checksum.internet s in
      let tail = String.init 2 (fun i -> Char.chr ((c lsr (8 * (1 - i))) land 0xFF)) in
      (* Zero-pads odd bodies, so restrict to even length. *)
      String.length s land 1 = 1 || Checksum.internet_valid (s ^ tail))

(* --- Chacha20 / Siphash (RFC vectors) --- *)

let test_chacha_quarter_round () =
  (* RFC 8439 §2.1.1 *)
  let a, b, c, d =
    Chacha20.quarter_round (0x11111111, 0x01020304, 0x9b8d6f43, 0x01234567)
  in
  check Alcotest.int "a" 0xea2a92f4 a;
  check Alcotest.int "b" 0xcb1cf8ce b;
  check Alcotest.int "c" 0x4581472e c;
  check Alcotest.int "d" 0x5881c4bb d

let test_chacha_block_vector () =
  (* RFC 8439 §2.3.2 *)
  let key = String.init 32 Char.chr in
  let nonce = Hexdump.to_string "000000090000004a00000000" in
  let blk = Chacha20.block ~key ~counter:1 ~nonce in
  check Alcotest.string "first 16 keystream bytes" "10f1e7e4d13b5915500fdd1fa32071c4"
    (Hexdump.of_string (String.sub blk 0 16))

let test_chacha_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes")
    (fun () -> ignore (Chacha20.block ~key:"short" ~counter:0 ~nonce:(String.make 12 'n')));
  Alcotest.check_raises "short nonce" (Invalid_argument "Chacha20: nonce must be 12 bytes")
    (fun () -> ignore (Chacha20.block ~key:(String.make 32 'k') ~counter:0 ~nonce:"n"))

let prop_chacha_involution =
  qtest "encrypt . encrypt = id" string_gen (fun s ->
      let key = String.make 32 'k' and nonce = String.make 12 'n' in
      Chacha20.encrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce s) = s)

let prop_chacha_key_sensitivity =
  qtest "different keys, different ciphertext" QCheck2.Gen.(string_size ~gen:char (1 -- 100))
    (fun s ->
      let nonce = String.make 12 'n' in
      Chacha20.encrypt ~key:(String.make 32 'a') ~nonce s
      <> Chacha20.encrypt ~key:(String.make 32 'b') ~nonce s)

let test_siphash_vectors () =
  (* reference vectors from the SipHash paper's appendix *)
  let key = String.init 16 Char.chr in
  check Alcotest.bool "empty" true (Siphash.hash ~key "" = 0x726fdb47dd0e0e31L);
  check Alcotest.bool "one byte" true (Siphash.hash ~key "\x00" = 0x74f839c593dc67fdL);
  check Alcotest.int "tag is 8 bytes" 8 (String.length (Siphash.tag ~key ""))

let prop_siphash_avalanche =
  qtest "single-bit changes flip the hash" QCheck2.Gen.(string_size ~gen:char (1 -- 64))
    (fun s ->
      let key = String.init 16 Char.chr in
      let flipped = Bytes.of_string s in
      Bytes.set flipped 0 (Char.chr (Char.code s.[0] lxor 1));
      Siphash.hash ~key s <> Siphash.hash ~key (Bytes.to_string flipped))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.bool "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let c = Rng.split a in
  check Alcotest.bool "split differs" true (Rng.int64 a <> Rng.int64 c)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of bounds: %d" v;
    let f = Rng.float r in
    if f < 0. || f >= 1. then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_coin_bias () =
  let r = Rng.create 3 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.coin r 0.3 then incr hits
  done;
  let p = Float.of_int !hits /. 10_000. in
  if p < 0.27 || p > 0.33 then Alcotest.failf "coin(0.3) measured %.3f" p

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.bool "permutation" true (sorted = Array.init 50 Fun.id)

(* --- Hexdump --- *)

let test_hex_roundtrip () =
  check Alcotest.string "encode" "01ab" (Hexdump.of_string "\x01\xab");
  check Alcotest.string "decode" "\x01\xab" (Hexdump.to_string "01ab");
  check Alcotest.string "case" "\x01\xab" (Hexdump.to_string "01AB")

let prop_hex_roundtrip =
  qtest "hex roundtrip" string_gen (fun s -> Hexdump.to_string (Hexdump.of_string s) = s)

let () =
  Alcotest.run "bitkit"
    [
      ( "bitseq",
        [
          Alcotest.test_case "literals" `Quick test_bitseq_literals;
          Alcotest.test_case "bytes" `Quick test_bitseq_bytes;
          Alcotest.test_case "ops" `Quick test_bitseq_ops;
          Alcotest.test_case "find_sub" `Quick test_bitseq_find_sub;
          Alcotest.test_case "flip" `Quick test_bitseq_flip;
          prop_bitseq_roundtrip;
          prop_bitseq_equal_structural;
          prop_bitseq_append_length;
          prop_bitseq_of_bytes_bits;
        ] );
      ( "bitio",
        [
          Alcotest.test_case "fields" `Quick test_bitio_fields;
          Alcotest.test_case "truncated" `Quick test_bitio_truncated;
          Alcotest.test_case "alignment" `Quick test_bitio_alignment;
          prop_bitio_u32_roundtrip;
        ] );
      ( "crc",
        [
          Alcotest.test_case "catalogue vectors" `Quick test_crc_catalogue;
          Alcotest.test_case "detects single flips" `Quick test_crc_detects_flip;
          Alcotest.test_case "digest_sub" `Quick test_crc_digest_sub;
          prop_crc_incremental_disjoint;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "internet" `Quick test_internet_checksum;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "fletcher/adler" `Quick test_fletcher_adler;
          prop_internet_valid;
        ] );
      ( "crypto",
        [
          Alcotest.test_case "chacha quarter round (RFC)" `Quick test_chacha_quarter_round;
          Alcotest.test_case "chacha block (RFC)" `Quick test_chacha_block_vector;
          Alcotest.test_case "chacha sizes" `Quick test_chacha_bad_sizes;
          prop_chacha_involution;
          prop_chacha_key_sensitivity;
          Alcotest.test_case "siphash vectors" `Quick test_siphash_vectors;
          prop_siphash_avalanche;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "coin bias" `Quick test_rng_coin_bias;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        ] );
      ( "hexdump",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          prop_hex_roundtrip;
        ] );
    ]
