(* Tests for the hardware-offload partition study (E11). *)

open Offload

let check = Alcotest.check

let w = workload_of_transfer ~segments:1000 ~loss:0.02

let test_all_software_no_crossings () =
  (* rx packets enter from the hardware (NIC) side and cross once into
     software; tx packets start in software and never cross. *)
  let r = simulate all_software w in
  check Alcotest.int "only rx entry crossings" (w.acks_rx + w.control) r.crossings;
  check (Alcotest.float 1e-9) "speedup is 1 by definition" 1.0 r.speedup_vs_software

let test_all_hardware_crossing_free_inside () =
  let r = simulate all_hardware w in
  (* Everything processed on the NIC: only fresh tx entries cross
     (app->NIC); retransmissions originate at RD, already on the NIC. *)
  check Alcotest.int "tx-side crossings only" w.data_tx r.crossings

let test_datapath_partition_cheapest_crossings () =
  let dp = simulate datapath_hw w in
  let rd = simulate rd_only_hw w in
  check Alcotest.bool
    (Printf.sprintf "dm+cm+rd-hw (%d) fewer crossings than rd-only (%d)" dp.crossings
       rd.crossings)
    true (dp.crossings < rd.crossings)

let test_hw_partitions_beat_software () =
  List.iter
    (fun p ->
      let r = simulate p w in
      if p.pname <> "all-software" && r.speedup_vs_software <= 1.0 then
        Alcotest.failf "%s speedup %.2f" p.pname r.speedup_vs_software)
    partitions

let test_rd_only_still_wins () =
  (* The paper's "with more finagling, only RD in hardware" still beats
     pure software under the default cost model. *)
  let r = simulate rd_only_hw w in
  check Alcotest.bool (Printf.sprintf "speedup %.2f > 1" r.speedup_vs_software) true
    (r.speedup_vs_software > 1.0)

let test_fast_slow_baseline_degrades_with_slow_fraction () =
  let low = fast_slow_path ~slow_fraction:0.01 w in
  let high = fast_slow_path ~slow_fraction:0.3 w in
  check Alcotest.bool "more slow-path, more cost" true
    (high.total_cost > low.total_cost);
  check Alcotest.bool "more slow-path, more crossings" true
    (high.crossings > low.crossings)

let test_sublayer_partition_beats_fastslow_under_churn () =
  (* With a meaningful slow fraction, the clean sublayer cut wins. *)
  let dp = simulate datapath_hw w in
  let fs = fast_slow_path ~slow_fraction:0.2 w in
  check Alcotest.bool
    (Printf.sprintf "datapath (%.0f) cheaper than fast/slow (%.0f)" dp.total_cost
       fs.total_cost)
    true (dp.total_cost < fs.total_cost)

let test_workload_shape () =
  let w = workload_of_transfer ~segments:100 ~loss:0.1 in
  check Alcotest.int "data" 100 w.data_tx;
  check Alcotest.int "acks" 100 w.acks_rx;
  check Alcotest.bool "retx proportional" true (w.retx >= 10);
  check Alcotest.bool "control constant" true (w.control > 0)

let test_partition_enumeration () =
  check Alcotest.int "sixteen assignments" 16 (List.length all_partitions);
  let names = List.map (fun p -> p.pname) all_partitions in
  check Alcotest.int "distinct names" 16 (List.length (List.sort_uniq compare names));
  let best, speedup = best_partition w in
  (* Under the default cost model the full-NIC assignment wins. *)
  check Alcotest.string "optimum" "hw{dm,cm,rd,osr}" best.pname;
  check Alcotest.bool "speedup sensible" true (speedup > 1.0)

let test_cost_model_sensitivity () =
  (* If crossings were free, rd-only would approach datapath_hw. *)
  let free = { default_costs with crossing = 0.; sync = 0. } in
  let dp = simulate ~costs:free datapath_hw w in
  let rd = simulate ~costs:free rd_only_hw w in
  check Alcotest.bool "cheap crossings narrow the gap" true
    (rd.total_cost < 2. *. dp.total_cost)

let () =
  Alcotest.run "offload"
    [
      ( "partitions",
        [
          Alcotest.test_case "all-software crossings" `Quick test_all_software_no_crossings;
          Alcotest.test_case "all-hardware crossings" `Quick test_all_hardware_crossing_free_inside;
          Alcotest.test_case "datapath < rd-only crossings" `Quick test_datapath_partition_cheapest_crossings;
          Alcotest.test_case "hw partitions beat software" `Quick test_hw_partitions_beat_software;
          Alcotest.test_case "rd-only still wins" `Quick test_rd_only_still_wins;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "fast/slow degrades" `Quick test_fast_slow_baseline_degrades_with_slow_fraction;
          Alcotest.test_case "sublayer cut beats fast/slow" `Quick test_sublayer_partition_beats_fastslow_under_churn;
        ] );
      ( "model",
        [
          Alcotest.test_case "workload shape" `Quick test_workload_shape;
          Alcotest.test_case "cost sensitivity" `Quick test_cost_model_sensitivity;
          Alcotest.test_case "partition enumeration" `Quick test_partition_enumeration;
        ] );
    ]
