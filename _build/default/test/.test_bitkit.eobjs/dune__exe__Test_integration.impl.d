test/test_integration.ml: Alcotest Bitkit Buffer Char Datalink Float List Network QCheck2 QCheck_alcotest Queue Sim String Transport
