test/test_stuffing.mli:
