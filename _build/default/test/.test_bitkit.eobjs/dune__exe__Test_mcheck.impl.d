test/test_mcheck.ml: Alcotest Checker Entangle List Mcheck Model_cm Model_mono Model_msg Model_osr Model_rd Printf
