test/test_offload.ml: Alcotest List Offload Printf
