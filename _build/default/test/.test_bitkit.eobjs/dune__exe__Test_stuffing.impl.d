test/test_stuffing.ml: Alcotest Automaton Bitkit Codec Fast Float Format Lemmas List Overhead QCheck2 QCheck_alcotest Rule Search Stuffing
