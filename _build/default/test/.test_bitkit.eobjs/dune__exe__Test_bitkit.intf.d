test/test_bitkit.mli:
