test/test_offload.mli:
