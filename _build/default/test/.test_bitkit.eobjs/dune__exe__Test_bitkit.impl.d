test/test_bitkit.ml: Alcotest Array Bitio Bitkit Bitseq Bytes Chacha20 Char Checksum Crc Float Fun Hexdump List QCheck2 QCheck_alcotest Rng Siphash String
