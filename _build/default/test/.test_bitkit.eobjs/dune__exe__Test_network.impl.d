test/test_network.ml: Addr Alcotest Array Bitkit Distance_vector Fib Format Hello Link_state List Network Option Packet Path_vector Printf QCheck2 QCheck_alcotest Router Sim Topology
