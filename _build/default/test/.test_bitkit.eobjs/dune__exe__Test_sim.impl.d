test/test_sim.ml: Alcotest Bitkit Float List Printf Sim String
