test/test_sublayer.ml: Alcotest Either Int Layout List Machine QCheck2 QCheck_alcotest Runtime Seqspace Sim String Sublayer
