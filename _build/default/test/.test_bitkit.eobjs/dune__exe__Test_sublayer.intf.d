test/test_sublayer.mli:
