test/test_datalink.mli:
