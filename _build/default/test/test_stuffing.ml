(* Tests for the verified-style stuffing development: the executable
   lemma suite, the exact automaton checker, the search, the overhead
   analysis, and agreement between the extraction-style and fast codecs. *)

open Stuffing

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let bits = Rule.bits_of_string
let show = Rule.string_of_bits

(* --- Rule basics --- *)

let test_well_formed () =
  check Alcotest.bool "hdlc" true (Rule.rule_well_formed Rule.hdlc.rule);
  check Alcotest.bool "paper best" true (Rule.rule_well_formed Rule.paper_best.rule);
  check Alcotest.bool "empty trigger" false
    (Rule.rule_well_formed { Rule.trigger = []; stuff = false });
  (* stuffing a 1 after 11111 recreates the trigger: diverges *)
  check Alcotest.bool "non-terminating" false
    (Rule.rule_well_formed { Rule.trigger = bits "11111"; stuff = true })

(* --- Codec on HDLC worked examples --- *)

let test_hdlc_stuffing_examples () =
  let stuff d = show (Codec.stuff Rule.hdlc.rule (bits d)) in
  check Alcotest.string "five ones get a zero" "111110" (stuff "11111");
  check Alcotest.string "six ones" "1111101" (stuff "111111");
  check Alcotest.string "ten ones: two stuffs" "111110111110" (stuff "1111111111");
  check Alcotest.string "no trigger untouched" "101010" (stuff "101010");
  check Alcotest.string "flag data gets broken up" "011111001" (stuff "01111101")

let test_hdlc_unstuff_rejects () =
  let r = Rule.hdlc.rule in
  (* ends on naked trigger *)
  check Alcotest.(option (list bool)) "truncated" None (Codec.unstuff r (bits "11111"));
  (* trigger followed by the wrong bit *)
  check Alcotest.(option (list bool)) "wrong stuffed bit" None
    (Codec.unstuff r (bits "111111"))

let test_encode_example () =
  (* flag ++ stuffed ++ flag *)
  let e = Codec.encode Rule.hdlc (bits "11111") in
  check Alcotest.string "framed" ("01111110" ^ "111110" ^ "01111110") (show e)

let test_decode_garbage () =
  check Alcotest.bool "no flags" true (Codec.decode Rule.hdlc (bits "10101010") = None);
  check Alcotest.bool "only one flag" true
    (Codec.decode Rule.hdlc (bits "01111110") = None);
  check Alcotest.bool "empty" true (Codec.decode Rule.hdlc [] = None)

(* --- The lemma suite: every lemma must hold. --- *)

let lemma_cases =
  List.map
    (fun l ->
      Alcotest.test_case (l.Lemmas.sublayer ^ "/" ^ l.Lemmas.lname) `Slow (fun () ->
          if not (l.Lemmas.check ()) then Alcotest.failf "lemma %s failed" l.Lemmas.lname))
    Lemmas.all

let test_lemma_census () =
  (* The paper's proof had 57 lemmas; ours is a comparable census. *)
  check Alcotest.bool "substantial suite" true (List.length Lemmas.all >= 40);
  let subs = List.sort_uniq compare (List.map (fun l -> l.Lemmas.sublayer) Lemmas.all) in
  check Alcotest.(list string) "stratified by sublayer"
    [ "composition"; "flag"; "meta"; "stuffing" ] subs

(* --- Automaton checker --- *)

let test_checker_hdlc_valid () =
  check Alcotest.bool "hdlc" true (Automaton.valid Rule.hdlc);
  check Alcotest.bool "paper best" true (Automaton.valid Rule.paper_best)

let test_checker_violations () =
  (* stuffed stream can spell the flag *)
  let bad = { Rule.flag = bits "01111110"; rule = { Rule.trigger = bits "110"; stuff = true } } in
  check Alcotest.bool "flag in data" true (Automaton.check bad = Error Automaton.Flag_in_data);
  (* trigger shorter than the flag's run, wrong stuff bit direction *)
  let bad2 = { Rule.flag = bits "01111110"; rule = { Rule.trigger = bits "0"; stuff = false } } in
  (* stuffing 0 after every 0 can never produce 6 ones? it can; the rule
     is judged by the machine, whatever the verdict it must agree with
     brute force below *)
  ignore bad2;
  let nonterm = { Rule.flag = bits "01111110"; rule = { Rule.trigger = bits "11111"; stuff = true } } in
  check Alcotest.bool "non-terminating rejected" true
    (Automaton.check nonterm = Error Automaton.Ill_formed_rule)

let test_checker_agrees_with_bruteforce () =
  (* On a sample of candidate schemes, the exact checker and bounded
     exhaustive testing agree in the sound direction: a bounded
     counterexample implies invalid. *)
  let rng = Bitkit.Rng.create 11 in
  let random_scheme () =
    let flag = List.init 8 (fun _ -> Bitkit.Rng.bool rng) in
    let k = 1 + Bitkit.Rng.int rng 6 in
    let trigger = List.init k (fun _ -> Bitkit.Rng.bool rng) in
    { Rule.flag; rule = { Rule.trigger; stuff = Bitkit.Rng.bool rng } }
  in
  for _ = 1 to 200 do
    let s = random_scheme () in
    if Rule.rule_well_formed s.Rule.rule then begin
      match Automaton.find_counterexample s ~max_len:8 with
      | Some cex ->
          if Automaton.valid s then
            Alcotest.failf "checker accepts %s but %s is a counterexample"
              (Format.asprintf "%a" Rule.pp_scheme s)
              (show cex)
      | None -> ()
    end
  done

let test_reachable_states_reported () =
  check Alcotest.bool "hdlc explores a real state space" true
    (Automaton.reachable_states Rule.hdlc > 10)

(* --- Search --- *)

let test_search_structured () =
  let o = Search.run Search.structured_space in
  check Alcotest.int "candidates" 1536 o.Search.candidates;
  check Alcotest.bool "finds many valid schemes" true (o.Search.valid > 500);
  check Alcotest.bool "hdlc among them" true
    (List.exists (Rule.equal_scheme Rule.hdlc) (Search.valid_schemes Search.structured_space))

let test_search_best_sorted () =
  let o = Search.run ~best_limit:5 Search.structured_space in
  let rates = List.map snd o.Search.best in
  check Alcotest.bool "ascending overhead" true (rates = List.sort Float.compare rates);
  check Alcotest.int "limited" 5 (List.length o.Search.best)

let test_search_candidate_count () =
  let space = Search.free_space ~trigger_lens:[ 2 ] in
  (* 256 flags x 4 triggers x 2 stuff bits *)
  check Alcotest.int "count" 2048 (Search.candidate_count space)

(* --- Overhead --- *)

let close a b = Float.abs (a -. b) < 1e-6

let test_overhead_paper_numbers () =
  check Alcotest.bool "hdlc naive 1/32" true (close (Overhead.naive Rule.hdlc.rule) (1. /. 32.));
  check Alcotest.bool "best naive 1/128" true
    (close (Overhead.naive Rule.paper_best.rule) (1. /. 128.));
  check Alcotest.bool "hdlc exact 1/62" true
    (close (Overhead.stationary Rule.hdlc.rule) (1. /. 62.));
  check Alcotest.bool "best exact 1/128" true
    (close (Overhead.stationary Rule.paper_best.rule) (1. /. 128.))

let test_overhead_empirical_close () =
  List.iter
    (fun rule ->
      let a = Overhead.stationary rule in
      let e = Overhead.empirical ~seed:3 rule in
      if Float.abs (a -. e) > 0.1 *. a then
        Alcotest.failf "empirical %.6f vs stationary %.6f" e a)
    [ Rule.hdlc.rule; Rule.paper_best.rule ]

let test_frame_expansion () =
  let x = Overhead.expected_frame_expansion Rule.hdlc ~payload_bits:1000 in
  (* 1000 bits + ~16 stuffed + 16 flag bits *)
  if x < 1015. || x > 1035. then Alcotest.failf "expansion %.1f" x

(* --- Fast codec agrees with the extraction-style codec --- *)

let data_gen = QCheck2.Gen.(list_size (0 -- 300) bool)

let prop_fast_stuff_agrees =
  qtest "fast stuff = codec stuff" data_gen (fun d ->
      let slow = Codec.stuff Rule.hdlc.rule d in
      let fast = Fast.stuff Rule.hdlc.rule (Bitkit.Bitseq.of_bool_list d) in
      Bitkit.Bitseq.to_bool_list fast = slow)

let prop_fast_unstuff_agrees =
  qtest "fast unstuff = codec unstuff" data_gen (fun d ->
      let stuffed = Codec.stuff Rule.paper_best.rule d in
      let fast =
        Fast.unstuff Rule.paper_best.rule (Bitkit.Bitseq.of_bool_list stuffed)
      in
      match fast with
      | Some b -> Bitkit.Bitseq.to_bool_list b = d
      | None -> false)

let prop_fast_decode_encode =
  qtest "fast decode (fast encode d) = d" data_gen (fun d ->
      let b = Bitkit.Bitseq.of_bool_list d in
      match Fast.decode Rule.hdlc (Fast.encode Rule.hdlc b) with
      | Some got -> Bitkit.Bitseq.equal got b
      | None -> false)

let prop_fast_rejects_corruption_or_differs =
  qtest "single flip never silently yields the original" data_gen (fun d ->
      match d with
      | [] -> true
      | _ ->
          let b = Bitkit.Bitseq.of_bool_list d in
          let e = Fast.encode Rule.hdlc b in
          let flipped = Bitkit.Bitseq.flip e (List.length d / 2) in
          (match Fast.decode Rule.hdlc flipped with
          | Some got -> not (Bitkit.Bitseq.equal got b) || Bitkit.Bitseq.equal flipped e
          | None -> true))

let () =
  Alcotest.run "stuffing"
    [
      ("rules", [ Alcotest.test_case "well-formedness" `Quick test_well_formed ]);
      ( "codec",
        [
          Alcotest.test_case "hdlc examples" `Quick test_hdlc_stuffing_examples;
          Alcotest.test_case "unstuff rejects" `Quick test_hdlc_unstuff_rejects;
          Alcotest.test_case "encode example" `Quick test_encode_example;
          Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
        ] );
      ("lemmas", Alcotest.test_case "census" `Quick test_lemma_census :: lemma_cases);
      ( "automaton",
        [
          Alcotest.test_case "valid schemes" `Quick test_checker_hdlc_valid;
          Alcotest.test_case "violations" `Quick test_checker_violations;
          Alcotest.test_case "agrees with brute force" `Slow test_checker_agrees_with_bruteforce;
          Alcotest.test_case "state-space size" `Quick test_reachable_states_reported;
        ] );
      ( "search",
        [
          Alcotest.test_case "structured space" `Slow test_search_structured;
          Alcotest.test_case "best sorted" `Slow test_search_best_sorted;
          Alcotest.test_case "candidate count" `Quick test_search_candidate_count;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "paper numbers" `Quick test_overhead_paper_numbers;
          Alcotest.test_case "empirical close" `Quick test_overhead_empirical_close;
          Alcotest.test_case "frame expansion" `Quick test_frame_expansion;
        ] );
      ( "fast",
        [
          prop_fast_stuff_agrees;
          prop_fast_unstuff_agrees;
          prop_fast_decode_encode;
          prop_fast_rejects_corruption_or_differs;
        ] );
    ]
