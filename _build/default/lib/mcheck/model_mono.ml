type params = { n : int; window : int; capacity : int; max_retx : int }

let default = { n = 2; window = 2; capacity = 2; max_retx = 1 }

let a_isn = 1
let b_isn = 2

type msg =
  | Syn of int
  | Syn_ack of int * int
  | Hs_ack of int * int
  | Data of int          (* segment id *)
  | Ack of int           (* cumulative *)
  | Fin
  | Fin_ack

type a_phase = A_syn_sent | A_est | A_fin_wait of int | A_done | A_gave_up
type b_phase = B_listen | B_syn_rcvd of int | B_est | B_closed | B_gave_up

(* One joint record — the model-level analog of the PCB. *)
type state = {
  a : a_phase;
  b : b_phase;
  a_retx : int;
  b_retx : int;
  snd_next : int;
  snd_acked : int;
  rcv : int;  (* bitmask *)
  fin_acked : bool;
  ab : msg list;
  ba : msg list;
}

let insert m l = List.sort compare (m :: l)

let rec remove_one m = function
  | [] -> []
  | x :: rest -> if x = m then rest else x :: remove_one m rest

let distinct l = List.sort_uniq compare l

let rec cumulative rcv i = if rcv land (1 lsl i) = 0 then i else cumulative rcv (i + 1)

let model p =
  (module struct
    type nonrec state = state

    let name = Printf.sprintf "monolithic(n=%d,w=%d,c=%d)" p.n p.window p.capacity

    let initial =
      [ { a = A_syn_sent; b = B_listen; a_retx = 0; b_retx = 0; snd_next = 0;
          snd_acked = 0; rcv = 0; fin_acked = false; ab = [ Syn a_isn ]; ba = [] } ]

    let next s =
      let moves = ref [] in
      let add label s' = moves := (label, s') :: !moves in
      let room ch = List.length ch < p.capacity + 1 in
      (* --- A's local transitions: handshake retx, data send/retx, fin --- *)
      (match s.a with
      | A_syn_sent when s.a_retx < p.max_retx && room s.ab ->
          add "a_retx_syn" { s with a_retx = s.a_retx + 1; ab = insert (Syn a_isn) s.ab }
      | A_syn_sent when s.a_retx >= p.max_retx -> add "a_give_up" { s with a = A_gave_up }
      | A_est ->
          if
            s.snd_next < p.n
            && s.snd_next - s.snd_acked < p.window
            && room s.ab
          then
            add "a_send"
              { s with snd_next = s.snd_next + 1; ab = insert (Data s.snd_next) s.ab };
          for i = s.snd_acked to s.snd_next - 1 do
            if (not (List.mem (Data i) s.ab)) && room s.ab then
              add "a_retx_data" { s with ab = insert (Data i) s.ab }
          done;
          if s.snd_next = p.n && s.snd_acked = p.n && room s.ab then
            add "a_fin" { s with a = A_fin_wait 0; ab = insert Fin s.ab }
      | A_fin_wait n when (not s.fin_acked) && n < p.max_retx && room s.ab ->
          add "a_retx_fin" { s with a = A_fin_wait (n + 1); ab = insert Fin s.ab }
      | A_fin_wait n when (not s.fin_acked) && n >= p.max_retx ->
          add "a_fin_give_up" { s with a = A_gave_up }
      | A_fin_wait _ when s.fin_acked -> add "a_close_done" { s with a = A_done }
      | _ -> ());
      (* --- B's local transitions --- *)
      (match s.b with
      | B_syn_rcvd r when s.b_retx < p.max_retx && room s.ba ->
          add "b_retx_synack"
            { s with b_retx = s.b_retx + 1; ba = insert (Syn_ack (b_isn, r)) s.ba }
      | B_syn_rcvd _ when s.b_retx >= p.max_retx -> add "b_give_up" { s with b = B_gave_up }
      | _ -> ());
      (* --- channel loss --- *)
      List.iter (fun m -> add "drop_ab" { s with ab = remove_one m s.ab }) (distinct s.ab);
      List.iter (fun m -> add "drop_ba" { s with ba = remove_one m s.ba }) (distinct s.ba);
      (* --- deliveries to B: the entangled input function --- *)
      List.iter
        (fun m ->
          let s = { s with ab = remove_one m s.ab } in
          match (m, s.b) with
          | Syn isn, B_listen when room s.ba ->
              add "b_syn"
                { s with b = B_syn_rcvd isn; ba = insert (Syn_ack (b_isn, isn)) s.ba }
          | Syn _, B_syn_rcvd r when room s.ba ->
              add "b_dup_syn" { s with ba = insert (Syn_ack (b_isn, r)) s.ba }
          | Hs_ack (ai, bi), B_syn_rcvd r when ai = r && bi = b_isn ->
              add "b_est" { s with b = B_est }
          | Data i, B_syn_rcvd r when r = a_isn ->
              (* data implies the peer saw our SYN|ACK *)
              let rcv = s.rcv lor (1 lsl i) in
              let s = { s with b = B_est; rcv } in
              if room s.ba then
                add "b_est_data" { s with ba = insert (Ack (cumulative rcv 0)) s.ba }
          | Data i, B_est ->
              let rcv = s.rcv lor (1 lsl i) in
              let s = { s with rcv } in
              if room s.ba then
                add "b_data" { s with ba = insert (Ack (cumulative rcv 0)) s.ba }
          | Fin, B_est when cumulative s.rcv 0 = p.n && room s.ba ->
              add "b_fin" { s with b = B_closed; ba = insert Fin_ack s.ba }
          | Fin, B_closed when room s.ba ->
              add "b_dup_fin" { s with ba = insert Fin_ack s.ba }
          | _ -> add "b_ignore" s)
        (distinct s.ab);
      (* --- deliveries to A --- *)
      List.iter
        (fun m ->
          let s = { s with ba = remove_one m s.ba } in
          match (m, s.a) with
          | Syn_ack (bi, echo), A_syn_sent when echo = a_isn && room s.ab ->
              add "a_est" { s with a = A_est; ab = insert (Hs_ack (a_isn, bi)) s.ab }
          | Syn_ack (bi, echo), A_est when echo = a_isn && room s.ab ->
              add "a_reack" { s with ab = insert (Hs_ack (a_isn, bi)) s.ab }
          | Ack k, (A_est | A_fin_wait _) ->
              add "a_ack" { s with snd_acked = max s.snd_acked k }
          | Fin_ack, A_fin_wait _ -> add "a_fin_acked" { s with fin_acked = true }
          | _ -> add "a_ignore" s)
        (distinct s.ba);
      !moves

    let invariant s =
      if s.snd_acked > cumulative s.rcv 0 then Some "ack ahead of receiver"
      else if s.rcv lsr s.snd_next <> 0 then Some "phantom segment"
      else begin
        match s.b with
        | B_syn_rcvd r when r <> a_isn -> Some "B holds a wrong ISN"
        | _ -> None
      end

    let accepting s =
      match (s.a, s.b) with
      | A_done, B_closed -> true
      | A_gave_up, _ | _, B_gave_up -> true
      | _ -> false
  end : Checker.MODEL)
