(** Bounded model of OSR's receiver: segments arrive exactly once in any
    order (RD's postcondition) and the reassembly buffer must emit the
    byte stream in order without gaps, losses or duplicates — TCP's main
    property, proved on top of RD's guarantee exactly as the paper
    stratifies it. *)

val model : n:int -> (module Checker.MODEL)
