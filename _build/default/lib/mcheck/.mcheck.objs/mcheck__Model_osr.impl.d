lib/mcheck/model_osr.ml: Checker List Printf
