lib/mcheck/model_osr.mli: Checker
