lib/mcheck/model_mono.mli: Checker
