lib/mcheck/model_msg.ml: Checker List Printf
