lib/mcheck/model_rd.mli: Checker
