lib/mcheck/checker.ml: Format Hashtbl List Printf Queue String
