lib/mcheck/entangle.ml: Format List
