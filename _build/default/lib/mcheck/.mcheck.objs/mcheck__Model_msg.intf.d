lib/mcheck/model_msg.mli: Checker
