lib/mcheck/model_cm.mli: Checker
