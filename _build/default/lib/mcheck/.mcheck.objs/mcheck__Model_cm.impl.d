lib/mcheck/model_cm.ml: Checker List Printf
