lib/mcheck/model_rd.ml: Checker Int List Printf
