lib/mcheck/model_mono.ml: Checker List Printf
