lib/mcheck/entangle.mli: Format
