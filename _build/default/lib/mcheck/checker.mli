(** A small explicit-state model checker (breadth-first reachability over
    a finite transition system), standing in for the paper's Coq/Dafny
    proofs: invariants are checked on {e every} reachable state of a
    bounded protocol model, and counterexamples come with the shortest
    event trace.

    Experiment E8 runs the monolithic TCP model and the per-sublayer
    models through this checker and compares state-space sizes: the
    compositional (per-sublayer) obligations are each far smaller than
    the monolithic one, which is the paper's "easier verification"
    claim made quantitative. *)

module type MODEL = sig
  type state

  val name : string
  val initial : state list

  val next : state -> (string * state) list
  (** Labelled successor states (the label names the protocol event). *)

  val invariant : state -> string option
  (** [Some message] if the state violates a safety property. *)

  val accepting : state -> bool
  (** "Done" states — used for the termination/deadlock report: a
      non-accepting state with no successors is a deadlock. *)
end

type report = {
  model : string;
  states : int;           (** distinct reachable states *)
  transitions : int;
  max_depth : int;
  violation : (string * string list) option;
      (** (invariant message, shortest trace of event labels) *)
  deadlocks : int;        (** non-accepting states without successors *)
  truncated : bool;       (** hit the state bound before exhausting *)
}

val run : ?max_states:int -> (module MODEL) -> report
(** Default bound: 2_000_000 states. *)

val pp_report : Format.formatter -> report -> unit
