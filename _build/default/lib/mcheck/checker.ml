module type MODEL = sig
  type state

  val name : string
  val initial : state list
  val next : state -> (string * state) list
  val invariant : state -> string option
  val accepting : state -> bool
end

type report = {
  model : string;
  states : int;
  transitions : int;
  max_depth : int;
  violation : (string * string list) option;
  deadlocks : int;
  truncated : bool;
}

let run ?(max_states = 2_000_000) (module M : MODEL) =
  let visited : (M.state, unit) Hashtbl.t = Hashtbl.create 4096 in
  (* Parent pointers reconstruct the shortest counterexample trace. *)
  let parent : (M.state, string * M.state) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let max_depth = ref 0 in
  let deadlocks = ref 0 in
  let violation = ref None in
  let truncated = ref false in
  let trace_of state =
    let rec go state acc =
      match Hashtbl.find_opt parent state with
      | None -> acc
      | Some (label, prev) -> go prev (label :: acc)
    in
    go state []
  in
  List.iter
    (fun s ->
      if not (Hashtbl.mem visited s) then begin
        Hashtbl.replace visited s ();
        Queue.add (s, 0) queue
      end)
    M.initial;
  (try
     while not (Queue.is_empty queue) do
       let state, depth = Queue.pop queue in
       max_depth := max !max_depth depth;
       (match M.invariant state with
       | Some msg ->
           violation := Some (msg, trace_of state);
           raise Exit
       | None -> ());
       let succs = M.next state in
       if succs = [] && not (M.accepting state) then incr deadlocks;
       List.iter
         (fun (label, s') ->
           incr transitions;
           if not (Hashtbl.mem visited s') then begin
             if Hashtbl.length visited >= max_states then begin
               truncated := true;
               raise Exit
             end;
             Hashtbl.replace visited s' ();
             Hashtbl.replace parent s' (label, state);
             Queue.add (s', depth + 1) queue
           end)
         succs
     done
   with Exit -> ());
  {
    model = M.name;
    states = Hashtbl.length visited;
    transitions = !transitions;
    max_depth = !max_depth;
    violation = !violation;
    deadlocks = !deadlocks;
    truncated = !truncated;
  }

let pp_report fmt r =
  Format.fprintf fmt "%s: %d states, %d transitions, depth %d%s%s@." r.model r.states
    r.transitions r.max_depth
    (if r.deadlocks > 0 then Printf.sprintf ", %d deadlocks" r.deadlocks else "")
    (if r.truncated then " (truncated)" else "");
  match r.violation with
  | None -> Format.fprintf fmt "  all invariants hold@."
  | Some (msg, trace) ->
      Format.fprintf fmt "  VIOLATION: %s@.  trace: %s@." msg (String.concat " -> " trace)
