type state = {
  arrived : int;    (* bitmask over messages x fragments *)
  delivered : int;  (* bitmask over messages *)
}

let model ~messages ~frags =
  (module struct
    type nonrec state = state

    let name = Printf.sprintf "msg-reassembly(m=%d,f=%d)" messages frags

    let initial = [ { arrived = 0; delivered = 0 } ]

    let bit m f = (m * frags) + f

    let complete arrived m =
      let rec go f = f >= frags || (arrived land (1 lsl bit m f) <> 0 && go (f + 1)) in
      go 0

    let next s =
      List.concat
        (List.init messages (fun m ->
             List.concat
               (List.init frags (fun f ->
                    if s.arrived land (1 lsl bit m f) <> 0 then []
                    else begin
                      let arrived = s.arrived lor (1 lsl bit m f) in
                      let delivered =
                        if complete arrived m then s.delivered lor (1 lsl m)
                        else s.delivered
                      in
                      [ (Printf.sprintf "frag%d.%d" m f, { arrived; delivered }) ]
                    end))))

    let invariant s =
      (* A message is delivered iff all its own fragments arrived —
         never blocked by, nor jumping ahead of, any other message. *)
      let rec check m =
        if m >= messages then None
        else begin
          let should = complete s.arrived m in
          let did = s.delivered land (1 lsl m) <> 0 in
          if should && not did then Some (Printf.sprintf "message %d held back" m)
          else if did && not should then
            Some (Printf.sprintf "message %d delivered incomplete" m)
          else check (m + 1)
        end
      in
      check 0

    let accepting s = s.delivered = (1 lsl messages) - 1
  end : Checker.MODEL)
