(** Bounded model of the Msg sublayer's receiver: fragments of [m]
    messages ([f] fragments each) arrive exactly once in any order (RD's
    postcondition); each message must be delivered exactly when its own
    last fragment lands — independent of other messages (the HOL-freedom
    property of experiment E15). *)

val model : messages:int -> frags:int -> (module Checker.MODEL)
