type access = { func : string; fields : string list }

type inventory = { mname : string; fields : string list; accesses : access list }

(* Hand-audited from lib/transport/tcp_monolithic.ml: the fields each
   function reads or writes, with helper calls expanded transitively
   (exactly what a verifier's frame conditions must cover). *)
let monolithic =
  {
    mname = "tcp_monolithic";
    fields =
      [ "state"; "local_port"; "remote_port"; "iss"; "irs"; "snd_una"; "snd_nxt";
        "snd_wnd"; "rcv_nxt"; "rcv_wnd"; "unsent"; "unsent_bytes"; "unacked"; "reasm";
        "dupacks"; "recover"; "srtt"; "rttvar"; "rto"; "rto_timer"; "misc_timer";
        "persist_timer"; "unread"; "fin_queued"; "fin_sent"; "established_signalled";
        "cwnd" ];
    accesses =
      [
        { func = "send_segment";
          fields = [ "state"; "local_port"; "remote_port"; "rcv_nxt"; "rcv_wnd" ] };
        { func = "on_rto";
          fields = [ "rto_timer"; "rto"; "unacked"; "cwnd"; "state"; "local_port";
                     "remote_port"; "rcv_nxt"; "rcv_wnd" ] };
        { func = "queue_and_send";
          fields = [ "snd_nxt"; "unacked"; "rto_timer"; "rto"; "state"; "local_port";
                     "remote_port"; "rcv_nxt"; "rcv_wnd" ] };
        { func = "try_output";
          fields = [ "state"; "snd_nxt"; "snd_una"; "snd_wnd"; "cwnd"; "unsent";
                     "unsent_bytes"; "fin_queued"; "fin_sent"; "unacked"; "rto_timer";
                     "rto"; "local_port"; "remote_port"; "rcv_nxt"; "rcv_wnd";
                     "persist_timer" ] };
        { func = "read";
          fields = [ "unread"; "rcv_wnd"; "state"; "snd_nxt"; "local_port";
                     "remote_port"; "rcv_nxt" ] };
        { func = "arm_persist";
          fields = [ "persist_timer"; "snd_wnd"; "snd_nxt"; "snd_una"; "unsent";
                     "unsent_bytes"; "unacked"; "rto_timer"; "rto"; "state";
                     "local_port"; "remote_port"; "rcv_nxt"; "rcv_wnd" ] };
        { func = "connect";
          fields = [ "iss"; "snd_una"; "snd_nxt"; "state"; "unacked"; "rto_timer";
                     "rto"; "local_port"; "remote_port"; "rcv_nxt"; "rcv_wnd" ] };
        { func = "listen"; fields = [ "state" ] };
        { func = "write";
          fields = [ "unsent"; "unsent_bytes"; "state"; "snd_nxt"; "snd_una"; "snd_wnd";
                     "cwnd"; "fin_queued"; "fin_sent"; "unacked"; "rto_timer"; "rto";
                     "local_port"; "remote_port"; "rcv_nxt"; "rcv_wnd" ] };
        { func = "close";
          fields = [ "fin_queued"; "state"; "snd_nxt"; "snd_una"; "snd_wnd"; "cwnd";
                     "unsent"; "unsent_bytes"; "fin_sent"; "unacked"; "rto_timer"; "rto";
                     "local_port"; "remote_port"; "rcv_nxt"; "rcv_wnd" ] };
        { func = "update_rtt"; fields = [ "srtt"; "rttvar"; "rto" ] };
        { func = "enter_time_wait"; fields = [ "state"; "misc_timer" ] };
        { func = "from_wire";
          fields = [ "state"; "local_port"; "remote_port"; "iss"; "irs"; "snd_una";
                     "snd_nxt"; "snd_wnd"; "rcv_nxt"; "rcv_wnd"; "unsent"; "unsent_bytes";
                     "unacked"; "reasm"; "dupacks"; "recover"; "srtt"; "rttvar"; "rto";
                     "rto_timer"; "misc_timer"; "persist_timer"; "unread"; "fin_queued";
                     "fin_sent"; "established_signalled"; "cwnd" ] };
      ];
  }

(* The sublayered stack: each module's state is its own record type;
   nothing outside the module can name its fields. *)
let sublayered =
  [
    { mname = "dm";
      fields = [ "local_port"; "remote_port" ];
      accesses =
        [ { func = "handle_up_req"; fields = [ "local_port"; "remote_port" ] };
          { func = "handle_down_ind"; fields = [ "local_port"; "remote_port" ] } ] };
    { mname = "cm";
      fields = [ "phase"; "isn_local"; "isn_remote" ];
      accesses =
        [ { func = "handle_up_req"; fields = [ "phase"; "isn_local"; "isn_remote" ] };
          { func = "handle_down_ind"; fields = [ "phase"; "isn_local"; "isn_remote" ] };
          { func = "handle_timer"; fields = [ "phase"; "isn_local"; "isn_remote" ] } ] };
    { mname = "rd";
      fields =
        [ "isn_local"; "isn_remote"; "sndq"; "snd_acked"; "snd_max"; "dup_acks";
          "recover"; "srtt"; "rttvar"; "rto"; "block"; "rcv" ];
      accesses =
        [ { func = "handle_transmit"; fields = [ "sndq"; "snd_max"; "isn_local"; "rcv"; "isn_remote"; "rto" ] };
          { func = "handle_data"; fields = [ "rcv"; "isn_remote"; "block" ] };
          { func = "handle_ack";
            fields = [ "sndq"; "snd_acked"; "snd_max"; "dup_acks"; "recover"; "srtt";
                       "rttvar"; "rto"; "isn_local" ] };
          { func = "handle_timer"; fields = [ "sndq"; "rto"; "isn_local"; "rcv"; "isn_remote" ] } ] };
    { mname = "osr";
      fields =
        [ "cc"; "outbuf"; "next_off"; "acked"; "peer_window"; "fin_requested";
          "fin_sent"; "peer_fin_seen"; "reasm"; "rcv_cum"; "unread"; "advertised" ];
      accesses =
        [ { func = "try_send"; fields = [ "outbuf"; "next_off"; "acked"; "peer_window"; "cc"; "advertised" ] };
          { func = "maybe_fin"; fields = [ "fin_requested"; "fin_sent"; "outbuf"; "acked"; "next_off" ] };
          { func = "handle_write"; fields = [ "outbuf"; "next_off"; "acked"; "peer_window"; "cc"; "advertised" ] };
          { func = "handle_read"; fields = [ "unread"; "reasm"; "advertised" ] };
          { func = "accept_segment"; fields = [ "reasm"; "rcv_cum"; "unread"; "advertised" ] };
          { func = "handle_acked"; fields = [ "acked"; "peer_window"; "cc"; "outbuf"; "next_off"; "fin_requested"; "fin_sent"; "advertised" ] };
          { func = "handle_persist"; fields = [ "peer_window"; "next_off"; "acked"; "outbuf"; "advertised" ] };
          { func = "handle_loss"; fields = [ "cc" ] } ] };
  ]

let share (a : access) (b : access) = List.exists (fun f -> List.mem f b.fields) a.fields

let entangled_pairs inv =
  let rec pairs = function
    | [] -> 0
    | a :: rest -> List.length (List.filter (share a) rest) + pairs rest
  in
  pairs inv.accesses

let function_count inv = List.length inv.accesses

let shared_field_matrix inv =
  let rec pairs : access list -> _ = function
    | [] -> []
    | (a : access) :: rest ->
        List.filter_map
          (fun (b : access) ->
            let n = List.length (List.filter (fun f -> List.mem f b.fields) a.fields) in
            if n > 0 then Some (a.func, b.func, n) else None)
          rest
        @ pairs rest
  in
  pairs inv.accesses

(* Sublayer state records are distinct nominal types: a field of one
   cannot be named by another module at all. Fields with coincidentally
   equal names (e.g. rd.isn_local vs cm.isn_local) are distinct state. *)
let cross_sublayer_shared_fields () = 0

let interface_widths =
  [ ("app<->osr", 4 + 5); ("osr<->rd", 5 + 7); ("rd<->cm", 4 + 5); ("cm<->dm", 1 + 1) ]

let pp_summary fmt () =
  let total_sub_pairs = List.fold_left (fun a i -> a + entangled_pairs i) 0 sublayered in
  Format.fprintf fmt "monolithic: %d functions, %d state fields, %d entangled pairs@."
    (function_count monolithic)
    (List.length monolithic.fields)
    (entangled_pairs monolithic);
  List.iter
    (fun i ->
      Format.fprintf fmt "sublayer %-4s: %d functions, %d fields, %d entangled pairs@."
        i.mname (function_count i) (List.length i.fields) (entangled_pairs i))
    sublayered;
  Format.fprintf fmt "sublayered total entangled pairs: %d (all within sublayers)@."
    total_sub_pairs;
  Format.fprintf fmt "cross-sublayer shared fields: %d@." (cross_sublayer_shared_fields ());
  List.iter
    (fun (name, n) -> Format.fprintf fmt "interface %-10s: %d constructors@." name n)
    interface_widths
