(** The entanglement metric (experiment E9).

    Paper §2.3: in a monolithic TCP all subfunctions "share and mutate
    the same state (encapsulated in the PCB block)", so reasoning about
    one function requires reasoning about its interactions with all
    others — the O(N²) the Dafny exercise ran into (§4.2). This module
    holds a hand-audited inventory of which state fields each function of
    [Transport.Tcp_monolithic] touches, and the same for each sublayer of
    the sublayered stack, and computes:

    - {e entangled pairs}: unordered pairs of functions sharing at least
      one mutable field (the interactions a prover must consider);
    - {e cross-sublayer shared fields}: 0 for the sublayered stack, by
      construction (each sublayer's record type is private to it);
    - {e interface width}: the number of message constructors between
      adjacent sublayers (test T2 made countable).

    The inventory is kept in sync with the implementation by the test
    suite, which checks the field lists against the record definitions. *)

type access = { func : string; fields : string list }

type inventory = {
  mname : string;
  fields : string list;    (** all mutable/protocol state fields *)
  accesses : access list;
}

val monolithic : inventory
val sublayered : inventory list
(** One inventory per sublayer: dm, cm, rd, osr. *)

val entangled_pairs : inventory -> int
val function_count : inventory -> int
val shared_field_matrix : inventory -> (string * string * int) list
(** (func, func, #shared fields) for every entangled pair. *)

val cross_sublayer_shared_fields : unit -> int
(** Fields accessible from more than one sublayer: 0. *)

val interface_widths : (string * int) list
(** (interface name, constructor count) for each narrow interface. *)

val pp_summary : Format.formatter -> unit -> unit
