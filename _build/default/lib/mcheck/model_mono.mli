(** Bounded model of a {e monolithic} TCP: handshake, windowed data
    transfer and FIN teardown in one joint state machine, the way
    {!Transport.Tcp_monolithic} (and lwIP) are written. It checks the
    same end-to-end property as {!Model_cm} + {!Model_rd} + {!Model_osr}
    combined — and its state space is the product of theirs, which is
    experiment E8's point: the monolithic proof obligation is orders of
    magnitude larger than the sum of the per-sublayer ones. *)

type params = {
  n : int;        (** data segments A sends to B *)
  window : int;
  capacity : int;
  max_retx : int; (** bound on control retransmissions *)
}

val default : params
(** n = 2, window = 2, capacity = 2, max_retx = 1. *)

val model : params -> (module Checker.MODEL)
