type state = { arrived : int; delivered : int }

let rec cumulative mask i = if mask land (1 lsl i) = 0 then i else cumulative mask (i + 1)

let model ~n =
  (module struct
    type nonrec state = state

    let name = Printf.sprintf "osr-reassembly(n=%d)" n

    let initial = [ { arrived = 0; delivered = 0 } ]

    let next s =
      List.concat
        (List.init n (fun i ->
             if s.arrived land (1 lsl i) <> 0 then []
             else begin
               (* RD delivers segment i exactly once; OSR drains the
                  in-order prefix. *)
               let arrived = s.arrived lor (1 lsl i) in
               let delivered = cumulative arrived 0 in
               [ (Printf.sprintf "arrive%d" i, { arrived; delivered }) ]
             end))

    let invariant s =
      (* The delivered prefix must be exactly the contiguous prefix of
         what has arrived: no gaps (premature delivery) and no holdback
         (failure to drain). *)
      let expect = cumulative s.arrived 0 in
      if s.delivered <> expect then
        Some (Printf.sprintf "delivered %d but in-order prefix is %d" s.delivered expect)
      else None

    let accepting s = s.delivered = n
  end : Checker.MODEL)
