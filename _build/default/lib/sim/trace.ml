type entry = { time : float; actor : string; event : string }

type t = { mutable entries : entry list }

let create () = { entries = [] }

let record t ~time ~actor event = t.entries <- { time; actor; event } :: t.entries

let entries t = List.rev t.entries

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let count t ?actor prefix =
  List.length
    (List.filter
       (fun e ->
         starts_with ~prefix e.event
         && match actor with None -> true | Some a -> a = e.actor)
       t.entries)

let clear t = t.entries <- []

let pp fmt t =
  List.iter
    (fun e -> Format.fprintf fmt "%10.6f %-12s %s@." e.time e.actor e.event)
    (entries t)
