(** In-memory event traces.

    Protocol endpoints record interesting events here; tests assert on
    traces and examples print them. Keeping traces structured (rather than
    printing directly) keeps simulation output deterministic and greppable. *)

type entry = { time : float; actor : string; event : string }

type t

val create : unit -> t
val record : t -> time:float -> actor:string -> string -> unit
val entries : t -> entry list
(** In chronological (insertion) order. *)

val count : t -> ?actor:string -> string -> int
(** [count t ~actor prefix] counts entries whose event starts with
    [prefix], optionally filtered by actor. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
