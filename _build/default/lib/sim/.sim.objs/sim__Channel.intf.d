lib/sim/channel.mli: Bitkit Engine
