lib/sim/channel.ml: Bitkit Bytes Char Engine Float String
