lib/sim/engine.ml: Array Bitkit Float
