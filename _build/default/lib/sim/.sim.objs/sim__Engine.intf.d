lib/sim/engine.mli: Bitkit
