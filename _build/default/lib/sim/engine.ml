type event = {
  time : float;
  seq : int;
  fn : unit -> unit;
  mutable dead : bool;
}

type handle = event

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int;
  random : Bitkit.Rng.t;
}

let dummy = { time = 0.; seq = -1; fn = ignore; dead = true }

let create ?(seed = 42) () =
  { heap = Array.make 64 dummy; size = 0; clock = 0.; next_seq = 0;
    fired = 0; live = 0; random = Bitkit.Rng.create seed }

let now t = t.clock
let rng t = t.random

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

let at t ~time fn =
  if time < t.clock then invalid_arg "Engine.at: time in the past";
  let ev = { time; seq = t.next_seq; fn; dead = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  push t ev;
  ev

let schedule t ~after fn =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.clock +. after) fn

let cancel ev =
  if not ev.dead then ev.dead <- true

let cancelled ev = ev.dead

let rec step t =
  match pop t with
  | None -> false
  | Some ev when ev.dead -> step t
  | Some ev ->
      t.clock <- ev.time;
      t.fired <- t.fired + 1;
      t.live <- t.live - 1;
      ev.fn ();
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> u | None -> infinity in
  let continue = ref true in
  while !continue && !budget > 0 do
    match pop t with
    | None ->
        (* "Run until T" leaves the clock at T even if nothing is left to
           do, so callers polling in fixed virtual-time slices always make
           progress. *)
        if Float.is_finite horizon && horizon > t.clock then t.clock <- horizon;
        continue := false
    | Some ev when ev.dead -> ()
    | Some ev when ev.time > horizon ->
        (* Put it back: the caller may resume later. *)
        push t ev;
        t.clock <- horizon;
        continue := false
    | Some ev ->
        t.clock <- ev.time;
        t.fired <- t.fired + 1;
        t.live <- t.live - 1;
        decr budget;
        ev.fn ()
  done

let pending t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).dead then incr n
  done;
  !n

let events_fired t = t.fired
