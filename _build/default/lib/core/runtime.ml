module Make (S : Machine.S) = struct
  type t = {
    engine : Sim.Engine.t;
    trace : Sim.Trace.t option;
    name : string;
    transmit : S.down_req -> unit;
    deliver : S.up_ind -> unit;
    mutable st : S.t;
    (* Arming a timer that is already set re-arms it, so at most one event
       per timer value is live. Timers are few per endpoint; an assoc list
       with structural equality is simplest and deterministic. *)
    mutable timers : (S.timer * Sim.Engine.handle) list;
  }

  let create engine ?trace ~name ~transmit ~deliver st =
    { engine; trace; name; transmit; deliver; st; timers = [] }

  let state t = t.st

  let note t msg =
    match t.trace with
    | None -> ()
    | Some tr -> Sim.Trace.record tr ~time:(Sim.Engine.now t.engine) ~actor:t.name msg

  let cancel_timer t tm =
    match List.assoc_opt tm t.timers with
    | None -> ()
    | Some handle ->
        Sim.Engine.cancel handle;
        t.timers <- List.remove_assoc tm t.timers

  let rec apply t acts = List.iter (apply_one t) acts

  and apply_one t = function
    | Machine.Up ind -> t.deliver ind
    | Machine.Down req -> t.transmit req
    | Machine.Note msg -> note t msg
    | Machine.Cancel_timer tm -> cancel_timer t tm
    | Machine.Set_timer (tm, delay) ->
        cancel_timer t tm;
        let handle = Sim.Engine.schedule t.engine ~after:delay (fun () -> fire t tm) in
        t.timers <- (tm, handle) :: t.timers

  and fire t tm =
    t.timers <- List.remove_assoc tm t.timers;
    let st, acts = S.handle_timer t.st tm in
    t.st <- st;
    apply t acts

  let from_above t req =
    let st, acts = S.handle_up_req t.st req in
    t.st <- st;
    apply t acts

  let from_below t ind =
    let st, acts = S.handle_down_ind t.st ind in
    t.st <- st;
    apply t acts

  let active_timers t = List.length t.timers
end
