lib/core/seqspace.ml: Int
