lib/core/machine.ml: Either List
