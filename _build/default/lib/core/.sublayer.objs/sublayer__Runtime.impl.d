lib/core/runtime.ml: List Machine Sim
