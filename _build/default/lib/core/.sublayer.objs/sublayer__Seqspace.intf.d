lib/core/seqspace.mli:
