lib/core/runtime.mli: Machine Sim
