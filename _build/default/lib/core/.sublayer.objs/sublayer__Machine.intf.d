lib/core/machine.mli: Either
