lib/core/layout.ml: Format List Printf
