(** Runs a sublayer (or a whole {!Machine.Stack}) under the discrete-event
    simulator: timers become engine events, [Down] requests go to a
    transmit function (usually a {!Sim.Channel}), [Up] indications go to a
    delivery callback, and [Note]s are recorded in an optional trace. *)

module Make (S : Machine.S) : sig
  type t

  val create :
    Sim.Engine.t ->
    ?trace:Sim.Trace.t ->
    name:string ->
    transmit:(S.down_req -> unit) ->
    deliver:(S.up_ind -> unit) ->
    S.t ->
    t
  (** [name] identifies this endpoint in traces. *)

  val state : t -> S.t
  (** Current sublayer state (for assertions and inspection). *)

  val from_above : t -> S.up_req -> unit
  (** Inject an application-level request. *)

  val from_below : t -> S.down_ind -> unit
  (** Inject a message arriving from the wire; wire this as the channel's
      delivery callback. *)

  val active_timers : t -> int
end
