type t = { width : int; modulus : int; half : int }

let create ~width =
  if width < 1 || width > 62 then invalid_arg "Seqspace.create";
  { width; modulus = 1 lsl width; half = 1 lsl (width - 1) }

let width t = t.width
let modulus t = t.modulus

let wrap t v = v land (t.modulus - 1)

let reconstruct t ~reference w =
  let w = wrap t w in
  let d = (w - reference) land (t.modulus - 1) in
  let d = if d >= t.half then d - t.modulus else d in
  reference + d

let compare_near t ~reference a b =
  Int.compare (reconstruct t ~reference a) (reconstruct t ~reference b)
