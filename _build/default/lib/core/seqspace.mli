(** Wrap-around sequence-number arithmetic.

    Protocol machines keep unbounded integer sequence numbers internally
    (so reasoning is simple) and put only the low [width] bits on the wire.
    This module converts between the two: {!wrap} truncates for
    transmission and {!reconstruct} recovers the unbounded value nearest to
    a local reference — correct as long as the peer can never be more than
    half the number space away, the classic windowing condition. Used by
    the ARQ sublayers (16-bit) and by TCP sequence numbers (32-bit). *)

type t

val create : width:int -> t
(** [width] in bits, between 1 and 62. *)

val width : t -> int
val modulus : t -> int

val wrap : t -> int -> int
(** Low [width] bits of an unbounded sequence number. *)

val reconstruct : t -> reference:int -> int -> int
(** [reconstruct t ~reference w] is the unbounded value congruent to [w]
    within half the number space of [reference] (the result lies in
    [reference - 2{^width-1}, reference + 2{^width-1})). It may be
    negative if the wire value is garbage; callers should range-check. *)

val compare_near : t -> reference:int -> int -> int -> int
(** Compare two wire values after reconstruction around [reference]. *)
