type field = { fname : string; owner : string; offset : int; width : int }

type t = { total : int; fields : field list }

let overlap a b =
  a.offset < b.offset + b.width && b.offset < a.offset + a.width

let make ~total_bits fields =
  let rec check = function
    | [] -> Ok { total = total_bits; fields }
    | f :: rest ->
        if f.width <= 0 then Error (Printf.sprintf "field %s: empty" f.fname)
        else if f.offset < 0 || f.offset + f.width > total_bits then
          Error (Printf.sprintf "field %s: out of bounds" f.fname)
        else begin
          match List.find_opt (overlap f) rest with
          | Some g -> Error (Printf.sprintf "fields %s and %s overlap" f.fname g.fname)
          | None -> check rest
        end
  in
  check fields

let make_exn ~total_bits fields =
  match make ~total_bits fields with
  | Ok t -> t
  | Error msg -> invalid_arg ("Layout.make_exn: " ^ msg)

let total_bits t = t.total
let fields t = t.fields

let owners t =
  List.fold_left
    (fun acc f -> if List.mem f.owner acc then acc else acc @ [ f.owner ])
    [] t.fields

let fields_of t owner = List.filter (fun f -> f.owner = owner) t.fields

let bits_of t owner =
  List.fold_left (fun acc f -> acc + f.width) 0 (fields_of t owner)

let covered_bits t = List.fold_left (fun acc f -> acc + f.width) 0 t.fields

let owner_of_bit t i =
  match List.find_opt (fun f -> i >= f.offset && i < f.offset + f.width) t.fields with
  | Some f -> Some f.owner
  | None -> None

let pp fmt t =
  Format.fprintf fmt "header (%d bits):@." t.total;
  List.iter
    (fun f ->
      Format.fprintf fmt "  [%4d..%4d) %-12s owner=%s@." f.offset (f.offset + f.width)
        f.fname f.owner)
    t.fields
