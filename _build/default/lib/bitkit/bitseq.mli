(** Immutable sequences of bits.

    A [Bitseq.t] is an arbitrary-length bit string with O(1) random access,
    stored MSB-first within bytes. It is the common currency between the
    physical-layer encodings, the framing sublayers and the verified
    bit-stuffing library (which prefers [bool list] but converts freely). *)

type t

val empty : t
val length : t -> int
val get : t -> int -> bool
(** [get t i] is bit [i] (0-based). Raises [Invalid_argument] out of range. *)

val of_bool_list : bool list -> t
val to_bool_list : t -> bool list
val of_bytes_bits : Bytes.t -> int -> t
(** [of_bytes_bits b len] views the first [len] bits of [b] (MSB-first
    packing) as a bit string; the buffer is copied and padding cleared. *)

val of_string : string -> t
(** [of_string s] interprets each [char] of [s] as 8 bits, MSB first. *)

val to_string : t -> string
(** [to_string t] packs bits into bytes (zero-padded to a byte boundary). *)

val of_bits : string -> t
(** [of_bits "0110"] parses a literal of ['0']/['1'] characters. *)

val to_bits : t -> string
(** Inverse of {!of_bits}: a ['0']/['1'] rendering. *)

val append : t -> t -> t
val concat : t list -> t
val cons : bool -> t -> t
val snoc : t -> bool -> t
val sub : t -> int -> int -> t
(** [sub t pos len] is the [len]-bit slice starting at [pos]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_prefix : prefix:t -> t -> bool
val find_sub : pattern:t -> t -> int option
(** [find_sub ~pattern t] is the index of the first occurrence of
    [pattern] in [t], if any. *)

val popcount : t -> int
val map : (bool -> bool) -> t -> t
val flip : t -> int -> t
(** [flip t i] is [t] with bit [i] inverted (used for error injection). *)

val random : Rng.t -> int -> t
(** [random rng n] is a uniform random bit string of length [n]. *)

val fold_left : ('a -> bool -> 'a) -> 'a -> t -> 'a
val iteri : (int -> bool -> unit) -> t -> unit
val rev : t -> t
val repeat : t -> int -> t
(** [repeat t k] is [t] concatenated [k] times. *)

val pp : Format.formatter -> t -> unit
