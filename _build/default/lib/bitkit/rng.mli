(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component in the repository draws randomness through
    this module so that simulations, tests and benchmarks are exactly
    reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new, statistically independent stream from [t],
    advancing [t]. Useful to give each simulated node its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int -> int
(** [bits t n] is a uniform [n]-bit non-negative integer, [0 <= n <= 62]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val bool : t -> bool

val coin : t -> float -> bool
(** [coin t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t rate] samples an exponential inter-arrival time. *)
