type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }

let bits t n =
  assert (n >= 0 && n <= 62);
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (int64 t) (64 - n))

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  Float.of_int r *. 0x1p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let coin t p = float t < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t rate =
  assert (rate > 0.);
  -.log1p (-.float t) /. rate
