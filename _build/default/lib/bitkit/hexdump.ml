let hex_digit n = "0123456789abcdef".[n]

let of_string s =
  String.concat ""
    (List.map
       (fun c ->
         let b = Char.code c in
         Printf.sprintf "%c%c" (hex_digit (b lsr 4)) (hex_digit (b land 0xF)))
       (List.init (String.length s) (String.get s)))

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hexdump.to_string"

let to_string s =
  let n = String.length s in
  if n land 1 = 1 then invalid_arg "Hexdump.to_string: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let pp fmt s =
  let n = String.length s in
  let line off =
    let len = min 16 (n - off) in
    let hex =
      String.concat " "
        (List.init len (fun i ->
             let b = Char.code s.[off + i] in
             Printf.sprintf "%02x" b))
    in
    let ascii =
      String.init len (fun i ->
          let c = s.[off + i] in
          if Char.code c >= 32 && Char.code c < 127 then c else '.')
    in
    Format.fprintf fmt "%08x  %-47s  |%s|@." off hex ascii
  in
  let off = ref 0 in
  while !off < n do
    line !off;
    off := !off + 16
  done
