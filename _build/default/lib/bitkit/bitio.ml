module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nbits : int; mutable total : int }

  let create () = { buf = Buffer.create 64; acc = 0; nbits = 0; total = 0 }

  let bit t b =
    t.acc <- (t.acc lsl 1) lor (if b then 1 else 0);
    t.nbits <- t.nbits + 1;
    t.total <- t.total + 1;
    if t.nbits = 8 then begin
      Buffer.add_char t.buf (Char.chr t.acc);
      t.acc <- 0;
      t.nbits <- 0
    end

  let bits t value width =
    assert (width >= 0 && width <= 62);
    for i = width - 1 downto 0 do
      bit t ((value lsr i) land 1 = 1)
    done

  let uint8 t v = bits t v 8
  let uint16 t v = bits t v 16
  let uint32 t v = bits t v 32

  let pad_to_byte t = while t.nbits <> 0 do bit t false done

  let bytes t s =
    if t.nbits <> 0 then invalid_arg "Bitio.Writer.bytes: not byte-aligned";
    Buffer.add_string t.buf s;
    t.total <- t.total + (8 * String.length s)

  let bit_length t = t.total

  let contents t =
    let copy = { buf = Buffer.create 0; acc = t.acc; nbits = t.nbits; total = t.total } in
    Buffer.add_buffer copy.buf t.buf;
    pad_to_byte copy;
    Buffer.contents copy.buf
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Truncated

  let of_string data = { data; pos = 0 }

  let bit t =
    let byte = t.pos lsr 3 in
    if byte >= String.length t.data then raise Truncated;
    let b = Char.code t.data.[byte] in
    let v = b land (0x80 lsr (t.pos land 7)) <> 0 in
    t.pos <- t.pos + 1;
    v

  let bits t width =
    assert (width >= 0 && width <= 62);
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if bit t then 1 else 0)
    done;
    !v

  let uint8 t = bits t 8
  let uint16 t = bits t 16
  let uint32 t = bits t 32

  let bytes t n =
    if t.pos land 7 <> 0 then invalid_arg "Bitio.Reader.bytes: not byte-aligned";
    let start = t.pos lsr 3 in
    if start + n > String.length t.data then raise Truncated;
    t.pos <- t.pos + (8 * n);
    String.sub t.data start n

  let skip_to_byte t = t.pos <- (t.pos + 7) land lnot 7

  let remaining_bits t = (8 * String.length t.data) - t.pos

  let rest t = bytes t (remaining_bits t / 8)
end
