(** Hex rendering helpers for traces and debugging output. *)

val of_string : string -> string
(** ["\x01\xab"] becomes ["01ab"]. *)

val to_string : string -> string
(** Inverse of {!of_string}. Raises [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> string -> unit
(** Classic 16-bytes-per-line hexdump with an ASCII gutter. *)
