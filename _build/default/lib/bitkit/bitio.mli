(** Bit-granular readers and writers for header codecs.

    Every sublayer header in the repository is encoded/decoded through this
    module, which makes bit-level field boundaries explicit — the mechanism
    by which test T3 (each sublayer owns disjoint packet bits) is enforced
    and audited. Multi-bit fields are MSB-first (network order). *)

module Writer : sig
  type t

  val create : unit -> t
  val bit : t -> bool -> unit
  val bits : t -> int -> int -> unit
  (** [bits w value width] appends the low [width] bits of [value],
      MSB first. [0 <= width <= 62]. *)

  val uint8 : t -> int -> unit
  val uint16 : t -> int -> unit
  val uint32 : t -> int -> unit
  val bytes : t -> string -> unit
  (** [bytes w s] appends [s]; the writer must be byte-aligned. *)

  val pad_to_byte : t -> unit
  val bit_length : t -> int
  val contents : t -> string
  (** Zero-pads to a byte boundary and returns the packed bytes. *)
end

module Reader : sig
  type t

  exception Truncated

  val of_string : string -> t
  val bit : t -> bool
  val bits : t -> int -> int
  val uint8 : t -> int
  val uint16 : t -> int
  val uint32 : t -> int
  val bytes : t -> int -> string
  (** [bytes r n] reads [n] whole bytes; the reader must be byte-aligned. *)

  val skip_to_byte : t -> unit
  val remaining_bits : t -> int
  val rest : t -> string
  (** All remaining bytes (reader must be byte-aligned). *)
end
