(** SipHash-2-4 keyed hash (Aumasson–Bernstein).

    Used by the transport record sublayer as its authentication tag.
    Validated against the reference test vectors in the test suite. *)

val hash : key:string -> string -> int64
(** [hash ~key msg] with a 16-byte [key]. *)

val tag : key:string -> string -> string
(** The 8-byte little-endian serialisation of {!hash}. *)
