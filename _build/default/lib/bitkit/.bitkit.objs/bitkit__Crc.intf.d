lib/bitkit/crc.mli:
