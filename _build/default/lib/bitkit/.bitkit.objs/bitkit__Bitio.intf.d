lib/bitkit/bitio.mli:
