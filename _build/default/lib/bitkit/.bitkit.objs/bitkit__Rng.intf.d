lib/bitkit/rng.mli:
