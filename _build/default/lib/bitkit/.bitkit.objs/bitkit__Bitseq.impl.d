lib/bitkit/bitseq.ml: Array Bytes Char Format List Rng Stdlib String
