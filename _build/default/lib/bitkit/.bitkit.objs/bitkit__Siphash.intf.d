lib/bitkit/siphash.mli:
