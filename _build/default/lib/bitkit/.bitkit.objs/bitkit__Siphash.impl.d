lib/bitkit/siphash.ml: Char Int64 String
