lib/bitkit/bitio.ml: Buffer Char String
