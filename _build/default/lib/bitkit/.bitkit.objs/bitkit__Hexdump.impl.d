lib/bitkit/hexdump.ml: Char Format List Printf String
