lib/bitkit/rng.ml: Array Float Int64
