lib/bitkit/checksum.ml: Char Int32 String
