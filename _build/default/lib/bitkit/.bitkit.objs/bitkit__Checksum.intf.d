lib/bitkit/checksum.mli:
