lib/bitkit/hexdump.mli: Format
