lib/bitkit/chacha20.ml: Array Bytes Char String
