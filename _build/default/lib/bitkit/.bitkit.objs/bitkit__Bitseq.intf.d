lib/bitkit/bitseq.mli: Bytes Format Rng
