lib/bitkit/chacha20.mli:
