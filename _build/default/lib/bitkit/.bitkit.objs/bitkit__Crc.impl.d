lib/bitkit/crc.ml: Array Char Int64 String
