(* Bits are stored MSB-first: bit [i] lives in byte [i / 8] at bit
   position [7 - i mod 8]. [len] is the number of valid bits; trailing
   padding bits in the last byte are always zero, which makes [equal]
   and [compare] a plain byte comparison. *)
type t = { data : Bytes.t; len : int }

let empty = { data = Bytes.empty; len = 0 }

let length t = t.len

let bytes_for_bits n = (n + 7) / 8

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitseq.get";
  let b = Char.code (Bytes.unsafe_get t.data (i lsr 3)) in
  b land (0x80 lsr (i land 7)) <> 0

let unsafe_set_bit data i v =
  let byte = i lsr 3 in
  let mask = 0x80 lsr (i land 7) in
  let b = Char.code (Bytes.unsafe_get data byte) in
  let b = if v then b lor mask else b land lnot mask in
  Bytes.unsafe_set data byte (Char.chr b)

let init n f =
  let data = Bytes.make (bytes_for_bits n) '\000' in
  for i = 0 to n - 1 do
    if f i then unsafe_set_bit data i true
  done;
  { data; len = n }

let of_bool_list l =
  let arr = Array.of_list l in
  init (Array.length arr) (fun i -> arr.(i))

let to_bool_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (get t i :: acc) in
  go (t.len - 1) []

let of_bytes_bits b len =
  if len < 0 || len > 8 * Bytes.length b then invalid_arg "Bitseq.of_bytes_bits";
  let data = Bytes.sub b 0 (bytes_for_bits len) in
  (* Clear padding so structural equality remains byte equality. *)
  if len land 7 <> 0 then begin
    let last = bytes_for_bits len - 1 in
    let keep = 0xFF lsl (8 - (len land 7)) land 0xFF in
    Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land keep))
  end;
  { data; len }

let of_string s =
  { data = Bytes.of_string s; len = 8 * String.length s }

let to_string t = Bytes.to_string t.data

let of_bits s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | _ -> invalid_arg "Bitseq.of_bits")

let to_bits t = String.init t.len (fun i -> if get t i then '1' else '0')

let append a b =
  init (a.len + b.len) (fun i -> if i < a.len then get a i else get b (i - a.len))

let concat l = List.fold_left append empty l

let cons bit t = init (t.len + 1) (fun i -> if i = 0 then bit else get t (i - 1))

let snoc t bit = init (t.len + 1) (fun i -> if i < t.len then get t i else bit)

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitseq.sub";
  init len (fun i -> get t (pos + i))

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.data b.data

let is_prefix ~prefix t =
  prefix.len <= t.len
  &&
  let rec go i = i >= prefix.len || (get prefix i = get t i && go (i + 1)) in
  go 0

let find_sub ~pattern t =
  let n = t.len - pattern.len in
  let matches_at pos =
    let rec go i = i >= pattern.len || (get pattern i = get t (pos + i) && go (i + 1)) in
    go 0
  in
  let rec search pos =
    if pos > n then None else if matches_at pos then Some pos else search (pos + 1)
  in
  if pattern.len = 0 then Some 0 else search 0

let popcount t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if get t i then incr n
  done;
  !n

let map f t = init t.len (fun i -> f (get t i))

let flip t i =
  if i < 0 || i >= t.len then invalid_arg "Bitseq.flip";
  init t.len (fun j -> if j = i then not (get t j) else get t j)

let random rng n = init n (fun _ -> Rng.bool rng)

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (get t i)
  done

let rev t = init t.len (fun i -> get t (t.len - 1 - i))

let repeat t k =
  let rec go k acc = if k <= 0 then acc else go (k - 1) (append acc t) in
  go k empty

let pp fmt t = Format.pp_print_string fmt (to_bits t)
