lib/network/hello.ml: Addr Bitkit Float Hashtbl List Sim
