lib/network/path_vector.ml: Addr Bitkit Hashtbl Int List Routing Sim
