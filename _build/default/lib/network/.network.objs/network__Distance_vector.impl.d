lib/network/distance_vector.ml: Addr Bitkit Hashtbl List Routing Sim
