lib/network/router.mli: Addr Fib Hello Packet Routing Sim
