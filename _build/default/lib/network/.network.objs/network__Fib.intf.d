lib/network/fib.mli: Addr
