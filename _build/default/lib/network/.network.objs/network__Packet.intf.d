lib/network/packet.mli: Addr Format
