lib/network/addr.mli: Format
