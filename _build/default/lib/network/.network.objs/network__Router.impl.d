lib/network/router.ml: Addr Fib Hashtbl Hello Option Packet Routing String
