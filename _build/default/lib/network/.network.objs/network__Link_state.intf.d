lib/network/link_state.mli: Routing
