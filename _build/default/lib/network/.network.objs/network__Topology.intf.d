lib/network/topology.mli: Packet Router Routing Sim
