lib/network/hello.mli: Addr Sim
