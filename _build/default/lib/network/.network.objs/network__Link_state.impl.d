lib/network/link_state.ml: Addr Bitkit Hashtbl List Queue Routing Sim
