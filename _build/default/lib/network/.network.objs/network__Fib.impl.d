lib/network/fib.ml: Addr Int List
