lib/network/routing.mli: Addr Sim
