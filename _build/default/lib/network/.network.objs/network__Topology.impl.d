lib/network/topology.ml: Addr Array Bitkit Fib Hashtbl List Packet Queue Router Sim
