lib/network/packet.ml: Addr Format String
