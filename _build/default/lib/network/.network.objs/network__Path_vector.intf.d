lib/network/path_vector.mli: Routing
