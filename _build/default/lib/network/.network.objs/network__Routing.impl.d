lib/network/routing.ml: Addr Sim
