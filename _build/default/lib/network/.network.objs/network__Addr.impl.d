lib/network/addr.ml: Format Int Printf String
