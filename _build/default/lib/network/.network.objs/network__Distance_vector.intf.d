lib/network/distance_vector.mli: Routing
