(** Link-state route computation behind the {!Routing.factory} interface:
    sequence-numbered LSP flooding, database sync on adjacency-up, and
    shortest-path-first (unit-cost Dijkstra = BFS) with a two-way
    connectivity check. Experiment E2 swaps this against
    {!Distance_vector} to show that the forwarding sublayer is untouched
    by the change. *)

type config = { refresh_interval : float }

val default_config : config

val factory : ?config:config -> unit -> Routing.factory
