(** 32-bit network-layer addresses and prefixes.

    The paper's "Names" principle: the network {e layer} owns a namespace
    (addresses); its sublayers — neighbor determination, route
    computation, forwarding — all borrow this namespace rather than
    introducing their own. *)

type t = int
(** An IPv4-style 32-bit address held in an OCaml int. *)

val of_string : string -> t
(** Dotted quad, e.g. ["10.0.0.1"]. Raises [Invalid_argument] if
    malformed. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val node : int -> t
(** [node i] is the conventional address of simulated node [i]
    (10.0.x.y). *)

type prefix = { net : t; len : int }

val prefix : t -> int -> prefix
(** [prefix a len] normalises [a] to its first [len] bits. *)

val prefix_of_string : string -> prefix
(** ["10.0.0.0/8"] syntax. *)

val host : t -> prefix
(** The /32 prefix of one address. *)

val matches : prefix -> t -> bool
val pp_prefix : Format.formatter -> prefix -> unit
