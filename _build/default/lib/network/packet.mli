(** Network-layer packets.

    Test T3 for the network sublayers holds because they use "completely
    different packets (e.g., LSPs versus IP packets), not merely different
    headers in the same packet": {!t} is the data-plane packet; hello and
    routing PDUs travel as distinct frame kinds (see {!Router.frame}). *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  ttl : int;
  payload : string;
}

val make : ?ttl:int -> src:Addr.t -> dst:Addr.t -> string -> t
(** Default TTL 64. *)

val decrement_ttl : t -> t option
(** [None] when the TTL expires. *)

val size : t -> int
(** Approximate on-wire bytes (fixed 12-byte header + payload). *)

val pp : Format.formatter -> t -> unit
