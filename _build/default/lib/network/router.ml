type frame = Hello_pdu of string | Routing_pdu of string | Data of Packet.t

let frame_size = function
  | Hello_pdu s | Routing_pdu s -> String.length s
  | Data p -> Packet.size p

type stats = {
  mutable forwarded : int;
  mutable delivered : int;
  mutable originated : int;
  mutable no_route : int;
  mutable ttl_expired : int;
}

type t = {
  addr : Addr.t;
  fib : Fib.t;
  mutable hello : Hello.t option;
  mutable routing : Routing.instance option;
  interfaces : (int, frame -> unit) Hashtbl.t;
  mutable next_ifindex : int;
  deliver : Packet.t -> unit;
  stats : stats;
}

let transmit t ifindex frame =
  match Hashtbl.find_opt t.interfaces ifindex with
  | Some send -> send frame
  | None -> ()

let create engine ?(hello_config = Hello.default_config) ~addr ~routing ~deliver () =
  let t =
    { addr; fib = Fib.create (); hello = None; routing = None;
      interfaces = Hashtbl.create 4; next_ifindex = 0; deliver;
      stats = { forwarded = 0; delivered = 0; originated = 0; no_route = 0; ttl_expired = 0 } }
  in
  let env =
    {
      Routing.engine;
      self = addr;
      send = (fun i pdu -> transmit t i (Routing_pdu pdu));
      install = (fun dst ifindex -> Fib.insert t.fib (Addr.host dst) ifindex);
      uninstall = (fun dst -> Fib.remove t.fib (Addr.host dst));
    }
  in
  let instance = routing.Routing.make env in
  let notify = function
    | Hello.Up { ifindex; peer } -> instance.Routing.neighbor_up ~ifindex peer
    | Hello.Down { ifindex; peer } -> instance.Routing.neighbor_down ~ifindex peer
  in
  let hello =
    Hello.create engine hello_config ~self:addr
      ~send:(fun i pdu -> transmit t i (Hello_pdu pdu))
      ~notify
  in
  t.hello <- Some hello;
  t.routing <- Some instance;
  t

let addr t = t.addr
let fib t = t.fib
let routing t = Option.get t.routing
let stats t = t.stats
let neighbors t = Hello.neighbors (Option.get t.hello)

let add_interface t ~transmit:send =
  let ifindex = t.next_ifindex in
  t.next_ifindex <- ifindex + 1;
  Hashtbl.replace t.interfaces ifindex send;
  Hello.add_interface (Option.get t.hello) ifindex;
  ifindex

(* The forwarding data path: local delivery, FIB lookup, TTL handling.
   Route computation is invisible here except through the FIB. *)
let route t packet =
  if Addr.equal packet.Packet.dst t.addr then begin
    t.stats.delivered <- t.stats.delivered + 1;
    t.deliver packet
  end
  else begin
    match Fib.lookup t.fib packet.Packet.dst with
    | None -> t.stats.no_route <- t.stats.no_route + 1
    | Some ifindex -> (
        match Packet.decrement_ttl packet with
        | None -> t.stats.ttl_expired <- t.stats.ttl_expired + 1
        | Some packet ->
            t.stats.forwarded <- t.stats.forwarded + 1;
            transmit t ifindex (Data packet))
  end

let on_frame t ~ifindex frame =
  match frame with
  | Hello_pdu pdu -> Hello.on_pdu (Option.get t.hello) ~ifindex pdu
  | Routing_pdu pdu -> (routing t).Routing.on_pdu ~ifindex pdu
  | Data packet -> route t packet

let originate t ~dst payload =
  t.stats.originated <- t.stats.originated + 1;
  route t (Packet.make ~src:t.addr ~dst payload)

let stop t = Hello.stop (Option.get t.hello)
