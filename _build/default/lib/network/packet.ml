type t = { src : Addr.t; dst : Addr.t; ttl : int; payload : string }

let make ?(ttl = 64) ~src ~dst payload = { src; dst; ttl; payload }

let decrement_ttl p = if p.ttl <= 1 then None else Some { p with ttl = p.ttl - 1 }

let size p = 12 + String.length p.payload

let pp fmt p =
  Format.fprintf fmt "%a -> %a ttl=%d (%d bytes)" Addr.pp p.src Addr.pp p.dst p.ttl
    (String.length p.payload)
