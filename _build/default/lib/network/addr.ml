type t = int

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (int_of_string a, int_of_string b, int_of_string c, int_of_string d) with
      | a, b, c, d
        when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0
             && d < 256 ->
          (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
      | _ -> invalid_arg "Addr.of_string: octet out of range"
      | exception Failure _ -> invalid_arg "Addr.of_string: not an integer")
  | _ -> invalid_arg "Addr.of_string: expected a.b.c.d"

let to_string a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

let pp fmt a = Format.pp_print_string fmt (to_string a)
let equal = Int.equal
let compare = Int.compare

let node i = (10 lsl 24) lor (i land 0xFFFF)

type prefix = { net : t; len : int }

let mask len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let prefix a len =
  if len < 0 || len > 32 then invalid_arg "Addr.prefix: bad length";
  { net = a land mask len; len }

let prefix_of_string s =
  match String.index_opt s '/' with
  | None -> invalid_arg "Addr.prefix_of_string: missing /len"
  | Some i ->
      let a = of_string (String.sub s 0 i) in
      let len = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      prefix a len

let host a = { net = a; len = 32 }

let matches p a = a land mask p.len = p.net

let pp_prefix fmt p = Format.fprintf fmt "%s/%d" (to_string p.net) p.len
