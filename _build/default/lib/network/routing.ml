type instance = {
  rname : string;
  neighbor_up : ifindex:int -> Addr.t -> unit;
  neighbor_down : ifindex:int -> Addr.t -> unit;
  on_pdu : ifindex:int -> string -> unit;
  routes : unit -> (Addr.t * int) list;
}

type env = {
  engine : Sim.Engine.t;
  self : Addr.t;
  send : int -> string -> unit;
  install : Addr.t -> int -> unit;
  uninstall : Addr.t -> unit;
}

type factory = { protocol : string; make : env -> instance }
