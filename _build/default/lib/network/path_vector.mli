(** Path-vector route computation (BGP-style) behind the same
    {!Routing.factory} interface as {!Distance_vector} and {!Link_state}
    — the third interchangeable mechanism for the route-computation
    sublayer of Figure 4.

    Advertisements carry the full path of router addresses to each
    destination; a router discards any route whose path already contains
    itself, which prevents loops {e structurally} instead of by
    counting-to-infinity. Shorter paths are preferred; ties break on the
    lexicographically smaller next hop (deterministic convergence). *)

type config = {
  advertise_interval : float;
  triggered_delay : float;
  max_path : int;  (** routes longer than this are discarded *)
}

val default_config : config

val factory : ?config:config -> unit -> Routing.factory
