(** Distance-vector route computation (RIP-style Bellman–Ford) behind the
    {!Routing.factory} interface: split horizon with poisoned reverse,
    triggered updates, infinity = 16. *)

type config = {
  advertise_interval : float;
  triggered_delay : float;  (** batching delay for triggered updates *)
  infinity_metric : int;
}

val default_config : config

val factory : ?config:config -> unit -> Routing.factory
