(** Stuffing overhead under the random-data model (paper §4.1, lesson 2:
    the HDLC rule costs "1 in 32" while flag 00000010 with stuff-1-after-
    0000001 costs "1 in 128").

    Three estimators are provided. [naive] is the per-window match
    probability 2^-k, which is the figure the paper quotes. [stationary]
    is the exact asymptotic insertion rate of the stuffing transducer
    under i.i.d. uniform bits (computed by power iteration on the window
    Markov chain); for triggers with self-overlap — such as HDLC's 11111 —
    it differs from [naive] (HDLC's exact rate is 1/62, not 1/32), a
    discrepancy EXPERIMENTS.md discusses. [empirical] stuffs a long random
    bit string and measures. *)

val naive : Rule.rule -> float
(** [2. ** -k] for a length-[k] trigger. *)

val stationary : Rule.rule -> float
(** Exact asymptotic inserted-bits-per-data-bit rate. *)

val empirical : ?bits:int -> seed:int -> Rule.rule -> float
(** Measured rate on [bits] (default 1_000_000) random bits. *)

val expected_frame_expansion : Rule.scheme -> payload_bits:int -> float
(** Expected encoded size of a [payload_bits]-bit frame, counting flags
    and expected stuffing, in bits. *)
