type space = {
  sname : string;
  flag_len : int;
  trigger_lens : int list;
  structured : bool;
}

let structured_space =
  { sname = "flag8/hdlc-shaped"; flag_len = 8; trigger_lens = [ 1; 2; 3; 4; 5; 6 ];
    structured = true }

let free_space ~trigger_lens =
  let lens = String.concat "," (List.map string_of_int trigger_lens) in
  { sname = "flag8/free-trig{" ^ lens ^ "}"; flag_len = 8; trigger_lens;
    structured = false }

let bits_of_int n len = List.init len (fun i -> (n lsr (len - 1 - i)) land 1 = 1)

(* HDLC-shaped rule for flag [f] and interior length [j]: the trigger is
   f1..fj and the stuffed bit breaks the flag by complementing f(j+1).
   HDLC itself is (flag 01111110, j = 5): trigger 11111, stuff 0. *)
let shaped_rule flag j =
  let arr = Array.of_list flag in
  { Rule.trigger = Array.to_list (Array.sub arr 1 j); stuff = not arr.(j + 1) }

let enumerate space =
  let flags = Seq.init (1 lsl space.flag_len) (fun n -> bits_of_int n space.flag_len) in
  if space.structured then
    Seq.concat_map
      (fun flag ->
        List.to_seq space.trigger_lens
        |> Seq.filter_map (fun j ->
               if j + 1 < space.flag_len then
                 Some { Rule.flag; rule = shaped_rule flag j }
               else None))
      flags
  else
    Seq.concat_map
      (fun flag ->
        List.to_seq space.trigger_lens
        |> Seq.concat_map (fun j ->
               Seq.init (1 lsl j) (fun t ->
                   let trigger = bits_of_int t j in
                   List.to_seq [ false; true ]
                   |> Seq.map (fun stuff -> { Rule.flag; rule = { Rule.trigger; stuff } }))
               |> Seq.concat))
      flags

let candidate_count space = Seq.length (enumerate space)

type outcome = {
  space : space;
  candidates : int;
  valid : int;
  by_trigger_len : (int * int) list;
  best : (Rule.scheme * float) list;
}

let run ?(best_limit = 10) space =
  let candidates = ref 0 in
  let valid = ref 0 in
  let by_len = Hashtbl.create 8 in
  let kept = ref [] in
  Seq.iter
    (fun scheme ->
      incr candidates;
      if Automaton.valid scheme then begin
        incr valid;
        let k = List.length scheme.Rule.rule.Rule.trigger in
        Hashtbl.replace by_len k (1 + Option.value ~default:0 (Hashtbl.find_opt by_len k));
        let rate = Overhead.stationary scheme.Rule.rule in
        kept := (scheme, rate) :: !kept
      end)
    (enumerate space);
  let best =
    List.sort (fun (_, a) (_, b) -> Float.compare a b) !kept
    |> List.filteri (fun i _ -> i < best_limit)
  in
  let by_trigger_len =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_len []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  { space; candidates = !candidates; valid = !valid; by_trigger_len; best }

let valid_schemes space =
  enumerate space |> Seq.filter Automaton.valid |> List.of_seq

let pp_outcome fmt o =
  Format.fprintf fmt "space %s: %d candidates, %d valid@." o.space.sname o.candidates
    o.valid;
  List.iter
    (fun (k, n) -> Format.fprintf fmt "  trigger length %d: %d valid@." k n)
    o.by_trigger_len;
  List.iter
    (fun (s, rate) ->
      Format.fprintf fmt "  %a  overhead 1/%.0f@." Rule.pp_scheme s (1. /. rate))
    o.best
