(** Exact validity checking of stuffing schemes.

    This is the OCaml substitute for the paper's Coq proofs: instead of
    deductive verification we {e decide} correctness exactly. The stuffer
    is a finite transducer (its state is the last [k] output bits) and
    "the flag appears in a framed stuffed stream" is a reachability
    question on the product of that transducer with a KMP matcher for the
    flag — over {e all} data, of {e any} length, not just bounded tests.

    A scheme is valid iff
    - the rule terminates (the stuffed bit never re-completes the trigger),
    - after the receiver consumes the opening flag, the remainder
      [stuff d ++ flag] contains no flag occurrence before the closing one.

    The receiver model matches {!Codec.remove_flags}: the scan restarts
    after the opening flag, so occurrences that overlap the opener are not
    mis-framings (the paper's improved scheme depends on this — e.g. data
    [0000010] makes the opener's last bit plus the data spell a flag, yet
    no scanning decoder ever sees it). The two failure modes the checker
    catches are exactly the paper's: a stuffed stream spelling a flag, and
    data plus a prefix of the closing flag spelling an early flag.

    Validity implies the paper's top-level specification
    [decode (encode d) = Some d] for all [d]; {!Lemmas} cross-checks this
    against exhaustive bounded enumeration. *)

type violation =
  | Ill_formed_rule
      (** Empty trigger, empty flag, or non-terminating stuffing. *)
  | Flag_in_data
      (** Some data causes a flag occurrence ending inside the stuffed
          region, as seen by a decoder scanning after the opening flag. *)
  | Premature_closing_flag
      (** Some data suffix combines with the closing flag to form an
          earlier flag occurrence, truncating the frame. *)

val pp_violation : Format.formatter -> violation -> unit

val check : Rule.scheme -> (unit, violation) result
(** Exact decision, independent of data length. *)

val valid : Rule.scheme -> bool

val reachable_states : Rule.scheme -> int
(** Size of the explored product state space (a proxy for "proof size"). *)

val find_counterexample : Rule.scheme -> max_len:int -> Rule.bits option
(** Exhaustive search for data of length [<= max_len] violating
    [decode (encode d) = Some d]; used to cross-validate {!check}. *)
