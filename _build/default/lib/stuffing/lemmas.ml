type lemma = { lname : string; sublayer : string; check : unit -> bool }

let exhaustive_bound = 12

let bits_of n len = List.init len (fun i -> (n lsr (len - 1 - i)) land 1 = 1)

(* [forall_data bound p] checks [p] on every bit string of length <= bound. *)
let forall_data bound p =
  let ok = ref true in
  (try
     for len = 0 to bound do
       for n = 0 to (1 lsl len) - 1 do
         if not (p (bits_of n len)) then begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !ok

let is_prefix p s =
  let rec go p s =
    match (p, s) with
    | [], _ -> true
    | _, [] -> false
    | a :: p, b :: s -> a = b && go p s
  in
  go p s

(* All positions where [pattern] occurs in [s] (position = index of the
   occurrence's first bit). *)
let occurrences pattern s =
  let rec go i s acc =
    match s with
    | [] -> List.rev acc
    | _ :: tl ->
        let acc = if is_prefix pattern s then i :: acc else acc in
        go (i + 1) tl acc
  in
  go 0 s []

let drop_last l =
  match List.rev l with [] -> [] | _ :: tl -> List.rev tl

let ones n = List.init n (fun _ -> true)

let for_scheme tag scheme =
  let { Rule.flag; rule } = scheme in
  let n = exhaustive_bound in
  let m = List.length flag in
  let lem sublayer lname check = { lname = tag ^ "." ^ lname; sublayer; check } in
  [
    lem "meta" "rule_well_formed" (fun () -> Rule.rule_well_formed rule);
    lem "meta" "scheme_valid_by_automaton" (fun () -> Automaton.valid scheme);
    lem "stuffing" "stuff_nil_is_nil" (fun () -> Codec.stuff rule [] = []);
    lem "stuffing" "stuff_never_shrinks" (fun () ->
        forall_data n (fun d -> List.length (Codec.stuff rule d) >= List.length d));
    lem "stuffing" "stuff_at_most_doubles" (fun () ->
        forall_data n (fun d -> List.length (Codec.stuff rule d) <= 2 * List.length d));
    lem "stuffing" "no_naked_trigger_in_stuffed" (fun () ->
        (* Every trigger occurrence in the stuffed stream is immediately
           followed by the stuffed bit: the receiver can rely on it. *)
        forall_data n (fun d ->
            let s = Codec.stuff rule d in
            let k = List.length rule.trigger in
            List.for_all
              (fun pos ->
                match List.nth_opt s (pos + k) with
                | None -> false (* stream may not end right after a trigger *)
                | Some b -> b = rule.stuff)
              (occurrences rule.trigger s)));
    lem "stuffing" "unstuff_stuff_identity" (fun () ->
        forall_data n (fun d -> Codec.unstuff rule (Codec.stuff rule d) = Some d));
    lem "stuffing" "stuff_injective" (fun () ->
        (* Follows from the identity lemma, checked directly on all pairs
           of short inputs. *)
        let seen = Hashtbl.create 1024 in
        forall_data 8 (fun d ->
            let s = Codec.stuff rule d in
            match Hashtbl.find_opt seen s with
            | Some d' -> d' = d
            | None ->
                Hashtbl.add seen s d;
                true));
    lem "stuffing" "unstuff_rejects_truncated" (fun () ->
        (* If the stream ends exactly on a trigger, the stuffed bit is
           missing and unstuff must fail. *)
        Codec.unstuff rule rule.trigger = None);
    lem "flag" "add_flags_length" (fun () ->
        forall_data n (fun d -> List.length (Codec.add_flags flag d) = List.length d + (2 * m)));
    lem "flag" "remove_flags_needs_two_flags" (fun () ->
        Codec.remove_flags flag flag = None && Codec.remove_flags flag [] = None);
    lem "composition" "flag_absent_from_stuffed_data" (fun () ->
        forall_data n (fun d -> occurrences flag (Codec.stuff rule d) = []));
    lem "composition" "opening_boundary_safe" (fun () ->
        (* Any flag occurrence in flag ++ stuffed other than the opener
           itself at least overlaps the opener (pos < m) — the scanning
           decoder, which restarts after the opener, never sees it. *)
        forall_data n (fun d ->
            occurrences flag (flag @ Codec.stuff rule d)
            |> List.for_all (fun pos -> pos < m)));
    lem "composition" "closing_boundary_safe" (fun () ->
        forall_data n (fun d ->
            let s = Codec.stuff rule d in
            occurrences flag (s @ flag)
            |> List.for_all (fun pos -> pos = List.length s)));
    lem "composition" "frame_roundtrip" (fun () ->
        forall_data n (fun d ->
            let s = Codec.stuff rule d in
            Codec.remove_flags flag (Codec.add_flags flag s) = Some s));
    lem "composition" "main_spec_decode_encode" (fun () ->
        (* The paper's top-level theorem:
           Unstuff (RemoveFlags (AddFlags (Stuff d))) = d. *)
        forall_data n (fun d -> Codec.decode scheme (Codec.encode scheme d) = Some d));
    lem "composition" "truncated_frame_rejected" (fun () ->
        forall_data (n - 2) (fun d ->
            Codec.decode scheme (drop_last (Codec.encode scheme d)) <> Some d));
    lem "composition" "decode_takes_earliest_frame" (fun () ->
        (* Junk after the closing flag does not change the decoded frame. *)
        forall_data (n - 4) (fun d ->
            let junk = [ true; false; false; true ] in
            Codec.decode scheme (Codec.encode scheme d @ junk) = Some d));
    lem "composition" "empty_payload_frame" (fun () ->
        Codec.decode scheme (Codec.encode scheme []) = Some []);
  ]

let close enough a b = Float.abs (a -. b) < enough
let approx = close 1e-9

let generic =
  let lem sublayer lname check = { lname = "generic." ^ lname; sublayer; check } in
  [
    lem "meta" "checker_sound_on_small_data" (fun () ->
        (* Any scheme the exact checker declares valid admits no bounded
           counterexample: cross-validation of Automaton.check against
           brute force over a structured sample. *)
        Search.enumerate Search.structured_space
        |> Seq.filter Automaton.valid
        |> Seq.for_all (fun s -> Automaton.find_counterexample s ~max_len:9 = None));
    lem "meta" "checker_rejects_known_bad_flag_in_data" (fun () ->
        (* Flag 01111110 with rule stuff-1-after-110: the data 01111110
           itself survives stuffing long enough to appear as a flag. *)
        let bad =
          { Rule.flag = Rule.bits_of_string "01111110";
            rule = { Rule.trigger = Rule.bits_of_string "110"; stuff = true } }
        in
        Automaton.check bad = Error Automaton.Flag_in_data
        && Automaton.find_counterexample bad ~max_len:8 <> None);
    lem "meta" "checker_rejects_nonterminating_rule" (fun () ->
        let bad =
          { Rule.flag = Rule.bits_of_string "01111110";
            rule = { Rule.trigger = Rule.bits_of_string "11111"; stuff = true } }
        in
        Automaton.check bad = Error Automaton.Ill_formed_rule);
    lem "meta" "hdlc_and_paper_best_are_valid" (fun () ->
        Automaton.valid Rule.hdlc && Automaton.valid Rule.paper_best);
    lem "stuffing" "hdlc_all_ones_overhead_formula" (fun () ->
        (* On k consecutive ones HDLC stuffs floor(k/5) zeros. *)
        List.for_all
          (fun k -> Codec.overhead_bits Rule.hdlc.rule (ones k) = k / 5)
          [ 0; 1; 4; 5; 9; 10; 14; 15; 40 ]);
    lem "stuffing" "naive_overhead_matches_paper" (fun () ->
        approx (Overhead.naive Rule.hdlc.rule) (1. /. 32.)
        && approx (Overhead.naive Rule.paper_best.rule) (1. /. 128.));
    lem "stuffing" "paper_best_stationary_is_1_in_128" (fun () ->
        (* The improved trigger 0000001 has no self-overlap, so its exact
           stationary rate equals the naive 2^-7. *)
        close 1e-6 (Overhead.stationary Rule.paper_best.rule) (1. /. 128.));
    lem "stuffing" "hdlc_stationary_is_1_in_62" (fun () ->
        (* 11111 is a run: expected recurrence time is 2^6 - 2 = 62, so the
           exact rate differs from the paper's naive 1/32. *)
        close 1e-6 (Overhead.stationary Rule.hdlc.rule) (1. /. 62.));
    lem "stuffing" "stationary_matches_empirical" (fun () ->
        List.for_all
          (fun rule ->
            let a = Overhead.stationary rule in
            let e = Overhead.empirical ~seed:7 rule in
            Float.abs (a -. e) < 0.15 *. a)
          [ Rule.hdlc.rule; Rule.paper_best.rule ]);
    lem "meta" "hdlc_found_by_structured_search" (fun () ->
        List.exists
          (Rule.equal_scheme Rule.hdlc)
          (Search.valid_schemes Search.structured_space));
    lem "meta" "paper_best_found_by_search" (fun () ->
        List.exists
          (Rule.equal_scheme Rule.paper_best)
          (Search.valid_schemes (Search.free_space ~trigger_lens:[ 7 ])));
  ]

let all =
  for_scheme "hdlc" Rule.hdlc @ for_scheme "best" Rule.paper_best @ generic

let run lemmas = List.map (fun l -> (l, l.check ())) lemmas

let failures lemmas =
  run lemmas |> List.filter (fun (_, ok) -> not ok) |> List.map fst
