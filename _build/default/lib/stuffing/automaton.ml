type violation = Ill_formed_rule | Flag_in_data | Premature_closing_flag

let pp_violation fmt = function
  | Ill_formed_rule -> Format.pp_print_string fmt "ill-formed rule"
  | Flag_in_data -> Format.pp_print_string fmt "flag can occur in stuffed data"
  | Premature_closing_flag -> Format.pp_print_string fmt "premature closing flag"

(* KMP automaton for the flag: [delta.(q).(b)] is the length of the longest
   suffix of the stream that is a prefix of the flag, after reading bit [b]
   in state [q]. State [m] means "a flag occurrence just ended"; transitions
   out of [m] continue via the longest border, so overlapping occurrences
   are found too. *)
let kmp_delta flag =
  let pat = Array.of_list flag in
  let m = Array.length pat in
  let fail = Array.make (m + 1) 0 in
  let k = ref 0 in
  for q = 1 to m - 1 do
    while !k > 0 && pat.(!k) <> pat.(q) do
      k := fail.(!k)
    done;
    if pat.(!k) = pat.(q) then incr k;
    fail.(q + 1) <- !k
  done;
  let delta = Array.make_matrix (m + 1) 2 0 in
  let rec step q b =
    if q < m && pat.(q) = (b = 1) then q + 1
    else if q = 0 then 0
    else step fail.(q) b
  in
  for q = 0 to m do
    delta.(q).(0) <- step q 0;
    delta.(q).(1) <- step q 1
  done;
  delta

let int_of_bits bits = List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 bits

exception Violation of violation

let explore scheme =
  let { Rule.flag; rule } = scheme in
  if not (Rule.rule_well_formed rule) || flag = [] then raise (Violation Ill_formed_rule);
  let delta = kmp_delta flag in
  let m = List.length flag in
  let k = List.length rule.trigger in
  let trig = int_of_bits rule.trigger in
  let sb = if rule.stuff then 1 else 0 in
  let mask len = (1 lsl len) - 1 in
  (* Joint state: (matcher state, window length, window bits). Encoded with
     a sentinel bit above the window so different lengths never collide. *)
  let key q len bits = (q * (1 lsl (k + 1))) lor (1 lsl len) lor bits in
  let visited = Hashtbl.create 256 in
  let queue = Queue.create () in
  let push q len bits =
    let key = key q len bits in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key (q, len, bits);
      Queue.add (q, len, bits) queue
    end
  in
  (* The receiver consumes the opening flag and then scans afresh (this is
     exactly what Codec.remove_flags does, and the model under which the
     paper's improved scheme is valid): the matcher starts at state 0 at
     the beginning of the data region, so occurrences overlapping the
     opening flag are not mis-framings. *)
  push 0 0 0;
  (* Phase 2: arbitrary data through the stuffer. *)
  while not (Queue.is_empty queue) do
    let q, len, bits = Queue.pop queue in
    for b = 0 to 1 do
      let q1 = delta.(q).(b) in
      if q1 = m then raise (Violation Flag_in_data);
      let len1 = min k (len + 1) in
      let bits1 = ((bits lsl 1) lor b) land mask len1 in
      if len1 = k && bits1 = trig then begin
        (* Forced stuffed bit, also visible to the matcher. *)
        let q2 = delta.(q1).(sb) in
        if q2 = m then raise (Violation Flag_in_data);
        let bits2 = ((bits1 lsl 1) lor sb) land mask k in
        push q2 k bits2
      end
      else push q1 len1 bits1
    done
  done;
  (* Phase 3: from any point where the data may end, the closing flag must
     not complete an occurrence before its own last bit. *)
  let matcher_states = Hashtbl.fold (fun _ (q, _, _) acc -> if List.mem q acc then acc else q :: acc) visited [] in
  let flag_arr = Array.of_list flag in
  List.iter
    (fun q0 ->
      let q = ref q0 in
      for i = 0 to m - 1 do
        q := delta.(!q).(if flag_arr.(i) then 1 else 0);
        if !q = m && i < m - 1 then raise (Violation Premature_closing_flag)
      done)
    matcher_states;
  Hashtbl.length visited

let check scheme =
  match explore scheme with
  | (_ : int) -> Ok ()
  | exception Violation v -> Error v

let valid scheme = Result.is_ok (check scheme)

let reachable_states scheme =
  match explore scheme with n -> n | exception Violation _ -> 0

let find_counterexample scheme ~max_len =
  let rec bits_of n len =
    if len = 0 then [] else ((n lsr (len - 1)) land 1 = 1) :: bits_of n (len - 1)
  in
  let bad d =
    match Codec.decode scheme (Codec.encode scheme d) with
    | Some d' -> d' <> d
    | None -> true
  in
  let found = ref None in
  (try
     for len = 0 to max_len do
       for n = 0 to (1 lsl len) - 1 do
         let d = bits_of n len in
         if bad d then begin
           found := Some d;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found
