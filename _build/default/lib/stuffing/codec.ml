open Rule

(* [push k w b] slides bit [b] into window [w], keeping at most the last
   [k] bits. Windows are newest-last, so a full window can be compared to
   the trigger directly. *)
let push k w b =
  let w = w @ [ b ] in
  if List.length w > k then List.tl w else w

let stuff rule data =
  assert (rule_well_formed rule);
  let k = List.length rule.trigger in
  (* The window tracks the last bits of the *output* stream, so a stuffed
     bit participates in subsequent trigger matching exactly as it does in
     HDLC hardware. Well-formedness guarantees the stuffed bit itself never
     completes another trigger. *)
  let rec go w = function
    | [] -> []
    | b :: rest ->
        let w = push k w b in
        if w = rule.trigger then b :: rule.stuff :: go (push k w rule.stuff) rest
        else b :: go w rest
  in
  go [] data

let unstuff rule data =
  assert (rule_well_formed rule);
  let k = List.length rule.trigger in
  let rec go w = function
    | [] -> Some []
    | b :: rest -> (
        let w = push k w b in
        if w = rule.trigger then
          match rest with
          | [] -> None (* Truncated: the stuffed bit is missing. *)
          | s :: rest ->
              if s <> rule.stuff then None (* Not a stuffed stream. *)
              else Option.map (fun tl -> b :: tl) (go (push k w s) rest)
        else Option.map (fun tl -> b :: tl) (go w rest))
  in
  go [] data

let add_flags flag body = flag @ body @ flag

(* [split_at_flag s] finds the first occurrence of [flag] in [s] and
   returns the bits after it. *)
let rec split_at_flag flag s =
  let rec is_prefix p s =
    match (p, s) with
    | [], _ -> true
    | _, [] -> false
    | a :: p, b :: s -> a = b && is_prefix p s
  in
  match s with
  | _ when is_prefix flag s ->
      let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
      Some (drop (List.length flag) s)
  | [] -> None
  | _ :: tl -> split_at_flag flag tl

(* [until_flag s] returns the bits of [s] before its first [flag]
   occurrence, or [None] if the flag never occurs. *)
let until_flag flag s =
  let rec is_prefix p s =
    match (p, s) with
    | [], _ -> true
    | _, [] -> false
    | a :: p, b :: s -> a = b && is_prefix p s
  in
  let rec go acc = function
    | s when is_prefix flag s -> Some (List.rev acc)
    | [] -> None
    | b :: tl -> go (b :: acc) tl
  in
  go [] s

let remove_flags flag s =
  match split_at_flag flag s with
  | None -> None
  | Some after_open -> until_flag flag after_open

let encode scheme d = add_flags scheme.flag (stuff scheme.rule d)

let decode scheme s =
  match remove_flags scheme.flag s with
  | None -> None
  | Some body -> unstuff scheme.rule body

let overhead_bits rule data = List.length (stuff rule data) - List.length data
