(** Performance-oriented stuffing codec over {!Bitkit.Bitseq}.

    Semantically identical to the extraction-style {!Codec} (a qcheck
    property in the test suite asserts bit-for-bit agreement), but using
    integer windows and byte buffers. This is the "Tune" challenge (paper
    §5) applied to the stuffing sublayer, and what the E6 throughput bench
    measures. *)

val stuff : Rule.rule -> Bitkit.Bitseq.t -> Bitkit.Bitseq.t
val unstuff : Rule.rule -> Bitkit.Bitseq.t -> Bitkit.Bitseq.t option
val encode : Rule.scheme -> Bitkit.Bitseq.t -> Bitkit.Bitseq.t
val decode : Rule.scheme -> Bitkit.Bitseq.t -> Bitkit.Bitseq.t option
