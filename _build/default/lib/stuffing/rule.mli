(** Bit-stuffing rules and framing schemes (paper §4.1).

    A {e rule} says: whenever the last emitted bits equal [trigger], insert
    the bit [stuff]. A {e scheme} pairs a rule with the [flag] pattern used
    by the flag sublayer to delimit frames. HDLC is the scheme with flag
    [01111110] and the rule "stuff a 0 after five 1s"; the paper's improved
    scheme uses flag [00000010] and the rule "stuff a 1 after 0000001". *)

type bits = bool list

type rule = { trigger : bits; stuff : bool }

type scheme = { flag : bits; rule : rule }

val rule_well_formed : rule -> bool
(** The trigger is non-empty and appending the stuffed bit does not
    recreate the trigger (otherwise stuffing would never terminate). *)

val hdlc : scheme
(** Flag [01111110], stuff [0] after [11111]. *)

val paper_best : scheme
(** Flag [00000010], stuff [1] after [0000001] — the lower-overhead scheme
    found by the paper's verification (§4.1, "Better stuffing rules"). *)

val bits_of_string : string -> bits
(** ["01101"] to bits; raises [Invalid_argument] on other characters. *)

val string_of_bits : bits -> string

val pp_rule : Format.formatter -> rule -> unit
val pp_scheme : Format.formatter -> scheme -> unit
val equal_scheme : scheme -> scheme -> bool
