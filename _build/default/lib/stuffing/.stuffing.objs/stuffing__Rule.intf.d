lib/stuffing/rule.mli: Format
