lib/stuffing/lemmas.ml: Automaton Codec Float Hashtbl List Overhead Rule Search Seq
