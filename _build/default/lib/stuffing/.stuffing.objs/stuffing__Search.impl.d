lib/stuffing/search.ml: Array Automaton Float Format Hashtbl Int List Option Overhead Rule Seq String
