lib/stuffing/fast.ml: Bitkit Bytes Char List Rule
