lib/stuffing/fast.mli: Bitkit Rule
