lib/stuffing/automaton.mli: Format Rule
