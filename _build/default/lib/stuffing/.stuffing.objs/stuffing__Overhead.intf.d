lib/stuffing/overhead.mli: Rule
