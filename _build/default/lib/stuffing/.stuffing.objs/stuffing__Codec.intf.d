lib/stuffing/codec.mli: Rule
