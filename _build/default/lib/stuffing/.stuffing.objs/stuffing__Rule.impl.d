lib/stuffing/rule.ml: Format List String
