lib/stuffing/codec.ml: List Option Rule
