lib/stuffing/search.mli: Format Rule Seq
