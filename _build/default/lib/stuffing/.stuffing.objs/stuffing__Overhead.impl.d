lib/stuffing/overhead.ml: Array Bitkit Float List Rule
