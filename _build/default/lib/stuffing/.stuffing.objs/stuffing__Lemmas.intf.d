lib/stuffing/lemmas.mli: Rule
