lib/stuffing/automaton.ml: Array Codec Format Hashtbl List Queue Result Rule
