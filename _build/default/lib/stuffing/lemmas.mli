(** Executable lemma suite for the stuffing development.

    The paper's Coq proof "had 57 lemmas and 1800 lines of code"; this
    module is its executable counterpart: a library of named, machine-
    checked properties. Each lemma is checked exhaustively over all data
    up to a bound (and, where applicable, decided exactly by the
    {!Automaton} checker, which quantifies over unbounded data). The test
    suite and EXPERIMENTS.md report the lemma count and pass rate.

    Lemmas are split per sublayer exactly as the paper advocates: stuffing-
    sublayer lemmas mention only [stuff]/[unstuff]; flag-sublayer lemmas
    mention only [add_flags]/[remove_flags]; composition lemmas glue them
    through the narrow interface (the flag value). *)

type lemma = {
  lname : string;
  sublayer : string;  (** "stuffing", "flag", "composition" or "meta" *)
  check : unit -> bool;
}

val exhaustive_bound : int
(** All data of length [<= exhaustive_bound] are enumerated per lemma. *)

val for_scheme : string -> Rule.scheme -> lemma list
(** The per-scheme lemma suite, names prefixed with the given tag. *)

val generic : lemma list
(** Scheme-independent lemmas: checker soundness cross-validation,
    overhead facts, the paper's 1/32 and 1/128 numbers. *)

val all : lemma list
(** [for_scheme] on HDLC and on the paper's improved scheme, plus
    {!generic}. *)

val run : lemma list -> (lemma * bool) list
val failures : lemma list -> lemma list
