module Bitseq = Bitkit.Bitseq

(* A growable MSB-first bit buffer. *)
module Bitbuf = struct
  type t = { mutable data : Bytes.t; mutable len : int }

  let create n = { data = Bytes.make (max 1 ((n + 7) / 8)) '\000'; len = 0 }

  let push t b =
    let byte = t.len lsr 3 in
    if byte >= Bytes.length t.data then begin
      let bigger = Bytes.make (2 * Bytes.length t.data) '\000' in
      Bytes.blit t.data 0 bigger 0 (Bytes.length t.data);
      t.data <- bigger
    end;
    if b then
      Bytes.set t.data byte
        (Char.chr (Char.code (Bytes.get t.data byte) lor (0x80 lsr (t.len land 7))));
    t.len <- t.len + 1

  let contents t = Bitseq.of_bytes_bits t.data t.len
end

let rule_ints rule =
  let k = List.length rule.Rule.trigger in
  let trig =
    List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 rule.Rule.trigger
  in
  (k, trig, (1 lsl k) - 1)

let stuff rule bits =
  assert (Rule.rule_well_formed rule);
  let k, trig, mask = rule_ints rule in
  let n = Bitseq.length bits in
  let out = Bitbuf.create (n + (n / k) + 8) in
  let window = ref 0 in
  let emitted = ref 0 in
  let emit b =
    Bitbuf.push out b;
    incr emitted;
    window := ((!window lsl 1) lor (if b then 1 else 0)) land mask
  in
  for i = 0 to n - 1 do
    emit (Bitseq.get bits i);
    if !emitted >= k && !window = trig then emit rule.Rule.stuff
  done;
  Bitbuf.contents out

let unstuff rule bits =
  assert (Rule.rule_well_formed rule);
  let k, trig, mask = rule_ints rule in
  let n = Bitseq.length bits in
  let out = Bitbuf.create n in
  let window = ref 0 in
  let seen = ref 0 in
  let i = ref 0 in
  let ok = ref true in
  while !ok && !i < n do
    let b = Bitseq.get bits !i in
    incr i;
    Bitbuf.push out b;
    window := ((!window lsl 1) lor (if b then 1 else 0)) land mask;
    incr seen;
    if !seen >= k && !window = trig then
      if !i >= n then ok := false (* stuffed bit missing *)
      else begin
        let s = Bitseq.get bits !i in
        incr i;
        if s <> rule.Rule.stuff then ok := false
        else begin
          window := ((!window lsl 1) lor (if s then 1 else 0)) land mask;
          incr seen
        end
      end
  done;
  if !ok then Some (Bitbuf.contents out) else None

let encode scheme bits =
  let flag = Bitseq.of_bool_list scheme.Rule.flag in
  Bitseq.concat [ flag; stuff scheme.Rule.rule bits; flag ]

let decode scheme bits =
  let flag = Bitseq.of_bool_list scheme.Rule.flag in
  match Bitseq.find_sub ~pattern:flag bits with
  | None -> None
  | Some start -> (
      let body_start = start + Bitseq.length flag in
      let rest = Bitseq.sub bits body_start (Bitseq.length bits - body_start) in
      match Bitseq.find_sub ~pattern:flag rest with
      | None -> None
      | Some stop -> unstuff scheme.Rule.rule (Bitseq.sub rest 0 stop))
