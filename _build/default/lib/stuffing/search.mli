(** Enumeration of valid stuffing schemes (paper §4.1: "we also created a
    library of stuffing protocols that our proof deems valid; it found 66
    alternate stuffing rules, some of which had less overhead than HDLC").

    We search several candidate spaces with the exact checker of
    {!Automaton} and report, per space: candidate count, valid count,
    counts by trigger length, and the lowest-overhead schemes. *)

type space = {
  sname : string;
  flag_len : int;
  trigger_lens : int list;
  structured : bool;
      (** If [true], only "HDLC-shaped" rules are enumerated: the trigger is
          the flag's interior prefix [f1 ... fj] and the stuffed bit is the
          complement of [f(j+1)] — the natural generalisation of HDLC's
          rule; this is the space in which HDLC and the paper's improved
          scheme both live. If [false], every (flag, trigger, stuff) triple
          is enumerated. *)
}

val structured_space : space
(** Flags of length 8, HDLC-shaped rules (trigger lengths 1–6). *)

val free_space : trigger_lens:int list -> space
(** Flags of length 8, arbitrary triggers of the given lengths. *)

val enumerate : space -> Rule.scheme Seq.t
val candidate_count : space -> int

type outcome = {
  space : space;
  candidates : int;
  valid : int;
  by_trigger_len : (int * int) list;  (** (trigger length, valid count) *)
  best : (Rule.scheme * float) list;
      (** valid schemes sorted by ascending stationary overhead; at most
          [best_limit] kept *)
}

val run : ?best_limit:int -> space -> outcome

val valid_schemes : space -> Rule.scheme list

val pp_outcome : Format.formatter -> outcome -> unit
