let naive rule = 2. ** Float.of_int (-List.length rule.Rule.trigger)

(* The stuffer's state is its window: the last [k] output bits (always a
   settled, non-trigger value once [k] bits have been emitted). Under
   uniform i.i.d. input bits the window is a Markov chain; the insertion
   rate is the stationary probability, per input bit, that the new window
   completes the trigger. Power iteration converges geometrically. *)
let stationary rule =
  assert (Rule.rule_well_formed rule);
  let k = List.length rule.Rule.trigger in
  let trig = List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 rule.Rule.trigger in
  let sb = if rule.Rule.stuff then 1 else 0 in
  let n = 1 lsl k in
  let mask = n - 1 in
  let settle w = if w = trig then ((w lsl 1) lor sb) land mask else w in
  let dist = Array.make n (1. /. Float.of_int n) in
  let next = Array.make n 0. in
  let rate = ref 0. in
  (* Iterate until the distribution itself converges in L1 — the rate can
     plateau at a wrong value for a few steps before the distribution
     settles, so testing the rate alone stops too early. *)
  let l1_change = ref infinity in
  let iterations = ref 0 in
  while !l1_change > 1e-14 && !iterations < 100_000 do
    Array.fill next 0 n 0.;
    let r = ref 0. in
    for w = 0 to n - 1 do
      let p = dist.(w) in
      if p > 0. then
        for b = 0 to 1 do
          let w1 = ((w lsl 1) lor b) land mask in
          if w1 = trig then r := !r +. (p /. 2.);
          let w2 = settle w1 in
          next.(w2) <- next.(w2) +. (p /. 2.)
        done
    done;
    let change = ref 0. in
    for w = 0 to n - 1 do
      change := !change +. Float.abs (next.(w) -. dist.(w))
    done;
    l1_change := !change;
    Array.blit next 0 dist 0 n;
    rate := !r;
    incr iterations
  done;
  !rate

let empirical ?(bits = 1_000_000) ~seed rule =
  assert (Rule.rule_well_formed rule);
  let rng = Bitkit.Rng.create seed in
  let k = List.length rule.Rule.trigger in
  let trig = List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 rule.Rule.trigger in
  let sb = if rule.Rule.stuff then 1 else 0 in
  let mask = (1 lsl k) - 1 in
  let window = ref 0 in
  let seen = ref 0 in
  let inserted = ref 0 in
  for _ = 1 to bits do
    let b = if Bitkit.Rng.bool rng then 1 else 0 in
    window := ((!window lsl 1) lor b) land mask;
    incr seen;
    if !seen >= k && !window = trig then begin
      incr inserted;
      window := ((!window lsl 1) lor sb) land mask
      (* The stuffed bit extends the emitted stream, hence the window. *)
    end
  done;
  Float.of_int !inserted /. Float.of_int bits

let expected_frame_expansion scheme ~payload_bits =
  let flag_bits = 2 * List.length scheme.Rule.flag in
  Float.of_int payload_bits *. (1. +. stationary scheme.Rule.rule)
  +. Float.of_int flag_bits
