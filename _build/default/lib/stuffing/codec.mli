(** Pure, extraction-style stuffing and framing functions.

    These four functions mirror the paper's Coq development: [stuff] and
    [unstuff] form the stuffing sublayer, [add_flags] and [remove_flags]
    the flag sublayer beneath it (a nested sublayering within framing). The
    top-level specification — proved in the paper, checked executably in
    {!Lemmas} — is

    {[ unstuff r (remove_flags f (add_flags f (stuff r d))) = Some d ]}

    for every valid scheme [{flag = f; rule = r}] and all data [d].

    Decoders return [option]: [None] means the input is not a well-formed
    encoding (truncated frame, missing stuffed bit, ...). *)

open Rule

val stuff : rule -> bits -> bits
(** Insert [rule.stuff] after every occurrence of [rule.trigger] in the
    output stream. Requires [rule_well_formed rule]. *)

val unstuff : rule -> bits -> bits option
(** Inverse of {!stuff}: removes the bit following each trigger occurrence,
    checking it is the stuffed bit. *)

val add_flags : bits -> bits -> bits
(** [add_flags flag body] is [flag @ body @ flag]. *)

val remove_flags : bits -> bits -> bits option
(** Scan for the first [flag] occurrence, then for the next one; return the
    bits in between. *)

val encode : scheme -> bits -> bits
(** [add_flags flag (stuff rule d)]. *)

val decode : scheme -> bits -> bits option
(** [remove_flags] then [unstuff]. *)

val overhead_bits : rule -> bits -> int
(** Number of bits {!stuff} inserts for the given data. *)
