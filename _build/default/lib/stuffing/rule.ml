type bits = bool list

type rule = { trigger : bits; stuff : bool }

type scheme = { flag : bits; rule : rule }

let bits_of_string s =
  List.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | _ -> invalid_arg "Rule.bits_of_string")

let string_of_bits bits =
  String.concat "" (List.map (fun b -> if b then "1" else "0") bits)

let rule_well_formed r =
  match r.trigger with
  | [] -> false
  | _ :: tail -> tail @ [ r.stuff ] <> r.trigger

let hdlc =
  { flag = bits_of_string "01111110";
    rule = { trigger = bits_of_string "11111"; stuff = false } }

let paper_best =
  { flag = bits_of_string "00000010";
    rule = { trigger = bits_of_string "0000001"; stuff = true } }

let pp_rule fmt r =
  Format.fprintf fmt "stuff %c after %s"
    (if r.stuff then '1' else '0')
    (string_of_bits r.trigger)

let pp_scheme fmt s =
  Format.fprintf fmt "flag %s, %a" (string_of_bits s.flag) pp_rule s.rule

let equal_scheme a b = a.flag = b.flag && a.rule = b.rule
