(** The monolithic TCP baseline — one PCB record whose fields are read and
    written by every function, in the style of lwIP/BSD [tcp_input]
    (paper §2.3 and §4.2).

    Functionally comparable to {!Tcp_sublayered} (3-way handshake,
    cumulative acks, RTO with Jacobson/Karels estimation, fast
    retransmit, pluggable congestion window arithmetic, flow control,
    FIN teardown) but deliberately structured the way the paper
    criticises: demultiplexing checks, connection-state transitions,
    reliability bookkeeping and window updates are interleaved inside
    [from_wire], all mutating the shared PCB. The entanglement metric of
    experiment E9 is computed over this module's field-access matrix, and
    experiment E12 benchmarks it against the sublayered stack. It speaks
    the standard {!Wire} format, so it doubles as the interop peer for
    the {!Shim} (experiment E4). *)

type t

val create :
  Sim.Engine.t ->
  ?trace:Sim.Trace.t ->
  name:string ->
  Config.t ->
  local_port:int ->
  remote_port:int ->
  transmit:(string -> unit) ->
  events:(Iface.app_ind -> unit) ->
  t

val connect : t -> unit
val listen : t -> unit
val write : t -> string -> unit

val read : t -> int -> unit
(** Flow-control credit: the application consumed [n] delivered bytes. *)

val close : t -> unit
val from_wire : t -> string -> unit

val state_name : t -> string
val stream_finished : t -> bool
val retransmissions : t -> int
val segments_sent : t -> int
val cwnd : t -> float
val srtt : t -> float option

val factory : Host.factory
(** Drop this into {!Host} to run monolithic endpoints behind the same
    socket API as the sublayered stack. *)
