lib/transport/tcp_messages.ml: Cm Config Dm Msg Rd Sim Sublayer
