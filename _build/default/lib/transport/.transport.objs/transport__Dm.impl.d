lib/transport/dm.ml: Nothing Segment Sublayer
