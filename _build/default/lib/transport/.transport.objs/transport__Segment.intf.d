lib/transport/segment.mli: Sublayer
