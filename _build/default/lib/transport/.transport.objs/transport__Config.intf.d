lib/transport/config.mli: Cc Isn Sim
