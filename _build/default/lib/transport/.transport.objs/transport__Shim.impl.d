lib/transport/shim.ml: Host List Option Queue Segment String Wire
