lib/transport/cm.mli: Config Iface Isn Sublayer
