lib/transport/msg.ml: Bitkit Bytes Cc Config Float Hashtbl Iface List Nothing String Sublayer
