lib/transport/rec.mli: Sublayer
