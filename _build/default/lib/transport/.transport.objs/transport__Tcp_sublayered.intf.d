lib/transport/tcp_sublayered.mli: Config Iface Osr Rd Sim
