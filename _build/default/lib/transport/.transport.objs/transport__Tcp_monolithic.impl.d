lib/transport/tcp_monolithic.ml: Buffer Cc Config Float Host Iface Int Isn List Sim String Sublayer Wire
