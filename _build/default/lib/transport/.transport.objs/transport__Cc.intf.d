lib/transport/cc.mli:
