lib/transport/iface.ml: Cc Sublayer
