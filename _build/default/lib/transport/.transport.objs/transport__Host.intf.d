lib/transport/host.mli: Config Iface Sim
