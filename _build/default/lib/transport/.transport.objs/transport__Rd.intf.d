lib/transport/rd.mli: Config Iface Sublayer
