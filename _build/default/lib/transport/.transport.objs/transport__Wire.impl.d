lib/transport/wire.ml: Bitkit Format String
