lib/transport/shim.mli: Host
