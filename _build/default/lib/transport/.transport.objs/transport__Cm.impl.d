lib/transport/cm.ml: Config Float Iface Isn Option Printf Segment Sublayer
