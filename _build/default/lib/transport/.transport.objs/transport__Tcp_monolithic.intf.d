lib/transport/tcp_monolithic.mli: Config Host Iface Sim
