lib/transport/tcp_messages.mli: Config Msg Sim
