lib/transport/osr.ml: Buffer Cc Config Float Iface Int List Queue Segment String Sublayer
