lib/transport/host.ml: Bitkit Buffer Char Config Hashtbl Iface Int64 Lazy Printf Segment Sim String Tcp_sublayered
