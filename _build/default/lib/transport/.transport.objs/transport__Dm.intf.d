lib/transport/dm.mli: Sublayer
