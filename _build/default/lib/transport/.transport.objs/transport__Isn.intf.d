lib/transport/isn.mli: Sim
