lib/transport/msg.mli: Config Iface Sublayer
