lib/transport/wire.mli: Format
