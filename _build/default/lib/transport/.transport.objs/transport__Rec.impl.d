lib/transport/rec.ml: Bitkit Char Nothing String Sublayer
