lib/transport/cm_timer.mli: Config Iface Isn Sublayer
