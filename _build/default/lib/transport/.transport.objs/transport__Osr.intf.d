lib/transport/osr.mli: Config Iface Sublayer
