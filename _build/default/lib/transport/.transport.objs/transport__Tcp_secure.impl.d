lib/transport/tcp_secure.ml: Char Cm Config Dm Host Osr Rd Rec Segment Sim String Sublayer
