lib/transport/tcp_watson.ml: Cm_timer Config Dm Host Osr Rd Segment Sim Sublayer
