lib/transport/ranges.mli:
