lib/transport/ranges.ml: List
