lib/transport/isn.ml: Float Int64 List Sim
