lib/transport/rd.ml: Cc Config Float Iface List Printf Ranges Segment String Sublayer
