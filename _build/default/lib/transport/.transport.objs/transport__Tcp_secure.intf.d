lib/transport/tcp_secure.mli: Config Host Iface Sim
