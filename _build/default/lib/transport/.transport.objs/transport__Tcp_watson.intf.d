lib/transport/tcp_watson.mli: Config Host Iface Sim
