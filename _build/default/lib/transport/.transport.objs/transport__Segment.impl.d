lib/transport/segment.ml: Bitkit List Sublayer
