lib/transport/iface.mli: Cc Sublayer
