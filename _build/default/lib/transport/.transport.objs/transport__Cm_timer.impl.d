lib/transport/cm_timer.ml: Config Iface Isn Option Segment Sublayer
