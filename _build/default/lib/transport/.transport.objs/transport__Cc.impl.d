lib/transport/cc.ml: Float Printf
