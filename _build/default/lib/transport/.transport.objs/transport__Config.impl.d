lib/transport/config.ml: Cc Isn
