lib/transport/tcp_sublayered.ml: Cm Config Dm Osr Rd Sim Sublayer
