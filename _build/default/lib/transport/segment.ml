module W = Bitkit.Bitio.Writer
module R = Bitkit.Bitio.Reader

let catch_truncated f = match f () with v -> Some v | exception R.Truncated -> None

(* DM: src_port:16 dst_port:16 *)

type dm = { src_port : int; dst_port : int }

let dm_header_bytes = 4

let encode_dm t ~payload =
  let w = W.create () in
  W.uint16 w t.src_port;
  W.uint16 w t.dst_port;
  W.bytes w payload;
  W.contents w

let decode_dm s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let src_port = R.uint16 r in
      let dst_port = R.uint16 r in
      ({ src_port; dst_port }, R.rest r))

let peek_ports s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let src = R.uint16 r in
      let dst = R.uint16 r in
      (src, dst))

(* CM: flags:8 (syn|ack|fin|rst|0000) isn_local:32 isn_remote:32 *)

type cm_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

let no_cm_flags = { syn = false; ack = false; fin = false; rst = false }

type cm = { flags : cm_flags; isn_local : int; isn_remote : int }

let cm_header_bytes = 9

let encode_cm t ~payload =
  let w = W.create () in
  let f = t.flags in
  W.bit w f.syn;
  W.bit w f.ack;
  W.bit w f.fin;
  W.bit w f.rst;
  W.bits w 0 4;
  W.uint32 w (t.isn_local land 0xFFFFFFFF);
  W.uint32 w (t.isn_remote land 0xFFFFFFFF);
  W.bytes w payload;
  W.contents w

let decode_cm s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let syn = R.bit r in
      let ack = R.bit r in
      let fin = R.bit r in
      let rst = R.bit r in
      let _pad = R.bits r 4 in
      let isn_local = R.uint32 r in
      let isn_remote = R.uint32 r in
      ({ flags = { syn; ack; fin; rst }; isn_local; isn_remote }, R.rest r))

(* RD: seq:32 ack:32 flags:8 (has_data|has_ack|sack_count:2|0000),
   then sack_count * (start:32 end:32) *)

type sack_block = { sack_start : int; sack_end : int }

type rd = {
  seq : int;
  ack : int;
  len : int;
  has_data : bool;
  has_ack : bool;
  sacks : sack_block list;
}

let rd_header_bytes = 11

let encode_rd t ~payload =
  let sacks = if List.length t.sacks > 3 then invalid_arg "encode_rd: >3 sacks" else t.sacks in
  let w = W.create () in
  W.uint32 w (t.seq land 0xFFFFFFFF);
  W.uint32 w (t.ack land 0xFFFFFFFF);
  W.uint16 w (t.len land 0xFFFF);
  W.bit w t.has_data;
  W.bit w t.has_ack;
  W.bits w (List.length sacks) 2;
  W.bits w 0 4;
  List.iter
    (fun b ->
      W.uint32 w (b.sack_start land 0xFFFFFFFF);
      W.uint32 w (b.sack_end land 0xFFFFFFFF))
    sacks;
  W.bytes w payload;
  W.contents w

let decode_rd s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let seq = R.uint32 r in
      let ack = R.uint32 r in
      let len = R.uint16 r in
      let has_data = R.bit r in
      let has_ack = R.bit r in
      let nsacks = R.bits r 2 in
      let _pad = R.bits r 4 in
      let sacks =
        List.init nsacks (fun _ ->
            let sack_start = R.uint32 r in
            let sack_end = R.uint32 r in
            { sack_start; sack_end })
      in
      ({ seq; ack; len; has_data; has_ack; sacks }, R.rest r))

(* OSR: window:16 flags:8 (ecn_echo|ecn_ce|000000) *)

type osr = { window : int; ecn_echo : bool; ecn_ce : bool }

let default_osr = { window = 0xFFFF; ecn_echo = false; ecn_ce = false }

let osr_header_bytes = 3

let encode_osr t ~payload =
  let w = W.create () in
  W.uint16 w t.window;
  W.bit w t.ecn_echo;
  W.bit w t.ecn_ce;
  W.bits w 0 6;
  W.bytes w payload;
  W.contents w

let decode_osr s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let window = R.uint16 r in
      let ecn_echo = R.bit r in
      let ecn_ce = R.bit r in
      let _pad = R.bits r 6 in
      ({ window; ecn_echo; ecn_ce }, R.rest r))

let header_bytes = dm_header_bytes + cm_header_bytes + rd_header_bytes + osr_header_bytes

let layout =
  let f fname owner offset width = { Sublayer.Layout.fname; owner; offset; width } in
  Sublayer.Layout.make_exn ~total_bits:(8 * header_bytes)
    [
      f "src_port" "dm" 0 16;
      f "dst_port" "dm" 16 16;
      f "cm_flags" "cm" 32 8;
      f "isn_local" "cm" 40 32;
      f "isn_remote" "cm" 72 32;
      f "seq" "rd" 104 32;
      f "ack" "rd" 136 32;
      f "len" "rd" 168 16;
      f "rd_flags" "rd" 184 8;
      f "window" "osr" 192 16;
      f "osr_flags" "osr" 208 8;
    ]

(* Rewrite the OSR header's CE bit inside a full wire segment — what an
   ECN-capable router does to a packet it would otherwise have dropped.
   Non-data segments (CM controls) are returned unchanged. *)
let mark_ce wire =
  match decode_dm wire with
  | None -> wire
  | Some (dm, rest) -> (
      match decode_cm rest with
      | None -> wire
      | Some (cm, rd_pdu) ->
          if cm.flags <> no_cm_flags then wire
          else begin
            match decode_rd rd_pdu with
            | None -> wire
            | Some (rd, osr_pdu) -> (
                match decode_osr osr_pdu with
                | None -> wire
                | Some (osr, payload) ->
                    let osr_pdu = encode_osr { osr with ecn_ce = true } ~payload in
                    let rd_pdu = encode_rd rd ~payload:osr_pdu in
                    encode_dm dm ~payload:(encode_cm cm ~payload:rd_pdu))
          end)
