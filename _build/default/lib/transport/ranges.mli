(** Sets of received byte ranges (disjoint half-open intervals), used by
    RD's receiver for exactly-once dedup, cumulative-ack computation and
    SACK block generation. *)

type t

val empty : t
val is_empty : t -> bool

val add : t -> int -> int -> t * bool
(** [add t lo hi] inserts [\[lo, hi)]; the flag is [true] iff any byte was
    new. [lo >= hi] is a no-op. *)

val cumulative : t -> int
(** End of the interval starting at 0 (0 if none): the cumulative-ack
    point. *)

val covers : t -> int -> int -> bool
(** Is [\[lo, hi)] fully contained? *)

val beyond : t -> int -> (int * int) list
(** Intervals entirely above the given point, ascending — the SACK
    candidates. *)

val intervals : t -> (int * int) list
val total_bytes : t -> int
