(** The interop shim of paper §3.1: "adding a shim sublayer that converts
    the sublayered header in Figure 6 to a standard TCP header ... should
    allow interoperability".

    The two headers are isomorphic given a little connection state: the
    ISN fields are static after the handshake (the shim learns them from
    the SYN exchange), sequence/ack numbers are already absolute, CM's
    out-of-band SYN/FIN/ACK controls map to flag bits with sequence
    numbers the shim tracks, and OSR's window travels in the standard
    window field. A sublayered endpoint wrapped in {!factory} speaks
    RFC 793 on the wire and interoperates with {!Tcp_monolithic}
    (experiment E4). *)

type t

val create : unit -> t

val sub_to_std : t -> string -> string list
(** Translate one outgoing sublayered segment to standard segments
    (usually one; empty if untranslatable). *)

val std_to_sub : t -> string -> string list
(** Translate one incoming standard segment to sublayered segments (a
    data+FIN segment splits in two; an ack completing our FIN adds a CM
    acknowledgement). *)

val drain_inbound : t -> string list
(** Sublayered segments the shim generated on its own (a FIN it parked
    until the byte stream completed); {!factory} pumps these into the
    inner endpoint after every translation. *)

val factory : Host.factory
(** A sublayered endpoint behind the shim: RFC 793 on the wire. *)
