(** Initial-sequence-number generation — the mechanism CM encapsulates
    (paper §3: RFC 793's clock scheme vs RFC 1948's keyed hash; "the main
    function of CM is to choose ISNs that are unique and hard to
    predict"). Because the mechanism is hidden behind this narrow
    interface, swapping it is experiment E10's CM-replacement case. *)

type t = {
  gname : string;
  next : local_port:int -> remote_port:int -> int;
      (** A fresh 32-bit ISN for a connection attempt. *)
}

val clock : Sim.Engine.t -> t
(** RFC 793: low-order bits of a 250 kHz virtual clock — unique in time
    but trivially predictable. *)

val hashed : Sim.Engine.t -> secret:int -> t
(** RFC 1948: clock + keyed hash of the ports, so concurrent connections
    to different peers do not reveal each other's ISNs. *)

val counter : ?start:int -> unit -> t
(** A plain counter — deliberately weak, for predictability experiments
    and deterministic tests. *)

val predictability : t -> samples:int -> advance:(unit -> unit) -> float
(** Fraction of consecutive same-4-tuple samples whose delta equals the
    immediately preceding delta ([advance] moves virtual time between
    samples) — 1.0 means an attacker extrapolates the next ISN for the
    {e same} tuple perfectly. Both clock and counter schemes score 1.0;
    so does RFC 1948 (its hash is constant per tuple), which is why
    {!attack_success} is the discriminating metric. *)

val attack_success : make:(trial:int -> t) -> trials:int -> float
(** The off-path attack RFC 1948 defends against: in each trial the
    attacker opens its own connection (tuple A), observes the ISN, and
    predicts the ISN of a victim connection (tuple B) opened at the same
    instant, using the A→B offset learned in earlier trials. [make trial]
    builds the generator for a fresh server instance (fresh secret).
    Returns the fraction of successful predictions (within a 4096-number
    guessing budget): ≈1 for clock and counter schemes, ≈0 for keyed
    hashing. *)
