open Sublayer.Machine

let name = "dm"

type conn = { local_port : int; remote_port : int }

type t = conn
type up_req = string
type up_ind = string
type down_req = string
type down_ind = string
type timer = Nothing.t

let handle_up_req t pdu =
  let header = { Segment.src_port = t.local_port; dst_port = t.remote_port } in
  (t, [ Down (Segment.encode_dm header ~payload:pdu) ])

let handle_down_ind t wire =
  match Segment.decode_dm wire with
  | None -> (t, [ Note "short segment dropped" ])
  | Some (dm, payload) ->
      if dm.Segment.dst_port = t.local_port && dm.Segment.src_port = t.remote_port then
        (t, [ Up payload ])
      else (t, [ Note "segment for another connection dropped" ])

let handle_timer _ t = Nothing.absurd t
