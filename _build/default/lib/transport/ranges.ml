(* Sorted, disjoint, non-adjacent half-open intervals. *)
type t = (int * int) list

let empty = []
let is_empty t = t = []

let add t lo hi =
  if lo >= hi then (t, false)
  else begin
    (* Split into intervals strictly below, overlapping/adjacent, above. *)
    let below = List.filter (fun (_, b) -> b < lo) t in
    let above = List.filter (fun (a, _) -> a > hi) t in
    let touching = List.filter (fun (a, b) -> b >= lo && a <= hi) t in
    let merged_lo = List.fold_left (fun acc (a, _) -> min acc a) lo touching in
    let merged_hi = List.fold_left (fun acc (_, b) -> max acc b) hi touching in
    let covered =
      List.fold_left (fun acc (a, b) -> acc + (min b hi - max a lo)) 0
        (List.filter (fun (a, b) -> b > lo && a < hi) t)
    in
    let fresh = covered < hi - lo in
    (below @ [ (merged_lo, merged_hi) ] @ above, fresh)
  end

let cumulative = function (0, b) :: _ -> b | _ -> 0

let covers t lo hi =
  lo >= hi || List.exists (fun (a, b) -> a <= lo && hi <= b) t

let beyond t point = List.filter (fun (a, _) -> a > point) t

let intervals t = t

let total_bytes t = List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 t
