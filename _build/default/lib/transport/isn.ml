type t = { gname : string; next : local_port:int -> remote_port:int -> int }

let mask32 = 0xFFFFFFFF

let clock engine =
  {
    gname = "clock";
    next =
      (fun ~local_port:_ ~remote_port:_ ->
        Int64.to_int (Int64.of_float (Sim.Engine.now engine *. 250_000.)) land mask32);
  }

let hashed engine ~secret =
  let mix key =
    (* splitmix-style finaliser over the keyed tuple *)
    let z = Int64.of_int key in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land mask32
  in
  {
    gname = "hashed";
    next =
      (fun ~local_port ~remote_port ->
        let clock =
          Int64.to_int (Int64.of_float (Sim.Engine.now engine *. 250_000.)) land mask32
        in
        (clock + mix ((local_port lsl 20) lxor (remote_port lsl 4) lxor secret)) land mask32);
  }

let counter ?(start = 1000) () =
  let state = ref start in
  {
    gname = "counter";
    next =
      (fun ~local_port:_ ~remote_port:_ ->
        let v = !state in
        state := (!state + 64000) land mask32;
        v land mask32);
  }

let predictability gen ~samples ~advance =
  let isns =
    List.init samples (fun _ ->
        advance ();
        gen.next ~local_port:1000 ~remote_port:80)
  in
  let rec deltas = function
    | a :: (b :: _ as rest) -> ((b - a) land mask32) :: deltas rest
    | _ -> []
  in
  let ds = deltas isns in
  let rec hits = function
    | a :: (b :: _ as rest) -> (if a = b then 1 else 0) + hits rest
    | _ -> 0
  in
  match ds with
  | [] | [ _ ] -> 0.
  | _ -> Float.of_int (hits ds) /. Float.of_int (List.length ds - 1)

let attack_success ~make ~trials =
  let wrap v = v land mask32 in
  let learned = ref None in
  let hits = ref 0 in
  let scored = ref 0 in
  for trial = 1 to trials do
    let gen = make ~trial in
    let a = gen.next ~local_port:1000 ~remote_port:80 in
    let b = gen.next ~local_port:4242 ~remote_port:80 in
    (match !learned with
    | Some offset ->
        incr scored;
        let guess = wrap (a + offset) in
        let err = min (wrap (b - guess)) (wrap (guess - b)) in
        if err <= 4096 then incr hits
    | None -> ());
    learned := Some (wrap (b - a))
  done;
  if !scored = 0 then 0. else Float.of_int !hits /. Float.of_int !scored
