type policy = Aloha of float | Csma of float

let policy_name = function
  | Aloha p -> Printf.sprintf "slotted-aloha(p=%.2f)" p
  | Csma p -> Printf.sprintf "csma(p=%.2f)" p

type result = {
  offered_load : float;
  throughput : float;
  utilisation : float;
  collision_slots : int;
  per_station : int array;
  fairness : float;
  mean_backlog : float;
}

let jain xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let sum = Array.fold_left (fun a x -> a +. Float.of_int x) 0. xs in
    let sumsq = Array.fold_left (fun a x -> a +. (Float.of_int x *. Float.of_int x)) 0. xs in
    if sumsq = 0. then 1. else sum *. sum /. (Float.of_int n *. sumsq)
  end

let max_backlog = 32

type tx = { who : int; mutable left : int; mutable collided : bool }

let simulate ?(seed = 1) ?(plen = 1) ~stations ~slots ~arrival policy =
  let rng = Bitkit.Rng.create seed in
  let backlog = Array.make stations 0 in
  let successes = Array.make stations 0 in
  let collisions = ref 0 in
  let delivered = ref 0 in
  let busy_slots = ref 0 in
  let backlog_acc = ref 0 in
  let ongoing : tx list ref = ref [] in
  let transmitting i = List.exists (fun t -> t.who = i) !ongoing in
  for _ = 1 to slots do
    (* arrivals *)
    for i = 0 to stations - 1 do
      if Bitkit.Rng.coin rng arrival && backlog.(i) < max_backlog then
        backlog.(i) <- backlog.(i) + 1;
      backlog_acc := !backlog_acc + backlog.(i)
    done;
    (* transmission decisions *)
    let medium_busy = !ongoing <> [] in
    let starters = ref [] in
    for i = 0 to stations - 1 do
      if backlog.(i) > 0 && not (transmitting i) then begin
        let attempt =
          match policy with
          | Aloha p -> Bitkit.Rng.coin rng p
          | Csma p -> (not medium_busy) && Bitkit.Rng.coin rng p
        in
        if attempt then starters := { who = i; left = plen; collided = false } :: !starters
      end
    done;
    (* collisions: any overlap damages everyone on the air *)
    if !starters <> [] && (medium_busy || List.length !starters > 1) then begin
      List.iter (fun t -> t.collided <- true) !ongoing;
      List.iter (fun t -> t.collided <- true) !starters
    end;
    ongoing := !ongoing @ !starters;
    if !ongoing <> [] then begin
      incr busy_slots;
      if List.exists (fun t -> t.collided) !ongoing then incr collisions
    end;
    (* advance the air *)
    List.iter (fun t -> t.left <- t.left - 1) !ongoing;
    let finished, still = List.partition (fun t -> t.left <= 0) !ongoing in
    ongoing := still;
    List.iter
      (fun t ->
        if not t.collided then begin
          (* the packet leaves the queue only on success; collided
             packets are retried on later attempts *)
          backlog.(t.who) <- max 0 (backlog.(t.who) - 1);
          successes.(t.who) <- successes.(t.who) + 1;
          incr delivered
        end)
      finished
  done;
  {
    offered_load = arrival *. Float.of_int stations;
    throughput = Float.of_int !delivered /. Float.of_int slots;
    utilisation = Float.of_int (!delivered * plen) /. Float.of_int slots;
    collision_slots = !collisions;
    per_station = successes;
    fairness = jain successes;
    mean_backlog = Float.of_int !backlog_acc /. Float.of_int (slots * stations);
  }
