module Bitseq = Bitkit.Bitseq

type t = {
  name : string;
  expansion : float;
  encode : Bitseq.t -> Bitseq.t;
  decode : Bitseq.t -> Bitseq.t option;
}

let nrz =
  { name = "nrz"; expansion = 1.0; encode = Fun.id; decode = (fun b -> Some b) }

let nrzi =
  let encode bits =
    let level = ref false in
    Bitseq.of_bool_list
      (List.map
         (fun b ->
           if b then level := not !level;
           !level)
         (Bitseq.to_bool_list bits))
  in
  let decode symbols =
    let prev = ref false in
    Some
      (Bitseq.of_bool_list
         (List.map
            (fun s ->
              let bit = s <> !prev in
              prev := s;
              bit)
            (Bitseq.to_bool_list symbols)))
  in
  { name = "nrzi"; expansion = 1.0; encode; decode }

let manchester =
  let encode bits =
    let buf = ref [] in
    Bitseq.iteri
      (fun _ b ->
        (* 0 -> 10, 1 -> 01 *)
        if b then buf := true :: false :: !buf else buf := false :: true :: !buf)
      bits;
    Bitseq.of_bool_list (List.rev !buf)
  in
  let decode symbols =
    let n = Bitseq.length symbols in
    if n land 1 <> 0 then None
    else begin
      let out = Array.make (n / 2) false in
      let ok = ref true in
      for i = 0 to (n / 2) - 1 do
        match (Bitseq.get symbols (2 * i), Bitseq.get symbols ((2 * i) + 1)) with
        | true, false -> out.(i) <- false
        | false, true -> out.(i) <- true
        | true, true | false, false -> ok := false
      done;
      if !ok then Some (Bitseq.of_bool_list (Array.to_list out)) else None
    end
  in
  { name = "manchester"; expansion = 2.0; encode; decode }

(* The standard 4B/5B data symbols (FDDI / 100BASE-TX). *)
let fourb5b_table =
  [| 0b11110; 0b01001; 0b10100; 0b10101; 0b01010; 0b01011; 0b01110; 0b01111;
     0b10010; 0b10011; 0b10110; 0b10111; 0b11010; 0b11011; 0b11100; 0b11101 |]

let fourb5b_inverse =
  let inv = Array.make 32 (-1) in
  Array.iteri (fun nibble sym -> inv.(sym) <- nibble) fourb5b_table;
  inv

let four_b_five_b =
  let encode bits =
    let n = Bitseq.length bits in
    if n land 3 <> 0 then invalid_arg "Linecode.four_b_five_b: not nibble-aligned";
    let out = ref [] in
    for i = (n / 4) - 1 downto 0 do
      let nibble =
        (if Bitseq.get bits (4 * i) then 8 else 0)
        lor (if Bitseq.get bits ((4 * i) + 1) then 4 else 0)
        lor (if Bitseq.get bits ((4 * i) + 2) then 2 else 0)
        lor if Bitseq.get bits ((4 * i) + 3) then 1 else 0
      in
      let sym = fourb5b_table.(nibble) in
      for j = 4 downto 0 do
        out := ((sym lsr (4 - j)) land 1 = 1) :: !out
      done
    done;
    Bitseq.of_bool_list !out
  in
  let decode symbols =
    let n = Bitseq.length symbols in
    if n mod 5 <> 0 then None
    else begin
      let out = ref [] in
      let ok = ref true in
      for i = (n / 5) - 1 downto 0 do
        let sym = ref 0 in
        for j = 0 to 4 do
          sym := (!sym lsl 1) lor (if Bitseq.get symbols ((5 * i) + j) then 1 else 0)
        done;
        match fourb5b_inverse.(!sym) with
        | -1 -> ok := false
        | nibble ->
            for j = 3 downto 0 do
              out := ((nibble lsr (3 - j)) land 1 = 1) :: !out
            done
      done;
      if !ok then Some (Bitseq.of_bool_list !out) else None
    end
  in
  { name = "4b5b"; expansion = 1.25; encode; decode }

let all = [ nrz; nrzi; manchester; four_b_five_b ]
