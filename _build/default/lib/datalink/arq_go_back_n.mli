(** Go-back-N ARQ (see {!Arq.S}): windowed, cumulative acks, full-window
    retransmission on timeout. *)

include Arq.S
