(** The encoding/decoding sublayer — the lowest data-link sublayer in
    Figure 2, turning frame bits into line symbols (modelled as bits) and
    back. Decoders validate symbol structure and return [None] on illegal
    symbols, which gives the sublayer above a cheap first error signal. *)

type t = {
  name : string;
  expansion : float;  (** symbols per bit, e.g. 2.0 for Manchester *)
  encode : Bitkit.Bitseq.t -> Bitkit.Bitseq.t;
  decode : Bitkit.Bitseq.t -> Bitkit.Bitseq.t option;
}

val nrz : t
(** Level = bit; the identity code. *)

val nrzi : t
(** Transition on 1, hold on 0; initial level 0. *)

val manchester : t
(** IEEE 802.3 convention: 0 → high-low (10), 1 → low-high (01). *)

val four_b_five_b : t
(** 4B/5B block code; input must be a whole number of nibbles (guaranteed
    when composed under a byte-oriented framer). Illegal 5-bit symbols are
    rejected on decode. *)

val all : t list
