module Bitseq = Bitkit.Bitseq

type t = {
  name : string;
  frame : string -> Bitseq.t;
  deframe : Bitseq.t -> string option;
}

let hdlc scheme =
  {
    name = Printf.sprintf "hdlc[%s]" (Stuffing.Rule.string_of_bits scheme.Stuffing.Rule.flag);
    frame = (fun payload -> Stuffing.Fast.encode scheme (Bitseq.of_string payload));
    deframe =
      (fun bits ->
        match Stuffing.Fast.decode scheme bits with
        | None -> None
        | Some body ->
            if Bitseq.length body land 7 = 0 then Some (Bitseq.to_string body)
            else None);
  }

(* COBS encodes a byte string with no interior 0x00 bytes; we terminate
   with a single 0x00. Each block starts with a code byte: code-1 literal
   non-zero bytes follow, and a code < 0xFF implies a virtual zero (except
   for the final block). *)
let cobs_encode s =
  let buf = Buffer.create (String.length s + 2) in
  let block = Buffer.create 254 in
  let flush_block ~last =
    ignore last;
    Buffer.add_char buf (Char.chr (Buffer.length block + 1));
    Buffer.add_buffer buf block;
    Buffer.clear block
  in
  String.iter
    (fun c ->
      if c = '\000' then flush_block ~last:false
      else begin
        Buffer.add_char block c;
        if Buffer.length block = 254 then flush_block ~last:false
      end)
    s;
  flush_block ~last:true;
  Buffer.add_char buf '\000';
  Buffer.contents buf

let cobs_decode s =
  let n = String.length s in
  if n = 0 || s.[n - 1] <> '\000' then None
  else begin
    let body = String.sub s 0 (n - 1) in
    if String.contains body '\000' then None
    else begin
      let buf = Buffer.create n in
      let len = String.length body in
      let rec blocks pos first =
        if pos >= len then if first then None else Some (Buffer.contents buf)
        else begin
          let code = Char.code body.[pos] in
          if code = 0 || pos + code > len then None
          else begin
            Buffer.add_string buf (String.sub body (pos + 1) (code - 1));
            let pos = pos + code in
            if pos < len && code < 0xFF then Buffer.add_char buf '\000';
            blocks pos false
          end
        end
      in
      blocks 0 true
    end
  end

let cobs =
  {
    name = "cobs";
    frame = (fun payload -> Bitseq.of_string (cobs_encode payload));
    deframe =
      (fun bits ->
        if Bitseq.length bits land 7 <> 0 then None
        else cobs_decode (Bitseq.to_string bits));
  }

let dle = '\016'
let stx = '\002'
let etx = '\003'

let dle_stx_encode s =
  let buf = Buffer.create (String.length s + 4) in
  Buffer.add_char buf dle;
  Buffer.add_char buf stx;
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      if c = dle then Buffer.add_char buf dle)
    s;
  Buffer.add_char buf dle;
  Buffer.add_char buf etx;
  Buffer.contents buf

let dle_stx_decode s =
  let n = String.length s in
  if n < 4 || s.[0] <> dle || s.[1] <> stx || s.[n - 2] <> dle || s.[n - 1] <> etx then None
  else begin
    let buf = Buffer.create n in
    let rec go i =
      if i >= n - 2 then Some (Buffer.contents buf)
      else if s.[i] = dle then
        if i + 1 < n - 2 && s.[i + 1] = dle then begin
          Buffer.add_char buf dle;
          go (i + 2)
        end
        else None (* a lone DLE inside the body is ill-formed *)
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 2
  end

let dle_stx =
  {
    name = "dle-stx";
    frame = (fun payload -> Bitseq.of_string (dle_stx_encode payload));
    deframe =
      (fun bits ->
        if Bitseq.length bits land 7 <> 0 then None
        else dle_stx_decode (Bitseq.to_string bits));
  }

let length_prefix =
  {
    name = "length-prefix";
    frame =
      (fun payload ->
        let n = String.length payload in
        if n > 0xFFFF then invalid_arg "Framer.length_prefix: payload too long";
        let header = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xFF)) in
        Bitseq.of_string (header ^ payload));
    deframe =
      (fun bits ->
        if Bitseq.length bits land 7 <> 0 then None
        else begin
          let s = Bitseq.to_string bits in
          if String.length s < 2 then None
          else begin
            let n = (Char.code s.[0] lsl 8) lor Char.code s.[1] in
            if String.length s <> n + 2 then None else Some (String.sub s 2 n)
          end
        end);
  }

let all = [ hdlc Stuffing.Rule.hdlc; cobs; dle_stx; length_prefix ]

let framed_bits t payload = Bitseq.length (t.frame payload)
