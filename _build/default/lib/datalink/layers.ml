open Sublayer.Machine

module Error_detection = struct
  let name = "error-detection"

  type t = Detector.t
  type up_req = string
  type up_ind = string
  type down_req = string
  type down_ind = string
  type timer = Nothing.t

  let handle_up_req det pdu = (det, [ Down (det.Detector.protect pdu) ])

  let handle_down_ind det pdu =
    match det.Detector.verify pdu with
    | Some payload -> (det, [ Up payload ])
    | None -> (det, [ Note "corrupt frame dropped" ])

  let handle_timer _ t = Nothing.absurd t
end

module Framing = struct
  let name = "framing"

  type t = Framer.t
  type up_req = string
  type up_ind = string
  type down_req = Bitkit.Bitseq.t
  type down_ind = Bitkit.Bitseq.t
  type timer = Nothing.t

  let handle_up_req framer pdu = (framer, [ Down (framer.Framer.frame pdu) ])

  let handle_down_ind framer bits =
    match framer.Framer.deframe bits with
    | Some pdu -> (framer, [ Up pdu ])
    | None -> (framer, [ Note "malformed frame dropped" ])

  let handle_timer _ t = Nothing.absurd t
end

module Line_coding = struct
  let name = "line-coding"

  type t = Linecode.t
  type up_req = Bitkit.Bitseq.t
  type up_ind = Bitkit.Bitseq.t
  type down_req = Bitkit.Bitseq.t
  type down_ind = Bitkit.Bitseq.t
  type timer = Nothing.t

  let handle_up_req code bits = (code, [ Down (code.Linecode.encode bits) ])

  let handle_down_ind code symbols =
    match code.Linecode.decode symbols with
    | Some bits -> (code, [ Up bits ])
    | None -> (code, [ Note "illegal line symbols dropped" ])

  let handle_timer _ t = Nothing.absurd t
end
