(** Selective-repeat ARQ (see {!Arq.S}): windowed, individual acks,
    per-sequence timers, receiver reordering buffer. *)

include Arq.S
