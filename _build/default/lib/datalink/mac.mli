(** Media Access Control — the data link's alternative top sublayer for
    broadcast links (paper §2.1: "broadcast links like 802.11 dispense
    with error recovery and do Media Access Control to guarantee that one
    sender at a time, eventually and fairly, gets access to the shared
    physical channel").

    Two classic mechanisms behind one interface, evaluated on a slotted
    shared medium: slotted ALOHA (transmit with probability [p] whenever
    backlogged) and p-persistent CSMA (same, but defer while the carrier
    is sensed busy). Throughput and Jain fairness are reported; slotted
    ALOHA's theoretical peak of 1/e is a property-test target. *)

type policy =
  | Aloha of float  (** transmission probability per slot *)
  | Csma of float   (** persistence probability; senses the medium *)

val policy_name : policy -> string

type result = {
  offered_load : float;     (** arrivals per slot across all stations *)
  throughput : float;       (** successful packets per slot *)
  utilisation : float;      (** successful packets x length / slots *)
  collision_slots : int;
  per_station : int array;  (** successes per station *)
  fairness : float;         (** Jain's index over [per_station] *)
  mean_backlog : float;
}

val simulate :
  ?seed:int ->
  ?plen:int ->
  stations:int ->
  slots:int ->
  arrival:float ->
  policy ->
  result
(** [arrival] is each station's per-slot packet arrival probability;
    [plen] (default 1) is the packet length in slots — carrier sensing
    only pays off when transmissions span several slots. Stations hold a
    bounded backlog (32); collided packets stay queued and are retried.
    Any overlap of transmissions destroys all packets on the air. *)

val jain : int array -> float
