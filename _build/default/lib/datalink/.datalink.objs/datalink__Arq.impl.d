lib/datalink/arq.ml: Bitkit Sublayer
