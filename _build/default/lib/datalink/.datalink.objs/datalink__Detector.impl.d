lib/datalink/detector.ml: Bitkit Bytes Char Float Fun Int64 String
