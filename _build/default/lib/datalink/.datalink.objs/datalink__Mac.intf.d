lib/datalink/mac.mli:
