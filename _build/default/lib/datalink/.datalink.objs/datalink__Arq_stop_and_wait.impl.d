lib/datalink/arq_stop_and_wait.ml: Arq Sublayer
