lib/datalink/framer.ml: Bitkit Buffer Char Printf String Stuffing
