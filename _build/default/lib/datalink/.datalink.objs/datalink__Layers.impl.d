lib/datalink/layers.ml: Bitkit Detector Framer Linecode Nothing Sublayer
