lib/datalink/arq_go_back_n.ml: Arq List Sublayer
