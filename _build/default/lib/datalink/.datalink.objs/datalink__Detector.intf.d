lib/datalink/detector.mli: Bitkit
