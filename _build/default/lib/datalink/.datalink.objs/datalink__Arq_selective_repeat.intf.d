lib/datalink/arq_selective_repeat.mli: Arq
