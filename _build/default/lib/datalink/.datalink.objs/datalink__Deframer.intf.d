lib/datalink/deframer.mli: Bitkit Stuffing
