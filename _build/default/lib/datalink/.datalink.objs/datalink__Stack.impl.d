lib/datalink/stack.ml: Arq Arq_go_back_n Bitkit Detector Framer Layers Linecode List Queue Sim Stuffing Sublayer
