lib/datalink/layers.mli: Bitkit Detector Framer Linecode Sublayer
