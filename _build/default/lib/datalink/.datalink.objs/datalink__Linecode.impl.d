lib/datalink/linecode.ml: Array Bitkit Fun List
