lib/datalink/framer.mli: Bitkit Stuffing
