lib/datalink/arq_go_back_n.mli: Arq
