lib/datalink/arq_stop_and_wait.mli: Arq
