lib/datalink/arq.mli: Sublayer
