lib/datalink/linecode.mli: Bitkit
