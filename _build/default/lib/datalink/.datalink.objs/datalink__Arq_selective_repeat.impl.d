lib/datalink/arq_selective_repeat.ml: Arq Int List Sublayer
