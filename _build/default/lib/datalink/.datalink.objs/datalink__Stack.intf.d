lib/datalink/stack.mli: Arq Bitkit Detector Framer Linecode Queue Sim
