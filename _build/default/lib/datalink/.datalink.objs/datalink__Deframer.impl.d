lib/datalink/deframer.ml: Bitkit List Stuffing
