lib/datalink/mac.ml: Array Bitkit Float List Printf
