(** The stateless data-link sublayers as {!Sublayer.Machine.S} machines,
    ready for {!Sublayer.Machine.Stack} composition. Each machine's state
    is just its mechanism value ({!Detector.t}, {!Framer.t},
    {!Linecode.t}), so replacing the mechanism is replacing the state —
    the surrounding stack code never changes (test T3). *)

module Error_detection :
  Sublayer.Machine.S
    with type t = Detector.t
     and type up_req = string
     and type up_ind = string
     and type down_req = string
     and type down_ind = string
     and type timer = Sublayer.Machine.Nothing.t

module Framing :
  Sublayer.Machine.S
    with type t = Framer.t
     and type up_req = string
     and type up_ind = string
     and type down_req = Bitkit.Bitseq.t
     and type down_ind = Bitkit.Bitseq.t
     and type timer = Sublayer.Machine.Nothing.t

module Line_coding :
  Sublayer.Machine.S
    with type t = Linecode.t
     and type up_req = Bitkit.Bitseq.t
     and type up_ind = Bitkit.Bitseq.t
     and type down_req = Bitkit.Bitseq.t
     and type down_ind = Bitkit.Bitseq.t
     and type timer = Sublayer.Machine.Nothing.t
