(** Stop-and-wait ARQ (see {!Arq.S}): one outstanding PDU at a time. *)

include Arq.S
