(** The framing sublayer (paper §2.1): converts a byte PDU to a delimited
    bit string and back. Four interchangeable mechanisms are provided; the
    HDLC one is built directly on the verified stuffing library of §4.1,
    so the framing used by the data-link experiments is the one whose
    correctness lemmas are machine-checked. *)

type t = {
  name : string;
  frame : string -> Bitkit.Bitseq.t;
  deframe : Bitkit.Bitseq.t -> string option;
      (** [None] when the bits are not a well-formed frame. *)
}

val hdlc : Stuffing.Rule.scheme -> t
(** Bit stuffing + flags per the given scheme (use [Stuffing.Rule.hdlc]
    for classic HDLC, [Stuffing.Rule.paper_best] for the improved one).
    Payload bits that are not a whole number of bytes after unstuffing are
    rejected. *)

val cobs : t
(** Consistent Overhead Byte Stuffing with a 0x00 terminator. *)

val dle_stx : t
(** DLE/STX ... DLE/ETX character framing with DLE doubling. *)

val length_prefix : t
(** 16-bit big-endian length prefix; no resynchronisation properties, the
    baseline "framing for free" scheme. *)

val all : t list

val framed_bits : t -> string -> int
(** Size in bits of a framed payload (for overhead comparisons). *)
