(** Hardware-offload decomposition study (paper §3.1: "Figure 5 offers a
    principled way to offload parts of TCP processing to hardware. ...
    A simple decomposition places RD, CM, and DM in hardware; with more
    finagling and a modest duplication of state, only RD can be placed in
    hardware").

    Sublayering makes offload boundaries explicit: a partition assigns
    each sublayer to the NIC (hardware) or the host (software), and every
    segment's path through the stack then has a well-defined number of
    hardware/software boundary crossings. The simulator charges a cost
    per sublayer step (cheaper in hardware) and per crossing (PCIe-like),
    and compares the paper's partitions against an AccelTCP/TAS-style
    fast/slow-path split, which moves {e whole packets} between paths and
    pays state-synchronisation costs instead. *)

type domain = Hardware | Software

type partition = {
  pname : string;
  assign : string -> domain;  (** "dm" | "cm" | "rd" | "osr" *)
}

val all_software : partition
val all_hardware : partition
val datapath_hw : partition
(** DM, CM and RD in hardware; OSR ("complex and likely to evolve") in
    software — the paper's simple decomposition. *)

val rd_only_hw : partition
(** Only RD in hardware — the paper's finagled decomposition. *)

val partitions : partition list

val all_partitions : partition list
(** All 2^4 hardware/software assignments, named like "hw{rd,cm}". *)

type costs = {
  sw_cycles : (string * float) list;
      (** per-sublayer software processing cost; RD (timers, retransmit
          queue, SACK) dominates, DM/CM are cheap per packet *)
  hw_factor : float;  (** hardware runs a sublayer at this fraction *)
  crossing : float;   (** per hardware/software boundary crossing *)
  sync : float;       (** fast/slow state synchronisation, per switch *)
}

val default_costs : costs

(** A transfer's segment mix, one endpoint's perspective. *)
type workload = {
  data_tx : int;
  retx : int;
  acks_rx : int;
  control : int;  (** SYN/FIN exchange segments *)
}

val workload_of_transfer : segments:int -> loss:float -> workload

val best_partition : ?costs:costs -> workload -> partition * float
(** Exhaustive search over {!all_partitions}: the assignment with the
    lowest total cost, and its speedup over all-software. *)

type report = {
  scheme : string;
  crossings : int;
  total_cost : float;
  cost_per_segment : float;
  speedup_vs_software : float;
}

val simulate : ?costs:costs -> partition -> workload -> report

val fast_slow_path : ?costs:costs -> slow_fraction:float -> workload -> report
(** The functional-modularity baseline: a packet takes the all-hardware
    fast path or the all-software slow path; [slow_fraction] of data/ack
    packets (plus all control and retransmission-adjacent packets) go
    slow, each path switch paying [sync]. *)

val pp_report : Format.formatter -> report -> unit
