type domain = Hardware | Software

type partition = { pname : string; assign : string -> domain }

let sublayers_up = [ "dm"; "cm"; "rd"; "osr" ]  (* wire side first *)

let all_software = { pname = "all-software"; assign = (fun _ -> Software) }
let all_hardware = { pname = "all-hardware"; assign = (fun _ -> Hardware) }

let datapath_hw =
  { pname = "dm+cm+rd-hw";
    assign = (fun s -> if s = "osr" then Software else Hardware) }

let rd_only_hw =
  { pname = "rd-only-hw"; assign = (fun s -> if s = "rd" then Hardware else Software) }

let partitions = [ all_software; datapath_hw; rd_only_hw; all_hardware ]

let all_partitions =
  List.init 16 (fun mask ->
      let in_hw s =
        let bit = match s with "dm" -> 0 | "cm" -> 1 | "rd" -> 2 | _ -> 3 in
        mask land (1 lsl bit) <> 0
      in
      let hw_names = List.filter in_hw sublayers_up in
      { pname =
          (if hw_names = [] then "hw{}" else "hw{" ^ String.concat "," hw_names ^ "}");
        assign = (fun s -> if in_hw s then Hardware else Software) })

type costs = {
  sw_cycles : (string * float) list;
  hw_factor : float;
  crossing : float;
  sync : float;
}

let default_costs =
  { sw_cycles = [ ("dm", 10.); ("cm", 10.); ("rd", 100.); ("osr", 30.) ];
    hw_factor = 0.05; crossing = 40.0; sync = 100.0 }

let step_cost costs sublayer = function
  | Hardware -> List.assoc sublayer costs.sw_cycles *. costs.hw_factor
  | Software -> List.assoc sublayer costs.sw_cycles

type workload = { data_tx : int; retx : int; acks_rx : int; control : int }

let workload_of_transfer ~segments ~loss =
  { data_tx = segments;
    retx = int_of_float (Float.of_int segments *. loss) + 1;
    acks_rx = segments;
    control = 6 }

type report = {
  scheme : string;
  crossings : int;
  total_cost : float;
  cost_per_segment : float;
  speedup_vs_software : float;
}

(* The sublayer sequence each segment class traverses, starting from the
   side it enters on. The wire is on the hardware side of the NIC; the
   application is software. *)
type origin = App | Wire | First_step

type path = { start : origin; steps : string list }

let paths w =
  [
    (* outgoing data: app -> osr -> rd -> cm -> dm -> wire *)
    (w.data_tx, { start = App; steps = List.rev sublayers_up });
    (* retransmissions originate at RD itself *)
    (w.retx, { start = First_step; steps = [ "rd"; "cm"; "dm" ] });
    (* incoming acks: wire -> dm -> cm -> rd -> osr (window update) *)
    (w.acks_rx, { start = Wire; steps = sublayers_up });
    (* control segments: wire -> dm -> cm (and the reverse, symmetric) *)
    (w.control, { start = Wire; steps = [ "dm"; "cm" ] });
  ]

let path_cost costs assign path =
  let crossings = ref 0 in
  let cost = ref 0. in
  let start_domain =
    match path.start with
    | App -> Software
    | Wire -> Hardware
    | First_step -> (match path.steps with s :: _ -> assign s | [] -> Software)
  in
  let herd = ref start_domain in
  List.iter
    (fun s ->
      let d = assign s in
      if d <> !herd then begin
        incr crossings;
        cost := !cost +. costs.crossing
      end;
      herd := d;
      cost := !cost +. step_cost costs s d)
    path.steps;
  (!crossings, !cost)

let segment_count w = w.data_tx + w.retx + w.acks_rx + w.control

let simulate ?(costs = default_costs) partition w =
  let crossings = ref 0 in
  let total = ref 0. in
  List.iter
    (fun (count, path) ->
      let c, cost = path_cost costs partition.assign path in
      crossings := !crossings + (count * c);
      total := !total +. (Float.of_int count *. cost))
    (paths w);
  let software_total =
    let t = ref 0. in
    List.iter
      (fun (count, path) ->
        let _, cost = path_cost costs all_software.assign path in
        t := !t +. (Float.of_int count *. cost))
      (paths w);
    !t
  in
  {
    scheme = partition.pname;
    crossings = !crossings;
    total_cost = !total;
    cost_per_segment = !total /. Float.of_int (segment_count w);
    speedup_vs_software = software_total /. !total;
  }

let fast_slow_path ?(costs = default_costs) ~slow_fraction w =
  let sw_all = List.fold_left (fun a (_, c) -> a +. c) 0. costs.sw_cycles in
  let fast_cost = sw_all *. costs.hw_factor in
  (* A slow-path packet crosses to the host, is processed there, and the
     updated state must be synchronised back to the NIC. *)
  let slow_cost = (2. *. costs.crossing) +. sw_all +. costs.sync in
  let fastslow count frac =
    let slow = Float.of_int count *. frac in
    let fast = Float.of_int count -. slow in
    ((fast *. fast_cost) +. (slow *. slow_cost), int_of_float (2. *. slow))
  in
  let d_cost, d_cross = fastslow w.data_tx slow_fraction in
  let a_cost, a_cross = fastslow w.acks_rx slow_fraction in
  let r_cost, r_cross = fastslow w.retx 1.0 in
  let c_cost, c_cross = fastslow w.control 1.0 in
  let total = d_cost +. a_cost +. r_cost +. c_cost in
  let software_total =
    Float.of_int (segment_count w) *. sw_all
  in
  {
    scheme = Printf.sprintf "fast/slow(%.0f%%slow)" (100. *. slow_fraction);
    crossings = d_cross + a_cross + r_cross + c_cross;
    total_cost = total;
    cost_per_segment = total /. Float.of_int (segment_count w);
    speedup_vs_software = software_total /. total;
  }

let pp_report fmt r =
  Format.fprintf fmt "%-20s crossings=%6d cost=%10.0f per-seg=%6.1f speedup=%5.2fx@."
    r.scheme r.crossings r.total_cost r.cost_per_segment r.speedup_vs_software

let best_partition ?(costs = default_costs) w =
  let scored =
    List.map (fun p -> (p, simulate ~costs p w)) all_partitions
  in
  let best, report =
    List.fold_left
      (fun (bp, br) (p, r) ->
        if r.total_cost < br.total_cost then (p, r) else (bp, br))
      (List.hd scored) (List.tl scored)
  in
  (best, report.speedup_vs_software)
