examples/interop.ml: Format Printf Sim String Transport
