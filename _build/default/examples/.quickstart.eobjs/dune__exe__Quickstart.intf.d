examples/quickstart.mli:
