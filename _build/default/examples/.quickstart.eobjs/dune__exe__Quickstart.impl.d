examples/quickstart.ml: Printf Sim Transport
