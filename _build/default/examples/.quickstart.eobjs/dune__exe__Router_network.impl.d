examples/router_network.ml: Array List Network Printf Sim String Sys
