examples/file_transfer.ml: Bitkit Char Float List Printf Sim String Transport
