examples/full_stack.ml: Array Bitkit Char List Network Printf Sim String Sys Transport
