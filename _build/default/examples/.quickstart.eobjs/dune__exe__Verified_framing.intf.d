examples/verified_framing.mli:
