examples/router_network.mli:
