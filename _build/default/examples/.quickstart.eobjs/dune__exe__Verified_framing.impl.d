examples/verified_framing.ml: Automaton Codec Format Lemmas List Overhead Printf Rule Search Stuffing
