examples/interop.mli:
