(* Bulk transfer over a harsh network, once per congestion-control
   algorithm — the "Replace" challenge (paper §5) as a runnable demo:
   swapping rate control is a one-line configuration change because it
   hides behind OSR's narrow interface.

     dune exec examples/file_transfer.exe
*)

let megabyte = 1_000_000

let transfer cc =
  let engine = Sim.Engine.create ~seed:7 () in
  let config = { Transport.Config.default with cc } in
  let channel =
    { (Sim.Channel.lossy 0.02) with
      delay = 0.02;                 (* 20 ms one-way *)
      bandwidth = Some 5_000_000.;  (* 5 MB/s bottleneck *)
      reorder = 0.01; reorder_extra = 0.005 }
  in
  let client_host, server_host = Transport.Host.pair engine ~config channel in
  Transport.Host.listen server_host ~port:9000;
  let server = ref None in
  Transport.Host.on_accept server_host (fun c -> server := Some c);
  let conn = Transport.Host.connect client_host ~remote_port:9000 () in
  let rng = Bitkit.Rng.create 99 in
  let file = String.init megabyte (fun _ -> Char.chr (Bitkit.Rng.int rng 256)) in
  Transport.Host.write conn file;
  Transport.Host.close conn;
  let rec drive last_report =
    if Sim.Engine.now engine < 300. && not (Transport.Host.finished conn) then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.25) engine;
      let received =
        match !server with Some s -> Transport.Host.received_length s | None -> 0
      in
      let last_report =
        if received - last_report >= 200_000 then begin
          Printf.printf "    t=%6.2fs  %4d KB received\n%!" (Sim.Engine.now engine)
            (received / 1000);
          received
        end
        else last_report
      in
      drive last_report
    end
  in
  drive 0;
  let t = Sim.Engine.now engine in
  Sim.Engine.run ~until:(t +. 10.) engine;
  match !server with
  | Some s when Transport.Host.received s = file ->
      Printf.printf "  %-10s 1 MB in %6.2fs virtual  (%.0f KB/s)\n" cc.Transport.Cc.algo_name
        t
        (Float.of_int megabyte /. t /. 1000.)
  | _ -> Printf.printf "  %-10s TRANSFER FAILED\n" cc.Transport.Cc.algo_name

let () =
  Printf.printf "1 MB file over a 5 MB/s, 40 ms RTT, 2%%-loss path:\n";
  List.iter
    (fun cc -> transfer cc)
    [ Transport.Cc.reno; Transport.Cc.cubic; Transport.Cc.vegas; Transport.Cc.fixed 8 ]
