(* The §4.1 experiment as a demo: verified-style bit stuffing, the
   exact validity checker, the rule search, and the overhead analysis
   behind the paper's "1 in 32 vs 1 in 128" claim.

     dune exec examples/verified_framing.exe
*)

let () =
  let open Stuffing in
  let message = Rule.bits_of_string "0111111011111100" in

  List.iter
    (fun (name, scheme) ->
      Printf.printf "%s  (%s)\n" name (Format.asprintf "%a" Rule.pp_scheme scheme);
      let encoded = Codec.encode scheme message in
      Printf.printf "  data    %s\n" (Rule.string_of_bits message);
      Printf.printf "  framed  %s\n" (Rule.string_of_bits encoded);
      (match Codec.decode scheme encoded with
      | Some back when back = message -> Printf.printf "  decode  ok (round trip)\n"
      | _ -> Printf.printf "  decode  FAILED\n");
      Printf.printf "  overhead: naive 1/%.0f, exact 1/%.1f\n\n"
        (1. /. Overhead.naive scheme.Rule.rule)
        (1. /. Overhead.stationary scheme.Rule.rule))
    [ ("HDLC", Rule.hdlc); ("paper's improved scheme", Rule.paper_best) ];

  (* The exact checker at work: a plausible-looking scheme that is wrong. *)
  let bad =
    { Rule.flag = Rule.bits_of_string "01111110";
      rule = { Rule.trigger = Rule.bits_of_string "110"; stuff = true } }
  in
  Printf.printf "checking %s:\n" (Format.asprintf "%a" Rule.pp_scheme bad);
  (match Automaton.check bad with
  | Ok () -> Printf.printf "  valid\n"
  | Error v -> Printf.printf "  INVALID: %s\n" (Format.asprintf "%a" Automaton.pp_violation v));
  (match Automaton.find_counterexample bad ~max_len:8 with
  | Some d ->
      Printf.printf "  counterexample data: %s\n" (Rule.string_of_bits d);
      Printf.printf "  its framing decodes to: %s\n"
        (match Codec.decode bad (Codec.encode bad d) with
        | Some d' -> Rule.string_of_bits d'
        | None -> "<nothing>")
  | None -> Printf.printf "  (no short counterexample)\n");

  (* The executable lemma library (the paper's 57 Coq lemmas, made
     runnable). *)
  let failures = Lemmas.failures Lemmas.all in
  Printf.printf "\nlemma suite: %d lemmas, %d failures\n" (List.length Lemmas.all)
    (List.length failures);

  (* And the search for alternate valid rules. *)
  let outcome = Search.run ~best_limit:3 Search.structured_space in
  Printf.printf "\n%s" (Format.asprintf "%a" Search.pp_outcome outcome)
