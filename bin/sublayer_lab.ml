(* sublayer-lab: a command-line front end to the library.

     dune exec bin/sublayer_lab.exe -- tcp --loss 0.05 --bytes 100000 --cc cubic
     dune exec bin/sublayer_lab.exe -- route --topology grid --protocol ls
     dune exec bin/sublayer_lab.exe -- stuffing --flag 01111110 --trigger 11111 --stuff 0
     dune exec bin/sublayer_lab.exe -- search
     dune exec bin/sublayer_lab.exe -- mcheck
*)

open Cmdliner

let random_data seed n =
  let rng = Bitkit.Rng.create seed in
  String.init n (fun _ -> Char.chr (Bitkit.Rng.int rng 256))

(* --- tcp --- *)

let tcp_cmd =
  let run loss bytes cc_name stack seed =
    let cc =
      match
        List.find_opt (fun a -> a.Transport.Cc.algo_name = cc_name) Transport.Cc.all
      with
      | Some a -> a
      | None -> Transport.Cc.reno
    in
    let factory =
      match stack with
      | "monolithic" -> Transport.Tcp_monolithic.factory
      | "shim" -> Transport.Shim.factory
      | "watson" -> Transport.Tcp_watson.factory ()
      | "secure" -> Transport.Tcp_secure.factory ~key:Transport.Tcp_secure.demo_key
      | _ -> Transport.Host.sublayered
    in
    let config = { Transport.Config.default with cc } in
    let engine = Sim.Engine.create ~seed () in
    let monitors = Monitor.Runtime.create ~label:"tcp" () in
    let a, b =
      Transport.Host.pair engine ~config ~monitors ~factory_a:factory
        ~factory_b:factory (Sim.Channel.lossy loss)
    in
    Transport.Host.listen b ~port:80;
    let server = ref None in
    Transport.Host.on_accept b (fun c -> server := Some c);
    let c = Transport.Host.connect a ~remote_port:80 () in
    let data = random_data seed bytes in
    Transport.Host.write c data;
    Transport.Host.close c;
    let rec drive () =
      if Sim.Engine.now engine < 600. && not (Transport.Host.finished c) then begin
        Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
        drive ()
      end
    in
    drive ();
    let t = Sim.Engine.now engine in
    Sim.Engine.run ~until:(t +. 30.) engine;
    (match !server with
    | Some srv when Transport.Host.received srv = data ->
        Printf.printf "transferred %d bytes over %.0f%% loss in %.2fs virtual (%s, %s)\n"
          bytes (100. *. loss) t cc.Transport.Cc.algo_name stack
    | _ -> Printf.printf "TRANSFER FAILED\n");
    Printf.printf "conformance: %s\n"
      (match Monitor.Runtime.verdicts monitors with
      | [] -> "(no monitored interfaces)"
      | vs ->
          String.concat ", "
            (List.map
               (fun (name, checked, violated) ->
                 Printf.sprintf "%s=%d/%d" name (checked - violated) checked
                 ^ if violated > 0 then "!" else "")
               vs));
    if Monitor.Runtime.violation_count monitors > 0 then begin
      List.iter (Printf.printf "MONITOR VIOLATION: %s\n")
        (Monitor.Runtime.violations monitors);
      exit 1
    end
  in
  let loss = Arg.(value & opt float 0.02 & info [ "loss" ] ~doc:"Segment loss probability.") in
  let bytes = Arg.(value & opt int 100_000 & info [ "bytes" ] ~doc:"Stream size.") in
  let cc =
    Arg.(value & opt string "reno" & info [ "cc" ] ~doc:"reno | cubic | vegas | fixed-8 | aimd.")
  in
  let stack =
    Arg.(value & opt string "sublayered"
         & info [ "stack" ] ~doc:"sublayered | monolithic | shim | watson | secure.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  Cmd.v (Cmd.info "tcp" ~doc:"Run a TCP transfer in the simulator.")
    Term.(const run $ loss $ bytes $ cc $ stack $ seed)

(* --- route --- *)

let route_cmd =
  let run topology protocol =
    let routing =
      match protocol with
      | "ls" -> Network.Link_state.factory ()
      | "pv" -> Network.Path_vector.factory ()
      | _ -> Network.Distance_vector.factory ()
    in
    let n, edges =
      match topology with
      | "ring" -> (10, Network.Topology.ring 10)
      | "line" -> (8, Network.Topology.line 8)
      | "grid" -> (16, Network.Topology.grid 4 4)
      | _ -> (16, Network.Topology.random ~n:16 ~extra:8 ~seed:3)
    in
    let engine = Sim.Engine.create ~seed:1 () in
    let net = Network.Topology.build engine ~routing ~n edges in
    (match Network.Topology.converge net with
    | Some t -> Printf.printf "%s converged on %s (%d nodes) at t=%.1fs\n" protocol topology n t
    | None -> Printf.printf "did not converge\n");
    (match Network.Topology.fib_path net ~src:0 ~dst:(n - 1) with
    | Some p ->
        Printf.printf "path 0 -> %d: %s\n" (n - 1)
          (String.concat " -> " (List.map string_of_int p))
    | None -> Printf.printf "no path\n");
    Network.Topology.stop net
  in
  let topology =
    Arg.(value & opt string "random" & info [ "topology" ] ~doc:"ring | line | grid | random.")
  in
  let protocol = Arg.(value & opt string "dv" & info [ "protocol" ] ~doc:"dv | ls | pv.") in
  Cmd.v (Cmd.info "route" ~doc:"Build a routed network and converge it.")
    Term.(const run $ topology $ protocol)

(* --- stuffing --- *)

let stuffing_cmd =
  let run flag trigger stuff =
    let scheme =
      { Stuffing.Rule.flag = Stuffing.Rule.bits_of_string flag;
        rule = { Stuffing.Rule.trigger = Stuffing.Rule.bits_of_string trigger;
                 stuff = stuff = 1 } }
    in
    Printf.printf "scheme: %s\n" (Format.asprintf "%a" Stuffing.Rule.pp_scheme scheme);
    (match Stuffing.Automaton.check scheme with
    | Ok () ->
        Printf.printf "valid (exact automaton check, all data lengths)\n";
        Printf.printf "overhead: naive 1/%.0f, exact 1/%.1f\n"
          (1. /. Stuffing.Overhead.naive scheme.Stuffing.Rule.rule)
          (1. /. Stuffing.Overhead.stationary scheme.Stuffing.Rule.rule)
    | Error v ->
        Printf.printf "INVALID: %s\n" (Format.asprintf "%a" Stuffing.Automaton.pp_violation v);
        (match Stuffing.Automaton.find_counterexample scheme ~max_len:10 with
        | Some d -> Printf.printf "counterexample: %s\n" (Stuffing.Rule.string_of_bits d)
        | None -> Printf.printf "(no counterexample within 10 bits)\n"))
  in
  let flag = Arg.(value & opt string "01111110" & info [ "flag" ] ~doc:"Flag bits.") in
  let trigger = Arg.(value & opt string "11111" & info [ "trigger" ] ~doc:"Trigger bits.") in
  let stuff = Arg.(value & opt int 0 & info [ "stuff" ] ~doc:"Stuffed bit (0 or 1).") in
  Cmd.v (Cmd.info "stuffing" ~doc:"Check a bit-stuffing scheme exactly.")
    Term.(const run $ flag $ trigger $ stuff)

(* --- search --- *)

let search_cmd =
  let run () =
    Format.printf "%a"
      Stuffing.Search.pp_outcome
      (Stuffing.Search.run ~best_limit:10 Stuffing.Search.structured_space)
  in
  Cmd.v (Cmd.info "search" ~doc:"Search for valid stuffing schemes (paper §4.1).")
    Term.(const run $ const ())

(* --- mcheck --- *)

let mcheck_cmd =
  let run () =
    List.iter
      (fun m -> Format.printf "%a" Mcheck.Checker.pp_report (Mcheck.Checker.run m))
      [ Mcheck.Model_rd.model Mcheck.Model_rd.default;
        Mcheck.Model_cm.model Mcheck.Model_cm.default;
        Mcheck.Model_cm.close_model ~capacity:2;
        Mcheck.Model_osr.model ~n:6;
        Mcheck.Model_msg.model ~messages:3 ~frags:2;
        Mcheck.Model_mono.model Mcheck.Model_mono.default ];
    Format.printf "%a" Mcheck.Entangle.pp_summary ()
  in
  Cmd.v (Cmd.info "mcheck" ~doc:"Model-check the protocol models (paper §4.2).")
    Term.(const run $ const ())

(* --- stats --- *)

let stats_cmd =
  let run loss bytes stack seed json =
    let factory =
      match stack with
      | "sublayered" -> Transport.Host.sublayered
      | "watson" -> Transport.Tcp_watson.factory ()
      | "secure" -> Transport.Tcp_secure.factory ~key:Transport.Tcp_secure.demo_key
      | other ->
          Printf.eprintf
            "sublayer-lab stats: unknown stack %S (expected sublayered | watson | secure)\n"
            other;
          exit 2
    in
    let stats_a = Sublayer.Stats.create ~label:"client" () in
    let stats_b = Sublayer.Stats.create ~label:"server" () in
    let engine = Sim.Engine.create ~seed () in
    let a, b =
      Transport.Host.pair engine ~factory_a:factory ~factory_b:factory ~stats_a
        ~stats_b (Sim.Channel.lossy loss)
    in
    Transport.Host.listen b ~port:80;
    let c = Transport.Host.connect a ~remote_port:80 () in
    Transport.Host.write c (random_data seed bytes);
    Transport.Host.close c;
    let rec drive () =
      if Sim.Engine.now engine < 600. && not (Transport.Host.finished c) then begin
        Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
        drive ()
      end
    in
    drive ();
    Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
    if json then
      Printf.printf "[%s,\n %s]\n"
        (Sublayer.Stats.to_json stats_a)
        (Sublayer.Stats.to_json stats_b)
    else begin
      Printf.printf "per-sublayer counters after %d bytes over %.0f%% loss (%s):\n\n"
        bytes (100. *. loss) stack;
      Format.printf "%a@.%a" Sublayer.Stats.pp stats_a Sublayer.Stats.pp stats_b
    end
  in
  let loss = Arg.(value & opt float 0.05 & info [ "loss" ] ~doc:"Segment loss probability.") in
  let bytes = Arg.(value & opt int 100_000 & info [ "bytes" ] ~doc:"Stream size.") in
  let stack =
    Arg.(value & opt string "sublayered"
         & info [ "stack" ] ~doc:"sublayered | watson | secure.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text.") in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a lossy transfer and report every sublayer's counters.")
    Term.(const run $ loss $ bytes $ stack $ seed $ json)

(* --- trace --- *)

let trace_cmd =
  let run loss bytes =
    let engine = Sim.Engine.create ~seed:2 () in
    let trace = Sim.Trace.create () in
    let to_a = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let to_b = ref (fun (_ : Bitkit.Slice.t) -> ()) in
    let ch dir =
      Sim.Channel.create engine (Sim.Channel.lossy loss) ~size:Bitkit.Slice.length
        ~deliver:(fun s -> !dir s)
        ()
    in
    let ab = ch to_b and ba = ch to_a in
    let received = Buffer.create 1024 in
    let a =
      Transport.Tcp_sublayered.create engine ~trace ~name:"client"
        Transport.Config.default ~local_port:1000 ~remote_port:80
        ~transmit:(fun s -> Sim.Channel.send ab s)
        ~events:(fun _ -> ())
    in
    let b =
      Transport.Tcp_sublayered.create engine ~trace ~name:"server"
        Transport.Config.default ~local_port:80 ~remote_port:1000
        ~transmit:(fun s -> Sim.Channel.send ba s)
        ~events:(function
          | `Data s -> Bitkit.Slice.add_to_buffer received s
          | _ -> ())
    in
    to_a := Transport.Tcp_sublayered.from_wire a;
    to_b := Transport.Tcp_sublayered.from_wire b;
    Transport.Tcp_sublayered.listen b;
    Transport.Tcp_sublayered.connect a;
    Transport.Tcp_sublayered.write a (random_data 2 bytes);
    Transport.Tcp_sublayered.close a;
    Sim.Engine.run ~until:60. engine;
    Printf.printf "transfer of %d bytes complete (received %d); sublayer trace:\n\n"
      bytes (Buffer.length received);
    Format.printf "%a" Sim.Trace.pp trace
  in
  let loss = Arg.(value & opt float 0.1 & info [ "loss" ] ~doc:"Loss probability.") in
  let bytes = Arg.(value & opt int 5_000 & info [ "bytes" ] ~doc:"Stream size.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the sublayer event trace of a lossy transfer.")
    Term.(const run $ loss $ bytes)

(* --- scale --- *)

let scale_cmd =
  let run flows hosts bytes loss backend seed =
    let backend =
      match backend with
      | "wheel" -> `Wheel
      | "heap" -> `Heap
      | other ->
          Printf.eprintf
            "sublayer-lab scale: unknown backend %S (expected wheel | heap)\n"
            other;
          exit 2
    in
    let engine = Sim.Engine.create ~seed ~backend () in
    let channel = { (Sim.Channel.lossy loss) with Sim.Channel.delay = 0.02 } in
    let monitors = Monitor.Runtime.create ~label:"scale" () in
    let fabric =
      Transport.Fabric.create engine ~hosts ~channel ~flows ~bytes ~monitors ()
    in
    let wall0 = Sys.time () in
    let r =
      Sim.Workload.run ~spacing:0.005 ~until:900. ~name:"scale" ~engine ~flows
        ~invariant:(Monitor.Runtime.invariant monitors)
        ~verdicts:(fun () -> Monitor.Runtime.verdicts monitors)
        (Transport.Fabric.ops fabric)
    in
    let wall = Sys.time () -. wall0 in
    Format.printf "%a@." Sim.Workload.pp_report r;
    let fired = r.Sim.Workload.soak.Sim.Soak.events_fired in
    Printf.printf "%d events in %.3fs wall = %.0f events/sec\n" fired wall
      (if wall > 0. then float_of_int fired /. wall else 0.);
    if Monitor.Runtime.violation_count monitors > 0 then begin
      List.iter (Printf.printf "MONITOR VIOLATION: %s\n")
        (Monitor.Runtime.violations monitors);
      exit 1
    end;
    if not (Sim.Workload.ok r) then exit 1
  in
  let flows = Arg.(value & opt int 1000 & info [ "flows" ] ~doc:"Concurrent flows.") in
  let hosts = Arg.(value & opt int 8 & info [ "hosts" ] ~doc:"Hosts on the fabric.") in
  let bytes = Arg.(value & opt int 8_000 & info [ "bytes" ] ~doc:"Bytes per flow.") in
  let loss = Arg.(value & opt float 0.01 & info [ "loss" ] ~doc:"Segment loss probability.") in
  let backend =
    Arg.(value & opt string "wheel" & info [ "backend" ] ~doc:"Scheduler: wheel | heap.")
  in
  let seed = Arg.(value & opt int 67 & info [ "seed" ] ~doc:"Simulation seed.") in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Soak thousands of concurrent flows on the N-host fabric.")
    Term.(const run $ flows $ hosts $ bytes $ loss $ backend $ seed)

(* --- shard --- *)

let shard_cmd =
  let run flows hosts bytes loss shards seed verify =
    let workload nshards =
      let channel = { (Sim.Channel.lossy loss) with Sim.Channel.delay = 0.02 } in
      let shard =
        Sim.Shard.create ~seed ~lookahead:channel.Sim.Channel.delay
          ~shards:nshards ()
      in
      let monitors =
        Array.init nshards (fun i ->
            Monitor.Runtime.create ~label:(Printf.sprintf "shard%d" i) ())
      in
      let fabric =
        Transport.Fabric.create_sharded shard ~hosts ~channel ~flows ~bytes
          ~monitors ()
      in
      let mons = Array.to_list monitors in
      let wall0 = Unix.gettimeofday () in
      let r =
        Sim.Workload.run_sharded ~spacing:0.005 ~until:900. ~name:"shard"
          ~shard
          ~launch_site:(Transport.Fabric.launch_site fabric)
          ~invariant:(Monitor.Runtime.merged_invariant mons)
          ~verdicts:(fun () -> Monitor.Runtime.merged_verdicts mons)
          ~flows
          (Transport.Fabric.ops fabric)
      in
      let wall = Unix.gettimeofday () -. wall0 in
      (r, wall, mons)
    in
    let r, wall, mons = workload shards in
    Format.printf "%a@." Sim.Workload.pp_report r;
    let fired = r.Sim.Workload.soak.Sim.Soak.events_fired in
    Printf.printf "%d shards: %d events in %.3fs wall = %.0f events/sec\n"
      shards fired wall
      (if wall > 0. then float_of_int fired /. wall else 0.);
    let viols =
      List.fold_left (fun n m -> n + Monitor.Runtime.violation_count m) 0 mons
    in
    if viols > 0 then begin
      List.iter
        (fun m ->
          List.iter (Printf.printf "MONITOR VIOLATION: %s\n")
            (Monitor.Runtime.violations m))
        mons;
      exit 1
    end;
    if verify && shards > 1 then begin
      (* Re-run the identical scenario on one shard (a plain single
         engine, no domains) and demand the whole report match. *)
      let serial, swall, _ = workload 1 in
      Printf.printf "1 shard:  %d events in %.3fs wall = %.0f events/sec\n"
        serial.Sim.Workload.soak.Sim.Soak.events_fired swall
        (if swall > 0. then
           float_of_int serial.Sim.Workload.soak.Sim.Soak.events_fired /. swall
         else 0.);
      if r <> serial then begin
        Printf.printf "DIVERGED: sharded run is not bit-identical to serial\n";
        exit 1
      end;
      Printf.printf "sharded run is bit-identical to the single-engine run\n"
    end;
    if not (Sim.Workload.ok r) then exit 1
  in
  let flows = Arg.(value & opt int 1000 & info [ "flows" ] ~doc:"Concurrent flows.") in
  let hosts = Arg.(value & opt int 16 & info [ "hosts" ] ~doc:"Hosts on the fabric.") in
  let bytes = Arg.(value & opt int 8_000 & info [ "bytes" ] ~doc:"Bytes per flow.") in
  let loss = Arg.(value & opt float 0.01 & info [ "loss" ] ~doc:"Segment loss probability.") in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Engine shards (one domain each).")
  in
  let seed = Arg.(value & opt int 67 & info [ "seed" ] ~doc:"Simulation seed.") in
  let verify =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Also run on one shard and check bit-identity.")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"Run the many-flow fabric on parallel per-domain engine shards.")
    Term.(const run $ flows $ hosts $ bytes $ loss $ shards $ seed $ verify)

(* --- top --- *)

(* Live per-sublayer dashboard: the many-flow fabric with telemetry and
   allocation attribution on, redrawn at every soak slice from the last
   telemetry sample. [delay] paces the redraw in wall time so the run is
   watchable; 0 races the simulation. *)
let top_cmd =
  let run flows hosts bytes loss seed step delay =
    let engine = Sim.Engine.create ~seed ~backend:`Wheel () in
    let channel = { (Sim.Channel.lossy loss) with Sim.Channel.delay = 0.02 } in
    let stats = Sublayer.Stats.create ~label:"top" () in
    let tele = Sim.Telemetry.create ~label:"top" () in
    Sublayer.Alloc.set_enabled true;
    Fun.protect ~finally:(fun () -> Sublayer.Alloc.set_enabled false)
    @@ fun () ->
    let fabric =
      Transport.Fabric.create engine ~hosts ~stats ~telemetry:tele ~channel
        ~flows ~bytes ()
    in
    let sublayers = [ "osr"; "rd"; "cm"; "dm"; "cc"; "app"; "wire" ] in
    let counter sub name =
      Sublayer.Stats.value
        (Sublayer.Stats.counter (Sublayer.Stats.scope stats sub) name)
    in
    let get kvs k = match List.assoc_opt k kvs with Some v -> v | None -> 0 in
    (* Sum of one sublayer's per-slice counter deltas: a single "how
       busy" number per row without hardcoding each scope's counters. *)
    let activity kvs sub =
      let prefix = "fabric." ^ sub ^ "." in
      let plen = String.length prefix in
      List.fold_left
        (fun acc (k, v) ->
          if String.length k >= plen && String.sub k 0 plen = prefix then
            acc + v
          else acc)
        0 kvs
    in
    let render now =
      match Sim.Telemetry.last_sample tele with
      | None -> ()
      | Some s ->
          let b = Buffer.create 1024 in
          Buffer.add_string b "\027[2J\027[H";
          Buffer.add_string b
            (Printf.sprintf
               "sublayer-lab top   t=%8.2fs   flows=%d   events=%d   live=%d   cwnd=%dB\n"
               now flows
               (Sim.Engine.events_fired engine)
               (Sim.Engine.live engine)
               (get s.Sim.Telemetry.nondet "fabric.cc.cwnd_bytes"));
          let segs = counter "dm" "segments_in" in
          Buffer.add_string b
            (Printf.sprintf "%s\n  %-6s %14s %14s %12s\n"
               (String.make 72 '-') "sub" "activity/slice" "minor-w/slice"
               "minor-w/seg");
          List.iter
            (fun sub ->
              let words = counter sub "gc.minor_words" in
              Buffer.add_string b
                (Printf.sprintf "  %-6s %14d %14d %12.1f\n" sub
                   (activity s.Sim.Telemetry.det sub)
                   (get s.Sim.Telemetry.nondet
                      ("fabric." ^ sub ^ ".gc.minor_words"))
                   (if segs = 0 then 0.
                    else float_of_int words /. float_of_int segs)))
            sublayers;
          Buffer.add_string b
            (Printf.sprintf
               "%s\n  segments=%d   slice-copied Δ=%dB   gc heap=%dw   samples=%d (dropped %d)\n"
               (String.make 72 '-') segs
               (get s.Sim.Telemetry.det "slice.copied_bytes")
               (get s.Sim.Telemetry.nondet "gc.heap_words")
               (Sim.Telemetry.recorded tele)
               (Sim.Telemetry.dropped tele));
          print_string (Buffer.contents b);
          flush stdout;
          if delay > 0. then Unix.sleepf delay
    in
    let r =
      Sim.Workload.run ~spacing:0.005 ~until:900. ~step ~name:"top" ~engine
        ~telemetry:[ tele ] ~on_slice:render ~flows
        (Transport.Fabric.ops fabric)
    in
    Printf.printf "\n";
    Format.printf "%a@." Sim.Workload.pp_report r;
    if not (Sim.Workload.ok r) then exit 1
  in
  let flows = Arg.(value & opt int 200 & info [ "flows" ] ~doc:"Concurrent flows.") in
  let hosts = Arg.(value & opt int 8 & info [ "hosts" ] ~doc:"Hosts on the fabric.") in
  let bytes = Arg.(value & opt int 8_000 & info [ "bytes" ] ~doc:"Bytes per flow.") in
  let loss = Arg.(value & opt float 0.01 & info [ "loss" ] ~doc:"Segment loss probability.") in
  let seed = Arg.(value & opt int 67 & info [ "seed" ] ~doc:"Simulation seed.") in
  let step =
    Arg.(value & opt float 0.5 & info [ "step" ] ~doc:"Virtual seconds per refresh.")
  in
  let delay =
    Arg.(value & opt float 0.05
         & info [ "delay" ] ~doc:"Wall seconds per refresh (0 = as fast as possible).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live per-sublayer telemetry dashboard over the many-flow fabric.")
    Term.(const run $ flows $ hosts $ bytes $ loss $ seed $ step $ delay)

(* --- tunnel: recursive sublayering demo (E28) --- *)

let tunnel_cmd =
  let run loss bytes flows seed plain verify =
    let open Transport in
    let channel = { (Sim.Channel.lossy loss) with Sim.Channel.delay = 0.02 } in
    (* Flat reference: one stack straight over the channel. *)
    let flat () =
      let engine = Sim.Engine.create ~seed () in
      let a, b = Host.pair engine channel in
      Host.listen b ~port:80;
      let srv = ref None in
      Host.on_accept b (fun c -> srv := Some c);
      let c = Host.connect a ~remote_port:80 () in
      let data = random_data seed bytes in
      Host.write c data;
      Host.close c;
      let rec drive () =
        if Sim.Engine.now engine < 600. && not (Host.finished c) then begin
          Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
          drive ()
        end
      in
      drive ();
      let vtime = Float.max 0.001 (Sim.Engine.now engine) in
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
      let ok = match !srv with Some s -> Host.received s = data | None -> false in
      (ok, vtime)
    in
    (* The Ouroboros: an outer connection over the same channel, wrapped
       in a Tunnel; [flows] inner connections run over that link. *)
    let tunneled () =
      let engine = Sim.Engine.create ~seed () in
      let stats = Sublayer.Stats.create ~label:"tunnel" () in
      let monitors = Monitor.Runtime.create ~label:"tunnel" () in
      let factory =
        if plain then Host.sublayered
        else Tcp_secure.factory ~key:Tcp_secure.demo_key
      in
      let oa, ob, _, _ =
        Host.pair_channels engine ~factory_a:factory ~factory_b:factory
          ~stats_a:stats ~stats_b:stats ~monitors channel
      in
      Host.listen ob ~port:443;
      let osrv = ref None in
      Host.on_accept ob (fun c -> osrv := Some c);
      let ocli = Host.connect oa ~remote_port:443 () in
      let rec wait_accept () =
        if !osrv = None && Sim.Engine.now engine < 60. then begin
          Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
          wait_accept ()
        end
      in
      wait_accept ();
      let srv_conn =
        match !osrv with
        | Some c -> c
        | None ->
            Printf.eprintf "sublayer-lab tunnel: outer connection not accepted\n";
            exit 1
      in
      let tun_a = Tunnel.create ~id:"tun-a" ocli in
      let tun_b = Tunnel.create ~id:"tun-b" srv_conn in
      let ins = Sublayer.Instrument.v ~stats ~monitors ~level:1 () in
      let ia = Host.create engine ~ins ~name:"iA" ~link:(Tunnel.link tun_a) () in
      let ib = Host.create engine ~ins ~name:"iB" ~link:(Tunnel.link tun_b) () in
      Host.listen ib ~port:80;
      let servers = ref [] in
      Host.on_accept ib (fun c -> servers := c :: !servers);
      let data = List.init flows (fun i -> random_data (seed + i) bytes) in
      let conns =
        List.map
          (fun d ->
            let c = Host.connect ia ~remote_port:80 () in
            Host.write c d;
            Host.close c;
            c)
          data
      in
      let rec drive () =
        if Sim.Engine.now engine < 600. && not (List.for_all Host.finished conns)
        then begin
          Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.1) engine;
          drive ()
        end
      in
      drive ();
      let vtime = Float.max 0.001 (Sim.Engine.now engine) in
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 30.) engine;
      let exact =
        List.for_all2
          (fun c d ->
            match
              List.find_opt
                (fun srv -> Host.remote_port srv = Host.local_port c)
                !servers
            with
            | Some srv -> Host.received srv = d
            | None -> false)
          conns data
      in
      (exact, vtime, stats, monitors, Tunnel.frames_out tun_a, Tunnel.frames_in tun_b)
    in
    let flat_ok, flat_t = flat () in
    let exact, tun_t, stats, monitors, fout, fin = tunneled () in
    Printf.printf
      "flat:   %d bytes over %.0f%% loss: exact=%b in %.2fs (%.0f KB/s)\n"
      bytes (100. *. loss) flat_ok flat_t
      (Float.of_int bytes /. flat_t /. 1024.);
    Printf.printf
      "tunnel: %d flow(s) x %d bytes over a %s outer connection on the same \
       channel:\n        exact=%b in %.2fs (%.0f KB/s aggregate), %d records \
       out / %d in\n"
      flows bytes
      (if plain then "sublayered" else "Rec-secured")
      exact tun_t
      (Float.of_int (flows * bytes) /. tun_t /. 1024.)
      fout fin;
    if not (flat_ok && exact) then exit 1;
    if verify then begin
      (* T1-T3 conformance at both recursion levels: every crossing was
         monitor-checked and none violated; the one registry holds both
         levels' sublayer scopes under distinct level tags. *)
      List.iter
        (fun v ->
          Printf.eprintf "conformance violation: %s\n" v;
          exit 1)
        (Monitor.Runtime.violations monitors);
      if Monitor.Runtime.checked monitors = 0 then begin
        Printf.eprintf "verify: no interface crossings checked\n";
        exit 1
      end;
      let scope_names =
        List.map Sublayer.Stats.scope_name (Sublayer.Stats.scopes stats)
      in
      let need = [ "rd"; "l1:rd"; "cc"; "l1:cc" ] in
      List.iter
        (fun s ->
          if not (List.mem s scope_names) then begin
            Printf.eprintf "verify: scope %S missing from the shared registry\n" s;
            exit 1
          end)
        need;
      Printf.printf
        "verify: %d crossings checked at both levels, 0 violations; per-level \
         scopes present (%s)\n"
        (Monitor.Runtime.checked monitors)
        (String.concat ", " need)
    end
  in
  let loss = Arg.(value & opt float 0.02 & info [ "loss" ] ~doc:"Channel loss probability.") in
  let bytes = Arg.(value & opt int 50_000 & info [ "bytes" ] ~doc:"Bytes per inner flow.") in
  let flows = Arg.(value & opt int 2 & info [ "flows" ] ~doc:"Concurrent inner connections.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Simulation seed.") in
  let plain =
    Arg.(value & flag
         & info [ "plain" ] ~doc:"Plain sublayered outer instead of Rec-secured.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Check T1-T3 conformance monitors and per-level scopes; \
                   nonzero exit on any violation.")
  in
  Cmd.v
    (Cmd.info "tunnel"
       ~doc:"Recursive sublayering (E28): inner stacks over a tunneled outer \
             connection, vs the flat stack.")
    Term.(const run $ loss $ bytes $ flows $ seed $ plain $ verify)

let () =
  let doc = "sublayered-protocols laboratory (HotNets '24 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "sublayer-lab" ~doc)
                    [ tcp_cmd; route_cmd; stuffing_cmd; search_cmd; mcheck_cmd;
                      stats_cmd; trace_cmd; scale_cmd; shard_cmd; top_cmd;
                      tunnel_cmd ]))
