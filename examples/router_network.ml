(* A 12-router network built from the three network sublayers of
   Figure 4 (hello / route computation / forwarding), with a link
   failure mid-run. Swap [routing] between distance-vector and
   link-state to see that nothing else changes.

     dune exec examples/router_network.exe
     dune exec examples/router_network.exe -- ls
*)

let () =
  let routing =
    match Array.to_list Sys.argv with
    | _ :: "ls" :: _ -> Network.Link_state.factory ()
    | _ -> Network.Distance_vector.factory ()
  in
  Printf.printf "routing protocol: %s\n" routing.Network.Routing.protocol;

  let engine = Sim.Engine.create ~seed:11 () in
  let n = 12 in
  let edges = Network.Topology.random ~n ~extra:6 ~seed:4 in
  Printf.printf "topology: %d nodes, edges:" n;
  List.iter (fun (a, b) -> Printf.printf " %d-%d" a b) edges;
  print_newline ();

  let net = Network.Topology.build engine ~routing ~n edges in
  (match Network.Topology.converge net with
  | Some t -> Printf.printf "converged at t=%.1fs\n" t
  | None -> failwith "did not converge");

  let show_path src dst =
    match Network.Topology.fib_path net ~src ~dst with
    | Some path ->
        Printf.printf "  path %d -> %d: %s\n" src dst
          (String.concat " -> " (List.map string_of_int path))
    | None -> Printf.printf "  path %d -> %d: unreachable\n" src dst
  in
  show_path 0 (n - 1);

  (* Send a packet along it. *)
  Network.Topology.send net ~src:0 ~dst:(n - 1) "hello across the network";
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 2.) engine;
  List.iter
    (fun p -> Printf.printf "  node %d delivered: %S (ttl %d left)\n" (n - 1)
        (Bitkit.Slice.to_string p.Network.Packet.payload) p.Network.Packet.ttl)
    (Network.Topology.received net (n - 1));

  (* Break the first link on that path and watch the control plane heal. *)
  (match Network.Topology.fib_path net ~src:0 ~dst:(n - 1) with
  | Some (a :: b :: _) ->
      Printf.printf "failing link %d-%d ...\n" a b;
      Network.Topology.fail_link net a b;
      (match Network.Topology.converge net with
      | Some t -> Printf.printf "reconverged at t=%.1fs\n" t
      | None -> Printf.printf "no reconvergence!\n");
      show_path 0 (n - 1)
  | _ -> ());

  Network.Topology.clear_received net;
  Network.Topology.send net ~src:0 ~dst:(n - 1) "hello again, the long way";
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 2.) engine;
  List.iter
    (fun p ->
      Printf.printf "  node %d delivered: %S\n" (n - 1)
        (Bitkit.Slice.to_string p.Network.Packet.payload))
    (Network.Topology.received net (n - 1));
  Network.Topology.stop net
