(* The whole reproduction in one scenario: a sublayered TCP connection
   (Figure 5) riding a routed network built from the Figure 4 sublayers,
   with a link failure in the middle of the transfer. The control plane
   reroutes; RD retransmits what the failure ate; the byte stream arrives
   exactly.

     dune exec examples/full_stack.exe
     dune exec examples/full_stack.exe -- ls     (link-state routing)
*)

let () =
  let routing =
    match Array.to_list Sys.argv with
    | _ :: "ls" :: _ -> Network.Link_state.factory ()
    | _ -> Network.Distance_vector.factory ()
  in
  let engine = Sim.Engine.create ~seed:8 () in
  let n = 8 in
  let edges = Network.Topology.ring 8 in
  let net = Network.Topology.build engine ~routing ~n edges in
  (match Network.Topology.converge net with
  | Some t -> Printf.printf "network converged (%s) at t=%.1fs\n"
                routing.Network.Routing.protocol t
  | None -> failwith "no convergence");

  (* Attach transport hosts at nodes 0 and 4: TCP segments become packet
     payloads; the routers forward them hop by hop. *)
  let client_node = 0 and server_node = 4 in
  let client_host = ref None and server_host = ref None in
  let transmit_from node dst wire =
    Network.Router.originate (Network.Topology.router net node)
      ~dst:(Network.Addr.node dst) wire
  in
  let ch = Transport.Host.create engine ~name:"client"
      ~link:(Sublayer.Link.make
               ~transmit:(fun w -> transmit_from client_node server_node w) ()) () in
  let sh = Transport.Host.create engine ~name:"server"
      ~link:(Sublayer.Link.make
               ~transmit:(fun w -> transmit_from server_node client_node w) ()) () in
  client_host := Some ch;
  server_host := Some sh;
  (* Drain packets delivered at each node into the hosts. *)
  let pump () =
    List.iter
      (fun p -> Transport.Host.from_wire ch p.Network.Packet.payload)
      (Network.Topology.received net client_node);
    List.iter
      (fun p -> Transport.Host.from_wire sh p.Network.Packet.payload)
      (Network.Topology.received net server_node);
    Network.Topology.clear_received net
  in
  (* Poll the node inboxes every millisecond of virtual time. *)
  let rec pump_loop () =
    pump ();
    ignore (Sim.Engine.schedule engine ~after:0.001 pump_loop)
  in
  pump_loop ();

  Transport.Host.listen sh ~port:80;
  let server_conn = ref None in
  Transport.Host.on_accept sh (fun c -> server_conn := Some c);
  let conn = Transport.Host.connect ch ~remote_port:80 () in
  let rng = Bitkit.Rng.create 5 in
  let data = String.init 200_000 (fun _ -> Char.chr (Bitkit.Rng.int rng 256)) in
  Transport.Host.write conn data;
  Transport.Host.close conn;

  (* Let the transfer get going, then cut the link it is using. *)
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.05) engine;
  (match Network.Topology.fib_path net ~src:client_node ~dst:server_node with
  | Some (a :: b :: _ as path) ->
      Printf.printf "transfer running along %s\n"
        (String.concat " -> " (List.map string_of_int path));
      Printf.printf "FAILING link %d-%d mid-transfer...\n" a b;
      Network.Topology.fail_link net a b
  | _ -> ());
  (match Network.Topology.converge net with
  | Some t -> Printf.printf "rerouted at t=%.1fs\n" t
  | None -> Printf.printf "no reconvergence\n");
  (match Network.Topology.fib_path net ~src:client_node ~dst:server_node with
  | Some path ->
      Printf.printf "new path: %s\n" (String.concat " -> " (List.map string_of_int path))
  | None -> ());

  let rec drive () =
    if Sim.Engine.now engine < 120. && not (Transport.Host.finished conn) then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 0.5) engine;
      drive ()
    end
  in
  drive ();
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 5.) engine;
  match !server_conn with
  | Some srv when Transport.Host.received srv = data ->
      Printf.printf
        "SUCCESS: 200 KB delivered exactly across the failure at t=%.2fs virtual\n"
        (Sim.Engine.now engine)
  | Some srv ->
      Printf.printf "MISMATCH: server got %d bytes\n" (Transport.Host.received_length srv)
  | None -> Printf.printf "NO CONNECTION\n"
