(* Quickstart: a client and a server talking sublayered TCP (Figure 5's
   OSR/RD/CM/DM stack) across a lossy simulated link.

     dune exec examples/quickstart.exe
*)

let () =
  (* Everything runs on a deterministic discrete-event engine. *)
  let engine = Sim.Engine.create ~seed:2024 () in

  (* Two hosts joined by a duplex channel that loses 5% of segments. *)
  let client_host, server_host =
    Transport.Host.pair engine (Sim.Channel.lossy 0.05)
  in

  (* The server listens; the callback fires when a handshake completes. *)
  Transport.Host.listen server_host ~port:80;
  Transport.Host.on_accept server_host (fun conn ->
      Printf.printf "[server] accepted connection from port %d\n"
        (Transport.Host.remote_port conn);
      Transport.Host.on_data conn (fun chunk ->
          Printf.printf "[server] received %S\n" chunk;
          Transport.Host.write conn "pong";
          Transport.Host.close conn));

  (* The client connects (CM's three-way handshake with hashed ISNs),
     writes (OSR segments, RD delivers reliably), and closes (CM's FIN
     choreography). *)
  let conn = Transport.Host.connect client_host ~remote_port:80 () in
  Transport.Host.on_event conn (fun event ->
      match event with
      | `Established -> Printf.printf "[client] established\n"
      | `Data reply ->
          Printf.printf "[client] got reply %S\n" (Bitkit.Slice.to_string reply)
      | `Peer_closed -> Printf.printf "[client] server finished sending\n"
      | `Closed -> Printf.printf "[client] closed\n"
      | `Reset -> Printf.printf "[client] connection reset!\n"
      | `Aborted -> Printf.printf "[client] connection aborted (timed out)\n");
  Transport.Host.write conn "ping";

  (* Run the virtual world. *)
  Sim.Engine.run ~until:30.0 engine;
  Printf.printf "simulation ended at t=%.3fs (virtual)\n" (Sim.Engine.now engine)
