(* Interop (paper §3.1): a sublayered endpoint behind the shim speaks
   the standard RFC 793 wire format and converses with the monolithic
   lwIP-style stack. The example prints the first few wire segments so
   you can see genuine 20-byte TCP headers flowing.

     dune exec examples/interop.exe
*)

let describe wire =
  match Transport.Wire.decode_slice wire with
  | Some (h, payload) ->
      Printf.sprintf "%s + %d bytes payload"
        (Format.asprintf "%a" Transport.Wire.pp h)
        (Bitkit.Slice.length payload)
  | None ->
      Printf.sprintf "<undecodable %d bytes>" (Bitkit.Slice.length wire)

let () =
  let engine = Sim.Engine.create ~seed:31 () in
  let shown = ref 0 in
  let spy dir wire =
    if !shown < 12 then begin
      incr shown;
      Printf.printf "  %s %s\n" dir (describe wire)
    end
  in
  (* Wire the two hosts manually so we can put a spy on the channel. *)
  let to_client = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let to_server = ref (fun (_ : Bitkit.Slice.t) -> ()) in
  let mk dir target =
    Sim.Channel.create engine (Sim.Channel.lossy 0.01) ~size:Bitkit.Slice.length
      ~deliver:(fun s ->
        spy dir s;
        !target s)
      ()
  in
  let c2s = mk "c->s" to_server in
  let s2c = mk "s<-c" to_client in
  (* Client: sublayered TCP behind the shim. Server: monolithic. *)
  let client_host =
    Transport.Host.create engine ~factory:Transport.Shim.factory ~name:"client"
      ~link:(Sublayer.Link.make ~transmit:(fun s -> Sim.Channel.send c2s s) ())
      ()
  in
  let server_host =
    Transport.Host.create engine ~factory:Transport.Tcp_monolithic.factory ~name:"server"
      ~link:(Sublayer.Link.make ~transmit:(fun s -> Sim.Channel.send s2c s) ())
      ()
  in
  to_client := Transport.Host.from_wire client_host;
  to_server := Transport.Host.from_wire server_host;

  Transport.Host.listen server_host ~port:80;
  let server_conn = ref None in
  Transport.Host.on_accept server_host (fun c -> server_conn := Some c);

  let conn = Transport.Host.connect client_host ~remote_port:80 () in
  let request = "GET /sublayering HTTP/1.0\r\n\r\n" in
  Transport.Host.write conn request;
  Transport.Host.close conn;
  Printf.printf "wire traffic (standard TCP headers on both sides):\n";
  Sim.Engine.run ~until:60. engine;

  match !server_conn with
  | Some srv when Transport.Host.received srv = request ->
      Printf.printf "\nmonolithic server received the request intact (%d bytes)\n"
        (String.length request);
      Printf.printf "sublayered-behind-shim and monolithic TCP interoperate.\n"
  | Some srv ->
      Printf.printf "\nMISMATCH: server got %d bytes\n" (Transport.Host.received_length srv)
  | None -> Printf.printf "\nNO CONNECTION\n"
