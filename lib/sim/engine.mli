(** Deterministic discrete-event simulation engine.

    All protocol experiments in this repository run on this engine: time is
    virtual, events fire in (time, insertion-order) order, and all
    randomness comes from the engine's seeded {!Bitkit.Rng}, so every run is
    exactly reproducible. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

type backend = [ `Heap | `Wheel ]
(** Event-queue implementation: the hierarchical timing wheel (default —
    O(1) schedule/cancel near the horizon) or the original binary heap,
    kept as the reference the equivalence property test runs against.
    Both fire the exact same (time, insertion-seq) stream. *)

val create : ?seed:int -> ?backend:backend -> unit -> t
(** [create ~seed ()] makes an engine with virtual time 0.
    [backend] defaults to [`Wheel]. *)

val backend : t -> backend

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Bitkit.Rng.t
(** The engine's random stream. *)

val schedule : t -> after:float -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] at time [now t +. after].
    [after] must be non-negative. Ties fire in insertion order. *)

val at : t -> time:float -> (unit -> unit) -> handle
(** [at t ~time f] schedules at an absolute virtual time (>= now). *)

val cancel : handle -> unit
(** Cancel a scheduled event; cancelling twice (or after it fired) is a
    no-op. *)

val cancelled : handle -> bool

val next_time : t -> float option
(** Timestamp of the earliest live event, left queued ([None] when the
    queue is empty). The shard round protocol uses this to compute the
    global safe window. *)

val step : t -> bool
(** Fire the next event. Returns [false] if the queue was empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue, stopping early when virtual time would exceed
    [until] or after [max_events] events. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events, from the O(1) live
    counter — cheap enough to sample every soak slice. *)

val pending_scan : t -> int
(** The same count by scanning the whole queue, O(total). Kept as the
    audit the property tests cross-check the cancellation accounting
    against after randomized cancel storms. *)

val live : t -> int
(** Alias view of the O(1) counter (= {!pending}). *)

val compactions : t -> int
(** How many times the queue compacted away cancelled entries. *)

val events_fired : t -> int
(** Total events executed so far (a cheap work measure). *)

val after_event : t -> (unit -> unit) -> unit
(** Register a hook to run after each fired event's closure returns —
    the quiescent point at which no action cascade is mid-apply, where
    buffer pools drain deferred slot releases. Hooks must not schedule
    events or draw randomness; they are bookkeeping only, so a run with
    hooks fires the identical (time, seq) stream as one without. *)
