(** Bounded, indexed structured event log.

    Replaces the old unbounded string list behind {!Trace}: events live
    in a fixed-capacity ring buffer (oldest entries are evicted, a
    counter remembers how many), and an index keyed by [(actor, kind)]
    keeps running totals so prefix-count queries — what [Soak] and the
    tests hammer once per slice — are proportional to the number of
    *distinct* event kinds, not the number of events.

    An event is [kind] (a stable, low-cardinality label: ["send"],
    ["fast retransmit offset="], ...) plus an optional free-form
    [detail] carrying the variable part.  Only [kind] is indexed, so the
    index stays bounded no matter how chatty the run is. *)

type event = { at : float; actor : string; kind : string; detail : string }

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 4096 retained events. *)

val capacity : t -> int

val emit : t -> at:float -> actor:string -> ?detail:string -> string -> unit
(** [emit t ~at ~actor kind] appends an event; evicts the oldest entry
    when the ring is full. *)

val length : t -> int
(** Events currently retained (≤ capacity). *)

val recorded : t -> int
(** Total events ever emitted (monotonic, survives eviction). *)

val dropped : t -> int
(** Events evicted from the ring ([recorded - length]). *)

val to_list : t -> event list
(** Retained window, oldest first. *)

val count : t -> ?actor:string -> prefix:string -> unit -> int
(** All-time count of events whose [kind] starts with [prefix],
    optionally restricted to one actor.  O(distinct kinds), counts
    evicted events too. *)

val clear : t -> unit
(** Forget everything, index included; [recorded]/[dropped] reset. *)

val pp : Format.formatter -> t -> unit
(** One line per retained event; no per-line flush. *)
