(** Many-flow scale workloads.

    Staggers [flows] launches over virtual time and drives the engine (via
    {!Soak}) until every flow reports finished, then checks each for exact
    delivery. The flows themselves live behind the {!ops} closures, so the
    harness is independent of which stack carries them —
    [Transport.Fabric] provides the N-host TCP fabric used by E21. *)

type ops = {
  launch : int -> unit;          (** start flow [i] (connect/write/close) *)
  flow_finished : int -> bool;   (** flow [i] fully delivered and acked;
                                     must be stable once true *)
  flow_exact : int -> bool;      (** flow [i]'s bytes arrived exactly *)
}

type report = {
  wname : string;
  flows : int;
  launched : int;   (** launch events that actually fired *)
  exact : int;      (** flows whose delivery was byte-exact *)
  live_hwm : int;   (** high-water mark of live engine timers, from the
                        per-slice samples *)
  soak : Soak.report;
}

val ok : report -> bool
(** Soak finished clean and every flow launched and delivered exactly. *)

val pp_report : Format.formatter -> report -> unit

val run :
  ?spacing:float ->
  ?step:float ->
  ?until:float ->
  ?invariant:(unit -> string option) ->
  ?tracer:Tracer.t ->
  ?verdicts:(unit -> (string * int * int) list) ->
  ?events:Events.t ->
  ?telemetry:Telemetry.t list ->
  ?on_slice:(float -> unit) ->
  ?drops:(unit -> (string * int) list) ->
  name:string ->
  engine:Engine.t ->
  flows:int ->
  ops ->
  report
(** [run ~name ~engine ~flows ops] schedules [ops.launch i] at
    [now + i * spacing] (default 10 ms apart) and soaks in [step]-sized
    slices (default 0.5) until every flow is finished or virtual time
    [until] (default 600). The report embeds the {!Soak.report}, whose
    per-slice samples record the engine's live-timer count.
    [events] / [telemetry] / [on_slice] / [drops] pass through to the
    soak: telemetry ticks at every slice boundary and ring drop counts
    land in [soak.drops]. *)

val run_sharded :
  ?spacing:float ->
  ?step:float ->
  ?until:float ->
  ?invariant:(unit -> string option) ->
  ?tracer:Tracer.t ->
  ?verdicts:(unit -> (string * int * int) list) ->
  ?events:Events.t ->
  ?telemetry:Telemetry.t list ->
  ?on_slice:(float -> unit) ->
  ?drops:(unit -> (string * int) list) ->
  name:string ->
  shard:Shard.t ->
  launch_site:(int -> int) ->
  flows:int ->
  ops ->
  report
(** {!run} over a {!Shard} group: flow [i]'s launch event is scheduled
    on shard [launch_site i] (the shard owning its client host —
    [Transport.Fabric.create_sharded] exposes the placement), and each
    soak slice advances all shards through the safe-window protocol.
    The ["live"] sample is the group-wide total, so a [shards = 1]
    report is structurally identical to a multi-shard one — the
    bit-identity the scale tests compare. Pass every per-shard telemetry
    instance in [telemetry]; ticks happen between slices, when the shard
    domains are parked at the window barrier, so the reads are
    race-free. *)
