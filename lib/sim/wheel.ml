(* Hierarchical timing wheel: the engine's default event queue.

   RTO, delayed-ack and ARQ timers are overwhelmingly scheduled and then
   cancelled before they fire; a binary heap pays O(log n) to admit every
   one of them and scans dead entries on the way out. The wheel admits a
   near-horizon timer in O(1): two levels of [slots] buckets of [tick]
   seconds each (L0 covers one window of [slots] ticks, L1 one window of
   [slots] windows), a small "front" heap holding the already-reached
   ticks in exact order, and an overflow heap for timers beyond L1's
   horizon (with the default 1 ms tick and 1024 slots: ~1 s and ~17 min).

   Ordering argument: the tick of an event, trunc(time / tick), is
   monotone in its time, so bucketing by tick can never invert the order
   of events in different ticks — float rounding can only place a
   boundary event one tick late, which delays when its bucket drains but
   not its position relative to other events. Within a tick (and in the
   overflow), the (time, insertion-seq) heaps restore the engine's exact
   firing order, so the wheel is observationally identical to the
   reference heap.

   Cancellation is lazy, exactly as in the heap backend: a dead event
   stays where it is, counted by the shared [dead_in_heap] ref, until it
   is swept out by a drain, a purge or a [compact]. *)

type event = {
  time : float;
  seq : int;
  mutable fn : unit -> unit;
  mutable dead : bool;
  (* Shared with the owning engine so [Engine.cancel] (which only sees
     the handle) can keep the accounting straight. *)
  live : int ref;
  dead_in_heap : int ref;
}

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let dummy =
  { time = 0.; seq = -1; fn = ignore; dead = true; live = ref 0;
    dead_in_heap = ref 0 }

(* A plain binary min-heap on (time, seq): the front and overflow queues,
   and the engine's reference backend. *)
module Eheap = struct
  type t = { mutable arr : event array; mutable size : int }

  let create ?(capacity = 16) () = { arr = Array.make capacity dummy; size = 0 }
  let size h = h.size

  let swap h i j =
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if earlier h.arr.(i) h.arr.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && earlier h.arr.(l) h.arr.(!smallest) then smallest := l;
    if r < h.size && earlier h.arr.(r) h.arr.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h ev =
    if h.size = Array.length h.arr then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.arr 0 bigger 0 h.size;
      h.arr <- bigger
    end;
    h.arr.(h.size) <- ev;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let peek h = if h.size = 0 then None else Some h.arr.(0)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.arr.(0) in
      h.size <- h.size - 1;
      h.arr.(0) <- h.arr.(h.size);
      h.arr.(h.size) <- dummy;
      if h.size > 0 then sift_down h 0;
      Some top
    end

  let iter h f =
    for i = 0 to h.size - 1 do
      f h.arr.(i)
    done

  (* Drop dead entries in place and re-establish the heap property. *)
  let compact h ~on_drop =
    let kept = ref 0 in
    for i = 0 to h.size - 1 do
      if h.arr.(i).dead then on_drop h.arr.(i)
      else begin
        h.arr.(!kept) <- h.arr.(i);
        incr kept
      end
    done;
    for i = !kept to h.size - 1 do
      h.arr.(i) <- dummy
    done;
    h.size <- !kept;
    for i = (h.size / 2) - 1 downto 0 do
      sift_down h i
    done
end

type t = {
  tick : float;
  n : int;                    (* slots per level *)
  l0 : event list array;      (* ticks of the current window *)
  l1 : event list array;      (* one bucket per window, the next [n - 1] *)
  mutable l0_count : int;     (* entries (dead included) in l0 / l1 *)
  mutable l1_count : int;
  front : Eheap.t;            (* reached ticks, exact (time, seq) order *)
  overflow : Eheap.t;         (* beyond the L1 horizon *)
  mutable w0 : int;           (* current window number *)
  mutable cur : int;          (* highest tick drained into [front] *)
  mutable total : int;        (* entries (dead included) everywhere *)
  mutable compactions : int;
}

let create ?(tick = 1e-3) ?(slots = 1024) () =
  if tick <= 0. then invalid_arg "Wheel.create: tick must be positive";
  if slots < 2 then invalid_arg "Wheel.create: need at least two slots";
  { tick; n = slots; l0 = Array.make slots []; l1 = Array.make slots [];
    l0_count = 0; l1_count = 0; front = Eheap.create ();
    overflow = Eheap.create (); w0 = 0; cur = -1; total = 0; compactions = 0 }

(* Absolute tick of a virtual time. Monotone in [time] (see the header
   comment). Times past ~1e12 virtual seconds pin to [max_int] so the
   window arithmetic below never overflows; such events live in the
   overflow heap and are served straight from it once everything nearer
   has fired. *)
let tick_of t time =
  let q = time /. t.tick in
  if q >= 1e15 then max_int else int_of_float q

let total t = t.total
let compactions t = t.compactions

let drop_dead t ev =
  t.total <- t.total - 1;
  decr ev.dead_in_heap

let add t ev =
  t.total <- t.total + 1;
  let k = tick_of t ev.time in
  if k <= t.cur then Eheap.push t.front ev
  else begin
    let w = k / t.n in
    if w = t.w0 then begin
      let s = k mod t.n in
      t.l0.(s) <- ev :: t.l0.(s);
      t.l0_count <- t.l0_count + 1
    end
    else if w - t.w0 < t.n then begin
      let s = w mod t.n in
      t.l1.(s) <- ev :: t.l1.(s);
      t.l1_count <- t.l1_count + 1
    end
    else Eheap.push t.overflow ev
  end

(* Move every event of the l0 slot holding tick [cur] into the front
   heap; dead entries are swept out here instead. *)
let drain_l0 t s =
  let evs = t.l0.(s) in
  t.l0.(s) <- [];
  List.iter
    (fun ev ->
      t.l0_count <- t.l0_count - 1;
      if ev.dead then drop_dead t ev else Eheap.push t.front ev)
    evs

(* Entering window [w]: spread its l1 bucket over the l0 tick slots. *)
let cascade t w =
  let s = w mod t.n in
  let evs = t.l1.(s) in
  t.l1.(s) <- [];
  List.iter
    (fun ev ->
      t.l1_count <- t.l1_count - 1;
      if ev.dead then drop_dead t ev
      else begin
        let k = tick_of t ev.time in
        t.l0.(k mod t.n) <- ev :: t.l0.(k mod t.n);
        t.l0_count <- t.l0_count + 1
      end)
    evs

let rec overflow_top t =
  match Eheap.peek t.overflow with
  | Some ev when ev.dead ->
      ignore (Eheap.pop t.overflow);
      drop_dead t ev;
      overflow_top t
  | other -> other

let rec purge_front t =
  match Eheap.peek t.front with
  | Some ev when ev.dead ->
      ignore (Eheap.pop t.front);
      drop_dead t ev;
      purge_front t
  | _ -> ()

(* Jump the cursor to the start of window [w] (which must be ahead of
   [w0]): pull newly-near overflow entries into the wheels, then cascade
   the window's l1 bucket. *)
let enter_window t w =
  t.w0 <- w;
  t.cur <- (w * t.n) - 1;
  let continue = ref true in
  while !continue do
    match overflow_top t with
    | Some top when tick_of t top.time / t.n - w < t.n ->
        ignore (Eheap.pop t.overflow);
        t.total <- t.total - 1;
        (* [add] re-counts it and routes it to l0 or l1. *)
        add t top
    | _ -> continue := false
  done;
  cascade t w

(* Advance the cursor until the front heap holds a live event, the
   horizon tick is passed, or the queue is exhausted. The cursor never
   moves past [htick], so a bounded [run ~until] cannot leave the wheel
   degenerated for events scheduled after it returns. *)
let advance t htick =
  let continue = ref true in
  while !continue do
    purge_front t;
    if Eheap.size t.front > 0 || t.cur >= htick then continue := false
    else if t.l0_count > 0 then begin
      let wend = (t.w0 + 1) * t.n in
      let stop = min (wend - 1) htick in
      let k = ref (t.cur + 1) and found = ref false in
      while (not !found) && !k <= stop do
        if t.l0.(!k mod t.n) <> [] then found := true else incr k
      done;
      if !found then begin
        t.cur <- !k;
        drain_l0 t (!k mod t.n)
      end
      else begin
        (* l0 only holds ticks of the current window, so an empty scan
           means the horizon cut it short. *)
        assert (stop = htick);
        t.cur <- htick
      end
    end
    else if t.l1_count > 0 then begin
      let d = ref 1 in
      while !d < t.n && t.l1.((t.w0 + !d) mod t.n) = [] do incr d done;
      let w = t.w0 + !d in
      if !d >= t.n || w * t.n > htick then continue := false
      else enter_window t w
    end
    else begin
      match overflow_top t with
      | Some top ->
          let k = tick_of t top.time in
          if k > htick || k = max_int then continue := false
          else enter_window t (k / t.n)
      | None -> continue := false
    end
  done

(* The earliest event whose tick is within [horizon]'s tick (it may still
   have [time > horizon]: same tick, later in the slot — the engine
   compares times). [None] means no event at or before that tick. When
   the wheels are empty the overflow top is the global minimum and is
   served in place, covering the beyond-arithmetic-range tail. *)
let peek t ~horizon =
  advance t (tick_of t horizon);
  match Eheap.peek t.front with
  | Some _ as r -> r
  | None -> if t.l0_count = 0 && t.l1_count = 0 then overflow_top t else None

(* Remove the event the last [peek] returned. *)
let pop t =
  purge_front t;
  match Eheap.pop t.front with
  | Some ev ->
      t.total <- t.total - 1;
      Some ev
  | None -> (
      match overflow_top t with
      | Some _ ->
          let ev = Eheap.pop t.overflow in
          t.total <- t.total - 1;
          ev
      | None -> None)

let iter t f =
  Eheap.iter t.front f;
  Array.iter (fun l -> List.iter f l) t.l0;
  Array.iter (fun l -> List.iter f l) t.l1;
  Eheap.iter t.overflow f

(* Sweep dead entries out of every structure (the >50%-dead trigger lives
   in the engine, shared with the heap backend). *)
let compact t =
  let drop ev = drop_dead t ev in
  let sweep arr =
    let kept_total = ref 0 in
    for i = 0 to Array.length arr - 1 do
      let kept =
        List.filter
          (fun ev -> if ev.dead then (drop ev; false) else true)
          arr.(i)
      in
      arr.(i) <- kept;
      kept_total := !kept_total + List.length kept
    done;
    !kept_total
  in
  t.l0_count <- sweep t.l0;
  t.l1_count <- sweep t.l1;
  Eheap.compact t.front ~on_drop:drop;
  Eheap.compact t.overflow ~on_drop:drop;
  t.compactions <- t.compactions + 1
