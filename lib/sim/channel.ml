type gilbert_elliott = {
  p_good_to_bad : float;
  p_bad_to_good : float;
  loss_good : float;
  loss_bad : float;
}

type config = {
  delay : float;
  jitter : float;
  loss : float;
  duplication : float;
  corruption : float;
  reorder : float;
  reorder_extra : float;
  bandwidth : float option;
  marking : float;
  burst : gilbert_elliott option;
}

let ideal =
  { delay = 0.001; jitter = 0.; loss = 0.; duplication = 0.; corruption = 0.;
    reorder = 0.; reorder_extra = 0.; bandwidth = None; marking = 0.;
    burst = None }

let lossy p = { ideal with loss = p }

(* Stationary loss of the two-state chain is
   p_gb / (p_gb + p_bg) * loss_bad (+ the good-state term, zero here), so
   matching an i.i.d. rate [loss] at mean burst length [burst_len] pins
   both transition probabilities. *)
let burst_lossy ~loss ~burst_len =
  if loss <= 0. || loss >= 1. then invalid_arg "Channel.burst_lossy: loss in (0,1)";
  if burst_len < 1. then invalid_arg "Channel.burst_lossy: burst_len >= 1";
  let p_bad_to_good = 1. /. burst_len in
  let p_good_to_bad = loss *. p_bad_to_good /. (1. -. loss) in
  { ideal with
    burst = Some { p_good_to_bad; p_bad_to_good; loss_good = 0.; loss_bad = 1. } }

let harsh =
  { ideal with loss = 0.05; duplication = 0.02; reorder = 0.05; reorder_extra = 0.01 }

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable bytes_sent : int;
}

type 'a t = {
  engine : Engine.t;
  mutable cfg : config;
  size : 'a -> int;
  corrupt : Bitkit.Rng.t -> 'a -> 'a;
  mark : 'a -> 'a;
  deliver : 'a -> unit;
  stats : stats;
  tracer : Tracer.t option;
  label : string;
  crng : Bitkit.Rng.t option;
  (* Delivery scheduler: [None] schedules on [engine]; a sharded fabric
     substitutes a closure posting to the destination shard's conduit.
     The delivery thunk (including the [delivered] bump, which therefore
     mutates only destination-side state) runs wherever the closure puts
     it. *)
  sched : (after:float -> (unit -> unit) -> unit) option;
  mutable busy_until : float;
  mutable burst_bad : bool;
}

let create engine cfg ?(size = fun _ -> 0) ?(corrupt = fun _ m -> m)
    ?(mark = fun m -> m) ?tracer ?(label = "channel") ?rng ?schedule ~deliver
    () =
  { engine; cfg; size; corrupt; mark; deliver;
    stats = { sent = 0; delivered = 0; dropped = 0; duplicated = 0;
              corrupted = 0; bytes_sent = 0 };
    tracer; label; crng = rng; sched = schedule; busy_until = 0.;
    burst_bad = false }

(* Every send consumes this stream (coins and jitter draws happen even
   under [ideal]), so a channel with its own seeded [?rng] makes its
   behaviour independent of what every other channel does with the
   engine's stream — the property that lets a sharded fabric, where
   channels run on different engines, replay the exact single-engine
   outcome. *)
let rng_of t = match t.crng with Some r -> r | None -> Engine.rng t.engine

let schedule_delivery t ~after fn =
  match t.sched with
  | None -> ignore (Engine.schedule t.engine ~after fn)
  | Some s -> s ~after fn

let stats t = t.stats
let set_config t cfg = t.cfg <- cfg
let config t = t.cfg

(* Per-transmission state step, then the current state's loss rate.
   Always composed with the i.i.d. [loss] (either can drop), so a fault
   plan overlaying [loss = 1.0] blacks out a bursty link too. *)
let burst_drops t rng =
  match t.cfg.burst with
  | None -> false
  | Some g ->
      t.burst_bad <-
        (if t.burst_bad then not (Bitkit.Rng.coin rng g.p_bad_to_good)
         else Bitkit.Rng.coin rng g.p_good_to_bad);
      Bitkit.Rng.coin rng (if t.burst_bad then g.loss_bad else g.loss_good)

let transmit_once ?loan t msg =
  let rng = rng_of t in
  let burst_drop = burst_drops t rng in
  if Bitkit.Rng.coin rng t.cfg.loss || burst_drop then
    t.stats.dropped <- t.stats.dropped + 1
  else begin
    (* [aliased]: the delivered value still views the caller's pool slot.
       Corruption and marking substitute fresh heap copies, after which
       the slot's lifetime no longer matters for this delivery. *)
    let original = msg in
    let msg =
      if Bitkit.Rng.coin rng t.cfg.corruption then begin
        t.stats.corrupted <- t.stats.corrupted + 1;
        t.corrupt rng msg
      end
      else msg
    in
    let msg = if Bitkit.Rng.coin rng t.cfg.marking then t.mark msg else msg in
    let aliased = msg == original in
    let serialisation =
      match t.cfg.bandwidth with
      | None -> 0.
      | Some rate ->
          (* Messages queue behind one another on the link. *)
          let tx_time = Float.of_int (t.size msg) /. rate in
          let start = Float.max (Engine.now t.engine) t.busy_until in
          t.busy_until <- start +. tx_time;
          t.busy_until -. Engine.now t.engine
    in
    let latency =
      t.cfg.delay
      +. (if t.cfg.jitter > 0. then Bitkit.Rng.float rng *. t.cfg.jitter else 0.)
      +. (if Bitkit.Rng.coin rng t.cfg.reorder then t.cfg.reorder_extra else 0.)
      +. serialisation
    in
    (* The link's own latency decomposition, recorded at send time with
       explicit timestamps so no extra engine events (and hence no
       determinism perturbation) are introduced: [channel.queue] covers
       serialisation plus the wait behind earlier messages, and
       [channel.prop] the propagation that follows. *)
    (match t.tracer with
    | Some tr when Tracer.enabled () ->
        let t0 = Engine.now t.engine in
        if serialisation > 0. then begin
          let id =
            Tracer.start tr ~at:t0 ~track:t.label ~sublayer:"channel"
              "channel.queue"
          in
          ignore (Tracer.finish tr ~at:(t0 +. serialisation) id)
        end;
        let id =
          Tracer.start tr ~at:(t0 +. serialisation) ~track:t.label
            ~sublayer:"channel" "channel.prop"
        in
        ignore (Tracer.finish tr ~at:(t0 +. latency) id)
    | Some _ | None -> ());
    match loan with
    | Some (pool, slot) when aliased ->
        (* This delivery reads the pool slot: hold a reference until the
           receiving cascade is done with it. The release runs right
           after [deliver] returns — by then the stack has either copied
           the bytes out or staged them in its own slots. *)
        Bitkit.Pool.retain pool slot;
        schedule_delivery t ~after:latency (fun () ->
            t.stats.delivered <- t.stats.delivered + 1;
            t.deliver msg;
            Bitkit.Pool.release pool slot)
    | Some _ | None ->
        schedule_delivery t ~after:latency (fun () ->
            t.stats.delivered <- t.stats.delivered + 1;
            t.deliver msg)
  end

let send ?loan t msg =
  (match loan with
  | Some _ when t.sched <> None ->
      (* A cross-shard delivery runs on the destination domain; releasing
         the (single-domain) pool there would race. Senders copy out of
         the slot before crossing instead. *)
      invalid_arg "Channel.send: pool loan on a cross-shard channel"
  | _ -> ());
  t.stats.sent <- t.stats.sent + 1;
  t.stats.bytes_sent <- t.stats.bytes_sent + t.size msg;
  transmit_once ?loan t msg;
  if Bitkit.Rng.coin (rng_of t) t.cfg.duplication then begin
    t.stats.duplicated <- t.stats.duplicated + 1;
    transmit_once ?loan t msg
  end;
  (* The caller's own reference dies with the send: every scheduled
     delivery retained its own above. *)
  match loan with Some (pool, slot) -> Bitkit.Pool.release pool slot | None -> ()

let corrupt_string rng s =
  if String.length s = 0 then s
  else begin
    let i = Bitkit.Rng.int rng (String.length s) in
    let bit = Bitkit.Rng.int rng 8 in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code s.[i] lxor (1 lsl bit)));
    Bytes.to_string b
  end

let corrupt_slice rng sl =
  if Bitkit.Slice.is_empty sl then sl
  else begin
    let n = Bitkit.Slice.length sl in
    let i = Bitkit.Rng.int rng n in
    let bit = Bitkit.Rng.int rng 8 in
    let b = Bytes.create n in
    Bitkit.Slice.blit sl b 0;
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bitkit.Slice.of_string (Bytes.unsafe_to_string b)
  end

let corrupt_bits rng bits =
  let n = Bitkit.Bitseq.length bits in
  if n = 0 then bits else Bitkit.Bitseq.flip bits (Bitkit.Rng.int rng n)
