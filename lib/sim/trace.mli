(** In-memory event traces (legacy string API).

    Protocol endpoints record interesting events here; tests assert on
    traces and examples print them.  Since the observability PR this is
    a thin shim over {!Events}: storage is a bounded ring (default 4096
    entries — check {!dropped} if you need the full history of a very
    long run), and [count] answers from a running index instead of
    scanning, so per-slice soak checks are no longer O(entries²). *)

type entry = { time : float; actor : string; event : string }

type t = Events.t
(** A trace {e is} a structured event buffer; new code can use the
    {!Events} API on the same value. *)

val create : ?capacity:int -> unit -> t
(** [capacity] bounds retained entries (default 4096); older entries are
    evicted, counted by {!dropped}. *)

val record : t -> time:float -> actor:string -> string -> unit

val entries : t -> entry list
(** Retained entries in chronological (insertion) order. *)

val count : t -> ?actor:string -> string -> int
(** [count t ~actor prefix] counts entries whose event starts with
    [prefix], optionally filtered by actor.  All-time (eviction-proof)
    and indexed when [prefix] contains no digit; otherwise falls back to
    scanning the retained window. *)

val dropped : t -> int
(** Entries evicted from the bounded ring so far. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
