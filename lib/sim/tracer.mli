(** Causal per-packet span tracing.

    A tracer collects {e spans}: named intervals of virtual time opened
    and closed at sublayer boundaries, linked into causal lineages by a
    {e trace id} (one per payload entering a stack) and a {e parent span}
    (a retransmission is a child of the original send). Finished spans
    live in a bounded ring; a string-keyed correlation table lets the
    receiving end of a link close a span the sending end opened — the
    cross-host linkage is out of band, so no wire format changes.

    The module is deliberately ignorant of the sublayer library (sim does
    not depend on it); [Sublayer.Span] layers the per-machine ergonomics
    and Stats histograms on top. *)

type span = {
  sp_id : int;          (** unique per tracer, from 1 *)
  sp_trace : int;       (** causal lineage; 0 = unknown *)
  sp_parent : int;      (** parent span id; 0 = root *)
  sp_track : string;    (** endpoint/host the span belongs to *)
  sp_sublayer : string; (** machine that opened it *)
  sp_name : string;
  sp_start : float;
  mutable sp_end : float; (** NaN while the span is live *)
  mutable sp_detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 8192 finished spans; older spans are
    evicted, counted by {!dropped}. *)

val set_enabled : bool -> unit
(** Global kill switch shared by all tracers: with tracing disabled the
    instrumented hot paths reduce to a single boolean load. *)

val enabled : unit -> bool

val fresh_trace : t -> int
(** Allocate a new trace id (never 0). *)

val start :
  t ->
  at:float ->
  track:string ->
  sublayer:string ->
  ?trace:int ->
  ?parent:int ->
  string ->
  int
(** Open a span; returns its id. *)

val finish : t -> at:float -> ?detail:string -> int -> span option
(** Close a live span by id and move it to the ring. [None] if the id is
    unknown (already finished, or evicted). *)

val instant :
  t ->
  at:float ->
  track:string ->
  sublayer:string ->
  ?trace:int ->
  ?parent:int ->
  ?detail:string ->
  string ->
  unit
(** A zero-duration span, recorded directly. *)

val trace_of : t -> int -> int option
(** Trace id of a span: live spans first, then the finished-span ring
    (newest first), so a retransmission of a segment whose original send
    span already closed still inherits the lineage. [None] only once the
    span has been evicted from the ring. *)

val bind : t -> string -> int -> unit
(** Correlation table: associate a span or trace id with a key both ends
    of a link can compute (e.g. ISN pair + stream offset). *)

val lookup : t -> string -> int option
val unbind : t -> string -> unit

val capacity : t -> int
val length : t -> int
(** Finished spans currently retained. *)

val recorded : t -> int
(** Finished spans ever recorded (monotonic). *)

val dropped : t -> int
val spans : t -> span list
(** Retained finished spans, oldest first. *)

val live_spans : t -> span list
(** Still-open spans, unordered. *)

val last : t -> int -> span list
(** The most recent [n] finished spans, oldest first. *)

val clear : t -> unit
val duration : span -> float
val span_to_string : span -> string
val pp_span : Format.formatter -> span -> unit

val to_chrome_json : ?clock_sync:string -> ?extra:string list -> t -> string
(** Chrome [trace_event] JSON (an object with a [traceEvents] array of
    complete ["ph":"X"] events, microsecond timestamps) loadable in
    chrome://tracing or https://ui.perfetto.dev. Tracks map to processes
    and sublayers to threads; events are sorted so [ts] is non-decreasing
    on every track. With [?clock_sync:id], every track additionally
    carries a ["clock_sync"] metadata record naming sync domain [id] —
    all tracks run on the one virtual clock, and the marker says so
    explicitly, so viewers align multi-track traces instead of treating
    each process as an independent clock domain. [extra] records —
    pre-serialised trace_event objects, e.g.
    {!Telemetry.chrome_counter_events} — are spliced into the array
    verbatim, so counter tracks render alongside the spans. *)

val merged_chrome_json :
  ?clock_sync:string -> ?extra:string list -> (string * t) list -> string
(** Merge several tracers (one per shard in a sharded run) into one
    Chrome trace: each tracer's tracks are namespaced as
    ["<label>/<track>"] and every track carries a {!to_chrome_json}
    [clock_sync] marker in the same sync domain (default
    ["sim-vclock"]). *)

val biography : t -> trace:int -> string
(** Text "packet biography": every retained span of one trace, in order,
    with parent links and details. *)
