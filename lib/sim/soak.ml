type report = {
  sname : string;
  vtime : float;
  events_fired : int;
  pending : int;
  finished : bool;
  violations : string list;
}

let pp_report ppf r =
  Format.fprintf ppf "%s: %s at t=%.2fs, %d events, %d pending%s" r.sname
    (if r.finished then "finished" else "DID NOT FINISH")
    r.vtime r.events_fired r.pending
    (match r.violations with
    | [] -> ""
    | vs -> Format.asprintf ", violations: %s" (String.concat "; " vs))

let ok r = r.finished && r.violations = [] && r.pending = 0

let run ?(step = 0.5) ?(until = 120.) ?(invariant = fun () -> None) ?(quiesce = true)
    ~name ~engine ~finished () =
  let violations = ref [] in
  let record msg = if not (List.mem msg !violations) then violations := msg :: !violations
  in
  let rec drive () =
    if (not (finished ())) && !violations = [] && Engine.now engine < until then begin
      Engine.run ~until:(Engine.now engine +. step) engine;
      (match invariant () with None -> () | Some msg -> record msg);
      drive ()
    end
  in
  drive ();
  let fin = finished () in
  let vtime = Engine.now engine in
  (* Let a finished stack's remaining timers (TIME_WAIT, idle timeouts,
     straggler acks) expire: a hardened stack must quiesce, not tick
     forever. Cap the drain so a livelocked stack still reports. *)
  if quiesce && fin then Engine.run ~until:(vtime +. until) engine;
  { sname = name;
    vtime;
    events_fired = Engine.events_fired engine;
    pending = Engine.pending engine;
    finished = fin;
    violations = List.rev !violations }

let reproducible scenario ~seed =
  let a = scenario seed in
  let b = scenario seed in
  a = b
