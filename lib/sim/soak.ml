type report = {
  sname : string;
  vtime : float;
  events_fired : int;
  pending : int;
  finished : bool;
  violations : string list;
  samples : (float * (string * int) list) list;
  flights : (string * string list) list;
  flight_cap : int;
  verdicts : (string * int * int) list;
  drops : (string * int) list;
}

let pp_report ppf r =
  Format.fprintf ppf "%s: %s at t=%.2fs, %d events, %d pending%s%s%s%s" r.sname
    (if r.finished then "finished" else "DID NOT FINISH")
    r.vtime r.events_fired r.pending
    (match r.violations with
    | [] -> ""
    | vs -> Format.asprintf ", violations: %s" (String.concat "; " vs))
    (match r.flights with
    | [] -> ""
    | fs ->
        Format.asprintf ", %d/%d flight dump%s" (List.length fs) r.flight_cap
          (if List.length fs = 1 then "" else "s"))
    (match r.verdicts with
    | [] -> ""
    | vs ->
        Format.asprintf ", monitors: %s"
          (String.concat " "
             (List.map
                (fun (sub, checked, violated) ->
                  Printf.sprintf "%s=%d/%d" sub (checked - violated) checked
                  ^ if violated > 0 then "!" else "")
                vs)))
    (match List.filter (fun (_, n) -> n > 0) r.drops with
    | [] -> ""
    | ds ->
        Format.asprintf ", dropped: %s"
          (String.concat " "
             (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) ds)))

let ok r = r.finished && r.violations = [] && r.pending = 0

(* What the soak loop needs from whatever is advancing virtual time — a
   single engine or a whole shard group. *)
type driver = {
  d_now : unit -> float;
  d_run : until:float -> unit;
  d_events : unit -> int;
  d_pending : unit -> int;
}

let engine_driver engine =
  { d_now = (fun () -> Engine.now engine);
    d_run = (fun ~until -> Engine.run ~until engine);
    d_events = (fun () -> Engine.events_fired engine);
    d_pending = (fun () -> Engine.pending engine) }

let shard_driver shard =
  { d_now = (fun () -> Shard.now shard);
    d_run = (fun ~until -> Shard.run ~until shard);
    d_events = (fun () -> Shard.events_fired shard);
    d_pending = (fun () -> Shard.pending shard) }

let run_driver ?(step = 0.5) ?(until = 120.) ?(invariant = fun () -> None)
    ?(quiesce = true) ?sample ?(sample_every = 1) ?tracer ?(flight_n = 32)
    ?(flight_cap = 8) ?(verdicts = fun () -> []) ?events
    ?(telemetry = []) ?(on_slice = fun (_ : float) -> ())
    ?(drops = fun () -> []) ~name ~driver ~finished () =
  let violations = ref [] in
  let flights = ref [] in
  (* Flight recorder: at every distinct violation (up to [flight_cap] of
     them), freeze the last spans the tracer still holds — preferring
     those on a track the violation message names, so each dump is about
     the offending connection. *)
  let capture_flight msg =
    match tracer with
    | None -> ()
    | Some tr when List.length !flights < flight_cap ->
        let recent = Tracer.last tr (8 * flight_n) in
        let touching =
          List.filter
            (fun s ->
              let track = s.Tracer.sp_track in
              let tlen = String.length track and mlen = String.length msg in
              tlen > 0 && tlen <= mlen
              && (let found = ref false in
                  for i = 0 to mlen - tlen do
                    if String.sub msg i tlen = track then found := true
                  done;
                  !found))
            recent
        in
        let chosen = if touching = [] then recent else touching in
        let n = List.length chosen in
        let chosen =
          if n <= flight_n then chosen
          else List.filteri (fun i _ -> i >= n - flight_n) chosen
        in
        flights := (msg, List.map Tracer.span_to_string chosen) :: !flights
    | Some _ -> ()
  in
  let record msg =
    if not (List.mem msg !violations) then begin
      capture_flight msg;
      violations := msg :: !violations
    end
  in
  let samples = ref [] in
  let slices = ref 0 in
  (* [Engine.pending] is O(1), so every slice gets a pending sample —
     the leak telltale — with the caller's snapshot merged in. *)
  let take_sample () =
    if !slices mod sample_every = 0 then begin
      let extra = match sample with None -> [] | Some f -> f () in
      samples :=
        (driver.d_now (), ("pending", driver.d_pending ()) :: extra)
        :: !samples
    end
  in
  (* Keep driving through violations: a soak that stops at the first one
     hides every later, possibly distinct, failure — each distinct
     violation is recorded (and flight-dumped) as it appears. *)
  (* Telemetry ticks at every slice boundary in virtual time: the ring
     decides (via its interval) whether the instant becomes a sample, so
     the series timestamps are slice boundaries — identical whatever is
     driving (engine or shard group). *)
  let boundary () =
    let now = driver.d_now () in
    List.iter (fun t -> Telemetry.tick t ~now) telemetry;
    on_slice now
  in
  let rec drive () =
    if (not (finished ())) && driver.d_now () < until then begin
      driver.d_run ~until:(driver.d_now () +. step);
      incr slices;
      take_sample ();
      boundary ();
      (match invariant () with None -> () | Some msg -> record msg);
      drive ()
    end
  in
  drive ();
  let fin = finished () in
  let vtime = driver.d_now () in
  (* Let a finished stack's remaining timers (TIME_WAIT, idle timeouts,
     straggler acks) expire: a hardened stack must quiesce, not tick
     forever. Cap the drain so a livelocked stack still reports. *)
  if quiesce && fin then begin
    driver.d_run ~until:(vtime +. until);
    boundary ()
  end;
  (* A violation the invariant hook surfaced only during the quiesce
     drain would otherwise be lost — poll it once more, then freeze the
     monitor verdicts into the report. *)
  (match invariant () with None -> () | Some msg -> record msg);
  (* Lossy-ring accounting: a clean report must say when its own
     observability was incomplete. *)
  let ring_drops =
    (match tracer with
    | Some tr -> [ ("tracer", Tracer.dropped tr) ]
    | None -> [])
    @ (match events with Some ev -> [ ("events", Events.dropped ev) ] | None -> [])
    @ List.concat_map
        (fun t -> [ ("telemetry:" ^ Telemetry.label t, Telemetry.dropped t) ])
        telemetry
  in
  { sname = name;
    vtime;
    events_fired = driver.d_events ();
    pending = driver.d_pending ();
    finished = fin;
    violations = List.rev !violations;
    samples = List.rev !samples;
    flights = List.rev !flights;
    flight_cap;
    verdicts = verdicts ();
    drops = ring_drops @ drops () }

let run ?step ?until ?invariant ?quiesce ?sample ?sample_every ?tracer
    ?flight_n ?flight_cap ?verdicts ?events ?telemetry ?on_slice ?drops ~name
    ~engine ~finished () =
  run_driver ?step ?until ?invariant ?quiesce ?sample ?sample_every ?tracer
    ?flight_n ?flight_cap ?verdicts ?events ?telemetry ?on_slice ?drops ~name
    ~driver:(engine_driver engine) ~finished ()

let reproducible scenario ~seed =
  let a = scenario seed in
  let b = scenario seed in
  a = b
