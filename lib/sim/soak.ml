type report = {
  sname : string;
  vtime : float;
  events_fired : int;
  pending : int;
  finished : bool;
  violations : string list;
  samples : (float * (string * int) list) list;
}

let pp_report ppf r =
  Format.fprintf ppf "%s: %s at t=%.2fs, %d events, %d pending%s" r.sname
    (if r.finished then "finished" else "DID NOT FINISH")
    r.vtime r.events_fired r.pending
    (match r.violations with
    | [] -> ""
    | vs -> Format.asprintf ", violations: %s" (String.concat "; " vs))

let ok r = r.finished && r.violations = [] && r.pending = 0

let run ?(step = 0.5) ?(until = 120.) ?(invariant = fun () -> None) ?(quiesce = true)
    ?sample ?(sample_every = 1) ~name ~engine ~finished () =
  let violations = ref [] in
  let record msg = if not (List.mem msg !violations) then violations := msg :: !violations
  in
  let samples = ref [] in
  let slices = ref 0 in
  let take_sample () =
    match sample with
    | None -> ()
    | Some f ->
        if !slices mod sample_every = 0 then
          samples := (Engine.now engine, f ()) :: !samples
  in
  let rec drive () =
    if (not (finished ())) && !violations = [] && Engine.now engine < until then begin
      Engine.run ~until:(Engine.now engine +. step) engine;
      incr slices;
      take_sample ();
      (match invariant () with None -> () | Some msg -> record msg);
      drive ()
    end
  in
  drive ();
  let fin = finished () in
  let vtime = Engine.now engine in
  (* Let a finished stack's remaining timers (TIME_WAIT, idle timeouts,
     straggler acks) expire: a hardened stack must quiesce, not tick
     forever. Cap the drain so a livelocked stack still reports. *)
  if quiesce && fin then Engine.run ~until:(vtime +. until) engine;
  { sname = name;
    vtime;
    events_fired = Engine.events_fired engine;
    pending = Engine.pending engine;
    finished = fin;
    violations = List.rev !violations;
    samples = List.rev !samples }

let reproducible scenario ~seed =
  let a = scenario seed in
  let b = scenario seed in
  a = b
