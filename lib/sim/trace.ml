type entry = { time : float; actor : string; event : string }

type t = Events.t

(* Legacy callers hand us one free-form string per event.  The indexed
   store wants a stable low-cardinality [kind], so split at the first
   digit: "fast retransmit offset=172" indexes as "fast retransmit
   offset=" with detail "172".  The concatenation is the identity, so
   [entries] round-trips exactly. *)
let split_event s =
  let n = String.length s in
  let cut = ref n in
  (try
     for i = 0 to n - 1 do
       match s.[i] with
       | '0' .. '9' ->
           cut := i;
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  if !cut = n then (s, "") else (String.sub s 0 !cut, String.sub s !cut (n - !cut))

let create ?capacity () = Events.create ?capacity ()

let record t ~time ~actor event =
  let kind, detail = split_event event in
  Events.emit t ~at:time ~actor ~detail kind

let entries t =
  List.map
    (fun (e : Events.event) ->
      { time = e.at; actor = e.actor; event = e.kind ^ e.detail })
    (Events.to_list t)

let has_digit s =
  let found = ref false in
  String.iter (function '0' .. '9' -> found := true | _ -> ()) s;
  !found

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let count t ?actor prefix =
  if has_digit prefix then
    (* A digit in the prefix crosses the kind/detail split, so the index
       can't answer; scan the retained window (bounded by capacity). *)
    List.length
      (List.filter
         (fun e ->
           starts_with ~prefix e.event
           && match actor with None -> true | Some a -> a = e.actor)
         (entries t))
  else Events.count t ?actor ~prefix ()

let dropped = Events.dropped
let clear = Events.clear

let pp fmt t =
  List.iter
    (fun e -> Format.fprintf fmt "%10.6f %-12s %s@\n" e.time e.actor e.event)
    (entries t)
