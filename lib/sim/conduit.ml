(* A deterministic cross-shard message queue: the only channel through
   which one shard's domain may touch another shard's engine.

   The design is classic conservative (Chandy–Misra) parallel DES. A
   conduit connects exactly one (src shard, dst shard) pair and promises
   a {e lookahead} L: every message carries an absolute delivery time
   that is >= sender's-clock + L at push time. The shard runner exploits
   the promise: when every shard's next local event is at >= m, every
   shard may safely run to m + L, because no message that could still
   arrive can be timestamped earlier.

   Determinism does not come from the mutex — it comes from the drain
   discipline. Messages are pushed in the sender's deterministic
   execution order and drained only at round barriers, in a fixed
   src-shard order, being re-inserted into the destination engine with
   [Engine.at] (which breaks timestamp ties by insertion sequence). So
   the destination's fire order is a pure function of the simulation,
   never of domain scheduling. The mutex only makes the handoff of the
   batch memory-safe. *)

type msg = { m_time : float; m_fn : unit -> unit }

type t = {
  lookahead : float;
  lock : Mutex.t;
  mutable q : msg list; (* newest first; reversed on drain *)
  mutable pushed : int;
  mutable drained : int;
}

let create ~lookahead =
  if not (Float.is_finite lookahead) || lookahead <= 0. then
    invalid_arg "Conduit.create: lookahead must be positive and finite";
  { lookahead; lock = Mutex.create (); q = []; pushed = 0; drained = 0 }

let lookahead t = t.lookahead

let push t ~time fn =
  Mutex.lock t.lock;
  t.q <- { m_time = time; m_fn = fn } :: t.q;
  t.pushed <- t.pushed + 1;
  Mutex.unlock t.lock

(* Hand every queued message to [f], oldest push first, checking the
   lookahead promise: a message timestamped before [now] would have to
   fire in the receiving shard's past, which is exactly the causality
   violation the safe-window protocol exists to rule out — so it is a
   protocol bug, reported loudly rather than silently reordered. *)
let drain t ~now f =
  Mutex.lock t.lock;
  let batch = List.rev t.q in
  t.q <- [];
  Mutex.unlock t.lock;
  List.iter
    (fun m ->
      if m.m_time < now then
        invalid_arg
          (Printf.sprintf
             "Conduit.drain: message at t=%.9f delivered into the past \
              (shard clock %.9f)"
             m.m_time now);
      t.drained <- t.drained + 1;
      f ~time:m.m_time m.m_fn)
    batch

let pushed t = t.pushed
let drained t = t.drained

(* In-flight backlog. Racy by nature (the sender may be pushing); only
   meaningful at barriers, where the round protocol guarantees quiet. *)
let backlog t = t.pushed - t.drained
