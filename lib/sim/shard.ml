(* Sharded parallel simulation: N private engines, one OCaml domain
   each, advancing in lockstep rounds under a conservative
   (Chandy–Misra) safe-window rule.

   Invariants the protocol rests on:

   - Shard i's engine is touched only by domain i while a round is
     running; cross-shard scheduling goes through {!Conduit}s, drained
     only at barriers.
   - Every cross-shard message's timestamp is >= sender-clock +
     lookahead (the fabric guarantees this: lookahead <= the propagation
     delay of every cross-shard link, and nothing — jitter,
     serialisation, reordering, fault plans — ever shrinks a delay).
   - Therefore, when the earliest next event anywhere is at m, every
     shard may run to horizon = min(m + lookahead, until): any message
     generated during the round has timestamp >= m + lookahead >=
     horizon >= every clock at the next drain. Float rounding keeps the
     inequalities: fl(x +. y) is monotone in both arguments, and the
     horizon is computed with the same one addition as the senders'
     timestamps.

   Round protocol, per worker i (main domain runs shard 0):

     drain own inboxes (fixed src order);  publish next.(i)
     loop:
       barrier A — last arriver computes the round decision:
                   m = min over next[];  done if m = inf or m > until
                   else horizon = min (m +. lookahead) until
       if done: run to [until] (advances idle clocks) and exit
       else:    Engine.run ~until:horizon;
       barrier B — everyone has stopped pushing;
       drain own inboxes;  publish next.(i)

   Inboxes are drained *before* the leader computes m, so conduits are
   empty whenever a decision is taken — the min over engine queues alone
   is the true global minimum.

   Every [run] call spawns fresh worker domains and joins them before
   returning: spawn/join give the memory ordering that lets the main
   domain freely read (and mutate) all shard state between calls, and a
   soak run's few hundred slices cost a few hundred spawns — noise. *)

type t = {
  engines : Engine.t array;
  inbox : Conduit.t array array; (* inbox.(dst).(src); diagonal unused *)
  la : float;
}

let create ?(seed = 1) ?backend ?(lookahead = 1e-3) ~shards () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if not (Float.is_finite lookahead) || lookahead <= 0. then
    invalid_arg "Shard.create: lookahead must be positive and finite";
  {
    engines =
      (* Engine i gets seed+i, but engine RNGs are only a fallback: the
         fabric gives every channel its own per-link stream precisely so
         results do not depend on which engine hosts which flow. *)
      Array.init shards (fun i -> Engine.create ~seed:(seed + i) ?backend ());
    inbox =
      Array.init shards (fun _ ->
          Array.init shards (fun _ -> Conduit.create ~lookahead));
    la = lookahead;
  }

let shards t = Array.length t.engines
let engine t i = t.engines.(i)
let lookahead t = t.la

let now t =
  Array.fold_left (fun acc e -> Float.max acc (Engine.now e)) 0. t.engines

let events_fired t =
  Array.fold_left (fun acc e -> acc + Engine.events_fired e) 0 t.engines

let pending t =
  let q = Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.engines in
  Array.fold_left
    (Array.fold_left (fun acc c -> acc + Conduit.backlog c))
    q t.inbox

let post t ~src ~dst ~time fn =
  if src = dst then ignore (Engine.at t.engines.(src) ~time fn)
  else Conduit.push t.inbox.(dst).(src) ~time fn

(* --- the round barrier ------------------------------------------------ *)

(* A classic generation barrier whose last arriver runs a leader closure
   while still holding the lock: the closure reads what every worker
   published before arriving (their lock acquisition ordered those
   writes) and its own writes are ordered before every release. *)
type barrier = {
  b_lock : Mutex.t;
  b_cond : Condition.t;
  b_n : int;
  mutable b_arrived : int;
  mutable b_gen : int;
}

let barrier_make n =
  { b_lock = Mutex.create (); b_cond = Condition.create (); b_n = n;
    b_arrived = 0; b_gen = 0 }

let barrier_await b leader =
  Mutex.lock b.b_lock;
  let gen = b.b_gen in
  b.b_arrived <- b.b_arrived + 1;
  if b.b_arrived = b.b_n then begin
    leader ();
    b.b_arrived <- 0;
    b.b_gen <- gen + 1;
    Condition.broadcast b.b_cond
  end
  else
    while b.b_gen = gen do
      Condition.wait b.b_cond b.b_lock
    done;
  Mutex.unlock b.b_lock

(* Shared round state. All fields are written and read inside barrier
   critical sections (or before a spawn / after a join), so none need to
   be atomic. *)
type round = {
  bar : barrier;
  next : float array;        (* per shard: earliest queued event, or inf *)
  mutable horizon : float;   (* leader's decision for this round *)
  mutable go : bool;
  mutable abort : bool;      (* leader saw a recorded failure *)
  mutable exn : exn option;  (* first failure; poisons the run *)
}

let worker t ~until shared i =
  let n = Array.length t.engines in
  let eng = t.engines.(i) in
  let record_exn e =
    Mutex.lock shared.bar.b_lock;
    if shared.exn = None then shared.exn <- Some e;
    Mutex.unlock shared.bar.b_lock
  in
  let dead = ref false in
  let guard f = if not !dead then try f () with e -> dead := true; record_exn e in
  let drain_inboxes () =
    for src = 0 to n - 1 do
      if src <> i then
        Conduit.drain t.inbox.(i).(src) ~now:(Engine.now eng)
          (fun ~time fn -> ignore (Engine.at eng ~time fn))
    done
  in
  let publish_next () =
    shared.next.(i) <-
      (if !dead then infinity
       else match Engine.next_time eng with Some ti -> ti | None -> infinity)
  in
  guard drain_inboxes;
  publish_next ();
  let looping = ref true in
  while !looping do
    barrier_await shared.bar (fun () ->
        let m = Array.fold_left Float.min infinity shared.next in
        shared.abort <- shared.exn <> None;
        if (not (Float.is_finite m)) || m > until || shared.abort then begin
          shared.go <- false;
          shared.horizon <- until
        end
        else begin
          shared.go <- true;
          shared.horizon <- Float.min (m +. t.la) until
        end);
    if not shared.go then begin
      (* Nothing (reachable) left before [until]: advance the idle clock
         so fixed-slice callers observe time passing, and stop. *)
      if (not shared.abort) && Float.is_finite until then
        guard (fun () -> Engine.run ~until eng);
      looping := false
    end
    else begin
      let horizon = shared.horizon in
      guard (fun () -> Engine.run ~until:horizon eng);
      (* Barrier B: every shard has stopped executing — no more pushes —
         before anyone drains. *)
      barrier_await shared.bar (fun () -> ());
      guard drain_inboxes;
      publish_next ()
    end
  done

let run ?(until = infinity) t =
  match t.engines with
  | [| eng |] ->
      (* One shard is the sequential baseline, run literally on the
         single engine — this is the reference the identity tests compare
         multi-shard runs against. *)
      if Float.is_finite until then Engine.run ~until eng else Engine.run eng
  | engines ->
      let n = Array.length engines in
      let shared =
        { bar = barrier_make n; next = Array.make n infinity;
          horizon = until; go = false; abort = false; exn = None }
      in
      let doms =
        Array.init (n - 1) (fun k ->
            Domain.spawn (fun () -> worker t ~until shared (k + 1)))
      in
      worker t ~until shared 0;
      Array.iter Domain.join doms;
      match shared.exn with Some e -> raise e | None -> ()
