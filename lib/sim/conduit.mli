(** Deterministic cross-shard message conduits.

    A conduit carries scheduled events from one shard's domain to
    another under a conservative-lookahead contract: every message's
    absolute timestamp is at least the sender's clock plus the conduit's
    {!lookahead} (in the fabric, the cross-shard link's propagation
    delay — jitter, serialisation and reordering only ever add to it,
    and fault plans never shrink it). {!Shard} uses the promise to
    compute safe execution windows; {!drain} enforces it, rejecting any
    message that would land in the receiving shard's past.

    Determinism comes from the drain discipline, not the lock: messages
    are drained only at round barriers, in push order, per conduit in a
    fixed shard order, and re-inserted via {!Engine.at} whose tie-break
    is insertion order. The mutex only makes the batch handoff safe. *)

type t

val create : lookahead:float -> t
(** [lookahead] must be positive and finite. *)

val lookahead : t -> float

val push : t -> time:float -> (unit -> unit) -> unit
(** Enqueue an event for absolute virtual time [time] (sender side). *)

val drain : t -> now:float -> (time:float -> (unit -> unit) -> unit) -> unit
(** [drain t ~now f] hands every queued message to [f], oldest push
    first (receiver side, barriers only). Raises [Invalid_argument] if
    any message is timestamped before [now] — a violated lookahead
    promise, i.e. an event that would fire in the receiving shard's
    past. *)

val pushed : t -> int
(** Messages ever pushed (monotonic). *)

val drained : t -> int
(** Messages ever drained (monotonic). *)

val backlog : t -> int
(** [pushed - drained]: in-flight messages. Only meaningful at round
    barriers, where the protocol guarantees no concurrent pushes. *)
