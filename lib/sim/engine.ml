type event = {
  time : float;
  seq : int;
  mutable fn : unit -> unit;
  mutable dead : bool;
  (* Shared with the owning engine so [cancel] (which only sees the
     handle) can keep the accounting straight. *)
  live : int ref;
  dead_in_heap : int ref;
}

type handle = event

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  live : int ref;
  dead_in_heap : int ref;
  mutable compactions : int;
  random : Bitkit.Rng.t;
}

let dummy =
  { time = 0.; seq = -1; fn = ignore; dead = true; live = ref 0;
    dead_in_heap = ref 0 }

let create ?(seed = 42) () =
  { heap = Array.make 64 dummy; size = 0; clock = 0.; next_seq = 0;
    fired = 0; live = ref 0; dead_in_heap = ref 0; compactions = 0;
    random = Bitkit.Rng.create seed }

let now t = t.clock
let rng t = t.random

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

(* Drop cancelled entries and re-establish the heap property in place.
   Long soaks cancel far more timers than ever fire (every ack cancels a
   retransmission timer), so without this the heap is mostly garbage and
   [pending] scans it all. *)
let compact t =
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).dead then begin
      t.heap.(!kept) <- t.heap.(i);
      incr kept
    end
  done;
  for i = !kept to t.size - 1 do
    t.heap.(i) <- dummy
  done;
  t.size <- !kept;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  t.dead_in_heap := 0;
  t.compactions <- t.compactions + 1

let maybe_compact t =
  if t.size > 64 && 2 * !(t.dead_in_heap) > t.size then compact t

let at t ~time fn =
  if time < t.clock then invalid_arg "Engine.at: time in the past";
  let ev =
    { time; seq = t.next_seq; fn; dead = false; live = t.live;
      dead_in_heap = t.dead_in_heap }
  in
  t.next_seq <- t.next_seq + 1;
  incr t.live;
  push t ev;
  (* [cancel] can't reach the engine through the handle, so dead-entry
     pressure is relieved on the next schedule (or [pending] scan). *)
  maybe_compact t;
  ev

let schedule t ~after fn =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.clock +. after) fn

let cancel ev =
  if not ev.dead then begin
    ev.dead <- true;
    (* Drop the closure so cancelled timers don't retain whatever state
       they captured for the rest of a long soak. *)
    ev.fn <- ignore;
    decr ev.live;
    incr ev.dead_in_heap
  end

let cancelled ev = ev.dead

(* Fire [ev]: mark it dead first so a late [cancel] on a kept handle is a
   no-op instead of corrupting the accounting, and drop the closure so the
   handle does not retain it. *)
let fire t ev =
  let f = ev.fn in
  ev.dead <- true;
  ev.fn <- ignore;
  t.clock <- ev.time;
  t.fired <- t.fired + 1;
  decr t.live;
  f ()

let rec step t =
  match pop t with
  | None -> false
  | Some ev when ev.dead ->
      (* Cancelled: [cancel] already decremented [live]; it just left
         the heap. *)
      decr t.dead_in_heap;
      step t
  | Some ev ->
      fire t ev;
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> u | None -> infinity in
  let continue = ref true in
  while !continue && !budget > 0 do
    match pop t with
    | None ->
        (* "Run until T" leaves the clock at T even if nothing is left to
           do, so callers polling in fixed virtual-time slices always make
           progress. *)
        if Float.is_finite horizon && horizon > t.clock then t.clock <- horizon;
        continue := false
    | Some ev when ev.dead -> decr t.dead_in_heap
    | Some ev when ev.time > horizon ->
        (* Put it back: the caller may resume later. *)
        push t ev;
        t.clock <- horizon;
        continue := false
    | Some ev ->
        decr budget;
        fire t ev
  done

let live t = !(t.live)

let pending t =
  maybe_compact t;
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).dead then incr n
  done;
  !n

let compactions t = t.compactions
let events_fired t = t.fired
