(* The scheduler behind every experiment: virtual time, (time,
   insertion-seq) firing order, seeded randomness. Two interchangeable
   queue backends share the event representation and the lazy-delete
   cancellation accounting:

   - [`Wheel] (default): the hierarchical timing wheel — O(1) schedule
     and cancel for the near horizon, where RTO/delayed-ack/ARQ timers
     overwhelmingly live and die.
   - [`Heap]: the original binary heap, kept as the reference the
     equivalence property test drives in lockstep against the wheel.

   Both fire the exact same (time, seq) stream, so seeded runs are
   bit-identical across backends. *)

type event = Wheel.event = {
  time : float;
  seq : int;
  mutable fn : unit -> unit;
  mutable dead : bool;
  (* Shared with the owning engine so [cancel] (which only sees the
     handle) can keep the accounting straight. *)
  live : int ref;
  dead_in_heap : int ref;
}

type handle = event

type backend = [ `Heap | `Wheel ]

(* The reference backend: one binary heap, dead tops purged lazily. *)
module Heapq = struct
  type t = { heap : Wheel.Eheap.t; mutable compactions : int }

  let create () = { heap = Wheel.Eheap.create ~capacity:64 (); compactions = 0 }

  let rec purge q =
    match Wheel.Eheap.peek q.heap with
    | Some ev when ev.dead ->
        ignore (Wheel.Eheap.pop q.heap);
        decr ev.dead_in_heap;
        purge q
    | _ -> ()

  (* Drop cancelled entries and re-establish the heap property in place.
     Long soaks cancel far more timers than ever fire (every ack cancels
     a retransmission timer), so without this the heap is mostly garbage
     and [pending] scans it all. *)
  let compact q =
    Wheel.Eheap.compact q.heap ~on_drop:(fun ev -> decr ev.dead_in_heap);
    q.compactions <- q.compactions + 1
end

type queue = Q_heap of Heapq.t | Q_wheel of Wheel.t

type t = {
  queue : queue;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  live : int ref;
  dead_in_heap : int ref;
  random : Bitkit.Rng.t;
  (* Run after each fired event's closure returns, when no action list is
     mid-apply anywhere — the safe point buffer pools drain deferred
     releases at. Appended once at setup; purely virtual-time-neutral
     (hooks schedule nothing), so they cannot perturb determinism. *)
  mutable end_hooks : (unit -> unit) list;
}

let create ?(seed = 42) ?(backend = `Wheel) () =
  { queue =
      (match backend with
      | `Heap -> Q_heap (Heapq.create ())
      | `Wheel -> Q_wheel (Wheel.create ()));
    clock = 0.; next_seq = 0; fired = 0; live = ref 0; dead_in_heap = ref 0;
    random = Bitkit.Rng.create seed; end_hooks = [] }

let after_event t hook = t.end_hooks <- t.end_hooks @ [ hook ]

let backend t = match t.queue with Q_heap _ -> `Heap | Q_wheel _ -> `Wheel
let now t = t.clock
let rng t = t.random

let queue_total t =
  match t.queue with
  | Q_heap q -> Wheel.Eheap.size q.Heapq.heap
  | Q_wheel w -> Wheel.total w

let maybe_compact t =
  if queue_total t > 64 && 2 * !(t.dead_in_heap) > queue_total t then
    match t.queue with
    | Q_heap q -> Heapq.compact q
    | Q_wheel w -> Wheel.compact w

let at t ~time fn =
  if time < t.clock then invalid_arg "Engine.at: time in the past";
  let ev =
    { time; seq = t.next_seq; fn; dead = false; live = t.live;
      dead_in_heap = t.dead_in_heap }
  in
  t.next_seq <- t.next_seq + 1;
  incr t.live;
  (match t.queue with
  | Q_heap q -> Wheel.Eheap.push q.Heapq.heap ev
  | Q_wheel w -> Wheel.add w ev);
  (* [cancel] can't reach the engine through the handle, so dead-entry
     pressure is relieved on the next schedule (or [pending] scan). *)
  maybe_compact t;
  ev

let schedule t ~after fn =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.clock +. after) fn

let cancel ev =
  if not ev.dead then begin
    ev.dead <- true;
    (* Drop the closure so cancelled timers don't retain whatever state
       they captured for the rest of a long soak. *)
    ev.fn <- ignore;
    decr ev.live;
    incr ev.dead_in_heap
  end

let cancelled ev = ev.dead

(* The earliest live event, left in place: [horizon] bounds how far the
   wheel's cursor advances (the heap ignores it). The returned event may
   still have [time > horizon] — callers compare. *)
let peek t ~horizon =
  (* [cancel] can't reach the engine through the handle, so dead-entry
     pressure built up by cancel storms is also relieved here, on the
     next dequeue. *)
  maybe_compact t;
  match t.queue with
  | Q_heap q ->
      Heapq.purge q;
      Wheel.Eheap.peek q.Heapq.heap
  | Q_wheel w -> Wheel.peek w ~horizon

let drop_top t =
  match t.queue with
  | Q_heap q -> ignore (Wheel.Eheap.pop q.Heapq.heap)
  | Q_wheel w -> ignore (Wheel.pop w)

(* Fire [ev]: mark it dead first so a late [cancel] on a kept handle is a
   no-op instead of corrupting the accounting, and drop the closure so the
   handle does not retain it. *)
let fire t ev =
  let f = ev.fn in
  ev.dead <- true;
  ev.fn <- ignore;
  t.clock <- ev.time;
  t.fired <- t.fired + 1;
  decr t.live;
  f ();
  match t.end_hooks with
  | [] -> ()
  | hooks -> List.iter (fun h -> h ()) hooks

(* Timestamp of the earliest live event, event left queued. Used by the
   shard round protocol to compute the global safe window; the wheel's
   cursor may advance up to that event, which is harmless — the wheel
   routes insertions at or before its cursor through the front heap,
   preserving exact (time, seq) order. *)
let next_time t =
  match peek t ~horizon:infinity with
  | None -> None
  | Some ev -> Some ev.time

let step t =
  match peek t ~horizon:infinity with
  | None -> false
  | Some ev ->
      drop_top t;
      fire t ev;
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> u | None -> infinity in
  let continue = ref true in
  while !continue && !budget > 0 do
    match peek t ~horizon with
    | None ->
        (* "Run until T" leaves the clock at T even if nothing is left to
           do, so callers polling in fixed virtual-time slices always make
           progress. *)
        if Float.is_finite horizon && horizon > t.clock then t.clock <- horizon;
        continue := false
    | Some ev when ev.time > horizon ->
        (* Leave it queued: the caller may resume later. *)
        t.clock <- horizon;
        continue := false
    | Some ev ->
        drop_top t;
        decr budget;
        fire t ev
  done

let live t = !(t.live)

(* O(1): the cancellation accounting already tracks liveness exactly;
   [pending_scan] remains as the O(total) audit the property tests
   cross-check it against after randomized cancel storms. *)
let pending t = !(t.live)

let pending_scan t =
  maybe_compact t;
  let n = ref 0 in
  let count ev = if not ev.dead then incr n in
  (match t.queue with
  | Q_heap q -> Wheel.Eheap.iter q.Heapq.heap count
  | Q_wheel w -> Wheel.iter w count);
  !n

let compactions t =
  match t.queue with
  | Q_heap q -> q.Heapq.compactions
  | Q_wheel w -> Wheel.compactions w

let events_fired t = t.fired
