(** Scripted fault injection for channels.

    A fault plan is a timeline of link events — flaps, partitions,
    brownouts, burst-loss episodes, corruption storms — applied to one or
    more channels through {!Channel.set_config} on the seeded engine, so
    every chaos run is exactly reproducible. The plan is data: tests and
    benches can print it, store it next to a failing seed, and replay it.

    Events restore the channel to the {e baseline} configuration captured
    when {!apply} was called; overlapping episodes therefore end with the
    baseline, not with each other's impairments (documented simple
    semantics — schedule disjoint episodes if you need composition). *)

(** A channel being injected, erased to its configuration interface
    (channels are polymorphic in their payload type; a fault plan does not
    care). Build one with {!target} or {!Channel.target}-style wrappers. *)
type target = {
  tname : string;
  get : unit -> Channel.config;
  set : Channel.config -> unit;
}

val target : ?name:string -> 'a Channel.t -> target

type event =
  | Flap of { at : float; duration : float }
      (** total loss for [duration], then restore *)
  | Partition of { at : float }
      (** total loss until a subsequent {!Heal} *)
  | Heal of { at : float }  (** restore the baseline configuration *)
  | Brownout of { at : float; duration : float; bandwidth : float }
      (** squeeze serialisation to [bandwidth] bytes/s *)
  | Burst_loss of {
      at : float;
      duration : float;
      params : Channel.gilbert_elliott;
    }  (** a Gilbert–Elliott burst-loss episode *)
  | Corrupt_storm of { at : float; duration : float; corruption : float }

type t = event list

val time_of : event -> float
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val apply : Engine.t -> t -> target list -> unit
(** Capture each target's current configuration as its baseline and
    schedule every event (and its restore) at absolute virtual times.
    Events before [Engine.now] are rejected by the engine. *)

val random : Bitkit.Rng.t -> horizon:float -> ?events:int -> unit -> t
(** A randomized-but-seeded scenario schedule: [events] (default 6)
    episodes drawn uniformly over kind, spread over [0, horizon), with
    durations short enough that the link is up more than half the time
    and a final {!Heal} at [horizon] so runs can always finish. *)
