type target = {
  tname : string;
  get : unit -> Channel.config;
  set : Channel.config -> unit;
}

let target ?(name = "link") ch =
  { tname = name;
    get = (fun () -> Channel.config ch);
    set = (fun cfg -> Channel.set_config ch cfg) }

type event =
  | Flap of { at : float; duration : float }
  | Partition of { at : float }
  | Heal of { at : float }
  | Brownout of { at : float; duration : float; bandwidth : float }
  | Burst_loss of {
      at : float;
      duration : float;
      params : Channel.gilbert_elliott;
    }
  | Corrupt_storm of { at : float; duration : float; corruption : float }

type t = event list

let time_of = function
  | Flap { at; _ } | Partition { at } | Heal { at } | Brownout { at; _ }
  | Burst_loss { at; _ } | Corrupt_storm { at; _ } ->
      at

let pp_event ppf = function
  | Flap { at; duration } -> Format.fprintf ppf "%.2fs flap %.2fs" at duration
  | Partition { at } -> Format.fprintf ppf "%.2fs partition" at
  | Heal { at } -> Format.fprintf ppf "%.2fs heal" at
  | Brownout { at; duration; bandwidth } ->
      Format.fprintf ppf "%.2fs brownout %.2fs @%.0fB/s" at duration bandwidth
  | Burst_loss { at; duration; params } ->
      Format.fprintf ppf "%.2fs burst-loss %.2fs (bad len %.1f)" at duration
        (1. /. params.Channel.p_bad_to_good)
  | Corrupt_storm { at; duration; corruption } ->
      Format.fprintf ppf "%.2fs corrupt-storm %.2fs p=%.2f" at duration corruption

let pp ppf plan =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_event ppf plan

let apply engine plan targets =
  List.iter
    (fun tgt ->
      let baseline = tgt.get () in
      let impair at mutate =
        ignore (Engine.at engine ~time:at (fun () -> tgt.set (mutate (tgt.get ()))))
      and restore at =
        ignore (Engine.at engine ~time:at (fun () -> tgt.set baseline))
      in
      List.iter
        (function
          | Flap { at; duration } ->
              impair at (fun c -> { c with Channel.loss = 1.0 });
              restore (at +. duration)
          | Partition { at } -> impair at (fun c -> { c with Channel.loss = 1.0 })
          | Heal { at } -> restore at
          | Brownout { at; duration; bandwidth } ->
              impair at (fun c -> { c with Channel.bandwidth = Some bandwidth });
              restore (at +. duration)
          | Burst_loss { at; duration; params } ->
              impair at (fun c -> { c with Channel.burst = Some params });
              restore (at +. duration)
          | Corrupt_storm { at; duration; corruption } ->
              impair at (fun c -> { c with Channel.corruption });
              restore (at +. duration))
        plan)
    targets

let random rng ~horizon ?(events = 6) () =
  let episode i =
    (* Spread start times over the horizon, keep every episode short
       relative to its slot so the link is mostly up. *)
    let slot = horizon /. Float.of_int events in
    let at = (Float.of_int i +. Bitkit.Rng.float rng *. 0.5) *. slot in
    let duration = (0.1 +. (Bitkit.Rng.float rng *. 0.3)) *. slot in
    match Bitkit.Rng.int rng 4 with
    | 0 -> Flap { at; duration }
    | 1 ->
        Brownout { at; duration; bandwidth = 2_000. +. Bitkit.Rng.float rng *. 8_000. }
    | 2 ->
        let burst_len = 2. +. Bitkit.Rng.float rng *. 6. in
        let loss = 0.05 +. (Bitkit.Rng.float rng *. 0.15) in
        let p_bad_to_good = 1. /. burst_len in
        Burst_loss
          { at; duration;
            params =
              { Channel.p_good_to_bad = loss *. p_bad_to_good /. (1. -. loss);
                p_bad_to_good; loss_good = 0.; loss_bad = 1. } }
    | _ -> Corrupt_storm { at; duration; corruption = 0.02 +. Bitkit.Rng.float rng *. 0.1 }
  in
  List.init events episode @ [ Heal { at = horizon } ]
