(** Sharded parallel simulation — N private {!Engine}s, one OCaml
    domain each, exchanging cross-shard events through deterministic
    {!Conduit}s under a conservative (Chandy–Misra) safe-window rule.

    Each round, the shards agree on the earliest queued event time [m]
    anywhere; every shard then runs independently to
    [min (m +. lookahead) until], because no cross-shard message can be
    timestamped earlier than [m +. lookahead]. Conduits are drained only
    at round barriers, in a fixed shard order, so the event order inside
    every shard — and hence the whole simulation — is a pure function of
    the scenario and seed, never of domain scheduling. A sharded run is
    bit-identical to the [shards = 1] run of the same scenario (the
    property {!Test_scale} enforces, the same way the wheel backend is
    held to the heap's event stream). *)

type t

val create :
  ?seed:int -> ?backend:Engine.backend -> ?lookahead:float -> shards:int ->
  unit -> t
(** [create ~shards ()] builds [shards] engines (engine [i] seeded
    [seed + i]) and a full conduit matrix. [lookahead] (default [1e-3])
    must be positive, finite, and no larger than the propagation delay
    of any cross-shard link — {!Transport.Fabric.create_sharded}
    validates that. [shards = 1] degenerates to a plain single-engine
    run with no domains and no conduits. *)

val shards : t -> int
val engine : t -> int -> Engine.t
val lookahead : t -> float

val now : t -> float
(** The common virtual clock: max over shard clocks (all equal after
    {!run} returns with a finite [until]). *)

val events_fired : t -> int
(** Total events executed, summed over shards. *)

val pending : t -> int
(** Scheduled events summed over shards, plus conduit backlog. *)

val post : t -> src:int -> dst:int -> time:float -> (unit -> unit) -> unit
(** Schedule [fn] at absolute time [time] on shard [dst], from code
    running on shard [src]: same shard goes straight to {!Engine.at},
    cross-shard goes through the conduit (so [time] must be at least
    sender-clock [+ lookahead]). *)

val run : ?until:float -> t -> unit
(** Advance all shards to [until] (or drain everything, if omitted).
    Spawns [shards - 1] worker domains and joins them before returning,
    so between calls the caller may freely inspect any shard's state.
    An exception raised inside any shard aborts the round protocol and
    is re-raised here. *)
