(** Unreliable point-to-point channels.

    A channel models one direction of a link: it delays, drops, duplicates,
    corrupts and reorders messages according to its configuration. The
    payload type is polymorphic so the same channel serves the data link
    (bit strings) and the transport experiments (byte strings); corruption
    is applied through a user-supplied [corrupt] function since only the
    caller knows the payload representation. *)

(** Two-state Gilbert–Elliott burst-loss model: the channel walks between
    a good and a bad state once per transmission and drops with the
    current state's loss rate. Equal average loss to an i.i.d. channel,
    but concentrated in bursts of mean length [1 /. p_bad_to_good]. *)
type gilbert_elliott = {
  p_good_to_bad : float;
  p_bad_to_good : float;
  loss_good : float;
  loss_bad : float;
}

type config = {
  delay : float;        (** propagation delay, seconds *)
  jitter : float;       (** uniform extra delay in [0, jitter) *)
  loss : float;         (** i.i.d. drop probability *)
  duplication : float;  (** duplicate probability *)
  corruption : float;   (** corruption probability *)
  reorder : float;      (** probability of an extra reordering delay *)
  reorder_extra : float;(** reordering delay magnitude *)
  bandwidth : float option; (** bytes/second serialisation rate, if modelled *)
  marking : float;      (** ECN-style congestion-mark probability *)
  burst : gilbert_elliott option;
      (** burst loss, composed with [loss] (either can drop) *)
}

val ideal : config
(** 1 ms delay, no impairments. *)

val lossy : float -> config
(** [lossy p] is {!ideal} with loss probability [p]. *)

val burst_lossy : loss:float -> burst_len:float -> config
(** [burst_lossy ~loss ~burst_len] is {!ideal} with a Gilbert–Elliott
    process whose stationary loss rate equals [loss] but arrives in
    bursts of mean length [burst_len] (loss-free good state, total loss
    in the bad state) — the equal-average comparison E18 benches. *)

val harsh : config
(** 5% loss, 2% duplication, 5% reorder — a stress configuration. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable bytes_sent : int;
}

type 'a t

val create :
  Engine.t ->
  config ->
  ?size:('a -> int) ->
  ?corrupt:(Bitkit.Rng.t -> 'a -> 'a) ->
  ?mark:('a -> 'a) ->
  ?tracer:Tracer.t ->
  ?label:string ->
  ?rng:Bitkit.Rng.t ->
  ?schedule:(after:float -> (unit -> unit) -> unit) ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [create engine config ~deliver ()] makes a channel whose received
    messages are passed to [deliver]. [size] (default: 0) is used for the
    bandwidth model and statistics; [corrupt] (default: identity) mutates a
    message chosen for corruption; [mark] (default: identity) applies an
    ECN-style congestion mark to messages chosen with probability
    [marking] — an AQM that signals instead of dropping.

    When [tracer] is given, each delivered message records two spans on
    track [label] (default ["channel"]): [channel.queue], covering
    serialisation plus the wait behind earlier messages on the link (only
    when a [bandwidth] is modelled), and [channel.prop], the propagation
    delay that follows. Both use explicit timestamps taken at send time,
    so tracing adds no engine events and cannot perturb determinism.

    [rng] gives the channel a private random stream in place of the
    engine's. Every send draws from the stream (impairment coins and the
    jitter draw fire even on an ideal link), so per-link seeded streams
    make each channel's behaviour independent of global event interleave
    — the property that lets the sharded fabric replay the exact
    single-engine outcome.

    [schedule] overrides how deliveries are scheduled ([Engine.schedule]
    on the channel's engine by default): a sharded fabric substitutes a
    closure that posts the delivery thunk to the destination shard's
    conduit. The [delivered] statistic is bumped inside the thunk, so it
    mutates destination-side state only. *)

(** [send ?loan t msg] consumes an RNG draw sequence independent of
    [loan], so pooled and unpooled runs fire identical schedules.

    [loan] says [msg] views the given pool slot and transfers one
    reference to the channel: every scheduled delivery that still aliases
    the slot (i.e. was not replaced by a corruption/marking copy) retains
    it and releases right after its [deliver] returns, and the
    transferred reference is dropped when [send] returns. Loans are
    rejected on cross-shard channels ([?schedule]): the release would run
    on the wrong domain — copy out of the slot before crossing. *)
val send : ?loan:Bitkit.Pool.t * int -> 'a t -> 'a -> unit
val stats : 'a t -> stats
val set_config : 'a t -> config -> unit
(** Change impairments mid-run (e.g. to simulate a link failure with
    [loss = 1.0] and later restore it). *)

val config : 'a t -> config

val corrupt_string : Bitkit.Rng.t -> string -> string
(** Flip one random bit of a byte string (helper for [?corrupt]). *)

val corrupt_slice : Bitkit.Rng.t -> Bitkit.Slice.t -> Bitkit.Slice.t
(** Flip one random bit of a wire slice. The result is freshly owned —
    the original buffer (possibly shared with a duplicate in flight) is
    never mutated. *)

val corrupt_bits : Bitkit.Rng.t -> Bitkit.Bitseq.t -> Bitkit.Bitseq.t
(** Flip one random bit of a bit string. *)
