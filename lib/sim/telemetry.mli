(** Continuous telemetry: bounded-ring time series over the simulation.

    One instance collects named {e sources} — closures returning flat
    [(key, value)] readings — and, on every {!tick} whose virtual
    timestamp has advanced by at least [interval] since the previous
    sample, records one {!sample}: the per-source {e deltas} of counter
    sources, the raw values of gauge sources, both split into a
    deterministic and a nondeterministic half.  Ticks are driven from
    slice boundaries of the soak loop (single engine) or from shard
    barriers (all domains joined), always in virtual time, so the
    deterministic half of a series is a pure function of (scenario,
    seed): summing per-shard instances pointwise ({!merged_deterministic})
    reproduces the single-engine series bit for bit.

    Keys containing [".gc."] or starting with ["gc."] (the
    {!Sublayer.Alloc} counters, [Gc.quick_stat] readings) are routed to
    the nondeterministic half automatically: real allocation differs
    across shard counts and machines even when the event schedule does
    not.

    Sampling only reads — it never schedules events or draws from any
    RNG — so telemetry-on and telemetry-off runs fire identical event
    schedules. *)

type sample = {
  ts : float;                   (** virtual time of the sample *)
  det : (string * int) list;    (** deterministic keys, name-sorted *)
  nondet : (string * int) list; (** gc/allocation keys, name-sorted *)
}

type t

val create : ?label:string -> ?capacity:int -> ?interval:float -> unit -> t
(** [capacity] bounds the ring (default 4096 samples; older samples are
    evicted and counted by {!dropped}).  [interval] (default [0.] =
    every tick) is the minimum virtual time between samples. *)

val label : t -> string
val interval : t -> float

(** {1 Sources}

    Readings must be cheap and side-effect-free.  Counter sources are
    cumulative: each sample records the delta since the previous sample
    (first sample counts from the values at registration).  Gauge
    sources are instantaneous: each sample records them as read.  Keys
    are prefixed ["<source>.<key>"].  [det:false] routes the whole
    source to the nondeterministic half (for readings that are stable
    within one configuration but not across shard counts, like
    per-shard trace-ring drops); [gc] keys route there regardless. *)

val add_counters :
  t -> ?det:bool -> name:string -> (unit -> (string * int) list) -> unit

val add_gauges :
  t -> ?det:bool -> name:string -> (unit -> (string * int) list) -> unit

val add_gc : t -> unit
(** Built-in [Gc.quick_stat] source (nondeterministic): counter deltas
    [gc.minor_words], [gc.promoted_words], [gc.major_words],
    [gc.minor_collections], [gc.major_collections] and the gauge
    [gc.heap_words]. *)

(** {1 Sampling} *)

val tick : t -> now:float -> unit
(** Record a sample if [now] is at least [interval] past the previous
    sample's timestamp (always records the first time). *)

val sample_now : t -> now:float -> unit
(** Record a sample unconditionally (end-of-run flush). *)

val samples : t -> sample list
(** Retained samples, oldest first. *)

val last_sample : t -> sample option
val length : t -> int
val recorded : t -> int
(** Samples ever recorded (monotonic). *)

val dropped : t -> int
val capacity : t -> int
val clear : t -> unit
(** Forget retained samples and re-anchor counter baselines at the next
    reading; [recorded]/[dropped] reset. *)

val deterministic_series : t -> (float * (string * int) list) list
(** The reproducible half: [(ts, det)] per sample, oldest first. *)

val merged_deterministic : t list -> (float * (string * int) list) list
(** Pointwise sum of several instances' deterministic series (one per
    shard, all ticked at the same barrier times): samples are matched by
    rank, keys unioned, values summed, timestamps required equal.
    Raises [Invalid_argument] on mismatched sample counts or
    timestamps. *)

(** {1 Export} *)

val to_json : t -> string
(** [{"label":…,"interval":…,"dropped":…,"samples":[{"ts":…,
    "values":{…},"gc":{…}},…]}]. *)

val to_csv : t -> string
(** Long format, one reading per line: [ts,key,value] with a header —
    loads straight into any plotting tool. *)

val chrome_counter_events : ?pid:int -> t -> string list
(** Chrome [trace_event] counter-track records (["ph":"C"], microsecond
    timestamps, one event per sample per key, plus a [process_name]
    metadata record naming the track after {!label}) ready to splice
    into {!Tracer.to_chrome_json}'s [?extra] — the counters then render
    as tracks alongside the span trace in Perfetto. [pid] defaults to
    1000, past the tracer's track pids; pass distinct values to splice
    several instances. *)
