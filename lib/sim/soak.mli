(** Chaos soak harness.

    Drives a seeded simulation through a fault schedule in bounded slices
    of virtual time, checking caller-supplied safety invariants at every
    slice and liveness at the end. The harness is stack-agnostic: the
    protocol stacks under test (data link, routed network, transport) are
    reached only through closures, so one harness soaks them all.

    Determinism contract: a report is a pure function of (seed, scenario
    construction), so running the same scenario twice must produce equal
    reports — {!reproducible} asserts exactly that. *)

type report = {
  sname : string;
  vtime : float;        (** virtual time when the run ended *)
  events_fired : int;   (** engine events executed *)
  pending : int;        (** events still scheduled at the end *)
  finished : bool;      (** the [finished] predicate held before [until] *)
  violations : string list;
      (** invariant failures, oldest first, deduplicated *)
  samples : (float * (string * int) list) list;
      (** periodic stats samples [(vtime, snapshot)], oldest first — a
          ["pending"] entry (the engine's O(1) live-timer count, the leak
          telltale) followed by whatever the caller's [sample] closure
          returned that period *)
  flights : (string * string list) list;
      (** flight-recorder dumps, one [(violation, spans)] pair per
          distinct invariant violation up to [flight_cap], oldest
          violation first, spans oldest first (empty when no [tracer]
          was passed or no violation occurred) *)
  flight_cap : int;
      (** maximum number of dumps this run was allowed to capture; when
          [List.length flights = flight_cap], later violations went
          un-dumped (they are still in [violations]) *)
  verdicts : (string * int * int) list;
      (** per-sublayer conformance verdicts [(sublayer, checked,
          violated)] from the caller's [?verdicts] hook (typically
          [Monitor.Runtime.verdicts]), evaluated once when the run ends;
          empty when no hook was passed *)
  drops : (string * int) list;
      (** how much of the run's own observability was lost to bounded
          rings: [("tracer", n)] when a [tracer] was passed,
          [("events", n)] for the [events] log, one
          [("telemetry:<label>", n)] per telemetry instance, then
          whatever the [drops] hook returned. Zero entries are kept —
          "nothing dropped" is itself a result — but {!pp_report} only
          prints the non-zero ones. *)
}

val pp_report : Format.formatter -> report -> unit

val ok : report -> bool
(** Finished, no violations, and the engine quiesced ([pending = 0]). *)

type driver = {
  d_now : unit -> float;
  d_run : until:float -> unit;
  d_events : unit -> int;
  d_pending : unit -> int;
}
(** What the soak loop needs from whatever advances virtual time — a
    single {!Engine} or a {!Shard} group. *)

val engine_driver : Engine.t -> driver
val shard_driver : Shard.t -> driver

val run_driver :
  ?step:float ->
  ?until:float ->
  ?invariant:(unit -> string option) ->
  ?quiesce:bool ->
  ?sample:(unit -> (string * int) list) ->
  ?sample_every:int ->
  ?tracer:Tracer.t ->
  ?flight_n:int ->
  ?flight_cap:int ->
  ?verdicts:(unit -> (string * int * int) list) ->
  ?events:Events.t ->
  ?telemetry:Telemetry.t list ->
  ?on_slice:(float -> unit) ->
  ?drops:(unit -> (string * int) list) ->
  name:string ->
  driver:driver ->
  finished:(unit -> bool) ->
  unit ->
  report
(** Generalisation of {!run} over a {!driver}; {!run} is the
    [engine_driver] instance. *)

val run :
  ?step:float ->
  ?until:float ->
  ?invariant:(unit -> string option) ->
  ?quiesce:bool ->
  ?sample:(unit -> (string * int) list) ->
  ?sample_every:int ->
  ?tracer:Tracer.t ->
  ?flight_n:int ->
  ?flight_cap:int ->
  ?verdicts:(unit -> (string * int * int) list) ->
  ?events:Events.t ->
  ?telemetry:Telemetry.t list ->
  ?on_slice:(float -> unit) ->
  ?drops:(unit -> (string * int) list) ->
  name:string ->
  engine:Engine.t ->
  finished:(unit -> bool) ->
  unit ->
  report
(** [run ~name ~engine ~finished ()] advances [engine] in slices of
    [step] (default 0.5) virtual seconds until [finished ()] or virtual
    time [until] (default 120), evaluating [invariant] after every slice.
    A [Some msg] result is recorded as a violation (deduplicated); the
    run keeps driving, so every distinct failure the scenario produces is
    reported, not just the first.

    When [quiesce] is true (default), the remaining queue is drained
    after finishing — timers a correct stack no longer needs — and the
    leftover [pending] count is reported.

    [sample] (e.g. a [Sublayer.Stats] snapshot thunk — the closure keeps
    this library free of a dependency on the stats module) is evaluated
    every [sample_every]-th slice (default 1) and the [(vtime, result)]
    pairs land in the report's [samples], so a regression can be
    localised to the slice where its counters diverged.  Samples are
    part of the report, so they must be deterministic for
    {!reproducible} scenarios.

    When [tracer] is given, the run doubles as a flight recorder: each
    distinct invariant violation freezes the last [flight_n] (default 32)
    spans into the report's [flights], up to [flight_cap] (default 8)
    dumps per run — preferring spans whose track appears in the violation
    message, so each dump follows the offending connection.

    [verdicts] is evaluated once, after the run (and quiesce drain)
    completes, and its result lands verbatim in the report — the hook for
    runtime protocol monitors to publish per-sublayer checked/violated
    counts next to the invariant sections. Reports stay structurally
    comparable, so the hook must be deterministic for {!reproducible}
    scenarios.

    [telemetry] instances are {!Telemetry.tick}ed at every slice
    boundary (and once more after the quiesce drain) at the current
    virtual time, so their sample timestamps are the soak's slice grid —
    pass every per-shard instance for a sharded run. [on_slice] fires at
    the same boundaries (live dashboards hook here). [events] and the
    soak's own [tracer]/[telemetry] rings surface their drop counts in
    the report's [drops], after which the [drops] hook may append
    scenario-specific ones. *)

val reproducible : (int -> report) -> seed:int -> bool
(** [reproducible scenario ~seed] runs [scenario seed] twice and checks
    the two reports are structurally equal (bit-reproducibility of the
    whole soak, E18's determinism criterion). *)
