(** Hierarchical timing wheel — the engine's default event queue.

    Two levels of [slots] buckets of [tick] seconds (≈1 s and ≈17 min of
    horizon at the defaults), a "front" heap holding already-reached
    ticks in exact [(time, seq)] order, and an overflow heap for timers
    beyond the second level. Schedule and cancel are O(1) for the near
    horizon; the firing order is identical to a binary heap ordered by
    [(time, insertion-seq)], which {!Engine} keeps around as the
    reference backend.

    Cancellation is lazy: a cancelled event stays bucketed (counted by
    the engine-shared [dead_in_heap] ref) until a drain or {!compact}
    sweeps it out. *)

type event = {
  time : float;
  seq : int;
  mutable fn : unit -> unit;
  mutable dead : bool;
  live : int ref;          (** engine-shared count of uncancelled events *)
  dead_in_heap : int ref;  (** engine-shared count of dead-but-queued *)
}

val earlier : event -> event -> bool
(** [(time, seq)] order. *)

(** Binary min-heap on [(time, seq)] — the wheel's front/overflow queues
    and the engine's reference backend. *)
module Eheap : sig
  type t

  val create : ?capacity:int -> unit -> t
  val size : t -> int
  (** Entries, dead included. *)

  val push : t -> event -> unit
  val peek : t -> event option
  val pop : t -> event option
  val iter : t -> (event -> unit) -> unit

  val compact : t -> on_drop:(event -> unit) -> unit
  (** Drop dead entries in place ([on_drop] is called for each) and
      restore the heap property. *)
end

type t

val create : ?tick:float -> ?slots:int -> unit -> t
(** Defaults: 1 ms ticks, 1024 slots per level. *)

val add : t -> event -> unit

val peek : t -> horizon:float -> event option
(** Earliest event whose tick is within [horizon]'s tick (its [time] may
    still exceed [horizon]: same tick, later within the slot — the
    caller compares times). [None] means no event at or before that
    tick. The internal cursor never advances past [horizon]'s tick, so
    bounded peeks do not degrade later near-horizon scheduling. *)

val pop : t -> event option
(** Remove the event the last {!peek} returned. *)

val iter : t -> (event -> unit) -> unit
(** Every queued entry, dead included, in no particular order. *)

val total : t -> int
(** Entries queued, dead included (the compaction trigger input). *)

val compact : t -> unit
(** Sweep dead entries out of every bucket and heap. *)

val compactions : t -> int
