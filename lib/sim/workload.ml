(* Many-flow workload driver: stagger thousands of flow launches over
   virtual time and soak the engine until every flow reports exact
   delivery. Like [Soak], this module is stack-agnostic — the flows are
   reached only through the [ops] closures, so the transport fabric (or
   anything else) can sit on the other side without sim depending on it. *)

type ops = {
  launch : int -> unit;
  flow_finished : int -> bool;
  flow_exact : int -> bool;
}

type report = {
  wname : string;
  flows : int;
  launched : int;
  exact : int;
  live_hwm : int;
  soak : Soak.report;
}

let ok r = Soak.ok r.soak && r.launched = r.flows && r.exact = r.flows

let pp_report ppf r =
  Format.fprintf ppf "%s: %d/%d flows exact (%d launched), live hwm %d | %a"
    r.wname r.exact r.flows r.launched r.live_hwm Soak.pp_report r.soak

(* [flow_finished] is stable once true, so one monotone pointer suffices
   — the finished check stays O(1) amortised over the whole run instead
   of rescanning every flow each slice. *)
let monotone_finished ops flows =
  let done_upto = ref 0 in
  fun () ->
    while !done_upto < flows && ops.flow_finished !done_upto do
      incr done_upto
    done;
    !done_upto = flows

let finish_report ~name ~flows ~launched ops soak =
  let exact = ref 0 in
  for i = 0 to flows - 1 do
    if ops.flow_exact i then incr exact
  done;
  let live_hwm =
    List.fold_left
      (fun acc (_, kvs) ->
        match List.assoc_opt "live" kvs with Some v -> max acc v | None -> acc)
      0 soak.Soak.samples
  in
  { wname = name; flows; launched; exact = !exact; live_hwm; soak }

let run ?(spacing = 0.01) ?(step = 0.5) ?(until = 600.) ?invariant ?tracer
    ?verdicts ?events ?telemetry ?on_slice ?drops ~name ~engine ~flows ops =
  if flows < 0 then invalid_arg "Workload.run: negative flow count";
  let launched = ref 0 in
  let base = Engine.now engine in
  for i = 0 to flows - 1 do
    ignore
      (Engine.at engine ~time:(base +. (float_of_int i *. spacing)) (fun () ->
           incr launched;
           ops.launch i))
  done;
  let finished = monotone_finished ops flows in
  let sample () = [ ("live", Engine.live engine) ] in
  let soak =
    Soak.run ~step ~until ?invariant ?tracer ?verdicts ?events ?telemetry
      ?on_slice ?drops ~sample ~name ~engine ~finished ()
  in
  finish_report ~name ~flows ~launched:!launched ops soak

(* The sharded variant: flow [i]'s launch event is scheduled on the shard
   that owns its client host ([launch_site i] — the fabric knows the
   placement), and the soak loop advances the whole shard group per
   slice. Launch counters are per-shard cells (each written only by its
   own domain) summed after the run; the ["live"] sample is the group
   total, so a [shards = 1] report is structurally identical to a
   multi-shard one. *)
let run_sharded ?(spacing = 0.01) ?(step = 0.5) ?(until = 600.) ?invariant
    ?tracer ?verdicts ?events ?telemetry ?on_slice ?drops ~name ~shard
    ~launch_site ~flows ops =
  if flows < 0 then invalid_arg "Workload.run_sharded: negative flow count";
  let n = Shard.shards shard in
  let launched = Array.make n 0 in
  let base = Shard.now shard in
  for i = 0 to flows - 1 do
    let s = launch_site i in
    if s < 0 || s >= n then
      invalid_arg "Workload.run_sharded: launch_site out of range";
    ignore
      (Engine.at (Shard.engine shard s)
         ~time:(base +. (float_of_int i *. spacing))
         (fun () ->
           launched.(s) <- launched.(s) + 1;
           ops.launch i))
  done;
  let finished = monotone_finished ops flows in
  let sample () = [ ("live", Shard.pending shard) ] in
  let soak =
    Soak.run_driver ~step ~until ?invariant ?tracer ?verdicts ?events
      ?telemetry ?on_slice ?drops ~sample ~name
      ~driver:(Soak.shard_driver shard) ~finished ()
  in
  finish_report ~name ~flows ~launched:(Array.fold_left ( + ) 0 launched) ops
    soak
