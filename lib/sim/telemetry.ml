(* Bounded-ring time series. Sampling is read-only: sources must not
   schedule events or draw from RNGs, so enabling telemetry cannot
   perturb the event schedule. *)

type sample = {
  ts : float;
  det : (string * int) list;
  nondet : (string * int) list;
}

type source = {
  s_name : string;
  s_read : unit -> (string * int) list;
  s_kind : [ `Counter | `Gauge ];
  s_det : bool;
  (* false routes the whole source to the nondeterministic half *)
  mutable s_prev : (string * int) list;
  (* last absolute reading, counter sources only *)
  mutable s_fresh : bool;
  (* baseline not yet taken (set again by [clear]) *)
}

type t = {
  t_label : string;
  t_interval : float;
  t_cap : int;
  t_ring : sample option array;
  mutable t_head : int; (* next write position *)
  mutable t_len : int;
  mutable t_recorded : int;
  mutable t_dropped : int;
  mutable t_last_ts : float;
  mutable t_sources : source list; (* reverse registration order *)
}

let create ?(label = "telemetry") ?(capacity = 4096) ?(interval = 0.) () =
  if capacity <= 0 then invalid_arg "Telemetry.create: capacity must be > 0";
  {
    t_label = label;
    t_interval = interval;
    t_cap = capacity;
    t_ring = Array.make capacity None;
    t_head = 0;
    t_len = 0;
    t_recorded = 0;
    t_dropped = 0;
    t_last_ts = neg_infinity;
    t_sources = [];
  }

let label t = t.t_label
let interval t = t.t_interval

let add_source t ~name ~det kind read =
  t.t_sources <-
    { s_name = name; s_read = read; s_kind = kind; s_det = det; s_prev = [];
      s_fresh = true }
    :: t.t_sources

let add_counters t ?(det = true) ~name read = add_source t ~name ~det `Counter read
let add_gauges t ?(det = true) ~name read = add_source t ~name ~det `Gauge read

let add_gc t =
  add_source t ~name:"gc" ~det:false `Counter (fun () ->
      let s = Gc.quick_stat () in
      [
        ("minor_words", int_of_float s.Gc.minor_words);
        ("promoted_words", int_of_float s.Gc.promoted_words);
        ("major_words", int_of_float s.Gc.major_words);
        ("minor_collections", s.Gc.minor_collections);
        ("major_collections", s.Gc.major_collections);
      ]);
  add_source t ~name:"gc" ~det:false `Gauge (fun () ->
      [ ("heap_words", (Gc.quick_stat ()).Gc.heap_words) ])

(* Keys carrying real-allocation readings are never bit-identical across
   shard counts; route them to the nondeterministic half. *)
let nondet_key key =
  let n = String.length key in
  (n >= 3 && String.sub key 0 3 = "gc.")
  ||
  let rec scan i =
    i + 4 <= n && (String.sub key i 4 = ".gc." || scan (i + 1))
  in
  scan 0

let read_source s =
  let abs = s.s_read () in
  let readings =
    match s.s_kind with
    | `Gauge -> abs
    | `Counter ->
        if s.s_fresh then begin
          s.s_fresh <- false;
          s.s_prev <- abs;
          []
        end
        else
          let prev = s.s_prev in
          s.s_prev <- abs;
          List.filter_map
            (fun (k, v) ->
              let before =
                match List.assoc_opt k prev with Some p -> p | None -> 0
              in
              if v <> before then Some (k, v - before) else None)
            abs
  in
  List.map (fun (k, v) -> (s.s_name ^ "." ^ k, v)) readings

let by_key (a, _) (b, _) = String.compare a b

let record t ~now =
  let det = ref [] and nondet = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun ((k, _) as kv) ->
          if (not s.s_det) || nondet_key k then nondet := kv :: !nondet
          else det := kv :: !det)
        (read_source s))
    (List.rev t.t_sources);
  let sample =
    { ts = now; det = List.sort by_key !det; nondet = List.sort by_key !nondet }
  in
  if t.t_len = t.t_cap then t.t_dropped <- t.t_dropped + 1
  else t.t_len <- t.t_len + 1;
  t.t_ring.(t.t_head) <- Some sample;
  t.t_head <- (t.t_head + 1) mod t.t_cap;
  t.t_recorded <- t.t_recorded + 1;
  t.t_last_ts <- now

let tick t ~now =
  if t.t_last_ts = neg_infinity || now -. t.t_last_ts >= t.t_interval then
    record t ~now

let sample_now t ~now = record t ~now

let samples t =
  let start = (t.t_head - t.t_len + t.t_cap) mod t.t_cap in
  List.init t.t_len (fun i ->
      match t.t_ring.((start + i) mod t.t_cap) with
      | Some s -> s
      | None -> assert false)

let last_sample t =
  if t.t_len = 0 then None
  else t.t_ring.((t.t_head - 1 + t.t_cap) mod t.t_cap)

let length t = t.t_len
let recorded t = t.t_recorded
let dropped t = t.t_dropped
let capacity t = t.t_cap

let clear t =
  Array.fill t.t_ring 0 t.t_cap None;
  t.t_head <- 0;
  t.t_len <- 0;
  t.t_recorded <- 0;
  t.t_dropped <- 0;
  t.t_last_ts <- neg_infinity;
  List.iter
    (fun s ->
      s.s_prev <- [];
      s.s_fresh <- true)
    t.t_sources

let deterministic_series t = List.map (fun s -> (s.ts, s.det)) (samples t)

let merge_values a b =
  (* both name-sorted; union keys, sum values *)
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
        let c = String.compare ka kb in
        if c = 0 then go ta tb ((ka, va + vb) :: acc)
        else if c < 0 then go ta b ((ka, va) :: acc)
        else go a tb ((kb, vb) :: acc)
  in
  go a b []

let merged_deterministic ts =
  match List.map deterministic_series ts with
  | [] -> []
  | first :: rest ->
      List.fold_left
        (fun acc series ->
          if List.length acc <> List.length series then
            invalid_arg "Telemetry.merged_deterministic: sample count mismatch";
          List.map2
            (fun (ta, va) (tb, vb) ->
              if ta <> tb then
                invalid_arg "Telemetry.merged_deterministic: timestamp mismatch";
              (ta, merge_values va vb))
            acc series)
        first rest

(* --- export --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_obj kvs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) kvs)
  ^ "}"

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"label\":\"%s\",\"interval\":%g,\"dropped\":%d,\"samples\":["
       (json_escape t.t_label) t.t_interval t.t_dropped);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"ts\":%g,\"values\":%s,\"gc\":%s}" s.ts
           (json_obj s.det) (json_obj s.nondet)))
    (samples t);
  Buffer.add_string b "]}";
  Buffer.contents b

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "ts,key,value\n";
  List.iter
    (fun s ->
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%g,%s,%d\n" s.ts k v))
        (s.det @ s.nondet))
    (samples t);
  Buffer.contents b

(* The trace_event format specifies integer pids; the default sits well
   past the tracer exporter's track pids (numbered 1..#tracks), so
   spliced counter tracks group under their own process row. The label
   rides in a [process_name] metadata record, as in [chrome_json_of]. *)
let chrome_counter_events ?(pid = 1000) t =
  let meta =
    Printf.sprintf
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
      pid (json_escape t.t_label)
  in
  let events =
    List.concat_map
      (fun s ->
        let us = int_of_float (s.ts *. 1e6) in
        List.map
          (fun (k, v) ->
            Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"args\":{\"value\":%d}}"
              (json_escape k) us pid v)
          (s.det @ s.nondet))
      (samples t)
  in
  meta :: events
