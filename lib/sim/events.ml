type event = { at : float; actor : string; kind : string; detail : string }

let nil = { at = 0.; actor = ""; kind = ""; detail = "" }

type t = {
  ring : event array;
  mutable head : int; (* index of oldest retained event *)
  mutable len : int;
  mutable recorded : int;
  index : (string * string, int ref) Hashtbl.t;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Events.create: capacity must be positive";
  { ring = Array.make capacity nil; head = 0; len = 0; recorded = 0;
    index = Hashtbl.create 64 }

let capacity t = Array.length t.ring

let emit t ~at ~actor ?(detail = "") kind =
  let cap = Array.length t.ring in
  let e = { at; actor; kind; detail } in
  if t.len = cap then begin
    (* Overwrite the oldest slot. *)
    t.ring.(t.head) <- e;
    t.head <- (t.head + 1) mod cap
  end else begin
    t.ring.((t.head + t.len) mod cap) <- e;
    t.len <- t.len + 1
  end;
  t.recorded <- t.recorded + 1;
  let key = (actor, kind) in
  (match Hashtbl.find_opt t.index key with
  | Some r -> incr r
  | None -> Hashtbl.add t.index key (ref 1))

let length t = t.len
let recorded t = t.recorded
let dropped t = t.recorded - t.len

let to_list t =
  let cap = Array.length t.ring in
  List.init t.len (fun i -> t.ring.((t.head + i) mod cap))

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let count t ?actor ~prefix () =
  Hashtbl.fold
    (fun (a, kind) r acc ->
      if
        starts_with ~prefix kind
        && (match actor with None -> true | Some want -> want = a)
      then acc + !r
      else acc)
    t.index 0

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.recorded <- 0;
  Array.fill t.ring 0 (Array.length t.ring) nil;
  Hashtbl.reset t.index

let pp fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "%10.6f %-12s %s%s@\n" e.at e.actor e.kind e.detail)
    (to_list t)
