(* Causal span collector. Self-contained (sim does not see the sublayer
   library): spans are opened/closed by whoever holds the tracer, with
   virtual-time stamps supplied by the caller. Finished spans land in a
   bounded ring (same eviction discipline as [Events]); live spans are
   indexed by id so a span opened on one host can be closed on another
   (cross-host causality without touching any wire format). *)

(* The kill switch is process-wide and read from every shard domain, so
   it is atomic; each shard owns a private tracer instance, so the rings
   themselves are never shared across domains. *)
let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type span = {
  sp_id : int;
  sp_trace : int;  (* 0 = no causal lineage known *)
  sp_parent : int; (* parent span id; 0 = root *)
  sp_track : string;
  sp_sublayer : string;
  sp_name : string;
  sp_start : float;
  mutable sp_end : float;
  mutable sp_detail : string;
}

type t = {
  ring : span option array; (* finished spans, oldest at [head] *)
  mutable head : int;
  mutable len : int;
  mutable recorded : int;
  mutable next_id : int;
  mutable next_trace : int;
  live : (int, span) Hashtbl.t;
  keys : (string, int) Hashtbl.t;
}

let create ?(capacity = 8192) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { ring = Array.make capacity None; head = 0; len = 0; recorded = 0;
    next_id = 1; next_trace = 1; live = Hashtbl.create 64;
    keys = Hashtbl.create 64 }

let capacity t = Array.length t.ring
let length t = t.len
let recorded t = t.recorded
let dropped t = t.recorded - t.len

let fresh_trace t =
  let tr = t.next_trace in
  t.next_trace <- tr + 1;
  tr

let start t ~at ~track ~sublayer ?(trace = 0) ?(parent = 0) name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sp =
    { sp_id = id; sp_trace = trace; sp_parent = parent; sp_track = track;
      sp_sublayer = sublayer; sp_name = name; sp_start = at; sp_end = Float.nan;
      sp_detail = "" }
  in
  Hashtbl.replace t.live id sp;
  id

let push t sp =
  let cap = Array.length t.ring in
  if t.len = cap then begin
    t.ring.(t.head) <- Some sp;
    t.head <- (t.head + 1) mod cap
  end
  else begin
    t.ring.((t.head + t.len) mod cap) <- Some sp;
    t.len <- t.len + 1
  end;
  t.recorded <- t.recorded + 1

let finish t ~at ?detail id =
  match Hashtbl.find_opt t.live id with
  | None -> None
  | Some sp ->
      Hashtbl.remove t.live id;
      sp.sp_end <- at;
      (match detail with Some d -> sp.sp_detail <- d | None -> ());
      push t sp;
      Some sp

let instant t ~at ~track ~sublayer ?(trace = 0) ?(parent = 0) ?(detail = "") name =
  push t
    { sp_id = (let id = t.next_id in t.next_id <- id + 1; id);
      sp_trace = trace; sp_parent = parent; sp_track = track;
      sp_sublayer = sublayer; sp_name = name; sp_start = at; sp_end = at;
      sp_detail = detail }

(* Live spans first; fall back to a newest-first ring scan so lineage
   survives the span finishing. A retransmit of a segment that was
   already delivered (but not yet acked) asks for the trace of a span
   that closed when the first copy arrived — answering [None] here is
   what used to break its lineage. Bounded by the ring, like every other
   lookback in this module. *)
let trace_of t id =
  match Hashtbl.find_opt t.live id with
  | Some sp -> Some sp.sp_trace
  | None ->
      let cap = Array.length t.ring in
      let rec scan i =
        if i >= t.len then None
        else
          match t.ring.((t.head + t.len - 1 - i + cap) mod cap) with
          | Some sp when sp.sp_id = id -> Some sp.sp_trace
          | _ -> scan (i + 1)
      in
      scan 0

(* String-keyed correlation table: a sublayer binds an id (span or trace)
   under a key only it and its peer can reconstruct — e.g. the canonical
   ISN pair plus stream offset — and the peer looks it up on delivery. *)
let bind t key v = Hashtbl.replace t.keys key v
let lookup t key = Hashtbl.find_opt t.keys key
let unbind t key = Hashtbl.remove t.keys key

let spans t =
  let cap = Array.length t.ring in
  List.init t.len (fun i ->
      match t.ring.((t.head + i) mod cap) with
      | Some sp -> sp
      | None -> assert false)

let live_spans t = Hashtbl.fold (fun _ sp acc -> sp :: acc) t.live []

let last t n =
  let all = spans t in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.len <- 0;
  t.recorded <- 0;
  Hashtbl.reset t.live;
  Hashtbl.reset t.keys

let duration sp =
  if Float.is_nan sp.sp_end then 0. else sp.sp_end -. sp.sp_start

let span_to_string sp =
  Printf.sprintf "%10.6f +%.6f %s/%s %s #%d trace=%d%s%s" sp.sp_start
    (duration sp) sp.sp_track sp.sp_sublayer sp.sp_name sp.sp_id sp.sp_trace
    (if sp.sp_parent = 0 then "" else Printf.sprintf " parent=#%d" sp.sp_parent)
    (if sp.sp_detail = "" then "" else " [" ^ sp.sp_detail ^ "]")

(* --- Chrome trace_event export (chrome://tracing / Perfetto) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 || Char.code c >= 0x7F ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us time = int_of_float ((time *. 1e6) +. 0.5)

(* Tracks become processes and sublayers threads, so Perfetto renders one
   swim-lane group per endpoint with one row per sublayer. When
   [clock_sync] is given, every track also carries a ["clock_sync"]
   metadata record naming the same sync domain — all tracks share one
   virtual clock (hosts and shards have no skew in the simulation), and
   the marker states that explicitly so multi-track traces merged from
   several tracers align at t=0 instead of being treated as independent
   clock domains. *)
let chrome_json_of ?clock_sync ?(extra = []) finished =
  let tracks = ref [] in
  let tids = ref [] in
  List.iter
    (fun sp ->
      if not (List.mem sp.sp_track !tracks) then tracks := sp.sp_track :: !tracks;
      let key = (sp.sp_track, sp.sp_sublayer) in
      if not (List.mem key !tids) then tids := key :: !tids)
    finished;
  let tracks = List.sort compare !tracks in
  let tids = List.sort compare !tids in
  let pid_of track =
    let rec go i = function
      | [] -> 0
      | x :: rest -> if x = track then i else go (i + 1) rest
    in
    go 1 tracks
  in
  let tid_of track sublayer =
    let rec go i = function
      | [] -> 0
      | x :: rest -> if x = (track, sublayer) then i else go (i + 1) rest
    in
    go 1 tids
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"traceEvents":[|};
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  List.iter
    (fun track ->
      emit
        (Printf.sprintf
           {|{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"%s"}}|}
           (pid_of track) (json_escape track)))
    tracks;
  List.iter
    (fun (track, sublayer) ->
      emit
        (Printf.sprintf
           {|{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"%s"}}|}
           (pid_of track) (tid_of track sublayer) (json_escape sublayer)))
    tids;
  (match clock_sync with
  | None -> ()
  | Some sync_id ->
      List.iter
        (fun track ->
          emit
            (Printf.sprintf
               {|{"name":"clock_sync","ph":"c","pid":%d,"tid":0,"ts":0,"args":{"sync_id":"%s","issue_ts":0}}|}
               (pid_of track) (json_escape sync_id)))
        tracks);
  (* Complete events sorted by timestamp, so [ts] is non-decreasing on
     every track (a property the exporter test asserts). *)
  let sorted =
    List.stable_sort
      (fun a b ->
        match compare (us a.sp_start) (us b.sp_start) with
        | 0 -> compare a.sp_id b.sp_id
        | c -> c)
      finished
  in
  List.iter
    (fun sp ->
      emit
        (Printf.sprintf
           {|{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":"%s","cat":"%s","args":{"trace":%d,"span":%d,"parent":%d,"detail":"%s"}}|}
           (pid_of sp.sp_track)
           (tid_of sp.sp_track sp.sp_sublayer)
           (us sp.sp_start)
           (max 0 (us sp.sp_end - us sp.sp_start))
           (json_escape sp.sp_name) (json_escape sp.sp_sublayer) sp.sp_trace
           sp.sp_id sp.sp_parent (json_escape sp.sp_detail)))
    sorted;
  (* Pre-serialised records from other exporters — telemetry counter
     tracks, typically — ride along verbatim. *)
  List.iter emit extra;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_chrome_json ?clock_sync ?extra t =
  chrome_json_of ?clock_sync ?extra (spans t)

(* One tracer per shard, merged post-run: each shard's tracks are
   namespaced under its label and every track gets a clock_sync marker in
   the same sync domain, so Perfetto renders the shards as aligned
   process groups on one timeline. *)
let merged_chrome_json ?(clock_sync = "sim-vclock") ?extra tracers =
  let finished =
    List.concat_map
      (fun (label, t) ->
        List.map (fun sp -> { sp with sp_track = label ^ "/" ^ sp.sp_track })
          (spans t))
      tracers
  in
  chrome_json_of ~clock_sync ?extra finished

(* --- Packet biography: every span of one trace id, as text --- *)

let biography t ~trace =
  let mine =
    List.filter (fun sp -> sp.sp_trace = trace) (spans t)
    @ List.filter (fun sp -> sp.sp_trace = trace) (live_spans t)
  in
  let mine =
    List.sort
      (fun a b ->
        match compare a.sp_start b.sp_start with
        | 0 -> compare a.sp_id b.sp_id
        | c -> c)
      mine
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "trace %d (%d spans):\n" trace (List.length mine));
  List.iter
    (fun sp ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (span_to_string sp);
      if Float.is_nan sp.sp_end then Buffer.add_string buf " (open)";
      Buffer.add_char buf '\n')
    mine;
  Buffer.contents buf

let pp_span fmt sp = Format.pp_print_string fmt (span_to_string sp)
