open Sublayer.Machine

(* Each layer machine wraps its codec with an owned pair of counters —
   the T3 separation applied to observability: the framer's drop count
   lives in the framer, invisible to its neighbours. *)

module Error_detection = struct
  let name = "error-detection"

  type t = {
    det : Detector.t;
    pool : Bitkit.Pool.t option;
    sp : Sublayer.Span.ctx;
    protected : Sublayer.Stats.counter;
    verified : Sublayer.Stats.counter;
    corrupt : Sublayer.Stats.counter;
    copied_trailer : Sublayer.Stats.counter;
  }

  type up_req = Bitkit.Wirebuf.t
  type up_ind = Bitkit.Slice.t
  type down_req = Bitkit.Slice.t
  type down_ind = Bitkit.Slice.t
  type timer = Nothing.t

  let make ?stats ?span ?pool det =
    let scope =
      match stats with
      | Some s -> s
      | None -> Sublayer.Stats.unregistered "detector"
    in
    {
      det;
      pool;
      sp = Option.value span ~default:(Sublayer.Span.disabled name);
      protected = Sublayer.Stats.counter scope "frames_protected";
      verified = Sublayer.Stats.counter scope "frames_verified";
      corrupt = Sublayer.Stats.counter scope "frames_corrupt";
      copied_trailer = Sublayer.Stats.counter scope "copied_trailer_bytes";
    }

  (* Protection appends a trailer over the whole PDU, so this sublayer is
     the transmit path's forced materialisation point: the accumulated
     wirebuf is emitted once, here, with the check bits. Verification is
     the opposite — computed in place over the frame view, returning a
     narrowed slice.

     With a pool, the emit target is a loaned slot and the trailer is the
     chain digest, folded over the header chain and payload in place — no
     intermediate flat string exists, and [copied_trailer] records only
     the trailer bytes this sublayer itself writes. The loan is released
     at end of event; by then framing has moved the bytes into the bit
     domain. *)
  let handle_up_req t pdu =
    Sublayer.Stats.incr t.protected;
    Sublayer.Span.instant t.sp "protect";
    let oh = t.det.Detector.overhead_bytes in
    let pooled =
      match t.pool with
      | None -> None
      | Some pool ->
          let n = Bitkit.Wirebuf.emit_cost pdu in
          let slot = Bitkit.Pool.loan pool ~len:(n + oh) in
          if slot = Bitkit.Pool.no_slot then None
          else begin
            let b = Bitkit.Pool.buffer pool in
            let off = Bitkit.Pool.off pool slot in
            Bitkit.Wirebuf.emit_into pdu b off;
            t.det.Detector.chain_digest_into pdu b (off + n);
            Sublayer.Stats.add t.copied_trailer oh;
            Bitkit.Pool.defer_release pool slot;
            Some (Bitkit.Pool.slice pool slot ~len:(n + oh))
          end
    in
    match pooled with
    | Some frame -> (t, [ Down frame ])
    | None ->
        (* Charge the known emit size directly — bracketing the
           process-global counter would over-count copies other shards
           make concurrently. *)
        Sublayer.Stats.add t.copied_trailer (Bitkit.Wirebuf.copy_cost pdu);
        let emitted = Bitkit.Wirebuf.to_string pdu in
        (t, [ Down (Bitkit.Slice.of_string (t.det.Detector.protect emitted)) ])

  let handle_down_ind t pdu =
    match t.det.Detector.verify_slice pdu with
    | Some payload ->
        Sublayer.Stats.incr t.verified;
        Sublayer.Span.instant t.sp "verify";
        (t, [ Up payload ])
    | None ->
        Sublayer.Stats.incr t.corrupt;
        Sublayer.Span.instant t.sp ~detail:"dropped" "corrupt";
        (t, [ Note "corrupt frame dropped" ])

  let handle_timer _ t = Nothing.absurd t
end

module Framing = struct
  let name = "framing"

  type t = {
    framer : Framer.t;
    sp : Sublayer.Span.ctx;
    framed : Sublayer.Stats.counter;
    deframed : Sublayer.Stats.counter;
    malformed : Sublayer.Stats.counter;
  }

  type up_req = Bitkit.Slice.t
  type up_ind = Bitkit.Slice.t
  type down_req = Bitkit.Bitseq.t
  type down_ind = Bitkit.Bitseq.t
  type timer = Nothing.t

  let make ?stats ?span framer =
    let scope =
      match stats with
      | Some s -> s
      | None -> Sublayer.Stats.unregistered "framer"
    in
    {
      framer;
      sp = Option.value span ~default:(Sublayer.Span.disabled name);
      framed = Sublayer.Stats.counter scope "frames_framed";
      deframed = Sublayer.Stats.counter scope "frames_deframed";
      malformed = Sublayer.Stats.counter scope "frames_malformed";
    }

  (* Crossing into the bit domain is an inherent materialisation: for a
     whole-string view (the unpooled detector's output) [to_string] is
     free; a pool-slot view pays its length here, once — the data path's
     one remaining byte copy when pooling is on. *)
  let handle_up_req t pdu =
    Sublayer.Stats.incr t.framed;
    Sublayer.Span.instant t.sp "frame";
    (t, [ Down (t.framer.Framer.frame (Bitkit.Slice.to_string pdu)) ])

  let handle_down_ind t bits =
    match t.framer.Framer.deframe bits with
    | Some pdu ->
        Sublayer.Stats.incr t.deframed;
        Sublayer.Span.instant t.sp "deframe";
        (* Deframing just materialised bytes out of the bit domain;
           wrapping them as a whole-string view costs nothing, and every
           sublayer above narrows this one buffer. *)
        (t, [ Up (Bitkit.Slice.of_string pdu) ])
    | None ->
        Sublayer.Stats.incr t.malformed;
        Sublayer.Span.instant t.sp ~detail:"dropped" "malformed";
        (t, [ Note "malformed frame dropped" ])

  let handle_timer _ t = Nothing.absurd t
end

module Line_coding = struct
  let name = "line-coding"

  type t = {
    code : Linecode.t;
    sp : Sublayer.Span.ctx;
    encoded : Sublayer.Stats.counter;
    decoded : Sublayer.Stats.counter;
    illegal : Sublayer.Stats.counter;
  }

  type up_req = Bitkit.Bitseq.t
  type up_ind = Bitkit.Bitseq.t
  type down_req = Bitkit.Bitseq.t
  type down_ind = Bitkit.Bitseq.t
  type timer = Nothing.t

  let make ?stats ?span code =
    let scope =
      match stats with
      | Some s -> s
      | None -> Sublayer.Stats.unregistered "linecode"
    in
    {
      code;
      sp = Option.value span ~default:(Sublayer.Span.disabled name);
      encoded = Sublayer.Stats.counter scope "blocks_encoded";
      decoded = Sublayer.Stats.counter scope "blocks_decoded";
      illegal = Sublayer.Stats.counter scope "illegal_symbols";
    }

  let handle_up_req t bits =
    Sublayer.Stats.incr t.encoded;
    Sublayer.Span.instant t.sp "encode";
    (t, [ Down (t.code.Linecode.encode bits) ])

  let handle_down_ind t symbols =
    match t.code.Linecode.decode symbols with
    | Some bits ->
        Sublayer.Stats.incr t.decoded;
        Sublayer.Span.instant t.sp "decode";
        (t, [ Up bits ])
    | None ->
        Sublayer.Stats.incr t.illegal;
        Sublayer.Span.instant t.sp ~detail:"dropped" "illegal";
        (t, [ Note "illegal line symbols dropped" ])

  let handle_timer _ t = Nothing.absurd t
end
