(** Composition of the four data-link sublayers of Figure 2 into a running
    endpoint: error recovery / error detection / framing / line coding,
    over a raw bit channel. Every mechanism is chosen independently —
    the replaceability the paper claims for sublayered designs. *)

type spec = {
  arq : (module Arq.S);
  arq_config : Arq.config;
  detector : Detector.t;
  framer : Framer.t;
  linecode : Linecode.t;
}

val default_spec : spec
(** Go-back-N (window 8), CRC-32, HDLC framing, NRZ. *)

type endpoint

val send : endpoint -> string -> unit
(** Queue one payload for reliable delivery to the peer. *)

val from_wire : endpoint -> Bitkit.Bitseq.t -> unit
(** Inject received symbols (wire this to a channel's [deliver]). *)

val arq_stats : endpoint -> Arq.stats
(** Snapshot of the endpoint's ARQ counters (fresh record per call). *)

val is_idle : endpoint -> bool

val gave_up : endpoint -> bool
(** The ARQ sender exhausted its retries and declared the link dead —
    or the {!Sublayer.Link} under an {!over_link} endpoint died. *)

val endpoint :
  Sim.Engine.t ->
  ?trace:Sim.Trace.t ->
  ?ins:Sublayer.Instrument.t ->
  name:string ->
  spec ->
  transmit:(Bitkit.Bitseq.t -> unit) ->
  deliver:(string -> unit) ->
  endpoint
(** [ins] bundles the instruments ({!Sublayer.Instrument}). With
    [ins.stats], the four sublayers register their counters under
    scopes [arq], [detector], [framer] and [linecode] (level-prefixed
    when nested). With [ins.tracer], each sublayer opens spans on its
    track [name]: ARQ "flight" spans with retransmission children,
    instant markers for the stateless codecs below. With [ins.monitors],
    conformance probes on the ARQ⇄detector, detector⇄framer and
    framer⇄linecode interfaces check every crossing (keyed by [name]).
    With [ins.telemetry] (and [ins.stats]), the registry becomes a
    sampling source under [name] and {!Sublayer.Alloc} cells are
    installed at every seam. With [ins.pool], the detector protects
    frames in loaned arena slots (see {!Layers.Error_detection.make});
    the engine drains deferred releases after every event. *)

val over_link :
  Sim.Engine.t ->
  ?trace:Sim.Trace.t ->
  ?ins:Sublayer.Instrument.t ->
  name:string ->
  spec ->
  link:Bitkit.Bitseq.t Sublayer.Link.t ->
  deliver:(string -> unit) ->
  endpoint
(** Like {!endpoint}, but sitting on a {!Sublayer.Link}: transmits into
    it, attaches itself as its receiver, and treats link death as ARQ
    give-up ({!gave_up} turns true, the stack is halted). *)

(** A ready-made duplex link between two endpoints over impaired
    channels, accumulating what each side delivered. *)
type link = {
  a : endpoint;
  b : endpoint;
  a_to_b : Bitkit.Bitseq.t Sim.Channel.t;
  b_to_a : Bitkit.Bitseq.t Sim.Channel.t;
  received_at_a : string Queue.t;
  received_at_b : string Queue.t;
}

val link :
  Sim.Engine.t ->
  ?trace:Sim.Trace.t ->
  ?stats_a:Sublayer.Stats.registry ->
  ?stats_b:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?telemetry:Sim.Telemetry.t ->
  ?pool:Bitkit.Pool.t ->
  Sim.Channel.config ->
  spec ->
  link
(** The two endpoints get tracks ["A"] and ["B"] on the shared [tracer]
    (and, when [pool] is given, share one arena — both run on the same
    engine, so single-domain pooling is sound). *)

val transfer :
  Sim.Engine.t ->
  ?deadline:float ->
  link ->
  string list ->
  string list
(** [transfer engine link payloads] sends every payload from [a], runs the
    simulation until [a] is idle (or [deadline]), and returns what [b]
    received, in order. *)
