type config = { window : int; rto : float; max_retries : int }

let default_config = { window = 8; rto = 0.25; max_retries = 30 }

type pdu = Data of int * string | Ack of int

let seqspace = Sublayer.Seqspace.create ~width:16

let encode_pdu pdu =
  let w = Bitkit.Bitio.Writer.create () in
  (match pdu with
  | Data (seq, payload) ->
      Bitkit.Bitio.Writer.uint8 w 0;
      Bitkit.Bitio.Writer.uint16 w (seq land 0xFFFF);
      Bitkit.Bitio.Writer.bytes w payload
  | Ack seq ->
      Bitkit.Bitio.Writer.uint8 w 1;
      Bitkit.Bitio.Writer.uint16 w (seq land 0xFFFF));
  Bitkit.Bitio.Writer.contents w

let decode_pdu s =
  match
    let r = Bitkit.Bitio.Reader.of_string s in
    let kind = Bitkit.Bitio.Reader.uint8 r in
    let seq = Bitkit.Bitio.Reader.uint16 r in
    match kind with
    | 0 -> Some (Data (seq, Bitkit.Bitio.Reader.rest r))
    | 1 -> if Bitkit.Bitio.Reader.remaining_bits r = 0 then Some (Ack seq) else None
    | _ -> None
  with
  | v -> v
  | exception Bitkit.Bitio.Reader.Truncated -> None

(* The zero-copy wire crossing: data PDUs start the packet's wirebuf
   (the detector below appends its trailer at materialisation), and
   received PDUs decode as views of the frame — the payload only becomes
   an owned string when the ARQ delivers it to the application. *)

let write_data_header seq w =
  Bitkit.Bitio.Writer.uint8 w 0;
  Bitkit.Bitio.Writer.uint16 w (seq land 0xFFFF)

let data_wirebuf ~seq payload =
  Bitkit.Wirebuf.push
    (Bitkit.Wirebuf.of_string payload)
    ~owner:"arq" (write_data_header seq)

let ack_wirebuf seq =
  Bitkit.Wirebuf.push Bitkit.Wirebuf.empty ~owner:"arq" (fun w ->
      Bitkit.Bitio.Writer.uint8 w 1;
      Bitkit.Bitio.Writer.uint16 w (seq land 0xFFFF))

type rx = Rx_data of int * Bitkit.Slice.t | Rx_ack of int

let decode_pdu_slice sl =
  match
    let r = Bitkit.Bitio.Reader.of_slice sl in
    let kind = Bitkit.Bitio.Reader.uint8 r in
    let seq = Bitkit.Bitio.Reader.uint16 r in
    match kind with
    | 0 -> Some (Rx_data (seq, Bitkit.Bitio.Reader.rest_slice r))
    | 1 -> if Bitkit.Bitio.Reader.remaining_bits r = 0 then Some (Rx_ack seq) else None
    | _ -> None
  with
  | v -> v
  | exception Bitkit.Bitio.Reader.Truncated -> None

(* Frame-identity correlation: a key both ends of the link can
   reconstruct from the frame content alone — wire sequence number,
   payload length and a cheap FNV-1a payload digest. The sender binds it
   to the flight span in the shared tracer; the receiver takes it at
   first delivery, so the deliver instant lands inside the sending
   flight's trace. Collisions (the two directions carrying an identical
   payload at an identical sequence number simultaneously) merely
   mis-parent one best-effort trace link. *)

let digest_string s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let digest_slice sl =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bitkit.Slice.length sl - 1 do
    h := (!h lxor Char.code (Bitkit.Slice.get sl i)) * 0x01000193 land 0x3FFFFFFF
  done;
  !h

let frame_key ~seq ~len ~digest = Printf.sprintf "dlf:%d:%d:%d" seq len digest

type stats = {
  mutable data_sent : int;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable delivered : int;
}

let fresh_stats () =
  { data_sent = 0; retransmissions = 0; acks_sent = 0; delivered = 0 }

(* Counter bundle shared by the three ARQ variants.  The hot path bumps
   these [Stats] cells; [snapshot] rebuilds the legacy [stats] record for
   callers that read fields directly. *)
type counters = {
  c_data_sent : Sublayer.Stats.counter;
  c_retransmissions : Sublayer.Stats.counter;
  c_acks_sent : Sublayer.Stats.counter;
  c_delivered : Sublayer.Stats.counter;
  c_give_ups : Sublayer.Stats.counter;
}

let counters_in sc =
  {
    c_data_sent = Sublayer.Stats.counter sc "data_sent";
    c_retransmissions = Sublayer.Stats.counter sc "retransmissions";
    c_acks_sent = Sublayer.Stats.counter sc "acks_sent";
    c_delivered = Sublayer.Stats.counter sc "delivered";
    c_give_ups = Sublayer.Stats.counter sc "give_ups";
  }

let fresh_counters () = counters_in (Sublayer.Stats.unregistered "arq")

let snapshot c =
  let open Sublayer.Stats in
  {
    data_sent = value c.c_data_sent;
    retransmissions = value c.c_retransmissions;
    acks_sent = value c.c_acks_sent;
    delivered = value c.c_delivered;
  }

module type S = sig
  include
    Sublayer.Machine.S
      with type up_req = string
       and type up_ind = string
       and type down_req = Bitkit.Wirebuf.t
       and type down_ind = Bitkit.Slice.t

  val initial : ?stats:Sublayer.Stats.scope -> ?span:Sublayer.Span.ctx -> config -> t

  val stats : t -> stats
  (** Snapshot of the machine's counters (fresh record per call). *)

  val idle : t -> bool
  val gave_up : t -> bool
end
