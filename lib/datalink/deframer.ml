module Bitseq = Bitkit.Bitseq

type t = {
  scheme : Stuffing.Rule.scheme;
  flag : Bitseq.t;
  mutable buf : Bitseq.t;
  mutable synced : bool;  (* an opening flag has been consumed *)
  frames : Sublayer.Stats.counter;
  noise : Sublayer.Stats.counter;
}

let create ?(scheme = Stuffing.Rule.hdlc) ?stats () =
  let sc =
    match stats with
    | Some sc -> sc
    | None -> Sublayer.Stats.unregistered "deframer"
  in
  { scheme; flag = Bitseq.of_bool_list scheme.Stuffing.Rule.flag; buf = Bitseq.empty;
    synced = false;
    frames = Sublayer.Stats.counter sc "frames_seen";
    noise = Sublayer.Stats.counter sc "noise_discarded" }

let buffered_bits t = Bitseq.length t.buf
let frames_seen t = Sublayer.Stats.value t.frames
let noise_discarded t = Sublayer.Stats.value t.noise

let reset t =
  t.buf <- Bitseq.empty;
  t.synced <- false

let decode_body t body =
  if Bitseq.length body = 0 then None (* idle between flags *)
  else begin
    match Stuffing.Fast.unstuff t.scheme.Stuffing.Rule.rule body with
    | Some bits when Bitseq.length bits land 7 = 0 -> Some (Bitseq.to_string bits)
    | Some _ | None -> None
  end

let push t chunk =
  t.buf <- Bitseq.append t.buf chunk;
  let flen = Bitseq.length t.flag in
  let out = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    if not t.synced then begin
      match Bitseq.find_sub ~pattern:t.flag t.buf with
      | Some i ->
          (* discard noise before the opening flag, consume the flag *)
          let start = i + flen in
          t.buf <- Bitseq.sub t.buf start (Bitseq.length t.buf - start);
          t.synced <- true;
          progress := true
      | None ->
          (* keep only a flag's worth of tail; everything earlier can
             never become part of a flag *)
          let n = Bitseq.length t.buf in
          if n > flen - 1 then t.buf <- Bitseq.sub t.buf (n - flen + 1) (flen - 1)
    end
    else begin
      match Bitseq.find_sub ~pattern:t.flag t.buf with
      | Some j ->
          let body = Bitseq.sub t.buf 0 j in
          (* the closing flag also opens the next frame *)
          let start = j + flen in
          t.buf <- Bitseq.sub t.buf start (Bitseq.length t.buf - start);
          (match decode_body t body with
          | Some payload ->
              Sublayer.Stats.incr t.frames;
              out := payload :: !out
          | None -> if Bitseq.length body > 0 then Sublayer.Stats.incr t.noise);
          progress := true
      | None -> ()
    end
  done;
  List.rev !out
