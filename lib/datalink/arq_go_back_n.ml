(** Go-back-N ARQ: a window of outstanding data PDUs, one timer, full
    window retransmission on timeout. Acknowledgements carry the next
    expected sequence number (cumulative). *)

open Sublayer.Machine

let name = "arq-gbn"

type t = {
  cfg : Arq.config;
  ctrs : Arq.counters;
  sp : Sublayer.Span.ctx;
  base : int;
  next : int;
  buf : (int * string) list;  (** unacked, ascending seq, = [base..next) *)
  queue : string list;
  rx_expected : int;
  retries : int;  (* consecutive timeouts with no window slide *)
  dead : bool;    (* max_retries exhausted; backlog was discarded *)
}

type up_req = string
type up_ind = string
type down_req = Bitkit.Wirebuf.t
type down_ind = Bitkit.Slice.t
type timer = Rto

let initial ?stats ?span cfg =
  let ctrs =
    match stats with
    | Some scope -> Arq.counters_in scope
    | None -> Arq.fresh_counters ()
  in
  let sp = Option.value span ~default:(Sublayer.Span.disabled name) in
  { cfg; ctrs; sp; base = 0; next = 0; buf = []; queue = [];
    rx_expected = 0; retries = 0; dead = false }

let stats t = Arq.snapshot t.ctrs
let idle t = t.buf = [] && t.queue = []
let gave_up t = t.dead

let wire seq = Sublayer.Seqspace.wrap Arq.seqspace seq
let skey seq = "s:" ^ string_of_int seq

let fkey seq payload =
  Arq.frame_key ~seq:(wire seq) ~len:(String.length payload)
    ~digest:(Arq.digest_string payload)

let transmit t seq payload =
  Sublayer.Stats.incr t.ctrs.Arq.c_data_sent;
  Down (Arq.data_wirebuf ~seq:(wire seq) payload)

(* Admit queued payloads while the window has room. The timer is (re)armed
   iff anything is outstanding. *)
let rec admit t acts =
  match t.queue with
  | payload :: rest when t.next - t.base < t.cfg.window ->
      let seq = t.next in
      let t =
        { t with next = t.next + 1; buf = t.buf @ [ (seq, payload) ]; queue = rest }
      in
      if Sublayer.Span.active t.sp then begin
        Sublayer.Span.open_ t.sp ~key:(skey seq)
          ~trace:(Sublayer.Span.fresh_trace t.sp) "flight";
        Sublayer.Span.bind t.sp (fkey seq payload)
          (Sublayer.Span.id_of t.sp ~key:(skey seq))
      end;
      admit t (transmit t seq payload :: acts)
  | _ -> (t, List.rev acts)

let with_timer t acts =
  if t.buf = [] then (t, acts @ [ Cancel_timer Rto ])
  else (t, acts @ [ Set_timer (Rto, t.cfg.rto) ])

let handle_up_req t payload =
  if t.dead then (t, [ Note "link declared dead; payload dropped" ])
  else begin
    let t = { t with queue = t.queue @ [ payload ] } in
    let t, acts = admit t [] in
    if acts = [] then (t, []) else with_timer t acts
  end

let handle_ack t seq16 =
  let a = Sublayer.Seqspace.reconstruct Arq.seqspace ~reference:t.base seq16 in
  if a <= t.base || a > t.next then (t, [ Note "stale ack" ])
  else begin
    let old_base = t.base in
    let acked, buf = List.partition (fun (s, _) -> s < a) t.buf in
    let t = { t with base = a; buf; retries = 0 } in
    if Sublayer.Span.active t.sp then begin
      for s = old_base to a - 1 do
        Sublayer.Span.close t.sp ~key:(skey s) ~detail:"acked" ()
      done;
      (* Release unconsumed frame-identity bindings (delivery may have
         been suppressed as a duplicate, never taking the key). *)
      List.iter (fun (s, p) -> Sublayer.Span.unbind t.sp (fkey s p)) acked
    end;
    let t, acts = admit t [] in
    with_timer t acts
  end

let handle_data t seq16 payload =
  let seq = Sublayer.Seqspace.reconstruct Arq.seqspace ~reference:t.rx_expected seq16 in
  let t, deliveries =
    if seq = t.rx_expected then begin
      Sublayer.Stats.incr t.ctrs.Arq.c_delivered;
      let detail = "seq=" ^ string_of_int seq in
      if Sublayer.Span.active t.sp then begin
        (* Correlate with the sending flight via the frame's identity:
           the peer bound the flight span under a key derivable from the
           frame content alone. *)
        let fid =
          Sublayer.Span.take t.sp
            (Arq.frame_key ~seq:seq16 ~len:(Bitkit.Slice.length payload)
               ~digest:(Arq.digest_slice payload))
        in
        if fid <> 0 then
          Sublayer.Span.instant t.sp
            ~trace:(Sublayer.Span.trace_of_id t.sp ~id:fid)
            ~parent:fid ~detail "deliver"
        else Sublayer.Span.instant t.sp ~detail "deliver"
      end;
      (* Delivery is the app boundary: the payload view materialises here. *)
      ( { t with rx_expected = t.rx_expected + 1 },
        [ Up (Bitkit.Slice.to_string payload) ] )
    end
    else (t, [ Note "out-of-order data discarded" ])
  in
  Sublayer.Stats.incr t.ctrs.Arq.c_acks_sent;
  (t, deliveries @ [ Down (Arq.ack_wirebuf (wire t.rx_expected)) ])

let handle_down_ind t pdu_bytes =
  match Arq.decode_pdu_slice pdu_bytes with
  | None -> (t, [ Note "undecodable pdu dropped" ])
  | Some (Arq.Rx_data (seq16, payload)) -> handle_data t seq16 payload
  | Some (Arq.Rx_ack seq16) -> handle_ack t seq16

let handle_timer t Rto =
  if t.buf = [] then (t, [])
  else if t.retries >= t.cfg.max_retries then begin
    Sublayer.Stats.incr t.ctrs.Arq.c_give_ups;
    Sublayer.Span.close_all t.sp ~detail:"dead" ();
    if Sublayer.Span.active t.sp then
      List.iter (fun (s, p) -> Sublayer.Span.unbind t.sp (fkey s p)) t.buf;
    ( { t with buf = []; queue = []; dead = true },
      [ Note "give up: max_retries exhausted" ] )
  end
  else begin
    let t = { t with retries = t.retries + 1 } in
    let resends =
      List.concat_map
        (fun (seq, payload) ->
          Sublayer.Stats.incr t.ctrs.Arq.c_retransmissions;
          Sublayer.Span.child t.sp ~key:(skey seq) ~detail:"rto" "retx";
          [ Note "retransmit"; transmit t seq payload ])
        t.buf
    in
    (t, resends @ [ Set_timer (Rto, t.cfg.rto) ])
  end
