(** Continuous-stream deframing.

    {!Framer} assumes the channel delivers one frame's bits at a time; a
    real bit-synchronous link delivers an unpunctuated stream. This is
    the receiver-side framing sublayer for that case: feed it arbitrary
    chunks of bits and it scans for flag-delimited, stuffed frames —
    tolerating leading noise, inter-frame idle bits, and back-to-back
    frames that share a single flag (as HDLC permits). Bodies that do not
    unstuff to a whole number of bytes are discarded as noise. *)

type t

val create : ?scheme:Stuffing.Rule.scheme -> ?stats:Sublayer.Stats.scope -> unit -> t
(** Default scheme: classic HDLC.  When [stats] is given, the counters
    [frames_seen] and [noise_discarded] register there. *)

val push : t -> Bitkit.Bitseq.t -> string list
(** Feed bits; returns the payloads of all frames completed by this
    chunk, in stream order. *)

val buffered_bits : t -> int
(** Bits held waiting for a closing flag. *)

val frames_seen : t -> int
val noise_discarded : t -> int
(** Flag-delimited regions that failed unstuffing or byte alignment. *)

val reset : t -> unit
