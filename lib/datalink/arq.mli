(** The error-recovery (reliable delivery) sublayer of the data link
    (paper §2.1: "reliable delivery adds a header with sequence numbers to
    guarantee delivery using retransmissions, but depends on error
    detection").

    Three classic mechanisms — stop-and-wait, go-back-N and selective
    repeat — implement the single {!S} signature, so experiment E14 swaps
    them behind the same interface. All are full duplex and deliver each
    accepted payload exactly once, in order, assuming the sublayer below
    only ever delivers uncorrupted PDUs (the error-detection sublayer's
    contract). *)

type config = {
  window : int;  (** sender window (ignored by stop-and-wait) *)
  rto : float;   (** retransmission timeout, seconds *)
  max_retries : int;
      (** consecutive timeouts without forward progress before the
          sender declares the link dead and discards its backlog *)
}

val default_config : config

(** Wire format owned by this sublayer: a kind byte, a 16-bit sequence
    number, and for data PDUs the payload. *)
type pdu =
  | Data of int * string  (** [Data (seq16, payload)] *)
  | Ack of int            (** cumulative for go-back-N, individual else *)

val encode_pdu : pdu -> string
val decode_pdu : string -> pdu option

(** {2 Zero-copy wire crossing}

    On transmit the ARQ starts the packet's {!Bitkit.Wirebuf} — its
    header is pushed in front of the payload view without copying either
    — and on receive it decodes a {!Bitkit.Slice} of the verified frame,
    materialising the payload only at delivery. [encode_pdu]/[decode_pdu]
    remain as the reference string codec (and property tests check the
    two agree). *)

val data_wirebuf : seq:int -> string -> Bitkit.Wirebuf.t
val ack_wirebuf : int -> Bitkit.Wirebuf.t

type rx =
  | Rx_data of int * Bitkit.Slice.t  (** payload as a view of the frame *)
  | Rx_ack of int

val decode_pdu_slice : Bitkit.Slice.t -> rx option

(** {2 Frame-identity correlation}

    A key both ends of a link can reconstruct from a data frame alone
    (wire sequence number, payload length, cheap payload digest). The
    sender binds it to the flight span in the shared tracer; the
    receiver {!Sublayer.Span.take}s it at first delivery so the deliver
    instant joins the sending flight's trace instead of starting an
    orphan one. *)

val digest_string : string -> int
val digest_slice : Bitkit.Slice.t -> int
(** FNV-1a over the payload bytes, truncated to 30 bits; the string and
    slice variants agree on equal byte content. *)

val frame_key : seq:int -> len:int -> digest:int -> string

(** Statistics every implementation maintains, for efficiency benches.
    Since the observability PR this is a read-only snapshot of the
    machine's {!counters}; the mutable fields remain only for
    compatibility with existing readers. *)
type stats = {
  mutable data_sent : int;        (** data PDUs sent, incl. retransmissions *)
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable delivered : int;
}

val fresh_stats : unit -> stats

(** The counter bundle every ARQ variant owns and bumps on its hot path
    (fields exposed so the sibling implementations can reach them). *)
type counters = {
  c_data_sent : Sublayer.Stats.counter;
  c_retransmissions : Sublayer.Stats.counter;
  c_acks_sent : Sublayer.Stats.counter;
  c_delivered : Sublayer.Stats.counter;
  c_give_ups : Sublayer.Stats.counter;
}

val counters_in : Sublayer.Stats.scope -> counters
(** Find-or-create the five counters in [scope]. *)

val fresh_counters : unit -> counters
(** Counters in a private unregistered scope. *)

val snapshot : counters -> stats

module type S = sig
  include
    Sublayer.Machine.S
      with type up_req = string
       and type up_ind = string
       and type down_req = Bitkit.Wirebuf.t
       and type down_ind = Bitkit.Slice.t

  val initial : ?stats:Sublayer.Stats.scope -> ?span:Sublayer.Span.ctx -> config -> t
  (** [initial ?stats ?span cfg]: when [stats] is given, the machine
      registers its counters there (names [data_sent], [retransmissions],
      [acks_sent], [delivered], [give_ups]). When [span] is given, each
      admitted payload gets a "flight" span (send → ack) with
      retransmissions recorded as child spans of the original send. *)

  val stats : t -> stats
  val idle : t -> bool
  (** No unacknowledged or queued data (transfer complete). *)

  val gave_up : t -> bool
  (** The sender exhausted [max_retries] consecutive timeouts and
      dropped its backlog; the link should be considered down. *)
end

val seqspace : Sublayer.Seqspace.t
(** The 16-bit space shared by all implementations. *)
