(** Selective-repeat ARQ: per-sequence timers, individual acknowledgements,
    receiver-side reordering buffer. Only lost PDUs are retransmitted. *)

open Sublayer.Machine

let name = "arq-sr"

type t = {
  cfg : Arq.config;
  ctrs : Arq.counters;
  sp : Sublayer.Span.ctx;
  base : int;
  next : int;
  buf : (int * string * bool) list;  (** (seq, payload, acked), ascending *)
  queue : string list;
  rx_expected : int;
  rx_buf : (int * Bitkit.Slice.t * int) list;
      (** (seq, payload view, sending-flight span id) of received frames,
          ascending seq; the frame identity is taken at arrival because
          the sender's binding may be released (ack received) before a
          gap fills and the frame is delivered *)
  retries : int;  (* consecutive timeouts with no ack activity *)
  dead : bool;    (* max_retries exhausted; backlog was discarded *)
}

type up_req = string
type up_ind = string
type down_req = Bitkit.Wirebuf.t
type down_ind = Bitkit.Slice.t
type timer = Rto of int

let initial ?stats ?span cfg =
  let ctrs =
    match stats with
    | Some scope -> Arq.counters_in scope
    | None -> Arq.fresh_counters ()
  in
  let sp = Option.value span ~default:(Sublayer.Span.disabled name) in
  { cfg; ctrs; sp; base = 0; next = 0; buf = []; queue = [];
    rx_expected = 0; rx_buf = []; retries = 0; dead = false }

let stats t = Arq.snapshot t.ctrs
let idle t = t.buf = [] && t.queue = []
let gave_up t = t.dead

let wire seq = Sublayer.Seqspace.wrap Arq.seqspace seq
let skey seq = "s:" ^ string_of_int seq

let fkey seq payload =
  Arq.frame_key ~seq:(wire seq) ~len:(String.length payload)
    ~digest:(Arq.digest_string payload)

let transmit t seq payload =
  Sublayer.Stats.incr t.ctrs.Arq.c_data_sent;
  Down (Arq.data_wirebuf ~seq:(wire seq) payload)

let rec admit t acts =
  match t.queue with
  | payload :: rest when t.next - t.base < t.cfg.window ->
      let seq = t.next in
      let t =
        { t with next = t.next + 1; buf = t.buf @ [ (seq, payload, false) ]; queue = rest }
      in
      if Sublayer.Span.active t.sp then begin
        Sublayer.Span.open_ t.sp ~key:(skey seq)
          ~trace:(Sublayer.Span.fresh_trace t.sp) "flight";
        Sublayer.Span.bind t.sp (fkey seq payload)
          (Sublayer.Span.id_of t.sp ~key:(skey seq))
      end;
      admit t (Set_timer (Rto seq, t.cfg.rto) :: transmit t seq payload :: acts)
  | _ -> (t, List.rev acts)

let handle_up_req t payload =
  if t.dead then (t, [ Note "link declared dead; payload dropped" ])
  else admit { t with queue = t.queue @ [ payload ] } []

let handle_ack t seq16 =
  let a = Sublayer.Seqspace.reconstruct Arq.seqspace ~reference:t.base seq16 in
  if a < t.base || a >= t.next then (t, [ Note "stale ack" ])
  else begin
    (* Individual acks: close the one sequence this ack covers (repeats
       for an already-acked seq find no live span and are no-ops). *)
    Sublayer.Span.close t.sp ~key:(skey a) ~detail:"acked" ();
    if Sublayer.Span.active t.sp then
      (* Release the frame-identity binding if delivery never took it. *)
      List.iter
        (fun (s, p, _) -> if s = a then Sublayer.Span.unbind t.sp (fkey s p))
        t.buf;
    let buf =
      List.map (fun (s, p, acked) -> if s = a then (s, p, true) else (s, p, acked)) t.buf
    in
    (* Slide the window past the acknowledged prefix. *)
    let rec slide base = function
      | (s, _, true) :: rest when s = base -> slide (base + 1) rest
      | rest -> (base, rest)
    in
    let base, buf = slide t.base buf in
    let t = { t with base; buf; retries = 0 } in
    let t, acts = admit t [] in
    (t, (Cancel_timer (Rto a) :: acts))
  end

let handle_data t seq16 payload =
  let seq = Sublayer.Seqspace.reconstruct Arq.seqspace ~reference:t.rx_expected seq16 in
  Sublayer.Stats.incr t.ctrs.Arq.c_acks_sent;
  let ack = Down (Arq.ack_wirebuf seq16) in
  if seq < t.rx_expected then (t, [ Note "duplicate data"; ack ])
  else begin
    (* Insert into the reordering buffer (dedup), then deliver any
       in-order prefix. *)
    let rx_buf =
      if List.exists (fun (s, _, _) -> s = seq) t.rx_buf then t.rx_buf
      else begin
        let fid =
          if Sublayer.Span.active t.sp then
            Sublayer.Span.take t.sp
              (Arq.frame_key ~seq:seq16 ~len:(Bitkit.Slice.length payload)
                 ~digest:(Arq.digest_slice payload))
          else 0
        in
        List.sort
          (fun (a, _, _) (b, _, _) -> Int.compare a b)
          ((seq, payload, fid) :: t.rx_buf)
      end
    in
    let rec drain expected rx_buf delivered =
      match rx_buf with
      | (s, p, fid) :: rest when s = expected ->
          drain (expected + 1) rest ((s, p, fid) :: delivered)
      | _ -> (expected, rx_buf, List.rev delivered)
    in
    let rx_expected, rx_buf, delivered = drain t.rx_expected rx_buf [] in
    Sublayer.Stats.add t.ctrs.Arq.c_delivered (List.length delivered);
    if Sublayer.Span.active t.sp then
      List.iter
        (fun (s, _, fid) ->
          (* Join the sending flight's trace via the frame identity. *)
          let detail = "seq=" ^ string_of_int s in
          if fid <> 0 then
            Sublayer.Span.instant t.sp
              ~trace:(Sublayer.Span.trace_of_id t.sp ~id:fid)
              ~parent:fid ~detail "deliver"
          else Sublayer.Span.instant t.sp ~detail "deliver")
        delivered;
    (* Delivery is the app boundary: buffered views materialise here. *)
    let deliveries =
      List.map (fun (_, p, _) -> Up (Bitkit.Slice.to_string p)) delivered
    in
    ({ t with rx_expected; rx_buf }, deliveries @ [ ack ])
  end

let handle_down_ind t pdu_bytes =
  match Arq.decode_pdu_slice pdu_bytes with
  | None -> (t, [ Note "undecodable pdu dropped" ])
  | Some (Arq.Rx_data (seq16, payload)) -> handle_data t seq16 payload
  | Some (Arq.Rx_ack seq16) -> handle_ack t seq16

let handle_timer t (Rto seq) =
  match List.find_opt (fun (s, _, acked) -> s = seq && not acked) t.buf with
  | None -> (t, [])
  | Some _ when t.retries >= t.cfg.max_retries ->
      (* Cancel the surviving per-sequence timers so the engine can
         quiesce; the one for [seq] just fired and is gone already. *)
      let cancels =
        List.filter_map
          (fun (s, _, acked) -> if acked || s = seq then None else Some (Cancel_timer (Rto s)))
          t.buf
      in
      Sublayer.Stats.incr t.ctrs.Arq.c_give_ups;
      Sublayer.Span.close_all t.sp ~detail:"dead" ();
      if Sublayer.Span.active t.sp then
        List.iter
          (fun (s, p, acked) ->
            if not acked then Sublayer.Span.unbind t.sp (fkey s p))
          t.buf;
      ( { t with buf = []; queue = []; dead = true },
        Note "give up: max_retries exhausted" :: cancels )
  | Some (_, payload, _) ->
      Sublayer.Stats.incr t.ctrs.Arq.c_retransmissions;
      Sublayer.Span.child t.sp ~key:(skey seq) ~detail:"rto" "retx";
      ( { t with retries = t.retries + 1 },
        [ Note "retransmit"; transmit t seq payload; Set_timer (Rto seq, t.cfg.rto) ] )
