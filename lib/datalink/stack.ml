module Machine = Sublayer.Machine
module Runtime = Sublayer.Runtime

type spec = {
  arq : (module Arq.S);
  arq_config : Arq.config;
  detector : Detector.t;
  framer : Framer.t;
  linecode : Linecode.t;
}

let default_spec =
  {
    arq = (module Arq_go_back_n);
    arq_config = Arq.default_config;
    detector = Detector.crc Bitkit.Crc.crc32;
    framer = Framer.hdlc Stuffing.Rule.hdlc;
    linecode = Linecode.nrz;
  }

module I = Sublayer.Instrument

type endpoint = {
  send : string -> unit;
  from_wire : Bitkit.Bitseq.t -> unit;
  arq_stats : unit -> Arq.stats;
  is_idle : unit -> bool;
  arq_gave_up : unit -> bool;
  halt : unit -> unit;
  mutable killed : bool;  (* the link below died under us *)
}

let send t payload = t.send payload
let from_wire t bits = t.from_wire bits
let arq_stats t = t.arq_stats ()
let is_idle t = t.is_idle ()
let gave_up t = t.killed || t.arq_gave_up ()

let endpoint engine ?trace ?(ins = I.none) ~name spec ~transmit ~deliver =
  let stats = ins.I.stats and monitors = ins.I.monitors
  and telemetry = ins.I.telemetry and pool = ins.I.pool in
  (* The detector's loans live until the end of the event that framed
     them; the engine hook is what frees them. Attaching per endpoint is
     idempotent in effect — draining an empty deferred list is a no-op. *)
  Option.iter
    (fun p -> Sim.Engine.after_event engine (fun () -> Bitkit.Pool.drain_deferred p))
    pool;
  let name = I.tagged_name ins name in
  let module A = (val spec.arq : Arq.S) in
  let module Lower =
    Machine.Stack (Layers.Framing) (Machine.Stack (Conform.P_frm_line) (Layers.Line_coding))
  in
  let module Middle =
    Machine.Stack (Layers.Error_detection) (Machine.Stack (Conform.P_det_frm) (Lower))
  in
  let module Full = Machine.Stack (A) (Machine.Stack (Conform.P_arq_det) (Middle)) in
  let module R = Runtime.Make (Full) in
  (* One scope per sublayer, so the registry reports [arq.*],
     [detector.*], [framer.*] and [linecode.*] side by side (level-
     prefixed when the stack is nested). *)
  let in_scope sub = I.scope ins sub in
  let now () = Sim.Engine.now engine in
  let sp sub = I.span ins ~now ~track:name sub in
  (match (telemetry, stats) with
  | Some tele, Some reg -> Sublayer.Stats.telemetry_source tele ~name reg
  | _ -> ());
  let acell sub = I.alloc_cell ins sub in
  let arq_c = acell "arq" and det_c = acell "detector" and frm_c = acell "framer"
  and line_c = acell "linecode" and app_c = acell "app"
  and wire_c = acell "wire" in
  let alloc =
    { Sublayer.Runtime.al_top = arq_c; al_bottom = line_c; al_app = app_c;
      al_wire = wire_c;
      al_timer =
        (* Only the ARQ owns timers; every other slot is [Nothing.t]. *)
        (fun (tm : Full.timer) ->
        match tm with
        | Either.Left _ -> arq_c
        | Either.Right (Either.Left _) -> .
        | Either.Right (Either.Right (Either.Left _)) -> .
        | Either.Right (Either.Right (Either.Right (Either.Left _))) -> .
        | Either.Right (Either.Right (Either.Right (Either.Right (Either.Left _)))) ->
            .
        | Either.Right
            (Either.Right (Either.Right (Either.Right (Either.Right (Either.Left _)))))
          ->
            .
        | Either.Right
            (Either.Right (Either.Right (Either.Right (Either.Right (Either.Right _)))))
          ->
            .);
    }
  in
  let st =
    ( A.initial ?stats:(in_scope "arq") ?span:(sp "arq") spec.arq_config,
      ( Conform.arq_det ~alloc:(arq_c, det_c) monitors ~key:name ~variant:A.name
          ~window:spec.arq_config.Arq.window,
        ( Layers.Error_detection.make ?stats:(in_scope "detector")
            ?span:(sp "detector") ?pool spec.detector,
          ( Conform.det_frm ~alloc:(det_c, frm_c) monitors ~key:name,
            ( Layers.Framing.make ?stats:(in_scope "framer") ?span:(sp "framer")
                spec.framer,
              ( Conform.frm_line ~alloc:(frm_c, line_c) monitors ~key:name,
                Layers.Line_coding.make ?stats:(in_scope "linecode")
                  ?span:(sp "linecode") spec.linecode ) ) ) ) ) )
  in
  let r = R.create engine ?trace ~alloc ~name ~transmit ~deliver st in
  {
    send = R.from_above r;
    from_wire = R.from_below r;
    arq_stats = (fun () -> A.stats (fst (R.state r)));
    is_idle = (fun () -> A.idle (fst (R.state r)));
    arq_gave_up = (fun () -> A.gave_up (fst (R.state r)));
    halt = (fun () -> R.halt r);
    killed = false;
  }

(* The Link-seam variant: transmit into any [Sublayer.Link], receive as
   its attached callback, and treat link death as ARQ give-up (the
   sender must stop retransmitting into a dead path). *)
let over_link engine ?trace ?ins ~name spec ~link ~deliver =
  let ep =
    endpoint engine ?trace ?ins ~name spec
      ~transmit:(fun bits -> Sublayer.Link.transmit link bits)
      ~deliver
  in
  Sublayer.Link.attach link (fun bits -> ep.from_wire bits);
  Sublayer.Link.on_death link (fun () ->
      ep.halt ();
      ep.killed <- true);
  ep

type link = {
  a : endpoint;
  b : endpoint;
  a_to_b : Bitkit.Bitseq.t Sim.Channel.t;
  b_to_a : Bitkit.Bitseq.t Sim.Channel.t;
  received_at_a : string Queue.t;
  received_at_b : string Queue.t;
}

let bit_channel engine config ~deliver =
  Sim.Channel.create engine config
    ~size:(fun bits -> (Bitkit.Bitseq.length bits + 7) / 8)
    ~corrupt:Sim.Channel.corrupt_bits ~deliver ()

let link engine ?trace ?stats_a ?stats_b ?tracer ?monitors ?telemetry ?pool
    config spec =
  let received_at_a = Queue.create () in
  let received_at_b = Queue.create () in
  (* Each endpoint sits on a [Sublayer.Link]; the channels deliver into
     the links, the links into the endpoints. *)
  let link_a = Sublayer.Link.make ~id:"A" () in
  let link_b = Sublayer.Link.make ~id:"B" () in
  let a_to_b =
    bit_channel engine config ~deliver:(fun bits -> Sublayer.Link.deliver link_b bits)
  in
  let b_to_a =
    bit_channel engine config ~deliver:(fun bits -> Sublayer.Link.deliver link_a bits)
  in
  Sublayer.Link.set_transmit link_a (fun bits -> Sim.Channel.send a_to_b bits);
  Sublayer.Link.set_transmit link_b (fun bits -> Sim.Channel.send b_to_a bits);
  let ins side = I.v ?stats:side ?tracer ?monitors ?telemetry ?pool () in
  let a =
    over_link engine ?trace ~ins:(ins stats_a) ~name:"A" spec ~link:link_a
      ~deliver:(fun payload -> Queue.add payload received_at_a)
  in
  let b =
    over_link engine ?trace ~ins:(ins stats_b) ~name:"B" spec ~link:link_b
      ~deliver:(fun payload -> Queue.add payload received_at_b)
  in
  { a; b; a_to_b; b_to_a; received_at_a; received_at_b }

let transfer engine ?(deadline = 3600.) link payloads =
  List.iter (fun p -> link.a.send p) payloads;
  (* Run until the sender has nothing outstanding; timers keep the event
     queue non-empty, so poll in bounded slices of virtual time. *)
  let rec drive () =
    if (not (link.a.is_idle ())) && Sim.Engine.now engine < deadline then begin
      Sim.Engine.run ~until:(Sim.Engine.now engine +. 1.0) engine;
      drive ()
    end
  in
  drive ();
  (* Let the final acknowledgements drain. *)
  Sim.Engine.run ~until:(Sim.Engine.now engine +. 5.0) engine;
  List.of_seq (Queue.to_seq link.received_at_b)
