(** The stateless data-link sublayers as {!Sublayer.Machine.S} machines,
    ready for {!Sublayer.Machine.Stack} composition. Each machine's state
    is its mechanism value ({!Detector.t}, {!Framer.t}, {!Linecode.t})
    plus its own counters, so replacing the mechanism is replacing the
    state — the surrounding stack code never changes (test T3) — and
    every sublayer's drop/pass counts stay private to it. *)

module Error_detection : sig
  include
    Sublayer.Machine.S
      with type up_req = Bitkit.Wirebuf.t
       and type up_ind = Bitkit.Slice.t
       and type down_req = Bitkit.Slice.t
       and type down_ind = Bitkit.Slice.t
       and type timer = Sublayer.Machine.Nothing.t

  val make :
    ?stats:Sublayer.Stats.scope ->
    ?span:Sublayer.Span.ctx ->
    ?pool:Bitkit.Pool.t ->
    Detector.t ->
    t
  (** Counters: [frames_protected], [frames_verified], [frames_corrupt],
      [copied_trailer_bytes]. With [span], every crossing is an instant
      marker ([protect], [verify], [corrupt]).

      With [pool], protection emits into a loaned slot and writes the
      detector's chain digest in place — the transmit path allocates no
      intermediate flat packet, and [copied_trailer_bytes] counts only
      the trailer itself. The loan is deferred-released; the owning
      engine must drain the pool via {!Sim.Engine.after_event} (pool
      exhaustion falls back to the legacy heap path, counted as an
      overrun). *)
end

module Framing : sig
  include
    Sublayer.Machine.S
      with type up_req = Bitkit.Slice.t
       and type up_ind = Bitkit.Slice.t
       and type down_req = Bitkit.Bitseq.t
       and type down_ind = Bitkit.Bitseq.t
       and type timer = Sublayer.Machine.Nothing.t

  val make : ?stats:Sublayer.Stats.scope -> ?span:Sublayer.Span.ctx -> Framer.t -> t
  (** Counters: [frames_framed], [frames_deframed], [frames_malformed].
      With [span], instant markers [frame], [deframe], [malformed]. *)
end

module Line_coding : sig
  include
    Sublayer.Machine.S
      with type up_req = Bitkit.Bitseq.t
       and type up_ind = Bitkit.Bitseq.t
       and type down_req = Bitkit.Bitseq.t
       and type down_ind = Bitkit.Bitseq.t
       and type timer = Sublayer.Machine.Nothing.t

  val make : ?stats:Sublayer.Stats.scope -> ?span:Sublayer.Span.ctx -> Linecode.t -> t
  (** Counters: [blocks_encoded], [blocks_decoded], [illegal_symbols].
      With [span], instant markers [encode], [decode], [illegal]. *)
end
