(** The stateless data-link sublayers as {!Sublayer.Machine.S} machines,
    ready for {!Sublayer.Machine.Stack} composition. Each machine's state
    is its mechanism value ({!Detector.t}, {!Framer.t}, {!Linecode.t})
    plus its own counters, so replacing the mechanism is replacing the
    state — the surrounding stack code never changes (test T3) — and
    every sublayer's drop/pass counts stay private to it. *)

module Error_detection : sig
  include
    Sublayer.Machine.S
      with type up_req = Bitkit.Wirebuf.t
       and type up_ind = Bitkit.Slice.t
       and type down_req = string
       and type down_ind = Bitkit.Slice.t
       and type timer = Sublayer.Machine.Nothing.t

  val make : ?stats:Sublayer.Stats.scope -> ?span:Sublayer.Span.ctx -> Detector.t -> t
  (** Counters: [frames_protected], [frames_verified], [frames_corrupt].
      With [span], every crossing is an instant marker ([protect], [verify],
      [corrupt]). *)
end

module Framing : sig
  include
    Sublayer.Machine.S
      with type up_req = string
       and type up_ind = Bitkit.Slice.t
       and type down_req = Bitkit.Bitseq.t
       and type down_ind = Bitkit.Bitseq.t
       and type timer = Sublayer.Machine.Nothing.t

  val make : ?stats:Sublayer.Stats.scope -> ?span:Sublayer.Span.ctx -> Framer.t -> t
  (** Counters: [frames_framed], [frames_deframed], [frames_malformed].
      With [span], instant markers [frame], [deframe], [malformed]. *)
end

module Line_coding : sig
  include
    Sublayer.Machine.S
      with type up_req = Bitkit.Bitseq.t
       and type up_ind = Bitkit.Bitseq.t
       and type down_req = Bitkit.Bitseq.t
       and type down_ind = Bitkit.Bitseq.t
       and type timer = Sublayer.Machine.Nothing.t

  val make : ?stats:Sublayer.Stats.scope -> ?span:Sublayer.Span.ctx -> Linecode.t -> t
  (** Counters: [blocks_encoded], [blocks_decoded], [illegal_symbols].
      With [span], instant markers [encode], [decode], [illegal]. *)
end
