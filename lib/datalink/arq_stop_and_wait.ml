(** Stop-and-wait ARQ: one outstanding data PDU, alternating via a full
    16-bit sequence number; acknowledgements echo the data sequence. *)

open Sublayer.Machine

let name = "arq-sw"

type t = {
  cfg : Arq.config;
  ctrs : Arq.counters;
  sp : Sublayer.Span.ctx;
  next : int;
  outstanding : (int * string) option;
  queue : string list;
  rx_expected : int;
  retries : int;      (* consecutive timeouts for the outstanding PDU *)
  dead : bool;        (* max_retries exhausted; backlog was discarded *)
}

type up_req = string
type up_ind = string
type down_req = Bitkit.Wirebuf.t
type down_ind = Bitkit.Slice.t
type timer = Rto

let initial ?stats ?span cfg =
  let ctrs =
    match stats with
    | Some scope -> Arq.counters_in scope
    | None -> Arq.fresh_counters ()
  in
  let sp = Option.value span ~default:(Sublayer.Span.disabled name) in
  { cfg; ctrs; sp; next = 0; outstanding = None; queue = [];
    rx_expected = 0; retries = 0; dead = false }

let stats t = Arq.snapshot t.ctrs
let idle t = t.outstanding = None && t.queue = []
let gave_up t = t.dead

let wire seq = Sublayer.Seqspace.wrap Arq.seqspace seq
let skey seq = "s:" ^ string_of_int seq

let fkey seq payload =
  Arq.frame_key ~seq:(wire seq) ~len:(String.length payload)
    ~digest:(Arq.digest_string payload)

let transmit t seq payload =
  Sublayer.Stats.incr t.ctrs.Arq.c_data_sent;
  Down (Arq.data_wirebuf ~seq:(wire seq) payload)

let start_send t payload =
  let seq = t.next in
  if Sublayer.Span.active t.sp then begin
    Sublayer.Span.open_ t.sp ~key:(skey seq)
      ~trace:(Sublayer.Span.fresh_trace t.sp) "flight";
    Sublayer.Span.bind t.sp (fkey seq payload)
      (Sublayer.Span.id_of t.sp ~key:(skey seq))
  end;
  ( { t with next = t.next + 1; outstanding = Some (seq, payload) },
    [ transmit t seq payload; Set_timer (Rto, t.cfg.rto) ] )

let handle_up_req t payload =
  if t.dead then (t, [ Note "link declared dead; payload dropped" ])
  else
    match t.outstanding with
    | None -> start_send t payload
    | Some _ -> ({ t with queue = t.queue @ [ payload ] }, [])

let handle_ack t seq16 =
  match t.outstanding with
  | Some (seq, sent)
    when Sublayer.Seqspace.reconstruct Arq.seqspace ~reference:seq seq16 = seq -> (
      Sublayer.Span.close t.sp ~key:(skey seq) ~detail:"acked" ();
      if Sublayer.Span.active t.sp then
        (* Release the frame-identity binding if delivery never took it. *)
        Sublayer.Span.unbind t.sp (fkey seq sent);
      let t = { t with outstanding = None; retries = 0 } in
      match t.queue with
      | [] -> (t, [ Cancel_timer Rto ])
      | payload :: rest ->
          let t, acts = start_send { t with queue = rest } payload in
          (t, Cancel_timer Rto :: acts))
  | Some _ | None -> (t, [ Note "stale ack ignored" ])

let handle_data t seq16 payload =
  let seq = Sublayer.Seqspace.reconstruct Arq.seqspace ~reference:t.rx_expected seq16 in
  Sublayer.Stats.incr t.ctrs.Arq.c_acks_sent;
  let ack = Down (Arq.ack_wirebuf seq16) in
  if seq = t.rx_expected then begin
    Sublayer.Stats.incr t.ctrs.Arq.c_delivered;
    let detail = "seq=" ^ string_of_int seq in
    if Sublayer.Span.active t.sp then begin
      (* Join the sending flight's trace via the frame's identity key. *)
      let fid =
        Sublayer.Span.take t.sp
          (Arq.frame_key ~seq:seq16 ~len:(Bitkit.Slice.length payload)
             ~digest:(Arq.digest_slice payload))
      in
      if fid <> 0 then
        Sublayer.Span.instant t.sp
          ~trace:(Sublayer.Span.trace_of_id t.sp ~id:fid)
          ~parent:fid ~detail "deliver"
      else Sublayer.Span.instant t.sp ~detail "deliver"
    end;
    (* Delivery is the app boundary: the payload view materialises here. *)
    ( { t with rx_expected = t.rx_expected + 1 },
      [ Up (Bitkit.Slice.to_string payload); ack ] )
  end
  else (t, [ Note "duplicate data"; ack ])

let handle_down_ind t pdu_bytes =
  match Arq.decode_pdu_slice pdu_bytes with
  | None -> (t, [ Note "undecodable pdu dropped" ])
  | Some (Arq.Rx_data (seq16, payload)) -> handle_data t seq16 payload
  | Some (Arq.Rx_ack seq16) -> handle_ack t seq16

let handle_timer t Rto =
  match t.outstanding with
  | None -> (t, [])
  | Some (seq, sent) when t.retries >= t.cfg.max_retries ->
      Sublayer.Stats.incr t.ctrs.Arq.c_give_ups;
      Sublayer.Span.close_all t.sp ~detail:"dead" ();
      if Sublayer.Span.active t.sp then
        Sublayer.Span.unbind t.sp (fkey seq sent);
      ( { t with outstanding = None; queue = []; dead = true },
        [ Note "give up: max_retries exhausted" ] )
  | Some (seq, payload) ->
      Sublayer.Stats.incr t.ctrs.Arq.c_retransmissions;
      Sublayer.Span.child t.sp ~key:(skey seq) ~detail:"rto" "retx";
      ( { t with retries = t.retries + 1 },
        [ Note "retransmit"; transmit t seq payload; Set_timer (Rto, t.cfg.rto) ] )
