type t = {
  name : string;
  overhead_bytes : int;
  protect : string -> string;
  verify : string -> string option;
  verify_slice : Bitkit.Slice.t -> Bitkit.Slice.t option;
  chain_digest_into : Bitkit.Wirebuf.t -> Bytes.t -> int -> unit;
}

(* Write an [n]-byte big-endian int digest straight into the target —
   the chain-digest twin of [be_bytes], allocation-free. *)
let put_be b pos v n =
  for i = 0 to n - 1 do
    Bytes.set b (pos + i) (Char.chr ((v lsr (8 * (n - 1 - i))) land 0xFF))
  done

let slice_body sl n =
  let len = Bitkit.Slice.length sl in
  if len < n then None else Some (Bitkit.Slice.sub sl ~pos:0 ~len:(len - n))

let int_of_be_slice sl pos n =
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := (!v lsl 8) lor Char.code (Bitkit.Slice.get sl (pos + i))
  done;
  !v

let none =
  { name = "none"; overhead_bytes = 0; protect = Fun.id;
    verify = (fun s -> Some s); verify_slice = (fun sl -> Some sl);
    chain_digest_into = (fun _ _ _ -> ()) }

let split_tail s n =
  let len = String.length s in
  if len < n then None else Some (String.sub s 0 (len - n), String.sub s (len - n) n)

let be_bytes v n =
  String.init n (fun i -> Char.chr ((v lsr (8 * (n - 1 - i))) land 0xFF))

let int_of_be s =
  String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 s

let parity =
  {
    name = "parity";
    overhead_bytes = 1;
    protect = (fun s -> s ^ String.make 1 (if Bitkit.Checksum.parity s then '\001' else '\000'));
    verify =
      (fun s ->
        match split_tail s 1 with
        | None -> None
        | Some (body, tag) ->
            let expect = if Bitkit.Checksum.parity body then '\001' else '\000' in
            if tag.[0] = expect then Some body else None);
    verify_slice =
      (fun sl ->
        match slice_body sl 1 with
        | None -> None
        | Some body ->
            let expect =
              if
                Bitkit.Checksum.parity_sub body.Bitkit.Slice.base
                  ~pos:body.Bitkit.Slice.off ~len:body.Bitkit.Slice.len
              then '\001'
              else '\000'
            in
            if Bitkit.Slice.get sl (Bitkit.Slice.length sl - 1) = expect then
              Some body
            else None);
    chain_digest_into =
      (fun wb b pos ->
        let odd =
          Bitkit.Wirebuf.fold_chunks wb ~init:Bitkit.Checksum.parity_init
            ~f:(fun st base off len -> Bitkit.Checksum.parity_update st base ~pos:off ~len)
        in
        Bytes.set b pos (if Bitkit.Checksum.parity_finish odd then '\001' else '\000'));
  }

(* [digest_sub] computes the same digest as [digest] over a substring in
   place, so slice verification never copies the frame body; [chain]
   folds the matching streaming digest over a wirebuf's header chain and
   payload, so transmit-side protection never flattens the packet. *)
let tagged name n digest digest_sub chain =
  {
    name;
    overhead_bytes = n;
    protect = (fun s -> s ^ be_bytes (digest s) n);
    verify =
      (fun s ->
        match split_tail s n with
        | None -> None
        | Some (body, tag) -> if int_of_be tag = digest body then Some body else None);
    verify_slice =
      (fun sl ->
        match slice_body sl n with
        | None -> None
        | Some body ->
            let d =
              digest_sub body.Bitkit.Slice.base ~pos:body.Bitkit.Slice.off
                ~len:body.Bitkit.Slice.len
            in
            if int_of_be_slice sl (Bitkit.Slice.length sl - n) n = d then
              Some body
            else None);
    chain_digest_into = (fun wb b pos -> put_be b pos (chain wb) n);
  }

let internet =
  tagged "internet" 2 Bitkit.Checksum.internet Bitkit.Checksum.internet_sub
    (fun wb ->
      Bitkit.Checksum.internet_finish
        (Bitkit.Wirebuf.fold_chunks wb ~init:Bitkit.Checksum.internet_init
           ~f:(fun st base off len ->
             Bitkit.Checksum.internet_update st base ~pos:off ~len)))

let fletcher16 =
  tagged "fletcher16" 2 Bitkit.Checksum.fletcher16 Bitkit.Checksum.fletcher16_sub
    (fun wb ->
      Bitkit.Checksum.fletcher16_finish
        (Bitkit.Wirebuf.fold_chunks wb ~init:Bitkit.Checksum.fletcher16_init
           ~f:(fun st base off len ->
             Bitkit.Checksum.fletcher16_update st base ~pos:off ~len)))

let crc params =
  let engine = Bitkit.Crc.make params in
  let bytes = (params.Bitkit.Crc.width + 7) / 8 in
  let tag_of d =
    String.init bytes (fun i ->
        Char.chr
          (Int64.to_int
             (Int64.logand (Int64.shift_right_logical d (8 * (bytes - 1 - i))) 0xFFL)))
  in
  {
    name = params.Bitkit.Crc.name;
    overhead_bytes = bytes;
    protect = (fun s -> s ^ tag_of (Bitkit.Crc.digest engine s));
    verify =
      (fun s ->
        match split_tail s bytes with
        | None -> None
        | Some (body, tag) ->
            if String.equal tag (tag_of (Bitkit.Crc.digest engine body)) then
              Some body
            else None);
    verify_slice =
      (fun sl ->
        match slice_body sl bytes with
        | None -> None
        | Some body ->
            let d =
              Bitkit.Crc.digest_sub engine body.Bitkit.Slice.base
                body.Bitkit.Slice.off body.Bitkit.Slice.len
            in
            let tag = tag_of d in
            let tag_pos = Bitkit.Slice.length sl - bytes in
            let ok = ref true in
            for i = 0 to bytes - 1 do
              if Bitkit.Slice.get sl (tag_pos + i) <> tag.[i] then ok := false
            done;
            if !ok then Some body else None);
    chain_digest_into =
      (fun wb b pos ->
        let d =
          Bitkit.Crc.finish engine
            (Bitkit.Wirebuf.fold_chunks wb ~init:(Bitkit.Crc.init engine)
               ~f:(fun st base off len -> Bitkit.Crc.update engine st base off len))
        in
        for i = 0 to bytes - 1 do
          Bytes.set b (pos + i)
            (Char.chr
               (Int64.to_int
                  (Int64.logand (Int64.shift_right_logical d (8 * (bytes - 1 - i))) 0xFFL)))
        done);
  }

let residual_error_rate det rng ~trials ~payload_len ~flips =
  let undetected = ref 0 in
  for _ = 1 to trials do
    let payload = String.init payload_len (fun _ -> Char.chr (Bitkit.Rng.int rng 256)) in
    let frame = Bytes.of_string (det.protect payload) in
    let nbits = 8 * Bytes.length frame in
    for _ = 1 to flips do
      let bit = Bitkit.Rng.int rng nbits in
      let byte = bit lsr 3 in
      Bytes.set frame byte
        (Char.chr (Char.code (Bytes.get frame byte) lxor (0x80 lsr (bit land 7))))
    done;
    let corrupted = Bytes.to_string frame in
    if corrupted <> det.protect payload then
      match det.verify corrupted with Some _ -> incr undetected | None -> ()
  done;
  Float.of_int !undetected /. Float.of_int trials
