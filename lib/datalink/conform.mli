(** Conformance probes for the data-link T2 interfaces: ARQ⇄detector
    (with decoded sequence numbers checked against the ARQ variant's
    window discipline), detector⇄framer and framer⇄linecode (length
    sanity). Mirrors {!Transport.Conform}: the probes are always in the
    composition and carry no-op closures when no registry is given. *)

module P_arq_det : sig
  type t = {
    obs_req : Bitkit.Wirebuf.t -> unit;
    obs_ind : Bitkit.Slice.t -> unit;
  }

  include
    Sublayer.Machine.S
      with type t := t
       and type up_req = Bitkit.Wirebuf.t
       and type up_ind = Bitkit.Slice.t
       and type down_req = Bitkit.Wirebuf.t
       and type down_ind = Bitkit.Slice.t
       and type timer = Sublayer.Machine.Nothing.t
end

module P_det_frm : sig
  type t = {
    obs_req : Bitkit.Slice.t -> unit;
    obs_ind : Bitkit.Slice.t -> unit;
  }

  include
    Sublayer.Machine.S
      with type t := t
       and type up_req = Bitkit.Slice.t
       and type up_ind = Bitkit.Slice.t
       and type down_req = Bitkit.Slice.t
       and type down_ind = Bitkit.Slice.t
       and type timer = Sublayer.Machine.Nothing.t
end

module P_frm_line : sig
  type t = {
    obs_req : Bitkit.Bitseq.t -> unit;
    obs_ind : Bitkit.Bitseq.t -> unit;
  }

  include
    Sublayer.Machine.S
      with type t := t
       and type up_req = Bitkit.Bitseq.t
       and type up_ind = Bitkit.Bitseq.t
       and type down_req = Bitkit.Bitseq.t
       and type down_ind = Bitkit.Bitseq.t
       and type timer = Sublayer.Machine.Nothing.t
end

type alloc_pair = Sublayer.Alloc.cell option * Sublayer.Alloc.cell option
(** [(above, below)] cells for {!Sublayer.Alloc} crossings at this
    boundary, as in {!Transport.Conform}. *)

val arq_det :
  ?alloc:alloc_pair ->
  Monitor.Runtime.t option ->
  key:string ->
  variant:string ->
  window:int ->
  P_arq_det.t
(** [variant] is the ARQ module's [name] ("arq-sw", "arq-gbn",
    "arq-sr"); unknown names get the most permissive (selective-repeat)
    window discipline. Down PDUs are decoded from the wirebuf's outer
    header, Up PDUs via {!Arq.decode_pdu_slice}; undecodable PDUs are
    skipped — a frame the detector wrongly let through is not the
    interface's protocol violation. *)

val det_frm :
  ?alloc:alloc_pair -> Monitor.Runtime.t option -> key:string -> P_det_frm.t

val frm_line :
  ?alloc:alloc_pair -> Monitor.Runtime.t option -> key:string -> P_frm_line.t
