(** The error-detection sublayer's mechanism (paper §2.1, Figure 2).

    A detector turns a PDU into a protected PDU by appending check bits,
    and verifies/strips them on reception. Detectors are values behind one
    narrow interface, so the stack can "go from say CRC-32 to CRC-64
    without changing other sublayers" — experiment E1's replaceability
    claim is tested by swapping these. *)

type t = {
  name : string;
  overhead_bytes : int;
  protect : string -> string;
  verify : string -> string option;
      (** [Some payload] if the check passes; [None] for corrupt PDUs. *)
  verify_slice : Bitkit.Slice.t -> Bitkit.Slice.t option;
      (** {!verify} over a slice view: the digest is computed in place and
          the returned body is a narrowed view of the input — no copy on
          the receive path. *)
  chain_digest_into : Bitkit.Wirebuf.t -> Bytes.t -> int -> unit;
      (** Write the [overhead_bytes] trailer for a wirebuf at the given
          position, digesting the header chain and payload slice
          incrementally (streaming digest folded over the appendix list)
          — the same bytes {!protect} appends to the flattened packet,
          computed without flattening anything. The transmit path's
          answer to [verify_slice]. *)
}

val none : t
(** No protection (every frame verifies) — the degenerate detector, useful
    as a baseline in error-rate experiments. *)

val parity : t
(** Single even-parity byte: detects all odd-weight errors only. *)

val internet : t
(** RFC 1071 16-bit one's-complement sum. *)

val fletcher16 : t

val crc : Bitkit.Crc.params -> t
(** Any catalogued CRC, e.g. [crc Bitkit.Crc.crc32]. *)

val residual_error_rate :
  t -> Bitkit.Rng.t -> trials:int -> payload_len:int -> flips:int -> float
(** Monte-Carlo estimate of the probability that a frame with [flips]
    random bit errors still verifies (the undetected-error rate the paper
    says must be "very small"). *)
