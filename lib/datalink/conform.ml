module Machine = Sublayer.Machine

module P_arq_det = Machine.Probe (struct
  type req = Bitkit.Wirebuf.t
  type ind = Bitkit.Slice.t

  let name = "mon"
end)

module P_det_frm = Machine.Probe (struct
  type req = Bitkit.Slice.t
  type ind = Bitkit.Slice.t

  let name = "mon"
end)

module P_frm_line = Machine.Probe (struct
  type req = Bitkit.Bitseq.t
  type ind = Bitkit.Bitseq.t

  let name = "mon"
end)

let nop _ = ()

type alloc_pair = Sublayer.Alloc.cell option * Sublayer.Alloc.cell option

(* Same discipline as the transport probes: a request heading down means
   the machine below runs next, an indication heading up the machine
   above; cross first so the observation itself is charged with the
   destination's step. No-ops while [Sublayer.Alloc] is disabled. *)
let with_alloc alloc obs_req obs_ind =
  match alloc with
  | None -> (obs_req, obs_ind)
  | Some (above, below) ->
      ( (fun r ->
          Sublayer.Alloc.cross below;
          obs_req r),
        fun i ->
          Sublayer.Alloc.cross above;
          obs_ind i )

let arq_det ?alloc mon ~key ~variant ~window =
  let obs_req, obs_ind =
    match mon with
    | None -> ((nop : Bitkit.Wirebuf.t -> unit), (nop : Bitkit.Slice.t -> unit))
    | Some reg ->
      let v =
        match Monitor.Specs.arq_variant_of_name variant with
        | Some v -> v
        | None -> Monitor.Specs.Sr
      in
      let spec = Monitor.Specs.arq ~variant:v ~window in
      let inst = Monitor.Runtime.attach reg ~key spec in
      let idd m = Monitor.Spec.msg_id spec Monitor.Spec.Down m
      and idu m = Monitor.Spec.msg_id spec Monitor.Spec.Up m in
      let d_data = idd "data" and d_ack = idd "ack"
      and u_data = idu "data" and u_ack = idu "ack" in
      let ob mid ~a ~b = Monitor.Runtime.observe inst mid ~a ~b in
      (* The outer header of an outgoing wirebuf is the ARQ's own: a kind
         byte then a big-endian 16-bit sequence number. *)
      let obs_req buf =
        match Bitkit.Wirebuf.outer_header buf with
        | Some h when Bitkit.Slice.length h >= 3 ->
            let kind = Char.code (Bitkit.Slice.get h 0) in
            let seq =
              (Char.code (Bitkit.Slice.get h 1) lsl 8)
              lor Char.code (Bitkit.Slice.get h 2)
            in
            if kind = 0 then
              ob d_data ~a:seq ~b:(Bitkit.Wirebuf.length buf - 3)
            else if kind = 1 then ob d_ack ~a:seq ~b:0
        | _ -> ()
      and obs_ind sl =
        match Arq.decode_pdu_slice sl with
        | Some (Arq.Rx_data (seq, payload)) ->
            ob u_data ~a:seq ~b:(Bitkit.Slice.length payload)
        | Some (Arq.Rx_ack seq) -> ob u_ack ~a:seq ~b:0
        | None -> ()
        in
        (obs_req, obs_ind)
  in
  let obs_req, obs_ind = with_alloc alloc obs_req obs_ind in
  { P_arq_det.obs_req; obs_ind }

let spec_det_frm =
  Monitor.Specs.opaque ~name:"det-frm" ~upper:"detector" ~lower:"framer" ()

let spec_frm_line =
  Monitor.Specs.opaque ~name:"frm-line" ~upper:"framer" ~lower:"linecode" ()

let det_frm ?alloc mon ~key =
  let obs_req, obs_ind =
    match mon with
    | None -> ((nop : Bitkit.Slice.t -> unit), (nop : Bitkit.Slice.t -> unit))
    | Some reg ->
        let spec = spec_det_frm in
        let inst = Monitor.Runtime.attach reg ~key spec in
        let down = Monitor.Spec.msg_id spec Monitor.Spec.Down "pdu"
        and up = Monitor.Spec.msg_id spec Monitor.Spec.Up "pdu" in
        let obs_req s =
          Monitor.Runtime.observe inst down ~a:(Bitkit.Slice.length s) ~b:0
        and obs_ind sl =
          Monitor.Runtime.observe inst up ~a:(Bitkit.Slice.length sl) ~b:0
        in
        (obs_req, obs_ind)
  in
  let obs_req, obs_ind = with_alloc alloc obs_req obs_ind in
  { P_det_frm.obs_req; obs_ind }

let frm_line ?alloc mon ~key =
  let obs_req, obs_ind =
    match mon with
    | None -> ((nop : Bitkit.Bitseq.t -> unit), (nop : Bitkit.Bitseq.t -> unit))
    | Some reg ->
        let spec = spec_frm_line in
        let inst = Monitor.Runtime.attach reg ~key spec in
        let down = Monitor.Spec.msg_id spec Monitor.Spec.Down "pdu"
        and up = Monitor.Spec.msg_id spec Monitor.Spec.Up "pdu" in
        let obs_req bits =
          Monitor.Runtime.observe inst down ~a:(Bitkit.Bitseq.length bits) ~b:0
        and obs_ind bits =
          Monitor.Runtime.observe inst up ~a:(Bitkit.Bitseq.length bits) ~b:0
        in
        (obs_req, obs_ind)
  in
  let obs_req, obs_ind = with_alloc alloc obs_req obs_ind in
  { P_frm_line.obs_req; obs_ind }
