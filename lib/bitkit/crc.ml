type params = {
  name : string;
  width : int;
  poly : int64;
  init : int64;
  refin : bool;
  refout : bool;
  xorout : int64;
  check : int64;
}

type t = { p : params; table : int64 array; mask : int64 }

let mask_of_width w =
  if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let reflect v width =
  let r = ref 0L in
  for i = 0 to width - 1 do
    if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then
      r := Int64.logor !r (Int64.shift_left 1L (width - 1 - i))
  done;
  !r

(* For reflected CRCs the whole computation runs LSB-first: the table is
   built from the reflected polynomial and the running remainder is kept
   reflected, so no per-byte reflection is needed. *)
let make p =
  if p.width < 8 || p.width > 64 then invalid_arg "Crc.make: width";
  if p.refin <> p.refout then invalid_arg "Crc.make: refin <> refout unsupported";
  let mask = mask_of_width p.width in
  let table = Array.make 256 0L in
  if p.refin then begin
    let rpoly = reflect p.poly p.width in
    for i = 0 to 255 do
      let r = ref (Int64.of_int i) in
      for _ = 1 to 8 do
        r :=
          if Int64.logand !r 1L = 1L then
            Int64.logxor (Int64.shift_right_logical !r 1) rpoly
          else Int64.shift_right_logical !r 1
      done;
      table.(i) <- !r
    done
  end
  else begin
    let top = Int64.shift_left 1L (p.width - 1) in
    for i = 0 to 255 do
      let r = ref (Int64.shift_left (Int64.of_int i) (p.width - 8)) in
      for _ = 1 to 8 do
        r :=
          if Int64.logand !r top <> 0L then
            Int64.logand (Int64.logxor (Int64.shift_left !r 1) p.poly) mask
          else Int64.logand (Int64.shift_left !r 1) mask
      done;
      table.(i) <- !r
    done
  end;
  { p; table; mask }

let params t = t.p

let init t = if t.p.refin then reflect t.p.init t.p.width else t.p.init

let update t crc0 s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc.update";
  let p = t.p in
  let crc = ref crc0 in
  if p.refin then
    for i = pos to pos + len - 1 do
      let idx =
        Int64.to_int (Int64.logand (Int64.logxor !crc (Int64.of_int (Char.code s.[i]))) 0xFFL)
      in
      crc := Int64.logxor t.table.(idx) (Int64.shift_right_logical !crc 8)
    done
  else
    for i = pos to pos + len - 1 do
      let idx =
        Int64.to_int
          (Int64.logand
             (Int64.logxor
                (Int64.shift_right_logical !crc (p.width - 8))
                (Int64.of_int (Char.code s.[i])))
             0xFFL)
      in
      crc := Int64.logand (Int64.logxor t.table.(idx) (Int64.shift_left !crc 8)) t.mask
    done;
  !crc

let finish t crc = Int64.logand (Int64.logxor crc t.p.xorout) t.mask

let digest_sub t s pos len = finish t (update t (init t) s pos len)

let digest t s = digest_sub t s 0 (String.length s)

let self_test t = digest t "123456789" = t.p.check

let crc8 =
  { name = "CRC-8"; width = 8; poly = 0x07L; init = 0L; refin = false;
    refout = false; xorout = 0L; check = 0xF4L }

let crc16_ccitt =
  { name = "CRC-16/CCITT-FALSE"; width = 16; poly = 0x1021L; init = 0xFFFFL;
    refin = false; refout = false; xorout = 0L; check = 0x29B1L }

let crc16_arc =
  { name = "CRC-16/ARC"; width = 16; poly = 0x8005L; init = 0L; refin = true;
    refout = true; xorout = 0L; check = 0xBB3DL }

let crc32 =
  { name = "CRC-32"; width = 32; poly = 0x04C11DB7L; init = 0xFFFFFFFFL;
    refin = true; refout = true; xorout = 0xFFFFFFFFL; check = 0xCBF43926L }

let crc32c =
  { name = "CRC-32C"; width = 32; poly = 0x1EDC6F41L; init = 0xFFFFFFFFL;
    refin = true; refout = true; xorout = 0xFFFFFFFFL; check = 0xE3069283L }

let crc64_xz =
  { name = "CRC-64/XZ"; width = 64; poly = 0x42F0E1EBA9EA3693L;
    init = -1L; refin = true; refout = true; xorout = -1L;
    check = 0x995DC9BBDF1939FAL }

let crc64_ecma =
  { name = "CRC-64/ECMA-182"; width = 64; poly = 0x42F0E1EBA9EA3693L;
    init = 0L; refin = false; refout = false; xorout = 0L;
    check = 0x6C40DF5F0B497347L }

let all = [ crc8; crc16_ccitt; crc16_arc; crc32; crc32c; crc64_xz; crc64_ecma ]
