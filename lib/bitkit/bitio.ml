module Writer = struct
  type t = {
    mutable buf : Bytes.t;
    mutable len : int; (* complete bytes in buf *)
    mutable acc : int;
    mutable nbits : int; (* bits pending in acc, 0..7 *)
    mutable total : int; (* total bits appended *)
  }

  let create ?(size = 64) () =
    { buf = Bytes.create (max 1 size); len = 0; acc = 0; nbits = 0; total = 0 }

  let ensure t n =
    let cap = Bytes.length t.buf in
    if t.len + n > cap then begin
      let cap' = max (t.len + n) (2 * cap) in
      let buf' = Bytes.create cap' in
      Bytes.blit t.buf 0 buf' 0 t.len;
      t.buf <- buf'
    end

  let bit t b =
    t.acc <- (t.acc lsl 1) lor (if b then 1 else 0);
    t.nbits <- t.nbits + 1;
    t.total <- t.total + 1;
    if t.nbits = 8 then begin
      ensure t 1;
      Bytes.unsafe_set t.buf t.len (Char.unsafe_chr t.acc);
      t.len <- t.len + 1;
      t.acc <- 0;
      t.nbits <- 0
    end

  let bits t value width =
    assert (width >= 0 && width <= 62);
    for i = width - 1 downto 0 do
      bit t ((value lsr i) land 1 = 1)
    done

  let uint8 t v = bits t v 8
  let uint16 t v = bits t v 16
  let uint32 t v = bits t v 32

  let pad_to_byte t = while t.nbits <> 0 do bit t false done

  let bytes t s =
    if t.nbits <> 0 then invalid_arg "Bitio.Writer.bytes: not byte-aligned";
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    Slice.note_copy n;
    t.len <- t.len + n;
    t.total <- t.total + (8 * n)

  let slice t sl =
    if t.nbits <> 0 then invalid_arg "Bitio.Writer.slice: not byte-aligned";
    let n = Slice.length sl in
    ensure t n;
    Slice.blit sl t.buf t.len;
    t.len <- t.len + n;
    t.total <- t.total + (8 * n)

  (* Reserve-then-patch: a checksum (or length) field can be left as two
     zero bytes and filled in after the covered bytes are written, so the
     packet is built in a single pass over a single buffer. *)
  let reserve_uint16 t =
    if t.nbits <> 0 then
      invalid_arg "Bitio.Writer.reserve_uint16: not byte-aligned";
    let pos = t.len in
    ensure t 2;
    Bytes.unsafe_set t.buf t.len '\000';
    Bytes.unsafe_set t.buf (t.len + 1) '\000';
    t.len <- t.len + 2;
    t.total <- t.total + 16;
    pos

  let patch_uint16 t pos v =
    if pos < 0 || pos + 2 > t.len then invalid_arg "Bitio.Writer.patch_uint16";
    Bytes.set t.buf pos (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set t.buf (pos + 1) (Char.chr (v land 0xFF))

  let bit_length t = t.total
  let byte_length t = (t.total + 7) / 8

  (* One's-complement internet checksum over the bytes written so far
     (reserved fields still zero contribute nothing, per RFC 1071). *)
  let internet_checksum t =
    if t.nbits <> 0 then
      invalid_arg "Bitio.Writer.internet_checksum: not byte-aligned";
    let sum = ref 0 in
    let i = ref 0 in
    while !i + 1 < t.len do
      sum :=
        !sum
        + ((Char.code (Bytes.unsafe_get t.buf !i) lsl 8)
          lor Char.code (Bytes.unsafe_get t.buf (!i + 1)));
      i := !i + 2
    done;
    if t.len land 1 = 1 then
      sum := !sum + (Char.code (Bytes.unsafe_get t.buf (t.len - 1)) lsl 8);
    while !sum lsr 16 <> 0 do
      sum := (!sum land 0xFFFF) + (!sum lsr 16)
    done;
    lnot !sum land 0xFFFF

  let contents t =
    if t.nbits = 0 then Bytes.sub_string t.buf 0 t.len
    else begin
      let b = Bytes.create (t.len + 1) in
      Bytes.blit t.buf 0 b 0 t.len;
      Bytes.set b t.len (Char.chr (t.acc lsl (8 - t.nbits)));
      Bytes.unsafe_to_string b
    end

  let to_slice t = Slice.of_string (contents t)
end

module Reader = struct
  (* [pos] and [limit] are absolute bit offsets into [base], so a reader
     over a slice never copies the viewed bytes. *)
  type t = { base : string; mutable pos : int; limit : int }

  exception Truncated

  let of_string base = { base; pos = 0; limit = 8 * String.length base }

  let of_slice (sl : Slice.t) =
    { base = sl.Slice.base;
      pos = 8 * sl.Slice.off;
      limit = 8 * (sl.Slice.off + sl.Slice.len) }

  let bit t =
    if t.pos >= t.limit then raise Truncated;
    let b = Char.code (String.unsafe_get t.base (t.pos lsr 3)) in
    let v = b land (0x80 lsr (t.pos land 7)) <> 0 in
    t.pos <- t.pos + 1;
    v

  let bits t width =
    assert (width >= 0 && width <= 62);
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if bit t then 1 else 0)
    done;
    !v

  let uint8 t = bits t 8
  let uint16 t = bits t 16
  let uint32 t = bits t 32

  let bytes t n =
    if t.pos land 7 <> 0 then invalid_arg "Bitio.Reader.bytes: not byte-aligned";
    if t.pos + (8 * n) > t.limit then raise Truncated;
    let start = t.pos lsr 3 in
    t.pos <- t.pos + (8 * n);
    Slice.note_copy n;
    String.sub t.base start n

  let skip_to_byte t = t.pos <- (t.pos + 7) land lnot 7

  let remaining_bits t = t.limit - t.pos

  let rest t = bytes t (remaining_bits t / 8)

  let rest_slice t =
    if t.pos land 7 <> 0 then
      invalid_arg "Bitio.Reader.rest_slice: not byte-aligned";
    let off = t.pos lsr 3 in
    let len = remaining_bits t / 8 in
    t.pos <- t.pos + (8 * len);
    Slice.make t.base ~off ~len
end
