(** SipHash-2-4 keyed hash (Aumasson–Bernstein).

    Used by the transport record sublayer as its authentication tag.
    Validated against the reference test vectors in the test suite. *)

val hash : key:string -> string -> int64
(** [hash ~key msg] with a 16-byte [key]. *)

val hash_sub : key:string -> string -> pos:int -> len:int -> int64
(** {!hash} over the substring [pos, pos+len) without copying it — how
    the pooled seal authenticates a record laid out in an arena slot. *)

val tag_into : key:string -> string -> pos:int -> len:int -> Bytes.t -> int -> unit
(** [tag_into ~key msg ~pos ~len dst dpos] writes the 8-byte tag of the
    substring directly into [dst] at [dpos]. *)

val tag : key:string -> string -> string
(** The 8-byte little-endian serialisation of {!hash}. *)
