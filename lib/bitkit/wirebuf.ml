(* The transmit-side half of the zero-copy data path: a packet under
   construction, as a payload slice plus a stack of already-packed
   headers (outermost first). Each sublayer [push]es its own header; the
   bytes only come together once, in [emit], when the packet reaches the
   wire. The value is persistent — pushing returns a new wirebuf sharing
   the tail — so a retransmit queue can hold one level's view while lower
   sublayers keep wrapping fresh copies of it.

   Headers are packed eagerly into small strings (never closures), so
   wirebufs remain safe for structural comparison and hashing.

   [set_eager true] switches the whole process to the legacy
   copy-per-sublayer behaviour: [push] materializes immediately, so every
   crossing pays the copy the old string codecs paid. The wire bytes are
   identical by construction, which is what lets E22 compare the two
   modes on bit-identical seeded runs. *)

type header = { h_owner : string; h_bytes : string; h_bits : int }
type t = { headers : header list; hdr_len : int; payload : Slice.t }

(* Atomic so sharded runs on several domains read a coherent mode; it is
   still a process-wide switch, flipped only between runs. *)
let eager_mode = Atomic.make false
let set_eager b = Atomic.set eager_mode b
let eager () = Atomic.get eager_mode

let of_slice payload = { headers = []; hdr_len = 0; payload }
let of_string s = of_slice (Slice.of_string s)
let empty = of_slice Slice.empty

let length t = t.hdr_len + Slice.length t.payload

let emit_into t b pos0 =
  let pos = ref pos0 in
  List.iter
    (fun h ->
      let k = String.length h.h_bytes in
      Bytes.blit_string h.h_bytes 0 b !pos k;
      Slice.note_copy k;
      pos := !pos + k)
    t.headers;
  Slice.blit t.payload b !pos

let emit t =
  let b = Bytes.create (length t) in
  emit_into t b 0;
  Bytes.unsafe_to_string b

let to_slice t =
  if t.headers = [] then t.payload else Slice.of_string (emit t)

let copy_cost t =
  if t.headers = [] then Slice.copy_cost t.payload else length t

let emit_cost t = length t

let fold_chunks t ~init ~f =
  let acc =
    List.fold_left (fun acc h -> f acc h.h_bytes 0 (String.length h.h_bytes))
      init t.headers
  in
  f acc t.payload.Slice.base t.payload.Slice.off t.payload.Slice.len

(* The zero-allocation emit: a headerless whole-string payload passes
   through untouched (exactly [to_slice]'s fast path, so legacy string
   factories never consume slots); anything else lands in a pool slot,
   or — on overrun — in an ordinary heap emit. The returned slot carries
   one reference owned by the caller. *)
let emit_pooled t pool =
  if t.headers = [] && Slice.copy_cost t.payload = 0 then
    (Pool.no_slot, t.payload)
  else begin
    let n = length t in
    let slot = Pool.loan pool ~len:n in
    if slot = Pool.no_slot then (Pool.no_slot, Slice.of_string (emit t))
    else begin
      emit_into t (Pool.buffer pool) (Pool.off pool slot);
      (slot, Pool.slice pool slot ~len:n)
    end
  end

let to_string t =
  if t.headers = [] then Slice.to_string t.payload else emit t

let pack f =
  let w = Bitio.Writer.create ~size:32 () in
  f w;
  Bitio.Writer.pad_to_byte w;
  (Bitio.Writer.contents w, Bitio.Writer.bit_length w)

let push t ~owner f =
  let h_bytes, h_bits = pack f in
  if Atomic.get eager_mode then begin
    (* Legacy path: materialize on every crossing. *)
    let k = String.length h_bytes in
    let b = Bytes.create (k + length t) in
    Bytes.blit_string h_bytes 0 b 0 k;
    Slice.note_copy k;
    emit_into t b k;
    of_string (Bytes.unsafe_to_string b)
  end
  else
    { headers = { h_owner = owner; h_bytes; h_bits } :: t.headers;
      hdr_len = t.hdr_len + String.length h_bytes;
      payload = t.payload }

let appendices t = List.map (fun h -> (h.h_owner, h.h_bits)) t.headers

let outer_header t =
  match t.headers with
  | [] -> None
  | h :: _ -> Some (Slice.of_string h.h_bytes)
