(** A fixed preallocated byte arena partitioned into equal slots, loaned
    by index and explicitly released — the lib_ethernet driver idiom
    applied to the zero-copy emit path. A loan request that cannot be
    satisfied (arena exhausted, or the requested length exceeds the slot
    size) returns {!no_slot} and bumps the overrun counter; the caller
    falls back to an ordinary heap allocation. Overruns are accounting,
    never failures.

    Slots are reference counted: {!loan} hands out one reference,
    {!retain} adds one (a channel keeping the bytes alive until
    delivery), and {!release} drops one, freeing the slot when the count
    reaches zero. {!defer_release} queues the drop until
    {!drain_deferred} runs — wire it to [Sim.Engine.after_event] so
    machine-held loans survive every action applied within the current
    simulation event, including reentrant cascades.

    Lifetime invariant: a {!slice} view of a slot is valid only while the
    slot is loaned. Releasing transfers the bytes back to the pool; in
    [~debug:true] pools the slot is poisoned on free so use-after-release
    reads surface as corrupt bytes in tests rather than silent aliasing.

    A pool is single-domain state. Sharded runs build one pool per shard
    and never send a slot-backed slice across domains — copy out first. *)

type t

val no_slot : int
(** [-1]: the sentinel returned when a loan falls back to the heap. *)

val create : ?debug:bool -> slots:int -> slot_bytes:int -> unit -> t
(** [debug] (default [false]) poisons released slots with [0xDE]. *)

val slots : t -> int
val slot_bytes : t -> int

val loan : t -> len:int -> int
(** Loan a slot able to hold [len] bytes. Returns the slot index with a
    reference count of one, or {!no_slot} (counting an overrun) when
    [len > slot_bytes] or no slot is free. *)

val buffer : t -> Bytes.t
(** The backing arena; write a loaned slot at [off t slot]. *)

val off : t -> int -> int
(** Byte offset of [slot] in {!buffer}. *)

val slice : t -> int -> len:int -> Slice.t
(** A slice viewing the first [len] bytes of a loaned slot. Valid until
    the slot is released. *)

val slot_of_slice : t -> Slice.t -> int option
(** Recover the slot a slice views, if its backing string is this pool's
    arena. This is how a transmit closure recognises a loan emitted by a
    machine further up and takes over its lifetime. *)

val retain : t -> int -> unit
(** Add a reference to a loaned slot. Raises [Invalid_argument] if the
    slot is not currently loaned. *)

val release : t -> int -> unit
(** Drop a reference; frees the slot at zero. Raises [Invalid_argument]
    on a slot that is not currently loaned (double release). *)

val defer_release : t -> int -> unit
(** Queue a {!release} to run at the next {!drain_deferred}. The slot
    stays valid (and counts as in use) until then. *)

val drain_deferred : t -> unit
(** Apply all queued deferred releases, oldest first. *)

val in_use : t -> int
val hwm : t -> int
val loans : t -> int
val releases : t -> int
val overruns : t -> int

val stats : t -> (string * int) list
(** [[("slots", _); ("hwm", _); ("in_use", _); ("loans", _);
    ("releases", _); ("overruns", _)]] — report-ready key/value pairs. *)
