(** A packet under construction: one payload slice plus a stack of
    already-packed sublayer headers, outermost first.

    This is the transmit half of the zero-copy data path. Each descending
    sublayer {!push}es its header bits; nothing is concatenated until the
    packet reaches the wire and {!emit}/{!to_slice} lays headers and
    payload into a single buffer. Values are persistent: [push] returns a
    new wirebuf sharing the tail, so retransmit queues can safely hold a
    mid-stack view. Headers are packed eagerly into strings (never
    closures), keeping wirebufs safe for structural comparison. *)

type t

val empty : t
val of_slice : Slice.t -> t
val of_string : string -> t
val length : t -> int
(** Total bytes: headers plus payload. *)

val push : t -> owner:string -> (Bitio.Writer.t -> unit) -> t
(** [push t ~owner f] runs [f] on a fresh writer and makes the packed
    (byte-padded) result the new outermost header. [owner] names the
    sublayer for {!appendices} audits. *)

val emit : t -> string
(** Lay the packet into one fresh buffer: headers outermost-first, then
    the payload, blitted exactly once. *)

val emit_into : t -> Bytes.t -> int -> unit
(** [emit_into t b pos] lays the packet into [b] at [pos] — the copies
    are charged here, so do not charge {!copy_cost} again. The caller
    guarantees [length t] bytes of room. *)

val emit_pooled : t -> Pool.t -> int * Slice.t
(** Emit into a pool slot: returns [(slot, view)] where [view] is valid
    until [slot] is released. A headerless whole-string payload skips the
    pool entirely (zero-copy, [slot = Pool.no_slot]); an exhausted pool
    falls back to a heap {!emit} (counted as an overrun, also
    [Pool.no_slot]). *)

val fold_chunks : t -> init:'a -> f:('a -> string -> int -> int -> 'a) -> 'a
(** Fold [f acc base pos len] over the packet's byte regions in exact
    emit order — each header outermost-first, then the payload — without
    materialising anything. The substrate for chain digests. *)

val emit_cost : t -> int
(** Bytes {!emit}/{!emit_into} charge: always {!length}, a physical copy
    of every byte — unlike {!copy_cost}, which is what the [to_string]
    fast paths charge. *)

val to_slice : t -> Slice.t
(** Like {!emit} but returns the payload slice unchanged (zero-copy)
    when no headers have been pushed. *)

val to_string : t -> string
(** Like {!to_slice} but materialized. *)

val copy_cost : t -> int
(** Bytes {!to_string}/{!emit} would charge to the copy counter:
    {!Slice.copy_cost} of the payload when no headers are pushed
    (including eager mode, whose copies were already paid at [push]),
    {!length} otherwise. Lets callers attribute the materialisation to a
    local counter without bracketing the shared process-wide atomic. *)

val appendices : t -> (string * int) list
(** [(owner, bits)] per pushed header, outermost first — the input to
    {!Sublayer.Layout.check_appendix}. *)

val outer_header : t -> Slice.t option
(** The outermost pushed header's packed bytes, if any (zero-copy). *)

(** {1 Legacy copy-per-sublayer mode}

    With eager mode on, {!push} materializes immediately — every sublayer
    crossing pays the copy the old string codecs paid, while producing
    bit-identical wire bytes. E22 uses this to compare the two data paths
    on identical seeded runs. *)

val set_eager : bool -> unit
val eager : unit -> bool
