(* An immutable view into a string: the currency of the zero-copy data
   path. Narrowing ([sub]) is free; materializing ([to_string]) or
   blitting is what costs, and every such copy is charged to a
   process-wide byte counter so benches can report
   bytes-copied-per-packet. The counter is an [Atomic.t]: sharded runs
   copy from several domains at once, and a plain [ref] would lose
   updates exactly when the accounting matters most. *)

type t = { base : string; off : int; len : int }

let copied = Atomic.make 0
let note_copy n = ignore (Atomic.fetch_and_add copied n)
let copied_bytes () = Atomic.get copied
let reset_copied () = Atomic.set copied 0

let empty = { base = ""; off = 0; len = 0 }

let of_string base = { base; off = 0; len = String.length base }

let make base ~off ~len =
  if off < 0 || len < 0 || off + len > String.length base then
    invalid_arg "Slice.make: out of bounds";
  { base; off; len }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Slice.get: out of bounds";
  String.unsafe_get t.base (t.off + i)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Slice.sub: out of bounds";
  { base = t.base; off = t.off + pos; len }

let copy_cost t =
  if t.off = 0 && t.len = String.length t.base then 0 else t.len

let to_string t =
  (* A whole-string view hands back its base: still zero-copy. *)
  if t.off = 0 && t.len = String.length t.base then t.base
  else begin
    note_copy t.len;
    String.sub t.base t.off t.len
  end

let blit t dst dstoff =
  note_copy t.len;
  Bytes.blit_string t.base t.off dst dstoff t.len

let add_to_buffer buf t =
  note_copy t.len;
  Buffer.add_substring buf t.base t.off t.len

let equal a b =
  a.len = b.len
  && (a.base == b.base && a.off = b.off
     ||
     let rec go i =
       i = a.len
       || String.unsafe_get a.base (a.off + i)
          = String.unsafe_get b.base (b.off + i)
          && go (i + 1)
     in
     go 0)

let equal_string t s =
  t.len = String.length s
  &&
  let rec go i =
    i = t.len || String.unsafe_get t.base (t.off + i) = String.unsafe_get s i && go (i + 1)
  in
  go 0

let concat parts =
  let n = List.fold_left (fun acc p -> acc + p.len) 0 parts in
  let b = Bytes.create n in
  let _ =
    List.fold_left
      (fun pos p ->
        blit p b pos;
        pos + p.len)
      0 parts
  in
  of_string (Bytes.unsafe_to_string b)

let hexdump t = Format.asprintf "%a" Hexdump.pp (String.sub t.base t.off t.len)

let pp fmt t = Format.fprintf fmt "slice[%d..%d)" t.off (t.off + t.len)
