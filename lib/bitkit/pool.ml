type t = {
  arena : Bytes.t;
  (* The arena viewed as a string, for handing out [Slice.t] windows.
     The cast is the documented unsafe aliasing at the heart of the
     pool: a slice is immutable only by convention, valid only while its
     slot stays loaned. It is also the identity [slot_of_slice] keys on
     — every slice made here shares this one string value physically. *)
  astr : string;
  n_slots : int;
  sl_bytes : int;
  rc : int array; (* 0 = free, n > 0 = loaned with n references *)
  free : int array; (* stack of free slot indices *)
  mutable free_top : int;
  mutable deferred : int list; (* queued releases, newest first *)
  mutable in_use : int;
  mutable hwm : int;
  mutable loans : int;
  mutable releases : int;
  mutable overruns : int;
  debug : bool;
}

let no_slot = -1

let create ?(debug = false) ~slots ~slot_bytes () =
  if slots < 1 then invalid_arg "Pool.create: need at least one slot";
  if slot_bytes < 1 then invalid_arg "Pool.create: need at least one byte";
  let arena = Bytes.create (slots * slot_bytes) in
  (* Free stack holds slots high-to-low so slot 0 is loaned first:
     allocation order is deterministic and easy to assert in tests. *)
  { arena;
    astr = Bytes.unsafe_to_string arena;
    n_slots = slots;
    sl_bytes = slot_bytes;
    rc = Array.make slots 0;
    free = Array.init slots (fun i -> slots - 1 - i);
    free_top = slots;
    deferred = [];
    in_use = 0; hwm = 0; loans = 0; releases = 0; overruns = 0;
    debug }

let slots t = t.n_slots
let slot_bytes t = t.sl_bytes
let buffer t = t.arena
let off t slot = slot * t.sl_bytes

let loan t ~len =
  if len > t.sl_bytes || t.free_top = 0 then begin
    t.overruns <- t.overruns + 1;
    no_slot
  end
  else begin
    t.free_top <- t.free_top - 1;
    let slot = t.free.(t.free_top) in
    t.rc.(slot) <- 1;
    t.loans <- t.loans + 1;
    t.in_use <- t.in_use + 1;
    if t.in_use > t.hwm then t.hwm <- t.in_use;
    slot
  end

let check_loaned t slot who =
  if slot < 0 || slot >= t.n_slots then
    invalid_arg (Printf.sprintf "Pool.%s: slot %d out of range" who slot);
  if t.rc.(slot) = 0 then
    invalid_arg
      (Printf.sprintf "Pool.%s: slot %d is not loaned (double release?)" who
         slot)

let retain t slot =
  check_loaned t slot "retain";
  t.rc.(slot) <- t.rc.(slot) + 1

let release t slot =
  check_loaned t slot "release";
  t.rc.(slot) <- t.rc.(slot) - 1;
  if t.rc.(slot) = 0 then begin
    if t.debug then
      Bytes.fill t.arena (off t slot) t.sl_bytes '\xDE';
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1;
    t.in_use <- t.in_use - 1;
    t.releases <- t.releases + 1
  end

let defer_release t slot =
  check_loaned t slot "defer_release";
  t.deferred <- slot :: t.deferred

let drain_deferred t =
  match t.deferred with
  | [] -> ()
  | ds ->
      t.deferred <- [];
      List.iter (release t) (List.rev ds)

let slice t slot ~len =
  check_loaned t slot "slice";
  if len > t.sl_bytes then invalid_arg "Pool.slice: len exceeds slot size";
  Slice.make t.astr ~off:(off t slot) ~len

let slot_of_slice t (sl : Slice.t) =
  if sl.Slice.base == t.astr then Some (sl.Slice.off / t.sl_bytes) else None

let in_use t = t.in_use
let hwm t = t.hwm
let loans t = t.loans
let releases t = t.releases
let overruns t = t.overruns

let stats t =
  [ ("slots", t.n_slots); ("hwm", t.hwm); ("in_use", t.in_use);
    ("loans", t.loans); ("releases", t.releases); ("overruns", t.overruns) ]
