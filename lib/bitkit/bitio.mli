(** Bit-granular readers and writers for header codecs.

    Every sublayer header in the repository is encoded/decoded through this
    module, which makes bit-level field boundaries explicit — the mechanism
    by which test T3 (each sublayer owns disjoint packet bits) is enforced
    and audited. Multi-bit fields are MSB-first (network order).

    The writer is backed by a growable byte buffer and supports
    reserve-then-patch ({!Writer.reserve_uint16}/{!Writer.patch_uint16}),
    so a checksum field can be written after the bytes it covers without a
    second encoding pass. The reader can be opened directly over a
    {!Slice.t} without copying. *)

module Writer : sig
  type t

  val create : ?size:int -> unit -> t
  (** [size] is the initial buffer capacity in bytes (default 64). *)

  val bit : t -> bool -> unit
  val bits : t -> int -> int -> unit
  (** [bits w value width] appends the low [width] bits of [value],
      MSB first. [0 <= width <= 62]. *)

  val uint8 : t -> int -> unit
  val uint16 : t -> int -> unit
  val uint32 : t -> int -> unit

  val bytes : t -> string -> unit
  (** [bytes w s] appends [s]; the writer must be byte-aligned. The copy
      is charged to {!Slice.copied_bytes}. *)

  val slice : t -> Slice.t -> unit
  (** [slice w sl] appends the viewed bytes (byte-aligned, counted). *)

  val reserve_uint16 : t -> int
  (** Appends a 16-bit zero placeholder and returns a token for
      {!patch_uint16}. The writer must be byte-aligned. *)

  val patch_uint16 : t -> int -> int -> unit
  (** [patch_uint16 w token v] overwrites a reserved field in place. *)

  val internet_checksum : t -> int
  (** RFC 1071 one's-complement checksum over the bytes written so far
      (reserved fields still hold zero, which contributes nothing). *)

  val pad_to_byte : t -> unit
  val bit_length : t -> int
  val byte_length : t -> int
  val contents : t -> string
  (** Zero-pads to a byte boundary and returns the packed bytes. *)

  val to_slice : t -> Slice.t
end

module Reader : sig
  type t

  exception Truncated

  val of_string : string -> t
  val of_slice : Slice.t -> t
  (** Reads directly out of the slice's base string — no copy. *)

  val bit : t -> bool
  val bits : t -> int -> int
  val uint8 : t -> int
  val uint16 : t -> int
  val uint32 : t -> int
  val bytes : t -> int -> string
  (** [bytes r n] reads [n] whole bytes; the reader must be byte-aligned.
      The copy is charged to {!Slice.copied_bytes}. *)

  val skip_to_byte : t -> unit
  val remaining_bits : t -> int
  val rest : t -> string
  (** All remaining bytes, copied out (reader must be byte-aligned). *)

  val rest_slice : t -> Slice.t
  (** All remaining bytes as a zero-copy view (byte-aligned). *)
end
