(** Immutable string views: the currency of the zero-copy data path.

    A slice is [base] plus a window [\[off, off+len)]. Narrowing with
    {!sub} shares the base and costs nothing; only {!to_string}, {!blit}
    and {!concat} actually move bytes, and each such move is charged to a
    process-wide counter ({!copied_bytes}) so benchmarks can report exact
    bytes-copied-per-packet figures. The record is exposed read-only so
    readers ({!Bitio.Reader.of_slice}) can be built without a copy; never
    mutate [base] through other aliases. *)

type t = private { base : string; off : int; len : int }

val empty : t
val of_string : string -> t
(** Zero-copy whole-string view. *)

val make : string -> off:int -> len:int -> t
val length : t -> int
val is_empty : t -> bool
val get : t -> int -> char
val sub : t -> pos:int -> len:int -> t
(** Zero-copy narrowing; [pos] is relative to the slice. *)

val copy_cost : t -> int
(** Bytes {!to_string} would charge: [0] for a whole-string view,
    {!length} otherwise. Lets callers attribute a materialisation to a
    local counter without bracketing the shared {!copied_bytes} atomic
    (which other domains mutate concurrently in sharded runs). *)

val to_string : t -> string
(** Materializes the view. A whole-string view returns [base] without
    copying; anything narrower copies (and is counted). *)

val blit : t -> Bytes.t -> int -> unit
(** [blit t dst pos] copies the viewed bytes into [dst] (counted).

    Accounting rule, shared by every materialisation path: each physical
    byte copy is charged exactly once, at the operation that performs it.
    Views are free; {!to_string} of a whole-string view is free (it
    returns [base]); [blit] always moves bytes so it always charges —
    including blits into a pool slot, which is why callers emitting
    through {!Pool} must not ALSO charge {!copy_cost} for the same
    bytes. *)

val add_to_buffer : Buffer.t -> t -> unit
(** Append the viewed bytes to a buffer (counted): the app-ingest copy,
    without materialising an intermediate string. *)

val equal : t -> t -> bool
(** Content equality, copy-free. *)

val equal_string : t -> string -> bool
val concat : t list -> t
val hexdump : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Copy accounting} *)

val note_copy : int -> unit
(** Charge [n] bytes to the copy counter (used by {!Bitio} and channel
    corruption, which copy through other paths). The counter is atomic,
    so domains running shards in parallel never lose updates. *)

val copied_bytes : unit -> int
val reset_copied : unit -> unit
