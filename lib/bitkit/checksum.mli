(** Non-CRC error-detection codes.

    Weaker (and cheaper) alternatives to CRCs for the error-detection
    sublayer, used by the replaceability experiments and by the transport
    wire format (the Internet checksum). *)

val parity : string -> bool
(** Even parity over all bits: [true] iff the number of 1 bits is odd. *)

val parity_sub : string -> pos:int -> len:int -> bool
(** {!parity} over the substring [pos, pos+len) without copying it. *)

val internet : string -> int
(** RFC 1071 16-bit one's-complement checksum (as used by IP/TCP/UDP).
    Odd-length input is zero-padded. Result is in [0, 0xFFFF]. *)

val internet_sub : string -> pos:int -> len:int -> int
(** {!internet} over the substring [pos, pos+len) without copying it —
    how a {!Slice} view is validated in place. *)

val internet_valid : string -> bool
(** [internet_valid s] checks a buffer that embeds its own checksum:
    the sum over the whole buffer must be zero. *)

val fletcher16 : string -> int

val fletcher16_sub : string -> pos:int -> len:int -> int
(** {!fletcher16} over the substring [pos, pos+len) without copying it. *)

val fletcher32 : string -> int32
val adler32 : string -> int32

(** {1 Streaming forms}

    Fold a digest over a chain of byte regions (a wirebuf's headers then
    payload) as if they were one flat buffer:
    [finish (update (update init ...) ...)] equals the one-shot digest of
    the concatenation. States are plain ints/bools, so updating never
    allocates — the substrate of the chain-digest detectors. *)

val internet_init : int
val internet_update : int -> string -> pos:int -> len:int -> int
val internet_finish : int -> int

val fletcher16_init : int
val fletcher16_update : int -> string -> pos:int -> len:int -> int
val fletcher16_finish : int -> int

val parity_init : bool
val parity_update : bool -> string -> pos:int -> len:int -> bool
val parity_finish : bool -> bool
