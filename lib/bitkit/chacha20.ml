let mask = 0xFFFFFFFF

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let quarter_round (a, b, c, d) =
  let a = (a + b) land mask in
  let d = rotl (d lxor a) 16 in
  let c = (c + d) land mask in
  let b = rotl (b lxor c) 12 in
  let a = (a + b) land mask in
  let d = rotl (d lxor a) 8 in
  let c = (c + d) land mask in
  let b = rotl (b lxor c) 7 in
  (a, b, c, d)

let word32_le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let qr st a b c d =
  let xa, xb, xc, xd = quarter_round (st.(a), st.(b), st.(c), st.(d)) in
  st.(a) <- xa;
  st.(b) <- xb;
  st.(c) <- xc;
  st.(d) <- xd

let block ~key ~counter ~nonce =
  if String.length key <> 32 then invalid_arg "Chacha20: key must be 32 bytes";
  if String.length nonce <> 12 then invalid_arg "Chacha20: nonce must be 12 bytes";
  let init = Array.make 16 0 in
  init.(0) <- 0x61707865;
  init.(1) <- 0x3320646e;
  init.(2) <- 0x79622d32;
  init.(3) <- 0x6b206574;
  for i = 0 to 7 do
    init.(4 + i) <- word32_le key (4 * i)
  done;
  init.(12) <- counter land mask;
  for i = 0 to 2 do
    init.(13 + i) <- word32_le nonce (4 * i)
  done;
  let st = Array.copy init in
  for _ = 1 to 10 do
    (* column rounds *)
    qr st 0 4 8 12;
    qr st 1 5 9 13;
    qr st 2 6 10 14;
    qr st 3 7 11 15;
    (* diagonal rounds *)
    qr st 0 5 10 15;
    qr st 1 6 11 12;
    qr st 2 7 8 13;
    qr st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let w = (st.(i) + init.(i)) land mask in
    Bytes.set out (4 * i) (Char.chr (w land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((w lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((w lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr ((w lsr 24) land 0xFF))
  done;
  Bytes.to_string out

(* In-place keystream XOR over a region of [b]: the pooled seal path,
   where the plaintext was already emitted into an arena slot and the
   ciphertext replaces it without a fresh buffer. The per-block keystream
   strings still allocate; eliminating those would mean threading scratch
   state through the cipher core, which E27 reports honestly instead. *)
let xor_into ~key ?(counter = 1) ~nonce b ~pos ~len =
  let i = ref 0 in
  let blk = ref counter in
  while !i < len do
    let ks = block ~key ~counter:!blk ~nonce in
    let chunk = min 64 (len - !i) in
    for j = 0 to chunk - 1 do
      Bytes.set b (pos + !i + j)
        (Char.chr (Char.code (Bytes.get b (pos + !i + j)) lxor Char.code ks.[j]))
    done;
    i := !i + chunk;
    incr blk
  done

let encrypt ~key ?(counter = 1) ~nonce plaintext =
  let n = String.length plaintext in
  let out = Bytes.create n in
  let i = ref 0 in
  let blk = ref counter in
  while !i < n do
    let ks = block ~key ~counter:!blk ~nonce in
    let chunk = min 64 (n - !i) in
    for j = 0 to chunk - 1 do
      Bytes.set out (!i + j)
        (Char.chr (Char.code plaintext.[!i + j] lxor Char.code ks.[j]))
    done;
    i := !i + chunk;
    incr blk
  done;
  Bytes.to_string out
