(** Generic table-driven cyclic redundancy checks.

    The error-detection sublayer of the data link (paper §2.1) is the
    canonical example of sublayer replaceability: "go from say CRC-32 to
    CRC-64 without changing other sublayers". This module provides the CRC
    engine and the standard parameterisations used by those experiments.

    Widths from 8 to 64 bits are supported; [refin] must equal [refout]
    (true of every catalogued CRC we use). *)

type params = {
  name : string;
  width : int;
  poly : int64;
  init : int64;
  refin : bool;
  refout : bool;
  xorout : int64;
  check : int64;  (** expected CRC of "123456789", for self-test *)
}

type t

val make : params -> t
(** Builds the 256-entry lookup table for [params]. *)

val params : t -> params

val digest : t -> string -> int64
(** [digest t s] is the CRC of [s]. *)

val digest_sub : t -> string -> int -> int -> int64
(** [digest_sub t s pos len] is the CRC of the slice [s.[pos..pos+len-1]]. *)

val self_test : t -> bool
(** [self_test t] checks [digest t "123456789" = params.check]. *)

(** {1 Streaming form}

    [finish t (update t (init t) s pos len)] equals [digest_sub t s pos
    len], and consecutive [update]s digest a chain of byte regions as if
    they were one flat buffer — the substrate of the chain-digest
    detectors, which fold over a wirebuf's headers and payload without
    flattening them. *)

val init : t -> int64
val update : t -> int64 -> string -> int -> int -> int64
val finish : t -> int64 -> int64

(** Catalogue of standard CRCs. *)

(** CRC-8 (SMBus, poly 0x07); CRC-16/CCITT-FALSE (0x1021); CRC-16/ARC
    (reflected, 0x8005); CRC-32/ISO-HDLC (zlib); CRC-32C (Castagnoli);
    CRC-64/XZ (reflected); CRC-64/ECMA-182 (unreflected). *)

val crc8 : params
val crc16_ccitt : params
val crc16_arc : params
val crc32 : params
val crc32c : params
val crc64_xz : params
val crc64_ecma : params

val all : params list
