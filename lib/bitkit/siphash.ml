let rotl x n = Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let word64_le s off =
  let b i = Int64.of_int (Char.code s.[off + i]) in
  let ( ||| ) = Int64.logor in
  b 0
  ||| Int64.shift_left (b 1) 8
  ||| Int64.shift_left (b 2) 16
  ||| Int64.shift_left (b 3) 24
  ||| Int64.shift_left (b 4) 32
  ||| Int64.shift_left (b 5) 40
  ||| Int64.shift_left (b 6) 48
  ||| Int64.shift_left (b 7) 56

type state = { mutable v0 : int64; mutable v1 : int64; mutable v2 : int64; mutable v3 : int64 }

let sipround s =
  s.v0 <- Int64.add s.v0 s.v1;
  s.v1 <- rotl s.v1 13;
  s.v1 <- Int64.logxor s.v1 s.v0;
  s.v0 <- rotl s.v0 32;
  s.v2 <- Int64.add s.v2 s.v3;
  s.v3 <- rotl s.v3 16;
  s.v3 <- Int64.logxor s.v3 s.v2;
  s.v0 <- Int64.add s.v0 s.v3;
  s.v3 <- rotl s.v3 21;
  s.v3 <- Int64.logxor s.v3 s.v0;
  s.v2 <- Int64.add s.v2 s.v1;
  s.v1 <- rotl s.v1 17;
  s.v1 <- Int64.logxor s.v1 s.v2;
  s.v2 <- rotl s.v2 32

let hash_sub ~key msg ~pos ~len =
  if String.length key <> 16 then invalid_arg "Siphash: key must be 16 bytes";
  if pos < 0 || len < 0 || pos + len > String.length msg then
    invalid_arg "Siphash.hash_sub";
  let k0 = word64_le key 0 and k1 = word64_le key 8 in
  let s =
    { v0 = Int64.logxor 0x736f6d6570736575L k0;
      v1 = Int64.logxor 0x646f72616e646f6dL k1;
      v2 = Int64.logxor 0x6c7967656e657261L k0;
      v3 = Int64.logxor 0x7465646279746573L k1 }
  in
  let n = len in
  let full = n / 8 in
  for i = 0 to full - 1 do
    let m = word64_le msg (pos + (8 * i)) in
    s.v3 <- Int64.logxor s.v3 m;
    sipround s;
    sipround s;
    s.v0 <- Int64.logxor s.v0 m
  done;
  (* final block: remaining bytes plus the length in the top byte *)
  let last = ref (Int64.shift_left (Int64.of_int (n land 0xFF)) 56) in
  for i = 0 to (n mod 8) - 1 do
    last :=
      Int64.logor !last
        (Int64.shift_left
           (Int64.of_int (Char.code msg.[pos + (8 * full) + i]))
           (8 * i))
  done;
  s.v3 <- Int64.logxor s.v3 !last;
  sipround s;
  sipround s;
  s.v0 <- Int64.logxor s.v0 !last;
  s.v2 <- Int64.logxor s.v2 0xFFL;
  sipround s;
  sipround s;
  sipround s;
  sipround s;
  Int64.logxor (Int64.logxor s.v0 s.v1) (Int64.logxor s.v2 s.v3)

let hash ~key msg = hash_sub ~key msg ~pos:0 ~len:(String.length msg)

let tag_into ~key msg ~pos ~len dst dpos =
  let h = hash_sub ~key msg ~pos ~len in
  for i = 0 to 7 do
    Bytes.set dst (dpos + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical h (8 * i)) land 0xFF))
  done

let tag ~key msg =
  let h = hash ~key msg in
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical h (8 * i)) land 0xFF))
