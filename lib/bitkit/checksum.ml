let parity_sub s ~pos ~len =
  let p = ref 0 in
  for i = pos to pos + len - 1 do
    let b = ref (Char.code s.[i]) in
    while !b <> 0 do
      p := !p lxor (!b land 1);
      b := !b lsr 1
    done
  done;
  !p = 1

let parity s = parity_sub s ~pos:0 ~len:(String.length s)

let internet_sub s ~pos ~len =
  let sum = ref 0 in
  let i = ref pos in
  let fin = pos + len in
  while !i + 1 < fin do
    sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (Char.code s.[fin - 1] lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let internet s = internet_sub s ~pos:0 ~len:(String.length s)

let internet_valid s = internet s = 0

(* Streaming form, for digesting a chain of byte regions (a wirebuf's
   headers then payload) as if they were one buffer. The state packs the
   folded 16-bit partial sum with a phase bit saying whether the next
   byte lands in the high or low half of its 16-bit word — chunk
   boundaries need not be even. All-int, so updates never allocate. *)
let internet_init = 0

let internet_update st s ~pos ~len =
  let sum = ref (st lsr 1) and odd = ref (st land 1 = 1) in
  for i = pos to pos + len - 1 do
    let c = Char.code (String.unsafe_get s i) in
    if !odd then begin
      sum := !sum + c;
      odd := false
    end
    else begin
      sum := !sum + (c lsl 8);
      odd := true
    end
  done;
  let sum = ref !sum in
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  (!sum lsl 1) lor (if !odd then 1 else 0)

let internet_finish st = lnot (st lsr 1) land 0xFFFF

let fletcher16_sub s ~pos ~len =
  let a = ref 0 and b = ref 0 in
  for i = pos to pos + len - 1 do
    a := (!a + Char.code s.[i]) mod 255;
    b := (!b + !a) mod 255
  done;
  (!b lsl 8) lor !a

let fletcher16 s = fletcher16_sub s ~pos:0 ~len:(String.length s)

(* Streaming form: both running sums stay below 255, so the state packs
   into one int and updates never allocate. *)
let fletcher16_init = 0

let fletcher16_update st s ~pos ~len =
  let a = ref (st land 0xFF) and b = ref (st lsr 8) in
  for i = pos to pos + len - 1 do
    a := (!a + Char.code (String.unsafe_get s i)) mod 255;
    b := (!b + !a) mod 255
  done;
  (!b lsl 8) lor !a

let fletcher16_finish st = st

let parity_init = false

let parity_update st s ~pos ~len =
  if parity_sub s ~pos ~len then not st else st

let parity_finish st = st

let fletcher32 s =
  (* Operates on 16-bit words, zero-padding odd input. *)
  let n = String.length s in
  let a = ref 0 and b = ref 0 in
  let word i =
    let hi = Char.code s.[i] in
    let lo = if i + 1 < n then Char.code s.[i + 1] else 0 in
    (hi lsl 8) lor lo
  in
  let i = ref 0 in
  while !i < n do
    a := (!a + word !i) mod 65535;
    b := (!b + !a) mod 65535;
    i := !i + 2
  done;
  Int32.logor (Int32.shift_left (Int32.of_int !b) 16) (Int32.of_int !a)

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  Int32.logor (Int32.shift_left (Int32.of_int !b) 16) (Int32.of_int !a)
