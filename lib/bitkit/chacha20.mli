(** ChaCha20 stream cipher (RFC 8439).

    Used by the transport record sublayer for payload confidentiality.
    The implementation is validated against the RFC's quarter-round and
    block-function test vectors in the test suite. Encryption and
    decryption are the same operation (XOR keystream). *)

val block : key:string -> counter:int -> nonce:string -> string
(** [block ~key ~counter ~nonce] is the 64-byte keystream block for a
    32-byte [key] and 12-byte [nonce]. *)

val encrypt : key:string -> ?counter:int -> nonce:string -> string -> string
(** XOR the input with the keystream starting at block [counter]
    (default 1, as in the RFC's AEAD construction). *)

val xor_into :
  key:string -> ?counter:int -> nonce:string -> Bytes.t -> pos:int -> len:int -> unit
(** In-place {!encrypt} over [b.[pos..pos+len-1]] — the pooled seal path,
    transforming bytes already emitted into an arena slot. *)

val quarter_round : int * int * int * int -> int * int * int * int
(** Exposed for the RFC 8439 §2.1.1 test vector. Operands and results
    are 32-bit values in OCaml ints. *)
