(** The narrow interface between the route-computation sublayer and its
    neighbours in the stack (Figure 4).

    Downward it receives neighbor up/down events from the neighbor-
    determination sublayer and exchanges its own PDUs with peer routers;
    upward it only ever calls [install]/[uninstall] on the forwarding
    table. A routing protocol is a {!factory}; {!Distance_vector} and
    {!Link_state} both implement it, which is what lets experiment E2 swap
    them without touching any other sublayer. *)

type instance = {
  rname : string;
  neighbor_up : ifindex:int -> Addr.t -> unit;
  neighbor_down : ifindex:int -> Addr.t -> unit;
  on_pdu : ifindex:int -> string -> unit;
      (** A routing PDU arriving from the neighbor on [ifindex]. *)
  routes : unit -> (Addr.t * int) list;
      (** Current (destination, interface) view, for inspection. *)
}

type env = {
  engine : Sim.Engine.t;
  self : Addr.t;
  send : int -> string -> unit;  (** send a routing PDU on an interface *)
  install : Addr.t -> int -> unit;  (** (re)install a host route *)
  uninstall : Addr.t -> unit;
  stats : Sublayer.Stats.scope;
      (** the protocol instance's own counter scope, named after the
          protocol; the router also counts route-install churn here *)
}

type factory = { protocol : string; make : env -> instance }
