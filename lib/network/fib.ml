type node = {
  mutable hop : int option;
  mutable zero : node option;
  mutable one : node option;
}

type t = {
  root : node;
  mutable count : int;
  inserts : Sublayer.Stats.counter;
  removes : Sublayer.Stats.counter;
  lookups : Sublayer.Stats.counter;
  misses : Sublayer.Stats.counter;
}

let fresh () = { hop = None; zero = None; one = None }

let create ?stats () =
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "fib"
  in
  { root = fresh (); count = 0;
    inserts = Sublayer.Stats.counter sc "inserts";
    removes = Sublayer.Stats.counter sc "removes";
    lookups = Sublayer.Stats.counter sc "lookups";
    misses = Sublayer.Stats.counter sc "misses" }

let bit addr i = (addr lsr (31 - i)) land 1

let insert t prefix hop =
  Sublayer.Stats.incr t.inserts;
  let rec go node depth =
    if depth = prefix.Addr.len then begin
      if node.hop = None then t.count <- t.count + 1;
      node.hop <- Some hop
    end
    else begin
      let child =
        if bit prefix.Addr.net depth = 0 then (
          match node.zero with
          | Some c -> c
          | None ->
              let c = fresh () in
              node.zero <- Some c;
              c)
        else
          match node.one with
          | Some c -> c
          | None ->
              let c = fresh () in
              node.one <- Some c;
              c
      in
      go child (depth + 1)
    end
  in
  go t.root 0

let remove t prefix =
  Sublayer.Stats.incr t.removes;
  (* Leaves empty interior nodes in place; fine for simulation scale. *)
  let rec go node depth =
    match node with
    | None -> ()
    | Some node ->
        if depth = prefix.Addr.len then begin
          if node.hop <> None then t.count <- t.count - 1;
          node.hop <- None
        end
        else if bit prefix.Addr.net depth = 0 then go node.zero (depth + 1)
        else go node.one (depth + 1)
  in
  go (Some t.root) 0

let lookup t addr =
  Sublayer.Stats.incr t.lookups;
  let rec go node depth best =
    match node with
    | None -> best
    | Some node ->
        let best = match node.hop with Some _ as h -> h | None -> best in
        if depth = 32 then best
        else if bit addr depth = 0 then go node.zero (depth + 1) best
        else go node.one (depth + 1) best
  in
  let hit = go (Some t.root) 0 None in
  if hit = None then Sublayer.Stats.incr t.misses;
  hit

let size t = t.count

let entries t =
  let acc = ref [] in
  let rec go node net depth =
    (match node.hop with
    | Some hop -> acc := ({ Addr.net; len = depth }, hop) :: !acc
    | None -> ());
    (match node.zero with Some c -> go c net (depth + 1) | None -> ());
    match node.one with
    | Some c -> go c (net lor (1 lsl (31 - depth))) (depth + 1)
    | None -> ()
  in
  go t.root 0 0;
  List.sort
    (fun (a, _) (b, _) ->
      match Int.compare a.Addr.net b.Addr.net with
      | 0 -> Int.compare a.Addr.len b.Addr.len
      | c -> c)
    !acc

let clear t =
  t.root.hop <- None;
  t.root.zero <- None;
  t.root.one <- None;
  t.count <- 0
