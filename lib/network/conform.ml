(* Conformance observation for the router⇄FIB T2 interface. Unlike the
   transport and data-link boundaries this one is direct function calls,
   not a machine stack, so the probe is a record of observation closures
   the router invokes at its own call sites: route-computation writes
   (install/uninstall) and data-path reads (lookup). *)

type fib_probe = {
  obs_insert : fresh:bool -> unit;
  obs_remove : removed:bool -> unit;
  obs_lookup : hit:bool -> unit;
}

let fib mon ~key =
  match mon with
  | None ->
      {
        obs_insert = (fun ~fresh:_ -> ());
        obs_remove = (fun ~removed:_ -> ());
        obs_lookup = (fun ~hit:_ -> ());
      }
  | Some reg ->
      let spec = Monitor.Specs.fib in
      let inst = Monitor.Runtime.attach reg ~key spec in
      let insert = Monitor.Spec.msg_id spec Monitor.Spec.Down "insert"
      and remove = Monitor.Spec.msg_id spec Monitor.Spec.Down "remove"
      and lookup = Monitor.Spec.msg_id spec Monitor.Spec.Up "lookup" in
      {
        obs_insert =
          (fun ~fresh ->
            Monitor.Runtime.observe inst insert ~a:(Bool.to_int fresh) ~b:0);
        obs_remove =
          (fun ~removed ->
            Monitor.Runtime.observe inst remove ~a:(Bool.to_int removed) ~b:0);
        obs_lookup =
          (fun ~hit ->
            Monitor.Runtime.observe inst lookup ~a:(Bool.to_int hit) ~b:0);
      }
