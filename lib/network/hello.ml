type config = { interval : float; hold_multiplier : int }

let default_config = { interval = 1.0; hold_multiplier = 3 }

type event = Up of { ifindex : int; peer : Addr.t } | Down of { ifindex : int; peer : Addr.t }

type neighbor = { peer : Addr.t; mutable deadline : float }

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  self : Addr.t;
  send : int -> string -> unit;
  notify : event -> unit;
  mutable interfaces : int list;
  neighbors : (int, neighbor) Hashtbl.t;
  mutable handles : Sim.Engine.handle list;
  mutable stopped : bool;
  sent : Sublayer.Stats.counter;
  received : Sublayer.Stats.counter;
  ups : Sublayer.Stats.counter;
  downs : Sublayer.Stats.counter;
}

let magic = 0x48 (* 'H' *)

let encode self =
  let w = Bitkit.Bitio.Writer.create () in
  Bitkit.Bitio.Writer.uint8 w magic;
  Bitkit.Bitio.Writer.uint32 w self;
  Bitkit.Bitio.Writer.contents w

let decode s =
  match
    let r = Bitkit.Bitio.Reader.of_string s in
    if Bitkit.Bitio.Reader.uint8 r <> magic then None
    else Some (Bitkit.Bitio.Reader.uint32 r)
  with
  | v -> v
  | exception Bitkit.Bitio.Reader.Truncated -> None

let create engine ?stats cfg ~self ~send ~notify =
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "hello"
  in
  let counted_notify ups downs event =
    (match event with
    | Up _ -> Sublayer.Stats.incr ups
    | Down _ -> Sublayer.Stats.incr downs);
    notify event
  in
  let ups = Sublayer.Stats.counter sc "neighbor_ups" in
  let downs = Sublayer.Stats.counter sc "neighbor_downs" in
  { engine; cfg; self; send; notify = counted_notify ups downs;
    interfaces = []; neighbors = Hashtbl.create 8;
    handles = []; stopped = false;
    sent = Sublayer.Stats.counter sc "hellos_sent";
    received = Sublayer.Stats.counter sc "hellos_received";
    ups; downs }

let hold t = t.cfg.interval *. Float.of_int t.cfg.hold_multiplier

(* One sweep timer expires dead neighbors; granularity = interval. *)
let rec arm_sweep t =
  if not t.stopped then begin
    let h =
      Sim.Engine.schedule t.engine ~after:t.cfg.interval (fun () ->
          let now = Sim.Engine.now t.engine in
          let dead =
            Hashtbl.fold
              (fun ifindex n acc -> if n.deadline < now then (ifindex, n.peer) :: acc else acc)
              t.neighbors []
          in
          List.iter
            (fun (ifindex, peer) ->
              Hashtbl.remove t.neighbors ifindex;
              t.notify (Down { ifindex; peer }))
            dead;
          arm_sweep t)
    in
    t.handles <- h :: t.handles
  end

let rec arm_hello t ifindex =
  if not t.stopped then begin
    let h =
      Sim.Engine.schedule t.engine ~after:t.cfg.interval (fun () ->
          Sublayer.Stats.incr t.sent;
          t.send ifindex (encode t.self);
          arm_hello t ifindex)
    in
    t.handles <- h :: t.handles
  end

let add_interface t ifindex =
  if not (List.mem ifindex t.interfaces) then begin
    t.interfaces <- ifindex :: t.interfaces;
    Sublayer.Stats.incr t.sent;
    t.send ifindex (encode t.self);
    arm_hello t ifindex;
    if List.length t.interfaces = 1 then arm_sweep t
  end

let on_pdu t ~ifindex pdu =
  match decode pdu with
  | None -> ()
  | Some peer -> (
      Sublayer.Stats.incr t.received;
      let deadline = Sim.Engine.now t.engine +. hold t in
      match Hashtbl.find_opt t.neighbors ifindex with
      | Some n when Addr.equal n.peer peer -> n.deadline <- deadline
      | Some n ->
          (* The device at the end of the link changed identity. *)
          t.notify (Down { ifindex; peer = n.peer });
          Hashtbl.replace t.neighbors ifindex { peer; deadline };
          t.notify (Up { ifindex; peer })
      | None ->
          Hashtbl.replace t.neighbors ifindex { peer; deadline };
          t.notify (Up { ifindex; peer }))

let neighbors t =
  Hashtbl.fold (fun ifindex n acc -> (ifindex, n.peer) :: acc) t.neighbors []
  |> List.sort compare

let stop t =
  t.stopped <- true;
  List.iter Sim.Engine.cancel t.handles;
  t.handles <- []
