type config = { refresh_interval : float }

let default_config = { refresh_interval = 5.0 }

type lsp = { origin : Addr.t; seq : int; adj : Addr.t list }

type state = {
  env : Routing.env;
  cfg : config;
  lsdb : (Addr.t, lsp) Hashtbl.t;
  neighbors : (int, Addr.t) Hashtbl.t;  (** alive adjacencies *)
  mutable own_seq : int;
  mutable installed : (Addr.t, int) Hashtbl.t;
  c_sent : Sublayer.Stats.counter;
  c_received : Sublayer.Stats.counter;
  c_undecodable : Sublayer.Stats.counter;
  c_spf_runs : Sublayer.Stats.counter;
}

let magic = 0x4C (* 'L' *)

let encode_lsp lsp =
  let w = Bitkit.Bitio.Writer.create () in
  Bitkit.Bitio.Writer.uint8 w magic;
  Bitkit.Bitio.Writer.uint32 w lsp.origin;
  Bitkit.Bitio.Writer.uint32 w lsp.seq;
  Bitkit.Bitio.Writer.uint8 w (List.length lsp.adj);
  List.iter (fun n -> Bitkit.Bitio.Writer.uint32 w n) lsp.adj;
  Bitkit.Bitio.Writer.contents w

let decode_lsp s =
  match
    let r = Bitkit.Bitio.Reader.of_string s in
    if Bitkit.Bitio.Reader.uint8 r <> magic then None
    else begin
      let origin = Bitkit.Bitio.Reader.uint32 r in
      let seq = Bitkit.Bitio.Reader.uint32 r in
      let count = Bitkit.Bitio.Reader.uint8 r in
      let adj = List.init count (fun _ -> Bitkit.Bitio.Reader.uint32 r) in
      Some { origin; seq; adj }
    end
  with
  | v -> v
  | exception Bitkit.Bitio.Reader.Truncated -> None

let flood st ?except lsp =
  let pdu = encode_lsp lsp in
  Hashtbl.iter
    (fun i _ ->
      if Some i <> except then begin
        Sublayer.Stats.incr st.c_sent;
        st.env.Routing.send i pdu
      end)
    st.neighbors

(* Unit-cost SPF from self over two-way-confirmed adjacencies; returns the
   first-hop neighbor for every reachable destination. *)
let spf st =
  let adjacency a =
    match Hashtbl.find_opt st.lsdb a with Some l -> l.adj | None -> []
  in
  let two_way a b = List.mem b (adjacency a) && List.mem a (adjacency b) in
  let self = st.env.Routing.self in
  let first_hop = Hashtbl.create 32 in
  let visited = Hashtbl.create 32 in
  Hashtbl.replace visited self ();
  let queue = Queue.create () in
  (* Seed with live adjacencies (the self LSP mirrors them). *)
  Hashtbl.iter
    (fun _ peer ->
      if (not (Hashtbl.mem visited peer)) && two_way self peer then begin
        Hashtbl.replace visited peer ();
        Hashtbl.replace first_hop peer peer;
        Queue.add peer queue
      end)
    st.neighbors;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let hop = Hashtbl.find first_hop u in
    List.iter
      (fun v ->
        if (not (Hashtbl.mem visited v)) && two_way u v then begin
          Hashtbl.replace visited v ();
          Hashtbl.replace first_hop v hop;
          Queue.add v queue
        end)
      (adjacency u)
  done;
  first_hop

let recompute st =
  Sublayer.Stats.incr st.c_spf_runs;
  let first_hop = spf st in
  let ifindex_of_peer peer =
    Hashtbl.fold
      (fun i p acc -> if Addr.equal p peer then Some i else acc)
      st.neighbors None
  in
  let next = Hashtbl.create 32 in
  Hashtbl.iter
    (fun dst hop ->
      match ifindex_of_peer hop with
      | Some i -> Hashtbl.replace next dst i
      | None -> ())
    first_hop;
  (* Diff against what is currently installed. *)
  Hashtbl.iter
    (fun dst i ->
      match Hashtbl.find_opt st.installed dst with
      | Some j when j = i -> ()
      | _ -> st.env.Routing.install dst i)
    next;
  Hashtbl.iter
    (fun dst _ -> if not (Hashtbl.mem next dst) then st.env.Routing.uninstall dst)
    st.installed;
  st.installed <- next

let regenerate_own st =
  st.own_seq <- st.own_seq + 1;
  let adj = Hashtbl.fold (fun _ p acc -> p :: acc) st.neighbors [] in
  let lsp = { origin = st.env.Routing.self; seq = st.own_seq; adj } in
  Hashtbl.replace st.lsdb lsp.origin lsp;
  flood st lsp;
  recompute st

let neighbor_up st ~ifindex peer =
  Hashtbl.replace st.neighbors ifindex peer;
  (* Database sync: give the new adjacency everything we know. *)
  Hashtbl.iter
    (fun _ lsp ->
      Sublayer.Stats.incr st.c_sent;
      st.env.Routing.send ifindex (encode_lsp lsp))
    st.lsdb;
  regenerate_own st

let neighbor_down st ~ifindex _peer =
  Hashtbl.remove st.neighbors ifindex;
  regenerate_own st

let on_pdu st ~ifindex pdu =
  match decode_lsp pdu with
  | None -> Sublayer.Stats.incr st.c_undecodable
  | Some lsp ->
      Sublayer.Stats.incr st.c_received;
      if Addr.equal lsp.origin st.env.Routing.self then begin
        (* A stale copy of our own LSP is circulating; outbid it. *)
        if lsp.seq >= st.own_seq then begin
          st.own_seq <- lsp.seq;
          regenerate_own st
        end
      end
      else begin
        let fresher =
          match Hashtbl.find_opt st.lsdb lsp.origin with
          | Some existing -> lsp.seq > existing.seq
          | None -> true
        in
        if fresher then begin
          Hashtbl.replace st.lsdb lsp.origin lsp;
          flood st ~except:ifindex lsp;
          recompute st
        end
      end

let routes st =
  Hashtbl.fold (fun dst i acc -> (dst, i) :: acc) st.installed [] |> List.sort compare

let factory ?(config = default_config) () =
  {
    Routing.protocol = "link-state";
    make =
      (fun env ->
        let st =
          { env; cfg = config; lsdb = Hashtbl.create 32; neighbors = Hashtbl.create 8;
            own_seq = 0; installed = Hashtbl.create 32;
            c_sent = Sublayer.Stats.counter env.Routing.stats "lsps_sent";
            c_received = Sublayer.Stats.counter env.Routing.stats "lsps_received";
            c_undecodable = Sublayer.Stats.counter env.Routing.stats "undecodable";
            c_spf_runs = Sublayer.Stats.counter env.Routing.stats "spf_runs" }
        in
        let rec refresh () =
          ignore
            (Sim.Engine.schedule env.Routing.engine ~after:config.refresh_interval
               (fun () ->
                 (match Hashtbl.find_opt st.lsdb env.Routing.self with
                 | Some own -> flood st own
                 | None -> ());
                 refresh ()))
        in
        refresh ();
        {
          Routing.rname = "link-state";
          neighbor_up = (fun ~ifindex peer -> neighbor_up st ~ifindex peer);
          neighbor_down = (fun ~ifindex peer -> neighbor_down st ~ifindex peer);
          on_pdu = (fun ~ifindex pdu -> on_pdu st ~ifindex pdu);
          routes = (fun () -> routes st);
        });
  }
