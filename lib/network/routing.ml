type instance = {
  rname : string;
  neighbor_up : ifindex:int -> Addr.t -> unit;
  neighbor_down : ifindex:int -> Addr.t -> unit;
  on_pdu : ifindex:int -> string -> unit;
  routes : unit -> (Addr.t * int) list;
}

type env = {
  engine : Sim.Engine.t;
  self : Addr.t;
  send : int -> string -> unit;
  install : Addr.t -> int -> unit;
  uninstall : Addr.t -> unit;
  stats : Sublayer.Stats.scope;
      (* The protocol's own counter scope (named after the protocol);
         the router also counts [routes_installed]/[routes_uninstalled]
         here, since install churn is the protocol's doing. *)
}

type factory = { protocol : string; make : env -> instance }
