(** Conformance observation for the router⇄FIB T2 interface (the only
    coupling between route computation and forwarding). The router calls
    these closures at its FIB call sites; with no registry they are
    no-ops, so a monitored and an unmonitored router behave identically.

    The spec ({!Monitor.Specs.fib}) tracks the table size through
    observed writes and flags a forwarding hit claimed against an empty
    table, or a remove of a present route when nothing was installed. *)

type fib_probe = {
  obs_insert : fresh:bool -> unit;
      (** [fresh] — the prefix was not previously present. *)
  obs_remove : removed:bool -> unit;
      (** [removed] — the prefix was present and is now gone. *)
  obs_lookup : hit:bool -> unit;
}

val fib : Monitor.Runtime.t option -> key:string -> fib_probe
