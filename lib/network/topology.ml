type link = {
  ends : int * int;
  fwd : Router.frame Sim.Channel.t;  (* low node -> high node *)
  rev : Router.frame Sim.Channel.t;
  mutable saved : Sim.Channel.config;
  mutable up : bool;
}

type node = { router : Router.t; received : Packet.t Queue.t }

type t = {
  engine : Sim.Engine.t;
  nodes : node array;
  links : (int * int) list ref;
  link_tbl : (int * int, link) Hashtbl.t;
}

let engine t = t.engine
let size t = Array.length t.nodes
let router t i = t.nodes.(i).router

let line n = List.init (n - 1) (fun i -> (i, i + 1))

let ring n = line n @ [ (n - 1, 0) ]

let grid w h =
  let id x y = (y * w) + x in
  let horizontal =
    List.concat
      (List.init h (fun y -> List.init (w - 1) (fun x -> (id x y, id (x + 1) y))))
  in
  let vertical =
    List.concat
      (List.init (h - 1) (fun y -> List.init w (fun x -> (id x y, id x (y + 1)))))
  in
  horizontal @ vertical

let random ~n ~extra ~seed =
  let rng = Bitkit.Rng.create seed in
  (* Random spanning tree: attach each node to a random earlier one. *)
  let tree = List.init (n - 1) (fun i -> (Bitkit.Rng.int rng (i + 1), i + 1)) in
  (* The complete graph bounds how many chords can exist at all. *)
  let extra = min extra ((n * (n - 1) / 2) - (n - 1)) in
  let norm (a, b) = if a < b then (a, b) else (b, a) in
  let mem edges e = List.mem (norm e) (List.map norm edges) in
  let rec chords k edges =
    if k = 0 then edges
    else begin
      let a = Bitkit.Rng.int rng n and b = Bitkit.Rng.int rng n in
      if a = b || mem edges (a, b) then chords k edges
      else chords (k - 1) ((min a b, max a b) :: edges)
    end
  in
  chords extra tree

let norm (a, b) = if a < b then (a, b) else (b, a)

let build engine ?(channel = Sim.Channel.ideal) ?(ins = Sublayer.Instrument.none)
    ~routing ~n edges =
  let module I = Sublayer.Instrument in
  let stats = ins.I.stats and tracer = ins.I.tracer
  and monitors = ins.I.monitors and telemetry = ins.I.telemetry in
  (* One shared registry for the whole network, registered once. *)
  (match (telemetry, stats) with
  | Some tele, Some reg ->
      Sublayer.Stats.telemetry_source tele ~name:"net" reg
  | _ -> ());
  let nodes =
    Array.init n (fun i ->
        let received = Queue.create () in
        let router =
          Router.create engine ?stats ?tracer ?monitors ~addr:(Addr.node i)
            ~routing
            ~deliver:(fun p -> Queue.add p received)
            ()
        in
        { router; received })
  in
  let link_tbl = Hashtbl.create (List.length edges) in
  let t = { engine; nodes; links = ref []; link_tbl } in
  List.iter
    (fun e ->
      let a, b = norm e in
      if a = b || Hashtbl.mem link_tbl (a, b) then invalid_arg "Topology.build: bad edge";
      (* Each direction is a [Sublayer.Link]: the interface transmits
         into the link, the channel delivers into it, the link hands
         frames to the far router. Channels stay addressable for
         fail/heal. *)
      let lab = Sublayer.Link.make ~id:(Printf.sprintf "%d->%d" a b) () in
      let lba = Sublayer.Link.make ~id:(Printf.sprintf "%d->%d" b a) () in
      let fwd =
        Sim.Channel.create engine channel ~size:Router.frame_size
          ~deliver:(fun f -> Sublayer.Link.deliver lab f)
          ()
      in
      let rev =
        Sim.Channel.create engine channel ~size:Router.frame_size
          ~deliver:(fun f -> Sublayer.Link.deliver lba f)
          ()
      in
      Sublayer.Link.set_transmit lab (fun f -> Sim.Channel.send fwd f);
      Sublayer.Link.set_transmit lba (fun f -> Sim.Channel.send rev f);
      let if_a =
        Router.add_interface nodes.(a).router
          ~transmit:(fun f -> Sublayer.Link.transmit lab f)
      in
      let if_b =
        Router.add_interface nodes.(b).router
          ~transmit:(fun f -> Sublayer.Link.transmit lba f)
      in
      Sublayer.Link.attach lab (fun f -> Router.on_frame nodes.(b).router ~ifindex:if_b f);
      Sublayer.Link.attach lba (fun f -> Router.on_frame nodes.(a).router ~ifindex:if_a f);
      Hashtbl.replace link_tbl (a, b) { ends = (a, b); fwd; rev; saved = channel; up = true };
      t.links := (a, b) :: !(t.links))
    edges;
  t

(* String convenience for tests; [of_string] wraps without copying. *)
let send t ~src ~dst payload =
  Router.originate t.nodes.(src).router ~dst:(Addr.node dst)
    (Bitkit.Slice.of_string payload)

let received t i = List.of_seq (Queue.to_seq t.nodes.(i).received)

let clear_received t = Array.iter (fun n -> Queue.clear n.received) t.nodes

let find_link t a b =
  match Hashtbl.find_opt t.link_tbl (norm (a, b)) with
  | Some l -> l
  | None -> invalid_arg "Topology: no such link"

let fail_link t a b =
  let l = find_link t a b in
  if l.up then begin
    l.saved <- Sim.Channel.config l.fwd;
    l.up <- false;
    let dead = { l.saved with Sim.Channel.loss = 1.0 } in
    Sim.Channel.set_config l.fwd dead;
    Sim.Channel.set_config l.rev dead
  end

let heal_link t a b =
  let l = find_link t a b in
  if not l.up then begin
    l.up <- true;
    Sim.Channel.set_config l.fwd l.saved;
    Sim.Channel.set_config l.rev l.saved
  end

let flap_link t a b ~at ~duration =
  let e = engine t in
  ignore (Sim.Engine.at e ~time:at (fun () -> fail_link t a b));
  ignore (Sim.Engine.at e ~time:(at +. duration) (fun () -> heal_link t a b))

let alive_edges t =
  Hashtbl.fold (fun e l acc -> if l.up then e :: acc else acc) t.link_tbl []
  |> List.sort compare

let reference_distances ~n edges =
  let inf = max_int in
  let d = Array.make_matrix n n inf in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0
  done;
  List.iter
    (fun (a, b) ->
      d.(a).(b) <- 1;
      d.(b).(a) <- 1)
    edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) <> inf && d.(k).(j) <> inf && d.(i).(k) + d.(k).(j) < d.(i).(j)
        then d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  d

(* Map (node, ifindex) back to the node at the other end of that
   interface's link. Interface indices are assigned in edge order, so we
   reconstruct the mapping by replaying edge construction order. *)
let neighbor_of t node ifindex =
  match List.assoc_opt ifindex (Router.neighbors t.nodes.(node).router) with
  | Some peer_addr ->
      let n = Array.length t.nodes in
      let rec find i =
        if i >= n then None
        else if Addr.equal (Addr.node i) peer_addr then Some i
        else find (i + 1)
      in
      find 0
  | None -> None

let fib_path t ~src ~dst =
  let n = Array.length t.nodes in
  let dst_addr = Addr.node dst in
  let rec walk here acc budget =
    if here = dst then Some (List.rev (here :: acc))
    else if budget = 0 || List.mem here acc then None
    else begin
      match Fib.lookup (Router.fib t.nodes.(here).router) dst_addr with
      | None -> None
      | Some ifindex -> (
          match neighbor_of t here ifindex with
          | None -> None
          | Some next -> walk next (here :: acc) (budget - 1))
    end
  in
  walk src [] (2 * n)

let converged t =
  let n = Array.length t.nodes in
  let d = reference_distances ~n (alive_edges t) in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && !ok then begin
        match fib_path t ~src:i ~dst:j with
        | Some path ->
            if d.(i).(j) = max_int || List.length path - 1 <> d.(i).(j) then ok := false
        | None -> if d.(i).(j) <> max_int then ok := false
      end
    done
  done;
  !ok

let converge ?(step = 0.5) ?(timeout = 300.) t =
  let deadline = Sim.Engine.now t.engine +. timeout in
  let rec go () =
    if converged t then Some (Sim.Engine.now t.engine)
    else if Sim.Engine.now t.engine >= deadline then None
    else begin
      Sim.Engine.run ~until:(Sim.Engine.now t.engine +. step) t.engine;
      go ()
    end
  in
  go ()

let routing_traffic_bytes t =
  Hashtbl.fold
    (fun _ l acc ->
      acc + (Sim.Channel.stats l.fwd).Sim.Channel.bytes_sent
      + (Sim.Channel.stats l.rev).Sim.Channel.bytes_sent)
    t.link_tbl 0

let stop t = Array.iter (fun n -> Router.stop n.router) t.nodes
