(** Network-layer packets.

    Test T3 for the network sublayers holds because they use "completely
    different packets (e.g., LSPs versus IP packets), not merely different
    headers in the same packet": {!t} is the data-plane packet; hello and
    routing PDUs travel as distinct frame kinds (see {!Router.frame}). *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  ttl : int;
  nonce : int;  (** unique per packet; survives forwarding *)
  payload : Bitkit.Slice.t;
      (** carried by reference: forwarding never copies the payload, and
          a transport segment originated as a slice reaches the far
          host's [from_wire] as the same buffer *)
}

val make : ?ttl:int -> ?nonce:int -> src:Addr.t -> dst:Addr.t -> Bitkit.Slice.t -> t
(** Default TTL 64. The nonce identifies {e this} packet even when an
    identical payload is in flight between the same pair (tracing keys
    correlation state on it); it defaults to a fresh process-wide value
    and is preserved across TTL decrements. *)

val decrement_ttl : t -> t option
(** [None] when the TTL expires. *)

val size : t -> int
(** Approximate on-wire bytes (fixed 12-byte header + payload). *)

val pp : Format.formatter -> t -> unit
