(** A router composed from the three network sublayers of Figure 4:
    neighbor determination ({!Hello}), route computation (any
    {!Routing.factory}) and forwarding ({!Fib} + this module's data path).

    The three communicate only through narrow interfaces: hello events
    feed route computation; route computation writes the FIB; the data
    path reads it. They also use distinct frame kinds on the wire
    ({!frame}), satisfying test T3 with "completely different packets". *)

type frame =
  | Hello_pdu of string
  | Routing_pdu of string
  | Data of Packet.t

val frame_size : frame -> int

type stats = {
  mutable forwarded : int;
  mutable delivered : int;
  mutable originated : int;
  mutable no_route : int;
  mutable ttl_expired : int;
}

type t

val create :
  Sim.Engine.t ->
  ?hello_config:Hello.config ->
  ?stats:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  addr:Addr.t ->
  routing:Routing.factory ->
  deliver:(Packet.t -> unit) ->
  unit ->
  t
(** When [stats] is given, each network sublayer registers its counters
    under its own scope: [router.*] (the forwarding path), [fib.*],
    [hello.*], and a scope named after the routing protocol (e.g.
    [distance-vector.*]).

    When [tracer] is given (share one across the topology), the origin of
    every data packet opens a "transit" span on the track named by its
    address; intermediate routers add "forward" instants parented on it,
    and the terminating router closes it with detail [delivered],
    [no_route] or [ttl_expired].

    When [monitors] is given (share one across the topology), a
    {!Monitor.Specs.fib} instance keyed on the router's address checks
    the route-computation⇄forwarding interface: FIB writes and data-path
    lookups must stay consistent with the table size. *)

val addr : t -> Addr.t

val add_interface : t -> transmit:(frame -> unit) -> int
(** Attach a link; returns the interface index and starts HELLOs on it. *)

val on_frame : t -> ifindex:int -> frame -> unit
(** Wire this as the link's delivery callback. *)

val originate : t -> dst:Addr.t -> Bitkit.Slice.t -> unit
(** Send a locally-generated data packet. *)

val fib : t -> Fib.t
val routing : t -> Routing.instance
val neighbors : t -> (int * Addr.t) list
val stats : t -> stats
(** Snapshot of the forwarding-path counters (fresh record per call). *)

val stop : t -> unit
