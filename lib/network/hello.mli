(** Neighbor determination — the lowest network sublayer (Figure 4):
    periodic HELLO messages on every interface, a hold timer per neighbor,
    and up/down notifications to the route-computation sublayer above.
    Its PDU format (a magic byte plus the sender's address) is owned
    entirely by this sublayer. *)

type config = {
  interval : float;      (** seconds between HELLOs *)
  hold_multiplier : int; (** neighbor declared down after this × interval *)
}

val default_config : config

type event = Up of { ifindex : int; peer : Addr.t } | Down of { ifindex : int; peer : Addr.t }

type t

val create :
  Sim.Engine.t ->
  ?stats:Sublayer.Stats.scope ->
  config ->
  self:Addr.t ->
  send:(int -> string -> unit) ->
  notify:(event -> unit) ->
  t
(** Counters (when [stats] is given): [hellos_sent], [hellos_received],
    [neighbor_ups], [neighbor_downs]. *)

val add_interface : t -> int -> unit
(** Start HELLOs on an interface. *)

val on_pdu : t -> ifindex:int -> string -> unit
(** A HELLO PDU received on an interface. Malformed PDUs are ignored. *)

val neighbors : t -> (int * Addr.t) list
(** Currently-alive (ifindex, peer) pairs. *)

val stop : t -> unit
(** Cancel all timers (end of simulation). *)
