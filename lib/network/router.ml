type frame = Hello_pdu of string | Routing_pdu of string | Data of Packet.t

let frame_size = function
  | Hello_pdu s | Routing_pdu s -> String.length s
  | Data p -> Packet.size p

type stats = {
  mutable forwarded : int;
  mutable delivered : int;
  mutable originated : int;
  mutable no_route : int;
  mutable ttl_expired : int;
}

(* Counter-backed; [stats] snapshots these into the legacy record. *)
type counters = {
  c_forwarded : Sublayer.Stats.counter;
  c_delivered : Sublayer.Stats.counter;
  c_originated : Sublayer.Stats.counter;
  c_no_route : Sublayer.Stats.counter;
  c_ttl_expired : Sublayer.Stats.counter;
}

type t = {
  addr : Addr.t;
  fib : Fib.t;
  mutable hello : Hello.t option;
  mutable routing : Routing.instance option;
  interfaces : (int, frame -> unit) Hashtbl.t;
  mutable next_ifindex : int;
  deliver : Packet.t -> unit;
  ctrs : counters;
  sp : Sublayer.Span.ctx;
  probe : Conform.fib_probe;
}

(* Correlation key for one data packet's network transit: every router it
   crosses can rebuild the key from the packet alone, so the origin's
   "transit" span is closed by whichever router terminates the packet
   (delivery, no-route, TTL expiry). Keyed on the per-packet nonce —
   src/dst/payload collide when identical payloads are in flight between
   the same pair, which left the first packet's span open forever. *)
let pkey (p : Packet.t) = Printf.sprintf "pkt:%d" p.Packet.nonce

let transmit t ifindex frame =
  match Hashtbl.find_opt t.interfaces ifindex with
  | Some send -> send frame
  | None -> ()

let create engine ?(hello_config = Hello.default_config) ?stats ?tracer
    ?monitors ~addr ~routing ~deliver () =
  (* One scope per network sublayer: forwarding ("router"), the FIB, the
     hello machinery, and the route-computation protocol under its own
     name — T3's separation applied to the counters. *)
  let in_scope sub =
    match stats with
    | Some reg -> Sublayer.Stats.scope reg sub
    | None -> Sublayer.Stats.unregistered sub
  in
  let rsc = in_scope "router" in
  let ctrs =
    {
      c_forwarded = Sublayer.Stats.counter rsc "forwarded";
      c_delivered = Sublayer.Stats.counter rsc "delivered";
      c_originated = Sublayer.Stats.counter rsc "originated";
      c_no_route = Sublayer.Stats.counter rsc "no_route";
      c_ttl_expired = Sublayer.Stats.counter rsc "ttl_expired";
    }
  in
  let sp =
    match tracer with
    | Some tr ->
        Sublayer.Span.make ~tracer:tr ~stats:rsc
          ~now:(fun () -> Sim.Engine.now engine)
          ~track:(Addr.to_string addr) "router"
    | None -> Sublayer.Span.disabled "router"
  in
  let t =
    { addr; fib = Fib.create ~stats:(in_scope "fib") (); hello = None;
      routing = None; interfaces = Hashtbl.create 4; next_ifindex = 0; deliver;
      ctrs; sp; probe = Conform.fib monitors ~key:(Addr.to_string addr) }
  in
  let proto_scope = in_scope routing.Routing.protocol in
  let installed = Sublayer.Stats.counter proto_scope "routes_installed" in
  let uninstalled = Sublayer.Stats.counter proto_scope "routes_uninstalled" in
  let env =
    {
      Routing.engine;
      self = addr;
      send = (fun i pdu -> transmit t i (Routing_pdu pdu));
      install =
        (fun dst ifindex ->
          Sublayer.Stats.incr installed;
          let before = Fib.size t.fib in
          Fib.insert t.fib (Addr.host dst) ifindex;
          t.probe.Conform.obs_insert ~fresh:(Fib.size t.fib > before));
      uninstall =
        (fun dst ->
          Sublayer.Stats.incr uninstalled;
          let before = Fib.size t.fib in
          Fib.remove t.fib (Addr.host dst);
          t.probe.Conform.obs_remove ~removed:(Fib.size t.fib < before));
      stats = proto_scope;
    }
  in
  let instance = routing.Routing.make env in
  let notify = function
    | Hello.Up { ifindex; peer } -> instance.Routing.neighbor_up ~ifindex peer
    | Hello.Down { ifindex; peer } -> instance.Routing.neighbor_down ~ifindex peer
  in
  let hello =
    Hello.create engine hello_config ~stats:(in_scope "hello") ~self:addr
      ~send:(fun i pdu -> transmit t i (Hello_pdu pdu))
      ~notify
  in
  t.hello <- Some hello;
  t.routing <- Some instance;
  t

let addr t = t.addr
let fib t = t.fib
let routing t = Option.get t.routing
let stats t =
  {
    forwarded = Sublayer.Stats.value t.ctrs.c_forwarded;
    delivered = Sublayer.Stats.value t.ctrs.c_delivered;
    originated = Sublayer.Stats.value t.ctrs.c_originated;
    no_route = Sublayer.Stats.value t.ctrs.c_no_route;
    ttl_expired = Sublayer.Stats.value t.ctrs.c_ttl_expired;
  }
let neighbors t = Hello.neighbors (Option.get t.hello)

let add_interface t ~transmit:send =
  let ifindex = t.next_ifindex in
  t.next_ifindex <- ifindex + 1;
  Hashtbl.replace t.interfaces ifindex send;
  Hello.add_interface (Option.get t.hello) ifindex;
  ifindex

(* The forwarding data path: local delivery, FIB lookup, TTL handling.
   Route computation is invisible here except through the FIB. *)
let route t packet =
  if Addr.equal packet.Packet.dst t.addr then begin
    Sublayer.Stats.incr t.ctrs.c_delivered;
    if Sublayer.Span.active t.sp then
      ignore
        (Sublayer.Span.close_id t.sp
           ~id:(Sublayer.Span.take t.sp (pkey packet))
           ~detail:"delivered" ());
    t.deliver packet
  end
  else begin
    let next = Fib.lookup t.fib packet.Packet.dst in
    t.probe.Conform.obs_lookup ~hit:(next <> None);
    match next with
    | None ->
        Sublayer.Stats.incr t.ctrs.c_no_route;
        if Sublayer.Span.active t.sp then
          ignore
            (Sublayer.Span.close_id t.sp
               ~id:(Sublayer.Span.take t.sp (pkey packet))
               ~detail:"no_route" ())
    | Some ifindex -> (
        match Packet.decrement_ttl packet with
        | None ->
            Sublayer.Stats.incr t.ctrs.c_ttl_expired;
            if Sublayer.Span.active t.sp then
              ignore
                (Sublayer.Span.close_id t.sp
                   ~id:(Sublayer.Span.take t.sp (pkey packet))
                   ~detail:"ttl_expired" ())
        | Some packet ->
            Sublayer.Stats.incr t.ctrs.c_forwarded;
            if Sublayer.Span.active t.sp then begin
              (* Lookup, not take: the transit span stays bound until a
                 terminating router closes it. *)
              let id = Sublayer.Span.lookup t.sp (pkey packet) in
              Sublayer.Span.instant t.sp ~parent:id
                ~trace:(Sublayer.Span.trace_of_id t.sp ~id)
                ~detail:("ttl=" ^ string_of_int packet.Packet.ttl) "forward"
            end;
            transmit t ifindex (Data packet))
  end

let on_frame t ~ifindex frame =
  match frame with
  | Hello_pdu pdu -> Hello.on_pdu (Option.get t.hello) ~ifindex pdu
  | Routing_pdu pdu -> (routing t).Routing.on_pdu ~ifindex pdu
  | Data packet -> route t packet

let originate t ~dst payload =
  Sublayer.Stats.incr t.ctrs.c_originated;
  let packet = Packet.make ~src:t.addr ~dst payload in
  if Sublayer.Span.active t.sp then begin
    let id =
      Sublayer.Span.start_free t.sp
        ~trace:(Sublayer.Span.fresh_trace t.sp) "transit"
    in
    Sublayer.Span.bind t.sp (pkey packet) id
  end;
  route t packet

let stop t = Hello.stop (Option.get t.hello)
