type config = {
  advertise_interval : float;
  triggered_delay : float;
  infinity_metric : int;
}

let default_config =
  { advertise_interval = 2.0; triggered_delay = 0.05; infinity_metric = 16 }

type entry = { mutable metric : int; mutable via : int }

type state = {
  env : Routing.env;
  cfg : config;
  table : (Addr.t, entry) Hashtbl.t;  (** excludes self *)
  neighbors : (int, Addr.t) Hashtbl.t;
  mutable dirty : bool;
  mutable trigger_armed : bool;
  c_sent : Sublayer.Stats.counter;
  c_received : Sublayer.Stats.counter;
  c_undecodable : Sublayer.Stats.counter;
  c_triggered : Sublayer.Stats.counter;
}

let magic = 0x44 (* 'D' *)

let encode_vector entries =
  let w = Bitkit.Bitio.Writer.create () in
  Bitkit.Bitio.Writer.uint8 w magic;
  Bitkit.Bitio.Writer.uint16 w (List.length entries);
  List.iter
    (fun (dst, metric) ->
      Bitkit.Bitio.Writer.uint32 w dst;
      Bitkit.Bitio.Writer.uint8 w metric)
    entries;
  Bitkit.Bitio.Writer.contents w

let decode_vector s =
  match
    let r = Bitkit.Bitio.Reader.of_string s in
    if Bitkit.Bitio.Reader.uint8 r <> magic then None
    else begin
      let count = Bitkit.Bitio.Reader.uint16 r in
      let entries =
        List.init count (fun _ ->
            let dst = Bitkit.Bitio.Reader.uint32 r in
            let metric = Bitkit.Bitio.Reader.uint8 r in
            (dst, metric))
      in
      Some entries
    end
  with
  | v -> v
  | exception Bitkit.Bitio.Reader.Truncated -> None

(* The advertised vector for interface [i]: self at metric 0, every table
   entry at its metric — except routes learned via [i], poisoned to
   infinity (split horizon with poisoned reverse). *)
let vector_for st i =
  let entries =
    Hashtbl.fold
      (fun dst e acc ->
        let metric = if e.via = i then st.cfg.infinity_metric else e.metric in
        (dst, metric) :: acc)
      st.table []
  in
  (st.env.Routing.self, 0) :: entries

let advertise st =
  Hashtbl.iter
    (fun i _ ->
      Sublayer.Stats.incr st.c_sent;
      st.env.Routing.send i (encode_vector (vector_for st i)))
    st.neighbors

let arm_trigger st =
  st.dirty <- true;
  if not st.trigger_armed then begin
    st.trigger_armed <- true;
    ignore
      (Sim.Engine.schedule st.env.Routing.engine ~after:st.cfg.triggered_delay (fun () ->
           st.trigger_armed <- false;
           if st.dirty then begin
             st.dirty <- false;
             Sublayer.Stats.incr st.c_triggered;
             advertise st
           end))
  end

let set_route st dst metric via =
  match Hashtbl.find_opt st.table dst with
  | Some e ->
      let was_reachable = e.metric < st.cfg.infinity_metric in
      if e.metric <> metric || e.via <> via then begin
        e.metric <- metric;
        e.via <- via;
        let reachable = metric < st.cfg.infinity_metric in
        if reachable then st.env.Routing.install dst via
        else if was_reachable then st.env.Routing.uninstall dst;
        arm_trigger st
      end
  | None ->
      Hashtbl.replace st.table dst { metric; via };
      if metric < st.cfg.infinity_metric then begin
        st.env.Routing.install dst via;
        arm_trigger st
      end

let neighbor_up st ~ifindex peer =
  Hashtbl.replace st.neighbors ifindex peer;
  (match Hashtbl.find_opt st.table peer with
  | Some e when e.metric <= 1 -> ()
  | _ -> set_route st peer 1 ifindex);
  (* Give the new neighbor our view immediately. *)
  Sublayer.Stats.incr st.c_sent;
  st.env.Routing.send ifindex (encode_vector (vector_for st ifindex))

let neighbor_down st ~ifindex _peer =
  Hashtbl.remove st.neighbors ifindex;
  Hashtbl.iter
    (fun dst e -> if e.via = ifindex then set_route st dst st.cfg.infinity_metric e.via)
    st.table

let on_pdu st ~ifindex pdu =
  match decode_vector pdu with
  | None -> Sublayer.Stats.incr st.c_undecodable
  | Some entries ->
      Sublayer.Stats.incr st.c_received;
      List.iter
        (fun (dst, metric) ->
          if not (Addr.equal dst st.env.Routing.self) then begin
            let cost = min (metric + 1) st.cfg.infinity_metric in
            match Hashtbl.find_opt st.table dst with
            | Some e when e.via = ifindex ->
                (* Whatever our current next hop says overrides. *)
                if e.metric <> cost then set_route st dst cost ifindex
            | Some e when cost < e.metric -> set_route st dst cost ifindex
            | Some _ -> ()
            | None -> if cost < st.cfg.infinity_metric then set_route st dst cost ifindex
          end)
        entries

let routes st =
  Hashtbl.fold
    (fun dst e acc -> if e.metric < st.cfg.infinity_metric then (dst, e.via) :: acc else acc)
    st.table []
  |> List.sort compare

let factory ?(config = default_config) () =
  {
    Routing.protocol = "distance-vector";
    make =
      (fun env ->
        let st =
          { env; cfg = config; table = Hashtbl.create 32; neighbors = Hashtbl.create 8;
            dirty = false; trigger_armed = false;
            c_sent = Sublayer.Stats.counter env.Routing.stats "vectors_sent";
            c_received = Sublayer.Stats.counter env.Routing.stats "vectors_received";
            c_undecodable = Sublayer.Stats.counter env.Routing.stats "undecodable";
            c_triggered = Sublayer.Stats.counter env.Routing.stats "triggered_updates" }
        in
        let rec periodic () =
          ignore
            (Sim.Engine.schedule env.Routing.engine ~after:config.advertise_interval
               (fun () ->
                 advertise st;
                 periodic ()))
        in
        periodic ();
        {
          Routing.rname = "distance-vector";
          neighbor_up = (fun ~ifindex peer -> neighbor_up st ~ifindex peer);
          neighbor_down = (fun ~ifindex peer -> neighbor_down st ~ifindex peer);
          on_pdu = (fun ~ifindex pdu -> on_pdu st ~ifindex pdu);
          routes = (fun () -> routes st);
        });
  }
