type t = { src : Addr.t; dst : Addr.t; ttl : int; nonce : int; payload : Bitkit.Slice.t }

(* Process-wide, so two packets are never confused with each other no
   matter which router minted them. Only ever used for correlation keys
   (never serialised into reports or span output), so seeded runs stay
   reproducible. *)
let next_nonce = ref 0

let make ?(ttl = 64) ?nonce ~src ~dst payload =
  let nonce =
    match nonce with
    | Some n -> n
    | None ->
        incr next_nonce;
        !next_nonce
  in
  { src; dst; ttl; nonce; payload }

let decrement_ttl p = if p.ttl <= 1 then None else Some { p with ttl = p.ttl - 1 }

let size p = 12 + Bitkit.Slice.length p.payload

let pp fmt p =
  Format.fprintf fmt "%a -> %a ttl=%d (%d bytes)" Addr.pp p.src Addr.pp p.dst p.ttl
    (Bitkit.Slice.length p.payload)
