(** The forwarding information base: a longest-prefix-match binary trie.

    Forwarding is the top network sublayer (Figure 4); its only coupling
    to route computation is this table — route computation calls
    {!insert}/{!remove}, the data path calls {!lookup}. Swapping the
    routing protocol cannot touch forwarding because this narrow interface
    is all they share. *)

type t

val create : ?stats:Sublayer.Stats.scope -> unit -> t
(** Counters (when [stats] is given): [inserts], [removes], [lookups],
    [misses]. *)

val insert : t -> Addr.prefix -> int -> unit
(** [insert t prefix ifindex] installs or replaces a route. *)

val remove : t -> Addr.prefix -> unit
(** No-op if absent. *)

val lookup : t -> Addr.t -> int option
(** Longest-prefix-match next-hop interface. *)

val size : t -> int
val entries : t -> (Addr.prefix * int) list
(** Sorted by (prefix net, len). *)

val clear : t -> unit
