type config = {
  advertise_interval : float;
  triggered_delay : float;
  max_path : int;
}

let default_config =
  { advertise_interval = 2.0; triggered_delay = 0.05; max_path = 32 }

(* A route to [dst]: the interface to the next hop and the full path of
   router addresses (next hop first). *)
type entry = { mutable path : Addr.t list; mutable via : int; mutable valid : bool }

type state = {
  env : Routing.env;
  cfg : config;
  table : (Addr.t, entry) Hashtbl.t;
  neighbors : (int, Addr.t) Hashtbl.t;
  mutable dirty : bool;
  mutable trigger_armed : bool;
  c_sent : Sublayer.Stats.counter;
  c_received : Sublayer.Stats.counter;
  c_undecodable : Sublayer.Stats.counter;
  c_loops_rejected : Sublayer.Stats.counter;
}

let magic = 0x50 (* 'P' *)

(* PDU: magic, count, then per destination: addr32, path_len:8, addrs. *)
let encode_vector entries =
  let w = Bitkit.Bitio.Writer.create () in
  Bitkit.Bitio.Writer.uint8 w magic;
  Bitkit.Bitio.Writer.uint16 w (List.length entries);
  List.iter
    (fun (dst, path) ->
      Bitkit.Bitio.Writer.uint32 w dst;
      Bitkit.Bitio.Writer.uint8 w (List.length path);
      List.iter (fun a -> Bitkit.Bitio.Writer.uint32 w a) path)
    entries;
  Bitkit.Bitio.Writer.contents w

let decode_vector s =
  match
    let r = Bitkit.Bitio.Reader.of_string s in
    if Bitkit.Bitio.Reader.uint8 r <> magic then None
    else begin
      let count = Bitkit.Bitio.Reader.uint16 r in
      let entries =
        List.init count (fun _ ->
            let dst = Bitkit.Bitio.Reader.uint32 r in
            let len = Bitkit.Bitio.Reader.uint8 r in
            let path = List.init len (fun _ -> Bitkit.Bitio.Reader.uint32 r) in
            (dst, path))
      in
      Some entries
    end
  with
  | v -> v
  | exception Bitkit.Bitio.Reader.Truncated -> None

(* Our advertisement: ourselves (empty path, meaning "I am the
   destination") plus every valid route, each with our address prepended
   by the receiver's perspective — we send the path as-is; the receiver
   prepends us. *)
let vector_for st =
  (st.env.Routing.self, [])
  :: Hashtbl.fold
       (fun dst e acc -> if e.valid then (dst, e.path) :: acc else acc)
       st.table []

let advertise st =
  let pdu = encode_vector (vector_for st) in
  Hashtbl.iter
    (fun i _ ->
      Sublayer.Stats.incr st.c_sent;
      st.env.Routing.send i pdu)
    st.neighbors

let arm_trigger st =
  st.dirty <- true;
  if not st.trigger_armed then begin
    st.trigger_armed <- true;
    ignore
      (Sim.Engine.schedule st.env.Routing.engine ~after:st.cfg.triggered_delay (fun () ->
           st.trigger_armed <- false;
           if st.dirty then begin
             st.dirty <- false;
             advertise st
           end))
  end

(* Deterministic preference: shorter path, then smaller next hop. *)
let better (p1 : Addr.t list) (p2 : Addr.t list) =
  match Int.compare (List.length p1) (List.length p2) with
  | 0 -> compare p1 p2 < 0
  | c -> c < 0

let set_route st dst path via =
  match Hashtbl.find_opt st.table dst with
  | Some e ->
      if (not e.valid) || e.path <> path || e.via <> via then begin
        let was_valid = e.valid in
        e.path <- path;
        e.via <- via;
        e.valid <- true;
        st.env.Routing.install dst via;
        ignore was_valid;
        arm_trigger st
      end
  | None ->
      Hashtbl.replace st.table dst { path; via; valid = true };
      st.env.Routing.install dst via;
      arm_trigger st

let invalidate st dst e =
  if e.valid then begin
    e.valid <- false;
    st.env.Routing.uninstall dst;
    arm_trigger st
  end

let neighbor_up st ~ifindex peer =
  Hashtbl.replace st.neighbors ifindex peer;
  (match Hashtbl.find_opt st.table peer with
  | Some e when e.valid && List.length e.path <= 1 -> ()
  | _ -> set_route st peer [ peer ] ifindex);
  Sublayer.Stats.incr st.c_sent;
  st.env.Routing.send ifindex (encode_vector (vector_for st))

let neighbor_down st ~ifindex _peer =
  Hashtbl.remove st.neighbors ifindex;
  Hashtbl.iter (fun dst e -> if e.via = ifindex then invalidate st dst e) st.table

let on_pdu st ~ifindex pdu =
  match (decode_vector pdu, Hashtbl.find_opt st.neighbors ifindex) with
  | None, _ -> Sublayer.Stats.incr st.c_undecodable
  | _, None -> ()
  | Some entries, Some neighbor ->
      Sublayer.Stats.incr st.c_received;
      List.iter
        (fun (dst, path) ->
          if not (Addr.equal dst st.env.Routing.self) then begin
            let candidate = neighbor :: path in
            (* structural loop prevention: never accept a path through
               ourselves, and bound path length *)
            if
              (not (List.exists (Addr.equal st.env.Routing.self) path))
              && List.length candidate <= st.cfg.max_path
            then begin
              match Hashtbl.find_opt st.table dst with
              | Some e when e.valid && e.via = ifindex ->
                  (* current next hop's view always supersedes *)
                  if e.path <> candidate then set_route st dst candidate ifindex
              | Some e when e.valid ->
                  if better candidate e.path then set_route st dst candidate ifindex
              | Some _ | None -> set_route st dst candidate ifindex
            end
            else begin
              Sublayer.Stats.incr st.c_loops_rejected;
              (* A looping/overlong path from our current next hop means
                 that route is gone. *)
              match Hashtbl.find_opt st.table dst with
              | Some e when e.valid && e.via = ifindex -> invalidate st dst e
              | _ -> ()
            end
          end)
        entries;
      (* implicit withdrawal: routes via this neighbor that were absent
         from the advertisement are gone *)
      let advertised = List.map fst entries in
      Hashtbl.iter
        (fun dst e ->
          if
            e.valid && e.via = ifindex
            && (not (List.exists (Addr.equal dst) advertised))
            && not (Addr.equal dst neighbor)
          then invalidate st dst e)
        st.table

let routes st =
  Hashtbl.fold (fun dst e acc -> if e.valid then (dst, e.via) :: acc else acc) st.table []
  |> List.sort compare

let factory ?(config = default_config) () =
  {
    Routing.protocol = "path-vector";
    make =
      (fun env ->
        let st =
          { env; cfg = config; table = Hashtbl.create 32; neighbors = Hashtbl.create 8;
            dirty = false; trigger_armed = false;
            c_sent = Sublayer.Stats.counter env.Routing.stats "vectors_sent";
            c_received = Sublayer.Stats.counter env.Routing.stats "vectors_received";
            c_undecodable = Sublayer.Stats.counter env.Routing.stats "undecodable";
            c_loops_rejected = Sublayer.Stats.counter env.Routing.stats "loops_rejected" }
        in
        let rec periodic () =
          ignore
            (Sim.Engine.schedule env.Routing.engine ~after:config.advertise_interval
               (fun () ->
                 advertise st;
                 periodic ()))
        in
        periodic ();
        {
          Routing.rname = "path-vector";
          neighbor_up = (fun ~ifindex peer -> neighbor_up st ~ifindex peer);
          neighbor_down = (fun ~ifindex peer -> neighbor_down st ~ifindex peer);
          on_pdu = (fun ~ifindex pdu -> on_pdu st ~ifindex pdu);
          routes = (fun () -> routes st);
        });
  }
