(** Whole-network simulation harness: builds a topology of {!Router}s over
    impaired channels, injects traffic and failures, and validates the
    control plane against a Floyd–Warshall reference. *)

type t

val engine : t -> Sim.Engine.t
val size : t -> int
val router : t -> int -> Router.t

(** Canonical edge lists. Nodes are numbered 0..n-1. *)

val line : int -> (int * int) list
val ring : int -> (int * int) list
val grid : int -> int -> (int * int) list
val random : n:int -> extra:int -> seed:int -> (int * int) list
(** A random spanning tree plus [extra] random chords — always connected. *)

val build :
  Sim.Engine.t ->
  ?channel:Sim.Channel.config ->
  ?ins:Sublayer.Instrument.t ->
  routing:Routing.factory ->
  n:int ->
  (int * int) list ->
  t
(** Every directed edge is wired as a {!Sublayer.Link} over its channel
    (interfaces transmit into links, links deliver to the far router).
    [ins] bundles the instruments: [ins.tracer] is shared by every
    router so packet transit spans opened at the origin are closed
    wherever the packet terminates; [ins.monitors] is likewise shared —
    each router attaches a router⇄FIB conformance monitor keyed on its
    address; [ins.stats] is one registry shared by all routers; with
    [ins.telemetry] too, the topology registers it once as the [net.*]
    sampling source. *)

val send : t -> src:int -> dst:int -> string -> unit
(** Originate a data packet at node [src] for node [dst]'s address. *)

val received : t -> int -> Packet.t list
(** Data packets delivered locally at a node, oldest first. *)

val clear_received : t -> unit

val fail_link : t -> int -> int -> unit
(** Make both directions lose everything (routers detect it via hello
    hold timers). *)

val heal_link : t -> int -> int -> unit

val flap_link : t -> int -> int -> at:float -> duration:float -> unit
(** Schedule a failure at virtual time [at] and the matching heal
    [duration] seconds later (both on the topology's engine). *)

val alive_edges : t -> (int * int) list

val reference_distances : n:int -> (int * int) list -> int array array
(** All-pairs hop counts (max_int = unreachable) by Floyd–Warshall. *)

val fib_path : t -> src:int -> dst:int -> int list option
(** Walk the FIBs from [src] toward [dst] without touching the engine;
    [None] on a lookup miss, a loop, or TTL-style exhaustion. The list
    includes both endpoints. *)

val converged : t -> bool
(** Every connected (per {!alive_edges}) pair has a FIB path of exactly
    the reference length, and no disconnected pair has one. *)

val converge :
  ?step:float -> ?timeout:float -> t -> float option
(** Run the simulation until {!converged} (checked every [step] seconds of
    virtual time); returns the virtual time of convergence. *)

val routing_traffic_bytes : t -> int
(** Total control-plane bytes (hello + routing PDUs) sent so far. *)

val stop : t -> unit
