type 'timer alloc_spec = {
  al_top : Alloc.cell option;
  (* machine that handles [from_above] *)
  al_bottom : Alloc.cell option;
  (* machine that handles [from_below] *)
  al_app : Alloc.cell option;
  (* the [deliver] excursion above the stack *)
  al_wire : Alloc.cell option;
  (* the [transmit] excursion below the stack *)
  al_timer : 'timer -> Alloc.cell option;
  (* owner of a firing timer *)
}

module Make (S : Machine.S) = struct
  type t = {
    engine : Sim.Engine.t;
    trace : Sim.Trace.t option;
    name : string;
    transmit : S.down_req -> unit;
    deliver : S.up_ind -> unit;
    alloc : S.timer alloc_spec option;
    mutable st : S.t;
    (* Arming a timer that is already set re-arms it, so at most one event
       per timer value is live. Timers are few per endpoint; an assoc list
       with structural equality is simplest and deterministic. *)
    mutable timers : (S.timer * Sim.Engine.handle) list;
  }

  let create engine ?trace ?alloc ~name ~transmit ~deliver st =
    { engine; trace; alloc; name; transmit; deliver; st; timers = [] }

  let state t = t.st

  let note t msg =
    match t.trace with
    | None -> ()
    | Some tr -> Sim.Trace.record tr ~time:(Sim.Engine.now t.engine) ~actor:t.name msg

  let cancel_timer t tm =
    match List.assoc_opt tm t.timers with
    | None -> ()
    | Some handle ->
        Sim.Engine.cancel handle;
        t.timers <- List.remove_assoc tm t.timers

  (* Bracket an excursion out of the stack (app delivery, wire transmit)
     or into it (entry points below) so allocation between two probe
     crossings lands on the machine actually running. Reentrancy — e.g.
     delivery calling back into [from_above] — nests via the cell stack. *)
  let excurse t cell f x =
    match t.alloc with
    | None -> f x
    | Some _ ->
        Alloc.enter cell;
        f x;
        Alloc.exit_ ()

  let rec apply t acts = List.iter (apply_one t) acts

  and apply_one t = function
    | Machine.Up ind ->
        excurse t (match t.alloc with Some a -> a.al_app | None -> None) t.deliver ind
    | Machine.Down req ->
        excurse t (match t.alloc with Some a -> a.al_wire | None -> None) t.transmit req
    | Machine.Note msg -> note t msg
    | Machine.Cancel_timer tm -> cancel_timer t tm
    | Machine.Set_timer (tm, delay) ->
        cancel_timer t tm;
        let handle = Sim.Engine.schedule t.engine ~after:delay (fun () -> fire t tm) in
        t.timers <- (tm, handle) :: t.timers

  and fire t tm =
    t.timers <- List.remove_assoc tm t.timers;
    (match t.alloc with Some a -> Alloc.enter (a.al_timer tm) | None -> ());
    let st, acts = S.handle_timer t.st tm in
    t.st <- st;
    apply t acts;
    match t.alloc with Some _ -> Alloc.exit_ () | None -> ()

  let from_above t req =
    (match t.alloc with Some a -> Alloc.enter a.al_top | None -> ());
    let st, acts = S.handle_up_req t.st req in
    t.st <- st;
    apply t acts;
    match t.alloc with Some _ -> Alloc.exit_ () | None -> ()

  let from_below t ind =
    (match t.alloc with Some a -> Alloc.enter a.al_bottom | None -> ());
    let st, acts = S.handle_down_ind t.st ind in
    t.st <- st;
    apply t acts;
    match t.alloc with Some _ -> Alloc.exit_ () | None -> ()

  let active_timers t = List.length t.timers
end
