type 'timer alloc_spec = {
  al_top : Alloc.cell option;
  (* machine that handles [from_above] *)
  al_bottom : Alloc.cell option;
  (* machine that handles [from_below] *)
  al_app : Alloc.cell option;
  (* the [deliver] excursion above the stack *)
  al_wire : Alloc.cell option;
  (* the [transmit] excursion below the stack *)
  al_timer : 'timer -> Alloc.cell option;
  (* owner of a firing timer *)
}

module Make (S : Machine.S) = struct
  type t = {
    engine : Sim.Engine.t;
    trace : Sim.Trace.t option;
    name : string;
    transmit : S.down_req -> unit;
    deliver : S.up_ind -> unit;
    alloc : S.timer alloc_spec option;
    mutable st : S.t;
    (* Arming a timer that is already set re-arms it, so at most one event
       per timer value is live. Timers are few per endpoint; an assoc list
       with structural equality is simplest and deterministic. *)
    mutable timers : (S.timer * Sim.Engine.handle) list;
    (* A halted runtime is inert: the link below it died (tunnel abort),
       so nothing must re-arm timers or transmit into the void. *)
    mutable halted : bool;
  }

  let create engine ?trace ?alloc ~name ~transmit ~deliver st =
    { engine; trace; alloc; name; transmit; deliver; st; timers = []; halted = false }

  let state t = t.st

  let note t msg =
    match t.trace with
    | None -> ()
    | Some tr -> Sim.Trace.record tr ~time:(Sim.Engine.now t.engine) ~actor:t.name msg

  let cancel_timer t tm =
    match List.assoc_opt tm t.timers with
    | None -> ()
    | Some handle ->
        Sim.Engine.cancel handle;
        t.timers <- List.remove_assoc tm t.timers

  (* Bracket an excursion out of the stack (app delivery, wire transmit)
     or into it (entry points below) so allocation between two probe
     crossings lands on the machine actually running. Reentrancy — e.g.
     delivery calling back into [from_above] — nests via the cell stack;
     [Alloc.bracket] keeps it balanced when a step or callback raises. *)
  let excurse t cell f x =
    match t.alloc with
    | None -> f x
    | Some _ -> Alloc.bracket cell (fun () -> f x)

  let rec apply t acts = List.iter (apply_one t) acts

  and apply_one t = function
    | Machine.Up ind ->
        excurse t (match t.alloc with Some a -> a.al_app | None -> None) t.deliver ind
    | Machine.Down req ->
        excurse t (match t.alloc with Some a -> a.al_wire | None -> None) t.transmit req
    | Machine.Note msg -> note t msg
    | Machine.Cancel_timer tm -> cancel_timer t tm
    | Machine.Set_timer (tm, delay) ->
        cancel_timer t tm;
        let handle = Sim.Engine.schedule t.engine ~after:delay (fun () -> fire t tm) in
        t.timers <- (tm, handle) :: t.timers

  and fire t tm =
    t.timers <- List.remove_assoc tm t.timers;
    if t.halted then ()
    else
    let body () =
      let st, acts = S.handle_timer t.st tm in
      t.st <- st;
      apply t acts
    in
    match t.alloc with
    | None -> body ()
    | Some a -> Alloc.bracket (a.al_timer tm) body

  let entry t cell step x =
    if t.halted then ()
    else
      let body () =
        let st, acts = step t.st x in
        t.st <- st;
        apply t acts
      in
      match t.alloc with
      | None -> body ()
      | Some a -> Alloc.bracket (cell a) body

  let from_above t req = entry t (fun a -> a.al_top) S.handle_up_req req
  let from_below t ind = entry t (fun a -> a.al_bottom) S.handle_down_ind ind

  let halt t =
    if not t.halted then begin
      t.halted <- true;
      List.iter (fun (_, handle) -> Sim.Engine.cancel handle) t.timers;
      t.timers <- [];
      note t "halted"
    end

  let halted t = t.halted
  let active_timers t = List.length t.timers
end
