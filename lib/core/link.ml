type 'a t = {
  l_id : string;
  l_mtu : int option;
  l_cost : float;
  mutable tx : ('a -> unit) option;
  mutable rx : ('a -> unit) option;
  mutable close_hook : (unit -> unit) option;
  mutable dead : bool;
  mutable death_subs : (unit -> unit) list;
  mutable n_tx : int;
  mutable n_rx : int;
  mutable n_dropped : int;
}

let make ?(id = "link") ?mtu ?(cost = 1.) ?close ?transmit () =
  {
    l_id = id;
    l_mtu = mtu;
    l_cost = cost;
    tx = transmit;
    rx = None;
    close_hook = close;
    dead = false;
    death_subs = [];
    n_tx = 0;
    n_rx = 0;
    n_dropped = 0;
  }

let of_channel ?(id = "channel") ?mtu ?cost ch =
  make ~id ?mtu ?cost ~transmit:(fun x -> Sim.Channel.send ch x) ()

let id t = t.l_id
let mtu t = t.l_mtu
let cost t = t.l_cost
let set_transmit t f = t.tx <- Some f
let attach t f = t.rx <- Some f

let transmit t x =
  match t.tx with
  | Some f when not t.dead ->
      t.n_tx <- t.n_tx + 1;
      f x
  | _ -> t.n_dropped <- t.n_dropped + 1

let deliver t x =
  match t.rx with
  | Some f when not t.dead ->
      t.n_rx <- t.n_rx + 1;
      f x
  | _ -> t.n_dropped <- t.n_dropped + 1

let alive t = not t.dead

let kill t =
  if not t.dead then begin
    t.dead <- true;
    let subs = List.rev t.death_subs in
    t.death_subs <- [];
    List.iter (fun f -> f ()) subs
  end

let on_death t f = if t.dead then f () else t.death_subs <- f :: t.death_subs

let close t =
  match t.close_hook with
  | Some f when not t.dead -> f ()
  | _ -> kill t

type stats = { tx : int; rx : int; dropped : int }

let stats t = { tx = t.n_tx; rx = t.n_rx; dropped = t.n_dropped }
