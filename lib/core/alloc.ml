(* Attribution context: one per domain (shards run one domain each, and a
   shared checkpoint would interleave their charge intervals). The cell
   stack handles reentrancy — app delivery can call back into the stack
   (auto-read credit) while an [enter] is open. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

type cell = { a_counter : Stats.counter }

let cell scope = { a_counter = Stats.counter scope "gc.minor_words" }
let cell_value c = Stats.value c.a_counter

type ctx = {
  mutable cur : cell option;
  mutable checkpoint : float;   (* Gc.minor_words at the last hook *)
  mutable stack : cell option array;
  mutable depth : int;
  mutable overhead : float;     (* words one Gc.minor_words read costs *)
}

(* One [Gc.minor_words] call returns a boxed float allocated *after* the
   counter is read, so its words land in the following interval. Two
   back-to-back reads measure exactly that self-cost. *)
let calibrate () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let c = Gc.minor_words () in
  Float.max (b -. a) (c -. b)

let key =
  Domain.DLS.new_key (fun () ->
      { cur = None;
        checkpoint = 0.0;
        stack = Array.make 64 None;
        depth = 0;
        overhead = calibrate () })

let overhead_words () =
  int_of_float (Domain.DLS.get key).overhead

let set_enabled b =
  (* Re-anchor the checkpoint on enable so the first charged interval
     starts now, not at domain birth. *)
  if b then begin
    let ctx = Domain.DLS.get key in
    ctx.cur <- None;
    ctx.depth <- 0;
    ctx.checkpoint <- Gc.minor_words ()
  end;
  Atomic.set enabled_flag b

let charge ctx =
  let now = Gc.minor_words () in
  (match ctx.cur with
  | Some c ->
      let d = now -. ctx.checkpoint -. ctx.overhead in
      if d > 0.0 then Stats.add c.a_counter (int_of_float d)
  | None -> ());
  ctx.checkpoint <- now

let push ctx c =
  charge ctx;
  if ctx.depth >= Array.length ctx.stack then begin
    let bigger = Array.make (2 * Array.length ctx.stack) None in
    Array.blit ctx.stack 0 bigger 0 (Array.length ctx.stack);
    ctx.stack <- bigger
  end;
  ctx.stack.(ctx.depth) <- ctx.cur;
  ctx.depth <- ctx.depth + 1;
  ctx.cur <- c

let pop ctx =
  charge ctx;
  if ctx.depth > 0 then begin
    ctx.depth <- ctx.depth - 1;
    ctx.cur <- ctx.stack.(ctx.depth);
    ctx.stack.(ctx.depth) <- None
  end
  else ctx.cur <- None

let enter c = if Atomic.get enabled_flag then push (Domain.DLS.get key) c
let exit_ () = if Atomic.get enabled_flag then pop (Domain.DLS.get key)

(* The enabled decision is taken ONCE per bracket: a [set_enabled] flip
   mid-step cannot leave an [enter] without its matching exit (or vice
   versa), and the pop runs even when [f] raises, so an exception in a
   machine step or callback never skews every later attribution on the
   domain. *)
let bracket c f =
  if Atomic.get enabled_flag then begin
    let ctx = Domain.DLS.get key in
    push ctx c;
    Fun.protect ~finally:(fun () -> pop ctx) f
  end
  else f ()

let cross c =
  if Atomic.get enabled_flag then begin
    let ctx = Domain.DLS.get key in
    charge ctx;
    ctx.cur <- c
  end
