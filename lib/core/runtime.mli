(** Runs a sublayer (or a whole {!Machine.Stack}) under the discrete-event
    simulator: timers become engine events, [Down] requests go to a
    transmit function (usually a {!Sim.Channel}), [Up] indications go to a
    delivery callback, and [Note]s are recorded in an optional trace. *)

type 'timer alloc_spec = {
  al_top : Alloc.cell option;  (** machine that handles [from_above] *)
  al_bottom : Alloc.cell option;  (** machine that handles [from_below] *)
  al_app : Alloc.cell option;  (** the [deliver] excursion above the stack *)
  al_wire : Alloc.cell option;  (** the [transmit] excursion below the stack *)
  al_timer : 'timer -> Alloc.cell option;  (** owner of a firing timer *)
}
(** Where {!Alloc} charges the words allocated at the runtime's own
    seams.  Probe taps inside the stack handle the crossings {e between}
    machines; this spec covers entry (which machine a [from_above],
    [from_below] or timer fire starts in) and the excursions out of the
    stack ([deliver]/[transmit] callbacks). *)

module Make (S : Machine.S) : sig
  type t

  val create :
    Sim.Engine.t ->
    ?trace:Sim.Trace.t ->
    ?alloc:S.timer alloc_spec ->
    name:string ->
    transmit:(S.down_req -> unit) ->
    deliver:(S.up_ind -> unit) ->
    S.t ->
    t
  (** [name] identifies this endpoint in traces.  [alloc] enables
      per-sublayer allocation attribution at the runtime seams (the
      hooks are no-ops unless {!Alloc.set_enabled} is on). *)

  val state : t -> S.t
  (** Current sublayer state (for assertions and inspection). *)

  val from_above : t -> S.up_req -> unit
  (** Inject an application-level request. *)

  val from_below : t -> S.down_ind -> unit
  (** Inject a message arriving from the wire; wire this as the channel's
      delivery callback. *)

  val halt : t -> unit
  (** Make the runtime inert: cancel every armed timer and turn
      [from_above]/[from_below]/timer fires into no-ops.  The give-up
      path for a stack whose link died underneath it (a tunnel's outer
      connection aborting) — state is kept readable, nothing runs.
      Idempotent. *)

  val halted : t -> bool
  val active_timers : t -> int
end
