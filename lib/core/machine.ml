type ('up_ind, 'down_req, 'timer) action =
  | Up of 'up_ind
  | Down of 'down_req
  | Set_timer of 'timer * float
  | Cancel_timer of 'timer
  | Note of string

module type S = sig
  val name : string

  type t
  type up_req
  type up_ind
  type down_req
  type down_ind
  type timer

  val handle_up_req : t -> up_req -> t * (up_ind, down_req, timer) action list
  val handle_down_ind : t -> down_ind -> t * (up_ind, down_req, timer) action list
  val handle_timer : t -> timer -> t * (up_ind, down_req, timer) action list
end

module Nothing = struct
  type t = |

  let absurd (x : t) = match x with _ -> .
end

module Stack
    (Upper : S)
    (Lower : S with type up_req = Upper.down_req and type up_ind = Upper.down_ind) =
struct
  let name = Upper.name ^ "/" ^ Lower.name

  type t = Upper.t * Lower.t
  type up_req = Upper.up_req
  type up_ind = Upper.up_ind
  type down_req = Lower.down_req
  type down_ind = Lower.down_ind
  type timer = (Upper.timer, Lower.timer) Either.t

  (* Route the two sublayers' action streams across the internal boundary.
     An upper [Down r] becomes a lower [handle_up_req]; a lower [Up i]
     becomes an upper [handle_down_ind]. Actions are emitted in causal
     order: effects triggered by an action fire before later sibling
     actions of the same batch. *)
  let rec drain_upper (u, l) acts out =
    match acts with
    | [] -> ((u, l), out)
    | act :: rest -> (
        match act with
        | Up i -> drain_upper (u, l) rest (Up i :: out)
        | Down r ->
            let l, lower_acts = Lower.handle_up_req l r in
            let (u, l), out = drain_lower (u, l) lower_acts out in
            drain_upper (u, l) rest out
        | Set_timer (tm, d) -> drain_upper (u, l) rest (Set_timer (Either.Left tm, d) :: out)
        | Cancel_timer tm -> drain_upper (u, l) rest (Cancel_timer (Either.Left tm) :: out)
        | Note s -> drain_upper (u, l) rest (Note (Upper.name ^ ": " ^ s) :: out))

  and drain_lower (u, l) acts out =
    match acts with
    | [] -> ((u, l), out)
    | act :: rest -> (
        match act with
        | Up i ->
            let u, upper_acts = Upper.handle_down_ind u i in
            let (u, l), out = drain_upper (u, l) upper_acts out in
            drain_lower (u, l) rest out
        | Down r -> drain_lower (u, l) rest (Down r :: out)
        | Set_timer (tm, d) -> drain_lower (u, l) rest (Set_timer (Either.Right tm, d) :: out)
        | Cancel_timer tm -> drain_lower (u, l) rest (Cancel_timer (Either.Right tm) :: out)
        | Note s -> drain_lower (u, l) rest (Note (Lower.name ^ ": " ^ s) :: out))

  let finish (st, out) = (st, List.rev out)

  let handle_up_req (u, l) req =
    let u, acts = Upper.handle_up_req u req in
    finish (drain_upper (u, l) acts [])

  let handle_down_ind (u, l) ind =
    let l, acts = Lower.handle_down_ind l ind in
    finish (drain_lower (u, l) acts [])

  let handle_timer (u, l) = function
    | Either.Left tm ->
        let u, acts = Upper.handle_timer u tm in
        finish (drain_upper (u, l) acts [])
    | Either.Right tm ->
        let l, acts = Lower.handle_timer l tm in
        finish (drain_lower (u, l) acts [])
end

module Identity (M : sig
  type msg

  val name : string
end) =
struct
  let name = M.name

  type t = unit
  type up_req = M.msg
  type up_ind = M.msg
  type down_req = M.msg
  type down_ind = M.msg
  type timer = Nothing.t

  let handle_up_req () msg = ((), [ Down msg ])
  let handle_down_ind () msg = ((), [ Up msg ])
  let handle_timer () t = Nothing.absurd t
end

module Probe (M : sig
  type req
  type ind

  val name : string
end) =
struct
  let name = M.name

  type t = { obs_req : M.req -> unit; obs_ind : M.ind -> unit }
  type up_req = M.req
  type up_ind = M.ind
  type down_req = M.req
  type down_ind = M.ind
  type timer = Nothing.t

  let handle_up_req t msg =
    t.obs_req msg;
    (t, [ Down msg ])

  let handle_down_ind t msg =
    t.obs_ind msg;
    (t, [ Up msg ])

  let handle_timer _ t = Nothing.absurd t
end
