(** The sublayer abstraction (paper §1, tests T1–T3).

    A sublayer is a pure, event-driven state machine with four typed ports:
    requests from the sublayer above ([up_req]), indications to the sublayer
    above ([up_ind]), requests to the sublayer below ([down_req]) and
    indications from the sublayer below ([down_ind]). The port types are the
    *narrow interface* of test T2: a sublayer can only be composed with
    neighbours whose port types match, and it can only influence the rest of
    the stack through values of those types.

    Transitions are pure ([state -> input -> state * actions]), which lets
    the very same sublayer code run under the discrete-event simulator
    ({!Runtime}) and under the explicit-state model checker ([Mcheck]).

    {!Stack} composes two sublayers into one (test T1: the upper sublayer
    uses and improves the service of the lower). Because composition is by
    module functor over the port types, the stack has no access to either
    sublayer's internal state — test T3's state separation holds by
    construction. *)

type ('up_ind, 'down_req, 'timer) action =
  | Up of 'up_ind
      (** Deliver an indication to the sublayer (or application) above. *)
  | Down of 'down_req
      (** Issue a request to the sublayer (or wire) below. *)
  | Set_timer of 'timer * float
      (** (Re)arm a named timer to fire after a relative delay. *)
  | Cancel_timer of 'timer
  | Note of string
      (** Trace annotation; no protocol effect. *)

(** Interface implemented by every sublayer. *)
module type S = sig
  val name : string

  type t
  type up_req
  type up_ind
  type down_req
  type down_ind
  type timer

  val handle_up_req : t -> up_req -> t * (up_ind, down_req, timer) action list
  val handle_down_ind : t -> down_ind -> t * (up_ind, down_req, timer) action list
  val handle_timer : t -> timer -> t * (up_ind, down_req, timer) action list
end

(** [Stack (Upper) (Lower)] is the sublayer whose service is [Upper]'s,
    running over [Lower]'s. [Upper]'s down port must match [Lower]'s up
    port. Actions crossing the internal boundary are routed immediately and
    in causal order. *)
module Stack
    (Upper : S)
    (Lower : S with type up_req = Upper.down_req and type up_ind = Upper.down_ind) :
  S
    with type t = Upper.t * Lower.t
     and type up_req = Upper.up_req
     and type up_ind = Upper.up_ind
     and type down_req = Lower.down_req
     and type down_ind = Lower.down_ind
     and type timer = (Upper.timer, Lower.timer) Either.t

(** The empty type, for sublayers with no timers. *)
module Nothing : sig
  type t = |

  val absurd : t -> 'a
end

(** A sublayer with no behaviour of its own, useful as a stack terminator
    or in tests. *)
module Identity (M : sig
  type msg

  val name : string
end) :
  S
    with type t = unit
     and type up_req = M.msg
     and type up_ind = M.msg
     and type down_req = M.msg
     and type down_ind = M.msg
     and type timer = Nothing.t

(** A transparent tap on one interface: forwards everything unchanged,
    calling the observation closures on the way past. Its state is the
    pair of closures, so the same stack type can carry live monitors or
    no-op functions — composition and event counts are identical either
    way. *)
module Probe (M : sig
  type req
  type ind

  val name : string
end) : sig
  type t = { obs_req : M.req -> unit; obs_ind : M.ind -> unit }

  include
    S
      with type t := t
       and type up_req = M.req
       and type up_ind = M.ind
       and type down_req = M.req
       and type down_ind = M.ind
       and type timer = Nothing.t
end
