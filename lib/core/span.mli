(** Per-machine span tracing context.

    A [ctx] is what a sublayer machine holds to participate in causal
    tracing: it fixes the endpoint ({e track}) and sublayer name, reads
    virtual time on demand, and maps the machine's short string keys
    (["f:<offset>"] for an RD flight, say) to live span ids in the shared
    {!Sim.Tracer}. Closing a keyed span also records its sojourn into a
    [<name>_us] log₂ histogram in the machine's {!Stats} scope.

    All operations reduce to a single boolean load when the ctx was built
    with {!disabled} or tracing is globally off ({!Sim.Tracer.set_enabled}). *)

type ctx

val disabled : string -> ctx
(** [disabled sublayer] never records anything. The default every machine
    falls back to when no tracer is threaded in. *)

val make :
  tracer:Sim.Tracer.t ->
  ?stats:Stats.scope ->
  now:(unit -> float) ->
  track:string ->
  string ->
  ctx
(** [make ~tracer ?stats ~now ~track sublayer]. *)

val active : ctx -> bool
(** Tracer present and tracing globally enabled. *)

val fresh_trace : ctx -> int
(** New trace id, or 0 when inactive. *)

val open_ : ctx -> key:string -> ?trace:int -> ?parent:int -> string -> unit
(** Open a span and remember it under [key] (replacing any previous
    binding for the key). *)

val close : ctx -> key:string -> ?detail:string -> unit -> unit
(** Finish the keyed span if still live (recording its sojourn in the
    stats histogram); if a peer already closed it, just forget the key. *)

val close_all : ctx -> ?detail:string -> unit -> unit
(** Close every keyed span — connection aborts, resets, give-ups. *)

val child : ctx -> key:string -> ?detail:string -> string -> unit
(** Instant child span of the keyed live span, in the same trace: the
    retransmission-lineage primitive. Falls back to a plain instant if
    the key is unknown. *)

val instant :
  ctx -> ?trace:int -> ?parent:int -> ?detail:string -> string -> unit

val id_of : ctx -> key:string -> int
(** Live span id under [key], or 0. *)

val trace_of : ctx -> key:string -> int
(** Trace id of the keyed live span, or 0. *)

val start_free : ctx -> ?trace:int -> ?parent:int -> string -> int
(** Open a span {e without} a local key — for intervals a different
    machine will close via the correlation table. Returns the span id
    (0 when inactive). *)

val close_id : ctx -> id:int -> ?detail:string -> unit -> int
(** Finish a span by id (from {!start_free} or the correlation table),
    recording its sojourn here. Returns its trace id, or 0. *)

val trace_of_id : ctx -> id:int -> int

(** {2 Correlation keys}

    Global string keys in the shared tracer: both ends of a link bind and
    look up ids under keys only they can reconstruct (ISN pair + offset).
    The [_local] variants prefix the ctx's track, scoping the key to one
    endpoint's sublayers. *)

val bind : ctx -> string -> int -> unit
val lookup : ctx -> string -> int
val unbind : ctx -> string -> unit

val take : ctx -> string -> int
(** Lookup then unbind — single-consumer handoff. *)

val bind_local : ctx -> string -> int -> unit
val lookup_local : ctx -> string -> int
val take_local : ctx -> string -> int
