type t = {
  stats : Stats.registry option;
  tracer : Sim.Tracer.t option;
  monitors : Monitor.Runtime.t option;
  telemetry : Sim.Telemetry.t option;
  pool : Bitkit.Pool.t option;
  level : int;
}

let none =
  { stats = None; tracer = None; monitors = None; telemetry = None;
    pool = None; level = 0 }

let v ?stats ?tracer ?monitors ?telemetry ?pool ?(level = 0) () =
  if level < 0 then invalid_arg "Instrument.v: negative level";
  { stats; tracer; monitors; telemetry; pool; level }

let deeper t = { t with level = t.level + 1 }
let level_tag t = "l" ^ string_of_int t.level

(* Level 0 keeps the historical bare names so flat runs are report-
   identical to the pre-refactor tree; only nested stacks get tagged. *)
let scoped t name = if t.level = 0 then name else level_tag t ^ ":" ^ name
let tagged_name = scoped

let scope t sub =
  Option.map (fun reg -> Stats.scope reg (scoped t sub)) t.stats

let span t ~now ~track sub =
  Option.map
    (fun tr ->
      Span.make ~tracer:tr ?stats:(scope t sub) ~now ~track (scoped t sub))
    t.tracer

let alloc_cell t sub =
  match (t.telemetry, t.stats) with
  | Some _, Some reg -> Some (Alloc.cell (Stats.scope reg (scoped t sub)))
  | _ -> None
