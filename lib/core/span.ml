(* Per-machine span context: the ergonomics layer over [Sim.Tracer].

   A [ctx] names the endpoint (track) and sublayer once, supplies virtual
   time, and keeps the machine's open spans under short string keys (an
   RD segment's flight span under ["f:<offset>"], say) so the pure
   transition functions never store span ids in their own state — the
   same benign-mutation idiom [Stats] established. Closing a span also
   feeds its sojourn into a per-name log₂ histogram in the machine's
   stats scope, so aggregate latency attribution needs no tracer at all.

   Every operation is a no-op (after one boolean load) when the ctx has
   no tracer or tracing is globally disabled. *)

type ctx = {
  tracer : Sim.Tracer.t option;
  track : string;
  sublayer : string;
  scope : Stats.scope option;
  now : unit -> float;
  opens : (string, int) Hashtbl.t; (* key -> live span id *)
}

let disabled sublayer =
  { tracer = None; track = ""; sublayer; scope = None; now = (fun () -> 0.);
    opens = Hashtbl.create 1 }

let make ~tracer ?stats ~now ~track sublayer =
  { tracer = Some tracer; track; sublayer; scope = stats; now;
    opens = Hashtbl.create 16 }

let active ctx =
  match ctx.tracer with Some _ -> Sim.Tracer.enabled () | None -> false

let with_tracer ctx f =
  match ctx.tracer with
  | Some tr when Sim.Tracer.enabled () -> f tr
  | _ -> ()

let fresh_trace ctx =
  match ctx.tracer with
  | Some tr when Sim.Tracer.enabled () -> Sim.Tracer.fresh_trace tr
  | _ -> 0

let open_ ctx ~key ?trace ?parent name =
  with_tracer ctx (fun tr ->
      let id =
        Sim.Tracer.start tr ~at:(ctx.now ()) ~track:ctx.track
          ~sublayer:ctx.sublayer ?trace ?parent name
      in
      Hashtbl.replace ctx.opens key id)

let id_of ctx ~key =
  match Hashtbl.find_opt ctx.opens key with Some id -> id | None -> 0

let trace_of ctx ~key =
  match ctx.tracer with
  | Some tr when Sim.Tracer.enabled () -> (
      match Hashtbl.find_opt ctx.opens key with
      | None -> 0
      | Some id -> Option.value ~default:0 (Sim.Tracer.trace_of tr id))
  | _ -> 0

let observe ctx (sp : Sim.Tracer.span) =
  match ctx.scope with
  | None -> ()
  | Some sc ->
      let h = Stats.histogram sc (sp.Sim.Tracer.sp_name ^ "_us") in
      Stats.observe h (int_of_float ((Sim.Tracer.duration sp *. 1e6) +. 0.5))

(* Close the keyed span if it is still live; if the peer already closed
   it cross-host, just forget the key. *)
let close ctx ~key ?detail () =
  with_tracer ctx (fun tr ->
      match Hashtbl.find_opt ctx.opens key with
      | None -> ()
      | Some id ->
          Hashtbl.remove ctx.opens key;
          (match Sim.Tracer.finish tr ~at:(ctx.now ()) ?detail id with
          | Some sp -> observe ctx sp
          | None -> ()))

let close_all ctx ?detail () =
  with_tracer ctx (fun _ ->
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) ctx.opens [] in
      List.iter (fun key -> close ctx ~key ?detail ()) keys)

let instant ctx ?trace ?parent ?detail name =
  with_tracer ctx (fun tr ->
      Sim.Tracer.instant tr ~at:(ctx.now ()) ~track:ctx.track
        ~sublayer:ctx.sublayer ?trace ?parent ?detail name)

(* An instant child of the keyed span, in its trace: the retransmission
   lineage primitive. *)
let child ctx ~key ?detail name =
  with_tracer ctx (fun tr ->
      match Hashtbl.find_opt ctx.opens key with
      | None -> instant ctx ?detail name
      | Some id ->
          let trace = Option.value ~default:0 (Sim.Tracer.trace_of tr id) in
          Sim.Tracer.instant tr ~at:(ctx.now ()) ~track:ctx.track
            ~sublayer:ctx.sublayer ~trace ~parent:id ?detail name)

(* Detached spans (not in [opens]): for intervals closed by another
   machine entirely, found again through the correlation table. *)
let start_free ctx ?trace ?parent name =
  match ctx.tracer with
  | Some tr when Sim.Tracer.enabled () ->
      Sim.Tracer.start tr ~at:(ctx.now ()) ~track:ctx.track
        ~sublayer:ctx.sublayer ?trace ?parent name
  | _ -> 0

let close_id ctx ~id ?detail () =
  match ctx.tracer with
  | Some tr when Sim.Tracer.enabled () && id <> 0 -> (
      match Sim.Tracer.finish tr ~at:(ctx.now ()) ?detail id with
      | Some sp ->
          observe ctx sp;
          sp.Sim.Tracer.sp_trace
      | None -> 0)
  | _ -> 0

let trace_of_id ctx ~id =
  match ctx.tracer with
  | Some tr when Sim.Tracer.enabled () ->
      Option.value ~default:0 (Sim.Tracer.trace_of tr id)
  | _ -> 0

(* --- Correlation keys --- *)

let bind ctx key v = with_tracer ctx (fun tr -> Sim.Tracer.bind tr key v)

let lookup ctx key =
  match ctx.tracer with
  | Some tr when Sim.Tracer.enabled () ->
      Option.value ~default:0 (Sim.Tracer.lookup tr key)
  | _ -> 0

let unbind ctx key = with_tracer ctx (fun tr -> Sim.Tracer.unbind tr key)

let take ctx key =
  let v = lookup ctx key in
  if v <> 0 then unbind ctx key;
  v

(* Track-qualified keys: shared by the sublayers of one endpoint (OSR
   hands RD the trace of a stream offset this way) without colliding
   across endpoints that share the tracer. *)
let local ctx key = ctx.track ^ "|" ^ key
let bind_local ctx key v = bind ctx (local ctx key) v
let lookup_local ctx key = lookup ctx (local ctx key)
let take_local ctx key = take ctx (local ctx key)
