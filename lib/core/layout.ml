type field = { fname : string; owner : string; offset : int; width : int }

type t = { total : int; fields : field list }

let overlap a b =
  a.offset < b.offset + b.width && b.offset < a.offset + a.width

let make ~total_bits fields =
  let rec check = function
    | [] -> Ok { total = total_bits; fields }
    | f :: rest ->
        if f.width <= 0 then Error (Printf.sprintf "field %s: empty" f.fname)
        else if f.offset < 0 || f.offset + f.width > total_bits then
          Error (Printf.sprintf "field %s: out of bounds" f.fname)
        else begin
          match List.find_opt (overlap f) rest with
          | Some g -> Error (Printf.sprintf "fields %s and %s overlap" f.fname g.fname)
          | None -> check rest
        end
  in
  check fields

let make_exn ~total_bits fields =
  match make ~total_bits fields with
  | Ok t -> t
  | Error msg -> invalid_arg ("Layout.make_exn: " ^ msg)

let total_bits t = t.total
let fields t = t.fields

let owners t =
  List.fold_left
    (fun acc f -> if List.mem f.owner acc then acc else acc @ [ f.owner ])
    [] t.fields

let fields_of t owner = List.filter (fun f -> f.owner = owner) t.fields

let bits_of t owner =
  List.fold_left (fun acc f -> acc + f.width) 0 (fields_of t owner)

let covered_bits t = List.fold_left (fun acc f -> acc + f.width) 0 t.fields

let owner_of_bit t i =
  match List.find_opt (fun f -> i >= f.offset && i < f.offset + f.width) t.fields with
  | Some f -> Some f.owner
  | None -> None

(* Runtime audit of the real transmit path: [appendix] is the
   [(owner, bits)] list a Wirebuf accumulated, outermost header first.
   Each pushed header must belong to a registered owner, appear in the
   same wire order as that owner's registered fields, and be at least as
   wide as its registered bits (wider is allowed: variable-length
   extensions such as SACK blocks live inside the owner's region). *)
let check_appendix t appendix =
  let start_of owner =
    List.fold_left
      (fun acc f -> if f.owner = owner then min acc f.offset else acc)
      max_int t.fields
  in
  let rec go prev_start seen = function
    | [] -> Ok ()
    | (owner, bits) :: rest ->
        if List.mem owner seen then
          Error (Printf.sprintf "appendix: owner %s pushed twice" owner)
        else begin
          let start = start_of owner in
          if start = max_int then
            Error (Printf.sprintf "appendix: owner %s not in layout" owner)
          else if start < prev_start then
            Error
              (Printf.sprintf
                 "appendix: owner %s out of wire order (offset %d)" owner start)
          else begin
            let registered = bits_of t owner in
            if bits < registered then
              Error
                (Printf.sprintf
                   "appendix: owner %s wrote %d bits, owns %d" owner bits
                   registered)
            else go start (owner :: seen) rest
          end
        end
  in
  go min_int [] appendix

let check_appendix_exn t appendix =
  match check_appendix t appendix with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Layout.check_appendix: " ^ msg)

let pp fmt t =
  Format.fprintf fmt "header (%d bits):@." t.total;
  List.iter
    (fun f ->
      Format.fprintf fmt "  [%4d..%4d) %-12s owner=%s@." f.offset (f.offset + f.width)
        f.fname f.owner)
    t.fields
