(** Per-sublayer allocation attribution.

    The paper's §2.3 argument — every cost attributable to exactly one
    sublayer — applied to GC pressure: because sublayer transitions are
    {e pure} ([state -> input -> state * actions], fully evaluated before
    any action is routed), the code running between two consecutive T2
    interface crossings is exactly one machine's step.  Reading
    [Gc.minor_words] at every crossing therefore attributes each
    allocation to the machine that made it.

    The hooks ride the seams that already exist: {!Runtime} brackets its
    entry points ([from_above] enters the top machine, [from_below] the
    bottom one, a timer fire whichever machine owns the timer) and the
    transparent {!Machine.Probe} taps call {!cross} as messages pass —
    a [Down] crossing means the machine below is about to run, an [Up]
    crossing the machine above.

    Discipline (same as [Monitor.Runtime]): disabled (the default), every
    hook is one atomic load and no allocation; enabled, each hook costs
    two boxed-float reads whose own words are calibrated away
    ({!overhead_words}), so the counters converge on the protocol's true
    allocation.  The attribution context is domain-local, so engine
    shards running in parallel never share a checkpoint. *)

type cell
(** Destination of attributed words: the [gc.minor_words] counter of one
    sublayer's {!Stats.scope}. *)

val set_enabled : bool -> unit
(** Global switch, default [false]: attribution costs ~6 words per
    crossing when on, so only telemetry/bench runs enable it. *)

val enabled : unit -> bool

val cell : Stats.scope -> cell
(** Find-or-create the scope's [gc.minor_words] counter. *)

val cell_value : cell -> int
(** Minor words attributed so far (reads the underlying counter). *)

val overhead_words : unit -> int
(** Calibrated self-cost of one [Gc.minor_words] read (boxed float),
    subtracted from every charged interval. *)

(** {1 Hooks} (no-ops while disabled) *)

val enter : cell option -> unit
(** Charge the open interval to the current cell, push it, and make
    [cell] current — used at runtime entry points and around nested
    excursions (app delivery, wire transmit). [None] runs the interval
    unattributed. *)

val exit_ : unit -> unit
(** Charge the open interval to the current cell and pop back to the
    cell that was current before the matching {!enter}. *)

val bracket : cell option -> (unit -> unit) -> unit
(** [bracket c f] runs [f] between an {!enter}/{!exit_} pair that is
    exception-safe (the pop runs even when [f] raises) and immune to a
    {!set_enabled} flip mid-[f] (the enabled decision is taken once, so
    the cell stack can never be left unbalanced). Prefer this to calling
    the pair directly. *)

val cross : cell option -> unit
(** Charge the open interval to the current cell and make [cell]
    current, without pushing — used by probe taps as a message passes a
    T2 boundary. *)
