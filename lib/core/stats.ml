(* The process-wide kill switch is read on every counter bump from every
   domain running a shard, so it is an [Atomic.t] (one plain load on the
   hot path), never a [ref]. *)
let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type counter = { c_name : string; mutable c : int }
type gauge = { g_name : string; mutable g : int }

(* 63 buckets cover every non-negative OCaml int: bucket [b] holds values
   [v] with [2^b <= v < 2^(b+1)] (bucket 0 also takes 0). *)
let n_buckets = 63

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  buckets : int array;
}

type scope = {
  s_name : string;
  mutable counters : counter list; (* newest first *)
  mutable gauges : gauge list;
  mutable hists : histogram list;
}

type registry = {
  r_label : string;
  mutable r_scopes : scope list;
  (* Telemetry instances this registry already feeds (physical identity):
     the "once per registry" rule of [telemetry_source], enforced. *)
  mutable r_sources : Sim.Telemetry.t list;
}

let create ?(label = "stats") () =
  { r_label = label; r_scopes = []; r_sources = [] }
let label r = r.r_label

let scope r name =
  match List.find_opt (fun s -> s.s_name = name) r.r_scopes with
  | Some s -> s
  | None ->
      let s = { s_name = name; counters = []; gauges = []; hists = [] } in
      r.r_scopes <- s :: r.r_scopes;
      s

let unregistered name = { s_name = name; counters = []; gauges = []; hists = [] }

let scope_name s = s.s_name

let scopes r =
  List.sort (fun a b -> compare a.s_name b.s_name) r.r_scopes

let counter s name =
  match List.find_opt (fun c -> c.c_name = name) s.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; c = 0 } in
      s.counters <- c :: s.counters;
      c

let incr c = if Atomic.get enabled_flag then c.c <- c.c + 1
let add c n = if Atomic.get enabled_flag then c.c <- c.c + n
let value c = c.c

let gauge s name =
  match List.find_opt (fun g -> g.g_name = name) s.gauges with
  | Some g -> g
  | None ->
      let g = { g_name = name; g = 0 } in
      s.gauges <- g :: s.gauges;
      g

let set g v = if Atomic.get enabled_flag then g.g <- v
let gauge_value g = g.g

let histogram s name =
  match List.find_opt (fun h -> h.h_name = name) s.hists with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; h_count = 0; h_sum = 0; buckets = Array.make n_buckets 0 }
      in
      s.hists <- h :: s.hists;
      h

let bucket_of v =
  if v <= 1 then 0
  else begin
    (* floor log2, by shifting: allocation-free. *)
    let b = ref 0 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      b := !b + 1
    done;
    if !b >= n_buckets then n_buckets - 1 else !b
  end

let observe h v =
  if Atomic.get enabled_flag then begin
    let v = if v < 0 then 0 else v in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum

let hist_buckets h =
  let out = ref [] in
  for b = n_buckets - 1 downto 0 do
    if h.buckets.(b) > 0 then out := (1 lsl b, h.buckets.(b)) :: !out
  done;
  !out

type snapshot = (string * int) list

let snapshot r =
  let entries = ref [] in
  List.iter
    (fun s ->
      let pre = s.s_name ^ "." in
      List.iter (fun c -> entries := (pre ^ c.c_name, c.c) :: !entries) s.counters;
      List.iter (fun g -> entries := (pre ^ g.g_name, g.g) :: !entries) s.gauges;
      List.iter
        (fun h ->
          entries :=
            (pre ^ h.h_name ^ ".sum", h.h_sum)
            :: (pre ^ h.h_name ^ ".count", h.h_count)
            :: !entries)
        s.hists)
    r.r_scopes;
  List.sort (fun (a, _) (b, _) -> compare a b) !entries

(* Split views for time-series sampling: counters (and histogram
   count/sum, which only grow) are delta'd per tick, gauges are sampled
   raw. *)
let snapshot_counters r =
  let entries = ref [] in
  List.iter
    (fun s ->
      let pre = s.s_name ^ "." in
      List.iter (fun c -> entries := (pre ^ c.c_name, c.c) :: !entries) s.counters;
      List.iter
        (fun h ->
          entries :=
            (pre ^ h.h_name ^ ".sum", h.h_sum)
            :: (pre ^ h.h_name ^ ".count", h.h_count)
            :: !entries)
        s.hists)
    r.r_scopes;
  List.sort (fun (a, _) (b, _) -> compare a b) !entries

let snapshot_gauges r =
  let entries = ref [] in
  List.iter
    (fun s ->
      let pre = s.s_name ^ "." in
      List.iter (fun g -> entries := (pre ^ g.g_name, g.g) :: !entries) s.gauges)
    r.r_scopes;
  List.sort (fun (a, _) (b, _) -> compare a b) !entries

(* One registry = one telemetry source pair per telemetry instance.
   Several hosts sharing one registry (a fabric, the two ends of a
   tunnel) may each call this; only the first call per (registry,
   telemetry) pair registers — later ones are no-ops, so shared
   registries never double-count their deltas. *)
let telemetry_source tele ~name r =
  if not (List.memq tele r.r_sources) then begin
    r.r_sources <- tele :: r.r_sources;
    Sim.Telemetry.add_counters tele ~name (fun () -> snapshot_counters r);
    (* Registry gauges are last-write-wins scalars (e.g. cwnd of
       whichever connection set it last), so per-shard readings don't sum
       to the shared-registry reading — nondeterministic half. *)
    Sim.Telemetry.add_gauges tele ~det:false ~name (fun () -> snapshot_gauges r)
  end

let delta ~before ~after =
  let base = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before;
  List.filter_map
    (fun (k, v) ->
      let d = v - (try Hashtbl.find base k with Not_found -> 0) in
      if d = 0 then None else Some (k, d))
    after

let pp_snapshot fmt snap =
  let width =
    List.fold_left (fun w (k, _) -> max w (String.length k)) 0 snap
  in
  List.iter (fun (k, v) -> Format.fprintf fmt "  %-*s %10d@\n" width k v) snap

let pp fmt r =
  Format.fprintf fmt "%s:@\n" r.r_label;
  pp_snapshot fmt (snapshot r)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let snapshot_to_json snap =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    snap;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_json r =
  Printf.sprintf "{\"label\":\"%s\",\"stats\":%s}" (json_escape r.r_label)
    (snapshot_to_json (snapshot r))
