(** Header-layout audit for test T3.

    Test T3 demands that "each sublayer acts on separate packet bits ...
    invisible to other sublayers". A {!t} describes a concrete header as a
    list of bit fields, each tagged with the sublayer that owns it; {!make}
    rejects overlapping fields, and the accessors let tests assert that the
    fields of two sublayers are disjoint and that a header is fully
    covered. The transport library registers the Figure 6 header here. *)

type field = {
  fname : string;
  owner : string;  (** owning sublayer, e.g. "dm", "cm", "rd", "osr" *)
  offset : int;    (** bit offset from the start of the header *)
  width : int;     (** field width in bits *)
}

type t

val make : total_bits:int -> field list -> (t, string) result
(** Validates that fields are in-bounds and pairwise disjoint. *)

val make_exn : total_bits:int -> field list -> t

val total_bits : t -> int
val fields : t -> field list
val owners : t -> string list
(** Distinct owners, in first-appearance order. *)

val fields_of : t -> string -> field list
(** Fields belonging to one owner. *)

val bits_of : t -> string -> int
(** Total bits owned by one sublayer. *)

val covered_bits : t -> int
(** Sum of all field widths (= [total_bits] iff the header is fully
    accounted for). *)

val owner_of_bit : t -> int -> string option
(** Which sublayer owns a given bit position, if any. *)

val check_appendix : t -> (string * int) list -> (unit, string) result
(** [check_appendix t appendix] audits a real transmit: [appendix] is the
    [(owner, bits)] header stack a {!Bitkit.Wirebuf} accumulated,
    outermost first. Every owner must be registered, owners must appear
    in registered wire order, and each must have written at least its
    registered bits (more is allowed for variable-length extensions such
    as SACK blocks, which live inside the owner's region). *)

val check_appendix_exn : t -> (string * int) list -> unit

val pp : Format.formatter -> t -> unit
