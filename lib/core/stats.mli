(** Per-sublayer observability: counters, gauges and log₂ histograms.

    The paper's T3 test says each sublayer owns separate state and
    mechanisms invisible to its neighbours, which makes the sublayer the
    natural unit of observability too.  Every machine registers a named
    {!scope} (one per sublayer: ["arq"], ["cm"], ["rd"], ...) holding its
    own instruments; nothing is shared across scopes.

    Design constraints, in order:
    - the hot path ([incr]/[add]/[observe]) never allocates;
    - a single global switch ({!set_enabled}) turns every instrument into
      a no-op (one boolean load) so disabled runs pay ~nothing;
    - names are stable strings following the [sublayer.counter] scheme,
      so reports from different stacks line up column-for-column.

    Instruments are find-or-create by name: asking a scope twice for the
    same counter returns the same cell, so several connections on one
    host can aggregate into one registry safely. *)

type counter
(** Monotonic event count. *)

type gauge
(** Last-set instantaneous value (e.g. window size). *)

type histogram
(** Fixed log₂-bucketed distribution of non-negative integers. *)

type scope
(** A named bundle of instruments owned by one sublayer machine. *)

type registry
(** A named collection of scopes, typically one per host/endpoint. *)

val set_enabled : bool -> unit
(** Globally enable/disable all instruments (default: enabled).  When
    disabled, [incr]/[add]/[set]/[observe] are no-ops. *)

val enabled : unit -> bool

(** {1 Registries and scopes} *)

val create : ?label:string -> unit -> registry
val label : registry -> string

val scope : registry -> string -> scope
(** Find-or-create the scope named [name] in the registry. *)

val unregistered : string -> scope
(** A free-standing scope attached to no registry.  Machines default to
    this when the caller does not care about reports; the instruments
    still count, they are just not enumerable. *)

val scope_name : scope -> string
val scopes : registry -> scope list
(** Sorted by name. *)

(** {1 Instruments} *)

val counter : scope -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : scope -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : scope -> string -> histogram
val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> int

val hist_buckets : histogram -> (int * int) list
(** Non-empty buckets as [(lower_bound, count)]; bucket [b] covers
    values [v] with [2^b <= v < 2^(b+1)] (bucket 0 also holds [v <= 1]). *)

(** {1 Snapshots and reports} *)

type snapshot = (string * int) list
(** Flat, name-sorted [("scope.instrument", value)] pairs.  Histograms
    contribute [name.count] and [name.sum] entries.  Plain data: safe to
    compare structurally for reproducibility checks. *)

val snapshot : registry -> snapshot

val snapshot_counters : registry -> snapshot
(** Monotone instruments only (counters plus histogram [count]/[sum]) —
    the part a time-series sampler deltas per tick. *)

val snapshot_gauges : registry -> snapshot
(** Gauges only — sampled raw per tick. *)

val telemetry_source : Sim.Telemetry.t -> name:string -> registry -> unit
(** Register this registry with a telemetry instance: counters (and
    histogram [count]/[sum]) delta'd per sample on the deterministic
    half; gauges raw on the nondeterministic half (they are
    last-write-wins scalars, so per-shard readings don't sum to the
    shared-registry reading).  Keys are prefixed ["<name>."].
    Idempotent per (registry, telemetry) pair: the first call registers,
    later calls are no-ops — hosts sharing one registry can all call it
    without double-counting. *)

val delta : before:snapshot -> after:snapshot -> snapshot
(** Entry-wise [after - before], dropping zero deltas.  Names present
    only in [after] count from 0. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Aligned text report, one [scope.instrument  value] line per entry. *)

val pp : Format.formatter -> registry -> unit

val snapshot_to_json : snapshot -> string
(** Compact JSON object [{"scope.instrument": value, ...}]. *)

val to_json : registry -> string
(** [{"label": ..., "stats": {...}}] for the whole registry. *)
