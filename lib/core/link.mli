(** The "place to send things" contract, made first-class.

    Every layer in the repo used to hold a concrete [Sim.Channel.t] as
    the thing below it.  A ['a t] extracts the four-part contract those
    consumers actually rely on — transmit one ['a] downward, receive
    ['a]s via an attached callback, read MTU/cost hints, and learn when
    the path below is gone — so that {e anything} honouring it can sit
    under a stack.  Two implementations ship: a thin adapter over
    [Sim.Channel] (the flat topology, unchanged behaviour), and
    [Transport.Tunnel], which presents an established transport
    connection as a link and makes sublayering recursive.

    Discipline: {!transmit} and {!deliver} are synchronous closure calls
    — a link adds no engine events and draws no randomness, so a
    channel-backed run through this seam is schedule-identical to the
    direct wiring it replaced. *)

type 'a t

val make :
  ?id:string ->
  ?mtu:int ->
  ?cost:float ->
  ?close:(unit -> unit) ->
  ?transmit:('a -> unit) ->
  unit ->
  'a t
(** A fresh, alive link.  [transmit] may be supplied later via
    {!set_transmit} (channels and endpoints reference each other, so one
    side of the knot is always tied second).  [close] is the hook run by
    {!close} — e.g. closing a tunnel's outer connection.  [cost]
    defaults to [1.]. *)

val of_channel :
  ?id:string -> ?mtu:int -> ?cost:float -> 'a Sim.Channel.t -> 'a t
(** The adapter that makes [Sim.Channel] one implementation among
    others: transmit sends into the channel.  The channel's [deliver]
    was fixed at its creation, so receive-side wiring stays with the
    caller: create the link first and pass [deliver link] as the
    channel's delivery callback (or attach elsewhere). *)

val id : 'a t -> string
val mtu : 'a t -> int option
(** Largest ['a] the path comfortably carries (payload bytes for slice
    links), or [None] for unconstrained.  A hint for segmentation — the
    link does not enforce it. *)

val cost : 'a t -> float
(** Relative routing-metric hint; channel-backed links default to 1. *)

val set_transmit : 'a t -> ('a -> unit) -> unit
val attach : 'a t -> ('a -> unit) -> unit
(** Register the upward delivery callback (the stack's [from_wire]). *)

val transmit : 'a t -> 'a -> unit
(** Send downward.  Dropped (counted) when the link is dead or has no
    transmit closure yet. *)

val deliver : 'a t -> 'a -> unit
(** Called by the implementation when an ['a] arrives from below;
    forwards to the attached callback.  Dropped (counted) when dead or
    unattached. *)

val alive : 'a t -> bool

val kill : 'a t -> unit
(** Declare the path below gone: further traffic drops, every
    {!on_death} subscriber fires (once — idempotent). *)

val on_death : 'a t -> (unit -> unit) -> unit
(** Subscribe to link death; fires immediately if already dead.  This is
    how an outer tunnel abort reaches inner stacks as link-death. *)

val close : 'a t -> unit
(** Orderly user-initiated shutdown: runs the [close] hook when present
    (which decides when the link actually dies — a tunnel's outer FIN
    handshake takes virtual time), else just {!kill}s. *)

type stats = { tx : int; rx : int; dropped : int }

val stats : 'a t -> stats
(** Frames transmitted, delivered, and dropped (dead/unwired), fresh
    record per call. *)
