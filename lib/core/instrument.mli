(** The consolidated instrumentation context threaded through every stack
    factory.

    Before this record existed, each factory grew the same five optional
    arguments ([?stats ?tracer ?monitors ?telemetry ?pool]) and every new
    instrument meant touching every signature in the repo.  An
    {!Instrument.t} bundles them — plus the {e recursion level}, the tag
    that namespaces observability when a whole transport stack runs as
    the link of another stack (see {!Link} and [Transport.Tunnel]).

    Level tags keep the two recursion levels of an Ouroboros run apart in
    one shared registry/tracer: scopes and endpoint names at level 0 keep
    their historical bare names ([rd], [A:80>49152]) so flat runs report
    identically to every earlier PR, while level [k >= 1] prefixes
    [lk:] — scope [l1:rd], track [l1:iA:80>1], monitor key likewise. *)

type t = {
  stats : Stats.registry option;
  tracer : Sim.Tracer.t option;
  monitors : Monitor.Runtime.t option;
  telemetry : Sim.Telemetry.t option;
  pool : Bitkit.Pool.t option;
  level : int;  (** recursion depth: 0 = over a raw channel *)
}

val none : t
(** No instrumentation, level 0 — the default everywhere. *)

val v :
  ?stats:Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?telemetry:Sim.Telemetry.t ->
  ?pool:Bitkit.Pool.t ->
  ?level:int ->
  unit ->
  t
(** Build a context; [level] defaults to 0 and must be non-negative. *)

val deeper : t -> t
(** The same context one recursion level down — what an inner stack
    running over a {!Link} backed by an outer connection should use. *)

val level_tag : t -> string
(** ["l0"], ["l1"], ... *)

val scoped : t -> string -> string
(** Namespace a sublayer scope name by level: identity at level 0,
    ["l<k>:<name>"] deeper — so [l0] scopes keep their bare historical
    names and Σ-sojourn identities can be checked per level. *)

val tagged_name : t -> string -> string
(** Namespace an endpoint/host name the same way (tracks, monitor keys). *)

(** {1 Factory helpers}

    The three idioms every stack factory repeats, centralised.  All
    three respect the level namespace. *)

val scope : t -> string -> Stats.scope option
(** The sublayer's stats scope, when a registry is present. *)

val span : t -> now:(unit -> float) -> track:string -> string -> Span.ctx option
(** The sublayer's span context, when a tracer is present (feeding the
    level-scoped stats histogram when a registry is too). *)

val alloc_cell : t -> string -> Alloc.cell option
(** The sublayer's allocation-attribution cell — present only when both
    [telemetry] and [stats] are (cells add [gc.minor_words] counters a
    plain stats run should not see). *)
