(* Process-wide kill switch, read on every probe from every shard
   domain: atomic load, never a plain [ref]. Registries themselves are
   per-shard instances — see {!merged_verdicts} for the explicit
   cross-domain merge. *)
let on = Atomic.make true
let set_enabled v = Atomic.set on v
let enabled () = Atomic.get on

type instance = {
  spec : Spec.t;
  key : string;
  cfg : Spec.config;
  reg : registry;
  mutable i_dead : bool;
  (* per-direction event counts: Down events are the upper sublayer
     talking, Up events the lower *)
  mutable checked_down : int;
  mutable checked_up : int;
  mutable violated_down : bool;
  mutable violated_up : bool;
}

and registry = {
  rlabel : string;
  mutable instances : instance list;  (* newest first *)
  mutable viols : string list;        (* newest first *)
  mutable nviols : int;
  mutable unreported : string list;   (* oldest first, drained by Soak *)
}

type t = registry

let create ?(label = "monitors") () =
  { rlabel = label; instances = []; viols = []; nviols = 0; unreported = [] }

let label t = t.rlabel

let attach t ~key spec =
  let inst =
    { spec; key; cfg = Spec.init spec; reg = t; i_dead = false;
      checked_down = 0; checked_up = 0; violated_down = false;
      violated_up = false }
  in
  t.instances <- inst :: t.instances;
  inst

let dead inst = inst.i_dead

(* Cold path: format the violation, blame the sender, silence the
   instance. The message embeds [key] (the connection/track name) so the
   soak flight recorder dumps the offending connection's spans. *)
let violate inst mid ~a ~b =
  inst.i_dead <- true;
  let is_down = Spec.msg_dir inst.spec mid = Spec.Down in
  let guilty =
    if is_down then Spec.upper inst.spec else Spec.lower inst.spec
  in
  if is_down then inst.violated_down <- true else inst.violated_up <- true;
  let msg =
    Printf.sprintf "monitor %s[%s]: %s violated: %s a=%d b=%d"
      (Spec.name inst.spec) inst.key guilty
      (Spec.explain inst.spec inst.cfg mid ~a ~b)
      a b
  in
  let r = inst.reg in
  r.viols <- msg :: r.viols;
  r.nviols <- r.nviols + 1;
  r.unreported <- r.unreported @ [ msg ]

let observe inst mid ~a ~b =
  if Atomic.get on && not inst.i_dead then begin
    (match Spec.msg_dir inst.spec mid with
    | Spec.Down -> inst.checked_down <- inst.checked_down + 1
    | Spec.Up -> inst.checked_up <- inst.checked_up + 1);
    if not (Spec.step inst.spec inst.cfg mid ~a ~b) then
      violate inst mid ~a ~b
  end

let violations t = List.rev t.viols
let violation_count t = t.nviols

let next_violation t =
  match t.unreported with
  | [] -> None
  | v :: rest ->
      t.unreported <- rest;
      Some v

let invariant t () = next_violation t

let checked t =
  List.fold_left
    (fun acc i -> acc + i.checked_down + i.checked_up)
    0 t.instances

let verdicts t =
  let tbl = Hashtbl.create 16 in
  let bump name c v =
    let c0, v0 = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl name) in
    Hashtbl.replace tbl name (c0 + c, v0 + v)
  in
  List.iter
    (fun i ->
      bump (Spec.upper i.spec) i.checked_down (Bool.to_int i.violated_down);
      bump (Spec.lower i.spec) i.checked_up (Bool.to_int i.violated_up))
    t.instances;
  Hashtbl.fold (fun name (c, v) acc -> (name, c, v) :: acc) tbl []
  |> List.sort compare

(* Sharded runs hold one registry per shard (monitors are single-domain
   mutable state); after the domains join, verdicts are summed here — an
   explicit merge instead of sharing the registry across domains. *)
let merged_verdicts ts =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun t ->
      List.iter
        (fun (name, c, v) ->
          let c0, v0 =
            Option.value ~default:(0, 0) (Hashtbl.find_opt tbl name)
          in
          Hashtbl.replace tbl name (c0 + c, v0 + v))
        (verdicts t))
    ts;
  Hashtbl.fold (fun name (c, v) acc -> (name, c, v) :: acc) tbl []
  |> List.sort compare

let merged_invariant ts () =
  List.fold_left
    (fun acc t -> match acc with Some _ -> acc | None -> next_violation t)
    None ts
