open Spec

(* Interface contracts, one spec per T2 crossing. Conventions:
   - the first state listed is initial, registers start at 0;
   - Down = the upper sublayer sending a request, Up = the lower
     sublayer delivering an indication;
   - a terminal "done" state is fully permissive: once a connection has
     torn down, late retransmissions and stale deliveries are the
     channel's business, not a protocol violation. *)

let d m = (Down, m)
let u m = (Up, m)

(* Application <-> OSR. The app may poke the socket whenever it likes
   (chaos clients close before the handshake finishes), but the stream
   indications are ordered: Established precedes any Data, terminal
   indications end the stream. *)
let app =
  make ~name:"osr-app" ~upper:"app" ~lower:"osr"
    ~states:[ "idle"; "opening"; "estab"; "done" ]
    ~msgs:
      [ d "connect"; d "listen"; d "write"; d "read"; d "close";
        u "established"; u "data"; u "peer_closed"; u "closed"; u "reset";
        u "aborted" ]
    ([ rule "idle" (d "connect") "opening";
       rule "idle" (d "listen") "opening" ]
    @ loops "opening" [ d "write"; d "read"; d "close" ]
    @ [ rule "opening" (u "established") "estab";
        rule "opening" (u "closed") "done";
        rule "opening" (u "reset") "done";
        rule "opening" (u "aborted") "done" ]
    @ loops "estab"
        [ d "write"; d "read"; d "close"; u "established"; u "data";
          u "peer_closed" ]
    @ [ rule "estab" (u "closed") "done";
        rule "estab" (u "reset") "done";
        rule "estab" (u "aborted") "done" ]
    @ loops "done"
        [ d "write"; d "read"; d "close"; u "peer_closed"; u "closed";
          u "reset"; u "aborted" ])

(* OSR <-> RD. r0 = transmit high-water mark (next expected offset),
   r1 = cumulative-ack high-water mark. Offsets are absolute stream
   offsets, so plain integer guards apply. No transmit or block traffic
   may precede Established; each Transmit starts exactly at the previous
   high-water mark; acks are monotone and never overtake transmission. *)
let stream_rd ~upper =
  let stream st goto_closing =
    loops st
      [ d "set_block"; d "announce_block"; u "established"; u "segment";
        u "loss"; u "peer_fin" ]
    @ [ rule st (d "transmit")
          ~guard:(Cmp (A, Eq, Reg 0))
          ~acts:[ Set (0, Add (A, B)) ]
          st;
        rule st (u "acked")
          ~guard:(All [ Cmp (A, Ge, Reg 1); Cmp (A, Le, Reg 0) ])
          ~acts:[ Set (1, A) ]
          st;
        rule st (d "close") goto_closing;
        rule st (u "closed") "done";
        rule st (u "reset") "done";
        rule st (u "aborted") "done" ]
  in
  make ~name:(upper ^ "-rd") ~upper ~lower:"rd"
    ~states:[ "idle"; "opening"; "estab"; "closing"; "done" ]
    ~msgs:
      [ d "connect"; d "listen"; d "close"; d "transmit"; d "set_block";
        d "announce_block";
        u "established"; u "segment"; u "acked"; u "loss"; u "peer_fin";
        u "closed"; u "reset"; u "aborted" ]
    ([ rule "idle" (d "connect") "opening";
       rule "idle" (d "listen") "opening";
       rule "opening" (u "established") "estab";
       rule "opening" (u "closed") "done";
       rule "opening" (u "reset") "done";
       rule "opening" (u "aborted") "done" ]
    @ stream "estab" "closing"
    @ stream "closing" "closing"
    @ loops "done"
        [ d "close"; d "transmit"; d "set_block"; d "announce_block";
          u "established"; u "segment"; u "acked"; u "loss"; u "peer_fin";
          u "closed"; u "reset"; u "aborted" ])

(* RD <-> CM. No payload Pdu in either direction before Established —
   an RD that transmits early or a CM that delivers in Syn_sent is
   caught in "opening". Established may repeat (the Watson CM announces
   once on contact and again when the peer ISN is learned). *)
let rd_cm =
  make ~name:"rd-cm" ~upper:"rd" ~lower:"cm"
    ~states:[ "idle"; "opening"; "estab"; "closing"; "done" ]
    ~msgs:
      [ d "connect"; d "listen"; d "close"; d "abort"; d "pdu";
        u "established"; u "pdu"; u "peer_fin"; u "closed"; u "reset" ]
    ([ rule "idle" (d "connect") "opening";
       rule "idle" (d "listen") "opening";
       rule "opening" (u "established") "estab";
       rule "opening" (u "closed") "done";
       rule "opening" (u "reset") "done";
       rule "opening" (d "abort") "done" ]
    @ loops "estab" [ d "pdu"; u "pdu"; u "established"; u "peer_fin" ]
    @ [ rule "estab" (d "close") "closing";
        rule "estab" (d "abort") "done";
        rule "estab" (u "closed") "done";
        rule "estab" (u "reset") "done" ]
    @ loops "closing"
        [ d "pdu"; d "close"; u "pdu"; u "established"; u "peer_fin" ]
    @ [ rule "closing" (d "abort") "done";
        rule "closing" (u "closed") "done";
        rule "closing" (u "reset") "done" ]
    @ loops "done"
        [ d "close"; d "abort"; d "pdu"; u "established"; u "pdu";
          u "peer_fin"; u "closed"; u "reset" ])

(* Opaque PDU boundaries: single state, length sanity only. *)
let opaque ~name ~upper ~lower ?(min_down = 1) ?(min_up = 0) () =
  make ~name ~upper ~lower
    ~states:[ "xfer" ]
    ~msgs:[ d "pdu"; u "pdu" ]
    [ rule "xfer" (d "pdu") ~guard:(Cmp (A, Ge, Const min_down)) "xfer";
      rule "xfer" (u "pdu") ~guard:(Cmp (A, Ge, Const min_up)) "xfer" ]

let osr_rd = stream_rd ~upper:"osr"

type arq_variant = Sw | Gbn | Sr

let arq_variant_of_name = function
  | "arq-sw" -> Some Sw
  | "arq-gbn" -> Some Gbn
  | "arq-sr" -> Some Sr
  | _ -> None

(* ARQ <-> detector, in 16-bit sequence space (modular windows).
   r0 = send-side window base estimate, advanced by acks coming Up;
   r1 = receive-side base estimate, advanced by the acks we send Down.
   Per variant:
   - Stop-and-wait: the one outstanding sequence is exactly r0; an ack
     for it advances, anything else is stale. Inbound data is the peer's
     single outstanding seq, which is r1 (new) or r1 - 1 (our ack lost).
   - Go-back-N: transmitted data lies in [r0, r0 + w); a cumulative ack
     advancing into (r0, r0 + w] moves the base, stale acks are ignored.
     Acks we send are the cumulative next-expected, advancing at most w
     at a time. Inbound data lies in [r1 - w, r1 + w): the peer's base
     trails our next-expected by at most w.
   - Selective repeat: acks are individual, so the base estimate tracks
     the highest ack + 1 and windows get a slack factor of two. *)
let arq ~variant ~window =
  let w = max 1 window in
  let m = 65536 in
  let within x base offset bound =
    Within { x; base; offset; modulo = m; bound }
  in
  let msgs = [ d "data"; d "ack"; u "data"; u "ack" ] in
  let rules =
    match variant with
    | Sw ->
        [ rule "xfer" (d "data") ~guard:(within A (Reg 0) 0 1) "xfer";
          rule "xfer" (u "ack") ~guard:(within A (Reg 0) 0 1)
            ~acts:[ Set (0, Add (A, Const 1)) ]
            "xfer";
          rule "xfer" (u "ack") "xfer";
          rule "xfer" (d "ack")
            ~guard:(within A (Reg 1) 0 1)
            ~acts:[ Set (1, Add (A, Const 1)) ]
            "xfer";
          rule "xfer" (d "ack") "xfer";
          rule "xfer" (u "data") ~guard:(within A (Reg 1) 1 2) "xfer" ]
    | Gbn ->
        [ rule "xfer" (d "data") ~guard:(within A (Reg 0) 0 w) "xfer";
          rule "xfer" (u "ack")
            ~guard:(within A (Reg 0) (m - 1) w)
            ~acts:[ Set (0, A) ]
            "xfer";
          rule "xfer" (u "ack") "xfer";
          rule "xfer" (d "ack")
            ~guard:(within A (Reg 1) (m - 1) w)
            ~acts:[ Set (1, A) ]
            "xfer";
          rule "xfer" (d "ack") "xfer";
          rule "xfer" (u "data") ~guard:(within A (Reg 1) w (2 * w)) "xfer" ]
    | Sr ->
        [ rule "xfer" (d "data") ~guard:(within A (Reg 0) w (2 * w)) "xfer";
          rule "xfer" (u "ack") ~guard:(within A (Reg 0) 0 w)
            ~acts:[ Set (0, Add (A, Const 1)) ]
            "xfer";
          rule "xfer" (u "ack") "xfer";
          rule "xfer" (d "ack")
            ~guard:(within A (Reg 1) 0 (2 * w))
            ~acts:[ Set (1, Add (A, Const 1)) ]
            "xfer";
          rule "xfer" (d "ack") "xfer";
          rule "xfer" (u "data")
            ~guard:(within A (Reg 1) (2 * w) (4 * w))
            "xfer" ]
  in
  let vname = match variant with Sw -> "arq-sw" | Gbn -> "arq-gbn" | Sr -> "arq-sr" in
  make ~name:"arq-det" ~upper:vname ~lower:"detector"
    ~states:[ "xfer" ] ~msgs rules

(* Router <-> FIB. r0 = table size according to the write traffic the
   monitor has seen. A lookup hit against a table known to be empty, or
   removing a present entry when the size says zero, is an
   inconsistency between the routing and forwarding sublayers. *)
let fib =
  make ~name:"router-fib" ~upper:"routing" ~lower:"fib"
    ~states:[ "active" ]
    ~msgs:[ d "insert"; d "remove"; u "lookup" ]
    [ rule "active" (d "insert") ~acts:[ Set (0, Add (Reg 0, A)) ] "active";
      rule "active" (d "remove")
        ~guard:(Cmp (A, Eq, Const 0))
        "active";
      rule "active" (d "remove")
        ~guard:(Cmp (Reg 0, Ge, Const 1))
        ~acts:[ Set (0, Sub (Reg 0, A)) ]
        "active";
      rule "active" (u "lookup") ~guard:(Cmp (A, Eq, Const 0)) "active";
      rule "active" (u "lookup")
        ~guard:(Cmp (Reg 0, Ge, Const 1))
        "active" ]
